package speckit

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// Shared fixtures: characterize once per test binary with a small window.
var (
	fixtureOpt  = Options{Instructions: 50000}
	cpu17Ref    []Characteristics
	cpu06Ref    []Characteristics
	rateSubset  *SubsetResult
	speedSubset *SubsetResult
)

func cpu17RefChars(t *testing.T) []Characteristics {
	t.Helper()
	if cpu17Ref == nil {
		var err error
		cpu17Ref, err = Characterize(CPU2017(), Ref, fixtureOpt)
		if err != nil {
			t.Fatalf("characterize cpu17: %v", err)
		}
	}
	return cpu17Ref
}

func cpu06RefChars(t *testing.T) []Characteristics {
	t.Helper()
	if cpu06Ref == nil {
		var err error
		cpu06Ref, err = Characterize(CPU2006(), Ref, fixtureOpt)
		if err != nil {
			t.Fatalf("characterize cpu06: %v", err)
		}
	}
	return cpu06Ref
}

func subsets(t *testing.T) (*SubsetResult, *SubsetResult) {
	t.Helper()
	if rateSubset == nil {
		chars := cpu17RefChars(t)
		var rate, speed []Characteristics
		for _, s := range []MiniSuite{RateInt, RateFP} {
			rate = append(rate, BySuite(chars, s)...)
		}
		for _, s := range []MiniSuite{SpeedInt, SpeedFP} {
			speed = append(speed, BySuite(chars, s)...)
		}
		var err error
		rateSubset, err = Subset(rate, SubsetOptions{Components: 4})
		if err != nil {
			t.Fatal(err)
		}
		speedSubset, err = Subset(speed, SubsetOptions{Components: 4})
		if err != nil {
			t.Fatal(err)
		}
	}
	return rateSubset, speedSubset
}

func TestSuiteInventory(t *testing.T) {
	s17 := CPU2017()
	if len(s17) != 43 {
		t.Errorf("CPU2017 apps = %d, want 43", len(s17))
	}
	if len(CPU2006()) != 29 {
		t.Errorf("CPU2006 apps = %d, want 29", len(CPU2006()))
	}
	if got := len(s17.Mini(RateFP)); got != 13 {
		t.Errorf("rate fp apps = %d, want 13", got)
	}
	names := s17.Names()
	if names[0] != "500.perlbench_r" {
		t.Errorf("first app = %s", names[0])
	}
}

func TestPairInventory(t *testing.T) {
	s := CPU2017()
	want := map[InputSize]int{Test: 69, Train: 61, Ref: 64}
	total := 0
	for size, w := range want {
		got := len(Pairs(s, size))
		if got != w {
			t.Errorf("%v pairs = %d, want %d", size, got, w)
		}
		total += got
	}
	if total != 194 {
		t.Errorf("total pairs = %d, want 194 (paper, Section II)", total)
	}
}

func TestCharacterizeCPU17Ref(t *testing.T) {
	chars := cpu17RefChars(t)
	if len(chars) != 64 {
		t.Fatalf("ref characterizations = %d, want 64", len(chars))
	}
	ipc := Aggregate(chars, func(c *Characteristics) float64 { return c.IPC })
	if ipc.N != 43 {
		t.Errorf("IPC aggregate over %d apps, want 43", ipc.N)
	}
	// Paper Table III: CPU17 all = 1.457 (ref).
	if math.Abs(ipc.Mean-1.457) > 0.25 {
		t.Errorf("CPU17 mean IPC = %.3f, paper 1.457", ipc.Mean)
	}
}

// TestTableIIIShape: CPU17 IPC below CPU06 IPC, as the paper reports.
func TestTableIIIShape(t *testing.T) {
	ipc17 := Aggregate(cpu17RefChars(t), func(c *Characteristics) float64 { return c.IPC })
	ipc06 := Aggregate(cpu06RefChars(t), func(c *Characteristics) float64 { return c.IPC })
	if ipc17.Mean >= ipc06.Mean {
		t.Errorf("CPU17 IPC %.3f not below CPU06 %.3f (paper: 1.457 vs 1.784)",
			ipc17.Mean, ipc06.Mean)
	}
}

func TestComparisonTablesRender(t *testing.T) {
	c17, c06 := cpu17RefChars(t), cpu06RefChars(t)
	for _, tb := range []*Table{
		TableIII(c17, c06), TableIV(c17, c06), TableV(c17, c06),
		TableVI(c17, c06), TableVII(c17, c06),
	} {
		if tb.Rows() != 6 {
			t.Errorf("%s: %d rows, want 6", tb.Title, tb.Rows())
		}
		txt := tb.Text()
		for _, label := range []string{"CPU06 int", "CPU17 int", "CPU06 fp", "CPU17 fp", "CPU06 all", "CPU17 all"} {
			if !strings.Contains(txt, label) {
				t.Errorf("%s missing row %q", tb.Title, label)
			}
		}
	}
}

func TestTableIX(t *testing.T) {
	tb := TableIX(cpu17RefChars(t))
	txt := tb.Text()
	if tb.Rows() != 6 {
		t.Fatalf("Table IX rows = %d, want 6", tb.Rows())
	}
	if !strings.Contains(txt, "603.bwaves_s-in1") || !strings.Contains(txt, "607.cactuBSSN_s") {
		t.Error("Table IX columns missing")
	}
}

// TestTableIXSimilarity: bwaves_s inputs resemble each other and differ
// from cactuBSSN_s — the clustering validation the paper makes.
func TestTableIXSimilarity(t *testing.T) {
	chars := cpu17RefChars(t)
	byName := map[string]*Characteristics{}
	for i := range chars {
		byName[chars[i].Pair.Name()] = &chars[i]
	}
	a := byName["603.bwaves_s-in1"]
	b := byName["603.bwaves_s-in2"]
	c := byName["607.cactuBSSN_s"]
	if a == nil || b == nil || c == nil {
		t.Fatal("validation pairs missing")
	}
	if math.Abs(a.LoadPct-b.LoadPct) > 2 {
		t.Errorf("bwaves inputs load%% differ: %.2f vs %.2f", a.LoadPct, b.LoadPct)
	}
	if math.Abs(a.LoadPct-c.LoadPct) < 3 {
		t.Errorf("bwaves vs cactuBSSN load%% too similar: %.2f vs %.2f", a.LoadPct, c.LoadPct)
	}
	if math.Abs(a.BranchPct-c.BranchPct) < 5 {
		t.Errorf("bwaves vs cactuBSSN branch%% too similar: %.2f vs %.2f", a.BranchPct, c.BranchPct)
	}
}

func TestSubsetResults(t *testing.T) {
	rate, speed := subsets(t)
	// Paper: optimal subset sizes 12 (rate) and 10 (speed); shape-wise we
	// require the same order of magnitude.
	if rate.ChosenK < 5 || rate.ChosenK > 22 {
		t.Errorf("rate subset size = %d, paper suggests 12", rate.ChosenK)
	}
	if speed.ChosenK < 4 || speed.ChosenK > 18 {
		t.Errorf("speed subset size = %d, paper suggests 10", speed.ChosenK)
	}
	if rate.Saving() < 0.3 {
		t.Errorf("rate saving = %.1f%%, paper 57.1%%", rate.Saving()*100)
	}
	if speed.Saving() < 0.3 {
		t.Errorf("speed saving = %.1f%%, paper 62.1%%", speed.Saving()*100)
	}
}

func TestTableX(t *testing.T) {
	rate, speed := subsets(t)
	tb := TableX(rate, speed)
	txt := tb.Text()
	if !strings.Contains(txt, "rate") || !strings.Contains(txt, "speed") {
		t.Error("Table X rows missing")
	}
	if !strings.Contains(txt, "_r") || !strings.Contains(txt, "_s") {
		t.Error("Table X benchmark names missing")
	}
}

// TestFourPCsVariance: the paper retains 4 PCs covering 76.3% of
// variance; our 4-PC coverage should be in the same band.
func TestFourPCsVariance(t *testing.T) {
	rate, _ := subsets(t)
	v := rate.PCA.VarianceExplained(4)
	if v < 0.55 || v > 0.97 {
		t.Errorf("4-PC variance = %.1f%%, paper 76.3%%", v*100)
	}
}

func TestFigures1Through6(t *testing.T) {
	chars := cpu17RefChars(t)
	figs := [][]*FigureSeries{
		Fig1(chars), Fig2(chars), Fig3(chars), Fig4(chars), Fig5(chars), Fig6(chars),
	}
	for n, panels := range figs {
		if len(panels) != 2 {
			t.Fatalf("Fig %d: %d panels, want 2 (rate, speed)", n+1, len(panels))
		}
		rate, speed := panels[0], panels[1]
		if len(rate.Items) != 36 {
			t.Errorf("Fig %da items = %d, want 36 rate pairs", n+1, len(rate.Items))
		}
		if len(speed.Items) != 28 {
			t.Errorf("Fig %db items = %d, want 28 speed pairs", n+1, len(speed.Items))
		}
		for _, p := range panels {
			svg := p.SVG()
			if !strings.HasPrefix(svg, "<svg") {
				t.Errorf("%s: invalid SVG", p.Title)
			}
		}
	}
}

// TestFig1Extremes: the named IPC extremes from Section IV-A hold in the
// reproduced data.
func TestFig1Extremes(t *testing.T) {
	chars := cpu17RefChars(t)
	byApp := map[string]float64{}
	counts := map[string]int{}
	for i := range chars {
		byApp[chars[i].Pair.App.Name] += chars[i].IPC
		counts[chars[i].Pair.App.Name]++
	}
	for k := range byApp {
		byApp[k] /= float64(counts[k])
	}
	assertMax := func(suite MiniSuite, want string) {
		best, bestV := "", -1.0
		for _, app := range CPU2017().Mini(suite) {
			if v := byApp[app.Name]; v > bestV {
				best, bestV = app.Name, v
			}
		}
		if best != want {
			t.Errorf("%v max IPC = %s, paper says %s", suite, best, want)
		}
	}
	assertMin := func(suite MiniSuite, want string) {
		best, bestV := "", math.Inf(1)
		for _, app := range CPU2017().Mini(suite) {
			if v := byApp[app.Name]; v < bestV {
				best, bestV = app.Name, v
			}
		}
		if best != want {
			t.Errorf("%v min IPC = %s, paper says %s", suite, best, want)
		}
	}
	assertMax(RateInt, "525.x264_r")
	assertMin(RateInt, "505.mcf_r")
	assertMax(RateFP, "508.namd_r")
	assertMin(RateFP, "549.fotonik3d_r")
	assertMax(SpeedFP, "628.pop2_s")
	assertMin(SpeedFP, "619.lbm_s")
}

func TestFigures7Through10(t *testing.T) {
	rate, speed := subsets(t)
	pc12, pc34 := Fig7(rate)
	for _, svg := range []string{pc12, pc34, Fig8(rate),
		Fig9("Fig 9a: rate dendrogram", rate), Fig9("Fig 9b: speed dendrogram", speed),
		Fig10("Fig 10a: rate", rate), Fig10("Fig 10b: speed", speed)} {
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
			t.Error("invalid SVG document")
		}
	}
}

// TestConditionalShare: the paper reports 78.662% of branches are
// conditional across CPU17.
func TestConditionalShare(t *testing.T) {
	got := ConditionalShare(cpu17RefChars(t))
	if math.Abs(got-0.787) > 0.06 {
		t.Errorf("conditional share = %.3f, paper 0.787", got)
	}
}

// TestFootprintIPCCorrelation: the paper reports RSS and VSZ correlate
// negatively with IPC (-0.465 and -0.510).
func TestFootprintIPCCorrelation(t *testing.T) {
	chars := cpu17RefChars(t)
	rss := CorrelationWithIPC(chars, func(c *Characteristics) float64 { return c.RSSMiB })
	vsz := CorrelationWithIPC(chars, func(c *Characteristics) float64 { return c.VSZMiB })
	if rss >= 0 {
		t.Errorf("RSS-IPC correlation = %.3f, paper -0.465", rss)
	}
	if vsz >= 0 {
		t.Errorf("VSZ-IPC correlation = %.3f, paper -0.510", vsz)
	}
}

// TestCacheMissIPCCorrelation: per the paper, L1/L2/L3 load miss rates
// correlate negatively with IPC (-0.282, -0.479, -0.137).
func TestCacheMissIPCCorrelation(t *testing.T) {
	chars := cpu17RefChars(t)
	for _, c := range []struct {
		name string
		pick func(*Characteristics) float64
	}{
		{"L1", func(x *Characteristics) float64 { return x.L1MissPct }},
		{"L2", func(x *Characteristics) float64 { return x.L2MissPct }},
	} {
		r := CorrelationWithIPC(chars, c.pick)
		if r >= 0 {
			t.Errorf("%s miss-IPC correlation = %.3f, paper reports negative", c.name, r)
		}
	}
}

func TestTableIIAcrossSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full three-size characterization in -short mode")
	}
	chars, err := CharacterizeAllSizes(CPU2017(), Options{Instructions: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if len(chars) != 194 {
		t.Fatalf("all-size pairs = %d, want 194", len(chars))
	}
	tb := TableII(chars)
	if tb.Rows() != 12 {
		t.Errorf("Table II rows = %d, want 12", tb.Rows())
	}
	txt := tb.Text()
	for _, label := range []string{"rate int", "rate fp", "speed int", "speed fp", "test", "train", "ref"} {
		if !strings.Contains(txt, label) {
			t.Errorf("Table II missing %q", label)
		}
	}
}

// TestSpeedFPIPCCollapse: the paper's headline observation that speed-fp
// IPC is drastically lower than rate-fp.
func TestSpeedFPIPCCollapse(t *testing.T) {
	chars := cpu17RefChars(t)
	rateFP := Aggregate(BySuite(chars, RateFP), func(c *Characteristics) float64 { return c.IPC })
	speedFP := Aggregate(BySuite(chars, SpeedFP), func(c *Characteristics) float64 { return c.IPC })
	if speedFP.Mean >= rateFP.Mean*0.7 {
		t.Errorf("speed fp IPC %.3f not well below rate fp %.3f (paper: 0.706 vs 1.635)",
			speedFP.Mean, rateFP.Mean)
	}
}

// TestSpeedVsRateFootprintRatio: the paper reports ~8.3x RSS growth from
// rate to speed.
func TestSpeedVsRateFootprintRatio(t *testing.T) {
	chars := cpu17RefChars(t)
	var rate, speed []Characteristics
	rate = append(rate, BySuite(chars, RateInt)...)
	rate = append(rate, BySuite(chars, RateFP)...)
	speed = append(speed, BySuite(chars, SpeedInt)...)
	speed = append(speed, BySuite(chars, SpeedFP)...)
	r := Aggregate(rate, func(c *Characteristics) float64 { return c.RSSMiB })
	s := Aggregate(speed, func(c *Characteristics) float64 { return c.RSSMiB })
	ratio := s.Mean / r.Mean
	if ratio < 4 || ratio > 14 {
		t.Errorf("speed/rate RSS ratio = %.2f, paper 8.276", ratio)
	}
}

// TestMultiplexingRobustness: the paper measures 15 events through a
// 4-slot PMU (perf multiplexing). The subsetting methodology must be
// robust to that measurement noise: the chosen subset size stays in the
// same band and most representatives are unchanged.
func TestMultiplexingRobustness(t *testing.T) {
	var rate []Characteristics
	for _, s := range []MiniSuite{RateInt, RateFP} {
		rate = append(rate, BySuite(cpu17RefChars(t), s)...)
	}
	exact, err := Subset(rate, SubsetOptions{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	noisyOpt := fixtureOpt
	noisyOpt.MultiplexSlots = 4
	var noisyRate []Characteristics
	for _, s := range []MiniSuite{RateInt, RateFP} {
		suite := CPU2017().Mini(s)
		chars, err := Characterize(suite, Ref, noisyOpt)
		if err != nil {
			t.Fatal(err)
		}
		noisyRate = append(noisyRate, chars...)
	}
	noisy, err := Subset(noisyRate, SubsetOptions{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	if diff := noisy.ChosenK - exact.ChosenK; diff < -4 || diff > 4 {
		t.Errorf("multiplexing moved subset size from %d to %d", exact.ChosenK, noisy.ChosenK)
	}
	// Representative overlap at the application level.
	appOf := func(name string) string {
		if i := strings.Index(name, "-"); i >= 0 {
			return name[:i]
		}
		return name
	}
	exactApps := map[string]bool{}
	for _, r := range exact.Representatives {
		exactApps[appOf(r.Name)] = true
	}
	overlap := 0
	for _, r := range noisy.Representatives {
		if exactApps[appOf(r.Name)] {
			overlap++
		}
	}
	minLen := len(exact.Representatives)
	if len(noisy.Representatives) < minLen {
		minLen = len(noisy.Representatives)
	}
	if overlap*2 < minLen {
		t.Errorf("only %d of %d representatives survive multiplexing noise", overlap, minLen)
	}
}

func TestAnalyzeReuse(t *testing.T) {
	var mcf, x264 *Workload
	for _, p := range CPU2017() {
		switch p.Name {
		case "505.mcf_r":
			mcf = p
		case "525.x264_r":
			x264 = p
		}
	}
	hMcf, err := AnalyzeReuse(mcf, Ref, 40000)
	if err != nil {
		t.Fatal(err)
	}
	hX264, err := AnalyzeReuse(x264, Ref, 40000)
	if err != nil {
		t.Fatal(err)
	}
	// mcf's poorer locality means less warm mass within the L1 capacity.
	if hMcf.MassBelow(512) >= hX264.MassBelow(512) {
		t.Errorf("mcf L1-range mass %.3f not below x264 %.3f",
			hMcf.MassBelow(512), hX264.MassBelow(512))
	}
	// A workload is identical to itself, different from another.
	if d := CompareReuse(hMcf, hMcf); d != 0 {
		t.Errorf("self-distance = %v", d)
	}
	if d := CompareReuse(hMcf, hX264); d <= 0 {
		t.Errorf("cross-distance = %v", d)
	}
	svg := ReuseHistogramSVG("505.mcf_r reuse", hMcf)
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("invalid histogram SVG")
	}
}

func TestSimilarityMatrix(t *testing.T) {
	rate, _ := subsets(t)
	vals, names := SimilarityMatrix(rate)
	if len(vals) != len(names) || len(vals) == 0 {
		t.Fatal("shape mismatch")
	}
	for i := range vals {
		if vals[i][i] != 0 {
			t.Errorf("self-distance [%d] = %v", i, vals[i][i])
		}
		for j := range vals {
			if vals[i][j] != vals[j][i] {
				t.Errorf("asymmetry at %d,%d", i, j)
			}
		}
	}
	svg := SimilarityHeatmapSVG("rate similarity", rate)
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("invalid heatmap SVG")
	}
}

// TestFigCPIStack: CPI stacks are positive, and the memory component
// dominates for the most memory-bound application (619.lbm_s) while the
// base component dominates for the highest-IPC one (625.x264_s).
func TestFigCPIStack(t *testing.T) {
	chars := cpu17RefChars(t)
	panels := FigCPIStack(chars)
	if len(panels) != 2 {
		t.Fatal("panel count")
	}
	speed := panels[1]
	find := func(name string) int {
		for i, item := range speed.Items {
			if item == name {
				return i
			}
		}
		t.Fatalf("item %s missing", name)
		return -1
	}
	lbm := find("619.lbm_s")
	// For lbm_s, base dominates only because its calibrated ILP is tiny;
	// total CPI must be huge (IPC 0.062 -> CPI ~16).
	totalCPI := 0.0
	for s := range speed.Series {
		totalCPI += speed.Values[s][lbm]
	}
	if totalCPI < 8 {
		t.Errorf("619.lbm_s CPI = %.2f, want > 8", totalCPI)
	}
	x264 := find("625.x264_s-in2")
	x264CPI := 0.0
	for s := range speed.Series {
		x264CPI += speed.Values[s][x264]
	}
	if x264CPI > 0.5 {
		t.Errorf("625.x264_s CPI = %.2f, want < 0.5", x264CPI)
	}
	if svg := speed.SVG(); !strings.HasPrefix(svg, "<svg") {
		t.Error("invalid SVG")
	}
}

// TestCacheReuseAcrossCampaigns: a shared Options.Cache serves repeated
// campaigns bit-identically — the second pass is all hits and its
// results match the first pass exactly, including across the overlapping
// pairs of CharacterizeAllSizes re-runs.
func TestCacheReuseAcrossCampaigns(t *testing.T) {
	suite := CPU2017().Mini(RateInt)
	cache := NewCache()
	opt := Options{Instructions: 20000, Cache: cache}
	cold, err := Characterize(suite, Ref, opt)
	if err != nil {
		t.Fatalf("cold pass: %v", err)
	}
	misses := cache.Stats().Misses
	if misses != uint64(len(cold)) {
		t.Fatalf("cold pass misses = %d, want %d", misses, len(cold))
	}
	warm, err := Characterize(suite, Ref, opt)
	if err != nil {
		t.Fatalf("warm pass: %v", err)
	}
	stats := cache.Stats()
	if stats.Hits != uint64(len(cold)) || stats.Misses != misses {
		t.Fatalf("warm pass stats = %+v, want %d hits and no new misses", stats, len(cold))
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cached results not bit-identical to simulated results")
	}
	// A different campaign parameter must not be served from the cache.
	opt.Instructions = 25000
	if _, err := Characterize(suite, Ref, opt); err != nil {
		t.Fatalf("third pass: %v", err)
	}
	if got := cache.Stats().Misses; got != 2*misses {
		t.Errorf("changed Instructions produced %d total misses, want %d", got, 2*misses)
	}
}

// TestInstructionGrowthClaim: Section II reports CPU17's instruction
// count grew ~3.8x over CPU06.
func TestInstructionGrowthClaim(t *testing.T) {
	i17 := Aggregate(cpu17RefChars(t), func(c *Characteristics) float64 { return c.InstrBillions })
	i06 := Aggregate(cpu06RefChars(t), func(c *Characteristics) float64 { return c.InstrBillions })
	ratio := i17.Mean / i06.Mean
	if ratio < 2.5 || ratio > 6.5 {
		t.Errorf("CPU17/CPU06 instruction ratio = %.2f, paper 3.83", ratio)
	}
}
