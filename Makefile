GO ?= go

.PHONY: build vet test race bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet test race
