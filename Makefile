GO ?= go

.PHONY: build vet test race bench fuzz-seed bench-smoke analytic-smoke serve-smoke metrics-smoke fleet-smoke sweep-smoke rate-smoke race-fanout race-kernel ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Run every fuzz target over its seed corpus (no fuzzing engine time).
fuzz-seed:
	$(GO) test -run='^Fuzz' ./internal/cache ./internal/synth ./internal/rdist

# One-iteration pass over the kernel benchmarks: catches benchmarks that
# no longer build or crash without paying for stable timings. The
# baseline gate then checks the ratios recorded in BENCH_kernel.json
# against the acceptance floors (batched >=1.5x per-uop, sampled >=3x
# exact, analytic >=100x exact, parallel critical path >=2x sequential)
# — recorded numbers, so a loaded machine can't flake it.
bench-smoke:
	$(GO) test -run='^$$' -bench=Kernel -benchtime=1x .
	$(GO) test -run='^TestKernelBenchBaselines$$' -count=1 .

# The analytic tier's accuracy gate, forced fresh (-count=1): the
# per-family tolerance harness comparing analytic predictions against
# exact 16Mi-instruction baselines (skipped under -short).
analytic-smoke:
	$(GO) test -run='^TestAnalyticTolerance$$' -count=1 ./internal/analytic

# Build the real specserved binary, run a campaign over HTTP, restart on
# the same store and assert the repeat simulates zero pairs, then check
# the SIGTERM drain path.
serve-smoke:
	$(GO) test -run='^TestServeSmoke$$|^TestServeSmokeDrainsInFlight$$' -count=1 ./cmd/specserved

# Scrape the binary's /metrics during a live campaign and assert the
# Prometheus text exposition carries the tier-split pair counters, the
# stage/request histograms and the server gauges.
metrics-smoke:
	$(GO) test -run='^TestServeSmokeMetrics$$' -count=1 ./cmd/specserved

# Boot a real 2-worker fleet plus coordinator from the built binaries,
# drive it with specload under SLO gates, and assert the sharded run is
# bit-identical to a direct single-worker run. The baseline gate then
# checks the serving trajectory recorded in BENCH_serve.json against its
# floors — recorded numbers, so a loaded machine can't flake it.
fleet-smoke:
	$(GO) test -run='^TestFleetSmoke$$' -count=1 ./cmd/specserved
	$(GO) test -run='^TestServeBenchBaselines$$' -count=1 .

# Run a 2x2x2 design-space sweep against the built specserved binary,
# restart it on the same store, re-run the identical sweep and assert it
# simulates zero cells with a byte-identical knee report, then drive the
# grid through the specsweep CLI.
sweep-smoke:
	$(GO) test -run='^TestSweepSmoke$$' -count=1 ./cmd/specserved

# Run an N=4 rate-mode campaign against the built specserved binary,
# restart it on the same store, and assert both the flat and structured
# scenario spellings are served with zero pairs simulated, byte-identical
# to a direct library run on the shared-L3 kernel.
rate-smoke:
	$(GO) test -run='^TestRateSmoke$$' -count=1 ./cmd/specserved

# Race-check the fan-out path specifically: the coordinator/dispatcher,
# the typed client's retry loop, the registry the handlers hammer, and
# the shared-L3 rate kernel's core interleaving.
race-fanout:
	$(GO) test -race ./internal/server/... ./internal/sched/... ./internal/client/...
	$(GO) test -race -short -run='^TestRunShared|^TestRate|^TestScenario|^TestTopology' -count=1 ./internal/machine ./internal/core

# Race-check the intra-pair parallel kernel specifically: the
# equivalence, determinism, fallback, tolerance and stats tests spawn
# real worker pools at K in {2,3,4,8} (short stream lengths under
# -short keep it fast).
race-kernel:
	$(GO) test -race -short -run='^TestParallel' -count=1 ./internal/machine

ci: build vet test race fuzz-seed bench-smoke analytic-smoke serve-smoke metrics-smoke fleet-smoke sweep-smoke rate-smoke race-fanout race-kernel
