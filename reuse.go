package speckit

import (
	"math"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/rdist"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

// ReuseHistogram is an exact reuse-distance profile: the
// microarchitecture-independent description of a workload's temporal
// locality (a fully-associative LRU cache of C lines hits exactly the
// references with distance < C).
type ReuseHistogram = rdist.Histogram

// AnalyzeReuse generates the workload's data stream and profiles the
// reuse distances of its first refs memory references (prologue
// included, so pool steady-state reuse registers as warm).
func AnalyzeReuse(w *Workload, size InputSize, refs int) (*ReuseHistogram, error) {
	pair := (*profile.Profile)(w).Expand(size)[0]
	gen, err := synth.New(pair.Model, machine.HaswellScaled().Geometry())
	if err != nil {
		return nil, err
	}
	prof := rdist.NewProfiler(64)
	var u trace.Uop
	for n := 0; n < refs; {
		if !gen.Next(&u) {
			break
		}
		if u.IsMem() {
			prof.Touch(u.Addr)
			n++
		}
	}
	return prof.Histogram(), nil
}

// CompareReuse returns the total-variation distance between two reuse
// profiles (0 identical, 1 disjoint).
func CompareReuse(a, b *ReuseHistogram) float64 { return rdist.Compare(a, b) }

// ReuseHistogramSVG renders a reuse-distance histogram figure.
func ReuseHistogramSVG(title string, h *ReuseHistogram) string {
	bounds, counts := h.Buckets()
	return report.HistogramSVG(title, "reuse distance (cache lines)", bounds, counts)
}

// SimilarityMatrix computes the pairwise Euclidean distances between
// pairs in retained-PC space from a subset result — the quantitative
// backing for the paper's "close PC values mean similar behaviour"
// argument (Fig. 7 / Table IX).
func SimilarityMatrix(res *SubsetResult) ([][]float64, []string) {
	n := res.Scores.Rows()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			out[i][j] = euclidRows(res.Scores, i, j)
		}
	}
	return out, res.PairNames
}

func euclidRows(m *stats.Matrix, i, j int) float64 {
	s := 0.0
	for c := 0; c < m.Cols(); c++ {
		d := m.At(i, c) - m.At(j, c)
		s += d * d
	}
	return math.Sqrt(s)
}

// SimilarityHeatmapSVG renders the pairwise-distance heatmap.
func SimilarityHeatmapSVG(title string, res *SubsetResult) string {
	vals, names := SimilarityMatrix(res)
	return report.Heatmap(title, names, names, vals)
}
