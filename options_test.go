package speckit

import (
	"bytes"
	"context"
	"reflect"
	"testing"
)

// TestNewOptionsComposes: every With* option lands on the matching
// Options field, identically to filling the struct (the legacy path).
func TestNewOptionsComposes(t *testing.T) {
	cache := NewCache()
	tr := NewTrace()
	ctx := context.Background()
	progress := func(Progress) {}
	got := NewOptions(
		WithContext(ctx),
		WithInstructions(12345),
		WithParallelism(3),
		WithMachine(Haswell()),
		WithBatchSize(64),
		WithCache(cache),
		WithSampling(DefaultSampling()),
		WithProgress(progress),
		WithTrace(tr),
	)
	want := Options{
		Context: ctx, Instructions: 12345, Parallelism: 3,
		BatchSize: 64, Cache: cache,
		Sampling: DefaultSampling(), Trace: tr,
	}
	// Func-valued fields (Progress, the machine's predictor factory)
	// never compare equal under DeepEqual; check them separately.
	if got.Progress == nil {
		t.Error("WithProgress did not set the callback")
	}
	if got.Machine.Name != Haswell().Name {
		t.Errorf("WithMachine set %q, want %q", got.Machine.Name, Haswell().Name)
	}
	got.Progress, got.Machine = nil, MachineConfig{}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NewOptions = %+v, want %+v", got, want)
	}
}

// TestSuiteCharacterizeOptions: the functional-options entry point
// returns results bit-identical to the legacy struct path, and an
// attached trace records one span per pair.
func TestSuiteCharacterizeOptions(t *testing.T) {
	suite := CPU2017().Mini(RateInt)
	legacy, err := Characterize(suite, Test, Options{Instructions: 15000})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	functional, err := suite.Characterize(Test,
		WithInstructions(15000), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, functional) {
		t.Error("functional-options results differ from the struct path")
	}

	var buf bytes.Buffer
	if err := tr.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	header, spans, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if header.Spans != len(spans) {
		t.Errorf("header says %d spans, manifest has %d", header.Spans, len(spans))
	}
	pairSpans := 0
	for _, s := range spans {
		if s.Attrs["tier"] != nil {
			pairSpans++
		}
	}
	if pairSpans != len(functional) {
		t.Errorf("trace recorded %d pair spans, want %d", pairSpans, len(functional))
	}
	if ManifestDigest(buf.Bytes()) == "" {
		t.Error("empty manifest digest")
	}
}
