// Package speckit reproduces "A Workload Characterization of the SPEC
// CPU2017 Benchmark Suite" (Limaye & Adegbija, ISPASS 2018) as a
// self-contained Go library.
//
// Because the SPEC binaries and the paper's Haswell testbed are not
// redistributable, every layer of the measurement stack is simulated (see
// DESIGN.md): statistical workload models stand in for the benchmarks, a
// calibrated microarchitecture simulator stands in for the hardware
// performance counters, and the analysis pipeline (PCA, hierarchical
// clustering, Pareto subsetting) is implemented from scratch.
//
// The typical flow mirrors the paper:
//
//	chars, err := speckit.Characterize(speckit.CPU2017(), speckit.Ref, speckit.Options{})
//	res, err := speckit.Subset(chars, speckit.SubsetOptions{})
//	fmt.Println(speckit.TableX(res))
package speckit

import (
	"io"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/subset"
)

// InputSize selects the SPEC input data size.
type InputSize = profile.InputSize

// Input sizes, smallest to largest.
const (
	Test  = profile.Test
	Train = profile.Train
	Ref   = profile.Ref
)

// MiniSuite identifies one of the SPEC mini-suites.
type MiniSuite = profile.Suite

// Mini-suite identifiers.
const (
	RateInt  = profile.RateInt
	RateFP   = profile.RateFP
	SpeedInt = profile.SpeedInt
	SpeedFP  = profile.SpeedFP
	CPU06Int = profile.CPU06Int
	CPU06FP  = profile.CPU06FP
)

// Workload is the statistical model of one application; custom workloads
// can be characterized alongside the SPEC models (see
// examples/customworkload).
type Workload = profile.Profile

// Suite is an ordered collection of application workload models.
type Suite []*Workload

// CPU2017 returns models of all 43 SPEC CPU2017 applications.
func CPU2017() Suite { return Suite(profile.CPU2017()) }

// CPU2006 returns models of all 29 SPEC CPU2006 applications (the paper's
// comparison baseline).
func CPU2006() Suite { return Suite(profile.CPU2006()) }

// Mini returns the subset of the suite belonging to the given mini-suite.
func (s Suite) Mini(m MiniSuite) Suite {
	var out Suite
	for _, app := range s {
		if app.Suite == m {
			out = append(out, app)
		}
	}
	return out
}

// Names returns the application names in order.
func (s Suite) Names() []string {
	names := make([]string, len(s))
	for i, app := range s {
		names[i] = app.Name
	}
	return names
}

// Options configure a characterization campaign. Filling the struct
// directly is the legacy surface and remains supported; new code should
// prefer composing Option values (WithInstructions, WithCache, ...) via
// NewOptions or Suite.Characterize, which stay source-compatible as
// knobs are added.
type Options = core.Options

// Cache memoizes characterization results across campaigns. Keys are
// content hashes of (pair identity and model, machine configuration, run
// options), so a hit returns Characteristics bit-identical to what the
// simulation would produce. Safe for concurrent use; share one Cache
// across repeated or overlapping campaigns via Options.Cache.
type Cache = sched.Cache

// CacheStats is a snapshot of cache hit/miss counters, split by the
// tier that satisfied each lookup (in-process memory vs. persistent
// store).
type CacheStats = sched.CacheStats

// Store is a persistent, content-addressed result store: a directory of
// checksummed JSON records keyed by the same content hashes as the
// in-memory Cache. Set Options.Store to attach it as a write-through
// second cache tier; results then survive the process and are re-used
// bit-identically by later runs — including other processes sharing the
// directory. Corrupt or truncated records are treated as misses and
// recomputed, never surfaced as errors.
type Store = store.Store

// StoreStats is a snapshot of persistent-store operation counters.
type StoreStats = store.Stats

// OpenStore creates (if needed) and opens the persistent result store
// rooted at dir, for Options.Store.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// Progress is a campaign progress snapshot delivered to
// Options.Progress after each completed pair.
type Progress = sched.Progress

// NewCache returns an empty result cache for Options.Cache.
func NewCache() *Cache { return sched.NewCache() }

// ProgressPrinter returns a Progress callback that renders a one-line
// in-place progress meter to w (typically os.Stderr); the cmd tools wire
// it to their -progress flag.
func ProgressPrinter(w io.Writer) func(Progress) { return sched.ProgressPrinter(w) }

// Sampling is the systematic-sampling fidelity knob for
// Options.Sampling: simulate only periodic detailed windows of each
// pair's stream and extrapolate the counters, trading a bounded,
// estimated metric error for a multi-x campaign speedup. The zero value
// disables sampling (exact simulation).
type Sampling = machine.Sampling

// SamplingStats describes how a sampled run was measured and its
// estimated per-metric extrapolation error (Characteristics.Sampling).
type SamplingStats = machine.SamplingStats

// DefaultSampling returns the default fidelity knob (see
// machine.DefaultSampling for the tuning rationale).
func DefaultSampling() Sampling { return machine.DefaultSampling() }

// ParseSampling parses the -sampling flag syntax shared by the cmd
// tools: "off" or "" disables sampling, "on" or "default" selects
// DefaultSampling, and "PERIOD/DETAIL/WARMUP" (instruction counts, e.g.
// "32768/4096/8192") sets the knob explicitly.
func ParseSampling(s string) (Sampling, error) { return machine.ParseSampling(s) }

// Fidelity selects the simulation tier for Options.Fidelity: exact
// simulation of every uop, SMARTS-style sampled simulation, or analytic
// miss-curve prediction from a reuse-distance profile (the fastest
// tier; see DESIGN.md). The zero value is FidelityExact.
type Fidelity = machine.Fidelity

// Fidelity tiers, slowest/most faithful first.
const (
	FidelityExact    = machine.FidelityExact
	FidelitySampled  = machine.FidelitySampled
	FidelityAnalytic = machine.FidelityAnalytic
)

// ParseFidelity parses the -fidelity flag syntax shared by the cmd
// tools: "exact" (or ""), "sampled", or "analytic".
func ParseFidelity(s string) (Fidelity, error) { return machine.ParseFidelity(s) }

// Scenario bundles every knob that changes what a campaign measures —
// fidelity tier, sampling knob, intra-pair parallelism, rate-mode copy
// count and machine topology — into one typed value with a canonical
// string form (Options keeps the individual fields for compatibility).
// Build one directly or with ParseScenario (internal/cliflags syntax),
// then attach it with WithScenario.
type Scenario = core.Scenario

// Topology describes a heterogeneous machine for Options.Topology /
// Scenario.Topology: P-core and E-core class sizes plus the OS
// placement policy mapping workload copies to classes. The zero value
// means a homogeneous machine.
type Topology = machine.Topology

// Placement is a topology's OS scheduling policy.
type Placement = machine.Placement

// Placement policies.
const (
	PlacePinnedP = machine.PlacePinnedP
	PlacePinnedE = machine.PlacePinnedE
	PlaceRandom  = machine.PlaceRandom
	PlaceBest    = machine.PlaceBest
	PlaceWorst   = machine.PlaceWorst
)

// ParseTopology parses the -topo flag syntax shared by the cmd tools:
// "" (or "off") disables topology modelling, otherwise "4P4E-random"
// style (class sizes plus a placement policy).
func ParseTopology(s string) (Topology, error) { return machine.ParseTopology(s) }

// ParsePlacement parses a placement policy name: "pinned-p" (or "" or
// "pinned"), "pinned-e", "random", "best", "worst".
func ParsePlacement(s string) (Placement, error) { return machine.ParsePlacement(s) }

// RateStats is the shared-L3 contention accounting of a rate-mode run
// (Characteristics.Rate, present when Options.RateCopies > 1).
type RateStats = core.RateStats

// RuntimeDist is the placement runtime distribution of a
// heterogeneous-topology run (Characteristics.Runtime); under a random
// (topology-unaware) placement it is multimodal — one mode per core
// class.
type RuntimeDist = core.RuntimeDist

// RuntimeMode is one branch of a RuntimeDist.
type RuntimeMode = core.RuntimeMode

// Characteristics is one application-input pair's characterization.
type Characteristics = core.Characteristics

// Summary is a mean / standard deviation aggregate.
type Summary = core.Summary

// MachineConfig describes the simulated hardware.
type MachineConfig = machine.Config

// Haswell returns the paper's full-size Xeon E5-2650L v3 machine model.
func Haswell() MachineConfig { return machine.Haswell() }

// HaswellScaled returns the characterization scale model (2 MB L3); it is
// the default machine when Options.Machine is zero.
func HaswellScaled() MachineConfig { return machine.HaswellScaled() }

// Characterize expands the suite into application-input pairs at the
// given input size and simulates each, returning per-pair
// characteristics.
func Characterize(s Suite, size InputSize, opt Options) ([]Characteristics, error) {
	return core.CharacterizeSuites([]*profile.Profile(s), size, opt)
}

// CharacterizeAllSizes characterizes the suite at test, train and ref
// sizes, returning the concatenated results (the paper's full 194-pair
// campaign when used with CPU2017()).
func CharacterizeAllSizes(s Suite, opt Options) ([]Characteristics, error) {
	var all []Characteristics
	for _, size := range []InputSize{Test, Train, Ref} {
		chars, err := Characterize(s, size, opt)
		if err != nil {
			return nil, err
		}
		all = append(all, chars...)
	}
	return all, nil
}

// BySuite filters characteristics to one mini-suite.
func BySuite(chars []Characteristics, m MiniSuite) []Characteristics {
	return core.BySuite(chars, m)
}

// Aggregate summarizes a metric across applications (per-application
// means first, the paper's convention).
func Aggregate(chars []Characteristics, pick func(*Characteristics) float64) Summary {
	return core.Aggregate(chars, pick)
}

// SubsetOptions configure the representative-subset methodology.
type SubsetOptions = subset.Options

// SubsetResult is the outcome of the subsetting methodology.
type SubsetResult = subset.Result

// Representative is one selected application-input pair.
type Representative = subset.Representative

// Subset runs the paper's Section V methodology (PCA, hierarchical
// clustering, minimum-time representatives, Pareto-knee cluster count)
// over a characterization run.
func Subset(chars []Characteristics, opt SubsetOptions) (*SubsetResult, error) {
	return subset.Compute(chars, opt)
}
