package speckit

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/stats"
)

// This file regenerates every table and figure of the paper's evaluation
// from characterization results. Each TableN/FigN function corresponds to
// the same-numbered exhibit; cmd/specreport writes them all to disk and
// bench_test.go exercises each one.

// Table is a renderable text/CSV table.
type Table = report.Table

// TableII builds the per-mini-suite average execution characteristics
// across input sizes. chars must contain pairs from all three sizes
// (CharacterizeAllSizes).
func TableII(chars []Characteristics) *Table {
	t := report.NewTable("Table II: CPU17 benchmarks' average performance characteristics",
		"Suite", "Input Size", "Instr Count (B)", "IPC", "Exec Time (s)")
	for _, suite := range []MiniSuite{RateInt, RateFP, SpeedInt, SpeedFP} {
		for _, size := range []InputSize{Test, Train, Ref} {
			s := core.SummarizeSuite(chars, suite, size)
			if s.Apps == 0 {
				continue
			}
			t.AddRowf(suite.String(), size.String(), s.InstrBillions, s.IPC, s.ExecSeconds)
		}
	}
	return t
}

func comparisonTable(title string, cpu17, cpu06 []Characteristics,
	metrics []struct {
		name string
		pick func(*Characteristics) float64
	}) *Table {
	headers := []string{"Suite"}
	for _, m := range metrics {
		headers = append(headers, m.name+" Avg", m.name+" Std")
	}
	t := report.NewTable(title, headers...)
	rowsPerMetric := make([][]core.ComparisonRow, len(metrics))
	for i, m := range metrics {
		rowsPerMetric[i] = core.CompareMetric(cpu17, cpu06, m.pick)
	}
	for r := 0; r < 6; r++ {
		cells := []interface{}{rowsPerMetric[0][r].Label}
		for i := range metrics {
			s := rowsPerMetric[i][r].Summary
			cells = append(cells, s.Mean, s.Std)
		}
		t.AddRowf(cells...)
	}
	return t
}

// TableIII compares IPC between CPU17 and CPU06 (ref inputs).
func TableIII(cpu17, cpu06 []Characteristics) *Table {
	return comparisonTable("Table III: IPC comparison of CPU17 and CPU06 suites",
		cpu17, cpu06, []struct {
			name string
			pick func(*Characteristics) float64
		}{{"IPC", func(c *Characteristics) float64 { return c.IPC }}})
}

// TableIV compares the instruction mix between the suites.
func TableIV(cpu17, cpu06 []Characteristics) *Table {
	return comparisonTable("Table IV: Instruction mix comparison of CPU17 and CPU06 suites",
		cpu17, cpu06, []struct {
			name string
			pick func(*Characteristics) float64
		}{
			{"% Loads", func(c *Characteristics) float64 { return c.LoadPct }},
			{"% Stores", func(c *Characteristics) float64 { return c.StorePct }},
			{"% Branches", func(c *Characteristics) float64 { return c.BranchPct }},
		})
}

// TableV compares memory footprints (GiB) between the suites.
func TableV(cpu17, cpu06 []Characteristics) *Table {
	gib := func(mib float64) float64 { return mib / 1024 }
	return comparisonTable("Table V: RSS and VSZ comparison of CPU17 and CPU06 suites",
		cpu17, cpu06, []struct {
			name string
			pick func(*Characteristics) float64
		}{
			{"RSS (GiB)", func(c *Characteristics) float64 { return gib(c.RSSMiB) }},
			{"VSZ (GiB)", func(c *Characteristics) float64 { return gib(c.VSZMiB) }},
		})
}

// TableVI compares cache miss rates between the suites.
func TableVI(cpu17, cpu06 []Characteristics) *Table {
	return comparisonTable("Table VI: Comparison of cache miss rates for CPU17 and CPU06 suites",
		cpu17, cpu06, []struct {
			name string
			pick func(*Characteristics) float64
		}{
			{"L1 Miss (%)", func(c *Characteristics) float64 { return c.L1MissPct }},
			{"L2 Miss (%)", func(c *Characteristics) float64 { return c.L2MissPct }},
			{"L3 Miss (%)", func(c *Characteristics) float64 { return c.L3MissPct }},
		})
}

// TableVII compares branch mispredict rates between the suites.
func TableVII(cpu17, cpu06 []Characteristics) *Table {
	return comparisonTable("Table VII: Branch predictor accuracy comparison for CPU17 and CPU06 suites",
		cpu17, cpu06, []struct {
			name string
			pick func(*Characteristics) float64
		}{{"Mispredict (%)", func(c *Characteristics) float64 { return c.MispredictPct }}})
}

// TableIX validates PC clustering with the paper's three sample pairs:
// 603.bwaves_s-in1/-in2 (similar) vs 607.cactuBSSN_s (different).
func TableIX(chars []Characteristics) *Table {
	t := report.NewTable("Table IX: Validating PC clustering",
		"Characteristic", "603.bwaves_s-in1", "603.bwaves_s-in2", "607.cactuBSSN_s")
	pick := map[string]*Characteristics{}
	for i := range chars {
		switch chars[i].Pair.Name() {
		case "603.bwaves_s-in1", "603.bwaves_s-in2", "607.cactuBSSN_s":
			pick[chars[i].Pair.Name()] = &chars[i]
		}
	}
	a, b, c := pick["603.bwaves_s-in1"], pick["603.bwaves_s-in2"], pick["607.cactuBSSN_s"]
	if a == nil || b == nil || c == nil {
		return t
	}
	row := func(name string, f func(*Characteristics) float64) {
		t.AddRowf(name, f(a), f(b), f(c))
	}
	row("Instruction Count (B)", func(x *Characteristics) float64 { return x.InstrBillions })
	row("% Loads", func(x *Characteristics) float64 { return x.LoadPct })
	row("% Stores", func(x *Characteristics) float64 { return x.StorePct })
	row("% Branches", func(x *Characteristics) float64 { return x.BranchPct })
	row("RSS (GiB)", func(x *Characteristics) float64 { return x.RSSMiB / 1024 })
	row("VSZ (GiB)", func(x *Characteristics) float64 { return x.VSZMiB / 1024 })
	return t
}

// TableX lists the suggested representative subsets with their
// execution-time savings.
func TableX(rate, speed *SubsetResult) *Table {
	t := report.NewTable("Table X: Suggested subset of CPU17 benchmarks",
		"Suite", "Benchmarks", "Time (s)", "% Saving")
	rowFor := func(label string, r *SubsetResult) {
		names := make([]string, len(r.Representatives))
		for i, rep := range r.Representatives {
			names[i] = rep.Name
		}
		sort.Strings(names)
		t.AddRowf(label, join(names), r.SubsetSeconds, 100*r.Saving())
	}
	rowFor("rate", rate)
	rowFor("speed", speed)
	return t
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// FigureSeries is the data behind one per-application figure panel.
type FigureSeries struct {
	// Title names the panel (e.g. "Fig 1a: IPC (rate)").
	Title string
	// Items are the pair names along the x axis.
	Items []string
	// Series names each stacked component.
	Series []string
	// Values[s][i] is series s for item i.
	Values [][]float64
}

// SVG renders the series as a stacked bar chart.
func (f *FigureSeries) SVG() string {
	return report.Bars(f.Title, f.Series[0], f.Items, f.Series, f.Values)
}

// perAppFigure assembles a figure panel over the given pairs.
func perAppFigure(title string, chars []Characteristics, series []string,
	pick func(*Characteristics) []float64) *FigureSeries {
	f := &FigureSeries{Title: title, Series: series}
	f.Values = make([][]float64, len(series))
	sorted := append([]Characteristics(nil), chars...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pair.Name() < sorted[j].Pair.Name() })
	for i := range sorted {
		f.Items = append(f.Items, sorted[i].Pair.Name())
		vals := pick(&sorted[i])
		for s := range series {
			f.Values[s] = append(f.Values[s], vals[s])
		}
	}
	return f
}

// rateSpeedPanels builds the (a) rate and (b) speed panels of one figure.
func rateSpeedPanels(fig, what string, chars []Characteristics, series []string,
	pick func(*Characteristics) []float64) []*FigureSeries {
	rate := core.Filter(chars, func(c *Characteristics) bool {
		return c.Pair.App.Suite == RateInt || c.Pair.App.Suite == RateFP
	})
	speed := core.Filter(chars, func(c *Characteristics) bool {
		return c.Pair.App.Suite == SpeedInt || c.Pair.App.Suite == SpeedFP
	})
	return []*FigureSeries{
		perAppFigure(fmt.Sprintf("Fig %sa: %s (rate)", fig, what), rate, series, pick),
		perAppFigure(fmt.Sprintf("Fig %sb: %s (speed)", fig, what), speed, series, pick),
	}
}

// Fig1 is the per-application IPC (rate and speed panels).
func Fig1(chars []Characteristics) []*FigureSeries {
	return rateSpeedPanels("1", "Instructions per cycle", chars, []string{"IPC"},
		func(c *Characteristics) []float64 { return []float64{c.IPC} })
}

// Fig2 is the load/store micro-operation breakdown.
func Fig2(chars []Characteristics) []*FigureSeries {
	return rateSpeedPanels("2", "Memory micro-operations", chars, []string{"% loads", "% stores"},
		func(c *Characteristics) []float64 { return []float64{c.LoadPct, c.StorePct} })
}

// Fig3 is the branch-instruction percentage split into conditional and
// other branches.
func Fig3(chars []Characteristics) []*FigureSeries {
	return rateSpeedPanels("3", "Branch instructions", chars,
		[]string{"% conditional", "% other branches"},
		func(c *Characteristics) []float64 {
			cond := c.BranchPct * c.CondPct / 100
			return []float64{cond, c.BranchPct - cond}
		})
}

// Fig4 is the memory footprint (RSS and VSZ, GiB).
func Fig4(chars []Characteristics) []*FigureSeries {
	return rateSpeedPanels("4", "Memory footprint (GiB)", chars, []string{"RSS", "VSZ"},
		func(c *Characteristics) []float64 { return []float64{c.RSSMiB / 1024, c.VSZMiB / 1024} })
}

// Fig5 is the per-level cache miss rates.
func Fig5(chars []Characteristics) []*FigureSeries {
	return rateSpeedPanels("5", "Cache miss rates", chars, []string{"L1 %", "L2 %", "L3 %"},
		func(c *Characteristics) []float64 { return []float64{c.L1MissPct, c.L2MissPct, c.L3MissPct} })
}

// Fig6 is the branch mispredict rates.
func Fig6(chars []Characteristics) []*FigureSeries {
	return rateSpeedPanels("6", "Branch mispredict rate", chars, []string{"mispredict %"},
		func(c *Characteristics) []float64 { return []float64{c.MispredictPct} })
}

// Fig7 renders the PC1-PC2 and PC3-PC4 scatter plots of a subset result.
func Fig7(res *SubsetResult) (pc12, pc34 string) {
	labels := res.PairNames
	k := res.Scores.Cols()
	col := func(j int) []float64 {
		if j < k {
			return res.Scores.Col(j)
		}
		return make([]float64, res.Scores.Rows())
	}
	pc12 = report.Scatter("Fig 7a: PC1 vs PC2", "PC1", "PC2", col(0), col(1), labels, nil)
	pc34 = report.Scatter("Fig 7b: PC3 vs PC4", "PC3", "PC4", col(2), col(3), labels, nil)
	return pc12, pc34
}

// Fig8 renders the factor loadings of the retained components.
func Fig8(res *SubsetResult) string {
	l := res.PCA.Loadings(res.Components)
	rows := make([][]float64, l.Rows())
	for i := range rows {
		rows[i] = l.Row(i)
	}
	return report.Loadings("Fig 8: Factor loadings", core.PCACharacteristicNames, rows)
}

// Fig9 renders the dendrogram of a subset result.
func Fig9(title string, res *SubsetResult) string {
	return report.DendrogramSVG(title, res.Dendrogram, res.PairNames)
}

// Fig10 renders the SSE / execution-time Pareto curves.
func Fig10(title string, res *SubsetResult) string {
	return report.ParetoSVG(title, res.Tradeoffs, res.ChosenK)
}

// CorrelationWithIPC reports the Pearson correlation of a metric with IPC
// across pairs, reproducing the paper's inline correlation claims
// (Sections IV-C and IV-D).
func CorrelationWithIPC(chars []Characteristics, pick func(*Characteristics) float64) float64 {
	xs := make([]float64, len(chars))
	ys := make([]float64, len(chars))
	for i := range chars {
		xs[i] = pick(&chars[i])
		ys[i] = chars[i].IPC
	}
	return stats.Pearson(xs, ys)
}

// ConditionalShare returns the fraction of all branches that are
// conditional, aggregated over pairs (the paper reports 78.662%).
func ConditionalShare(chars []Characteristics) float64 {
	var cond, all float64
	for i := range chars {
		c := &chars[i]
		cond += float64(c.Counters.MustValue(perf.CondBranches))
		all += float64(c.Counters.MustValue(perf.AllBranches))
	}
	if all == 0 {
		return 0
	}
	return cond / all
}

// Pairs expands a suite into its application-input pairs at one size
// (without simulating), exposing the pair inventory (Section II's
// 69/61/64 counts).
func Pairs(s Suite, size InputSize) []profile.Pair {
	return profile.ExpandSuite([]*profile.Profile(s), size)
}

// FigCPIStack is an extension figure: the per-application CPI stack
// (base/mispredict/L2/L3/memory/fetch/TLB cycles per instruction) from
// the interval model — the mechanistic explanation behind the IPC
// ordering of Fig. 1.
func FigCPIStack(chars []Characteristics) []*FigureSeries {
	series := []string{"base", "mispredict", "l2", "l3", "memory", "fetch", "tlb"}
	return rateSpeedPanels("C", "CPI stack (cycles/instr)", chars, series,
		func(c *Characteristics) []float64 {
			n := float64(c.Counters.MustValue(perf.InstRetired))
			if n == 0 {
				return make([]float64, len(series))
			}
			b := c.Breakdown
			return []float64{
				b.Base / n, b.Mispredict / n, b.L2 / n, b.L3 / n,
				b.Memory / n, b.Fetch / n, b.TLB / n,
			}
		})
}
