package core

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/store"
)

// TestFidelityKeyMatrix: the three fidelity tiers produce results of
// different provenance, so no two tiers may ever share a result-cache
// key for the same pair — while every spelling of the same tier
// (FidelitySampled vs an explicit default Sampling knob) normalizes to
// the same key, or a coordinator and its workers would shard one
// campaign into disjoint cache entries.
func TestFidelityKeyMatrix(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	key := func(mut func(*Options)) string {
		o := testOpt()
		if mut != nil {
			mut(&o)
		}
		o = o.withDefaults()
		return pairKey(campaignKeyPrefix(&o), &pair)
	}

	exact := key(nil)
	explicitExact := key(func(o *Options) { o.Fidelity = machine.FidelityExact })
	if exact != explicitExact {
		t.Error("explicit FidelityExact changes the key over the zero value")
	}

	sampledTier := key(func(o *Options) { o.Fidelity = machine.FidelitySampled })
	sampledKnob := key(func(o *Options) { o.Sampling = machine.DefaultSampling() })
	if sampledTier != sampledKnob {
		t.Error("FidelitySampled and the explicit default knob derive different keys")
	}

	analytic := key(func(o *Options) { o.Fidelity = machine.FidelityAnalytic })
	keys := map[string]string{"exact": exact, "sampled": sampledTier, "analytic": analytic}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && ka == kb {
				t.Errorf("fidelity %s aliases %s", a, b)
			}
		}
	}

	// The analytic tag is versioned: a model revision must invalidate
	// stored predictions rather than serve stale ones.
	ao := testOpt()
	ao.Fidelity = machine.FidelityAnalytic
	ao = ao.withDefaults()
	if p := campaignKeyPrefix(&ao); !strings.Contains(p, "fidelity=analytic-v1") {
		t.Errorf("analytic prefix %q lacks a versioned fidelity tag", p)
	}
}

// TestFidelityGoldenKeys pins the exact and sampled pair keys to the
// values they had before the fidelity tier existed: a live store
// written by an older binary must keep serving exact and sampled
// campaigns byte-identically. If this test fails the key schema moved
// for an existing tier — that invalidates every deployed store, so it
// must be deliberate, with the goldens updated in the same change.
func TestFidelityGoldenKeys(t *testing.T) {
	perl := profile.CPU2017()[0].Expand(profile.Ref)[0]
	xalan := profile.CPU2017()[4].Expand(profile.Test)[0]

	golden := []struct {
		name string
		pair *profile.Pair
		mut  func(*Options)
		want string
	}{
		{"exact/" + perl.Name(), &perl, nil,
			"bdc1dda0f43d93679d7f00a0e64e357c4c6ca38bdcc26ec30fe9b3981601863e"},
		{"exact/" + xalan.Name(), &xalan, nil,
			"c3bc5c20dbd57efe029cbb2201b225f8d054909b6831a85a5a2d0f7cf3a1dc1f"},
		{"sampled/" + perl.Name(), &perl, func(o *Options) { o.Sampling = machine.DefaultSampling() },
			"d74454300abc2308586b1f58d3351494942cae0b85e74ac9df5295f2fe9c0adc"},
		{"sampled/" + xalan.Name(), &xalan, func(o *Options) { o.Sampling = machine.DefaultSampling() },
			"27cfa1ff22eb570a97199be230254a8fac5021757acd4e96295dc70144eb6b5f"},
	}
	for _, tc := range golden {
		o := testOpt()
		if tc.mut != nil {
			tc.mut(&o)
		}
		o = o.withDefaults()
		if got := pairKey(campaignKeyPrefix(&o), tc.pair); got != tc.want {
			t.Errorf("%s key = %s, want pinned %s", tc.name, got, tc.want)
		}
	}
}

// TestAnalyticStoreNoReuse: the persistent store keeps analytic
// predictions apart from both simulation tiers, and an analytic
// campaign is bit-identically store-served on repeat.
func TestAnalyticStoreNoReuse(t *testing.T) {
	dir := t.TempDir()
	pairs := fakePairs(3)
	anaOpt := func(st sched.Backend, c *sched.Cache) Options {
		return Options{Instructions: 20000, Store: st, Cache: c,
			Fidelity: machine.FidelityAnalytic}
	}

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	anaRes, err := Characterize(pairs, anaOpt(st1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if w := st1.Stats().Writes; w != uint64(len(pairs)) {
		t.Fatalf("analytic campaign wrote %d records, want %d", w, len(pairs))
	}

	// An exact campaign over the analytic store must simulate every pair.
	var ran atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, o Options) (*Characteristics, error) {
		ran.Add(1)
		return characterizePairCtx(ctx, pair, o)
	})
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := sched.NewCache()
	if _, err := Characterize(pairs, Options{Instructions: 20000, Store: st2, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != int64(len(pairs)) {
		t.Errorf("exact campaign over an analytic store ran %d pairs, want all %d", n, len(pairs))
	}
	if s := cache.Stats(); s.StoreHits != 0 {
		t.Errorf("exact campaign took %d store hits from analytic records", s.StoreHits)
	}

	// A repeat analytic campaign is served from the store bit-identically.
	ran.Store(0)
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Characterize(pairs, anaOpt(st3, sched.NewCache()))
	if err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 0 {
		t.Errorf("repeat analytic campaign ran %d pairs, want 0 (store-served)", n)
	}
	if !reflect.DeepEqual(anaRes, again) {
		t.Error("store-served analytic results differ from computed ones")
	}
}

// TestAnalyticSamplingRejected: the invalid combination fails fast at
// the campaign level, not per pair deep inside a fleet.
func TestAnalyticSamplingRejected(t *testing.T) {
	o := testOpt()
	o.Fidelity = machine.FidelityAnalytic
	o.Sampling = machine.DefaultSampling()
	if _, err := Characterize(fakePairs(1), o); err == nil ||
		!strings.Contains(err.Error(), "analytic") {
		t.Errorf("Characterize = %v, want analytic+sampling rejection", err)
	}
	if _, err := CharacterizePair(fakePairs(1)[0], o); err == nil ||
		!strings.Contains(err.Error(), "analytic") {
		t.Errorf("CharacterizePair = %v, want analytic+sampling rejection", err)
	}
}
