package core

import (
	"encoding/json"
	"fmt"
)

// CharacteristicsCodec translates Characteristics to and from the
// persistent result store's record encoding (sched.Codec). The encoding
// is plain JSON: every Characteristics field is either an integer, a
// finite float64 (ExecSeconds is guarded against ±Inf/NaN at
// construction), a string, or a struct of those, and Go's JSON encoder
// emits the shortest float representation that parses back to the same
// bits — so Decode(Encode(c)) reproduces c bit-identically, which is
// what lets a store hit stand in for a simulation.
type CharacteristicsCodec struct{}

// Encode marshals one Characteristics value.
func (CharacteristicsCodec) Encode(v any) ([]byte, error) {
	c, ok := v.(Characteristics)
	if !ok {
		return nil, fmt.Errorf("core: cannot encode %T as Characteristics", v)
	}
	return json.Marshal(c)
}

// Decode unmarshals a record produced by Encode.
func (CharacteristicsCodec) Decode(data []byte) (any, error) {
	var c Characteristics
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	return c, nil
}
