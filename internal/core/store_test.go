package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/store"
)

// TestCodecRoundTripBitIdentical: the store codec must reproduce a real
// simulated Characteristics value exactly — decoded records stand in
// for simulations, so any drift would poison every downstream analysis.
func TestCodecRoundTripBitIdentical(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0] // 505.mcf_r
	c, err := CharacterizePair(pair, Options{Instructions: 20000, MultiplexSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	codec := CharacteristicsCodec{}
	data, err := codec.Encode(*c)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(Characteristics)
	if !reflect.DeepEqual(got, *c) {
		t.Fatal("decoded Characteristics differ from the original")
	}
	// Re-encoding must also be byte-stable (deterministic map ordering),
	// since parity checks compare serialized results.
	data2, err := codec.Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-encoded record differs from the first encoding")
	}
}

func TestCodecRejectsForeignType(t *testing.T) {
	if _, err := (CharacteristicsCodec{}).Encode(42); err == nil {
		t.Fatal("encoded a non-Characteristics value")
	}
	if _, err := (CharacteristicsCodec{}).Decode([]byte("{")); err == nil {
		t.Fatal("decoded truncated JSON")
	}
}

// TestStoreServesSecondCampaign: a campaign run against a persistent
// store, then re-run with a fresh memory cache on the same directory
// (what a second process does), must be served entirely from the store
// — zero simulations — and bit-identically.
func TestStoreServesSecondCampaign(t *testing.T) {
	dir := t.TempDir()
	var rateInt []*profile.Profile
	for _, p := range profile.CPU2017() {
		if p.Suite == profile.RateInt {
			rateInt = append(rateInt, p)
		}
	}
	pairs := profile.ExpandSuite(rateInt, profile.Train)

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Instructions: 20000, Store: st1}
	first, err := Characterize(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if w := st1.Stats().Writes; w != uint64(len(pairs)) {
		t.Fatalf("store writes = %d, want %d", w, len(pairs))
	}

	// Second "process": fresh handle, fresh memory tier, a simulation
	// counter that must stay at zero.
	var simulated atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, o Options) (*Characteristics, error) {
		simulated.Add(1)
		return characterizePairCtx(ctx, pair, o)
	})
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := sched.NewCache()
	var last sched.Progress
	opt2 := Options{Instructions: 20000, Store: st2, Cache: cache,
		Progress: func(p sched.Progress) { last = p }}
	second, err := Characterize(pairs, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if n := simulated.Load(); n != 0 {
		t.Errorf("second campaign simulated %d pairs, want 0", n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("store-served results are not bit-identical to simulated results")
	}
	if last.CacheHits != len(pairs) || last.StoreHits != len(pairs) {
		t.Errorf("progress = %+v, want all %d pairs from the store tier", last, len(pairs))
	}
	if s := cache.Stats(); s.StoreHits != uint64(len(pairs)) || s.MemoryHits != 0 {
		t.Errorf("cache stats = %+v, want store-tier hits only", s)
	}
}

// TestCorruptStoreRecordRecomputes: damaging a record forces exactly
// that pair back through the simulator; the recomputation repairs the
// store and the results stay identical.
func TestCorruptStoreRecordRecomputes(t *testing.T) {
	dir := t.TempDir()
	pairs := fakePairs(4)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Instructions: 20000, Store: st}
	first, err := Characterize(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate every record file to simulate a crash mid-write.
	damaged := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		damaged++
		return os.WriteFile(path, data[:len(data)/3], 0o644)
	})
	if damaged != len(pairs) {
		t.Fatalf("damaged %d records, want %d", damaged, len(pairs))
	}

	var simulated atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, o Options) (*Characteristics, error) {
		simulated.Add(1)
		return characterizePairCtx(ctx, pair, o)
	})
	st2, _ := store.Open(dir)
	second, err := Characterize(pairs, Options{Instructions: 20000, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if n := simulated.Load(); n != int64(len(pairs)) {
		t.Errorf("recomputed %d pairs, want %d", n, len(pairs))
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("recomputed results differ")
	}
	if got := st2.Stats().Corrupt; got != uint64(len(pairs)) {
		t.Errorf("corrupt counter = %d, want %d", got, len(pairs))
	}

	// Third run: the write-through repaired every record.
	var resimulated atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, o Options) (*Characteristics, error) {
		resimulated.Add(1)
		return characterizePairCtx(ctx, pair, o)
	})
	st3, _ := store.Open(dir)
	third, err := Characterize(pairs, Options{Instructions: 20000, Store: st3})
	if err != nil {
		t.Fatal(err)
	}
	if n := resimulated.Load(); n != 0 {
		t.Errorf("third campaign simulated %d pairs after repair, want 0", n)
	}
	if !reflect.DeepEqual(first, third) {
		t.Error("repaired results differ")
	}
}
