package core

import (
	"bytes"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sched"
)

// tracedPairs returns a small pair set for manifest tests.
func tracedPairs(t *testing.T) []profile.Pair {
	t.Helper()
	pairs := profile.ExpandSuite(profile.CPU2017(), profile.Test)
	if len(pairs) < 2 {
		t.Fatalf("want >= 2 pairs, got %d", len(pairs))
	}
	return pairs[:2]
}

// TestCharacterizeTraceManifest runs a sampled campaign under a trace
// and checks the manifest's span tree: one campaign root, one span per
// pair carrying its tier, and the three sampling stages nested under
// each simulated pair.
func TestCharacterizeTraceManifest(t *testing.T) {
	pairs := tracedPairs(t)
	tr := obs.NewTrace()
	opt := Options{
		Instructions: 600000,
		Parallelism:  2,
		Sampling:     machine.Sampling{Period: 131072, DetailLen: 4096, WarmupLen: 4096},
		Trace:        tr,
	}
	if _, err := Characterize(pairs, opt); err != nil {
		t.Fatalf("characterize: %v", err)
	}
	b, err := tr.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := obs.ReadManifest(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}

	byID := map[int]obs.ManifestSpan{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var campaign obs.ManifestSpan
	for _, s := range spans {
		if s.Name == "campaign" {
			campaign = s
		}
	}
	if campaign.ID == 0 {
		t.Fatalf("no campaign root in %d spans", len(spans))
	}
	if campaign.Attrs["pairs"] != float64(len(pairs)) {
		t.Fatalf("campaign pairs attr = %v", campaign.Attrs["pairs"])
	}
	if campaign.Attrs["sampling"] != opt.Sampling.String() {
		t.Fatalf("campaign sampling attr = %v", campaign.Attrs["sampling"])
	}

	pairSpans := map[string]obs.ManifestSpan{}
	for _, s := range spans {
		if s.Parent == campaign.ID && s.Kind == "" && s.Attrs["tier"] != nil {
			pairSpans[s.Name] = s
		}
	}
	if len(pairSpans) != len(pairs) {
		t.Fatalf("pair spans = %d, want %d", len(pairSpans), len(pairs))
	}
	for _, p := range pairs {
		ps, ok := pairSpans[p.Name()]
		if !ok {
			t.Fatalf("no span for pair %s", p.Name())
		}
		if ps.Attrs["tier"] != "simulated" {
			t.Errorf("%s tier = %v, want simulated", p.Name(), ps.Attrs["tier"])
		}
		stages := map[string]obs.ManifestSpan{}
		for _, s := range spans {
			if s.Parent == ps.ID && s.Kind == "stage" {
				stages[s.Name] = s
			}
		}
		for _, want := range []string{"fast-forward", "warmup", "detail"} {
			if _, ok := stages[want]; !ok {
				t.Errorf("%s: missing %s stage (have %v)", p.Name(), want, stages)
			}
		}
		// Stage time is a subset of the pair's wall time.
		var stageSum int64
		for _, s := range stages {
			stageSum += s.DurUS
		}
		if stageSum > ps.DurUS+1000 {
			t.Errorf("%s: stage sum %dus exceeds pair %dus", p.Name(), stageSum, ps.DurUS)
		}
	}

	// Pair spans must nest inside the campaign's wall time.
	for _, ps := range pairSpans {
		if ps.StartUS < campaign.StartUS {
			t.Errorf("%s starts before campaign", ps.Name)
		}
		if ps.StartUS+ps.DurUS > campaign.StartUS+campaign.DurUS+1000 {
			t.Errorf("%s ends after campaign", ps.Name)
		}
	}
}

// TestTraceCacheTierRecorded re-runs a campaign against a warm cache
// under a fresh trace and checks pair spans report the memory tier with
// no stage children (nothing was simulated).
func TestTraceCacheTierRecorded(t *testing.T) {
	pairs := tracedPairs(t)
	cache := sched.NewCache()
	opt := testOpt()
	opt.Cache = cache
	if _, err := Characterize(pairs, opt); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	tr := obs.NewTrace()
	opt.Trace = tr
	if _, err := Characterize(pairs, opt); err != nil {
		t.Fatalf("cached run: %v", err)
	}
	b, err := tr.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := obs.ReadManifest(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	tiers := 0
	for _, s := range spans {
		if s.Attrs["tier"] != nil {
			tiers++
			if s.Attrs["tier"] != "memory" {
				t.Errorf("%s tier = %v, want memory", s.Name, s.Attrs["tier"])
			}
		}
		if s.Kind == "stage" {
			t.Errorf("cached run recorded stage span %s", s.Name)
		}
	}
	if tiers != len(pairs) {
		t.Fatalf("pair spans with tier = %d, want %d", tiers, len(pairs))
	}
}

// TestTraceDoesNotAffectKeys pins the rule that observability must not
// change cache identity: the campaign key prefix is byte-identical
// with and without a trace attached.
func TestTraceDoesNotAffectKeys(t *testing.T) {
	opt := testOpt().withDefaults()
	plain := campaignKeyPrefix(&opt)
	opt.Trace = obs.NewTrace()
	if traced := campaignKeyPrefix(&opt); traced != plain {
		t.Fatalf("trace changed campaign key:\n%s\n%s", plain, traced)
	}
}
