package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
)

// TestParallelKeyNoAlias: intra-pair parallel results are stitched
// estimates, so a K>1 key may never alias a sequential key — nor a key
// at a different K — while exact keys stay byte-stable across the
// feature's introduction (K<=1 normalizes away entirely, so a live
// cache written before the knob existed keeps serving exact runs).
func TestParallelKeyNoAlias(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	key := func(mut func(*Options)) string {
		o := testOpt()
		if mut != nil {
			mut(&o)
		}
		o = o.withDefaults()
		return pairKey(campaignKeyPrefix(&o), &pair)
	}

	exact := key(nil)
	eo := testOpt().withDefaults()
	if p := campaignKeyPrefix(&eo); strings.Contains(p, "pairwindows") {
		t.Errorf("exact prefix %q mentions pairwindows; exact keys must not move with the feature", p)
	}
	for _, k := range []int{0, 1} {
		if key(func(o *Options) { o.IntraPairWorkers = k }) != exact {
			t.Errorf("IntraPairWorkers=%d changes the key over the zero value", k)
		}
	}

	k8 := key(func(o *Options) { o.IntraPairWorkers = 8 })
	k4 := key(func(o *Options) { o.IntraPairWorkers = 4 })
	if k8 == exact || k4 == exact {
		t.Error("parallel key aliases the sequential exact key")
	}
	if k8 == k4 {
		t.Error("K=8 key aliases K=4: different stitchings must not share cache entries")
	}

	// The tag is versioned so a stitching revision invalidates stored
	// estimates instead of serving ones stitched by an older algorithm.
	po := testOpt()
	po.IntraPairWorkers = 8
	po = po.withDefaults()
	if p := campaignKeyPrefix(&po); !strings.Contains(p, "pairwindows=8-v1") {
		t.Errorf("parallel prefix %q lacks a versioned pairwindows tag", p)
	}
}

// TestParallelKeyNormalizesOffExact: intra-pair parallelism is an
// exact-tier knob; under the sampled and analytic tiers it normalizes
// to zero — same key, same dispatch — so a globally configured
// worker count composes with every fidelity tier instead of erroring
// or silently forking the cache namespace.
func TestParallelKeyNormalizesOffExact(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	key := func(mut func(*Options)) string {
		o := testOpt()
		mut(&o)
		o = o.withDefaults()
		return pairKey(campaignKeyPrefix(&o), &pair)
	}

	sampled := key(func(o *Options) { o.Sampling = machine.DefaultSampling() })
	sampledK := key(func(o *Options) {
		o.Sampling = machine.DefaultSampling()
		o.IntraPairWorkers = 8
	})
	if sampled != sampledK {
		t.Error("IntraPairWorkers forks the sampled-tier key instead of normalizing away")
	}

	analytic := key(func(o *Options) { o.Fidelity = machine.FidelityAnalytic })
	analyticK := key(func(o *Options) {
		o.Fidelity = machine.FidelityAnalytic
		o.IntraPairWorkers = 8
	})
	if analytic != analyticK {
		t.Error("IntraPairWorkers forks the analytic-tier key instead of normalizing away")
	}
}

// TestParallelDispatchShortStream: CharacterizePair with a worker count
// on a stream too short to window falls back to the sequential kernel
// inside machine.RunParallel and returns bit-identical characteristics
// — the campaign-level proof of the kernel's short-stream guarantee.
func TestParallelDispatchShortStream(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	seq, err := CharacterizePair(pair, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	po := testOpt()
	po.IntraPairWorkers = 8
	par, err := CharacterizePair(pair, po)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("short-stream parallel characteristics differ from sequential")
	}
}
