package core

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
)

// TestRateMeasure is a measurement harness, not a gate: it prints the
// rate-mode scaling curves (aggregate IPC / per-copy IPC / shared-L3
// MPKI / back-invalidations vs. copy count) and the placement runtime
// distributions recorded in DESIGN.md section 16 (EXPERIMENTS.md has
// the recipe). Opt-in because it costs ~30s:
//
//	SPECKIT_MEASURE=1 go test ./internal/core/ -run TestRateMeasure -v
func TestRateMeasure(t *testing.T) {
	if os.Getenv("SPECKIT_MEASURE") == "" {
		t.Skip("measurement harness; set SPECKIT_MEASURE=1 to run")
	}
	const n = 1 << 20
	// The shared L3 is shrunk so the aggregate footprint exceeds it
	// within the measured window — the same contention regime the
	// monotonicity gate runs in, at a longer window for stable numbers.
	cfg, err := machine.ApplyAxis(machine.HaswellScaled(), "l2.size", 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if cfg, err = machine.ApplyAxis(cfg, "l3.size", 256<<10); err != nil {
		t.Fatal(err)
	}
	var pairs []profile.Pair
	for _, app := range profile.CPU2017() {
		switch app.Name {
		case "500.perlbench_r", "505.mcf_r", "525.x264_r", "519.lbm_r":
			pairs = append(pairs, app.Expand(profile.Ref)[0])
		}
	}
	for _, pair := range pairs {
		for _, copies := range []int{1, 2, 4, 8} {
			o := Options{Instructions: n, Machine: cfg}
			o = o.withDefaults()
			o.RateCopies = copies
			c, err := characterizeScenario(context.Background(), pair, o)
			if err != nil {
				t.Fatal(err)
			}
			perCopy := 0.0
			for _, v := range c.Rate.PerCopyIPC {
				perCopy += v
			}
			perCopy /= float64(len(c.Rate.PerCopyIPC))
			fmt.Printf("%s copies=%d aggIPC=%.3f perCopyIPC=%.3f L3MPKI=%.2f backinv=%d\n",
				pair.Name(), copies, c.Rate.AggregateIPC, perCopy,
				c.Rate.SharedL3MPKI, c.Rate.BackInvalidations)
		}
	}

	// Placement distributions on the default machine: random placement's
	// multimodal runtime plus the best/worst bracket.
	base := machine.HaswellScaled()
	for _, pl := range []machine.Placement{machine.PlaceRandom, machine.PlaceBest, machine.PlaceWorst} {
		for _, pair := range pairs {
			o := Options{Instructions: n, Machine: base}
			o.Topology = machine.Topology{PCores: 4, ECores: 4, Placement: pl}
			c, err := CharacterizePair(pair, o)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range c.Runtime.Modes {
				fmt.Printf("%s topo=%s class=%s weight=%.2f time=%.4fs ipc=%.3f\n",
					pair.Name(), c.Runtime.Topology, m.Class, m.Weight, m.ExecSeconds, m.IPC)
			}
		}
	}
}
