package core

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/store"
)

// TestSamplingKeyNoAlias: sampled results are estimates, not
// bit-identical to exact runs, so a sampled key may never alias an
// exact key — nor a key sampled at a different knob — while exact keys
// stay byte-stable across the feature's introduction (a live cache or
// store written before sampling existed keeps serving exact runs).
func TestSamplingKeyNoAlias(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	exact := testOpt().withDefaults()
	exactPrefix := campaignKeyPrefix(&exact)
	if strings.Contains(exactPrefix, "sampling") {
		t.Errorf("exact prefix %q mentions sampling; exact keys must not move with the feature", exactPrefix)
	}
	exactKey := pairKey(exactPrefix, &pair)

	sampled := exact
	sampled.Sampling = machine.DefaultSampling()
	sampledKey := pairKey(campaignKeyPrefix(&sampled), &pair)
	if sampledKey == exactKey {
		t.Error("sampled key aliases the exact key")
	}

	// Every knob field independently separates keys: two sampled
	// campaigns at different knobs produce different estimates.
	seen := map[string]string{"exact": exactKey, "default": sampledKey}
	for name, knob := range map[string]machine.Sampling{
		"half-period": {Period: 131072, DetailLen: 8192, WarmupLen: 8192},
		"half-detail": {Period: 262144, DetailLen: 4096, WarmupLen: 8192},
		"no-warmup":   {Period: 262144, DetailLen: 8192, WarmupLen: 0},
	} {
		o := exact
		o.Sampling = knob
		k := pairKey(campaignKeyPrefix(&o), &pair)
		for prev, pk := range seen {
			if k == pk {
				t.Errorf("knob %s aliases %s", name, prev)
			}
		}
		seen[name] = k
	}
}

// TestSampledStoreNoReuse: the persistent store tier must keep sampled
// and exact results apart — an exact campaign over a store populated by
// a sampled campaign re-simulates every pair, and vice versa.
func TestSampledStoreNoReuse(t *testing.T) {
	dir := t.TempDir()
	pairs := fakePairs(4)

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sampledOpt := Options{Instructions: 20000, Store: st1,
		Sampling: machine.DefaultSampling()}
	if _, err := Characterize(pairs, sampledOpt); err != nil {
		t.Fatal(err)
	}
	if w := st1.Stats().Writes; w != uint64(len(pairs)) {
		t.Fatalf("sampled campaign wrote %d records, want %d", w, len(pairs))
	}

	// Exact campaign on the same store: every pair must simulate.
	var simulated atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, o Options) (*Characteristics, error) {
		simulated.Add(1)
		return characterizePairCtx(ctx, pair, o)
	})
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache := sched.NewCache()
	exactOpt := Options{Instructions: 20000, Store: st2, Cache: cache}
	exactRes, err := Characterize(pairs, exactOpt)
	if err != nil {
		t.Fatal(err)
	}
	if n := simulated.Load(); n != int64(len(pairs)) {
		t.Errorf("exact campaign over a sampled store simulated %d pairs, want all %d", n, len(pairs))
	}
	if s := cache.Stats(); s.StoreHits != 0 {
		t.Errorf("exact campaign took %d store hits from sampled records", s.StoreHits)
	}

	// And back: a sampled campaign at the same knob IS served from the
	// store, proving the separation is by key, not by accident.
	simulated.Store(0)
	st3, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	repeatOpt := Options{Instructions: 20000, Store: st3,
		Cache: sched.NewCache(), Sampling: machine.DefaultSampling()}
	if _, err := Characterize(pairs, repeatOpt); err != nil {
		t.Fatal(err)
	}
	if n := simulated.Load(); n != 0 {
		t.Errorf("repeat sampled campaign simulated %d pairs, want 0 (store-served)", n)
	}

	// The exact re-run above also wrote its records; a fresh exact
	// campaign is store-served and bit-identical to the simulated one.
	st4, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Characterize(pairs, Options{Instructions: 20000, Store: st4, Cache: sched.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if n := simulated.Load(); n != 0 {
		t.Errorf("repeat exact campaign simulated %d pairs, want 0", n)
	}
	if !reflect.DeepEqual(exactRes, again) {
		t.Error("store-served exact results differ from simulated ones")
	}
}
