package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
)

// TestScenarioKeyNoAlias: rate-mode and topology runs produce results of
// a different shape (contention stats, runtime distributions), so their
// keys may never alias a plain exact key, each other, or a different
// knob setting — while the disabled knobs leave existing exact keys
// byte-stable, so a live store written before the scenario API existed
// keeps serving single-copy campaigns.
func TestScenarioKeyNoAlias(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	key := func(mut func(*Options)) string {
		o := testOpt()
		if mut != nil {
			mut(&o)
		}
		o = o.withDefaults()
		return pairKey(campaignKeyPrefix(&o), &pair)
	}

	exact := key(nil)
	eo := testOpt().withDefaults()
	if p := campaignKeyPrefix(&eo); strings.Contains(p, "rate=") || strings.Contains(p, "topo=") {
		t.Errorf("exact prefix %q mentions rate/topo; exact keys must not move with the feature", p)
	}
	for _, n := range []int{0, 1} {
		if key(func(o *Options) { o.RateCopies = n }) != exact {
			t.Errorf("RateCopies=%d changes the key over the zero value", n)
		}
	}

	r4 := key(func(o *Options) { o.RateCopies = 4 })
	r8 := key(func(o *Options) { o.RateCopies = 8 })
	topo := machine.Topology{PCores: 4, ECores: 4, Placement: machine.PlaceRandom}
	tp := key(func(o *Options) { o.Topology = topo })
	tpPinned := key(func(o *Options) {
		o.Topology = machine.Topology{PCores: 4, ECores: 4, Placement: machine.PlacePinnedE}
	})
	both := key(func(o *Options) { o.RateCopies = 4; o.Topology = topo })

	keys := map[string]string{
		"exact": exact, "rate=4": r4, "rate=8": r8,
		"topo=random": tp, "topo=pinned-e": tpPinned, "rate+topo": both,
	}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && ka == kb {
				t.Errorf("scenario %s aliases %s", a, b)
			}
		}
	}

	// Both tags are versioned: a kernel revision (interleave quantum,
	// placement model) must invalidate stored results, not serve ones
	// computed by an older algorithm.
	ro := testOpt()
	ro.RateCopies = 4
	ro.Topology = topo
	ro = ro.withDefaults()
	p := campaignKeyPrefix(&ro)
	if !strings.Contains(p, "rate=4-v1") {
		t.Errorf("rate prefix %q lacks a versioned rate tag", p)
	}
	if !strings.Contains(p, "topo=4P4E-random-v1") {
		t.Errorf("topology prefix %q lacks a versioned topo tag", p)
	}
}

// TestScenarioExactTierOnly: contention and placement have no sampled or
// analytic shortcut, so the combination fails fast at the campaign level
// instead of silently screening contention-free results.
func TestScenarioExactTierOnly(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"rate+sampled", func(o *Options) { o.RateCopies = 4; o.Sampling = machine.DefaultSampling() }},
		{"rate+analytic", func(o *Options) { o.RateCopies = 4; o.Fidelity = machine.FidelityAnalytic }},
		{"topo+analytic", func(o *Options) {
			o.Topology = machine.Topology{PCores: 2, ECores: 2, Placement: machine.PlaceRandom}
			o.Fidelity = machine.FidelityAnalytic
		}},
	}
	for _, tc := range cases {
		o := testOpt()
		tc.mut(&o)
		if _, err := Characterize(fakePairs(1), o); err == nil {
			t.Errorf("%s: Characterize succeeded, want exact-tier rejection", tc.name)
		}
	}
}

// TestRateMPKIMonotone charts the paper-style scaling curve: for four
// workloads with distinct memory behavior, the shared-L3 MPKI at copies
// 1, 2, 4 and 8 must be non-decreasing — contenders dividing a fixed
// shared L3 can only add capacity misses. The L3 is shrunk so the
// aggregate footprint actually exceeds it (at the default 8 MiB every
// test-sized footprint fits and the curve is flat sample noise), and a
// small slack absorbs the seed decorrelation between copy sets — each
// copy count interleaves a different stream population. Copies=1 runs
// through the same interleaved kernel (characterizeScenario called
// directly, below the campaign normalization that maps 1 to the
// single-copy path) so the curve's anchor is measured, not assumed.
func TestRateMPKIMonotone(t *testing.T) {
	cfg, err := machine.ApplyAxis(machine.HaswellScaled(), "l2.size", 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if cfg, err = machine.ApplyAxis(cfg, "l3.size", 256<<10); err != nil {
		t.Fatal(err)
	}
	pairs := []profile.Pair{
		profile.CPU2017()[0].Expand(profile.Test)[0],
		profile.CPU2017()[2].Expand(profile.Test)[0],
		profile.CPU2017()[4].Expand(profile.Test)[0],
		profile.CPU2017()[6].Expand(profile.Test)[0],
	}
	const slack = 0.98 // seed-to-seed sample variation between copy sets
	for _, pair := range pairs {
		prev := -1.0
		grew := false
		for _, copies := range []int{1, 2, 4, 8} {
			o := testOpt()
			o.Machine = cfg
			o = o.withDefaults()
			o.RateCopies = copies
			c, err := characterizeScenario(context.Background(), pair, o)
			if err != nil {
				t.Fatalf("%s copies=%d: %v", pair.Name(), copies, err)
			}
			if c.Rate == nil || c.Rate.Copies != copies {
				t.Fatalf("%s copies=%d: missing rate stats", pair.Name(), copies)
			}
			if c.Rate.SharedL3MPKI < prev*slack {
				t.Errorf("%s: shared-L3 MPKI not monotone: %d copies -> %.4f, previous %.4f",
					pair.Name(), copies, c.Rate.SharedL3MPKI, prev)
			}
			if c.Rate.SharedL3MPKI > prev {
				grew = true
			}
			prev = c.Rate.SharedL3MPKI
			if len(c.Rate.PerCopyIPC) != copies {
				t.Errorf("%s copies=%d: %d per-copy IPCs", pair.Name(), copies, len(c.Rate.PerCopyIPC))
			}
		}
		if !grew {
			t.Errorf("%s: MPKI curve never rises; no contention visible at 256KiB shared L3", pair.Name())
		}
	}
}

// TestTopologyModesDeterministic: a random-placement hybrid topology
// yields a multimodal runtime distribution — one mode per core class —
// whose weights and per-mode runtimes are a pure function of the
// workload seed. Two runs must agree exactly, or cached distributions
// would disagree with recomputed ones.
func TestTopologyModesDeterministic(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Test)[0]
	run := func() *Characteristics {
		o := testOpt()
		o.Topology = machine.Topology{PCores: 2, ECores: 2, Placement: machine.PlaceRandom}
		c, err := CharacterizePair(pair, o)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("random-placement characteristics differ across identical runs")
	}
	if a.Runtime == nil {
		t.Fatal("topology run carries no runtime distribution")
	}
	if len(a.Runtime.Modes) < 2 {
		t.Fatalf("random placement on 2P2E yields %d mode(s), want >= 2", len(a.Runtime.Modes))
	}
	total := 0.0
	for _, m := range a.Runtime.Modes {
		if m.Weight <= 0 {
			t.Errorf("mode %s has non-positive weight %v", m.Class, m.Weight)
		}
		total += m.Weight
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("mode weights sum to %v, want 1", total)
	}
	// The modes are genuinely distinct: an E core is narrower and
	// slower, so its runtime mode must sit above the P core's.
	var pSec, eSec float64
	for _, m := range a.Runtime.Modes {
		switch m.Class {
		case "P":
			pSec = m.ExecSeconds
		case "E":
			eSec = m.ExecSeconds
		}
	}
	if pSec == 0 || eSec == 0 {
		t.Fatalf("distribution misses a core class: %+v", a.Runtime.Modes)
	}
	if eSec <= pSec {
		t.Errorf("E-core mode runs in %.4fs, not slower than P-core %.4fs", eSec, pSec)
	}
}

// TestTopologyBestWorstBracket: the best/worst placement policies
// simulate both classes and keep the winner, so best <= worst in
// execution time and both collapse to a single full-weight mode.
func TestTopologyBestWorstBracket(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Test)[0]
	runAt := func(p machine.Placement) *Characteristics {
		o := testOpt()
		o.Topology = machine.Topology{PCores: 2, ECores: 2, Placement: p}
		c, err := CharacterizePair(pair, o)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	best, worst := runAt(machine.PlaceBest), runAt(machine.PlaceWorst)
	for name, c := range map[string]*Characteristics{"best": best, "worst": worst} {
		if c.Runtime == nil || len(c.Runtime.Modes) != 1 {
			t.Fatalf("%s placement: want exactly one surviving mode, got %+v", name, c.Runtime)
		}
		if w := c.Runtime.Modes[0].Weight; w != 1 {
			t.Errorf("%s placement: winner weight %v, want 1", name, w)
		}
	}
	if best.ExecSeconds > worst.ExecSeconds {
		t.Errorf("best placement (%.4fs) slower than worst (%.4fs)", best.ExecSeconds, worst.ExecSeconds)
	}
}

// TestScenarioString: the canonical scenario string round-trips the
// typed value and renders the default scenario as plain "exact".
func TestScenarioString(t *testing.T) {
	cases := []struct {
		sc   Scenario
		want string
	}{
		{Scenario{}, "exact"},
		{Scenario{Fidelity: machine.FidelitySampled}, "sampled"},
		{Scenario{Sampling: machine.DefaultSampling()}, "sampled"},
		{Scenario{Fidelity: machine.FidelityAnalytic}, "analytic"},
		{Scenario{IntraPairWorkers: 4}, "j-pair=4"},
		{Scenario{RateCopies: 8}, "rate=8"},
		{Scenario{
			RateCopies: 4,
			Topology:   machine.Topology{PCores: 4, ECores: 4, Placement: machine.PlaceRandom},
		}, "rate=4,topo=4P4E-random"},
	}
	for _, tc := range cases {
		if got := tc.sc.String(); got != tc.want {
			t.Errorf("Scenario%+v.String() = %q, want %q", tc.sc, got, tc.want)
		}
	}
}
