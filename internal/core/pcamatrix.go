package core

import (
	"repro/internal/perf"
	"repro/internal/profile"
	"repro/internal/stats"
)

// PCACharacteristicNames lists the 20 microarchitecture-independent
// characteristics of Table VIII, in matrix column order.
var PCACharacteristicNames = []string{
	perf.InstRetired,
	perf.AllLoads,
	perf.AllStores,
	"load_uops(%)",
	"store_uops(%)",
	"total_mem_uops(%)",
	perf.AllBranches,
	"branch_inst(%)",
	perf.CondBranches,
	perf.DirectJumps,
	perf.DirectCalls,
	perf.IndirectJumps,
	perf.Returns,
	"branch_conditional(%)",
	"branch_direct_jump(%)",
	"branch_near_call(%)",
	"branch_indirect_jump_non_call_ret(%)",
	"branch_indirect_near_return(%)",
	"rss",
	"vsz",
}

// PCAMatrix assembles the paper's [pairs x 20] observation matrix from a
// characterization run. Count-valued characteristics are extrapolated to
// nominal full-run totals (measured per-instruction rates times the
// nominal instruction count); percentage and footprint characteristics
// are used directly. It also returns the pair names in row order.
func PCAMatrix(chars []Characteristics) (*stats.Matrix, []string) {
	m := stats.NewMatrix(len(chars), len(PCACharacteristicNames))
	names := make([]string, len(chars))
	for i := range chars {
		c := &chars[i]
		names[i] = c.Pair.Name()
		nominal := c.InstrBillions * 1e9
		// Scale a sampled counter to a nominal full-run count.
		count := func(name string) float64 {
			v := float64(c.Counters.MustValue(name))
			n := float64(c.Counters.MustValue(perf.InstRetired))
			if n == 0 {
				return 0
			}
			return v / n * nominal
		}
		row := []float64{
			nominal,
			count(perf.AllLoads),
			count(perf.AllStores),
			c.LoadPct,
			c.StorePct,
			c.MemPct(),
			count(perf.AllBranches),
			c.BranchPct,
			count(perf.CondBranches),
			count(perf.DirectJumps),
			count(perf.DirectCalls),
			count(perf.IndirectJumps),
			count(perf.Returns),
			c.CondPct,
			c.JumpPct,
			c.CallPct,
			c.IndirectPct,
			c.ReturnPct,
			c.RSSMiB,
			c.VSZMiB,
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m, names
}

// SuiteSummary is one row of Table II: a mini-suite's average nominal
// execution characteristics at one input size.
type SuiteSummary struct {
	Suite         profile.Suite
	Size          profile.InputSize
	InstrBillions float64
	IPC           float64
	ExecSeconds   float64
	Apps          int
	Pairs         int
}

// SummarizeSuite computes one Table II row from a characterization run
// (which must already be filtered to a single input size).
func SummarizeSuite(chars []Characteristics, s profile.Suite, size profile.InputSize) SuiteSummary {
	sub := Filter(chars, func(c *Characteristics) bool {
		return c.Pair.App.Suite == s && c.Pair.Size == size
	})
	sum := SuiteSummary{Suite: s, Size: size, Pairs: len(sub)}
	instr := PerAppMeans(sub, func(c *Characteristics) float64 { return c.InstrBillions })
	ipc := PerAppMeans(sub, func(c *Characteristics) float64 { return c.IPC })
	exec := PerAppMeans(sub, func(c *Characteristics) float64 { return c.ExecSeconds })
	sum.Apps = len(instr)
	if len(instr) == 0 {
		return sum
	}
	sum.InstrBillions = mean(instr)
	sum.IPC = mean(ipc)
	sum.ExecSeconds = mean(exec)
	return sum
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// IntFP splits CPU17 or CPU06 characteristics into integer and
// floating-point groups for the comparison tables (III-VII).
func IntFP(chars []Characteristics) (intChars, fpChars []Characteristics) {
	intChars = Filter(chars, func(c *Characteristics) bool { return c.Pair.App.Suite.IsInt() })
	fpChars = Filter(chars, func(c *Characteristics) bool { return !c.Pair.App.Suite.IsInt() })
	return intChars, fpChars
}

// ComparisonRow is one suite-group line of a comparison table.
type ComparisonRow struct {
	Label   string
	Summary Summary
}

// CompareMetric builds the six-row CPU06/CPU17 comparison (int, fp, all
// for each suite generation) the paper uses in Tables III-VII.
func CompareMetric(cpu17, cpu06 []Characteristics, pick func(*Characteristics) float64) []ComparisonRow {
	i17, f17 := IntFP(cpu17)
	i06, f06 := IntFP(cpu06)
	return []ComparisonRow{
		{Label: "CPU06 int", Summary: Aggregate(i06, pick)},
		{Label: "CPU17 int", Summary: Aggregate(i17, pick)},
		{Label: "CPU06 fp", Summary: Aggregate(f06, pick)},
		{Label: "CPU17 fp", Summary: Aggregate(f17, pick)},
		{Label: "CPU06 all", Summary: Aggregate(cpu06, pick)},
		{Label: "CPU17 all", Summary: Aggregate(cpu17, pick)},
	}
}
