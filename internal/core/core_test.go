package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sched"
)

// testOpt keeps single-CPU test runs fast while staying in the regime
// where rates are stable.
func testOpt() Options {
	return Options{Instructions: 60000}
}

// rateIntChars characterizes the rate-int suite once per test binary.
var rateIntCache []Characteristics

func rateIntChars(t *testing.T) []Characteristics {
	t.Helper()
	if rateIntCache != nil {
		return rateIntCache
	}
	var rateInt []*profile.Profile
	for _, p := range profile.CPU2017() {
		if p.Suite == profile.RateInt {
			rateInt = append(rateInt, p)
		}
	}
	chars, err := CharacterizeSuites(rateInt, profile.Ref, testOpt())
	if err != nil {
		t.Fatalf("characterize: %v", err)
	}
	rateIntCache = chars
	return chars
}

func TestCharacterizeRateInt(t *testing.T) {
	chars := rateIntChars(t)
	if len(chars) != 20 {
		t.Fatalf("rate int ref pairs = %d, want 20", len(chars))
	}
	for i := range chars {
		c := &chars[i]
		if c.IPC <= 0 || math.IsNaN(c.IPC) {
			t.Errorf("%s: IPC %v", c.Pair.Name(), c.IPC)
		}
		if c.ExecSeconds <= 0 {
			t.Errorf("%s: exec seconds %v", c.Pair.Name(), c.ExecSeconds)
		}
		if c.LoadPct <= 0 || c.StorePct <= 0 || c.BranchPct <= 0 {
			t.Errorf("%s: degenerate mix %v/%v/%v", c.Pair.Name(), c.LoadPct, c.StorePct, c.BranchPct)
		}
		if c.Counters == nil {
			t.Errorf("%s: no counters", c.Pair.Name())
		}
	}
}

// TestIPCNearTargets: calibrated pairs land on their model's target IPC.
func TestIPCNearTargets(t *testing.T) {
	for _, c := range rateIntChars(t) {
		if !c.Calibrated {
			t.Logf("%s: IPC target %.3f unreachable, ran width-limited at %.3f",
				c.Pair.Name(), c.Pair.Model.TargetIPC, c.IPC)
			continue
		}
		if rel := math.Abs(c.IPC-c.Pair.Model.TargetIPC) / c.Pair.Model.TargetIPC; rel > 0.05 {
			t.Errorf("%s: IPC %.3f vs target %.3f", c.Pair.Name(), c.IPC, c.Pair.Model.TargetIPC)
		}
	}
}

// TestMixNearTargets: measured instruction mix tracks the models.
func TestMixNearTargets(t *testing.T) {
	for _, c := range rateIntChars(t) {
		m := c.Pair.Model
		if math.Abs(c.LoadPct-m.LoadPct) > 1.5 {
			t.Errorf("%s: loads %.2f vs model %.2f", c.Pair.Name(), c.LoadPct, m.LoadPct)
		}
		if math.Abs(c.BranchPct-m.BranchPct) > 1.5 {
			t.Errorf("%s: branches %.2f vs model %.2f", c.Pair.Name(), c.BranchPct, m.BranchPct)
		}
	}
}

func TestBranchClassSharesSum(t *testing.T) {
	for _, c := range rateIntChars(t) {
		sum := c.CondPct + c.JumpPct + c.CallPct + c.IndirectPct + c.ReturnPct
		if math.Abs(sum-100) > 0.5 {
			t.Errorf("%s: branch class shares sum to %.2f", c.Pair.Name(), sum)
		}
	}
}

func TestFilterAndBySuite(t *testing.T) {
	chars := rateIntChars(t)
	all := BySuite(chars, profile.RateInt)
	if len(all) != len(chars) {
		t.Errorf("BySuite lost pairs: %d vs %d", len(all), len(chars))
	}
	none := BySuite(chars, profile.SpeedFP)
	if len(none) != 0 {
		t.Errorf("BySuite leaked %d pairs", len(none))
	}
	mcf := Filter(chars, func(c *Characteristics) bool {
		return strings.HasPrefix(c.Pair.Name(), "505.")
	})
	if len(mcf) != 1 {
		t.Errorf("mcf pairs = %d, want 1", len(mcf))
	}
}

func TestPerAppMeansCollapsesInputs(t *testing.T) {
	chars := rateIntChars(t)
	vals := PerAppMeans(chars, func(c *Characteristics) float64 { return c.IPC })
	if len(vals) != 10 {
		t.Fatalf("per-app values = %d, want 10 apps", len(vals))
	}
}

func TestAggregate(t *testing.T) {
	chars := rateIntChars(t)
	s := Aggregate(chars, func(c *Characteristics) float64 { return c.IPC })
	if s.N != 10 {
		t.Errorf("N = %d, want 10", s.N)
	}
	if s.Mean < 1.0 || s.Mean > 2.5 {
		t.Errorf("rate int mean IPC = %v, expected ~1.7", s.Mean)
	}
	if s.Std <= 0 {
		t.Errorf("zero std dev across heterogeneous apps")
	}
	empty := Aggregate(nil, func(c *Characteristics) float64 { return 0 })
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty aggregate = %+v", empty)
	}
}

func TestSummarizeSuite(t *testing.T) {
	chars := rateIntChars(t)
	sum := SummarizeSuite(chars, profile.RateInt, profile.Ref)
	if sum.Apps != 10 || sum.Pairs != 20 {
		t.Errorf("summary apps/pairs = %d/%d, want 10/20", sum.Apps, sum.Pairs)
	}
	if math.Abs(sum.InstrBillions-1751.516)/1751.516 > 0.12 {
		t.Errorf("instr billions = %v, want ~1751.5", sum.InstrBillions)
	}
	if math.Abs(sum.IPC-1.724)/1.724 > 0.12 {
		t.Errorf("IPC = %v, want ~1.724", sum.IPC)
	}
	missing := SummarizeSuite(chars, profile.SpeedFP, profile.Ref)
	if missing.Apps != 0 || missing.InstrBillions != 0 {
		t.Errorf("missing suite summary = %+v", missing)
	}
}

func TestPCAMatrixShape(t *testing.T) {
	chars := rateIntChars(t)
	m, names := PCAMatrix(chars)
	if m.Rows() != len(chars) || m.Cols() != 20 {
		t.Fatalf("matrix %dx%d, want %dx20", m.Rows(), m.Cols(), len(chars))
	}
	if len(PCACharacteristicNames) != 20 {
		t.Fatalf("characteristic names = %d, want 20", len(PCACharacteristicNames))
	}
	if len(names) != len(chars) {
		t.Fatalf("pair names = %d", len(names))
	}
	// Count characteristics scale with nominal instructions.
	for i := range chars {
		nominal := chars[i].InstrBillions * 1e9
		if m.At(i, 0) != nominal {
			t.Errorf("row %d inst_retired = %v, want %v", i, m.At(i, 0), nominal)
		}
		if m.At(i, 1) <= 0 || m.At(i, 1) >= nominal {
			t.Errorf("row %d loads count %v out of range", i, m.At(i, 1))
		}
		// Footprints present.
		if m.At(i, 18) <= 0 || m.At(i, 19) < m.At(i, 18) {
			t.Errorf("row %d rss/vsz = %v/%v", i, m.At(i, 18), m.At(i, 19))
		}
	}
}

func TestIntFP(t *testing.T) {
	chars := rateIntChars(t)
	ints, fps := IntFP(chars)
	if len(ints) != len(chars) || len(fps) != 0 {
		t.Errorf("IntFP split = %d/%d", len(ints), len(fps))
	}
}

func TestCompareMetricShape(t *testing.T) {
	chars := rateIntChars(t)
	rows := CompareMetric(chars, chars, func(c *Characteristics) float64 { return c.IPC })
	if len(rows) != 6 {
		t.Fatalf("comparison rows = %d, want 6", len(rows))
	}
	labels := []string{"CPU06 int", "CPU17 int", "CPU06 fp", "CPU17 fp", "CPU06 all", "CPU17 all"}
	for i, r := range rows {
		if r.Label != labels[i] {
			t.Errorf("row %d label %q, want %q", i, r.Label, labels[i])
		}
	}
	if rows[0].Summary.Mean != rows[1].Summary.Mean {
		t.Error("identical inputs produced different summaries")
	}
}

func TestCharacterizePairDeterministic(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0] // 505.mcf_r
	a, err := CharacterizePair(pair, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CharacterizePair(pair, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.L2MissPct != b.L2MissPct || a.MispredictPct != b.MispredictPct {
		t.Error("characterization not deterministic")
	}
}

func TestExecSecondsAccountsForThreads(t *testing.T) {
	// 657.xz_s runs 4 OpenMP threads; its exec time divides by 4.
	var xz *profile.Profile
	for _, p := range profile.CPU2017() {
		if p.Name == "657.xz_s" {
			xz = p
		}
	}
	pair := xz.Expand(profile.Ref)[0]
	c, err := CharacterizePair(pair, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	single := pair.Model.InstrBillions * 1e9 / (c.IPC * 1.8e9)
	if math.Abs(c.ExecSeconds-single/4)/c.ExecSeconds > 1e-9 {
		t.Errorf("exec seconds %v, want %v (single/4)", c.ExecSeconds, single/4)
	}
}

// TestFullSizeMachine: running a pair on the full 30 MB Haswell instead
// of the 2 MB scale model keeps the microarchitecture-independent
// characteristics identical and can only lower the deep-cache pressure
// (the generator sizes its pools to the machine it runs on, so rates
// stay near targets on both).
func TestFullSizeMachine(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0] // 505.mcf_r
	scaled, err := CharacterizePair(pair, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	fullOpt := testOpt()
	fullOpt.Machine = machine.Haswell()
	full, err := CharacterizePair(pair, fullOpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.LoadPct-scaled.LoadPct) > 1.5 {
		t.Errorf("load pct differs across machines: %v vs %v", full.LoadPct, scaled.LoadPct)
	}
	if math.Abs(full.BranchPct-scaled.BranchPct) > 1.5 {
		t.Errorf("branch pct differs across machines: %v vs %v", full.BranchPct, scaled.BranchPct)
	}
	if math.Abs(full.L2MissPct-scaled.L2MissPct) > 12 {
		t.Errorf("L2 miss diverges: full %v vs scaled %v", full.L2MissPct, scaled.L2MissPct)
	}
	if full.IPC <= 0 || scaled.IPC <= 0 {
		t.Error("non-positive IPC")
	}
}

// --- Campaign scheduler behaviour ------------------------------------

// stubRunPair swaps the per-pair runner for the duration of the test.
func stubRunPair(t *testing.T, fn func(context.Context, profile.Pair, Options) (*Characteristics, error)) {
	t.Helper()
	old := runPair
	runPair = fn
	t.Cleanup(func() { runPair = old })
}

// fakePairs replicates one real pair into n distinct-named pairs, for
// scheduling tests that never simulate.
func fakePairs(n int) []profile.Pair {
	base := profile.CPU2017()[2].Expand(profile.Ref)[0]
	pairs := make([]profile.Pair, n)
	for i := range pairs {
		p := base
		p.Input = fmt.Sprintf("in%03d", i)
		pairs[i] = p
	}
	return pairs
}

// TestCharacterizeBoundedGoroutines: a 500-pair campaign keeps the
// goroutine count O(Parallelism) — the regression the scheduler fixes
// over the seed's goroutine-per-pair fan-out.
func TestCharacterizeBoundedGoroutines(t *testing.T) {
	const parallelism = 8
	baseline := runtime.NumGoroutine()
	var peak atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, opt Options) (*Characteristics, error) {
		g := int64(runtime.NumGoroutine())
		for {
			old := peak.Load()
			if g <= old || peak.CompareAndSwap(old, g) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		return &Characteristics{Pair: pair}, nil
	})
	opt := testOpt()
	opt.Parallelism = parallelism
	out, err := Characterize(fakePairs(500), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 500 {
		t.Fatalf("results = %d", len(out))
	}
	// Workers + feeder + test harness slack; the seed implementation
	// peaked at ~500 here.
	limit := int64(baseline + parallelism + 10)
	if got := peak.Load(); got > limit {
		t.Errorf("peak goroutines %d exceeds O(Parallelism) bound %d", got, limit)
	}
}

// TestCharacterizeFailingPairStopsEarly: one failing pair aborts the
// campaign with an error naming the pair, and the number of pairs
// simulated after the failure is bounded by Parallelism, not by the
// remaining queue length.
func TestCharacterizeFailingPairStopsEarly(t *testing.T) {
	const parallelism = 4
	boom := errors.New("synthetic model failure")
	var failed atomic.Bool
	var afterFail atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, opt Options) (*Characteristics, error) {
		if pair.Input == "in000" {
			failed.Store(true)
			return nil, boom
		}
		if failed.Load() {
			afterFail.Add(1)
		}
		time.Sleep(time.Millisecond)
		return &Characteristics{Pair: pair}, nil
	})
	opt := testOpt()
	opt.Parallelism = parallelism
	out, err := Characterize(fakePairs(500), opt)
	if out != nil {
		t.Error("failed campaign returned results")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped model failure", err)
	}
	if !strings.Contains(err.Error(), "505.mcf_r-in000") {
		t.Errorf("error %q does not name the failing pair", err)
	}
	if n := afterFail.Load(); n > parallelism {
		t.Errorf("%d pairs simulated after the failure, want <= Parallelism (%d)",
			n, parallelism)
	}
}

// TestCharacterizeCancelledContext: a cancelled Options.Context returns
// context.Canceled promptly without simulating the queue.
func TestCharacterizeCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	stubRunPair(t, func(ctx context.Context, pair profile.Pair, opt Options) (*Characteristics, error) {
		ran.Add(1)
		return &Characteristics{Pair: pair}, nil
	})
	opt := testOpt()
	opt.Context = ctx
	opt.Parallelism = 4
	start := time.Now()
	_, err := Characterize(fakePairs(200), opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancelled campaign did not return promptly")
	}
	if n := ran.Load(); n > 4 {
		t.Errorf("%d pairs simulated under a cancelled context", n)
	}
}

// TestCancelAbortsInFlightSimulation: cancellation reaches a real
// simulation mid-run through machine.Options.Context.
func TestCancelAbortsInFlightSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	opt := testOpt()
	opt.Instructions = 50_000_000 // would take seconds if not aborted
	start := time.Now()
	_, err := characterizePairCtx(ctx, pair, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("in-flight abort took %v", elapsed)
	}
}

// TestCharacterizeCacheBitIdentical: results with the cache are
// bit-identical to uncached results, a fully warm re-run does zero
// simulations, and the hit counters track it.
func TestCharacterizeCacheBitIdentical(t *testing.T) {
	var rateInt []*profile.Profile
	for _, p := range profile.CPU2017() {
		if p.Suite == profile.RateInt {
			rateInt = append(rateInt, p)
		}
	}
	pairs := profile.ExpandSuite(rateInt, profile.Ref)
	opt := Options{Instructions: 20000}

	uncached, err := Characterize(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Cache = sched.NewCache()
	cold, err := Characterize(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Characterize(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uncached, cold) {
		t.Error("cache-on cold results differ from uncached results")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("cached re-run results are not bit-identical")
	}
	s := opt.Cache.Stats()
	n := uint64(len(pairs))
	if s.Misses != n || s.Hits != n {
		t.Errorf("cache stats = %+v, want %d misses then %d hits", s, n, n)
	}
}

// TestPairKeySensitivity: the memoization key moves with anything that
// changes the simulation, and only with those things.
func TestPairKeySensitivity(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0]
	opt := testOpt().withDefaults()
	base := pairKey(campaignKeyPrefix(&opt), &pair)

	if again := pairKey(campaignKeyPrefix(&opt), &pair); again != base {
		t.Error("key not deterministic")
	}
	o2 := opt
	o2.Instructions++
	if pairKey(campaignKeyPrefix(&o2), &pair) == base {
		t.Error("key ignores Instructions")
	}
	o3 := opt
	o3.MultiplexSlots = 4
	if pairKey(campaignKeyPrefix(&o3), &pair) == base {
		t.Error("key ignores MultiplexSlots")
	}
	o4 := opt
	o4.Machine = machine.Haswell()
	if pairKey(campaignKeyPrefix(&o4), &pair) == base {
		t.Error("key ignores the machine config")
	}
	p2 := pair
	p2.Model.L3MissPct += 0.001
	if pairKey(campaignKeyPrefix(&opt), &p2) == base {
		t.Error("key ignores model parameters")
	}
	p3 := pair
	p3.Input = "other"
	if pairKey(campaignKeyPrefix(&opt), &p3) == base {
		t.Error("key ignores pair identity")
	}
	// Parallelism and callbacks must NOT change the key: they do not
	// affect results.
	o5 := opt
	o5.Parallelism = 1
	if pairKey(campaignKeyPrefix(&o5), &pair) != base {
		t.Error("key depends on Parallelism")
	}
}

// TestExecSecondsGuard: degenerate rates produce 0, not +Inf/NaN.
func TestExecSecondsGuard(t *testing.T) {
	if got := execSeconds(100, 0, 1.8e9, 1); got != 0 {
		t.Errorf("zero IPC: exec seconds = %v, want 0", got)
	}
	if got := execSeconds(100, math.NaN(), 1.8e9, 1); got != 0 {
		t.Errorf("NaN IPC: exec seconds = %v, want 0", got)
	}
	got := execSeconds(1, 2, 1.8e9, 1)
	want := 1e9 / (2 * 1.8e9)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("exec seconds = %v, want %v", got, want)
	}
	if half := execSeconds(1, 2, 1.8e9, 2); math.Abs(half-want/2) > 1e-12 {
		t.Errorf("threads ignored: %v vs %v", half, want/2)
	}
}
