package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/profile"
)

// This file derives the memoization keys for the campaign result cache
// (Options.Cache). A key is a content hash of everything that determines
// a pair's Characteristics: the pair identity, its fully resolved model,
// the machine configuration, and the run options. Equal keys therefore
// guarantee bit-identical results, which is what lets cache hits stand in
// for simulations without perturbing any downstream analysis.

// campaignKeyPrefix captures the per-campaign (pair-independent) part of
// the key: machine fingerprint and run options. Computed once per
// campaign, not once per pair, because Config.Fingerprint constructs a
// throwaway predictor. The sampling and fidelity knobs are appended only
// when they leave the exact tier, so exact-run keys are stable across
// each feature's introduction while sampled and analytic results — which
// are estimates, not bit-identical to exact ones — can never alias an
// exact entry in any cache tier, an entry of another tier, or an entry
// sampled at a different knob. The analytic tag carries a version so a
// model revision invalidates stored predictions instead of serving
// stale ones.
func campaignKeyPrefix(opt *Options) string {
	key := fmt.Sprintf("%s|n=%d|mux=%d", opt.Machine.Fingerprint(),
		opt.Instructions, opt.MultiplexSlots)
	if opt.Sampling.Enabled() {
		key += fmt.Sprintf("|sampling=%d/%d/%d",
			opt.Sampling.Period, opt.Sampling.DetailLen, opt.Sampling.WarmupLen)
	}
	if opt.Fidelity == machine.FidelityAnalytic {
		key += "|fidelity=analytic-v1"
	}
	if opt.IntraPairWorkers > 1 {
		// Parallel windowed results are stitched estimates, keyed per
		// worker count so they never alias a sequential entry and a
		// re-shard at a different K re-simulates instead of serving a
		// differently-stitched cached result. Versioned like the
		// analytic tag so a stitching revision invalidates old entries.
		key += fmt.Sprintf("|pairwindows=%d-v1", opt.IntraPairWorkers)
	}
	if opt.RateCopies > 0 {
		// Rate-mode results measure contention on the shared L3, so the
		// copy count is part of what was measured; versioned so a change
		// to the interleaving model (sharedQuantum, back-invalidation
		// accounting) invalidates stored curves instead of mixing models
		// within one sweep.
		key += fmt.Sprintf("|rate=%d-v1", opt.RateCopies)
	}
	if opt.Topology.Enabled() {
		// The canonical topology string is bijective with the value, and
		// the E-core derivation is deterministic from the base config, so
		// the string plus the machine fingerprint fully keys the
		// heterogeneous scenario.
		key += fmt.Sprintf("|topo=%s-v1", opt.Topology)
	}
	return key
}

// CampaignKeys returns each pair's result-cache content key under the
// given campaign options, in pair order — the same keys Characterize
// derives internally. specserved's coordinator uses them to scatter a
// campaign across a worker fleet by consistent hash of the pair key and
// to write gathered results into its own cache tiers: because workers
// derive identical keys from identical (pair, machine, options) inputs,
// a sharded campaign populates exactly the store entries a single-node
// run would.
func CampaignKeys(pairs []profile.Pair, opt Options) []string {
	opt = opt.withDefaults()
	prefix := campaignKeyPrefix(&opt)
	keys := make([]string, len(pairs))
	for i := range pairs {
		keys[i] = pairKey(prefix, &pairs[i])
	}
	return keys
}

// pairKey hashes the campaign prefix together with the pair identity and
// every model parameter the simulation consumes.
func pairKey(prefix string, pair *profile.Pair) string {
	h := sha256.New()
	io.WriteString(h, prefix)
	m := &pair.Model
	fmt.Fprintf(h, "|%s|%d|%s|", pair.App.Name, pair.Size, pair.Input)
	fmt.Fprintf(h, "%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%v|%d|%d|%d",
		m.InstrBillions, m.TargetIPC, m.LoadPct, m.StorePct, m.BranchPct,
		m.Mix, m.MispredictPct, m.L1MissPct, m.L2MissPct, m.L3MissPct,
		m.RSSMiB, m.VSZMiB, m.MLP, m.CodeKiB, m.BranchSites, m.Threads,
		m.Seed)
	return hex.EncodeToString(h.Sum(nil))
}
