package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Scenario bundles every knob that changes what a campaign measures —
// the fidelity tier, the sampling knob, intra-pair parallelism, the
// rate-mode copy count and the machine topology — into one typed value
// with a canonical string form. The individual Options fields remain
// the storage; Scenario is the API surface that keeps them consistent:
// CLIs parse one -scenario flag, the server accepts one spec object,
// and both land here before normalization.
type Scenario struct {
	// Fidelity selects the simulation tier (Options.Fidelity).
	Fidelity machine.Fidelity
	// Sampling is the systematic-sampling knob (Options.Sampling).
	Sampling machine.Sampling
	// IntraPairWorkers splits each pair across cores (Options.IntraPairWorkers).
	IntraPairWorkers int
	// RateCopies is the rate-mode copy count (Options.RateCopies).
	RateCopies int
	// Topology is the heterogeneous-machine model (Options.Topology).
	Topology machine.Topology
}

// Scenario extracts the measurement scenario from the options.
func (o Options) Scenario() Scenario {
	return Scenario{
		Fidelity:         o.Fidelity,
		Sampling:         o.Sampling,
		IntraPairWorkers: o.IntraPairWorkers,
		RateCopies:       o.RateCopies,
		Topology:         o.Topology,
	}
}

// Apply copies the scenario onto the options, returning the result. It
// does not normalize; Characterize's withDefaults does that, so a
// scenario round-trips through Options exactly like individually set
// fields.
func (s Scenario) Apply(o Options) Options {
	o.Fidelity = s.Fidelity
	o.Sampling = s.Sampling
	o.IntraPairWorkers = s.IntraPairWorkers
	o.RateCopies = s.RateCopies
	o.Topology = s.Topology
	return o
}

// Validate rejects scenarios no tier can honor, with the same rules
// Characterize enforces (validateFidelity over the applied options).
func (s Scenario) Validate() error {
	opt := s.Apply(Options{}).withDefaults()
	return validateFidelity(&opt)
}

// String renders the scenario in the comma-separated token form
// ParseScenario (internal/cliflags) accepts: "exact" for the zero
// value, otherwise only the knobs that differ from it, e.g.
// "sampled,j-pair=8" or "rate=4,topo=4P4E-random". The string is a
// human/CLI surface, not a cache key — keys are derived from the
// normalized Options fields as before.
func (s Scenario) String() string {
	var tok []string
	switch {
	case s.Sampling.Enabled() && s.Sampling != machine.DefaultSampling():
		tok = append(tok, "sampling="+s.Sampling.String())
	case s.Fidelity != machine.FidelityExact || s.Sampling.Enabled():
		tok = append(tok, machine.FidelitySampled.String())
	}
	if s.Fidelity == machine.FidelityAnalytic {
		tok = tok[:0]
		tok = append(tok, machine.FidelityAnalytic.String())
	}
	if s.IntraPairWorkers > 1 {
		tok = append(tok, fmt.Sprintf("j-pair=%d", s.IntraPairWorkers))
	}
	if s.RateCopies > 1 {
		tok = append(tok, fmt.Sprintf("rate=%d", s.RateCopies))
	}
	if s.Topology.Enabled() {
		tok = append(tok, "topo="+s.Topology.String())
	}
	if len(tok) == 0 {
		return machine.FidelityExact.String()
	}
	return strings.Join(tok, ",")
}

// RateStats is the contention accounting of a rate-mode run: the
// shared-level view RunShared measures, carried on Characteristics so
// scaling curves (MPKI and aggregate throughput versus copies) can be
// read straight off campaign results.
type RateStats struct {
	// Copies is the number of co-running workload copies.
	Copies int
	// AggregateIPC is total instructions over the slowest copy's cycles.
	AggregateIPC float64
	// SharedL3MPKI is shared-L3 demand misses per thousand instructions
	// summed over all copies — the contention scaling-curve metric.
	SharedL3MPKI float64
	// BackInvalidations counts private-cache lines invalidated by
	// inclusive shared-L3 evictions over the measured window.
	BackInvalidations uint64
	// PerCopyIPC holds each copy's individual IPC, in copy order.
	PerCopyIPC []float64
}

// RuntimeMode is one branch of a placement runtime distribution: the
// workload landed on one core class with some probability and ran at
// that class's speed.
type RuntimeMode struct {
	// Class is the core class, "P" or "E".
	Class string
	// Weight is the branch probability; weights sum to 1.
	Weight float64
	// ExecSeconds is the modeled full-run time on this class.
	ExecSeconds float64
	// IPC is the modeled per-copy IPC on this class.
	IPC float64
}

// RuntimeDist is the runtime distribution a heterogeneous topology
// induces: under an unaware (random) scheduler the same binary has one
// runtime mode per core class — the multimodal-runtime effect — while
// pinned and aware policies collapse it to a single mode.
type RuntimeDist struct {
	// Topology is the canonical topology string ("4P4E-random").
	Topology string
	// Modes holds the distribution branches in deterministic (P before
	// E) order.
	Modes []RuntimeMode
}

// modeRun is one simulated branch of a scenario: a core class's config,
// its shared-L3 result, and the metrics derived from it.
type modeRun struct {
	mode     machine.Mode
	cfg      machine.Config
	res      *machine.SharedResult
	counters *perf.Counters
	ipc      float64
	execSec  float64
}

// characterizeScenario handles the rate-mode and topology dispatch of
// characterizePairCtx: it runs RateCopies copies of the pair's workload
// on the shared-L3 interleaved kernel (machine.RunShared), once per
// placement mode of the topology, and folds the per-mode results into
// one Characteristics — headline scalars as the placement-weighted
// mixture, Counters/Breakdown from the dominant mode, plus the Rate and
// Runtime extensions.
func characterizeScenario(ctx context.Context, pair profile.Pair, opt Options) (*Characteristics, error) {
	m := pair.Model
	copies := opt.RateCopies
	if copies < 1 {
		copies = 1
	}
	topo := opt.Topology
	modes := []machine.Mode{{Class: "P", Weight: 1}}
	if topo.Enabled() {
		modes = topo.Modes()
	}
	runs := make([]modeRun, 0, len(modes))
	for _, mode := range modes {
		cfg := opt.Machine
		if topo.Enabled() {
			cfg = topo.ClassConfig(opt.Machine, mode.Class)
		}
		srcs := make([]trace.Source, copies)
		var prologue uint64
		for i := 0; i < copies; i++ {
			tm := m
			// Decorrelate the copies' address streams the way threaded
			// runs decorrelate OpenMP threads — but unlike threads, rate
			// copies each run the whole problem, so the footprint is NOT
			// divided.
			tm.Seed = m.Seed + uint64(i)*0x9e37
			gen, err := synth.New(tm, cfg.Geometry())
			if err != nil {
				return nil, err
			}
			if p := gen.Prologue(); p > prologue {
				prologue = p
			}
			srcs[i] = gen
		}
		res, err := machine.RunShared(cfg, srcs, machine.Options{
			Instructions:       opt.Instructions,
			WarmupInstructions: prologue,
			Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
			CalibrateIPC:       m.TargetIPC,
			Context:            ctx,
			BatchSize:          opt.BatchSize,
			Span:               obs.SpanFromContext(ctx),
		})
		if err != nil {
			return nil, err
		}
		counters := sumCounters(res)
		if opt.MultiplexSlots > 0 {
			counters = perf.Multiplex(counters, opt.MultiplexSlots, m.Seed)
		}
		// The per-copy IPC (not the summed-counter aggregate) is the
		// mode's rate metric: copies are statistically identical, so the
		// average is a variance reduction, matching CharacterizeThreaded.
		ipc := 0.0
		for _, pc := range res.PerCore {
			ipc += pc.IPC / float64(copies)
		}
		runs = append(runs, modeRun{
			mode:     mode,
			cfg:      cfg,
			res:      res,
			counters: counters,
			ipc:      ipc,
			execSec:  execSeconds(m.InstrBillions, ipc, cfg.ClockHz, m.Threads),
		})
	}
	// Aware schedulers collapse the distribution: only the winning class
	// survives, with its weight renormalized to certainty. Which class
	// wins is a measured outcome (usually P for best, E for worst, but
	// the model decides), so selection happens after simulation.
	if topo.Enabled() && (topo.Placement == machine.PlaceBest || topo.Placement == machine.PlaceWorst) {
		win := 0
		for i := 1; i < len(runs); i++ {
			better := runs[i].execSec < runs[win].execSec
			if topo.Placement == machine.PlaceWorst {
				better = runs[i].execSec > runs[win].execSec
			}
			if better {
				win = i
			}
		}
		runs = runs[win : win+1]
		runs[0].mode.Weight = 1
	}
	// The dominant mode (highest weight, P-first tie-break from mode
	// order) lends the result its raw Counters and Breakdown; scalar
	// headline metrics are the weighted mixture across modes.
	dom := 0
	for i := 1; i < len(runs); i++ {
		if runs[i].mode.Weight > runs[dom].mode.Weight {
			dom = i
		}
	}
	c := &Characteristics{
		Pair:          pair,
		InstrBillions: m.InstrBillions,
		RSSMiB:        m.RSSMiB,
		VSZMiB:        m.VSZMiB,
		Counters:      runs[dom].counters,
	}
	for _, r := range runs {
		w := r.mode.Weight
		c.IPC += w * r.ipc
		c.ExecSeconds += w * r.execSec
		c.LoadPct += w * r.counters.LoadPct()
		c.StorePct += w * r.counters.StorePct()
		c.BranchPct += w * r.counters.BranchPct()
		c.MispredictPct += w * r.counters.MispredictPct()
		c.L1MissPct += w * r.counters.CacheMissPct(1)
		c.L2MissPct += w * r.counters.CacheMissPct(2)
		c.L3MissPct += w * r.counters.CacheMissPct(3)
		branches := float64(r.counters.MustValue(perf.AllBranches))
		if branches > 0 {
			pct := func(name string) float64 {
				return 100 * w * float64(r.counters.MustValue(name)) / branches
			}
			c.CondPct += pct(perf.CondBranches)
			c.JumpPct += pct(perf.DirectJumps)
			c.CallPct += pct(perf.DirectCalls)
			c.IndirectPct += pct(perf.IndirectJumps)
			c.ReturnPct += pct(perf.Returns)
		}
	}
	for _, pc := range runs[dom].res.PerCore {
		c.Breakdown.Base += pc.Breakdown.Base
		c.Breakdown.Mispredict += pc.Breakdown.Mispredict
		c.Breakdown.L2 += pc.Breakdown.L2
		c.Breakdown.L3 += pc.Breakdown.L3
		c.Breakdown.Memory += pc.Breakdown.Memory
		c.Breakdown.Fetch += pc.Breakdown.Fetch
		c.Breakdown.TLB += pc.Breakdown.TLB
		c.Calibrated = c.Calibrated || pc.Calibrated
	}
	if opt.RateCopies > 0 {
		res := runs[dom].res
		rate := &RateStats{
			Copies:            copies,
			AggregateIPC:      res.AggregateIPC,
			SharedL3MPKI:      res.SharedL3MPKI,
			BackInvalidations: res.BackInvalidations,
			PerCopyIPC:        make([]float64, len(res.PerCore)),
		}
		for i, pc := range res.PerCore {
			rate.PerCopyIPC[i] = pc.IPC
		}
		c.Rate = rate
	}
	if topo.Enabled() {
		dist := &RuntimeDist{Topology: topo.String()}
		for _, r := range runs {
			dist.Modes = append(dist.Modes, RuntimeMode{
				Class:       r.mode.Class,
				Weight:      r.mode.Weight,
				ExecSeconds: r.execSec,
				IPC:         r.ipc,
			})
		}
		c.Runtime = dist
	}
	return c, nil
}
