// Package core implements the paper's primary contribution: the workload
// characterization pipeline of Sections III-IV. It runs every
// application-input pair's synthetic workload on the simulated machine,
// collects the perf-style counters, and derives the per-pair
// characteristics and per-suite aggregates behind every table and figure.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"

	"repro/internal/analytic"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Options configure a characterization campaign.
type Options struct {
	// Machine is the simulated hardware; the zero value selects the
	// scaled Haswell characterization machine.
	Machine machine.Config
	// Instructions is the measured window per pair (default 300000).
	Instructions uint64
	// Parallelism bounds concurrent pair simulations (default NumCPU).
	Parallelism int
	// IntraPairWorkers, when >1, splits each pair's measured stream into
	// that many windows simulated concurrently and stitched with the
	// frozen-cache warm-state technique (machine.RunParallel) — the knob
	// that makes a single large pair scale past one core where
	// Parallelism maxes out at the number of pairs. Results are an
	// estimate of the sequential run (bit-reproducible for a fixed
	// worker count, tolerance-gated against sequential), so the knob is
	// folded into every result-cache key and can never alias an exact
	// sequential entry. Exact-tier only: the sampled and analytic tiers
	// already re-tile or skip the stream, so the knob normalizes away
	// there instead of erroring — a globally set flag composes with
	// every tier.
	IntraPairWorkers int
	// RateCopies, when >1, characterizes each pair as a rate-mode run:
	// that many copies of the workload on identical cores with private
	// L1/L2 contending on one shared inclusive L3
	// (machine.RunShared), reported with per-copy and aggregate
	// throughput plus shared-level contention stats
	// (Characteristics.Rate). Contention changes result bits, so the
	// copy count is folded into every result-cache key with a versioned
	// suffix and can never alias a single-copy entry. Exact-tier only.
	RateCopies int
	// Topology, when enabled, runs each pair on a heterogeneous
	// P-core/E-core machine under the topology's OS-placement policy;
	// non-deterministic policies (random) yield a runtime distribution
	// (Characteristics.Runtime) instead of a point estimate. Folded into
	// every result-cache key via its canonical string. Exact-tier only;
	// composes with RateCopies (each mode runs the full contention
	// scenario on its class).
	Topology machine.Topology
	// MultiplexSlots, when positive, emulates perf's counter multiplexing
	// with that many hardware counter slots (the paper programs 15
	// events on a 4-slot Haswell PMU): all derived metrics then carry the
	// corresponding scaling noise. Zero reads exact counters.
	MultiplexSlots int
	// Context, when non-nil, cancels the campaign: queued pairs are
	// skipped and in-flight simulations abort at the next cancellation
	// check. Nil means context.Background().
	Context context.Context
	// Cache, when non-nil, memoizes pair results across campaigns keyed
	// by a content hash of (pair identity and model, machine config, run
	// options). A hit skips the simulation and returns the stored
	// Characteristics bit-identical; share one cache across repeated or
	// overlapping campaigns to avoid paying for the same pair twice.
	Cache *sched.Cache
	// Store, when non-nil, is a persistent second cache tier (typically
	// internal/store's content-addressed file store) attached under the
	// result cache: pair results are written through to it as checksummed
	// records and later campaigns — including ones in other processes —
	// are served from it bit-identically. Setting Store without Cache
	// creates a campaign-local memory tier automatically.
	Store sched.Backend
	// Progress, when non-nil, receives a snapshot after each completed
	// pair (pairs done/total, cache hits split by tier, elapsed time).
	// Callbacks are invoked serially.
	Progress func(sched.Progress)
	// BatchSize is the simulation kernel's uop buffer length (0 means
	// machine.DefaultBatchSize). Purely a performance knob: results are
	// bit-identical for every batch size, so it is deliberately excluded
	// from the result-cache key — cached Characteristics stay valid when
	// it changes.
	BatchSize int
	// Sampling, when enabled, runs each pair with SMARTS-style systematic
	// sampling (machine.Options.Sampling): only periodic detailed windows
	// are simulated and the counters are extrapolated, trading a bounded
	// metric error for a multi-x speedup. Unlike BatchSize it changes
	// result bits, so the knob is folded into every result-cache key —
	// sampled and exact results can never alias in the memory or store
	// tiers. Each pair's Characteristics.Sampling then carries the
	// per-metric error estimate.
	Sampling machine.Sampling
	// Fidelity selects the simulation tier: FidelityExact (the zero
	// value) simulates every uop, FidelitySampled is shorthand for the
	// default Sampling knob (an explicit Sampling knob wins), and
	// FidelityAnalytic predicts cache behaviour from a reuse-distance
	// profile instead of simulating it (internal/analytic) — the
	// fastest tier, with error floors gated per metric family.
	// FidelityAnalytic does not compose with Sampling. Like Sampling the
	// tier changes result bits, so non-exact tiers are folded into every
	// result-cache key and can never alias each other or an exact entry.
	Fidelity machine.Fidelity
	// Trace, when non-nil, records the campaign as a span tree — one
	// campaign root, one span per pair with its satisfying cache tier,
	// and per-stage children (fast-forward/warmup/detail) under
	// simulated pairs — renderable as a JSONL run manifest
	// (obs.Trace.WriteManifest). Like BatchSize, Trace never enters any
	// result-cache key: observing a run must not change what is
	// computed or how it is cached.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.Machine.ClockHz == 0 {
		o.Machine = machine.HaswellScaled()
	}
	if o.Instructions == 0 {
		o.Instructions = 300000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	// Fidelity and Sampling normalize into one canonical pair so every
	// spelling of "sampled" derives identical cache keys: the sampled
	// tier with no explicit knob means the default knob, and an explicit
	// knob under the exact tier means the sampled tier. The invalid
	// analytic+sampling combination is left as is for Characterize to
	// reject.
	if o.Fidelity == machine.FidelitySampled && !o.Sampling.Enabled() {
		o.Sampling = machine.DefaultSampling()
	}
	if o.Sampling.Enabled() && o.Fidelity == machine.FidelityExact {
		o.Fidelity = machine.FidelitySampled
	}
	// A single copy is not a rate run: normalize so "rate=1" and "no
	// rate knob" derive byte-identical cache keys.
	if o.RateCopies <= 1 {
		o.RateCopies = 0
	}
	// Intra-pair parallelism is an exact-tier execution knob; on the
	// other tiers (or at trivial worker counts) it normalizes to zero so
	// cache keys stay byte-stable and the dispatch below never has to
	// reconcile it with sampling. Rate and topology scenarios run on the
	// shared-L3 interleaved kernel, which the window split does not
	// compose with, so the knob normalizes away there too.
	if o.IntraPairWorkers <= 1 || o.Fidelity != machine.FidelityExact ||
		o.RateCopies > 0 || o.Topology.Enabled() {
		o.IntraPairWorkers = 0
	}
	return o
}

// Normalized returns the options with the campaign defaults applied —
// exactly the values CampaignKeys folds into every result-cache key.
// specserved's coordinator forwards them verbatim in the sub-campaign
// specs it scatters, so worker-side keys match the coordinator's
// regardless of each worker's own base flags.
func (o Options) Normalized() Options { return o.withDefaults() }

// Characteristics holds one application-input pair's characterization:
// the row unit of every table and figure in the paper.
type Characteristics struct {
	// Pair identifies the application, input size and input.
	Pair profile.Pair

	// InstrBillions is the nominal full-run instruction count.
	InstrBillions float64
	// IPC is the modeled instructions per cycle.
	IPC float64
	// ExecSeconds is the modeled full-run execution time
	// (nominal instructions / (IPC x clock x threads)).
	ExecSeconds float64

	// Instruction mix (measured from the simulated stream).
	LoadPct, StorePct, BranchPct float64
	// Branch class shares as percentages of all branches.
	CondPct, JumpPct, CallPct, IndirectPct, ReturnPct float64
	// MispredictPct is mispredicted branches per executed branch.
	MispredictPct float64
	// Per-level local load miss rates.
	L1MissPct, L2MissPct, L3MissPct float64
	// Footprint (nominal model values; see DESIGN.md).
	RSSMiB, VSZMiB float64

	// Counters is the raw perf snapshot of the sampled window.
	Counters *perf.Counters
	// Breakdown is the CPI stack of the sampled window.
	Breakdown pipeline.Breakdown
	// Calibrated reports whether the IPC target was reachable.
	Calibrated bool
	// Sampling carries the systematic-sampling knob and per-metric
	// extrapolation-error estimates when the pair was characterized with
	// Options.Sampling; nil for exact runs.
	Sampling *machine.SamplingStats
	// Rate carries the contention accounting of a rate-mode run
	// (Options.RateCopies); nil for single-copy runs. Tagged omitempty
	// so single-copy results keep their pre-rate serialized bytes.
	Rate *RateStats `json:",omitempty"`
	// Runtime carries the placement runtime distribution of a
	// heterogeneous-topology run (Options.Topology); nil otherwise.
	Runtime *RuntimeDist `json:",omitempty"`
}

// MemPct returns loads+stores as a percentage of uops.
func (c *Characteristics) MemPct() float64 { return c.LoadPct + c.StorePct }

// Characterize simulates every pair and returns their characteristics in
// pair order. Pairs run on a bounded worker pool (Options.Parallelism
// workers, not one goroutine per pair); the first simulation error
// cancels queued and in-flight pairs and aborts the campaign, and a
// cancelled Options.Context does the same. With Options.Cache set,
// previously simulated (pair, machine, options) combinations are served
// from the cache bit-identically instead of being re-simulated.
func Characterize(pairs []profile.Pair, opt Options) ([]Characteristics, error) {
	opt = opt.withDefaults()
	if err := validateFidelity(&opt); err != nil {
		return nil, err
	}
	if opt.Store != nil {
		if opt.Cache == nil {
			opt.Cache = sched.NewCache()
		}
		opt.Cache.SetBackend(opt.Store, CharacteristicsCodec{})
	}
	prefix := ""
	if opt.Cache != nil {
		prefix = campaignKeyPrefix(&opt)
	}
	tasks := make([]sched.Task[Characteristics], len(pairs))
	for i := range pairs {
		pair := pairs[i]
		t := sched.Task[Characteristics]{Name: pair.Name()}
		if opt.Cache != nil {
			t.Key = pairKey(prefix, &pair)
		}
		t.Run = func(ctx context.Context) (Characteristics, error) {
			c, err := runPair(ctx, pair, opt)
			if err != nil {
				return Characteristics{}, err
			}
			return *c, nil
		}
		tasks[i] = t
	}
	span := opt.Trace.Start("campaign").
		SetAttr("pairs", len(pairs)).
		SetAttr("machine", opt.Machine.Name).
		SetAttr("instructions", opt.Instructions).
		SetAttr("sampling", opt.Sampling.String()).
		SetAttr("fidelity", opt.Fidelity.String())
	defer span.Finish()
	return sched.Run(opt.Context, tasks, sched.Options{
		Workers:  opt.Parallelism,
		Cache:    opt.Cache,
		Progress: opt.Progress,
		Span:     span,
	})
}

// runPair is the campaign's per-pair entry point; tests swap it to
// observe scheduling behaviour without paying for real simulations.
var runPair = characterizePairCtx

// CharacterizePair simulates a single application-input pair.
func CharacterizePair(pair profile.Pair, opt Options) (*Characteristics, error) {
	return characterizePairCtx(context.Background(), pair, opt)
}

// validateFidelity rejects the option combinations no tier can honor.
func validateFidelity(opt *Options) error {
	if opt.Fidelity == machine.FidelityAnalytic && opt.Sampling.Enabled() {
		return fmt.Errorf("core: the analytic fidelity tier does not compose with sampling")
	}
	if opt.RateCopies > 0 || opt.Topology.Enabled() {
		// Sampling skips stream regions and the analytic tier skips the
		// simulation entirely; neither can carry shared-level
		// interleaving, so contention scenarios are exact-tier only.
		if opt.Fidelity != machine.FidelityExact {
			return fmt.Errorf("core: rate and topology scenarios run at exact fidelity only (got %s)", opt.Fidelity)
		}
		if err := opt.Topology.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func characterizePairCtx(ctx context.Context, pair profile.Pair, opt Options) (*Characteristics, error) {
	opt = opt.withDefaults()
	if err := validateFidelity(&opt); err != nil {
		return nil, err
	}
	if opt.RateCopies > 0 || opt.Topology.Enabled() {
		// Multi-copy contention and heterogeneous-topology scenarios run
		// on the shared-L3 interleaved kernel and derive their own
		// Characteristics shape (per-mode aggregation, distributions).
		return characterizeScenario(ctx, pair, opt)
	}
	m := pair.Model
	gen, err := synth.New(m, opt.Machine.Geometry())
	if err != nil {
		return nil, err
	}
	mopt := machine.Options{
		Instructions:       opt.Instructions,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		CalibrateIPC:       m.TargetIPC,
		Context:            ctx,
		BatchSize:          opt.BatchSize,
		Sampling:           opt.Sampling,
		Span:               obs.SpanFromContext(ctx),
	}
	if opt.Sampling.Enabled() {
		// Under sampling the fractional pre-measurement warmup would
		// simulate a quarter of the stream in full and cap the speedup
		// near 2x; the sampled loop's own settle period plus per-window
		// re-warms replace it (see machine.Sampling), so only the
		// generator prologue stays mandatory.
		mopt.WarmupFraction = -1
	}
	var res *machine.Result
	switch {
	case opt.Fidelity == machine.FidelityAnalytic:
		res, err = analytic.Run(opt.Machine, gen, mopt)
	case opt.IntraPairWorkers > 1:
		// Every window needs an independently positioned copy of the
		// stream, so the kernel gets the factory, not gen.
		res, err = machine.RunParallel(opt.Machine, func() (trace.Source, error) {
			return synth.New(m, opt.Machine.Geometry())
		}, mopt, opt.IntraPairWorkers)
	default:
		res, err = machine.Run(opt.Machine, gen, mopt)
	}
	if err != nil {
		return nil, err
	}
	counters := res.Counters
	if opt.MultiplexSlots > 0 {
		counters = perf.Multiplex(counters, opt.MultiplexSlots, m.Seed)
	}
	c := &Characteristics{
		Pair:          pair,
		InstrBillions: m.InstrBillions,
		IPC:           counters.IPC(),
		LoadPct:       counters.LoadPct(),
		StorePct:      counters.StorePct(),
		BranchPct:     counters.BranchPct(),
		MispredictPct: counters.MispredictPct(),
		L1MissPct:     counters.CacheMissPct(1),
		L2MissPct:     counters.CacheMissPct(2),
		L3MissPct:     counters.CacheMissPct(3),
		RSSMiB:        m.RSSMiB,
		VSZMiB:        m.VSZMiB,
		Counters:      counters,
		Breakdown:     res.Breakdown,
		Calibrated:    res.Calibrated,
		Sampling:      res.Sampling,
	}
	branches := float64(counters.MustValue(perf.AllBranches))
	if branches > 0 {
		pct := func(name string) float64 {
			return 100 * float64(counters.MustValue(name)) / branches
		}
		c.CondPct = pct(perf.CondBranches)
		c.JumpPct = pct(perf.DirectJumps)
		c.CallPct = pct(perf.DirectCalls)
		c.IndirectPct = pct(perf.IndirectJumps)
		c.ReturnPct = pct(perf.Returns)
	}
	c.ExecSeconds = execSeconds(m.InstrBillions, c.IPC, opt.Machine.ClockHz, m.Threads)
	return c, nil
}

// execSeconds models the full-run execution time. A degenerate rate
// (IPC 0, as multiplex noise can produce on uncalibrated runs) yields 0
// rather than +Inf/NaN so downstream tables and subset costs stay finite.
func execSeconds(instrBillions, ipc, clockHz float64, threads int) float64 {
	denom := ipc * clockHz * float64(threads)
	if denom <= 0 || math.IsNaN(denom) || math.IsInf(denom, 0) {
		return 0
	}
	return instrBillions * 1e9 / denom
}

// CharacterizeSuites expands and characterizes a full application list at
// one input size.
func CharacterizeSuites(apps []*profile.Profile, size profile.InputSize, opt Options) ([]Characteristics, error) {
	return Characterize(profile.ExpandSuite(apps, size), opt)
}

// Filter returns the characteristics whose pair satisfies keep.
func Filter(chars []Characteristics, keep func(*Characteristics) bool) []Characteristics {
	var out []Characteristics
	for i := range chars {
		if keep(&chars[i]) {
			out = append(out, chars[i])
		}
	}
	return out
}

// BySuite returns the characteristics belonging to one mini-suite.
func BySuite(chars []Characteristics, s profile.Suite) []Characteristics {
	return Filter(chars, func(c *Characteristics) bool { return c.Pair.App.Suite == s })
}

// Summary is a mean and sample standard deviation, the aggregate form of
// the paper's comparison tables.
type Summary struct {
	Mean, Std float64
	N         int
}

// PerAppMeans averages a metric over each application's inputs first
// (the paper's convention for multi-input applications), returning one
// value per application sorted by name.
func PerAppMeans(chars []Characteristics, pick func(*Characteristics) float64) []float64 {
	byApp := map[string][]float64{}
	for i := range chars {
		name := chars[i].Pair.App.Name
		byApp[name] = append(byApp[name], pick(&chars[i]))
	}
	names := make([]string, 0, len(byApp))
	for n := range byApp {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]float64, 0, len(names))
	for _, n := range names {
		vals := byApp[n]
		s := 0.0
		for _, v := range vals {
			s += v
		}
		out = append(out, s/float64(len(vals)))
	}
	return out
}

// Aggregate summarizes a metric across applications (per-app means, then
// mean and standard deviation across applications).
func Aggregate(chars []Characteristics, pick func(*Characteristics) float64) Summary {
	vals := PerAppMeans(chars, pick)
	n := len(vals)
	if n == 0 {
		return Summary{}
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	std := 0.0
	if n > 1 {
		std = math.Sqrt(ss / float64(n-1))
	}
	return Summary{Mean: mean, Std: std, N: n}
}
