package core

import (
	"repro/internal/machine"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// CharacterizeThreaded simulates a multi-threaded pair (Threads > 1) as
// that many co-running streams with private L1/L2 and a shared L3 — the
// configuration behind the paper's SPECspeed OpenMP runs and its
// observation that speed-fp IPC collapses under shared-cache pressure.
//
// Each thread runs the pair's model in a distinct address region (OpenMP
// data decomposition); rates are averaged across threads and counts
// summed. CharacterizePair uses a single stream and bakes contention into
// the calibrated ILP; this function makes the contention mechanical, for
// studies of the mechanism itself (see BenchmarkAblationSharedL3).
func CharacterizeThreaded(pair profile.Pair, opt Options) (*Characteristics, error) {
	opt = opt.withDefaults()
	m := pair.Model
	threads := m.Threads
	if threads <= 1 {
		return CharacterizePair(pair, opt)
	}
	srcs := make([]trace.Source, threads)
	var prologue uint64
	for i := 0; i < threads; i++ {
		tm := m
		tm.Seed = m.Seed + uint64(i)*0x9e37
		// Threads share the problem: each works on its slice of the
		// footprint.
		tm.RSSMiB = m.RSSMiB / float64(threads)
		gen, err := synth.New(tm, opt.Machine.Geometry())
		if err != nil {
			return nil, err
		}
		if p := gen.Prologue(); p > prologue {
			prologue = p
		}
		srcs[i] = gen
	}
	res, err := machine.RunShared(opt.Machine, srcs, machine.Options{
		Instructions:       opt.Instructions,
		WarmupInstructions: prologue,
		Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		CalibrateIPC:       m.TargetIPC,
	})
	if err != nil {
		return nil, err
	}
	c := &Characteristics{
		Pair:          pair,
		InstrBillions: m.InstrBillions,
		RSSMiB:        m.RSSMiB,
		VSZMiB:        m.VSZMiB,
	}
	// Average the per-core rate metrics; the cores are statistically
	// identical so this is a variance reduction, not a mixture.
	n := float64(threads)
	for _, core := range res.PerCore {
		c.IPC += core.IPC / n
		c.LoadPct += core.Counters.LoadPct() / n
		c.StorePct += core.Counters.StorePct() / n
		c.BranchPct += core.Counters.BranchPct() / n
		c.MispredictPct += core.Counters.MispredictPct() / n
		c.L1MissPct += core.Counters.CacheMissPct(1) / n
		c.L2MissPct += core.Counters.CacheMissPct(2) / n
		c.L3MissPct += core.Counters.CacheMissPct(3) / n
		c.Breakdown.Base += core.Breakdown.Base
		c.Breakdown.Mispredict += core.Breakdown.Mispredict
		c.Breakdown.L2 += core.Breakdown.L2
		c.Breakdown.L3 += core.Breakdown.L3
		c.Breakdown.Memory += core.Breakdown.Memory
		c.Breakdown.Fetch += core.Breakdown.Fetch
		c.Breakdown.TLB += core.Breakdown.TLB
		c.Calibrated = c.Calibrated || core.Calibrated
	}
	c.Counters = sumCounters(res)
	branches := float64(c.Counters.MustValue(perf.AllBranches))
	if branches > 0 {
		pct := func(name string) float64 {
			return 100 * float64(c.Counters.MustValue(name)) / branches
		}
		c.CondPct = pct(perf.CondBranches)
		c.JumpPct = pct(perf.DirectJumps)
		c.CallPct = pct(perf.DirectCalls)
		c.IndirectPct = pct(perf.IndirectJumps)
		c.ReturnPct = pct(perf.Returns)
	}
	c.ExecSeconds = m.InstrBillions * 1e9 / (c.IPC * opt.Machine.ClockHz * n)
	return c, nil
}

// sumCounters merges per-core counter snapshots into one.
func sumCounters(res *machine.SharedResult) *perf.Counters {
	sums := map[string]uint64{}
	var rss, vsz uint64
	var seconds float64
	for _, core := range res.PerCore {
		for _, name := range core.Counters.Names() {
			v, _ := core.Counters.Value(name)
			sums[name] += v
		}
		rss += core.Counters.RSSBytes
		vsz += core.Counters.VSZBytes
		if core.Counters.Seconds > seconds {
			seconds = core.Counters.Seconds
		}
	}
	return perf.NewCounters(sums, rss, vsz, seconds)
}
