package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/profile"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics file from current results")

// goldenPairs are the application-input pairs pinned by the golden
// regression test: two memory-bound integer codes, a compute-bound
// integer code, and three floating-point codes spanning the footprint
// range, so a kernel regression in any subsystem moves at least one row.
var goldenPairs = []string{
	"505.mcf_r",
	"520.omnetpp_r",
	"525.x264_r",
	"503.bwaves_r",
	"519.lbm_r",
	"554.roms_r",
}

// goldenRow is the serialized form of one pair's Characteristics: every
// derived metric plus the raw counters, enough to detect any behavioural
// change in the simulation kernel or the metric derivations.
type goldenRow struct {
	Pair          string            `json:"pair"`
	IPC           float64           `json:"ipc"`
	ExecSeconds   float64           `json:"exec_seconds"`
	LoadPct       float64           `json:"load_pct"`
	StorePct      float64           `json:"store_pct"`
	BranchPct     float64           `json:"branch_pct"`
	CondPct       float64           `json:"cond_pct"`
	JumpPct       float64           `json:"jump_pct"`
	CallPct       float64           `json:"call_pct"`
	IndirectPct   float64           `json:"indirect_pct"`
	ReturnPct     float64           `json:"return_pct"`
	MispredictPct float64           `json:"mispredict_pct"`
	L1MissPct     float64           `json:"l1_miss_pct"`
	L2MissPct     float64           `json:"l2_miss_pct"`
	L3MissPct     float64           `json:"l3_miss_pct"`
	RSSMiB        float64           `json:"rss_mib"`
	VSZMiB        float64           `json:"vsz_mib"`
	Calibrated    bool              `json:"calibrated"`
	Counters      map[string]uint64 `json:"counters"`
}

const goldenPath = "testdata/golden_metrics.json"

func goldenModels(t *testing.T) []profile.Pair {
	t.Helper()
	byName := map[string]*profile.Profile{}
	for _, app := range profile.CPU2017() {
		byName[app.Name] = app
	}
	pairs := make([]profile.Pair, 0, len(goldenPairs))
	for _, name := range goldenPairs {
		app, ok := byName[name]
		if !ok {
			t.Fatalf("golden pair %s not in CPU2017 profile set", name)
		}
		pairs = append(pairs, app.Expand(profile.Ref)[0])
	}
	return pairs
}

func goldenCharacterize(t *testing.T) []goldenRow {
	t.Helper()
	chars, err := Characterize(goldenModels(t), Options{
		Machine:      machine.HaswellScaled(),
		Instructions: 100000,
		Parallelism:  2,
	})
	if err != nil {
		t.Fatalf("Characterize: %v", err)
	}
	rows := make([]goldenRow, len(chars))
	for i := range chars {
		c := &chars[i]
		counters := map[string]uint64{}
		for _, name := range c.Counters.Names() {
			counters[name] = c.Counters.MustValue(name)
		}
		rows[i] = goldenRow{
			Pair:          c.Pair.Name(),
			IPC:           c.IPC,
			ExecSeconds:   c.ExecSeconds,
			LoadPct:       c.LoadPct,
			StorePct:      c.StorePct,
			BranchPct:     c.BranchPct,
			CondPct:       c.CondPct,
			JumpPct:       c.JumpPct,
			CallPct:       c.CallPct,
			IndirectPct:   c.IndirectPct,
			ReturnPct:     c.ReturnPct,
			MispredictPct: c.MispredictPct,
			L1MissPct:     c.L1MissPct,
			L2MissPct:     c.L2MissPct,
			L3MissPct:     c.L3MissPct,
			RSSMiB:        c.RSSMiB,
			VSZMiB:        c.VSZMiB,
			Calibrated:    c.Calibrated,
			Counters:      counters,
		}
	}
	return rows
}

// diffRow lists the fields in which two golden rows differ, with values,
// so a regression reads as "505.mcf_r: L2MissPct: 41.2 != 43.7" rather
// than a JSON blob dump.
func diffRow(want, got *goldenRow) []string {
	var diffs []string
	wv, gv := reflect.ValueOf(*want), reflect.ValueOf(*got)
	for i := 0; i < wv.NumField(); i++ {
		f := wv.Type().Field(i)
		if f.Name == "Counters" {
			continue
		}
		a, b := wv.Field(i).Interface(), gv.Field(i).Interface()
		if !reflect.DeepEqual(a, b) {
			diffs = append(diffs, fmt.Sprintf("%s: golden %v != got %v", f.Name, a, b))
		}
	}
	names := map[string]bool{}
	for n := range want.Counters {
		names[n] = true
	}
	for n := range got.Counters {
		names[n] = true
	}
	for n := range names {
		a, aok := want.Counters[n]
		b, bok := got.Counters[n]
		if !aok || !bok || a != b {
			diffs = append(diffs, fmt.Sprintf("counter %s: golden %d (present=%v) != got %d (present=%v)", n, a, aok, b, bok))
		}
	}
	return diffs
}

// TestGoldenMetrics locks the end-to-end characterization pipeline to a
// committed snapshot: any change to the generator, the simulation kernel
// or the metric derivations that alters a single counter for any of the
// six pinned pairs fails with a field-level diff. Refresh intentionally
// changed baselines with:
//
//	go test ./internal/core -run TestGoldenMetrics -update
func TestGoldenMetrics(t *testing.T) {
	got := goldenCharacterize(t)
	for i := range got {
		for _, f := range []float64{got[i].IPC, got[i].L1MissPct, got[i].L2MissPct, got[i].L3MissPct} {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Fatalf("%s: non-finite metric in fresh results", got[i].Pair)
			}
		}
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d pairs", goldenPath, len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want []goldenRow
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d pairs, fresh run produced %d (run with -update after intentional changes)", len(want), len(got))
	}
	for i := range want {
		if want[i].Pair != got[i].Pair {
			t.Errorf("pair %d: golden %s != got %s", i, want[i].Pair, got[i].Pair)
			continue
		}
		for _, d := range diffRow(&want[i], &got[i]) {
			t.Errorf("%s: %s", want[i].Pair, d)
		}
	}
}
