package core

import (
	"testing"

	"repro/internal/profile"
)

func speedFPPair(t *testing.T, name string) profile.Pair {
	t.Helper()
	for _, p := range profile.CPU2017() {
		if p.Name == name {
			return p.Expand(profile.Ref)[0]
		}
	}
	t.Fatalf("app %s not found", name)
	return profile.Pair{}
}

func TestCharacterizeThreadedFallsBackForSingleThread(t *testing.T) {
	pair := profile.CPU2017()[2].Expand(profile.Ref)[0] // 505.mcf_r, Threads=1
	a, err := CharacterizeThreaded(pair, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := CharacterizePair(pair, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC {
		t.Errorf("single-thread fallback differs: %v vs %v", a.IPC, b.IPC)
	}
}

func TestCharacterizeThreadedRuns(t *testing.T) {
	pair := speedFPPair(t, "619.lbm_s") // 4 threads
	c, err := CharacterizeThreaded(pair, Options{Instructions: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if c.IPC <= 0 {
		t.Errorf("IPC = %v", c.IPC)
	}
	if c.LoadPct < 15 || c.LoadPct > 30 {
		t.Errorf("load pct = %v, model says ~22", c.LoadPct)
	}
	// Four threads' counters summed: instruction count is 4x the window.
	if got := c.Counters.MustValue("inst_retired.any"); got != 4*30000 {
		t.Errorf("summed instructions = %d, want 120000", got)
	}
	if c.ExecSeconds <= 0 {
		t.Errorf("exec seconds = %v", c.ExecSeconds)
	}
}

// TestSharedL3ContentionMechanism: co-running threads see a higher L3
// miss rate than a lone stream of the same model — the mechanical cause
// the paper assigns to the speed-fp IPC collapse.
func TestSharedL3ContentionMechanism(t *testing.T) {
	pair := speedFPPair(t, "603.bwaves_s")
	opt := Options{Instructions: 30000}
	solo, err := CharacterizePair(pair, opt)
	if err != nil {
		t.Fatal(err)
	}
	threaded, err := CharacterizeThreaded(pair, opt)
	if err != nil {
		t.Fatal(err)
	}
	if threaded.L3MissPct <= solo.L3MissPct {
		t.Errorf("threaded L3 miss %.2f%% not above solo %.2f%% under shared-LLC pressure",
			threaded.L3MissPct, solo.L3MissPct)
	}
}
