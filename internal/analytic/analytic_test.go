package analytic

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/rdist"
	"repro/internal/synth"
)

// appModel returns the ref-input model of a named CPU2017 application.
func appModel(t testing.TB, name string) profile.Model {
	t.Helper()
	for _, app := range profile.CPU2017() {
		if app.Name == name {
			return app.Expand(profile.Ref)[0].Model
		}
	}
	t.Fatalf("no such app: %s", name)
	return profile.Model{}
}

// setup builds a fresh generator and matching options for one model.
func setup(t testing.TB, m profile.Model, cfg machine.Config, n uint64) (*synth.Generator, machine.Options) {
	t.Helper()
	gen, err := synth.New(m, cfg.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	return gen, machine.Options{
		Instructions:       n,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		CalibrateIPC:       m.TargetIPC,
	}
}

func TestRunSmoke(t *testing.T) {
	cfg := machine.HaswellScaled()
	m := appModel(t, "519.lbm_r")
	gen, opt := setup(t, m, cfg, 1<<20)
	res, err := Run(cfg, gen, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v, want > 0", res.IPC)
	}
	for lvl := 1; lvl <= 3; lvl++ {
		pct := res.Counters.CacheMissPct(lvl)
		if pct < 0 || pct > 100 {
			t.Errorf("L%d miss%% = %v, want in [0, 100]", lvl, pct)
		}
	}
	if pct := res.Counters.MispredictPct(); pct < 0 || pct > 100 {
		t.Errorf("mispredict%% = %v, want in [0, 100]", pct)
	}
	if res.Counters.RSSBytes == 0 {
		t.Error("RSSBytes = 0, want the prologue working set")
	}
}

// The analytic tier is a pure function of (config, model, options): two
// runs from fresh generators must agree bit for bit, or fleet-scattered
// campaigns would diverge from single-node ones.
func TestRunDeterministic(t *testing.T) {
	cfg := machine.HaswellScaled()
	m := appModel(t, "505.mcf_r")
	gen, opt := setup(t, m, cfg, 4<<20)
	a, err := Run(cfg, gen, opt)
	if err != nil {
		t.Fatal(err)
	}
	gen, opt = setup(t, m, cfg, 4<<20)
	b, err := Run(cfg, gen, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two analytic runs differ:\n%+v\n%+v", a, b)
	}
}

func TestRunRejections(t *testing.T) {
	m := appModel(t, "519.lbm_r")
	mk := func(mut func(*machine.Config, *machine.Options)) (machine.Config, *synth.Generator, machine.Options) {
		cfg := machine.HaswellScaled()
		gen, opt := setup(t, m, cfg, 1<<20)
		mut(&cfg, &opt)
		return cfg, gen, opt
	}
	cases := []struct {
		name string
		mut  func(*machine.Config, *machine.Options)
		want string
	}{
		{"zero length", func(c *machine.Config, o *machine.Options) { o.Instructions = 0 }, "zero-length"},
		{"sampling", func(c *machine.Config, o *machine.Options) { o.Sampling = machine.DefaultSampling() }, "sampling"},
		{"prefetcher", func(c *machine.Config, o *machine.Options) {
			c.Hierarchy.Prefetcher = &cache.NextLinePrefetcher{LineBytes: 64, Degree: 1}
		}, "prefetcher"},
		{"unified code path", func(c *machine.Config, o *machine.Options) { c.UnifiedCodePath = true }, "unified"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, gen, opt := mk(tc.mut)
			_, err := Run(cfg, gen, opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Run = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestHitFractions(t *testing.T) {
	h := rdist.NewHistogram()
	for d := 0; d < 1000; d++ {
		h.Add(d)
	}
	h.Add(rdist.Infinite)

	line := func(sizeLines int, ways int) cache.Config {
		return cache.Config{Name: "t", SizeBytes: sizeLines * 64, Ways: ways, LineBytes: 64}
	}
	// Monotone in capacity, bounded by [0, warm fraction].
	prev := 0.0
	warm := float64(h.Total()-h.Cold()) / float64(h.Total())
	for _, lines := range []int{64, 256, 1024, 4096} {
		f := HitFractions(h, line(lines, 8))
		if f < prev || f > warm+1e-9 {
			t.Errorf("HitFractions(%d lines) = %v, want monotone in [%v, %v]", lines, f, prev, warm)
		}
		prev = f
	}
	// A cache far larger than any recorded distance hits every warm
	// reference; cold references always miss.
	if f := HitFractions(h, line(1<<20, 8)); f < warm-1e-9 {
		t.Errorf("huge cache hit fraction = %v, want %v", f, warm)
	}
	if f := HitFractions(rdist.NewHistogram(), line(64, 8)); f != 0 {
		t.Errorf("empty histogram hit fraction = %v, want 0", f)
	}
}

func TestLevelFractionsSumToOne(t *testing.T) {
	fr := levelFractions([3]float64{80, 90, 95}, 100)
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if sum < 1-1e-12 || sum > 1+1e-12 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
	// Non-monotone sums (numerical noise) must clamp, not go negative.
	fr = levelFractions([3]float64{90, 89.999, 95}, 100)
	for lvl, f := range fr {
		if f < 0 {
			t.Errorf("level %d fraction = %v after clamp, want >= 0", lvl, f)
		}
	}
}

func TestSplitByLevelConserves(t *testing.T) {
	fr := [4]float64{0.701, 0.149, 0.1, 0.05}
	for _, total := range []uint64{0, 1, 7, 1000, 123457} {
		out := splitByLevel(total, fr)
		var sum uint64
		for _, n := range out {
			sum += n
		}
		if sum != total {
			t.Errorf("splitByLevel(%d) sums to %d", total, sum)
		}
	}
}
