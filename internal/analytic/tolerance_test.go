package analytic

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/stats"
)

// TestAnalyticTolerance gates the analytic tier's predictions against
// exact simulation through the shared tolerance harness — the same
// harness (and the same bound shape: 2% relative or an absolute
// percentage-point floor per metric family) that gates the sampled
// tier. Floors are set from the measured error of the deterministic
// prediction with ~1.5x headroom; the wide L2/L3 floors on the
// cache-friendly profiles (namd, x264, leela) are small-count effects —
// an L2 local miss rate over a 1.5% L1 miss stream is a ratio of tiny
// counts, where the sampled tier needs floors up to 14pp too.
func TestAnalyticTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("exact reference runs are slow")
	}
	const n = 16 << 20
	cfg := machine.HaswellScaled()
	cases := []struct {
		app                string
		l1, l2, l3, mispct float64
	}{
		{"505.mcf_r", 1.0, 2.0, 3.5, 1.5},
		{"525.x264_r", 0.5, 5.0, 7.0, 1.0},
		{"541.leela_r", 1.0, 10.0, 7.5, 3.0},
		{"508.namd_r", 1.0, 14.0, 6.5, 1.5},
		{"519.lbm_r", 0.5, 4.0, 6.5, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.app, func(t *testing.T) {
			t.Parallel()
			m := appModel(t, tc.app)
			gen, opt := setup(t, m, cfg, n)
			ana, err := Run(cfg, gen, opt)
			if err != nil {
				t.Fatal(err)
			}
			gen, opt = setup(t, m, cfg, n)
			exact, err := machine.Run(cfg, gen, opt)
			if err != nil {
				t.Fatal(err)
			}

			var g stats.Gate
			tol := func(floor float64) stats.Tolerance {
				return stats.Tolerance{Rel: 0.02, Abs: floor}
			}
			g.Check("IPC", ana.IPC, exact.IPC, tol(0))
			g.Check("L1 miss%", ana.Counters.CacheMissPct(1), exact.Counters.CacheMissPct(1), tol(tc.l1))
			g.Check("L2 miss%", ana.Counters.CacheMissPct(2), exact.Counters.CacheMissPct(2), tol(tc.l2))
			g.Check("L3 miss%", ana.Counters.CacheMissPct(3), exact.Counters.CacheMissPct(3), tol(tc.l3))
			g.Check("mispredict%", ana.Counters.MispredictPct(), exact.Counters.MispredictPct(), tol(tc.mispct))
			if !g.OK() {
				t.Error(g.Report())
			}
		})
	}
}
