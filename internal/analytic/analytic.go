// Package analytic is the fastest fidelity tier: instead of simulating
// the measured window it profiles a short slice of the uop stream,
// converts the resulting reuse-distance profile into predicted
// per-level cache hit rates (a StatStack-style correction from the
// fully-associative LRU miss curve to each set-associative level), and
// feeds the predictions through the same first-order interval model the
// simulation tiers use. Branch, L1I and DTLB behaviour — which have no
// useful miss-curve abstraction — are measured directly over a short
// window and extrapolated, exactly as the sampled tier extrapolates its
// detailed windows.
//
// The tier's contract is statistical, not bit-level: the generalized
// tolerance harness (internal/stats.Gate) gates its predictions against
// exact simulation at per-metric bound families like sampling's, and
// the kernel benchmark suite enforces a >= 100x per-pair speedup floor
// over the exact batched kernel.
package analytic

import (
	"fmt"
	"math"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/rdist"
	"repro/internal/synth"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// Phase lengths, in uops. The whole tier is constant-cost: these
// windows are simulated no matter how long the nominal stream is, and
// everything else is prediction.
//
//   - profileUops runs right after the generator prologue with the
//     reuse-distance profiler attached. The synthetic stream is
//     stationary, so ~3k references pin the miss curve to well inside
//     the tolerance floors (binomial sigma under 1pp per band).
//   - warmUops then trains the branch predictor, L1I and DTLB out of
//     their post-prologue transient (the prologue is a branch-free
//     sweep, so the predictor starts cold) without the profiler's
//     per-reference cost.
//   - measureUops is the counted window every extrapolated counter
//     comes from; statistics reset at its start, state stays warm.
const (
	profileUops = 8 << 10
	warmUops    = 56 << 10
	measureUops = 64 << 10
	batchLen    = 4096
)

// Run characterizes one synthetic uop stream analytically, returning a
// Result shaped exactly like the simulation tiers' (the shared
// machine.DeriveResult back half guarantees the tiers cannot drift in
// how counts become a Result). The warmup options are ignored: the
// generator prologue defines the warmup, and the tier chooses its own
// window lengths.
func Run(cfg machine.Config, gen *synth.Generator, opt machine.Options) (*machine.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("analytic: zero-length run")
	}
	if opt.Sampling.Enabled() {
		return nil, fmt.Errorf("analytic: sampling does not compose with the analytic tier")
	}
	if cfg.Hierarchy.Prefetcher != nil {
		return nil, fmt.Errorf("analytic: miss-curve prediction has no prefetcher model (machine %q configures one)", cfg.Name)
	}
	if cfg.UnifiedCodePath {
		return nil, fmt.Errorf("analytic: unified code path routes fetch fills through the data levels, which the miss-curve model cannot see (machine %q)", cfg.Name)
	}

	// The front-end, translation and footprint structures are the real
	// component models, driven through the simulated windows so their
	// measured slices see warm state — only the data-cache stack is
	// replaced by the profiler.
	newPred := cfg.NewPredictor
	if newPred == nil {
		newPred = func() branch.Predictor { return branch.NewTournament(14) }
	}
	unit := branch.NewUnit(newPred(), cfg.BTBBits, cfg.RASDepth)
	l1i := cache.New(cfg.Hierarchy.L1I)
	dtlb := tlb.NewHaswell()
	foot := mem.NewFootprint(0, 1<<30, 0)
	prof := rdist.NewProfiler(cfg.Hierarchy.L1D.LineBytes)

	// Phase 1 — prologue. The generator's pool-sweep warmup is replayed
	// with its addresses collected, then bulk-loaded into the profiler's
	// LRU stack in one pass (rdist.Preload): the stack state is exactly
	// as if every address had been Touched, but nothing lands in the
	// histogram — cold-start distances are not workload behaviour. The
	// sweep is branch-free straight-line code, so only the footprint
	// model sees it.
	prologue := gen.Prologue()
	var u trace.Uop
	addrs := make([]uint64, 0, prologue)
	for i := uint64(0); i < prologue; i++ {
		if !gen.Next(&u) {
			return nil, fmt.Errorf("analytic: source exhausted during prologue")
		}
		if u.IsMem() {
			addrs = append(addrs, u.Addr)
			foot.Touch(u.Addr)
		}
	}
	prof.Preload(addrs)

	// Phase 2 — profile window: the full component step plus the
	// reuse-distance profiler on every memory reference. The miss curve
	// is evaluated on the exact per-reference distances as they stream
	// by, not on the bucketed histogram afterwards: the power-of-two
	// buckets smear mass across each level's narrow conflict ramp, which
	// alone costs up to ten points of local L2 miss rate on the
	// pointer-chasing profiles (see HitFractions for the coarse
	// histogram-resolution equivalent).
	geoms := [3]geom{
		geomOf(cfg.Hierarchy.L1D),
		geomOf(cfg.Hierarchy.L2),
		geomOf(cfg.Hierarchy.L3),
	}
	var hitSum [3]float64
	var refs uint64
	for i := 0; i < profileUops; i++ {
		if !gen.Next(&u) {
			return nil, fmt.Errorf("analytic: source exhausted")
		}
		if !l1i.Access(u.PC, cache.AccessFetch) {
			l1i.Access(u.PC+64, cache.AccessPrefetch)
		}
		switch u.Kind {
		case trace.KindLoad, trace.KindStore:
			refs++
			if d := prof.Touch(u.Addr); d != rdist.Infinite {
				fd := float64(d)
				hitSum[0] += hitProb(fd, geoms[0])
				hitSum[1] += hitProb(fd, geoms[1])
				hitSum[2] += hitProb(fd, geoms[2])
			}
			dtlb.Translate(u.Addr)
			foot.Touch(u.Addr)
		case trace.KindBranch:
			unit.Resolve(&u)
		}
	}
	if refs == 0 {
		return nil, fmt.Errorf("analytic: no memory references in the profile window")
	}

	// Phase 3 — warm window. Only the branch predictor still needs
	// training at this point (the prologue is branch-free, and big
	// history tables converge slowly); the L1I, DTLB and footprint
	// working sets all fit and saturated during the profile window, so
	// driving them here would spend the tier's whole budget warming
	// structures that are already warm.
	buf := make([]trace.Uop, batchLen)
	for done := 0; done < warmUops; {
		want := warmUops - done
		if want > batchLen {
			want = batchLen
		}
		n := gen.NextBatch(buf[:want])
		if n < want {
			return nil, fmt.Errorf("analytic: source exhausted")
		}
		for j := range buf[:n] {
			if buf[j].Kind == trace.KindBranch {
				unit.Resolve(&buf[j])
			}
		}
		done += n
	}

	// Phase 4 — measure window: the full component step again, counters
	// restarted at its start (state stays warm).
	unit.ResetStats()
	l1i.ResetStats()
	dtlb.ResetStats()
	var kinds [trace.NumKinds]uint64
	for done := 0; done < measureUops; {
		want := measureUops - done
		if want > batchLen {
			want = batchLen
		}
		n := gen.NextBatch(buf[:want])
		if n < want {
			return nil, fmt.Errorf("analytic: source exhausted")
		}
		for j := range buf[:n] {
			b := &buf[j]
			kinds[b.Kind]++
			if !l1i.Access(b.PC, cache.AccessFetch) {
				l1i.Access(b.PC+64, cache.AccessPrefetch)
			}
			switch b.Kind {
			case trace.KindLoad, trace.KindStore:
				// No foot.Touch here: the footprint model saw the full
				// working set in the prologue and the profile window; a
				// map update per reference buys nothing but time.
				dtlb.Translate(b.Addr)
			case trace.KindBranch:
				unit.Resolve(b)
			}
		}
		done += n
	}
	fetchMisses := l1i.Stats().Misses
	walks := dtlb.Walks()

	// Predict per-level service fractions from the miss curve, then
	// scale the measured counts to the full stream and hand everything
	// to the shared derivation.
	fr := levelFractions(hitSum, refs)
	ratio := float64(opt.Instructions) / float64(measureUops)
	up := func(v uint64) uint64 { return uint64(float64(v)*ratio + 0.5) }
	ct := machine.Counts{
		FetchMisses: up(fetchMisses),
		Walks:       up(walks),
		RSSBytes:    foot.PeakRSS(),
		VSZBytes:    foot.VSZ(),
	}
	for i, n := range kinds {
		ct.Kinds[i] = up(n)
	}
	bs := unit.Stats()
	for i := range bs.Executed {
		ct.Branch.Executed[i] = up(bs.Executed[i])
		ct.Branch.Mispredicted[i] = up(bs.Mispredicted[i])
	}
	ct.LoadLevel = splitByLevel(ct.Kinds[trace.KindLoad], fr)
	ct.DataLevel = splitByLevel(ct.Kinds[trace.KindLoad]+ct.Kinds[trace.KindStore], fr)
	return machine.DeriveResult(cfg, opt, ct)
}

// geom is a level's set/way decomposition, precomputed so the per-
// reference curve evaluation is three comparisons and a divide.
type geom struct {
	rampLo float64 // Sets * (Ways-1): below this every placement hits
	rampHi float64 // Sets * Ways: above this every placement has evicted
}

func geomOf(cc cache.Config) geom {
	lines := cc.SizeBytes / cc.LineBytes
	sets := lines / cc.Ways
	return geom{
		rampLo: float64(sets * (cc.Ways - 1)),
		rampHi: float64(sets * cc.Ways),
	}
}

// levelFractions converts the accumulated per-level hit sums into the
// fraction of memory references serviced at each level of the
// hierarchy. Cold references (first touches — the streaming part of the
// working set) contributed no hits, so they miss every level; stores
// follow the same curves as loads (write-allocate, and the synthetic
// stream draws both from the same pools), which is the tier's writeback
// model.
func levelFractions(hitSum [3]float64, refs uint64) [4]float64 {
	p1 := hitSum[0] / float64(refs)
	p2 := hitSum[1] / float64(refs)
	p3 := hitSum[2] / float64(refs)
	// The stack property (a bigger cache holds a superset under LRU)
	// can be violated by a hair of numerical noise in the per-level
	// corrections; clamp to monotone before differencing.
	p2 = math.Max(p2, p1)
	p3 = math.Max(p3, p2)
	var fr [4]float64
	fr[cache.HitL1] = p1
	fr[cache.HitL2] = p2 - p1
	fr[cache.HitL3] = p3 - p2
	fr[cache.HitMemory] = 1 - p3
	return fr
}

// HitFractions corrects a fully-associative LRU reuse-distance
// histogram for one set-associative level: the fraction of ALL recorded
// references (cold ones count as misses) that would hit a cache of the
// given geometry. It integrates bucket by bucket with the same
// uniform-in-bucket mass assumption rdist.MassBelow makes, so it is the
// coarse, histogram-resolution form of the prediction Run makes from
// exact distances — use it for capacity sweeps over an already-collected
// histogram, where re-profiling per geometry would defeat the point.
func HitFractions(h *rdist.Histogram, cc cache.Config) float64 {
	if h.Total() == 0 {
		return 0
	}
	g := geomOf(cc)
	bounds, counts := h.Buckets()
	var hits float64
	for i, lo := range bounds {
		hi := 2 * lo
		if lo == 0 {
			hi = 1
		}
		hits += float64(counts[i]) * bucketHitProb(lo, hi, g)
	}
	return hits / float64(h.Total())
}

// bucketHitProb averages P(hit | distance D) over the bucket [lo, hi)
// under a uniform mass assumption. Narrow buckets enumerate every
// distance; wide ones take eight midpoint samples.
func bucketHitProb(lo, hi int, g geom) float64 {
	const samples = 8
	if hi-lo <= samples {
		sum := 0.0
		for d := lo; d < hi; d++ {
			sum += hitProb(float64(d), g)
		}
		return sum / float64(hi-lo)
	}
	sum := 0.0
	for j := 0; j < samples; j++ {
		d := float64(lo) + float64(hi-lo)*(float64(j)+0.5)/samples
		sum += hitProb(d, g)
	}
	return sum / samples
}

// hitProb is P(hit | stack distance d) under balanced placement. A warm
// reference at stack distance D survives iff its own set received at
// most Ways-1 of the D intervening distinct lines. The synthetic
// generator lays its pool lines out contiguously, so the intervening
// lines spread across the sets near-uniformly (balanced placement, not
// the independent random placement classic StatStack assumes): the
// conflict count concentrates at D/Sets, and the hit probability falls
// linearly from 1 to 0 as D crosses from Sets*(Ways-1) to Sets*Ways.
func hitProb(d float64, g geom) float64 {
	switch {
	case d <= g.rampLo:
		return 1
	case d >= g.rampHi:
		return 0
	}
	return (g.rampHi - d) / (g.rampHi - g.rampLo)
}

// splitByLevel distributes a scaled reference total over the service
// levels, assigning the memory level the exact remainder so the level
// counts always sum to the total.
func splitByLevel(total uint64, fr [4]float64) [4]uint64 {
	var out [4]uint64
	var assigned uint64
	for _, lvl := range []cache.HitLevel{cache.HitL1, cache.HitL2, cache.HitL3} {
		out[lvl] = uint64(float64(total)*fr[lvl] + 0.5)
		assigned += out[lvl]
	}
	if assigned > total {
		// Rounding overshoot: trim from the largest on-chip level.
		excess := assigned - total
		for _, lvl := range []cache.HitLevel{cache.HitL1, cache.HitL2, cache.HitL3} {
			if out[lvl] >= excess {
				out[lvl] -= excess
				assigned -= excess
				break
			}
		}
	}
	out[cache.HitMemory] = total - assigned
	return out
}
