// Package sched is the campaign engine behind core.Characterize: it runs
// a batch of independent simulation tasks on a bounded worker pool with
// context cancellation, first-error abort, an optional memoizing result
// cache, and optional progress reporting.
//
// The engine replaces the seed's ad-hoc fan-out (one goroutine per pair
// gated by a semaphore): workers are created up to Options.Workers, the
// queue is fed lazily so a cancelled campaign stops handing out work, and
// the first task error cancels everything still queued or in flight.
package sched

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Campaign-engine metrics, registered once on the process-wide
// registry. The "source" label splits pairs by how they were satisfied:
// simulated (cache miss, ran the kernel), memory (in-process cache
// tier), store (persistent backend tier).
var (
	metCampaigns = obs.Default().Counter("speckit_campaigns_total",
		"Campaign runs started by the scheduler.")
	metWorkersActive = obs.Default().Gauge("speckit_workers_active",
		"Scheduler workers currently executing or polling for tasks.")
	metPairs = map[Tier]*obs.Counter{
		TierMiss:   obs.Default().Counter("speckit_pairs_total", "Completed pairs by satisfying source.", "source", "simulated"),
		TierMemory: obs.Default().Counter("speckit_pairs_total", "", "source", "memory"),
		TierStore:  obs.Default().Counter("speckit_pairs_total", "", "source", "store"),
	}
	metPairSeconds = map[Tier]*obs.Histogram{
		TierMiss:   obs.Default().Histogram("speckit_pair_seconds", "Wall time per completed pair by satisfying source.", obs.LatencyBuckets, "source", "simulated"),
		TierMemory: obs.Default().Histogram("speckit_pair_seconds", "", obs.LatencyBuckets, "source", "memory"),
		TierStore:  obs.Default().Histogram("speckit_pair_seconds", "", obs.LatencyBuckets, "source", "store"),
	}
)

// tierNames label pair spans with the satisfying cache tier.
var tierNames = map[Tier]string{
	TierMiss:   "simulated",
	TierMemory: "memory",
	TierStore:  "store",
}

// Task is one schedulable unit of campaign work.
type Task[T any] struct {
	// Name identifies the task in campaign errors ("505.mcf_r-in1").
	Name string
	// Key is the memoization key for Options.Cache; empty disables
	// caching for this task. Keys must be content hashes: two tasks with
	// equal keys must produce bit-identical results.
	Key string
	// Run performs the work. The context is cancelled when the campaign
	// is aborted; long-running tasks should observe it.
	Run func(ctx context.Context) (T, error)
}

// Progress is a campaign snapshot delivered to the Options.Progress
// callback after each completed task. Callbacks are invoked serially.
type Progress struct {
	// Done counts completed tasks (cache hits included); Total is the
	// campaign size.
	Done, Total int
	// CacheHits counts tasks satisfied from the cache during this run
	// (both tiers); StoreHits is the subset served from the persistent
	// backend tier rather than the in-process map.
	CacheHits int
	// StoreHits counts tasks satisfied from the persistent store tier.
	StoreHits int
	// Remote counts tasks completed by remote fleet workers. The local
	// engine (Run) never sets it; specserved's coordinator fills it in
	// for scattered campaigns so the tier accounting can tell remote
	// completions from local simulation.
	Remote int
	// Elapsed is the wall-clock time since the campaign started.
	Elapsed time.Duration
}

// Options configure one campaign run.
type Options struct {
	// Workers bounds the worker pool (default GOMAXPROCS). The engine
	// never creates more than min(Workers, len(tasks)) goroutines.
	Workers int
	// Cache, when non-nil, memoizes task results by Task.Key across
	// campaigns. Hits skip Run entirely and return the stored value.
	Cache *Cache
	// Progress, when non-nil, receives a snapshot after each completed
	// task.
	Progress func(Progress)
	// Span, when non-nil, is the campaign span pair and worker spans are
	// recorded under. Each task runs with its pair span in the context
	// (obs.SpanFromContext) so lower layers can attach stage timings.
	Span *obs.Span
}

// Run executes every task and returns the results in task order. The
// first task error cancels the remaining campaign and is returned,
// wrapped with the task's name. A cancelled ctx aborts queued and
// in-flight work and returns the context's error. A nil ctx means
// context.Background().
func Run[T any](ctx context.Context, tasks []Task[T], opt Options) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, len(tasks))
	start := time.Now()
	var (
		mu        sync.Mutex
		firstErr  error
		done      int
		hits      int
		storeHits int
	)
	report := func(tier Tier) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if tier != TierMiss {
			hits++
		}
		if tier == TierStore {
			storeHits++
		}
		if opt.Progress != nil {
			opt.Progress(Progress{
				Done: done, Total: len(tasks),
				CacheHits: hits, StoreHits: storeHits,
				Elapsed: time.Since(start),
			})
		}
	}
	fail := func(name string, err error) {
		mu.Lock()
		if firstErr == nil {
			if name != "" {
				err = fmt.Errorf("%s: %w", name, err)
			}
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	// Lazy feeder: stops handing out indices once the campaign is
	// cancelled, so queued work is skipped rather than drained.
	queue := make(chan int)
	go func() {
		defer close(queue)
		for i := range tasks {
			select {
			case queue <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	// finishPair closes a pair span with its satisfying tier and feeds
	// the pair metrics. Failed pairs never reach it — the counters and
	// latency histograms describe completed pairs only.
	finishPair := func(ps *obs.Span, start time.Time, tier Tier) {
		ps.SetAttr("tier", tierNames[tier]).Finish()
		d := time.Since(start)
		metPairs[tier].Inc()
		metPairSeconds[tier].Observe(d.Seconds())
	}

	metCampaigns.Inc()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			metWorkersActive.Add(1)
			defer metWorkersActive.Add(-1)
			ws := opt.Span.Child("worker-" + strconv.Itoa(w))
			ran := 0
			defer func() {
				ws.SetAttr("tasks", ran)
				ws.Finish()
			}()
			for i := range queue {
				if ctx.Err() != nil {
					return
				}
				ran++
				t := &tasks[i]
				taskStart := time.Now()
				ps := opt.Span.Child(t.Name).SetAttr("worker", w)
				if opt.Cache != nil && t.Key != "" {
					readStart := time.Now()
					if v, tier := opt.Cache.GetTier(t.Key); tier != TierMiss {
						if tv, ok := v.(T); ok {
							if tier == TierStore {
								ps.Stage("store-read", time.Since(readStart))
							}
							out[i] = tv
							finishPair(ps, taskStart, tier)
							report(tier)
							continue
						}
						// Type mismatch: recompute and overwrite below.
					}
				}
				v, err := t.Run(obs.ContextWithSpan(ctx, ps))
				if err != nil {
					ps.SetAttr("error", err.Error()).Finish()
					fail(t.Name, err)
					return
				}
				if opt.Cache != nil && t.Key != "" {
					writeStart := time.Now()
					opt.Cache.Put(t.Key, v)
					if opt.Cache.HasBackend() {
						ps.Stage("store-write", time.Since(writeStart))
					}
				}
				out[i] = v
				finishPair(ps, taskStart, TierMiss)
				report(TierMiss)
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ProgressPrinter returns a Progress callback that renders a one-line
// in-place campaign status to w, finishing the line with a newline when
// the campaign completes. The cmd tools wire it to -progress.
func ProgressPrinter(w io.Writer) func(Progress) {
	return func(p Progress) {
		fmt.Fprintf(w, "\r%d/%d pairs done (%d cache hits, %d from store, %.1fs)",
			p.Done, p.Total, p.CacheHits, p.StoreHits, p.Elapsed.Seconds())
		if p.Done >= p.Total {
			fmt.Fprintln(w)
		}
	}
}
