package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// intTasks builds n tasks returning their index, each sleeping d and
// observing concurrency through the returned counters.
func intTasks(n int, d time.Duration, running, peak *atomic.Int64) []Task[int] {
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Name: fmt.Sprintf("task%03d", i),
			Run: func(ctx context.Context) (int, error) {
				cur := running.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				if d > 0 {
					time.Sleep(d)
				}
				running.Add(-1)
				return i, nil
			},
		}
	}
	return tasks
}

func TestRunReturnsResultsInOrder(t *testing.T) {
	var running, peak atomic.Int64
	tasks := intTasks(100, 0, &running, &peak)
	out, err := Run(context.Background(), tasks, Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("len(out) = %d", len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestBoundedWorkers: a 500-task campaign never runs more tasks
// concurrently than Workers — the regression the scheduler fixes over
// the seed's one-goroutine-per-pair fan-out.
func TestBoundedWorkers(t *testing.T) {
	const workers = 4
	var running, peak atomic.Int64
	tasks := intTasks(500, 200*time.Microsecond, &running, &peak)
	if _, err := Run(context.Background(), tasks, Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

// TestFirstErrorCancels: one failing task aborts the campaign, the error
// names the task, and the number of tasks started after the failure is
// bounded by the worker count, not the remaining queue length.
func TestFirstErrorCancels(t *testing.T) {
	const workers = 4
	boom := errors.New("boom")
	var failed atomic.Bool
	var startedAfterFail atomic.Int64
	tasks := make([]Task[int], 500)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{
			Name: fmt.Sprintf("pair%03d", i),
			Run: func(ctx context.Context) (int, error) {
				if i == 0 {
					failed.Store(true)
					return 0, boom
				}
				if failed.Load() {
					startedAfterFail.Add(1)
				}
				time.Sleep(time.Millisecond)
				return i, nil
			},
		}
	}
	out, err := Run(context.Background(), tasks, Options{Workers: workers})
	if out != nil {
		t.Error("failed campaign returned results")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "pair000") {
		t.Errorf("error %q does not name the failing task", err)
	}
	if n := startedAfterFail.Load(); n > workers {
		t.Errorf("%d tasks started after the failure, want <= %d workers", n, workers)
	}
}

// TestCancelledContextReturnsPromptly: a pre-cancelled context runs
// nothing; a mid-campaign cancel aborts within the task check latency.
func TestCancelledContextReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	tasks := make([]Task[int], 50)
	for i := range tasks {
		tasks[i] = Task[int]{Run: func(ctx context.Context) (int, error) {
			ran.Add(1)
			return 0, nil
		}}
	}
	if _, err := Run(ctx, tasks, Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n > 4 {
		t.Errorf("%d tasks ran under a pre-cancelled context", n)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	tasks2 := make([]Task[int], 200)
	for i := range tasks2 {
		tasks2[i] = Task[int]{Run: func(ctx context.Context) (int, error) {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return 0, nil
			}
		}}
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	_, err := Run(ctx2, tasks2, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-campaign cancel: err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancel took %v, want prompt return", elapsed)
	}
}

func TestNilContextMeansBackground(t *testing.T) {
	tasks := []Task[string]{{Run: func(ctx context.Context) (string, error) {
		if ctx == nil {
			return "", errors.New("nil ctx delivered to task")
		}
		return "ok", nil
	}}}
	out, err := Run[string](nil, tasks, Options{})
	if err != nil || out[0] != "ok" {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestCacheMemoizes(t *testing.T) {
	cache := NewCache()
	var runs atomic.Int64
	mk := func() []Task[int] {
		tasks := make([]Task[int], 20)
		for i := range tasks {
			i := i
			tasks[i] = Task[int]{
				Key: fmt.Sprintf("key%d", i),
				Run: func(ctx context.Context) (int, error) {
					runs.Add(1)
					return i * i, nil
				},
			}
		}
		return tasks
	}
	first, err := Run(context.Background(), mk(), Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), mk(), Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 20 {
		t.Errorf("tasks ran %d times, want 20 (second pass fully cached)", runs.Load())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("cached result differs at %d: %d vs %d", i, first[i], second[i])
		}
	}
	s := cache.Stats()
	if s.Hits != 20 || s.Misses != 20 {
		t.Errorf("stats = %+v, want 20/20", s)
	}
	if r := s.HitRate(); r != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", r)
	}
	if cache.Len() != 20 {
		t.Errorf("cache entries = %d", cache.Len())
	}
}

func TestEmptyKeySkipsCache(t *testing.T) {
	cache := NewCache()
	var runs atomic.Int64
	task := []Task[int]{{Run: func(ctx context.Context) (int, error) {
		runs.Add(1)
		return 1, nil
	}}}
	for i := 0; i < 3; i++ {
		if _, err := Run(context.Background(), task, Options{Cache: cache}); err != nil {
			t.Fatal(err)
		}
	}
	if runs.Load() != 3 {
		t.Errorf("keyless task ran %d times, want 3", runs.Load())
	}
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Errorf("keyless tasks touched the cache: %+v", s)
	}
}

func TestProgressCallback(t *testing.T) {
	var snaps []Progress
	var running, peak atomic.Int64
	tasks := intTasks(30, 0, &running, &peak)
	_, err := Run(context.Background(), tasks, Options{
		Workers:  3,
		Progress: func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 30 {
		t.Fatalf("progress callbacks = %d, want 30", len(snaps))
	}
	for i, p := range snaps {
		if p.Done != i+1 || p.Total != 30 {
			t.Errorf("snapshot %d = %d/%d", i, p.Done, p.Total)
		}
		if p.Elapsed < 0 {
			t.Errorf("negative elapsed at %d", i)
		}
	}
}

func TestProgressReportsCacheHits(t *testing.T) {
	cache := NewCache()
	cache.Put("k", 42)
	tasks := []Task[int]{{Key: "k", Run: func(ctx context.Context) (int, error) {
		return 0, errors.New("should have been served from cache")
	}}}
	var last Progress
	out, err := Run(context.Background(), tasks, Options{
		Cache:    cache,
		Progress: func(p Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Errorf("out = %d, want cached 42", out[0])
	}
	if last.CacheHits != 1 || last.Done != 1 {
		t.Errorf("progress = %+v, want 1 hit", last)
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run[int](context.Background(), nil, Options{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty campaign: out=%v err=%v", out, err)
	}
}

func TestProgressPrinter(t *testing.T) {
	var b strings.Builder
	p := ProgressPrinter(&b)
	p(Progress{Done: 1, Total: 2, CacheHits: 0, Elapsed: time.Second})
	p(Progress{Done: 2, Total: 2, CacheHits: 1, Elapsed: 2 * time.Second})
	out := b.String()
	if !strings.Contains(out, "1/2 pairs") || !strings.Contains(out, "2/2 pairs") {
		t.Errorf("printer output %q missing counts", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("printer did not finish the line: %q", out)
	}
}
