package sched

import "sync"

// Cache is a memoizing campaign result cache. It is safe for concurrent
// use and is meant to be shared across campaigns (re-characterizations,
// all-sizes sweeps, bench loops): a task whose content key is present is
// not re-run, and the stored value is returned bit-identical.
//
// The cache grows without bound; campaigns are finite (194 pairs in the
// paper's full sweep) and entries are a few hundred bytes, so eviction is
// deliberately out of scope.
type Cache struct {
	mu      sync.Mutex
	entries map[string]any
	hits    uint64
	misses  uint64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]any)}
}

// CacheStats are cumulative lookup counters.
type CacheStats struct {
	// Hits counts lookups that found an entry; Misses counts the rest.
	Hits, Misses uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Get returns the entry stored under key and whether it was present,
// updating the hit/miss counters.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Put stores v under key, overwriting any previous entry.
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = v
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses}
}
