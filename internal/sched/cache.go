package sched

import "sync"

// Backend is a persistent second cache tier keyed by the same content
// keys as the in-memory Cache. Implementations store opaque encoded
// records (see Codec); the canonical implementation is the
// content-addressed file store in internal/store.
//
// Both methods are best-effort cache semantics: Load returns false on
// any miss or unreadable record (a corrupt record is a miss, never an
// error), and Store failures are swallowed by the implementation — a
// write that does not land simply costs a future recomputation.
type Backend interface {
	// Load returns the record stored under key, if present and intact.
	Load(key string) (data []byte, ok bool)
	// Store persists data under key. Records are immutable: two writes
	// under one key must carry bit-identical payloads (keys are content
	// hashes of everything that determines the result), so overwrites
	// and concurrent writers are harmless.
	Store(key string, data []byte)
}

// Codec translates cached values to and from the Backend's on-disk
// record encoding. Decode(Encode(v)) must reproduce v bit-identically;
// the campaign engine serves decoded records in place of recomputation.
type Codec interface {
	Encode(v any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Tier identifies which cache tier satisfied a lookup.
type Tier int

const (
	// TierMiss means no tier had the key.
	TierMiss Tier = iota
	// TierMemory means the in-process map had the key.
	TierMemory
	// TierStore means the persistent Backend had the key; the decoded
	// value has been promoted into the memory tier.
	TierStore
)

// Cache is a memoizing campaign result cache. It is safe for concurrent
// use and is meant to be shared across campaigns (re-characterizations,
// all-sizes sweeps, bench loops): a task whose content key is present is
// not re-run, and the stored value is returned bit-identical.
//
// The memory tier grows without bound; campaigns are finite (194 pairs
// in the paper's full sweep) and entries are a few hundred bytes, so
// eviction is deliberately out of scope. With SetBackend a persistent
// second tier sits underneath: lookups fall through memory to the
// backend (promoting hits), and writes go through to both tiers, so
// results survive the process and are shared between runs.
type Cache struct {
	mu        sync.Mutex
	entries   map[string]any
	hits      uint64 // memory-tier hits
	storeHits uint64 // backend-tier hits
	misses    uint64
	backend   Backend
	codec     Codec
}

// NewCache returns an empty cache with no persistent tier.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]any)}
}

// SetBackend attaches (or, with a nil backend, detaches) a persistent
// second tier. codec translates values to the backend's record encoding;
// it must be non-nil when backend is. Safe to call concurrently with
// lookups; entries already in memory are unaffected.
func (c *Cache) SetBackend(backend Backend, codec Codec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backend = backend
	c.codec = codec
}

// CacheStats are cumulative lookup counters, split by the tier that
// satisfied the lookup.
type CacheStats struct {
	// Hits counts lookups satisfied by any tier
	// (MemoryHits + StoreHits); Misses counts the rest.
	Hits, Misses uint64
	// MemoryHits counts lookups satisfied by the in-process map;
	// StoreHits counts those that fell through to the persistent
	// backend and found an intact record there.
	MemoryHits, StoreHits uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Get returns the entry stored under key and whether it was present in
// any tier, updating the hit/miss counters.
func (c *Cache) Get(key string) (any, bool) {
	v, tier := c.GetTier(key)
	return v, tier != TierMiss
}

// GetTier returns the entry stored under key together with the tier
// that satisfied the lookup (TierMiss when absent). A backend hit is
// decoded through the codec and promoted into the memory tier; a record
// that fails to decode counts as a miss.
func (c *Cache) GetTier(key string) (any, Tier) {
	c.mu.Lock()
	if v, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return v, TierMemory
	}
	backend, codec := c.backend, c.codec
	c.mu.Unlock()

	// Backend I/O happens outside the lock so a slow disk does not
	// serialize the campaign workers. Two workers racing on the same key
	// decode the same immutable record; last promotion wins harmlessly.
	if backend != nil && codec != nil {
		if data, ok := backend.Load(key); ok {
			if v, err := codec.Decode(data); err == nil {
				c.mu.Lock()
				c.entries[key] = v
				c.storeHits++
				c.mu.Unlock()
				return v, TierStore
			}
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, TierMiss
}

// Put stores v under key in the memory tier, overwriting any previous
// entry, and writes it through to the persistent backend when one is
// attached (best-effort: an encode or store failure only costs a future
// recomputation).
func (c *Cache) Put(key string, v any) {
	c.mu.Lock()
	c.entries[key] = v
	backend, codec := c.backend, c.codec
	c.mu.Unlock()
	if backend != nil && codec != nil {
		if data, err := codec.Encode(v); err == nil {
			backend.Store(key, data)
		}
	}
}

// HasBackend reports whether a persistent second tier is attached.
func (c *Cache) HasBackend() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.backend != nil && c.codec != nil
}

// Len returns the number of entries in the memory tier.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative per-tier hit/miss counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits + c.storeHits,
		Misses:     c.misses,
		MemoryHits: c.hits,
		StoreHits:  c.storeHits,
	}
}
