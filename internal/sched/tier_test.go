package sched

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// memBackend is an in-memory sched.Backend for tier tests.
type memBackend struct {
	mu     sync.Mutex
	m      map[string][]byte
	loads  int
	stores int
}

func newMemBackend() *memBackend { return &memBackend{m: map[string][]byte{}} }

func (b *memBackend) Load(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.loads++
	v, ok := b.m[key]
	return v, ok
}

func (b *memBackend) Store(key string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stores++
	b.m[key] = append([]byte(nil), data...)
}

// intCodec encodes ints as decimal strings.
type intCodec struct{}

func (intCodec) Encode(v any) ([]byte, error) {
	i, ok := v.(int)
	if !ok {
		return nil, fmt.Errorf("not an int: %T", v)
	}
	return []byte(strconv.Itoa(i)), nil
}

func (intCodec) Decode(data []byte) (any, error) {
	i, err := strconv.Atoi(string(data))
	if err != nil {
		return nil, err
	}
	return i, nil
}

func TestPutWritesThroughToBackend(t *testing.T) {
	b := newMemBackend()
	c := NewCache()
	c.SetBackend(b, intCodec{})
	c.Put("k", 7)
	if got, ok := b.m["k"]; !ok || string(got) != "7" {
		t.Fatalf("backend record = %q, %v", got, ok)
	}
	if v, tier := c.GetTier("k"); tier != TierMemory || v.(int) != 7 {
		t.Fatalf("GetTier = %v, %v; want memory hit", v, tier)
	}
}

func TestGetFallsThroughAndPromotes(t *testing.T) {
	b := newMemBackend()
	b.m["k"] = []byte("41")
	c := NewCache()
	c.SetBackend(b, intCodec{})

	v, tier := c.GetTier("k")
	if tier != TierStore || v.(int) != 41 {
		t.Fatalf("first lookup = %v, %v; want store hit", v, tier)
	}
	// Promoted: the second lookup is a memory hit and does not touch
	// the backend again.
	loads := b.loads
	if v, tier := c.GetTier("k"); tier != TierMemory || v.(int) != 41 {
		t.Fatalf("second lookup = %v, %v; want memory hit", v, tier)
	}
	if b.loads != loads {
		t.Errorf("promotion did not stick: backend loaded again")
	}
	s := c.Stats()
	if s.MemoryHits != 1 || s.StoreHits != 1 || s.Hits != 2 || s.Misses != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestUndecodableBackendRecordIsMiss(t *testing.T) {
	b := newMemBackend()
	b.m["k"] = []byte("not-a-number")
	c := NewCache()
	c.SetBackend(b, intCodec{})
	if _, tier := c.GetTier("k"); tier != TierMiss {
		t.Fatalf("tier = %v, want miss for undecodable record", tier)
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestNoBackendBehavesAsBefore(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", 9)
	if v, ok := c.Get("k"); !ok || v.(int) != 9 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.MemoryHits != 1 || s.StoreHits != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRunReportsStoreHits(t *testing.T) {
	b := newMemBackend()
	c := NewCache()
	c.SetBackend(b, intCodec{})
	b.m["from-store"] = []byte("10")
	c.Put("from-memory", 20)

	tasks := []Task[int]{
		{Name: "a", Key: "from-store", Run: func(context.Context) (int, error) {
			return 0, errors.New("should have been served from the store tier")
		}},
		{Name: "b", Key: "from-memory", Run: func(context.Context) (int, error) {
			return 0, errors.New("should have been served from the memory tier")
		}},
		{Name: "c", Key: "computed", Run: func(context.Context) (int, error) {
			return 30, nil
		}},
	}
	var last Progress
	out, err := Run(context.Background(), tasks, Options{
		Workers:  1,
		Cache:    c,
		Progress: func(p Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 10 || out[1] != 20 || out[2] != 30 {
		t.Fatalf("out = %v", out)
	}
	if last.CacheHits != 2 || last.StoreHits != 1 || last.Done != 3 {
		t.Errorf("progress = %+v, want 2 hits of which 1 store", last)
	}
	// The computed task was written through and survives into a new
	// memory tier.
	c2 := NewCache()
	c2.SetBackend(b, intCodec{})
	if v, tier := c2.GetTier("computed"); tier != TierStore || v.(int) != 30 {
		t.Errorf("write-through record = %v, %v", v, tier)
	}
}
