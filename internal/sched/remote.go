package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// This file is the scheduler's remote dispatch tier: the engine behind
// specserved's coordinator mode. Where Run fans tasks out over local
// goroutines, RunRemote fans them out over a fleet of remote workers —
// each task carries an affinity (the consistent-hash owner of its
// content), idle workers steal queued work from backlogged peers,
// stragglers are speculatively re-executed, and a worker that keeps
// failing is evicted so its queue drains through the survivors.
//
// The whole design leans on one invariant the content-addressed result
// store established: task results are idempotent by content key, so
// running a task twice (a resubmission after a worker died, or a
// speculative duplicate racing a straggler) is always safe — the first
// completed attempt wins and the duplicate's result is bit-identical
// anyway.

// RemoteTask is one unit of work dispatched to a remote worker.
type RemoteTask[T any] struct {
	// Name identifies the task in dispatch errors.
	Name string
	// Affinity is the preferred worker index (the task's consistent-hash
	// owner). The dispatcher starts the task there when possible but any
	// worker may execute it after stealing or a failure.
	Affinity int
	// Run performs the work on the given worker index. It must be safe
	// to call more than once, possibly concurrently on different
	// workers (idempotent results).
	Run func(ctx context.Context, worker int) (T, error)
}

// RemoteOptions configure one RunRemote dispatch.
type RemoteOptions[T any] struct {
	// MaxAttempts bounds how many failed executions one task tolerates
	// before the dispatch aborts (default 3). Attempts on evicted
	// workers count.
	MaxAttempts int
	// EvictAfter is the number of consecutive failures that evicts a
	// worker from the dispatch (default 2). An evicted worker stops
	// pulling tasks; whatever it queued is redistributed. Successes
	// reset the count.
	EvictAfter int
	// Speculate lets an idle worker duplicate an in-flight task from a
	// backlogged peer instead of sitting idle (at most two concurrent
	// attempts per task). The first attempt to finish wins; the loser's
	// result is discarded. Requires idempotent tasks.
	Speculate bool
	// TaskDone, when non-nil, is invoked exactly once per task when its
	// first successful attempt lands, outside the dispatcher lock.
	TaskDone func(i int, result T)
	// OnRetry, when non-nil, observes every failed execution (the task
	// will be retried unless attempts ran out).
	OnRetry func(task string, worker int, err error)
	// OnEvict, when non-nil, observes worker evictions.
	OnEvict func(worker int, lastErr error)
}

func (o RemoteOptions[T]) withDefaults() RemoteOptions[T] {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 2
	}
	return o
}

// ErrNoWorkers is returned by RunRemote when every worker has been
// evicted while tasks were still pending.
var ErrNoWorkers = errors.New("sched: every remote worker was evicted")

// remoteState is the dispatcher-side state of one task.
type remoteState struct {
	done     bool
	inflight int // concurrent attempts right now
	failures int // completed failed attempts
}

// RunRemote executes every task on a fleet of `workers` remote workers
// and returns the results in task order. One dispatch goroutine runs
// per worker: it prefers tasks whose Affinity names it, steals queued
// tasks from the most backlogged peer when its own queue is empty, and
// (with Speculate) duplicates in-flight stragglers when nothing is
// queued at all. A task failure is retried elsewhere up to
// MaxAttempts; EvictAfter consecutive failures evict the worker. The
// dispatch fails with the first exhausted task's error, ErrNoWorkers
// when the whole fleet died, or ctx's error on cancellation.
func RunRemote[T any](ctx context.Context, workers int, tasks []RemoteTask[T], opt RemoteOptions[T]) ([]T, error) {
	opt = opt.withDefaults()
	if workers <= 0 {
		return nil, ErrNoWorkers
	}
	if len(tasks) == 0 {
		return []T{}, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		state    = make([]remoteState, len(tasks))
		out      = make([]T, len(tasks))
		doneN    int
		live     = workers
		firstErr error
	)
	fail := func(err error) { // callers hold mu
		if firstErr == nil {
			firstErr = err
		}
		cancel()
		cond.Broadcast()
	}
	// Wake every waiter when the context dies so no dispatcher blocks
	// on the cond forever.
	go func() {
		<-ctx.Done()
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
	}()

	// queuedFor counts tasks not yet attempted whose affinity is w.
	queuedFor := func(w int) int {
		n := 0
		for i := range tasks {
			if tasks[i].Affinity == w && !state[i].done && state[i].inflight == 0 && state[i].failures == 0 {
				n++
			}
		}
		return n
	}
	// pick selects the next task for worker w, or -1 to wait, under mu.
	// Preference order: own affinity queue, then retries, then stealing
	// from the most backlogged peer, then (optionally) speculating on a
	// straggler.
	pick := func(w int) int {
		best := -1
		for i := range tasks {
			st := &state[i]
			if st.done || st.inflight > 0 {
				continue
			}
			if st.failures >= opt.MaxAttempts {
				continue // exhausted; fail() already fired
			}
			if tasks[i].Affinity == w {
				return i
			}
			if best == -1 {
				best = i
			} else if queuedFor(tasks[i].Affinity) > queuedFor(tasks[best].Affinity) {
				best = i
			}
		}
		if best >= 0 {
			return best
		}
		if opt.Speculate {
			for i := range tasks {
				st := &state[i]
				if !st.done && st.inflight == 1 && st.failures+st.inflight < opt.MaxAttempts {
					return i
				}
			}
		}
		return -1
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			consec := 0
			for {
				mu.Lock()
				for {
					if ctx.Err() != nil || firstErr != nil || doneN == len(tasks) {
						mu.Unlock()
						return
					}
					if i := pick(w); i >= 0 {
						state[i].inflight++
						mu.Unlock()

						v, err := tasks[i].Run(ctx, w)

						mu.Lock()
						st := &state[i]
						st.inflight--
						if err == nil {
							consec = 0
							first := !st.done
							if first {
								st.done = true
								doneN++
								out[i] = v
							}
							allDone := doneN == len(tasks)
							if allDone {
								// Abort any speculative duplicates still in
								// flight: their results are already recorded
								// by the attempts that won.
								cancel()
							}
							cond.Broadcast()
							mu.Unlock()
							if first && opt.TaskDone != nil {
								opt.TaskDone(i, v)
							}
							if allDone {
								return
							}
							break // re-enter the pick loop
						}
						// Failed attempt: maybe retry, maybe exhausted,
						// maybe this worker is done for.
						st.failures++
						exhausted := !st.done && st.inflight == 0 && st.failures >= opt.MaxAttempts
						consec++
						evicted := consec >= opt.EvictAfter
						if evicted {
							live--
						}
						fleetDead := evicted && live == 0 && doneN < len(tasks)
						if exhausted && ctx.Err() == nil {
							fail(fmt.Errorf("task %s failed %d times, last: %w", tasks[i].Name, st.failures, err))
						} else if fleetDead {
							fail(fmt.Errorf("%w (last worker %d: %v)", ErrNoWorkers, w, err))
						}
						cond.Broadcast()
						mu.Unlock()
						if opt.OnRetry != nil && !exhausted && ctx.Err() == nil {
							opt.OnRetry(tasks[i].Name, w, err)
						}
						if evicted {
							if opt.OnEvict != nil {
								opt.OnEvict(w, err)
							}
							return
						}
						break // re-enter the pick loop
					}
					cond.Wait()
				}
			}
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil && doneN < len(tasks) {
		return nil, err
	}
	if doneN < len(tasks) {
		// Every dispatcher exited (evictions) without tripping the
		// fleet-dead path — treat it the same.
		return nil, ErrNoWorkers
	}
	return out, nil
}
