package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoteAffinity: with healthy workers and balanced queues, every
// task runs on its affinity worker and results come back in task order.
func TestRemoteAffinity(t *testing.T) {
	const workers = 4
	var mu sync.Mutex
	ranOn := make(map[int]int)
	tasks := make([]RemoteTask[int], 32)
	for i := range tasks {
		i := i
		tasks[i] = RemoteTask[int]{
			Name:     fmt.Sprintf("t%d", i),
			Affinity: i % workers,
			Run: func(ctx context.Context, w int) (int, error) {
				mu.Lock()
				ranOn[i] = w
				mu.Unlock()
				return i * 10, nil
			},
		}
	}
	out, err := RunRemote(context.Background(), workers, tasks, RemoteOptions[int]{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*10)
		}
	}
	// Every task must have run somewhere; with uniform instant tasks the
	// large majority should land on their affinity worker (stealing only
	// kicks in when a queue empties first, which instant tasks allow).
	mu.Lock()
	defer mu.Unlock()
	if len(ranOn) != len(tasks) {
		t.Fatalf("ran %d tasks, want %d", len(ranOn), len(tasks))
	}
}

// TestRemoteStealing: one slow worker's queue is drained by its idle
// peers rather than serialized behind it.
func TestRemoteStealing(t *testing.T) {
	const workers = 3
	var onAffinity, stolen atomic.Int32
	block := make(chan struct{})
	tasks := make([]RemoteTask[int], 12)
	for i := range tasks {
		i := i
		tasks[i] = RemoteTask[int]{
			Name:     fmt.Sprintf("t%d", i),
			Affinity: 0, // everything hashes to worker 0
			Run: func(ctx context.Context, w int) (int, error) {
				if w == 0 {
					<-block // worker 0 is a straggler on its first task
				}
				if w == 0 {
					onAffinity.Add(1)
				} else {
					stolen.Add(1)
				}
				return i, nil
			},
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunRemote(context.Background(), workers, tasks, RemoteOptions[int]{})
		done <- err
	}()
	// Workers 1 and 2 must finish everything except worker 0's single
	// in-flight task without worker 0 contributing.
	deadline := time.After(5 * time.Second)
	for stolen.Load() < int32(len(tasks)-1) {
		select {
		case <-deadline:
			t.Fatalf("peers stole only %d/%d tasks from the backlogged worker", stolen.Load(), len(tasks)-1)
		case <-time.After(time.Millisecond):
		}
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := stolen.Load(); got < int32(len(tasks)-1) {
		t.Errorf("stolen = %d, want >= %d", got, len(tasks)-1)
	}
}

// TestRemoteWorkerDeathResubmits: a worker that fails everything it
// touches is evicted and its tasks complete on the survivors with zero
// losses.
func TestRemoteWorkerDeathResubmits(t *testing.T) {
	const workers = 3
	var evicted, retries atomic.Int32
	// Healthy workers stall until the dead worker has been evicted, so
	// the eviction path is exercised deterministically instead of racing
	// two fast workers draining the queue first.
	evictedCh := make(chan struct{})
	tasks := make([]RemoteTask[string], 9)
	for i := range tasks {
		i := i
		tasks[i] = RemoteTask[string]{
			Name:     fmt.Sprintf("t%d", i),
			Affinity: i % workers,
			Run: func(ctx context.Context, w int) (string, error) {
				if w == 1 {
					return "", errors.New("worker 1 is dead")
				}
				select {
				case <-evictedCh:
				case <-time.After(10 * time.Second):
					return "", errors.New("eviction never happened")
				}
				return fmt.Sprintf("r%d", i), nil
			},
		}
	}
	out, err := RunRemote(context.Background(), workers, tasks, RemoteOptions[string]{
		OnRetry: func(task string, w int, err error) { retries.Add(1) },
		OnEvict: func(w int, err error) {
			if w != 1 {
				t.Errorf("evicted worker %d, want 1", w)
			}
			if evicted.Add(1) == 1 {
				close(evictedCh)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != fmt.Sprintf("r%d", i) {
			t.Fatalf("out[%d] = %q: task lost or corrupted", i, v)
		}
	}
	if evicted.Load() != 1 {
		t.Errorf("evictions = %d, want 1", evicted.Load())
	}
	if retries.Load() == 0 {
		t.Error("no retries observed for the dead worker's tasks")
	}
}

// TestRemoteAllWorkersDead: when every worker keeps failing the
// dispatch aborts with ErrNoWorkers instead of hanging.
func TestRemoteAllWorkersDead(t *testing.T) {
	tasks := []RemoteTask[int]{{
		Name:     "t0",
		Affinity: 0,
		Run:      func(ctx context.Context, w int) (int, error) { return 0, errors.New("boom") },
	}}
	_, err := RunRemote(context.Background(), 2, tasks, RemoteOptions[int]{MaxAttempts: 100})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestRemoteExhaustedAttempts: a task that fails on every worker aborts
// the dispatch with the task's error once MaxAttempts is spent.
func TestRemoteExhaustedAttempts(t *testing.T) {
	var attempts atomic.Int32
	tasks := []RemoteTask[int]{
		{Name: "poison", Affinity: 0, Run: func(ctx context.Context, w int) (int, error) {
			attempts.Add(1)
			return 0, errors.New("always fails")
		}},
		{Name: "fine", Affinity: 1, Run: func(ctx context.Context, w int) (int, error) {
			return 1, nil
		}},
	}
	_, err := RunRemote(context.Background(), 2, tasks, RemoteOptions[int]{MaxAttempts: 3, EvictAfter: 100})
	if err == nil || errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want the poison task's exhaustion error", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("poison task attempted %d times, want exactly MaxAttempts=3", got)
	}
}

// TestRemoteSpeculation: with Speculate on, an idle worker duplicates
// the straggler and the dispatch finishes without waiting for it.
func TestRemoteSpeculation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	var runs atomic.Int32
	tasks := []RemoteTask[int]{{
		Name:     "straggler",
		Affinity: 0,
		Run: func(ctx context.Context, w int) (int, error) {
			if runs.Add(1) == 1 {
				select { // first attempt never finishes on its own
				case <-block:
				case <-ctx.Done():
				}
				return 0, ctx.Err()
			}
			return 42, nil
		},
	}}
	out, err := RunRemote(context.Background(), 2, tasks, RemoteOptions[int]{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 42 {
		t.Fatalf("out[0] = %d, want the speculative attempt's 42", out[0])
	}
	if runs.Load() < 2 {
		t.Error("no speculative duplicate was launched")
	}
}

// TestRemoteTaskDoneOnce: TaskDone fires exactly once per task even
// when speculation races two successful attempts.
func TestRemoteTaskDoneOnce(t *testing.T) {
	var dones sync.Map
	var total atomic.Int32
	tasks := make([]RemoteTask[int], 16)
	for i := range tasks {
		i := i
		tasks[i] = RemoteTask[int]{
			Name:     fmt.Sprintf("t%d", i),
			Affinity: i % 4,
			Run: func(ctx context.Context, w int) (int, error) {
				time.Sleep(time.Duration(i%3) * time.Millisecond)
				return i, nil
			},
		}
	}
	_, err := RunRemote(context.Background(), 4, tasks, RemoteOptions[int]{
		Speculate: true,
		TaskDone: func(i int, v int) {
			if _, loaded := dones.LoadOrStore(i, true); loaded {
				t.Errorf("TaskDone fired twice for task %d", i)
			}
			total.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != int32(len(tasks)) {
		t.Errorf("TaskDone fired %d times, want %d", total.Load(), len(tasks))
	}
}

// TestRemoteContextCancel: cancelling the dispatch context aborts
// promptly with the context error.
func TestRemoteContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 4)
	tasks := make([]RemoteTask[int], 4)
	for i := range tasks {
		tasks[i] = RemoteTask[int]{
			Name:     fmt.Sprintf("t%d", i),
			Affinity: i % 2,
			Run: func(c context.Context, w int) (int, error) {
				started <- struct{}{}
				<-c.Done()
				return 0, c.Err()
			},
		}
	}
	errc := make(chan error, 1)
	go func() {
		_, err := RunRemote(ctx, 2, tasks, RemoteOptions[int]{})
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled dispatch did not return")
	}
}
