package ostree

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// refStack is a trivially correct slice-based reference implementation used
// to cross-check the treap.
type refStack struct {
	s []uint64
}

func (r *refStack) insertAt(rank int, v uint64) {
	r.s = append(r.s, 0)
	copy(r.s[rank+1:], r.s[rank:])
	r.s[rank] = v
}

func (r *refStack) removeAt(rank int) uint64 {
	v := r.s[rank]
	r.s = append(r.s[:rank], r.s[rank+1:]...)
	return v
}

func TestEmptyTree(t *testing.T) {
	tr := New(1)
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var tr Tree
	tr.PushFront(42)
	if got := tr.At(0); got != 42 {
		t.Fatalf("At(0) = %d, want 42", got)
	}
}

func TestPushFrontOrder(t *testing.T) {
	tr := New(1)
	for i := uint64(0); i < 100; i++ {
		tr.PushFront(i)
	}
	// Last pushed is at the front.
	for i := 0; i < 100; i++ {
		want := uint64(99 - i)
		if got := tr.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestInsertAtArbitrary(t *testing.T) {
	tr := New(2)
	tr.PushFront(1)
	tr.PushFront(0)
	tr.InsertAt(1, 99)
	tr.InsertAt(3, 100) // at the end
	want := []uint64{0, 99, 1, 100}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRemoveAt(t *testing.T) {
	tr := New(3)
	for i := 4; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	if v := tr.RemoveAt(2); v != 2 {
		t.Fatalf("RemoveAt(2) = %d, want 2", v)
	}
	want := []uint64{0, 1, 3, 4}
	if tr.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", tr.Len(), len(want))
	}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestMoveToFront(t *testing.T) {
	tr := New(4)
	for i := 4; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	if v := tr.MoveToFront(3); v != 3 {
		t.Fatalf("MoveToFront(3) = %d, want 3", v)
	}
	want := []uint64{3, 0, 1, 2, 4}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if tr.Len() != 5 {
		t.Errorf("Len() = %d, want 5", tr.Len())
	}
}

func TestWalkVisitsInOrder(t *testing.T) {
	tr := New(5)
	for i := 9; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	var got []uint64
	tr.Walk(func(rank int, v uint64) bool {
		if rank != len(got) {
			t.Fatalf("rank %d out of order (visited %d)", rank, len(got))
		}
		got = append(got, v)
		return true
	})
	for i, v := range got {
		if v != uint64(i) {
			t.Errorf("walk[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New(6)
	for i := 0; i < 10; i++ {
		tr.PushFront(uint64(i))
	}
	visited := 0
	tr.Walk(func(rank int, v uint64) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Errorf("visited %d nodes, want 3", visited)
	}
}

func TestPanicsOnBadRank(t *testing.T) {
	tr := New(7)
	tr.PushFront(1)
	for _, fn := range []func(){
		func() { tr.At(-1) },
		func() { tr.At(1) },
		func() { tr.RemoveAt(5) },
		func() { tr.InsertAt(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range rank")
				}
			}()
			fn()
		}()
	}
}

// TestAgainstReference drives random operations against the slice-based
// reference implementation.
func TestAgainstReference(t *testing.T) {
	tr := New(8)
	ref := &refStack{}
	rng := xrand.NewPCG32(999)
	for step := 0; step < 20000; step++ {
		n := tr.Len()
		if n != len(ref.s) {
			t.Fatalf("step %d: Len mismatch %d vs %d", step, n, len(ref.s))
		}
		op := rng.Intn(4)
		switch {
		case n == 0 || op == 0: // insert
			rank := 0
			if n > 0 {
				rank = rng.Intn(n + 1)
			}
			v := rng.Uint64()
			tr.InsertAt(rank, v)
			ref.insertAt(rank, v)
		case op == 1: // remove
			rank := rng.Intn(n)
			a := tr.RemoveAt(rank)
			b := ref.removeAt(rank)
			if a != b {
				t.Fatalf("step %d: RemoveAt(%d) = %d, ref %d", step, rank, a, b)
			}
		case op == 2: // move to front
			rank := rng.Intn(n)
			a := tr.MoveToFront(rank)
			b := ref.removeAt(rank)
			ref.insertAt(0, b)
			if a != b {
				t.Fatalf("step %d: MoveToFront(%d) = %d, ref %d", step, rank, a, b)
			}
		default: // read
			rank := rng.Intn(n)
			if a, b := tr.At(rank), ref.s[rank]; a != b {
				t.Fatalf("step %d: At(%d) = %d, ref %d", step, rank, a, b)
			}
		}
	}
}

// TestSizeInvariant checks the subtree-size bookkeeping by property.
func TestSizeInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New(9)
		count := 0
		for _, op := range ops {
			if count == 0 || op%3 != 0 {
				tr.InsertAt(int(op)%(count+1), uint64(op))
				count++
			} else {
				tr.RemoveAt(int(op) % count)
				count--
			}
			if tr.Len() != count {
				return false
			}
		}
		// Walk must visit exactly count elements with sequential ranks.
		visited := 0
		tr.Walk(func(rank int, v uint64) bool {
			if rank != visited {
				return false
			}
			visited++
			return true
		})
		return visited == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLargeLRUStackBehaviour(t *testing.T) {
	// Simulate an LRU stack: push 10k lines, touch rank d, verify the
	// touched value moves to rank 0 and everything above shifts down one.
	tr := New(10)
	const n = 10000
	for i := n - 1; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	v := tr.MoveToFront(5000)
	if v != 5000 {
		t.Fatalf("MoveToFront(5000) = %d, want 5000", v)
	}
	if got := tr.At(0); got != 5000 {
		t.Fatalf("At(0) = %d, want 5000", got)
	}
	if got := tr.At(5000); got != 4999 {
		t.Fatalf("At(5000) = %d, want 4999", got)
	}
	if got := tr.At(5001); got != 5001 {
		t.Fatalf("At(5001) = %d, want 5001", got)
	}
}

func BenchmarkMoveToFront100k(b *testing.B) {
	tr := New(11)
	const n = 100000
	for i := 0; i < n; i++ {
		tr.PushFront(uint64(i))
	}
	rng := xrand.NewPCG32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.MoveToFront(rng.Intn(n))
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	tr := New(12)
	for i := 0; i < 1000; i++ {
		tr.PushFront(uint64(i))
	}
	rng := xrand.NewPCG32(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertAt(rng.Intn(tr.Len()+1), uint64(i))
		tr.RemoveAt(rng.Intn(tr.Len()))
	}
}
