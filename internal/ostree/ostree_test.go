package ostree

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// refStack is a trivially correct slice-based reference implementation used
// to cross-check the treap.
type refStack struct {
	s []uint64
}

func (r *refStack) insertAt(rank int, v uint64) {
	r.s = append(r.s, 0)
	copy(r.s[rank+1:], r.s[rank:])
	r.s[rank] = v
}

func (r *refStack) removeAt(rank int) uint64 {
	v := r.s[rank]
	r.s = append(r.s[:rank], r.s[rank+1:]...)
	return v
}

func TestEmptyTree(t *testing.T) {
	tr := New(1)
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
}

func TestZeroValueUsable(t *testing.T) {
	var tr Tree
	tr.PushFront(42)
	if got := tr.At(0); got != 42 {
		t.Fatalf("At(0) = %d, want 42", got)
	}
}

func TestPushFrontOrder(t *testing.T) {
	tr := New(1)
	for i := uint64(0); i < 100; i++ {
		tr.PushFront(i)
	}
	// Last pushed is at the front.
	for i := 0; i < 100; i++ {
		want := uint64(99 - i)
		if got := tr.At(i); got != want {
			t.Fatalf("At(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestInsertAtArbitrary(t *testing.T) {
	tr := New(2)
	tr.PushFront(1)
	tr.PushFront(0)
	tr.InsertAt(1, 99)
	tr.InsertAt(3, 100) // at the end
	want := []uint64{0, 99, 1, 100}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRemoveAt(t *testing.T) {
	tr := New(3)
	for i := 4; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	if v := tr.RemoveAt(2); v != 2 {
		t.Fatalf("RemoveAt(2) = %d, want 2", v)
	}
	want := []uint64{0, 1, 3, 4}
	if tr.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", tr.Len(), len(want))
	}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestMoveToFront(t *testing.T) {
	tr := New(4)
	for i := 4; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	if v := tr.MoveToFront(3); v != 3 {
		t.Fatalf("MoveToFront(3) = %d, want 3", v)
	}
	want := []uint64{3, 0, 1, 2, 4}
	for i, w := range want {
		if got := tr.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if tr.Len() != 5 {
		t.Errorf("Len() = %d, want 5", tr.Len())
	}
}

func TestWalkVisitsInOrder(t *testing.T) {
	tr := New(5)
	for i := 9; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	var got []uint64
	tr.Walk(func(rank int, v uint64) bool {
		if rank != len(got) {
			t.Fatalf("rank %d out of order (visited %d)", rank, len(got))
		}
		got = append(got, v)
		return true
	})
	for i, v := range got {
		if v != uint64(i) {
			t.Errorf("walk[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New(6)
	for i := 0; i < 10; i++ {
		tr.PushFront(uint64(i))
	}
	visited := 0
	tr.Walk(func(rank int, v uint64) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Errorf("visited %d nodes, want 3", visited)
	}
}

func TestPanicsOnBadRank(t *testing.T) {
	tr := New(7)
	tr.PushFront(1)
	for _, fn := range []func(){
		func() { tr.At(-1) },
		func() { tr.At(1) },
		func() { tr.RemoveAt(5) },
		func() { tr.InsertAt(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range rank")
				}
			}()
			fn()
		}()
	}
}

// TestAgainstReference drives random operations against the slice-based
// reference implementation.
func TestAgainstReference(t *testing.T) {
	tr := New(8)
	ref := &refStack{}
	rng := xrand.NewPCG32(999)
	for step := 0; step < 20000; step++ {
		n := tr.Len()
		if n != len(ref.s) {
			t.Fatalf("step %d: Len mismatch %d vs %d", step, n, len(ref.s))
		}
		op := rng.Intn(4)
		switch {
		case n == 0 || op == 0: // insert
			rank := 0
			if n > 0 {
				rank = rng.Intn(n + 1)
			}
			v := rng.Uint64()
			tr.InsertAt(rank, v)
			ref.insertAt(rank, v)
		case op == 1: // remove
			rank := rng.Intn(n)
			a := tr.RemoveAt(rank)
			b := ref.removeAt(rank)
			if a != b {
				t.Fatalf("step %d: RemoveAt(%d) = %d, ref %d", step, rank, a, b)
			}
		case op == 2: // move to front
			rank := rng.Intn(n)
			a := tr.MoveToFront(rank)
			b := ref.removeAt(rank)
			ref.insertAt(0, b)
			if a != b {
				t.Fatalf("step %d: MoveToFront(%d) = %d, ref %d", step, rank, a, b)
			}
		default: // read
			rank := rng.Intn(n)
			if a, b := tr.At(rank), ref.s[rank]; a != b {
				t.Fatalf("step %d: At(%d) = %d, ref %d", step, rank, a, b)
			}
		}
	}
}

// TestSizeInvariant checks the subtree-size bookkeeping by property.
func TestSizeInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New(9)
		count := 0
		for _, op := range ops {
			if count == 0 || op%3 != 0 {
				tr.InsertAt(int(op)%(count+1), uint64(op))
				count++
			} else {
				tr.RemoveAt(int(op) % count)
				count--
			}
			if tr.Len() != count {
				return false
			}
		}
		// Walk must visit exactly count elements with sequential ranks.
		visited := 0
		tr.Walk(func(rank int, v uint64) bool {
			if rank != visited {
				return false
			}
			visited++
			return true
		})
		return visited == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLargeLRUStackBehaviour(t *testing.T) {
	// Simulate an LRU stack: push 10k lines, touch rank d, verify the
	// touched value moves to rank 0 and everything above shifts down one.
	tr := New(10)
	const n = 10000
	for i := n - 1; i >= 0; i-- {
		tr.PushFront(uint64(i))
	}
	v := tr.MoveToFront(5000)
	if v != 5000 {
		t.Fatalf("MoveToFront(5000) = %d, want 5000", v)
	}
	if got := tr.At(0); got != 5000 {
		t.Fatalf("At(0) = %d, want 5000", got)
	}
	if got := tr.At(5000); got != 4999 {
		t.Fatalf("At(5000) = %d, want 4999", got)
	}
	if got := tr.At(5001); got != 5001 {
		t.Fatalf("At(5001) = %d, want 5001", got)
	}
}

// TestRankOfValue: on a tree maintained in ascending value order (the
// profiler's invariant: strictly decreasing stamps pushed to the front),
// RankOfValue inverts At for every element and returns -1 for absent
// values.
func TestRankOfValue(t *testing.T) {
	tr := New(13)
	// Push descending values to the front: rank order ends up ascending.
	const n = 1000
	for v := n - 1; v >= 0; v-- {
		tr.PushFront(uint64(v * 2)) // even values only
	}
	for rank := 0; rank < n; rank++ {
		v := tr.At(rank)
		if got := tr.RankOfValue(v); got != rank {
			t.Fatalf("RankOfValue(%d) = %d, want %d", v, got, rank)
		}
	}
	for _, absent := range []uint64{1, 999, 2*n + 1} {
		if got := tr.RankOfValue(absent); got != -1 {
			t.Errorf("RankOfValue(absent %d) = %d, want -1", absent, got)
		}
	}
	if got := New(14).RankOfValue(7); got != -1 {
		t.Errorf("RankOfValue on empty tree = %d, want -1", got)
	}
}

// TestRankOfValueAfterMoves: the ascending invariant survives the LRU
// touch pattern (remove at rank, push a fresh smaller value to the
// front), which is exactly how the reuse-distance profiler drives it.
func TestRankOfValueAfterMoves(t *testing.T) {
	tr := New(15)
	rng := xrand.NewPCG32(77)
	next := uint64(1 << 40)
	stamps := []uint64{}
	for i := 0; i < 200; i++ {
		tr.PushFront(next)
		stamps = append([]uint64{next}, stamps...)
		next--
	}
	for step := 0; step < 5000; step++ {
		i := rng.Intn(len(stamps))
		old := stamps[i]
		rank := tr.RankOfValue(old)
		if rank < 0 {
			t.Fatalf("step %d: live stamp %d not found", step, old)
		}
		if got := tr.At(rank); got != old {
			t.Fatalf("step %d: At(RankOfValue(%d)) = %d", step, old, got)
		}
		tr.RemoveAt(rank)
		tr.PushFront(next)
		stamps = append(stamps[:i], stamps[i+1:]...)
		stamps = append([]uint64{next}, stamps...)
		next--
	}
}

// TestRemoveValueAgainstReference drives the LRU touch pattern and
// cross-checks RemoveValue's returned rank and the resulting sequence
// against the slice reference.
func TestRemoveValueAgainstReference(t *testing.T) {
	tr := New(16)
	ref := &refStack{}
	rng := xrand.NewPCG32(123)
	next := uint64(1 << 50)
	for i := 0; i < 300; i++ {
		tr.PushFront(next)
		ref.insertAt(0, next)
		next--
	}
	for step := 0; step < 10000; step++ {
		v := ref.s[rng.Intn(len(ref.s))]
		gotRank := tr.RemoveValue(v)
		wantRank := -1
		for i, rv := range ref.s {
			if rv == v {
				wantRank = i
				break
			}
		}
		if gotRank != wantRank {
			t.Fatalf("step %d: RemoveValue(%d) = %d, ref rank %d", step, v, gotRank, wantRank)
		}
		ref.removeAt(wantRank)
		tr.PushFront(next)
		ref.insertAt(0, next)
		next--
		if tr.Len() != len(ref.s) {
			t.Fatalf("step %d: Len %d vs %d", step, tr.Len(), len(ref.s))
		}
	}
	// Full sequence equality at the end.
	for i, v := range ref.s {
		if got := tr.At(i); got != v {
			t.Fatalf("At(%d) = %d, ref %d", i, got, v)
		}
	}
	// Absent values leave the tree untouched.
	if got := tr.RemoveValue(1); got != -1 {
		t.Errorf("RemoveValue(absent) = %d, want -1", got)
	}
	if tr.Len() != len(ref.s) {
		t.Errorf("failed RemoveValue changed Len to %d", tr.Len())
	}
}

// TestFromOrdered: the bulk builder produces the same observable
// sequence as pushing the values front-to-back, and the resulting tree
// supports the full operation set (sizes must be correct for At,
// RemoveValue and later insertions to work).
func TestFromOrdered(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 1000} {
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(1<<40) - uint64(i) // descending, like LRU stamps
		}
		tr := FromOrdered(21, values)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len() = %d", n, tr.Len())
		}
		for i, v := range values {
			if got := tr.At(i); got != v {
				t.Fatalf("n=%d: At(%d) = %d, want %d", n, i, got, v)
			}
		}
		// Walk agrees with At.
		visited := 0
		tr.Walk(func(rank int, v uint64) bool {
			if v != values[rank] {
				t.Fatalf("n=%d: walk rank %d = %d, want %d", n, rank, v, values[rank])
			}
			visited++
			return true
		})
		if visited != n {
			t.Fatalf("n=%d: walk visited %d", n, visited)
		}
	}
}

// TestFromOrderedThenMutate drives the LRU touch pattern on a bulk-built
// tree against the slice reference, exercising the size bookkeeping the
// post-order fixup must have gotten right.
func TestFromOrderedThenMutate(t *testing.T) {
	// Ascending values (RemoveValue's invariant: rank order == value
	// order, the profiler's most-recent-first stamp layout).
	const n = 500
	values := make([]uint64, n)
	ref := &refStack{}
	for i := range values {
		values[i] = uint64(1<<50) + uint64(i)
		ref.insertAt(i, values[i])
	}
	tr := FromOrdered(22, values)
	rng := xrand.NewPCG32(321)
	next := uint64(1<<50) - 1
	for step := 0; step < 5000; step++ {
		v := ref.s[rng.Intn(len(ref.s))]
		gotRank := tr.RemoveValue(v)
		wantRank := -1
		for i, rv := range ref.s {
			if rv == v {
				wantRank = i
				break
			}
		}
		if gotRank != wantRank {
			t.Fatalf("step %d: RemoveValue(%d) = %d, ref rank %d", step, v, gotRank, wantRank)
		}
		ref.removeAt(wantRank)
		tr.PushFront(next)
		ref.insertAt(0, next)
		next--
	}
	for i, v := range ref.s {
		if got := tr.At(i); got != v {
			t.Fatalf("At(%d) = %d, ref %d", i, got, v)
		}
	}
}

func BenchmarkMoveToFront100k(b *testing.B) {
	tr := New(11)
	const n = 100000
	for i := 0; i < n; i++ {
		tr.PushFront(uint64(i))
	}
	rng := xrand.NewPCG32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.MoveToFront(rng.Intn(n))
	}
}

func BenchmarkInsertRemove(b *testing.B) {
	tr := New(12)
	for i := 0; i < 1000; i++ {
		tr.PushFront(uint64(i))
	}
	rng := xrand.NewPCG32(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.InsertAt(rng.Intn(tr.Len()+1), uint64(i))
		tr.RemoveAt(rng.Intn(tr.Len()))
	}
}
