// Package ostree implements an order-statistic treap: a randomized balanced
// binary tree that supports selecting, removing and inserting elements by
// rank in O(log n) expected time.
//
// The synthetic trace generator uses it as an exact LRU stack: the most
// recently used cache line sits at rank 0, and referencing the line at rank
// d produces a memory access with reuse distance exactly d. Select-by-rank
// plus move-to-front are the only operations on the hot path, so both must
// be logarithmic; a plain linked-list LRU stack would cost O(d) per access
// with d up to several hundred thousand lines (a 30 MB L3).
package ostree

import "repro/internal/xrand"

type node struct {
	value    uint64
	priority uint32
	size     int // size of the subtree rooted here
	left     *node
	right    *node
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() {
	n.size = 1 + size(n.left) + size(n.right)
}

// Tree is an order-statistic treap over uint64 values. Ranks are
// zero-based: rank 0 is the front of the sequence. The zero value is an
// empty tree ready to use, with priorities drawn from a fixed-seed PRNG;
// use New to supply a custom seed.
type Tree struct {
	root *node
	rng  *xrand.PCG32
}

// New returns an empty tree whose node priorities are drawn from a PRNG
// seeded with seed. Trees with different seeds have independent shapes but
// identical observable behaviour.
func New(seed uint64) *Tree {
	return &Tree{rng: xrand.NewPCG32(seed)}
}

func (t *Tree) lazyInit() {
	if t.rng == nil {
		t.rng = xrand.NewPCG32(0x05ec17)
	}
}

// Len returns the number of elements in the tree.
func (t *Tree) Len() int { return size(t.root) }

// split divides n into (left, right) where left holds the first k elements.
func split(n *node, k int) (*node, *node) {
	if n == nil {
		return nil, nil
	}
	if size(n.left) >= k {
		l, r := split(n.left, k)
		n.left = r
		n.update()
		return l, n
	}
	l, r := split(n.right, k-size(n.left)-1)
	n.right = l
	n.update()
	return n, r
}

// merge joins two trees where every element of l precedes every element
// of r.
func merge(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.priority >= r.priority {
		l.right = merge(l.right, r)
		l.update()
		return l
	}
	r.left = merge(l, r.left)
	r.update()
	return r
}

// InsertAt inserts value at the given rank, shifting later elements back.
// It panics if rank is out of [0, Len()].
func (t *Tree) InsertAt(rank int, value uint64) {
	t.lazyInit()
	if rank < 0 || rank > t.Len() {
		panic("ostree: InsertAt rank out of range")
	}
	n := &node{value: value, priority: t.rng.Uint32(), size: 1}
	l, r := split(t.root, rank)
	t.root = merge(merge(l, n), r)
}

// PushFront inserts value at rank 0.
func (t *Tree) PushFront(value uint64) { t.InsertAt(0, value) }

// At returns the value at the given rank. It panics if rank is out of
// [0, Len()).
func (t *Tree) At(rank int) uint64 {
	if rank < 0 || rank >= t.Len() {
		panic("ostree: At rank out of range")
	}
	n := t.root
	for {
		ls := size(n.left)
		switch {
		case rank < ls:
			n = n.left
		case rank == ls:
			return n.value
		default:
			rank -= ls + 1
			n = n.right
		}
	}
}

// RemoveAt removes and returns the value at the given rank. It panics if
// rank is out of [0, Len()).
func (t *Tree) RemoveAt(rank int) uint64 {
	if rank < 0 || rank >= t.Len() {
		panic("ostree: RemoveAt rank out of range")
	}
	l, r := split(t.root, rank)
	mid, r := split(r, 1)
	t.root = merge(l, r)
	return mid.value
}

// MoveToFront removes the element at rank and reinserts it at rank 0,
// returning its value. This is the LRU-stack "touch" operation.
func (t *Tree) MoveToFront(rank int) uint64 {
	v := t.RemoveAt(rank)
	t.PushFront(v)
	return v
}

// Walk calls fn for each value in rank order, stopping early if fn
// returns false.
func (t *Tree) Walk(fn func(rank int, value uint64) bool) {
	rank := 0
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(rank, n.value) {
			return false
		}
		rank++
		return walk(n.right)
	}
	walk(t.root)
}
