// Package ostree implements an order-statistic treap: a randomized balanced
// binary tree that supports selecting, removing and inserting elements by
// rank in O(log n) expected time.
//
// The synthetic trace generator uses it as an exact LRU stack: the most
// recently used cache line sits at rank 0, and referencing the line at rank
// d produces a memory access with reuse distance exactly d. Select-by-rank
// plus move-to-front are the only operations on the hot path, so both must
// be logarithmic; a plain linked-list LRU stack would cost O(d) per access
// with d up to several hundred thousand lines (a 30 MB L3).
package ostree

import "repro/internal/xrand"

type node struct {
	value    uint64
	priority uint32
	size     int // size of the subtree rooted here
	left     *node
	right    *node
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() {
	n.size = 1 + size(n.left) + size(n.right)
}

// Tree is an order-statistic treap over uint64 values. Ranks are
// zero-based: rank 0 is the front of the sequence. The zero value is an
// empty tree ready to use, with priorities drawn from a fixed-seed PRNG;
// use New to supply a custom seed.
type Tree struct {
	root *node
	rng  *xrand.PCG32
}

// New returns an empty tree whose node priorities are drawn from a PRNG
// seeded with seed. Trees with different seeds have independent shapes but
// identical observable behaviour.
func New(seed uint64) *Tree {
	return &Tree{rng: xrand.NewPCG32(seed)}
}

func (t *Tree) lazyInit() {
	if t.rng == nil {
		t.rng = xrand.NewPCG32(0x05ec17)
	}
}

// FromOrdered builds a tree whose rank order is exactly the order of
// values, in O(n) time via the right-spine Cartesian-tree construction:
// each appended node pops the spine while its priority dominates, takes
// the last popped subtree as its left child and becomes the new spine
// tip. A single post-order pass then fixes the subtree sizes. Building
// element-by-element with InsertAt would cost O(n log n).
func FromOrdered(seed uint64, values []uint64) *Tree {
	t := New(seed)
	spine := make([]*node, 0, 64)
	// One slab allocation for all nodes: the per-node alloc (and its
	// write-barrier traffic) dominates the build otherwise.
	slab := make([]node, len(values))
	for i, v := range values {
		n := &slab[i]
		*n = node{value: v, priority: t.rng.Uint32(), size: 1}
		var popped *node
		for len(spine) > 0 && spine[len(spine)-1].priority < n.priority {
			popped = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
		}
		n.left = popped
		if len(spine) > 0 {
			spine[len(spine)-1].right = n
		} else {
			t.root = n
		}
		spine = append(spine, n)
	}
	var fix func(n *node) int
	fix = func(n *node) int {
		if n == nil {
			return 0
		}
		n.size = 1 + fix(n.left) + fix(n.right)
		return n.size
	}
	fix(t.root)
	return t
}

// Len returns the number of elements in the tree.
func (t *Tree) Len() int { return size(t.root) }

// split divides n into (left, right) where left holds the first k elements.
func split(n *node, k int) (*node, *node) {
	if n == nil {
		return nil, nil
	}
	if size(n.left) >= k {
		l, r := split(n.left, k)
		n.left = r
		n.update()
		return l, n
	}
	l, r := split(n.right, k-size(n.left)-1)
	n.right = l
	n.update()
	return n, r
}

// merge joins two trees where every element of l precedes every element
// of r.
func merge(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.priority >= r.priority {
		l.right = merge(l.right, r)
		l.update()
		return l
	}
	r.left = merge(l, r.left)
	r.update()
	return r
}

// InsertAt inserts value at the given rank, shifting later elements back.
// It panics if rank is out of [0, Len()].
func (t *Tree) InsertAt(rank int, value uint64) {
	t.lazyInit()
	if rank < 0 || rank > t.Len() {
		panic("ostree: InsertAt rank out of range")
	}
	n := &node{value: value, priority: t.rng.Uint32(), size: 1}
	l, r := split(t.root, rank)
	t.root = merge(merge(l, n), r)
}

// PushFront inserts value at rank 0. Equivalent to InsertAt(0, value)
// but walks the left spine only until the heap order is satisfied,
// instead of splitting the whole spine and merging it back — this is the
// LRU-stack hot path.
func (t *Tree) PushFront(value uint64) {
	t.lazyInit()
	n := &node{value: value, priority: t.rng.Uint32(), size: 1}
	link := &t.root
	for *link != nil && (*link).priority >= n.priority {
		(*link).size++
		link = &(*link).left
	}
	// The remaining subtree ranks entirely after the new front element.
	n.right = *link
	n.size += size(n.right)
	*link = n
}

// At returns the value at the given rank. It panics if rank is out of
// [0, Len()).
func (t *Tree) At(rank int) uint64 {
	if rank < 0 || rank >= t.Len() {
		panic("ostree: At rank out of range")
	}
	n := t.root
	for {
		ls := size(n.left)
		switch {
		case rank < ls:
			n = n.left
		case rank == ls:
			return n.value
		default:
			rank -= ls + 1
			n = n.right
		}
	}
}

// RemoveAt removes and returns the value at the given rank. It panics if
// rank is out of [0, Len()).
func (t *Tree) RemoveAt(rank int) uint64 {
	if rank < 0 || rank >= t.Len() {
		panic("ostree: RemoveAt rank out of range")
	}
	l, r := split(t.root, rank)
	mid, r := split(r, 1)
	t.root = merge(l, r)
	return mid.value
}

// MoveToFront removes the element at rank and reinserts it at rank 0,
// returning its value. This is the LRU-stack "touch" operation.
func (t *Tree) MoveToFront(rank int) uint64 {
	v := t.RemoveAt(rank)
	t.PushFront(v)
	return v
}

// RankOfValue returns the rank of value in a tree whose values happen to
// be stored in ascending rank order, or -1 if the value is absent. The
// treap is rank-ordered, not value-ordered, so this is only meaningful
// for callers that maintain the ascending invariant themselves — the
// reuse-distance profiler does: its timestamps strictly decrease over
// time and every touch moves a line to the front, so rank order and
// ascending stamp order coincide. One O(log n) descent then replaces a
// binary search over At (O(log^2 n)).
func (t *Tree) RankOfValue(value uint64) int {
	n := t.root
	rank := 0
	for n != nil {
		ls := size(n.left)
		switch {
		case value < n.value:
			n = n.left
		case value == n.value:
			return rank + ls
		default:
			rank += ls + 1
			n = n.right
		}
	}
	return -1
}

// RemoveValue removes the node holding value from an ascending-ordered
// tree and returns the rank it occupied, or -1 if the value is absent
// (the tree is then unchanged). Like RankOfValue it requires the
// caller-maintained ascending invariant. One descent with in-place size
// fixups replaces the rank search plus RemoveAt's split/split/merge —
// the profiler's hot path.
func (t *Tree) RemoveValue(value uint64) int {
	root, rank := removeValue(t.root, value)
	if rank < 0 {
		return -1
	}
	t.root = root
	return rank
}

func removeValue(n *node, value uint64) (*node, int) {
	if n == nil {
		return nil, -1
	}
	switch {
	case value < n.value:
		l, rank := removeValue(n.left, value)
		if rank < 0 {
			return n, -1
		}
		n.left = l
		n.size--
		return n, rank
	case value > n.value:
		r, rank := removeValue(n.right, value)
		if rank < 0 {
			return n, -1
		}
		n.right = r
		n.size--
		return n, rank + size(n.left) + 1
	default:
		// Capture the rank before merge mutates the left subtree's size.
		rank := size(n.left)
		return merge(n.left, n.right), rank
	}
}

// Walk calls fn for each value in rank order, stopping early if fn
// returns false.
func (t *Tree) Walk(fn func(rank int, value uint64) bool) {
	rank := 0
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n == nil {
			return true
		}
		if !walk(n.left) {
			return false
		}
		if !fn(rank, n.value) {
			return false
		}
		rank++
		return walk(n.right)
	}
	walk(t.root)
}
