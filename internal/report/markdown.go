package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteMarkdown renders the table as a GitHub-flavored markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the table to a markdown string.
func (t *Table) Markdown() string {
	var b strings.Builder
	t.WriteMarkdown(&b)
	return b.String()
}

// HistogramSVG renders a log-x histogram (e.g. a reuse-distance profile):
// bounds are bucket lower edges, counts the bucket masses.
func HistogramSVG(title, xlabel string, bounds []int, counts []uint64) string {
	c := newCanvas(720, 400)
	c.text(c.w/2, 16, 14, "middle", title)
	c.text(c.w/2, c.h-8, 11, "middle", xlabel)
	if len(bounds) == 0 {
		return c.finish()
	}
	maxCount := uint64(0)
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	c.line(c.margin, 30, c.margin, c.h-c.margin, "#333", 1)
	c.line(c.margin, c.h-c.margin, c.w-20, c.h-c.margin, "#333", 1)
	bw := (c.w - c.margin - 30) / float64(len(bounds))
	plotH := c.h - c.margin - 40
	for i, n := range counts {
		h := float64(n) / float64(maxCount) * plotH
		x := c.margin + float64(i)*bw + bw*0.1
		c.rect(x, c.h-c.margin-h, bw*0.8, h, Palette[0])
		label := formatBound(bounds[i])
		c.text(c.margin+float64(i)*bw+bw/2, c.h-c.margin+14, 9, "middle", label)
	}
	// Log-count gridline labels.
	for _, frac := range []float64{0.5, 1.0} {
		y := c.h - c.margin - frac*plotH
		c.line(c.margin, y, c.w-20, y, "#ddd", 0.5)
		c.text(c.margin-4, y+3, 9, "end", formatCount(uint64(float64(maxCount)*frac)))
	}
	return c.finish()
}

func formatBound(v int) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%dM", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dK", v>>10)
	default:
		return fmt.Sprintf("%d", v)
	}
}

func formatCount(v uint64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Heatmap renders a simple value matrix (e.g. pairwise similarity) with a
// two-color diverging scale. rows and cols label the axes; vals[i][j] is
// the cell value.
func Heatmap(title string, rowLabels, colLabels []string, vals [][]float64) string {
	c := newCanvas(120+24*float64(len(colLabels)), 80+18*float64(len(rowLabels)))
	c.text(c.w/2, 16, 14, "middle", title)
	if len(vals) == 0 {
		return c.finish()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range vals {
		for _, v := range row {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	cell := 24.0
	x0, y0 := 110.0, 40.0
	for i, row := range vals {
		c.text(x0-6, y0+float64(i)*18+12, 8, "end", rowLabels[i])
		for j, v := range row {
			frac := (v - lo) / (hi - lo)
			// White -> blue ramp.
			shade := int(255 - frac*180)
			color := fmt.Sprintf("#%02x%02xff", shade, shade)
			c.rect(x0+float64(j)*cell, y0+float64(i)*18, cell-2, 16, color)
		}
	}
	for j, l := range colLabels {
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="8" font-family="sans-serif" text-anchor="start" transform="rotate(-60 %.1f %.1f)">%s</text>`+"\n",
			x0+float64(j)*cell+8, y0-6, x0+float64(j)*cell+8, y0-6.0, escape(l))
	}
	return c.finish()
}
