// Package report renders characterization results as aligned text tables,
// CSV files and small self-contained SVG figures, covering every table
// and figure format the paper uses.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-oriented table.
type Table struct {
	// Title is printed above the table.
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: strings pass through,
// float64 render with 3 decimals (NaN and ±Inf as "n/a" so degenerate
// metrics never leak into tables or CSVs), integers as integers.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			if math.IsNaN(v) || math.IsInf(v, 0) {
				row = append(row, "n/a")
				break
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case uint64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Text renders the table to a string.
func (t *Table) Text() string {
	var b strings.Builder
	t.WriteText(&b)
	return b.String()
}

// WriteCSV renders the table as RFC-4180-ish CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
