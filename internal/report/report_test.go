package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Table X", "Name", "IPC")
	tb.AddRow("505.mcf_r", "0.886")
	tb.AddRowf("525.x264_r", 3.024)
	txt := tb.Text()
	for _, want := range []string{"Table X", "Name", "IPC", "505.mcf_r", "0.886", "3.024", "---"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text output missing %q:\n%s", want, txt)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "A", "LongHeader")
	tb.AddRow("x", "y")
	lines := strings.Split(strings.TrimRight(tb.Text(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if len(lines[2]) < len("x  LongHeader")-len("LongHeader")+1 {
		t.Errorf("row not padded: %q", lines[2])
	}
}

func TestTableRowShapeHandling(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("only")
	tb.AddRow("a", "b", "extra-dropped")
	txt := tb.Text()
	if strings.Contains(txt, "extra-dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "value")
	tb.AddRow(`quoted "x"`, "a,b")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, `"quoted ""x"""`) {
		t.Errorf("quote escaping broken: %s", got)
	}
	if !strings.Contains(got, `"a,b"`) {
		t.Errorf("comma quoting broken: %s", got)
	}
	if !strings.HasPrefix(got, "name,value\n") {
		t.Errorf("header missing: %s", got)
	}
}

func TestAddRowfFormats(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d")
	tb.AddRowf("s", 1.23456, 42, uint64(7))
	txt := tb.Text()
	for _, want := range []string{"1.235", "42", "7"} {
		if !strings.Contains(txt, want) {
			t.Errorf("missing %q in %s", want, txt)
		}
	}
}

func TestAddRowfNonFinite(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d")
	tb.AddRowf("s", math.NaN(), math.Inf(1), math.Inf(-1))
	txt := tb.Text()
	if strings.Contains(txt, "NaN") || strings.Contains(txt, "Inf") {
		t.Errorf("non-finite values leaked into table:\n%s", txt)
	}
	if strings.Count(txt, "n/a") != 3 {
		t.Errorf("want 3 n/a cells, got:\n%s", txt)
	}
}

func validSVG(t *testing.T, svg string) {
	t.Helper()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("not an SVG document: %.60s...", svg)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("SVG contains non-finite coordinates")
	}
}

func TestScatterSVG(t *testing.T) {
	svg := Scatter("Fig 7", "PC1", "PC2",
		[]float64{1, 2, 3}, []float64{4, 5, 6},
		[]string{"a", "b", "c"}, []int{0, 1, 0})
	validSVG(t, svg)
	if strings.Count(svg, "<circle") != 3 {
		t.Error("wrong point count")
	}
	for _, want := range []string{"Fig 7", "PC1", "PC2", ">a<"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestScatterConstantValues(t *testing.T) {
	svg := Scatter("t", "x", "y", []float64{5, 5}, []float64{5, 5}, nil, nil)
	validSVG(t, svg)
}

func TestBarsSVG(t *testing.T) {
	svg := Bars("Fig 2", "%", []string{"mcf", "gcc"},
		[]string{"loads", "stores"},
		[][]float64{{27, 26}, {9, 12}})
	validSVG(t, svg)
	if strings.Count(svg, "<rect") < 5 { // background + 4 bars + legend
		t.Error("bars missing")
	}
	if !strings.Contains(svg, "loads") || !strings.Contains(svg, "mcf") {
		t.Error("labels missing")
	}
}

func TestBarsEmpty(t *testing.T) {
	validSVG(t, Bars("t", "y", nil, nil, nil))
}

func TestBarsEscapesLabels(t *testing.T) {
	svg := Bars("a<b", "%", []string{"x&y"}, []string{"s"}, [][]float64{{1}})
	validSVG(t, svg)
	if strings.Contains(svg, "a<b") || strings.Contains(svg, "x&y") {
		t.Error("labels not escaped")
	}
}

func TestDendrogramSVG(t *testing.T) {
	d := cluster.Agglomerate([][]float64{{0}, {1}, {10}, {11}}, cluster.Ward)
	svg := DendrogramSVG("Fig 9", d, []string{"a", "b", "c", "d"})
	validSVG(t, svg)
	for _, want := range []string{">a<", ">b<", ">c<", ">d<", "linkage distance"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	// 3 merges x 3 lines each + 2 axis-ish lines minimum.
	if strings.Count(svg, "<line") < 9 {
		t.Error("merge lines missing")
	}
}

func TestParetoSVG(t *testing.T) {
	tr := []cluster.Tradeoff{
		{K: 1, SSE: 100, Cost: 10},
		{K: 2, SSE: 40, Cost: 30},
		{K: 3, SSE: 10, Cost: 60},
	}
	svg := ParetoSVG("Fig 10", tr, 2)
	validSVG(t, svg)
	if !strings.Contains(svg, "k = 2") {
		t.Error("knee marker missing")
	}
	validSVG(t, ParetoSVG("empty", nil, 0))
}

func TestLoadingsSVG(t *testing.T) {
	svg := Loadings("Fig 8", []string{"rss", "vsz"},
		[][]float64{{0.9, -0.2}, {0.8, -0.3}})
	validSVG(t, svg)
	if !strings.Contains(svg, "PC1") || !strings.Contains(svg, "PC2") {
		t.Error("PC legend missing")
	}
	validSVG(t, Loadings("empty", nil, nil))
}

func TestMarkdownTable(t *testing.T) {
	tb := NewTable("Table M", "name", "v|alue")
	tb.AddRow("a|b", "1")
	md := tb.Markdown()
	if !strings.Contains(md, "### Table M") {
		t.Error("title missing")
	}
	if !strings.Contains(md, "| name | v\\|alue |") {
		t.Errorf("header escaping broken:\n%s", md)
	}
	if !strings.Contains(md, "| a\\|b | 1 |") {
		t.Errorf("cell escaping broken:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Error("separator missing")
	}
}

func TestHistogramSVG(t *testing.T) {
	svg := HistogramSVG("reuse", "distance (lines)",
		[]int{0, 1, 2, 4, 1024, 1 << 20}, []uint64{10, 20, 5, 40, 3, 1})
	validSVG(t, svg)
	for _, want := range []string{"reuse", "1K", "1M", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	validSVG(t, HistogramSVG("empty", "x", nil, nil))
}

func TestHeatmap(t *testing.T) {
	svg := Heatmap("similarity", []string{"a", "b"}, []string{"x", "y"},
		[][]float64{{0, 1}, {0.5, 0.25}})
	validSVG(t, svg)
	if strings.Count(svg, "<rect") < 5 {
		t.Error("cells missing")
	}
	validSVG(t, Heatmap("empty", nil, nil, nil))
}
