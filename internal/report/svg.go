package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cluster"
)

// svgCanvas accumulates SVG elements with a margin-based plot area.
type svgCanvas struct {
	w, h   float64
	margin float64
	b      strings.Builder
}

func newCanvas(w, h float64) *svgCanvas {
	c := &svgCanvas{w: w, h: h, margin: 56}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
	return c
}

func (c *svgCanvas) finish() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

func (c *svgCanvas) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, escape(s))
}

func (c *svgCanvas) line(x1, y1, x2, y2 float64, color string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, color, width)
}

func (c *svgCanvas) circle(x, y, r float64, color string) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
}

func (c *svgCanvas) rect(x, y, w, h float64, color string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, color)
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	return strings.ReplaceAll(s, ">", "&gt;")
}

type scale struct {
	lo, hi   float64
	plo, phi float64 // pixel range
}

func newScale(vals []float64, plo, phi float64) scale {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.05
	return scale{lo: lo - pad, hi: hi + pad, plo: plo, phi: phi}
}

func (s scale) px(v float64) float64 {
	return s.plo + (v-s.lo)/(s.hi-s.lo)*(s.phi-s.plo)
}

// Palette is a small categorical color set used by all figures.
var Palette = []string{"#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5"}

// Scatter renders a labeled 2-D scatter plot (Fig. 7 style). The group
// slice (optional, may be nil) colors points categorically.
func Scatter(title, xlabel, ylabel string, xs, ys []float64, labels []string, group []int) string {
	c := newCanvas(760, 560)
	sx := newScale(xs, c.margin, c.w-20)
	sy := newScale(ys, c.h-c.margin, 20)
	c.text(c.w/2, 16, 14, "middle", title)
	c.text(c.w/2, c.h-8, 12, "middle", xlabel)
	c.text(14, c.h/2, 12, "middle", ylabel)
	// Axes.
	c.line(c.margin, 20, c.margin, c.h-c.margin, "#333", 1)
	c.line(c.margin, c.h-c.margin, c.w-20, c.h-c.margin, "#333", 1)
	for i := range xs {
		col := Palette[0]
		if group != nil {
			col = Palette[group[i]%len(Palette)]
		}
		x, y := sx.px(xs[i]), sy.px(ys[i])
		c.circle(x, y, 3.5, col)
		if labels != nil && labels[i] != "" {
			c.text(x+5, y-4, 8, "start", labels[i])
		}
	}
	return c.finish()
}

// Bars renders a per-item bar chart with one or more stacked series
// (Figs. 1-6 style): values[s][i] is series s for item i.
func Bars(title, ylabel string, items []string, series []string, values [][]float64) string {
	c := newCanvas(900, 480)
	n := len(items)
	if n == 0 {
		return c.finish()
	}
	// Stacked totals set the y scale (zero-based).
	maxTotal := 0.0
	for i := 0; i < n; i++ {
		total := 0.0
		for s := range series {
			total += values[s][i]
		}
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	c.text(c.w/2, 16, 14, "middle", title)
	c.text(14, c.h/2, 12, "middle", ylabel)
	c.line(c.margin, 30, c.margin, c.h-110, "#333", 1)
	c.line(c.margin, c.h-110, c.w-20, c.h-110, "#333", 1)
	plotH := c.h - 110 - 40
	bw := (c.w - c.margin - 30) / float64(n)
	for i := 0; i < n; i++ {
		x := c.margin + float64(i)*bw + bw*0.15
		yBase := c.h - 110.0
		for s := range series {
			h := values[s][i] / maxTotal * plotH
			if h < 0 {
				h = 0
			}
			c.rect(x, yBase-h, bw*0.7, h, Palette[s%len(Palette)])
			yBase -= h
		}
		// Rotated item labels.
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="8" font-family="sans-serif" text-anchor="end" transform="rotate(-55 %.1f %.1f)">%s</text>`+"\n",
			c.margin+float64(i)*bw+bw/2, c.h-96, c.margin+float64(i)*bw+bw/2, c.h-96.0, escape(items[i]))
	}
	// Legend.
	for s, name := range series {
		x := c.margin + float64(s)*140
		c.rect(x, 22, 10, 10, Palette[s%len(Palette)])
		c.text(x+14, 31, 10, "start", name)
	}
	return c.finish()
}

// DendrogramSVG renders a left-to-right dendrogram (Fig. 9 style).
func DendrogramSVG(title string, d *cluster.Dendrogram, labels []string) string {
	c := newCanvas(760, 28*float64(d.N)+80)
	c.text(c.w/2, 16, 14, "middle", title)
	// Leaf vertical positions follow the merge order for a tidy layout:
	// walk the tree to order the leaves.
	order := leafOrder(d)
	ypos := make(map[int]float64, d.N)
	for rank, leaf := range order {
		y := 40 + float64(rank)*26
		ypos[leaf] = y
		c.text(c.w-180, y+3, 9, "start", labels[leaf])
	}
	maxDist := 0.0
	for _, m := range d.Merges {
		if m.Distance > maxDist {
			maxDist = m.Distance
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}
	xFor := func(dist float64) float64 {
		return (c.w - 190) - dist/maxDist*(c.w-250)
	}
	xpos := make(map[int]float64, d.N)
	for i := 0; i < d.N; i++ {
		xpos[i] = c.w - 190
	}
	for step, m := range d.Merges {
		node := d.N + step
		x := xFor(m.Distance)
		ya, yb := ypos[m.A], ypos[m.B]
		c.line(xpos[m.A], ya, x, ya, "#4269d0", 1.2)
		c.line(xpos[m.B], yb, x, yb, "#4269d0", 1.2)
		c.line(x, ya, x, yb, "#4269d0", 1.2)
		ypos[node] = (ya + yb) / 2
		xpos[node] = x
	}
	c.text(c.w/2, c.h-8, 11, "middle", "linkage distance")
	return c.finish()
}

// leafOrder returns the leaves in dendrogram traversal order so drawn
// subtrees never cross.
func leafOrder(d *cluster.Dendrogram) []int {
	if d.N == 1 {
		return []int{0}
	}
	children := map[int][2]int{}
	for step, m := range d.Merges {
		children[d.N+step] = [2]int{m.A, m.B}
	}
	var order []int
	var walk func(node int)
	walk = func(node int) {
		if node < d.N {
			order = append(order, node)
			return
		}
		ch := children[node]
		walk(ch[0])
		walk(ch[1])
	}
	walk(d.N + len(d.Merges) - 1)
	return order
}

// ParetoSVG renders the SSE and execution-time curves against cluster
// count with the chosen knee highlighted (Fig. 10 style).
func ParetoSVG(title string, tradeoffs []cluster.Tradeoff, chosenK int) string {
	c := newCanvas(720, 440)
	c.text(c.w/2, 16, 14, "middle", title)
	if len(tradeoffs) == 0 {
		return c.finish()
	}
	ks := make([]float64, len(tradeoffs))
	sses := make([]float64, len(tradeoffs))
	costs := make([]float64, len(tradeoffs))
	for i, t := range tradeoffs {
		ks[i] = float64(t.K)
		sses[i] = t.SSE
		costs[i] = t.Cost
	}
	sx := newScale(ks, c.margin, c.w-60)
	sy1 := newScale(sses, c.h-c.margin, 30)
	sy2 := newScale(costs, c.h-c.margin, 30)
	c.line(c.margin, 30, c.margin, c.h-c.margin, "#333", 1)
	c.line(c.margin, c.h-c.margin, c.w-60, c.h-c.margin, "#333", 1)
	for i := 1; i < len(tradeoffs); i++ {
		c.line(sx.px(ks[i-1]), sy1.px(sses[i-1]), sx.px(ks[i]), sy1.px(sses[i]), Palette[0], 1.5)
		c.line(sx.px(ks[i-1]), sy2.px(costs[i-1]), sx.px(ks[i]), sy2.px(costs[i]), Palette[2], 1.5)
	}
	kx := sx.px(float64(chosenK))
	c.line(kx, 30, kx, c.h-c.margin, "#3ca951", 1)
	c.text(kx+4, 44, 11, "start", fmt.Sprintf("k = %d", chosenK))
	c.rect(c.margin+10, 34, 10, 10, Palette[0])
	c.text(c.margin+24, 43, 10, "start", "SSE")
	c.rect(c.margin+90, 34, 10, 10, Palette[2])
	c.text(c.margin+104, 43, 10, "start", "subset execution time")
	c.text(c.w/2, c.h-8, 11, "middle", "number of clusters")
	return c.finish()
}

// Loadings renders the factor-loading bars per characteristic per
// component (Fig. 8 style).
func Loadings(title string, characteristic []string, loadings [][]float64) string {
	c := newCanvas(900, 500)
	c.text(c.w/2, 16, 14, "middle", title)
	n := len(characteristic)
	if n == 0 {
		return c.finish()
	}
	k := len(loadings[0])
	mid := (c.h - 110 + 30) / 2
	c.line(c.margin, mid, c.w-20, mid, "#333", 1)
	bw := (c.w - c.margin - 30) / float64(n)
	unit := (c.h - 140) / 2 // pixels per loading of 1.0
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			v := loadings[i][j]
			x := c.margin + float64(i)*bw + float64(j)*bw/float64(k+1) + 2
			h := math.Abs(v) * unit
			y := mid - h
			if v < 0 {
				y = mid
			}
			c.rect(x, y, bw/float64(k+1)*0.9, h, Palette[j%len(Palette)])
		}
		fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="8" font-family="sans-serif" text-anchor="end" transform="rotate(-55 %.1f %.1f)">%s</text>`+"\n",
			c.margin+float64(i)*bw+bw/2, c.h-96, c.margin+float64(i)*bw+bw/2, c.h-96.0, escape(characteristic[i]))
	}
	for j := 0; j < k; j++ {
		x := c.margin + float64(j)*90
		c.rect(x, 22, 10, 10, Palette[j%len(Palette)])
		c.text(x+14, 31, 10, "start", fmt.Sprintf("PC%d", j+1))
	}
	return c.finish()
}
