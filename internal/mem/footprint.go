// Package mem tracks process memory footprint the way the paper measures
// it with `ps -o vsz,rss`: the Virtual Set Size is the address space the
// workload reserves, and the Resident Set Size is the physical memory it
// has actually touched (first-touch page accounting).
//
// It also provides a small DRAM latency model used by the pipeline's
// stall accounting.
package mem

// PageBytes is the accounting granularity (4 KB pages).
const PageBytes = 4096

// Footprint tracks touched pages and reserved address space.
//
// Touched pages are tracked with a bitmap over a contiguous heap segment
// plus a map fallback for sparse segments, so tracking stays O(1) per
// access for the synthetic workloads' dense heaps.
type Footprint struct {
	reserved uint64 // bytes of reserved address space (VSZ)
	base     uint64
	lazyBase bool
	bitmap   []uint64 // one bit per page in [base, base+len*64*PageBytes)
	sparse   map[uint64]struct{}
	resident uint64 // touched page count
	peakRSS  uint64
}

// NewFootprint returns a tracker for a workload whose dense heap starts at
// base and may span up to denseBytes; accesses outside that window are
// tracked in a sparse map. reservedBytes is the initial VSZ. When base is
// zero the dense window is anchored lazily at the first touched address
// (rounded down to a 1 GiB boundary), which suits generators that place
// their heap at a seed-dependent offset.
func NewFootprint(base uint64, denseBytes, reservedBytes uint64) *Footprint {
	pages := (denseBytes + PageBytes - 1) / PageBytes
	return &Footprint{
		reserved: reservedBytes,
		base:     base,
		lazyBase: base == 0,
		bitmap:   make([]uint64, (pages+63)/64),
		sparse:   make(map[uint64]struct{}),
	}
}

// Reserve grows the reserved address space (VSZ) by n bytes.
func (f *Footprint) Reserve(n uint64) { f.reserved += n }

// Touch records an access to addr, marking its page resident.
func (f *Footprint) Touch(addr uint64) {
	if f.lazyBase {
		f.base = addr &^ (1<<30 - 1)
		f.lazyBase = false
	}
	page := addr / PageBytes
	basePage := f.base / PageBytes
	if page >= basePage {
		idx := page - basePage
		if int(idx/64) < len(f.bitmap) {
			mask := uint64(1) << (idx % 64)
			if f.bitmap[idx/64]&mask == 0 {
				f.bitmap[idx/64] |= mask
				f.resident++
				if f.resident > f.peakRSS {
					f.peakRSS = f.resident
				}
			}
			return
		}
	}
	if _, ok := f.sparse[page]; !ok {
		f.sparse[page] = struct{}{}
		f.resident++
		if f.resident > f.peakRSS {
			f.peakRSS = f.resident
		}
	}
}

// RSS returns the current resident set size in bytes.
func (f *Footprint) RSS() uint64 { return f.resident * PageBytes }

// PeakRSS returns the maximum resident set size observed, in bytes — the
// quantity the paper reports from periodic `ps` sampling.
func (f *Footprint) PeakRSS() uint64 { return f.peakRSS * PageBytes }

// VSZ returns the reserved address space in bytes. Reserved space is
// always at least the resident set.
func (f *Footprint) VSZ() uint64 {
	if f.reserved < f.RSS() {
		return f.RSS()
	}
	return f.reserved
}

// DRAMModel converts memory-level events into latency. The defaults
// approximate a DDR4-2133 system behind a 30 MB L3.
type DRAMModel struct {
	// BaseLatencyCycles is the row-hit access latency in core cycles.
	BaseLatencyCycles float64
	// RowMissExtraCycles is added for row-buffer misses.
	RowMissExtraCycles float64
	// RowMissFraction is the fraction of accesses that miss the row
	// buffer.
	RowMissFraction float64
}

// DefaultDRAM returns the default memory latency model.
func DefaultDRAM() DRAMModel {
	return DRAMModel{BaseLatencyCycles: 200, RowMissExtraCycles: 90, RowMissFraction: 0.35}
}

// AverageLatency returns the expected DRAM access latency in cycles.
func (d DRAMModel) AverageLatency() float64 {
	return d.BaseLatencyCycles + d.RowMissFraction*d.RowMissExtraCycles
}
