package mem

import "testing"

func TestFootprintFirstTouch(t *testing.T) {
	f := NewFootprint(0x10000, 1<<20, 1<<21)
	f.Touch(0x10000)
	f.Touch(0x10100) // same page
	if got := f.RSS(); got != PageBytes {
		t.Errorf("RSS = %d, want one page (%d)", got, PageBytes)
	}
	f.Touch(0x10000 + PageBytes)
	if got := f.RSS(); got != 2*PageBytes {
		t.Errorf("RSS = %d, want two pages", got)
	}
}

func TestFootprintSparseFallback(t *testing.T) {
	f := NewFootprint(0x10000, 1<<16, 0)
	f.Touch(1 << 40) // far outside the dense window
	f.Touch(1 << 40)
	if got := f.RSS(); got != PageBytes {
		t.Errorf("sparse RSS = %d, want one page", got)
	}
}

func TestFootprintBelowBaseUsesSparse(t *testing.T) {
	f := NewFootprint(1<<20, 1<<20, 0)
	f.Touch(0x100)
	if got := f.RSS(); got != PageBytes {
		t.Errorf("below-base RSS = %d, want one page", got)
	}
}

func TestVSZFloorsAtRSS(t *testing.T) {
	f := NewFootprint(0, 1<<20, PageBytes) // reserve just one page
	for p := 0; p < 10; p++ {
		f.Touch(uint64(p) * PageBytes)
	}
	if f.VSZ() < f.RSS() {
		t.Errorf("VSZ %d < RSS %d", f.VSZ(), f.RSS())
	}
}

func TestReserveGrowsVSZ(t *testing.T) {
	f := NewFootprint(0, 1<<20, 1<<20)
	f.Reserve(1 << 20)
	if got := f.VSZ(); got != 2<<20 {
		t.Errorf("VSZ = %d, want %d", got, 2<<20)
	}
}

func TestPeakRSS(t *testing.T) {
	f := NewFootprint(0, 1<<20, 0)
	for p := 0; p < 5; p++ {
		f.Touch(uint64(p) * PageBytes)
	}
	if f.PeakRSS() != f.RSS() {
		t.Errorf("PeakRSS %d != RSS %d for monotone growth", f.PeakRSS(), f.RSS())
	}
	if f.PeakRSS() != 5*PageBytes {
		t.Errorf("PeakRSS = %d, want 5 pages", f.PeakRSS())
	}
}

func TestDRAMAverageLatency(t *testing.T) {
	d := DRAMModel{BaseLatencyCycles: 100, RowMissExtraCycles: 100, RowMissFraction: 0.5}
	if got := d.AverageLatency(); got != 150 {
		t.Errorf("AverageLatency = %v, want 150", got)
	}
	def := DefaultDRAM()
	if def.AverageLatency() <= def.BaseLatencyCycles {
		t.Error("default DRAM latency not above base")
	}
}

func BenchmarkTouchDense(b *testing.B) {
	f := NewFootprint(0, 1<<30, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Touch(uint64(i%(1<<28)) * 64)
	}
}
