package stats

import (
	"fmt"
	"math"
)

// PCA is the result of a principal component analysis over standardized
// variables (correlation-matrix PCA, as the paper's MATLAB flow uses).
type PCA struct {
	// Eigenvalues are the component variances, descending.
	Eigenvalues []float64
	// Components column k is the k-th principal direction (unit length)
	// in standardized-variable space. Dimensions: p×p.
	Components *Matrix
	// Scores row i holds observation i's coordinates in PC space
	// (n×p): Z = Xstd × Components.
	Scores *Matrix
	// TotalVariance is the sum of all eigenvalues (= p for a
	// correlation-matrix PCA with no constant columns).
	TotalVariance float64
}

// ComputePCA standardizes the observation matrix (rows = observations,
// columns = variables) and decomposes its correlation matrix.
func ComputePCA(observations *Matrix) (*PCA, error) {
	if observations.Rows() < 2 {
		return nil, fmt.Errorf("stats: PCA needs at least 2 observations, got %d", observations.Rows())
	}
	std := Standardize(observations)
	corr := Covariance(std) // covariance of z-scores = correlation matrix
	eig, err := SymEigen(corr)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for i, v := range eig.Values {
		if v < 0 && v > -1e-9 {
			eig.Values[i] = 0 // numerical noise on rank-deficient input
			v = 0
		}
		total += v
	}
	return &PCA{
		Eigenvalues:   eig.Values,
		Components:    eig.Vectors,
		Scores:        std.Mul(eig.Vectors),
		TotalVariance: total,
	}, nil
}

// VarianceExplained returns the fraction of total variance captured by
// the first k components.
func (p *PCA) VarianceExplained(k int) float64 {
	if p.TotalVariance == 0 {
		return 0
	}
	if k > len(p.Eigenvalues) {
		k = len(p.Eigenvalues)
	}
	s := 0.0
	for i := 0; i < k; i++ {
		s += p.Eigenvalues[i]
	}
	return s / p.TotalVariance
}

// ComponentsFor returns the smallest k whose cumulative variance
// explained reaches frac (e.g. 0.75).
func (p *PCA) ComponentsFor(frac float64) int {
	for k := 1; k <= len(p.Eigenvalues); k++ {
		if p.VarianceExplained(k) >= frac {
			return k
		}
	}
	return len(p.Eigenvalues)
}

// ScoresK returns the n×k score matrix of the first k components.
func (p *PCA) ScoresK(k int) *Matrix {
	if k > p.Scores.Cols() {
		k = p.Scores.Cols()
	}
	out := NewMatrix(p.Scores.Rows(), k)
	for i := 0; i < p.Scores.Rows(); i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, p.Scores.At(i, j))
		}
	}
	return out
}

// Loadings returns the p×k factor-loading matrix: loading[v][c] is the
// correlation between variable v and component c
// (eigvec[v][c] × sqrt(eigval[c])), the quantity the paper plots in
// Fig. 8 to interpret the PCs.
func (p *PCA) Loadings(k int) *Matrix {
	if k > len(p.Eigenvalues) {
		k = len(p.Eigenvalues)
	}
	n := p.Components.Rows()
	out := NewMatrix(n, k)
	for c := 0; c < k; c++ {
		scale := 0.0
		if p.Eigenvalues[c] > 0 {
			scale = math.Sqrt(p.Eigenvalues[c])
		}
		for v := 0; v < n; v++ {
			out.Set(v, c, p.Components.At(v, c)*scale)
		}
	}
	return out
}
