// Package stats provides the multivariate statistics used by the paper's
// redundancy analysis (Section V): dense matrices, a Jacobi symmetric
// eigensolver, principal component analysis over standardized variables,
// factor loadings, and descriptive statistics. Everything is stdlib-only
// and deterministic.
package stats

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix. It panics on non-positive
// dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("stats: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("stats: FromRows with empty input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("stats: ragged row %d: %d values, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("stats: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns m × b. It panics on a dimension mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("stats: Mul dimension mismatch %dx%d × %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols:]
			orow := out.data[i*out.cols:]
			for j := 0; j < b.cols; j++ {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// Mean returns the column means.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(vals []float64) float64 {
	n := len(vals)
	if n < 2 {
		return 0
	}
	mean := Mean(vals)
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Variance returns the sample variance (n-1 denominator).
func Variance(vals []float64) float64 {
	s := StdDev(vals)
	return s * s
}

// Pearson returns the Pearson correlation coefficient of x and y, or 0
// when either has zero variance. It panics on mismatched lengths.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	if len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Standardize returns a column-wise z-scored copy of m (zero mean, unit
// sample variance). Constant columns become all-zero.
func Standardize(m *Matrix) *Matrix {
	out := m.Clone()
	for j := 0; j < m.cols; j++ {
		col := m.Col(j)
		mean := Mean(col)
		sd := StdDev(col)
		for i := 0; i < m.rows; i++ {
			v := 0.0
			if sd > 0 {
				v = (m.At(i, j) - mean) / sd
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// Covariance returns the sample covariance matrix of m's columns.
func Covariance(m *Matrix) *Matrix {
	n := m.rows
	cov := NewMatrix(m.cols, m.cols)
	if n < 2 {
		return cov
	}
	means := make([]float64, m.cols)
	for j := 0; j < m.cols; j++ {
		means[j] = Mean(m.Col(j))
	}
	for i := 0; i < n; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a := 0; a < m.cols; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			crow := cov.data[a*m.cols:]
			for b := a; b < m.cols; b++ {
				crow[b] += da * (row[b] - means[b])
			}
		}
	}
	inv := 1 / float64(n-1)
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			v := cov.data[a*m.cols+b] * inv
			cov.data[a*m.cols+b] = v
			cov.data[b*m.cols+a] = v
		}
	}
	return cov
}
