package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tolerance bounds how far a measured metric may deviate from its
// reference: the check passes when the relative error is within Rel or
// the absolute error is within Abs. Either bound may be zero to disable
// it — a metric whose event population is too thin or too
// placement-sensitive for a relative bound gets an absolute floor
// instead, and a headline metric gets a relative bound with no floor.
// With both bounds zero only an exact match passes.
type Tolerance struct {
	Rel float64 // relative error bound, as a fraction (0.02 = 2%)
	Abs float64 // absolute error bound, in the metric's own unit
}

// Errs returns the relative and absolute error of got against want. The
// relative error against a zero reference is defined as the absolute
// error, matching the fidelity gates' convention.
func Errs(got, want float64) (rel, abs float64) {
	abs = math.Abs(got - want)
	rel = abs
	if want != 0 {
		rel = abs / math.Abs(want)
	}
	return rel, abs
}

// Within reports whether got is within tolerance of want.
func (tl Tolerance) Within(got, want float64) bool {
	rel, abs := Errs(got, want)
	if tl.Rel > 0 && rel <= tl.Rel {
		return true
	}
	return abs <= tl.Abs
}

// Deviation is one recorded metric comparison.
type Deviation struct {
	Metric    string
	Got, Want float64
	Rel, Abs  float64
	Tol       Tolerance
}

// OK reports whether the deviation is within its tolerance.
func (d Deviation) OK() bool { return d.Tol.Within(d.Got, d.Want) }

// Excess is how far outside its tolerance the deviation lands: the
// smallest multiple by which an enabled bound is exceeded. Values <= 1
// are within tolerance; the report sorts descending on this.
func (d Deviation) Excess() float64 {
	excess := math.Inf(1)
	if d.Tol.Rel > 0 {
		excess = d.Rel / d.Tol.Rel
	}
	if d.Tol.Abs > 0 {
		if e := d.Abs / d.Tol.Abs; e < excess {
			excess = e
		}
	}
	if math.IsInf(excess, 1) && d.Abs == 0 {
		return 0 // exact-match tolerance, exactly matched
	}
	return excess
}

// Gate is the table-driven tolerance harness shared by the fidelity
// tiers: record every metric of a run against its bound, then fail once
// with a worst-offenders-first report that includes the absolute floor
// each offender would need to pass. Extracted from the sampling
// tolerance test so the analytic tier gates through identical machinery.
//
// The zero value is ready to use.
type Gate struct {
	devs []Deviation
}

// Check records one metric comparison against its tolerance.
func (g *Gate) Check(metric string, got, want float64, tol Tolerance) {
	rel, abs := Errs(got, want)
	g.devs = append(g.devs, Deviation{metric, got, want, rel, abs, tol})
}

// Failures returns the out-of-tolerance deviations, worst first.
func (g *Gate) Failures() []Deviation {
	var out []Deviation
	for _, d := range g.devs {
		if !d.OK() {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Excess() > out[j].Excess() })
	return out
}

// OK reports whether every recorded metric passed.
func (g *Gate) OK() bool { return len(g.Failures()) == 0 }

// Report renders the failures worst-first. Each line carries the
// absolute floor that offender would have needed — the update hint when
// a legitimate model change shifts the measured errors and the table's
// floors have to be re-derived.
func (g *Gate) Report() string {
	fails := g.Failures()
	if len(fails) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d metrics out of tolerance (worst first):\n", len(fails), len(g.devs))
	for _, d := range fails {
		fmt.Fprintf(&b,
			"  %-14s got %.4f want %.4f: %.2f%% rel / %.4f abs exceeds max(%.2f%% rel, %.4f abs) by %.1fx; passing floor needs Abs >= %.4f\n",
			d.Metric, d.Got, d.Want, d.Rel*100, d.Abs, d.Tol.Rel*100, d.Tol.Abs, d.Excess(), d.Abs)
	}
	return b.String()
}
