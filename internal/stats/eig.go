package stats

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds a symmetric eigendecomposition: Values[k] is the k-th
// eigenvalue (descending) and Vectors column k is its unit eigenvector.
type Eigen struct {
	Values  []float64
	Vectors *Matrix
}

// SymEigen computes the eigendecomposition of a symmetric matrix with the
// cyclic Jacobi rotation method. It returns an error if the matrix is not
// square or fails to converge (which for symmetric input it practically
// never does).
func SymEigen(a *Matrix) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("stats: SymEigen on %dx%d non-square matrix", a.rows, a.cols)
	}
	n := a.rows
	// Work on a copy; v accumulates rotations.
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += w.At(p, q) * w.At(p, q)
			}
		}
		if off < 1e-22*float64(n*n) {
			return sortedEigen(w, v, n), nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s, n)
			}
		}
	}
	return nil, fmt.Errorf("stats: Jacobi failed to converge in %d sweeps", maxSweeps)
}

// rotate applies the Jacobi rotation J(p,q,c,s) to w (two-sided) and
// accumulates it into v (one-sided).
func rotate(w, v *Matrix, p, q int, c, s float64, n int) {
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func sortedEigen(w, v *Matrix, n int) *Eigen {
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })
	e := &Eigen{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	for k, p := range pairs {
		e.Values[k] = p.val
		// Fix a deterministic sign: largest-magnitude component positive.
		col := v.Col(p.idx)
		maxAbs, sign := 0.0, 1.0
		for _, x := range col {
			if math.Abs(x) > maxAbs {
				maxAbs = math.Abs(x)
				if x < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		for i := 0; i < n; i++ {
			e.Vectors.Set(i, k, sign*col[i])
		}
	}
	return e
}
