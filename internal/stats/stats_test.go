package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At broken")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dimensions broken")
	}
	row := m.Row(1)
	if row[2] != 5 {
		t.Fatal("Row broken")
	}
	col := m.Col(2)
	if col[1] != 5 || col[0] != 0 {
		t.Fatal("Col broken")
	}
}

func TestMatrixPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMatrix(0, 3) },
		func() { FromRows(nil) },
		func() { FromRows([][]float64{{1, 2}, {1}}) },
		func() { NewMatrix(2, 2).At(2, 0) },
		func() { NewMatrix(2, 2).Mul(NewMatrix(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("transpose broken")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestDescriptives(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(vals); !almostEq(got, 2.13809, 1e-4) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs not zero")
	}
	if got := Variance(vals); !almostEq(got, 4.5714, 1e-3) {
		t.Errorf("Variance = %v", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yneg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("constant column correlation = %v, want 0", got)
	}
}

func TestStandardize(t *testing.T) {
	m := FromRows([][]float64{{1, 10, 7}, {2, 20, 7}, {3, 30, 7}})
	z := Standardize(m)
	for j := 0; j < 2; j++ {
		col := z.Col(j)
		if !almostEq(Mean(col), 0, 1e-12) {
			t.Errorf("column %d mean %v", j, Mean(col))
		}
		if !almostEq(StdDev(col), 1, 1e-12) {
			t.Errorf("column %d sd %v", j, StdDev(col))
		}
	}
	// Constant column becomes zeros, not NaN.
	for i := 0; i < 3; i++ {
		if z.At(i, 2) != 0 {
			t.Errorf("constant column not zeroed: %v", z.At(i, 2))
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	c := Covariance(m)
	if !almostEq(c.At(0, 0), 1, 1e-12) || !almostEq(c.At(1, 1), 4, 1e-12) || !almostEq(c.At(0, 1), 2, 1e-12) {
		t.Errorf("covariance = %v %v %v", c.At(0, 0), c.At(1, 1), c.At(0, 1))
	}
	if c.At(0, 1) != c.At(1, 0) {
		t.Error("covariance not symmetric")
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(e.Values[0], 3, 1e-10) || !almostEq(e.Values[1], 1, 1e-10) {
		t.Errorf("eigenvalues = %v", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2).
	v := e.Vectors.Col(0)
	if !almostEq(math.Abs(v[0]), math.Sqrt2/2, 1e-10) || !almostEq(v[0], v[1], 1e-10) {
		t.Errorf("eigenvector = %v", v)
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

// TestSymEigenProperty: for random symmetric matrices, A·v = λ·v and the
// eigenvalue sum equals the trace.
func TestSymEigenProperty(t *testing.T) {
	rng := xrand.NewPCG32(5)
	f := func(dim uint8) bool {
		n := int(dim%6) + 2
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		sum := 0.0
		for _, v := range e.Values {
			sum += v
		}
		if !almostEq(trace, sum, 1e-8) {
			return false
		}
		// Check A·v = λ·v for each pair.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				av := 0.0
				for j := 0; j < n; j++ {
					av += a.At(i, j) * e.Vectors.At(j, k)
				}
				if !almostEq(av, e.Values[k]*e.Vectors.At(i, k), 1e-7) {
					return false
				}
			}
		}
		// Descending order.
		for k := 1; k < n; k++ {
			if e.Values[k] > e.Values[k-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomObservations(rng *xrand.PCG32, n, p int) *Matrix {
	m := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64()
		for j := 0; j < p; j++ {
			// Correlated columns so PCA has structure.
			m.Set(i, j, base*float64(j+1)+rng.NormFloat64())
		}
	}
	return m
}

// TestPCAVariancePreservation: the paper's property (i) — total variance
// is preserved by the transformation.
func TestPCAVariancePreservation(t *testing.T) {
	rng := xrand.NewPCG32(11)
	m := randomObservations(rng, 100, 6)
	p, err := ComputePCA(m)
	if err != nil {
		t.Fatal(err)
	}
	// Correlation-matrix PCA: total variance = number of variables.
	if !almostEq(p.TotalVariance, 6, 1e-8) {
		t.Errorf("total variance = %v, want 6", p.TotalVariance)
	}
	// Score variances equal the eigenvalues.
	for k := 0; k < 6; k++ {
		v := Variance(p.Scores.Col(k))
		if !almostEq(v, p.Eigenvalues[k], 1e-8) {
			t.Errorf("score %d variance %v != eigenvalue %v", k, v, p.Eigenvalues[k])
		}
	}
}

// TestPCAUncorrelatedScores: the paper's property (ii) — PCs are
// mutually uncorrelated.
func TestPCAUncorrelatedScores(t *testing.T) {
	rng := xrand.NewPCG32(13)
	m := randomObservations(rng, 80, 5)
	p, err := ComputePCA(m)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			if r := Pearson(p.Scores.Col(a), p.Scores.Col(b)); !almostEq(r, 0, 1e-7) {
				t.Errorf("PC%d and PC%d correlate: %v", a+1, b+1, r)
			}
		}
	}
}

// TestPCAOrderedVariance: the paper's property (iii).
func TestPCAOrderedVariance(t *testing.T) {
	rng := xrand.NewPCG32(17)
	m := randomObservations(rng, 120, 7)
	p, err := ComputePCA(m)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(p.Eigenvalues); k++ {
		if p.Eigenvalues[k] > p.Eigenvalues[k-1]+1e-12 {
			t.Errorf("eigenvalues not descending at %d: %v", k, p.Eigenvalues)
		}
	}
	if p.VarianceExplained(7) < 0.999999 {
		t.Errorf("full variance explained = %v", p.VarianceExplained(7))
	}
	if p.VarianceExplained(1) <= 0 || p.VarianceExplained(1) >= 1 {
		t.Errorf("first-component share = %v", p.VarianceExplained(1))
	}
}

func TestComponentsFor(t *testing.T) {
	rng := xrand.NewPCG32(19)
	m := randomObservations(rng, 90, 5)
	p, _ := ComputePCA(m)
	k := p.ComponentsFor(0.75)
	if k < 1 || k > 5 {
		t.Fatalf("ComponentsFor = %d", k)
	}
	if p.VarianceExplained(k) < 0.75 {
		t.Errorf("k=%d explains only %v", k, p.VarianceExplained(k))
	}
	if k > 1 && p.VarianceExplained(k-1) >= 0.75 {
		t.Errorf("k not minimal")
	}
}

func TestScoresK(t *testing.T) {
	rng := xrand.NewPCG32(23)
	m := randomObservations(rng, 40, 5)
	p, _ := ComputePCA(m)
	s := p.ScoresK(2)
	if s.Rows() != 40 || s.Cols() != 2 {
		t.Fatalf("ScoresK dims %dx%d", s.Rows(), s.Cols())
	}
	if s.At(3, 1) != p.Scores.At(3, 1) {
		t.Error("ScoresK values differ from Scores")
	}
	if got := p.ScoresK(99); got.Cols() != 5 {
		t.Error("ScoresK over-request not clamped")
	}
}

// TestLoadings: loadings are variable-component correlations.
func TestLoadings(t *testing.T) {
	rng := xrand.NewPCG32(29)
	m := randomObservations(rng, 150, 4)
	p, _ := ComputePCA(m)
	l := p.Loadings(4)
	std := Standardize(m)
	for v := 0; v < 4; v++ {
		for c := 0; c < 4; c++ {
			want := Pearson(std.Col(v), p.Scores.Col(c))
			if !almostEq(l.At(v, c), want, 1e-6) {
				t.Errorf("loading[%d][%d] = %v, want correlation %v", v, c, l.At(v, c), want)
			}
		}
	}
}

func TestPCATooFewObservations(t *testing.T) {
	if _, err := ComputePCA(NewMatrix(1, 3)); err == nil {
		t.Error("single observation accepted")
	}
}

func TestPCAWithConstantColumn(t *testing.T) {
	m := FromRows([][]float64{{1, 5, 2}, {2, 5, 4}, {3, 5, 6}, {4, 5, 8}})
	p, err := ComputePCA(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Eigenvalues {
		if math.IsNaN(v) {
			t.Fatal("NaN eigenvalue with constant column")
		}
	}
	// Two perfectly correlated variables + one constant: one PC carries
	// everything.
	if !almostEq(p.Eigenvalues[0], 2, 1e-9) {
		t.Errorf("dominant eigenvalue = %v, want 2", p.Eigenvalues[0])
	}
}

func BenchmarkPCA194x20(b *testing.B) {
	rng := xrand.NewPCG32(31)
	m := randomObservations(rng, 194, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputePCA(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSymEigen20(b *testing.B) {
	rng := xrand.NewPCG32(37)
	m := randomObservations(rng, 194, 20)
	cov := Covariance(Standardize(m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(cov); err != nil {
			b.Fatal(err)
		}
	}
}
