package stats

import (
	"strings"
	"testing"
)

func TestToleranceWithin(t *testing.T) {
	cases := []struct {
		name      string
		tol       Tolerance
		got, want float64
		ok        bool
	}{
		{"rel pass", Tolerance{Rel: 0.02}, 1.01, 1.0, true},
		{"rel fail", Tolerance{Rel: 0.02}, 1.05, 1.0, false},
		{"abs rescues rel", Tolerance{Rel: 0.02, Abs: 0.5}, 1.4, 1.0, true},
		{"both fail", Tolerance{Rel: 0.02, Abs: 0.1}, 1.4, 1.0, false},
		{"abs only pass", Tolerance{Abs: 2}, 5, 4, true},
		{"abs only fail", Tolerance{Abs: 0.5}, 5, 4, false},
		{"exact-match tol, equal", Tolerance{}, 3, 3, true},
		{"exact-match tol, off", Tolerance{}, 3, 3.0001, false},
		{"zero reference uses abs as rel", Tolerance{Rel: 0.02}, 0.01, 0, true},
		{"zero reference fail", Tolerance{Rel: 0.02}, 0.5, 0, false},
		{"negative reference", Tolerance{Rel: 0.1}, -1.05, -1.0, true},
	}
	for _, tc := range cases {
		if got := tc.tol.Within(tc.got, tc.want); got != tc.ok {
			t.Errorf("%s: Within(%v, %v) with %+v = %v, want %v",
				tc.name, tc.got, tc.want, tc.tol, got, tc.ok)
		}
	}
}

func TestErrsZeroWant(t *testing.T) {
	rel, abs := Errs(0.25, 0)
	if rel != 0.25 || abs != 0.25 {
		t.Errorf("Errs(0.25, 0) = %v, %v, want 0.25, 0.25", rel, abs)
	}
	rel, abs = Errs(1.1, 1.0)
	if abs < 0.0999 || abs > 0.1001 || rel < 0.0999 || rel > 0.1001 {
		t.Errorf("Errs(1.1, 1.0) = %v, %v", rel, abs)
	}
}

// TestGateWorstFirst: the report lists offenders by how many multiples
// of their bound they exceed, not by raw error size.
func TestGateWorstFirst(t *testing.T) {
	var g Gate
	g.Check("mild", 1.10, 1.0, Tolerance{Rel: 0.05})     // 2x over
	g.Check("fine", 1.01, 1.0, Tolerance{Rel: 0.02})     // within
	g.Check("severe", 2.0, 1.0, Tolerance{Rel: 0.02})    // 50x over
	g.Check("floored", 5.0, 4.5, Tolerance{Abs: 1})      // within via floor
	g.Check("medium", 0.30, 0.10, Tolerance{Abs: 0.025}) // 8x over
	if g.OK() {
		t.Fatal("gate with three offenders reported OK")
	}
	fails := g.Failures()
	order := []string{"severe", "medium", "mild"}
	if len(fails) != len(order) {
		t.Fatalf("got %d failures, want %d: %+v", len(fails), len(order), fails)
	}
	for i, want := range order {
		if fails[i].Metric != want {
			t.Errorf("failure[%d] = %s, want %s", i, fails[i].Metric, want)
		}
	}
	rep := g.Report()
	if !strings.Contains(rep, "3/5 metrics") {
		t.Errorf("report header wrong:\n%s", rep)
	}
	if strings.Index(rep, "severe") > strings.Index(rep, "mild") {
		t.Errorf("report not worst-first:\n%s", rep)
	}
	if !strings.Contains(rep, "passing floor needs Abs >= 1.0000") {
		t.Errorf("report missing the suggested floor for severe:\n%s", rep)
	}
}

func TestGateEmptyAndClean(t *testing.T) {
	var g Gate
	if !g.OK() || g.Report() != "" {
		t.Error("empty gate should pass with an empty report")
	}
	g.Check("a", 1.0, 1.0, Tolerance{Rel: 0.02})
	if !g.OK() || g.Report() != "" {
		t.Error("clean gate should pass with an empty report")
	}
}
