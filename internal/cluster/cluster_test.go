package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// twoBlobs returns n points split between two well-separated clusters.
func twoBlobs(rng *xrand.PCG32, n int) ([][]float64, []int) {
	pts := make([][]float64, n)
	truth := make([]int, n)
	for i := range pts {
		c := i % 2
		truth[i] = c
		base := float64(c) * 100
		pts[i] = []float64{base + rng.NormFloat64(), base + rng.NormFloat64()}
	}
	return pts, truth
}

func TestEuclidean(t *testing.T) {
	if got := Euclidean([]float64{0, 0}, []float64{3, 4}); got != 5 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := Euclidean([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("identical points distance %v", got)
	}
}

func TestAgglomerateMergeCount(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}, {11}}
	for _, l := range Linkages() {
		d := Agglomerate(pts, l)
		if len(d.Merges) != 3 {
			t.Errorf("%v: %d merges, want 3", l, len(d.Merges))
		}
		last := d.Merges[len(d.Merges)-1]
		if last.Size != 4 {
			t.Errorf("%v: final merge size %d, want 4", l, last.Size)
		}
	}
}

func TestClosestPairMergesFirst(t *testing.T) {
	pts := [][]float64{{0}, {0.5}, {10}, {30}}
	d := Agglomerate(pts, Average)
	m := d.Merges[0]
	if !(m.A == 0 && m.B == 1) {
		t.Errorf("first merge = %d,%d, want 0,1", m.A, m.B)
	}
}

func TestCutRecoversBlobs(t *testing.T) {
	rng := xrand.NewPCG32(3)
	pts, truth := twoBlobs(rng, 40)
	for _, l := range Linkages() {
		d := Agglomerate(pts, l)
		assign := d.Cut(2)
		// All same-truth points share a label and cross-truth differ.
		for i := 1; i < len(pts); i++ {
			want := assign[0]
			if truth[i] != truth[0] {
				if assign[i] == want {
					t.Errorf("%v: clusters merged across blobs", l)
					break
				}
			} else if assign[i] != want {
				t.Errorf("%v: blob split", l)
				break
			}
		}
	}
}

func TestCutExtremes(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {3}}
	d := Agglomerate(pts, Ward)
	one := d.Cut(1)
	for _, a := range one {
		if a != 0 {
			t.Error("Cut(1) not a single cluster")
		}
	}
	all := d.Cut(4)
	seen := map[int]bool{}
	for _, a := range all {
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("Cut(n) gave %d clusters", len(seen))
	}
}

func TestCutPanics(t *testing.T) {
	d := Agglomerate([][]float64{{0}, {1}}, Ward)
	for _, k := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Cut(%d) did not panic", k)
				}
			}()
			d.Cut(k)
		}()
	}
}

func TestAgglomeratePanics(t *testing.T) {
	for _, pts := range [][][]float64{nil, {{1, 2}, {1}}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Agglomerate(pts, Ward)
		}()
	}
}

func TestSinglePoint(t *testing.T) {
	d := Agglomerate([][]float64{{5, 5}}, Ward)
	if len(d.Merges) != 0 {
		t.Error("single point produced merges")
	}
	if got := d.Cut(1); got[0] != 0 {
		t.Error("single point cut broken")
	}
}

// TestMonotoneMergeDistances: for complete, average and Ward linkage the
// merge distances are non-decreasing (no inversions).
func TestMonotoneMergeDistances(t *testing.T) {
	rng := xrand.NewPCG32(7)
	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
	}
	for _, l := range []Linkage{Complete, Average, Ward} {
		d := Agglomerate(pts, l)
		for i := 1; i < len(d.Merges); i++ {
			if d.Merges[i].Distance < d.Merges[i-1].Distance-1e-9 {
				t.Errorf("%v: merge distance inversion at step %d", l, i)
			}
		}
	}
}

// TestSSEMonotoneInK: SSE decreases (weakly) as the cluster count grows.
func TestSSEMonotoneInK(t *testing.T) {
	rng := xrand.NewPCG32(9)
	pts := make([][]float64, 25)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64()}
	}
	d := Agglomerate(pts, Ward)
	prev := math.Inf(1)
	for k := 1; k <= len(pts); k++ {
		sse := SSE(pts, d.Cut(k))
		if sse > prev+1e-9 {
			t.Errorf("SSE rose from %v to %v at k=%d", prev, sse, k)
		}
		prev = sse
	}
	if last := SSE(pts, d.Cut(len(pts))); last != 0 {
		t.Errorf("SSE with singleton clusters = %v, want 0", last)
	}
}

func TestSSEKnown(t *testing.T) {
	pts := [][]float64{{0}, {2}, {10}, {12}}
	// Clusters {0,2} and {10,12}: centroids 1 and 11, SSE = 4×1 = 4.
	if got := SSE(pts, []int{0, 0, 1, 1}); got != 4 {
		t.Errorf("SSE = %v, want 4", got)
	}
	if got := SSE(nil, nil); got != 0 {
		t.Errorf("empty SSE = %v", got)
	}
}

func TestSSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatch")
		}
	}()
	SSE([][]float64{{1}}, []int{0, 1})
}

func TestParetoFront(t *testing.T) {
	cands := []Tradeoff{
		{K: 1, SSE: 100, Cost: 10},
		{K: 2, SSE: 50, Cost: 20},
		{K: 3, SSE: 60, Cost: 30}, // dominated by K=2
		{K: 4, SSE: 10, Cost: 40},
	}
	front := ParetoFront(cands)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3", len(front))
	}
	for _, f := range front {
		if f.K == 3 {
			t.Error("dominated candidate on front")
		}
	}
}

func TestKneePicksElbow(t *testing.T) {
	// Classic L-curve: big SSE drop early, then diminishing returns while
	// cost keeps rising; the knee is in the middle.
	cands := []Tradeoff{
		{K: 1, SSE: 100, Cost: 0},
		{K: 2, SSE: 40, Cost: 10},
		{K: 3, SSE: 12, Cost: 20},
		{K: 4, SSE: 10, Cost: 55},
		{K: 5, SSE: 9, Cost: 80},
		{K: 6, SSE: 8.5, Cost: 100},
	}
	knee := Knee(cands)
	if knee.K != 3 {
		t.Errorf("knee at K=%d, want 3", knee.K)
	}
}

func TestKneePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Knee(nil)
}

func TestKneeSingleCandidate(t *testing.T) {
	if got := Knee([]Tradeoff{{K: 7, SSE: 1, Cost: 1}}); got.K != 7 {
		t.Errorf("Knee single = %+v", got)
	}
}

// TestCutPartitionProperty: any cut is a valid partition with exactly k
// non-empty parts.
func TestCutPartitionProperty(t *testing.T) {
	rng := xrand.NewPCG32(21)
	f := func(seed uint16) bool {
		n := int(seed%20) + 2
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		d := Agglomerate(pts, Average)
		for k := 1; k <= n; k++ {
			assign := d.Cut(k)
			seen := map[int]bool{}
			for _, a := range assign {
				if a < 0 || a >= k {
					return false
				}
				seen[a] = true
			}
			if len(seen) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAgglomerate64(b *testing.B) {
	rng := xrand.NewPCG32(41)
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Agglomerate(pts, Ward)
	}
}

func TestKneeWeightedFavorsQuality(t *testing.T) {
	cands := []Tradeoff{
		{K: 1, SSE: 100, Cost: 0},
		{K: 2, SSE: 40, Cost: 10},
		{K: 3, SSE: 12, Cost: 20},
		{K: 4, SSE: 10, Cost: 55},
		{K: 5, SSE: 4, Cost: 80},
		{K: 6, SSE: 0.5, Cost: 100},
	}
	base := KneeWeighted(cands, 1)
	heavy := KneeWeighted(cands, 8)
	if heavy.K < base.K {
		t.Errorf("SSE weight 8 chose k=%d below unweighted k=%d", heavy.K, base.K)
	}
}

func TestKneeWeightedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive weight accepted")
		}
	}()
	KneeWeighted([]Tradeoff{{K: 1}}, 0)
}

func TestParetoFrontEmpty(t *testing.T) {
	if got := ParetoFront(nil); got != nil {
		t.Errorf("empty front = %v", got)
	}
}
