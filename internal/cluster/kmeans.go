package cluster

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// KMeansResult holds a converged k-means clustering.
type KMeansResult struct {
	// Assign maps each point to its cluster in [0, K).
	Assign []int
	// Centroids are the cluster centers.
	Centroids [][]float64
	// SSE is the within-cluster sum of squared distances.
	SSE float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeans clusters points into k clusters with Lloyd's algorithm and
// k-means++ seeding (deterministic given seed). It panics on invalid
// input. Empty clusters are re-seeded with the point farthest from its
// centroid, so exactly k non-empty clusters are returned whenever
// k <= len(points).
func KMeans(points [][]float64, k int, seed uint64) *KMeansResult {
	n := len(points)
	if n == 0 {
		panic("cluster: KMeans with no points")
	}
	if k < 1 || k > n {
		panic(fmt.Sprintf("cluster: KMeans k=%d of %d points", k, n))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("cluster: point %d has %d dims, want %d", i, len(p), dim))
		}
	}
	rng := xrand.NewPCG32(seed)
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	res := &KMeansResult{}
	const maxIter = 200
	for iter := 0; iter < maxIter; iter++ {
		changed := assignPoints(points, centroids, assign)
		recompute(points, assign, centroids)
		fixEmpty(points, assign, centroids)
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			break
		}
	}
	res.Assign = assign
	res.Centroids = centroids
	res.SSE = SSE(points, assign)
	return res
}

// seedPlusPlus picks initial centroids with D^2 weighting.
func seedPlusPlus(points [][]float64, k int, rng *xrand.PCG32) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, clonePoint(points[first]))
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			// All points coincide with centroids; pick any unused point.
			idx = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			cum := 0.0
			idx = n - 1
			for i, d := range d2 {
				cum += d
				if cum >= r {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, clonePoint(points[idx]))
	}
	return centroids
}

func assignPoints(points, centroids [][]float64, assign []int) bool {
	changed := false
	for i, p := range points {
		best, bestD := 0, math.Inf(1)
		for c, cen := range centroids {
			if d := sqDist(p, cen); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

func recompute(points [][]float64, assign []int, centroids [][]float64) {
	dim := len(points[0])
	counts := make([]int, len(centroids))
	for c := range centroids {
		for j := 0; j < dim; j++ {
			centroids[c][j] = 0
		}
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			centroids[c][j] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
}

// fixEmpty reseeds empty clusters with the point farthest from its
// current centroid.
func fixEmpty(points [][]float64, assign []int, centroids [][]float64) {
	counts := make([]int, len(centroids))
	for _, a := range assign {
		counts[a]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			continue
		}
		worst, worstD := -1, -1.0
		for i, p := range points {
			if counts[assign[i]] <= 1 {
				continue // do not empty another cluster
			}
			if d := sqDist(p, centroids[assign[i]]); d > worstD {
				worst, worstD = i, d
			}
		}
		if worst < 0 {
			continue
		}
		counts[assign[worst]]--
		assign[worst] = c
		counts[c] = 1
		copy(centroids[c], points[worst])
	}
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func clonePoint(p []float64) []float64 {
	out := make([]float64, len(p))
	copy(out, p)
	return out
}

// BIC scores a k-means clustering with the Bayesian information
// criterion under a spherical Gaussian model (higher is better), the
// standard x-means criterion for choosing k when no execution-time
// Pareto axis exists (phase analysis uses it).
func BIC(points [][]float64, res *KMeansResult) float64 {
	n := float64(len(points))
	if n == 0 {
		return math.Inf(-1)
	}
	d := float64(len(points[0]))
	k := float64(len(res.Centroids))
	variance := res.SSE / math.Max(n-k, 1) / d
	if variance <= 0 {
		variance = 1e-12
	}
	counts := make([]float64, len(res.Centroids))
	for _, a := range res.Assign {
		counts[a]++
	}
	ll := 0.0
	for _, cn := range counts {
		if cn == 0 {
			continue
		}
		ll += cn*math.Log(cn) - cn*math.Log(n) -
			cn*d/2*math.Log(2*math.Pi*variance) - (cn-1)*d/2
	}
	params := k * (d + 1)
	return ll - params/2*math.Log(n)
}
