// Package cluster implements the agglomerative hierarchical clustering of
// the paper's Section V-B: points (application-input pairs in PC space)
// are iteratively merged by least linkage distance, producing a
// dendrogram that can be cut at any cluster count; cut quality is scored
// with the sum of squared errors the paper uses to pick the
// Pareto-optimal subset size.
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Linkage selects how inter-cluster distance is computed.
type Linkage int

const (
	// Ward merges to minimize the increase in within-cluster variance;
	// it matches the paper's SSE quality metric and, being the zero
	// value, is the default linkage.
	Ward Linkage = iota
	// Single linkage merges by minimum pairwise distance.
	Single
	// Complete linkage merges by maximum pairwise distance.
	Complete
	// Average linkage (UPGMA) merges by mean pairwise distance.
	Average
)

// String returns the lowercase linkage name.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Linkages returns all supported linkages (for the linkage ablation).
func Linkages() []Linkage { return []Linkage{Single, Complete, Average, Ward} }

// Merge records one agglomeration step.
type Merge struct {
	// A and B are the node ids merged at this step: ids < n are leaves
	// (original points); id n+k is the cluster formed by step k.
	A, B int
	// Distance is the linkage distance at which A and B merged.
	Distance float64
	// Size is the number of leaves in the merged cluster.
	Size int
}

// Dendrogram is the full merge history of n points.
type Dendrogram struct {
	// N is the number of original points.
	N int
	// Merges has exactly N-1 entries in merge order.
	Merges []Merge
}

// Euclidean returns the Euclidean distance between two points.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Agglomerate clusters the points (rows) hierarchically under the given
// linkage using the Lance-Williams update, returning the dendrogram.
// It panics if fewer than one point or ragged rows are supplied.
func Agglomerate(points [][]float64, linkage Linkage) *Dendrogram {
	n := len(points)
	if n == 0 {
		panic("cluster: no points")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("cluster: point %d has %d dims, want %d", i, len(p), dim))
		}
	}
	d := &Dendrogram{N: n}
	if n == 1 {
		return d
	}

	// Pairwise distance matrix between active clusters. For Ward the
	// stored quantity is squared Euclidean distance (the Lance-Williams
	// recurrence for Ward operates on squared distances).
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := Euclidean(points[i], points[j])
			if linkage == Ward {
				v = v * v
			}
			dist[i][j] = v
			dist[j][i] = v
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	id := make([]int, n) // dendrogram node id of slot i
	for i := range active {
		active[i] = true
		size[i] = 1
		id[i] = i
	}
	next := n
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if dist[i][j] < best {
					bi, bj, best = i, j, dist[i][j]
				}
			}
		}
		reported := best
		if linkage == Ward {
			reported = math.Sqrt(best)
		}
		d.Merges = append(d.Merges, Merge{
			A: id[bi], B: id[bj], Distance: reported, Size: size[bi] + size[bj],
		})
		// Lance-Williams update: the merged cluster lives in slot bi.
		si, sj := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dik, djk := dist[bi][k], dist[bj][k]
			var v float64
			switch linkage {
			case Single:
				v = math.Min(dik, djk)
			case Complete:
				v = math.Max(dik, djk)
			case Average:
				v = (si*dik + sj*djk) / (si + sj)
			case Ward:
				sk := float64(size[k])
				v = ((si+sk)*dik + (sj+sk)*djk - sk*dist[bi][bj]) / (si + sj + sk)
			}
			dist[bi][k] = v
			dist[k][bi] = v
		}
		active[bj] = false
		size[bi] += size[bj]
		id[bi] = next
		next++
	}
	return d
}

// Cut returns cluster assignments for exactly k clusters: a slice of
// length N mapping each point to a cluster index in [0, k). It panics if
// k is out of [1, N].
func (d *Dendrogram) Cut(k int) []int {
	if k < 1 || k > d.N {
		panic(fmt.Sprintf("cluster: Cut(%d) of %d points", k, d.N))
	}
	// Union-find over the first N-k merges.
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for s := 0; s < d.N-k; s++ {
		m := d.Merges[s]
		node := d.N + s
		parent[find(m.A)] = node
		parent[find(m.B)] = node
	}
	label := map[int]int{}
	out := make([]int, d.N)
	for i := 0; i < d.N; i++ {
		root := find(i)
		if _, ok := label[root]; !ok {
			label[root] = len(label)
		}
		out[i] = label[root]
	}
	return out
}

// SSE returns the sum of squared Euclidean distances from each point to
// its cluster centroid under the given assignment — the clustering
// quality measure of Section V-C.
func SSE(points [][]float64, assign []int) float64 {
	if len(points) != len(assign) {
		panic("cluster: SSE length mismatch")
	}
	if len(points) == 0 {
		return 0
	}
	dim := len(points[0])
	k := 0
	for _, a := range assign {
		if a+1 > k {
			k = a + 1
		}
	}
	centroids := make([][]float64, k)
	counts := make([]int, k)
	for i := range centroids {
		centroids[i] = make([]float64, dim)
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			centroids[c][j] += v
		}
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	sse := 0.0
	for i, p := range points {
		c := centroids[assign[i]]
		for j, v := range p {
			d := v - c[j]
			sse += d * d
		}
	}
	return sse
}

// Tradeoff is one candidate cluster count with its quality and cost.
type Tradeoff struct {
	// K is the cluster count.
	K int
	// SSE is the clustering error at K clusters.
	SSE float64
	// Cost is the caller-supplied objective to minimize alongside SSE
	// (the paper uses the subset's total execution time).
	Cost float64
}

// ParetoFront returns the subset of candidates not dominated by any other
// (no other candidate has both lower SSE and lower Cost), sorted by K.
func ParetoFront(cands []Tradeoff) []Tradeoff {
	var front []Tradeoff
	for _, c := range cands {
		dominated := false
		for _, o := range cands {
			if (o.SSE < c.SSE && o.Cost <= c.Cost) || (o.SSE <= c.SSE && o.Cost < c.Cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].K < front[j].K })
	return front
}

// Knee picks the candidate closest to the ideal point after min-max
// normalizing both objectives — the standard knee heuristic for choosing
// the Pareto-optimal cluster count (Fig. 10). It panics on an empty
// candidate list.
func Knee(cands []Tradeoff) Tradeoff { return KneeWeighted(cands, 1) }

// KneeWeighted is Knee with the normalized SSE axis scaled by sseWeight:
// weights above 1 favour clustering quality over subset cost, selecting
// larger subsets. It panics on an empty candidate list or non-positive
// weight.
func KneeWeighted(cands []Tradeoff, sseWeight float64) Tradeoff {
	if len(cands) == 0 {
		panic("cluster: Knee with no candidates")
	}
	if sseWeight <= 0 {
		panic("cluster: non-positive SSE weight")
	}
	minS, maxS := math.Inf(1), math.Inf(-1)
	minC, maxC := math.Inf(1), math.Inf(-1)
	for _, c := range cands {
		minS, maxS = math.Min(minS, c.SSE), math.Max(maxS, c.SSE)
		minC, maxC = math.Min(minC, c.Cost), math.Max(maxC, c.Cost)
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0
		}
		return (v - lo) / (hi - lo)
	}
	best := cands[0]
	bestD := math.Inf(1)
	for _, c := range cands {
		ns := norm(c.SSE, minS, maxS) * sseWeight
		nc := norm(c.Cost, minC, maxC)
		d := math.Sqrt(ns*ns + nc*nc)
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
