package cluster

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := xrand.NewPCG32(2)
	pts, truth := twoBlobs(rng, 60)
	res := KMeans(pts, 2, 7)
	for i := 1; i < len(pts); i++ {
		same := truth[i] == truth[0]
		got := res.Assign[i] == res.Assign[0]
		if same != got {
			t.Fatalf("point %d misclustered", i)
		}
	}
	if res.SSE <= 0 {
		t.Errorf("SSE = %v", res.SSE)
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestKMeansExactClusters(t *testing.T) {
	pts := [][]float64{{0}, {0}, {10}, {10}, {20}, {20}}
	res := KMeans(pts, 3, 1)
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("clusters used = %d, want 3", len(seen))
	}
	if res.SSE != 0 {
		t.Errorf("SSE = %v, want 0 for coincident pairs", res.SSE)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {5}, {9}, {14}}
	res := KMeans(pts, 4, 3)
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("k=n clusters used = %d", len(seen))
	}
	if res.SSE != 0 {
		t.Errorf("k=n SSE = %v", res.SSE)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	res := KMeans(pts, 1, 9)
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("k=1 produced multiple labels")
		}
	}
	want := []float64{2, 2}
	for j, v := range res.Centroids[0] {
		if math.Abs(v-want[j]) > 1e-12 {
			t.Errorf("centroid[%d] = %v, want %v", j, v, want[j])
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := xrand.NewPCG32(4)
	pts, _ := twoBlobs(rng, 40)
	a := KMeans(pts, 3, 42)
	b := KMeans(pts, 3, 42)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignments")
		}
	}
}

func TestKMeansPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { KMeans(nil, 1, 0) },
		func() { KMeans([][]float64{{1}}, 0, 0) },
		func() { KMeans([][]float64{{1}}, 2, 0) },
		func() { KMeans([][]float64{{1, 2}, {1}}, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestKMeansSSEBeatsRandomAssignment: converged k-means has lower SSE
// than a random assignment of the same k.
func TestKMeansSSEBeatsRandomAssignment(t *testing.T) {
	rng := xrand.NewPCG32(5)
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
	}
	res := KMeans(pts, 5, 11)
	randAssign := make([]int, len(pts))
	for i := range randAssign {
		randAssign[i] = rng.Intn(5)
	}
	if res.SSE >= SSE(pts, randAssign) {
		t.Errorf("k-means SSE %v not below random %v", res.SSE, SSE(pts, randAssign))
	}
}

// TestKMeansVsWardAgreement: on well-separated data both algorithms find
// the same partition.
func TestKMeansVsWardAgreement(t *testing.T) {
	rng := xrand.NewPCG32(6)
	pts, _ := twoBlobs(rng, 30)
	km := KMeans(pts, 2, 3)
	hac := Agglomerate(pts, Ward).Cut(2)
	// Partitions match up to label permutation.
	match := func(flip bool) bool {
		for i := range pts {
			a := km.Assign[i]
			if flip {
				a = 1 - a
			}
			if a != hac[i] {
				return false
			}
		}
		return true
	}
	if !match(false) && !match(true) {
		t.Error("k-means and Ward disagree on separated blobs")
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	rng := xrand.NewPCG32(8)
	// Three tight, well-separated blobs.
	var pts [][]float64
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			pts = append(pts, []float64{
				float64(c)*50 + rng.NormFloat64(),
				float64(c)*50 + rng.NormFloat64(),
			})
		}
	}
	best, bestBIC := 0, math.Inf(-1)
	for k := 1; k <= 6; k++ {
		res := KMeans(pts, k, 13)
		if b := BIC(pts, res); b > bestBIC {
			best, bestBIC = k, b
		}
	}
	if best != 3 {
		t.Errorf("BIC chose k=%d, want 3", best)
	}
}

func TestBICEmptyPoints(t *testing.T) {
	if got := BIC(nil, &KMeansResult{}); !math.IsInf(got, -1) {
		t.Errorf("BIC(empty) = %v", got)
	}
}

func BenchmarkKMeans194x4(b *testing.B) {
	rng := xrand.NewPCG32(10)
	pts := make([][]float64, 194)
	for i := range pts {
		pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(pts, 12, uint64(i))
	}
}
