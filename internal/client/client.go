// Package client is the typed Go client for specserved's /v1 campaign
// API (internal/server). It wraps submission, polling, waiting,
// cancellation, SSE event streaming and manifest retrieval over a plain
// *http.Client, decoding the server's JSON into the same status types
// the server defines so the two sides cannot drift.
//
// The server's e2e tests run entirely through this package, which keeps
// the client honest: every endpoint and error path the tests exercise
// is exercised through the public client surface.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

// Client talks to one specserved instance.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, timeouts, httptest clients).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8425"); a trailing slash is tolerated.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response decoded from the server's JSON error
// envelope.
type APIError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's error string (or the raw body when the
	// response was not the JSON envelope).
	Message string
	// RetryAfter is the parsed Retry-After hint on 429 responses; zero
	// when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Code)
}

// IsQueueFull reports whether err is the server's 429 queue-full
// rejection.
func IsQueueFull(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == http.StatusTooManyRequests
}

// IsNotFound reports whether err is a 404.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == http.StatusNotFound
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeError(resp *http.Response) error {
	ae := &APIError{Code: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
		ae.Message = envelope.Error
	} else {
		ae.Message = strings.TrimSpace(string(raw))
	}
	return ae
}

// Submit enqueues a campaign and returns its accepted status (202).
func (c *Client) Submit(ctx context.Context, spec server.CampaignSpec) (server.CampaignStatus, error) {
	var st server.CampaignStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &st)
	return st, err
}

// SubmitWait submits a campaign with ?wait=1: the call blocks until the
// campaign reaches a terminal state and returns the full status
// (results included when done). Cancelling ctx disconnects, which the
// server treats as a request to cancel the job.
func (c *Client) SubmitWait(ctx context.Context, spec server.CampaignSpec) (server.CampaignStatus, error) {
	var st server.CampaignStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns?wait=1", spec, &st)
	return st, err
}

// Campaign fetches one campaign's status; withResults includes the
// per-pair characteristics once the campaign is done.
func (c *Client) Campaign(ctx context.Context, id string, withResults bool) (server.CampaignStatus, error) {
	path := "/v1/campaigns/" + url.PathEscape(id)
	if !withResults {
		path += "?results=0"
	}
	var st server.CampaignStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// List fetches every campaign's status in submission order.
func (c *Client) List(ctx context.Context) ([]server.CampaignStatus, error) {
	var out []server.CampaignStatus
	err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &out)
	return out, err
}

// Cancel requests cancellation of a queued or running campaign and
// returns the status snapshot taken at acceptance.
func (c *Client) Cancel(ctx context.Context, id string) (server.CampaignStatus, error) {
	var st server.CampaignStatus
	err := c.do(ctx, http.MethodDelete, "/v1/campaigns/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Wait polls until the campaign reaches a terminal status and returns
// it with results. The poll interval is fixed and small; use SubmitWait
// or Events when latency matters.
func (c *Client) Wait(ctx context.Context, id string) (server.CampaignStatus, error) {
	for {
		st, err := c.Campaign(ctx, id, true)
		if err != nil {
			return st, err
		}
		switch st.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Event is one server-sent event from a campaign's /events stream.
type Event struct {
	// Name is the event type: "status", "progress" or "done".
	Name string
	// Data is the raw JSON payload (a CampaignStatus for status/done,
	// a ProgressStatus for progress).
	Data []byte
}

// Progress decodes the event payload as a progress snapshot.
func (e Event) Progress() (server.ProgressStatus, error) {
	var p server.ProgressStatus
	err := json.Unmarshal(e.Data, &p)
	return p, err
}

// Status decodes the event payload as a campaign status.
func (e Event) Status() (server.CampaignStatus, error) {
	var st server.CampaignStatus
	err := json.Unmarshal(e.Data, &st)
	return st, err
}

// Events streams the campaign's SSE feed, invoking fn for each event
// until the stream ends (the server closes it after the "done" event),
// fn returns a non-nil error, or ctx is cancelled. Returns nil on a
// normally closed stream and fn's error when fn stopped it.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/campaigns/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if ev.Name != "" || len(ev.Data) > 0 {
				if err := fn(ev); err != nil {
					return err
				}
				ev = Event{}
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Manifest fetches a campaign's JSONL run manifest and the digest the
// server advertises for it.
func (c *Client) Manifest(ctx context.Context, id string) (manifest []byte, digest string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/campaigns/"+url.PathEscape(id)+"/manifest", nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", decodeError(resp)
	}
	manifest, err = io.ReadAll(resp.Body)
	return manifest, resp.Header.Get("X-Manifest-Digest"), err
}

// Health reports whether the server is accepting work (false while
// draining).
func (c *Client) Health(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK, nil
}

// Metrics fetches the Prometheus text exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
