// Package client is the typed Go client for specserved's /v1 campaign
// API (internal/server). It wraps submission, polling, waiting,
// cancellation, SSE event streaming and manifest retrieval over a plain
// *http.Client, decoding the server's JSON into the same status types
// the server defines so the two sides cannot drift.
//
// The server's e2e tests run entirely through this package, which keeps
// the client honest: every endpoint and error path the tests exercise
// is exercised through the public client surface.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"
)

// Client talks to one specserved instance.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, timeouts, httptest clients).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// RetryPolicy bounds SubmitWait's automatic retries of the server's
// 429 queue-full rejection.
type RetryPolicy struct {
	// MaxAttempts is the total number of submissions tried (default 6;
	// 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff used when the server
	// sends no usable Retry-After hint (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps any single wait, hinted or not (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// WithRetry overrides the client's 429 retry policy (SubmitWait).
// RetryPolicy{MaxAttempts: 1} fails fast like the pre-policy client.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8425"); a trailing slash is tolerated.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	c.retry = c.retry.withDefaults()
	return c
}

// APIError is a non-2xx response decoded from the server's JSON error
// envelope.
type APIError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's error string (or the raw body when the
	// response was not the JSON envelope).
	Message string
	// Field names the campaign-spec JSON field a 400 validation error
	// is about (e.g. "rate_copies", "topology"); empty when the server
	// did not attribute the error to one field.
	Field string
	// RetryAfter is the parsed Retry-After hint on 429 responses; zero
	// when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("server: %s (field %q, HTTP %d)", e.Message, e.Field, e.Code)
	}
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Code)
}

// FieldError returns the field-tagged validation error behind err: the
// offending campaign-spec field and the server's message. ok is false
// when err carries no field attribution.
func FieldError(err error) (field, msg string, ok bool) {
	var ae *APIError
	if errors.As(err, &ae) && ae.Field != "" {
		return ae.Field, ae.Message, true
	}
	return "", "", false
}

// IsQueueFull reports whether err is the server's 429 queue-full
// rejection.
func IsQueueFull(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == http.StatusTooManyRequests
}

// IsNotFound reports whether err is a 404.
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == http.StatusNotFound
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// maxRetryAfter caps the Retry-After hint a server can impose: beyond
// it the value is treated as absurd and clamped, so a misconfigured
// (or hostile) server cannot park a retrying client for hours.
const maxRetryAfter = 5 * time.Minute

// parseRetryAfter parses both RFC 9110 Retry-After forms — delay
// seconds ("120") and HTTP-date ("Fri, 08 Aug 2026 10:00:00 GMT") —
// returning the hint clamped to [0, maxRetryAfter]. Zero means no
// usable hint.
func parseRetryAfter(ra string) time.Duration {
	if ra == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(strings.TrimSpace(ra)); err == nil {
		d = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(ra); err == nil {
		d = time.Until(t)
	} else {
		return 0
	}
	if d < 0 {
		return 0 // a date in the past means "retry now", not "never"
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

func decodeError(resp *http.Response) error {
	ae := &APIError{Code: resp.StatusCode}
	ae.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var envelope struct {
		Error string `json:"error"`
		Field string `json:"field"`
	}
	if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
		ae.Message = envelope.Error
		ae.Field = envelope.Field
	} else {
		ae.Message = strings.TrimSpace(string(raw))
	}
	return ae
}

// Submit enqueues a campaign and returns its accepted status (202).
func (c *Client) Submit(ctx context.Context, spec server.CampaignSpec) (server.CampaignStatus, error) {
	var st server.CampaignStatus
	err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &st)
	return st, err
}

// SubmitWait submits a campaign with ?wait=1: the call blocks until the
// campaign reaches a terminal state and returns the full status
// (results included when done). Cancelling ctx disconnects, which the
// server treats as a request to cancel the job.
//
// A 429 queue-full rejection is retried under the client's RetryPolicy
// with jittered waits honoring the server's Retry-After hint, so a
// saturated server applies backpressure instead of failing the caller;
// other errors — and 429s once attempts run out — are returned as-is.
// Cancelling ctx aborts a pending wait immediately with ctx's error.
func (c *Client) SubmitWait(ctx context.Context, spec server.CampaignSpec) (server.CampaignStatus, error) {
	var st server.CampaignStatus
	var err error
	for attempt := 1; ; attempt++ {
		st = server.CampaignStatus{}
		err = c.do(ctx, http.MethodPost, "/v1/campaigns?wait=1", spec, &st)
		if err == nil || !IsQueueFull(err) || attempt >= c.retry.MaxAttempts {
			return st, err
		}
		var ae *APIError
		delay := c.retry.BaseDelay << (attempt - 1)
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			delay = ae.RetryAfter
		}
		if delay > c.retry.MaxDelay {
			delay = c.retry.MaxDelay
		}
		// Full jitter over [delay/2, delay] de-synchronizes a fleet of
		// retrying clients hammering one queue.
		delay = delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// Campaign fetches one campaign's status; withResults includes the
// per-pair characteristics once the campaign is done.
func (c *Client) Campaign(ctx context.Context, id string, withResults bool) (server.CampaignStatus, error) {
	path := "/v1/campaigns/" + url.PathEscape(id)
	if !withResults {
		path += "?results=0"
	}
	var st server.CampaignStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// List fetches every campaign's status in submission order.
func (c *Client) List(ctx context.Context) ([]server.CampaignStatus, error) {
	var out []server.CampaignStatus
	err := c.do(ctx, http.MethodGet, "/v1/campaigns", nil, &out)
	return out, err
}

// Cancel requests cancellation of a queued or running campaign and
// returns the status snapshot taken at acceptance.
func (c *Client) Cancel(ctx context.Context, id string) (server.CampaignStatus, error) {
	var st server.CampaignStatus
	err := c.do(ctx, http.MethodDelete, "/v1/campaigns/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Wait polls until the campaign reaches a terminal status and returns
// it with results. The poll interval is fixed and small; use SubmitWait
// or Events when latency matters.
func (c *Client) Wait(ctx context.Context, id string) (server.CampaignStatus, error) {
	for {
		st, err := c.Campaign(ctx, id, true)
		if err != nil {
			return st, err
		}
		switch st.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// Event is one server-sent event from a campaign's /events stream.
type Event struct {
	// Name is the event type: "status", "progress" or "done".
	Name string
	// Data is the raw JSON payload (a CampaignStatus for status/done,
	// a ProgressStatus for progress).
	Data []byte
}

// Progress decodes the event payload as a progress snapshot.
func (e Event) Progress() (server.ProgressStatus, error) {
	var p server.ProgressStatus
	err := json.Unmarshal(e.Data, &p)
	return p, err
}

// Status decodes the event payload as a campaign status.
func (e Event) Status() (server.CampaignStatus, error) {
	var st server.CampaignStatus
	err := json.Unmarshal(e.Data, &st)
	return st, err
}

// SSE scanner sizing: lines start from a 1 MiB buffer and may grow to
// maxEventLine. The default bufio.Scanner limit (64 KiB) is far too
// small for a large campaign's status payloads — a "done" event for a
// full-suite campaign carries every pair's result in one data line.
const (
	initialEventBuf = 1 << 20
	maxEventLine    = 16 << 20
)

// ErrEventTooLarge reports that an SSE line exceeded the client's
// maxEventLine limit. It is returned (wrapped) by Events instead of
// the bare bufio.ErrTooLong so callers can distinguish a too-large
// event from a transport failure with errors.Is.
var ErrEventTooLarge = fmt.Errorf("client: SSE event exceeds the %d MiB line limit", maxEventLine>>20)

// Events streams the campaign's SSE feed, invoking fn for each event
// until the stream ends (the server closes it after the "done" event),
// fn returns a non-nil error, or ctx is cancelled. Returns nil on a
// normally closed stream and fn's error when fn stopped it. An event
// line larger than the 16 MiB scanner limit surfaces as
// ErrEventTooLarge rather than silently truncating the stream.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	return c.events(ctx, "/v1/campaigns/"+url.PathEscape(id)+"/events", id, fn)
}

func (c *Client) events(ctx context.Context, path, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, initialEventBuf), maxEventLine)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if ev.Name != "" || len(ev.Data) > 0 {
				if err := fn(ev); err != nil {
					return err
				}
				ev = Event{}
			}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("job %s events: %w", id, ErrEventTooLarge)
		}
		return err
	}
	return nil
}

// Manifest fetches a campaign's JSONL run manifest and the digest the
// server advertises for it.
func (c *Client) Manifest(ctx context.Context, id string) (manifest []byte, digest string, err error) {
	return c.manifest(ctx, "/v1/campaigns/"+url.PathEscape(id)+"/manifest")
}

func (c *Client) manifest(ctx context.Context, path string) (manifest []byte, digest string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", decodeError(resp)
	}
	manifest, err = io.ReadAll(resp.Body)
	return manifest, resp.Header.Get("X-Manifest-Digest"), err
}

// --- Sweeps -----------------------------------------------------------

// SubmitSweep enqueues a design-space sweep and returns its accepted
// status (202).
func (c *Client) SubmitSweep(ctx context.Context, spec server.SweepSpec) (server.SweepStatus, error) {
	var st server.SweepStatus
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", spec, &st)
	return st, err
}

// SubmitSweepWait submits a sweep with ?wait=1, blocking until it
// reaches a terminal state. 429 queue-full rejections retry under the
// client's RetryPolicy exactly as SubmitWait's do.
func (c *Client) SubmitSweepWait(ctx context.Context, spec server.SweepSpec) (server.SweepStatus, error) {
	var st server.SweepStatus
	var err error
	for attempt := 1; ; attempt++ {
		st = server.SweepStatus{}
		err = c.do(ctx, http.MethodPost, "/v1/sweeps?wait=1", spec, &st)
		if err == nil || !IsQueueFull(err) || attempt >= c.retry.MaxAttempts {
			return st, err
		}
		var ae *APIError
		delay := c.retry.BaseDelay << (attempt - 1)
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			delay = ae.RetryAfter
		}
		if delay > c.retry.MaxDelay {
			delay = c.retry.MaxDelay
		}
		delay = delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// Sweep fetches one sweep's status; withResult includes the grid and
// knee reports once the sweep is done.
func (c *Client) Sweep(ctx context.Context, id string, withResult bool) (server.SweepStatus, error) {
	path := "/v1/sweeps/" + url.PathEscape(id)
	if !withResult {
		path += "?results=0"
	}
	var st server.SweepStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// Sweeps fetches every sweep's status in submission order.
func (c *Client) Sweeps(ctx context.Context) ([]server.SweepStatus, error) {
	var out []server.SweepStatus
	err := c.do(ctx, http.MethodGet, "/v1/sweeps", nil, &out)
	return out, err
}

// CancelSweep requests cancellation of a queued or running sweep.
func (c *Client) CancelSweep(ctx context.Context, id string) (server.SweepStatus, error) {
	var st server.SweepStatus
	err := c.do(ctx, http.MethodDelete, "/v1/sweeps/"+url.PathEscape(id), nil, &st)
	return st, err
}

// WaitSweep polls until the sweep reaches a terminal status and returns
// it with the result.
func (c *Client) WaitSweep(ctx context.Context, id string) (server.SweepStatus, error) {
	for {
		st, err := c.Sweep(ctx, id, true)
		if err != nil {
			return st, err
		}
		switch st.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// SweepStatus decodes the event payload as a sweep status.
func (e Event) SweepStatus() (server.SweepStatus, error) {
	var st server.SweepStatus
	err := json.Unmarshal(e.Data, &st)
	return st, err
}

// SweepProgress decodes the event payload as a sweep progress snapshot.
func (e Event) SweepProgress() (sweep.Progress, error) {
	var p sweep.Progress
	err := json.Unmarshal(e.Data, &p)
	return p, err
}

// SweepEvents streams the sweep's SSE feed with Events' semantics:
// status, progress (sweep.Progress payloads), then done.
func (c *Client) SweepEvents(ctx context.Context, id string, fn func(Event) error) error {
	return c.events(ctx, "/v1/sweeps/"+url.PathEscape(id)+"/events", id, fn)
}

// SweepManifest fetches a sweep's JSONL run manifest and its digest.
func (c *Client) SweepManifest(ctx context.Context, id string) (manifest []byte, digest string, err error) {
	return c.manifest(ctx, "/v1/sweeps/"+url.PathEscape(id)+"/manifest")
}

// Health reports whether the server is accepting work (false while
// draining).
func (c *Client) Health(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK, nil
}

// Metrics fetches the Prometheus text exposition from /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
