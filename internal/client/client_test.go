package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestEventsOversizedPayload: an SSE data line bigger than the default
// bufio.Scanner limit (64 KiB) but under the client's 16 MiB cap is
// delivered intact — the regression that used to kill the stream with
// bufio.ErrTooLong.
func TestEventsOversizedPayload(t *testing.T) {
	payload := strings.Repeat("x", 256*1024) // 4x the default scanner limit
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: progress\ndata: %s\n\n", payload)
		fmt.Fprintf(w, "event: done\ndata: {}\n\n")
	}))
	defer ts.Close()

	var got []Event
	err := New(ts.URL).Events(context.Background(), "c1", func(ev Event) error {
		got = append(got, Event{Name: ev.Name, Data: append([]byte(nil), ev.Data...)})
		return nil
	})
	if err != nil {
		t.Fatalf("events with 256 KiB payload: %v", err)
	}
	if len(got) != 2 || got[0].Name != "progress" || string(got[0].Data) != payload {
		t.Fatalf("oversized event corrupted: %d events, first %q with %d bytes",
			len(got), got[0].Name, len(got[0].Data))
	}
}

// TestEventsTooLargeTyped: a line beyond the 16 MiB cap surfaces as
// ErrEventTooLarge instead of a silent drop or a bare bufio error.
func TestEventsTooLargeTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		// Stream past the cap without building a 17 MiB string per write.
		w.Write([]byte("data: "))
		chunk := []byte(strings.Repeat("y", 1<<20))
		for i := 0; i <= maxEventLine>>20; i++ {
			if _, err := w.Write(chunk); err != nil {
				return // client hung up after hitting its limit
			}
		}
		w.Write([]byte("\n\n"))
	}))
	defer ts.Close()

	err := New(ts.URL).Events(context.Background(), "c1", func(ev Event) error {
		t.Errorf("callback invoked with a truncated event %q", ev.Name)
		return nil
	})
	if !errors.Is(err, ErrEventTooLarge) {
		t.Fatalf("err = %v, want ErrEventTooLarge", err)
	}
}

// TestParseRetryAfter covers both RFC 9110 forms plus the clamps.
func TestParseRetryAfter(t *testing.T) {
	httpDate := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		in       string
		min, max time.Duration
	}{
		{"", 0, 0},
		{"2", 2 * time.Second, 2 * time.Second},
		{"0", 0, 0},
		{"-5", 0, 0},                             // negative seconds clamp to 0
		{"999999", maxRetryAfter, maxRetryAfter}, // absurd seconds clamp to the cap
		{"not-a-hint", 0, 0},                     // unparseable yields no hint
		{httpDate(10 * time.Second), 8 * time.Second, 10 * time.Second},
		{httpDate(-time.Hour), 0, 0}, // past date means retry now
		{httpDate(48 * time.Hour), maxRetryAfter, maxRetryAfter},
	}
	for _, c := range cases {
		got := parseRetryAfter(c.in)
		if got < c.min || got > c.max {
			t.Errorf("parseRetryAfter(%q) = %v, want in [%v, %v]", c.in, got, c.min, c.max)
		}
	}
}

// TestDecodeErrorRetryAfterDate: the HTTP-date form reaches
// APIError.RetryAfter — previously it silently parsed to zero and
// defeated the 429 backoff hint.
func TestDecodeErrorRetryAfterDate(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Submit(context.Background(), server.CampaignSpec{Suite: "cpu2017", Size: "train"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 APIError", err)
	}
	if ae.RetryAfter < 25*time.Second || ae.RetryAfter > 30*time.Second {
		t.Errorf("RetryAfter = %v from an HTTP-date header, want ~30s", ae.RetryAfter)
	}
}

// TestFieldError: a 400 carrying a "field" member surfaces through
// APIError.Field and the FieldError helper, and the field is named in
// the rendered message; errors without one report ok=false.
func TestFieldError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad campaign spec: rate and topology scenarios run at exact fidelity only","field":"fidelity"}`)
	}))
	defer ts.Close()

	_, err := New(ts.URL).Submit(context.Background(), server.CampaignSpec{Suite: "cpu2017", Size: "train"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	field, msg, ok := FieldError(err)
	if !ok || field != "fidelity" {
		t.Errorf("FieldError = (%q, %q, %v), want field %q", field, msg, ok, "fidelity")
	}
	if !strings.Contains(ae.Error(), `"fidelity"`) {
		t.Errorf("rendered error %q does not name the field", ae.Error())
	}

	if f, _, ok := FieldError(errors.New("plain")); ok || f != "" {
		t.Errorf("FieldError(plain error) = (%q, _, %v), want not-ok", f, ok)
	}
	plain := &APIError{Code: http.StatusBadRequest, Message: "no field"}
	if f, _, ok := FieldError(plain); ok || f != "" {
		t.Errorf("FieldError(fieldless APIError) = (%q, _, %v), want not-ok", f, ok)
	}
}

// TestSubmitWaitRetries429: SubmitWait keeps retrying a queue-full
// server under its policy, honoring the Retry-After hint, and succeeds
// once capacity frees up.
func TestSubmitWaitRetries429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // no hint beyond "soon"
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"campaign queue is full"}`)
			return
		}
		fmt.Fprintf(w, `{"id":"c000001","status":"done","pairs":1}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}))
	st, err := c.SubmitWait(context.Background(), server.CampaignSpec{Suite: "cpu2017", Size: "train"})
	if err != nil {
		t.Fatalf("SubmitWait through 429s: %v", err)
	}
	if st.Status != server.StatusDone || calls.Load() != 3 {
		t.Fatalf("status %s after %d calls, want done after 3", st.Status, calls.Load())
	}
}

// TestSubmitWaitRetriesExhausted: a persistently full queue still fails
// once MaxAttempts is spent, with the 429 intact for the caller.
func TestSubmitWaitRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"campaign queue is full"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}))
	_, err := c.SubmitWait(context.Background(), server.CampaignSpec{Suite: "cpu2017", Size: "train"})
	if !IsQueueFull(err) {
		t.Fatalf("err = %v, want queue-full after exhausting retries", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d submissions, want exactly MaxAttempts=3", calls.Load())
	}
}

// TestSubmitWaitRetryRespectsContext: cancelling the context during a
// backoff wait aborts immediately with the context error.
func TestSubmitWaitRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "60") // park the client in a long wait
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"campaign queue is full"}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL) // default policy would wait on the 60s hint (capped at MaxDelay)
	errc := make(chan error, 1)
	go func() {
		_, err := c.SubmitWait(ctx, server.CampaignSpec{Suite: "cpu2017", Size: "train"})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first 429 land and the wait start
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) && !IsQueueFull(err) {
			t.Fatalf("err = %v, want context.Canceled (or the last 429 if cancel raced)", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Log("cancel raced the first response; acceptable but unexpected")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled SubmitWait retry did not return")
	}
}
