// Package pipeline converts event counts from the cache, branch and TLB
// models into execution cycles using first-order interval analysis
// (Eyerman, Eeckhout, Karkhanis & Smith, "A Mechanistic Performance Model
// for Superscalar Out-of-Order Processors", TOCS 2009).
//
// The model treats execution as a background dispatch stream at the
// workload's inherent ILP (capped by the machine width), punctuated by
// miss-event intervals: branch-mispredict pipeline refills, instruction
// fetch stalls, and data-miss stalls whose exposure is reduced by
// memory-level parallelism.
package pipeline

import "fmt"

// Params holds the machine's timing parameters in core clock cycles.
type Params struct {
	// Width is the maximum sustainable dispatch rate (uops/cycle).
	Width float64
	// MispredictPenalty is the front-end refill after a branch mispredict.
	MispredictPenalty float64
	// L2HitLatency is the extra latency of an L1 miss that hits L2.
	L2HitLatency float64
	// L3HitLatency is the extra latency of an L2 miss that hits L3.
	L3HitLatency float64
	// MemLatency is the extra latency of an L3 miss served by DRAM.
	MemLatency float64
	// FetchMissPenalty is the front-end stall for an L1I miss.
	FetchMissPenalty float64
	// WalkPenalty is the cost of a page-table walk (STLB miss).
	WalkPenalty float64
	// ShortMLP divides the exposure of L2/L3-hit latencies: out-of-order
	// execution overlaps most short misses.
	ShortMLP float64
}

// Haswell returns timing parameters approximating the paper's Xeon
// E5-2650L v3 at 1.8 GHz.
func Haswell() Params {
	return Params{
		Width:             4,
		MispredictPenalty: 12,
		L2HitLatency:      12,
		L3HitLatency:      36,
		MemLatency:        230,
		FetchMissPenalty:  3,
		WalkPenalty:       30,
		ShortMLP:          6,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Width <= 0 {
		return fmt.Errorf("pipeline: non-positive width %v", p.Width)
	}
	if p.ShortMLP <= 0 {
		return fmt.Errorf("pipeline: non-positive short MLP %v", p.ShortMLP)
	}
	return nil
}

// Events are the miss-event counts accumulated over a simulated
// instruction window.
type Events struct {
	// Instructions is the number of instructions retired in the window.
	Instructions uint64
	// Mispredicts counts branch mispredicts.
	Mispredicts uint64
	// L2Hits counts demand data accesses that missed L1 and hit L2.
	L2Hits uint64
	// L3Hits counts demand data accesses that missed L2 and hit L3.
	L3Hits uint64
	// MemAccesses counts demand data accesses served by DRAM.
	MemAccesses uint64
	// FetchMisses counts L1I misses.
	FetchMisses uint64
	// Walks counts page-table walks.
	Walks uint64
}

// Workload holds the application-inherent parameters of the model.
type Workload struct {
	// ILP is the workload's inherent instructions-per-cycle when no miss
	// events occur (dependence-chain limited dispatch rate).
	ILP float64
	// MLP is the average number of overlapping DRAM accesses; it divides
	// the exposed DRAM latency.
	MLP float64
}

// Breakdown is a CPI stack: cycles attributed to each component.
type Breakdown struct {
	Base, Mispredict, L2, L3, Memory, Fetch, TLB float64
}

// Total returns the summed cycle count.
func (b Breakdown) Total() float64 {
	return b.Base + b.Mispredict + b.L2 + b.L3 + b.Memory + b.Fetch + b.TLB
}

// Cycles evaluates the interval model, returning the cycle breakdown for
// the event window. The workload's ILP is capped at the machine width and
// MLP is floored at 1.
func Cycles(p Params, w Workload, e Events) Breakdown {
	ilp := w.ILP
	if ilp > p.Width {
		ilp = p.Width
	}
	if ilp <= 0 {
		ilp = 0.1
	}
	mlp := w.MLP
	if mlp < 1 {
		mlp = 1
	}
	return Breakdown{
		Base:       float64(e.Instructions) / ilp,
		Mispredict: float64(e.Mispredicts) * p.MispredictPenalty,
		L2:         float64(e.L2Hits) * p.L2HitLatency / p.ShortMLP,
		L3:         float64(e.L3Hits) * p.L3HitLatency / p.ShortMLP,
		Memory:     float64(e.MemAccesses) * p.MemLatency / mlp,
		Fetch:      float64(e.FetchMisses) * p.FetchMissPenalty,
		TLB:        float64(e.Walks) * p.WalkPenalty,
	}
}

// StallPerInstruction returns the expected non-base stall cycles per
// instruction implied by per-instruction event rates. The profile
// calibrator uses this closed form to solve for the ILP that lands a
// workload on its target IPC.
func StallPerInstruction(p Params, w Workload, perInstr Events) float64 {
	e := perInstr
	e.Instructions = 0
	b := Cycles(p, w, e)
	return b.Total()
}

// SolveILP returns the workload ILP that makes the interval model produce
// targetIPC given the expected per-instruction stall cycles. When the
// stalls alone already exceed the cycle budget (target unreachable), it
// returns the machine width and false.
func SolveILP(p Params, targetIPC, stallPerInstr float64) (float64, bool) {
	if targetIPC <= 0 {
		return 0.1, false
	}
	budget := 1/targetIPC - stallPerInstr
	if budget <= 1/p.Width {
		// Even dispatching at full width cannot reach the target.
		return p.Width, false
	}
	return 1 / budget, true
}
