package pipeline

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHaswellValid(t *testing.T) {
	if err := Haswell().Validate(); err != nil {
		t.Fatalf("Haswell params invalid: %v", err)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := Haswell()
	p.Width = 0
	if p.Validate() == nil {
		t.Error("zero width accepted")
	}
	p = Haswell()
	p.ShortMLP = -1
	if p.Validate() == nil {
		t.Error("negative ShortMLP accepted")
	}
}

func TestNoEventsPureILP(t *testing.T) {
	p := Haswell()
	e := Events{Instructions: 1000}
	b := Cycles(p, Workload{ILP: 2, MLP: 1}, e)
	if b.Total() != 500 {
		t.Errorf("cycles = %v, want 500 at ILP 2", b.Total())
	}
	if b.Mispredict+b.L2+b.L3+b.Memory+b.Fetch+b.TLB != 0 {
		t.Error("non-base components nonzero without events")
	}
}

func TestILPCappedAtWidth(t *testing.T) {
	p := Haswell()
	e := Events{Instructions: 1000}
	b := Cycles(p, Workload{ILP: 100, MLP: 1}, e)
	if got := b.Total(); got != 250 {
		t.Errorf("cycles = %v, want 250 (width-capped ILP 4)", got)
	}
}

func TestNonPositiveILPFloored(t *testing.T) {
	b := Cycles(Haswell(), Workload{ILP: 0, MLP: 1}, Events{Instructions: 100})
	if math.IsInf(b.Base, 0) || math.IsNaN(b.Base) || b.Base <= 0 {
		t.Errorf("base = %v with zero ILP, want finite positive", b.Base)
	}
}

func TestMLPReducesMemoryStall(t *testing.T) {
	p := Haswell()
	e := Events{Instructions: 1000, MemAccesses: 100}
	noMLP := Cycles(p, Workload{ILP: 2, MLP: 1}, e)
	withMLP := Cycles(p, Workload{ILP: 2, MLP: 4}, e)
	if withMLP.Memory*4 != noMLP.Memory {
		t.Errorf("MLP 4 memory stall = %v, want quarter of %v", withMLP.Memory, noMLP.Memory)
	}
}

func TestMLPFlooredAtOne(t *testing.T) {
	p := Haswell()
	e := Events{Instructions: 100, MemAccesses: 10}
	a := Cycles(p, Workload{ILP: 2, MLP: 0.25}, e)
	b := Cycles(p, Workload{ILP: 2, MLP: 1}, e)
	if a.Memory != b.Memory {
		t.Errorf("MLP < 1 not floored: %v vs %v", a.Memory, b.Memory)
	}
}

func TestEventCosts(t *testing.T) {
	p := Params{Width: 4, MispredictPenalty: 10, L2HitLatency: 6, L3HitLatency: 30,
		MemLatency: 200, FetchMissPenalty: 8, WalkPenalty: 25, ShortMLP: 2}
	e := Events{Instructions: 400, Mispredicts: 3, L2Hits: 4, L3Hits: 2, MemAccesses: 1, FetchMisses: 5, Walks: 2}
	b := Cycles(p, Workload{ILP: 4, MLP: 2}, e)
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("base", b.Base, 100)
	check("mispredict", b.Mispredict, 30)
	check("l2", b.L2, 12)
	check("l3", b.L3, 30)
	check("memory", b.Memory, 100)
	check("fetch", b.Fetch, 40)
	check("tlb", b.TLB, 50)
	check("total", b.Total(), 362)
}

func TestStallPerInstructionExcludesBase(t *testing.T) {
	p := Haswell()
	per := Events{Instructions: 1, Mispredicts: 1}
	got := StallPerInstruction(p, Workload{ILP: 2, MLP: 1}, per)
	if got != p.MispredictPenalty {
		t.Errorf("stall = %v, want %v", got, p.MispredictPenalty)
	}
}

// TestSolveILPRoundTrip: for reachable targets, plugging the solved ILP
// back into the model reproduces the target IPC.
func TestSolveILPRoundTrip(t *testing.T) {
	p := Haswell()
	f := func(rawIPC, rawStall uint8) bool {
		target := 0.1 + float64(rawIPC%30)/10 // 0.1 .. 3.0
		stall := float64(rawStall%20) / 100   // 0 .. 0.19 cycles/instr
		ilp, ok := SolveILP(p, target, stall)
		if !ok {
			return true // unreachable targets are allowed to fail
		}
		if ilp > p.Width {
			return true // width-capped solution: model cannot reach target
		}
		// Reconstruct: cycles/instr = 1/ilp + stall must equal 1/target.
		got := 1 / (1/ilp + stall)
		return math.Abs(got-target) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSolveILPUnreachable(t *testing.T) {
	p := Haswell()
	// Target IPC 4 with huge stalls cannot be reached.
	ilp, ok := SolveILP(p, 4, 10)
	if ok {
		t.Error("unreachable target reported reachable")
	}
	if ilp != p.Width {
		t.Errorf("unreachable ILP = %v, want width %v", ilp, p.Width)
	}
}

func TestSolveILPZeroTarget(t *testing.T) {
	if _, ok := SolveILP(Haswell(), 0, 0); ok {
		t.Error("zero target reported reachable")
	}
}
