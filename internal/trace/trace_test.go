package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindALU: "alu", KindFP: "fp", KindLoad: "load",
		KindStore: "store", KindBranch: "branch",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind string")
	}
	if NumKinds != 5 {
		t.Errorf("NumKinds = %d", NumKinds)
	}
}

func TestBranchClassString(t *testing.T) {
	want := map[BranchClass]string{
		BranchNone:         "none",
		BranchConditional:  "conditional",
		BranchDirectJump:   "direct_jmp",
		BranchDirectCall:   "direct_near_call",
		BranchIndirectJump: "indirect_jump_non_call_ret",
		BranchReturn:       "indirect_near_return",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("BranchClass(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if NumBranchClasses != 5 {
		t.Errorf("NumBranchClasses = %d", NumBranchClasses)
	}
}

func TestIsMem(t *testing.T) {
	cases := map[Kind]bool{
		KindLoad: true, KindStore: true,
		KindALU: false, KindFP: false, KindBranch: false,
	}
	for k, want := range cases {
		u := Uop{Kind: k}
		if u.IsMem() != want {
			t.Errorf("IsMem(%v) = %v", k, u.IsMem())
		}
	}
}

func TestSliceSource(t *testing.T) {
	uops := []Uop{
		{PC: 1, Kind: KindALU},
		{PC: 2, Kind: KindLoad, Addr: 0x100},
	}
	s := &SliceSource{Uops: uops}
	var u Uop
	for i := range uops {
		if !s.Next(&u) {
			t.Fatalf("stream ended at %d", i)
		}
		if u != uops[i] {
			t.Errorf("uop %d = %+v", i, u)
		}
	}
	if s.Next(&u) {
		t.Error("stream did not end")
	}
	s.Reset()
	if !s.Next(&u) || u.PC != 1 {
		t.Error("Reset did not rewind")
	}
}

func TestLimit(t *testing.T) {
	inner := &SliceSource{Uops: make([]Uop, 10)}
	l := &Limit{Src: inner, N: 3}
	var u Uop
	n := 0
	for l.Next(&u) {
		n++
	}
	if n != 3 {
		t.Errorf("limit passed %d uops, want 3", n)
	}
	// Limit also stops when the inner source ends first.
	short := &Limit{Src: &SliceSource{Uops: make([]Uop, 2)}, N: 5}
	n = 0
	for short.Next(&u) {
		n++
	}
	if n != 2 {
		t.Errorf("limit over short source passed %d, want 2", n)
	}
}
