package trace

import (
	"reflect"
	"testing"
)

// patternUops builds a deterministic mixed stream: every 5th record a
// branch (alternating classes), every 3rd a load, the rest ALU.
func patternUops(n int) []Uop {
	uops := make([]Uop, n)
	for i := range uops {
		u := &uops[i]
		u.PC = 0x1000 + uint64(i)*4
		switch {
		case i%5 == 4:
			u.Kind = KindBranch
			u.Taken = i%2 == 0
			if i%10 == 4 {
				u.Branch = BranchConditional
				u.Target = u.PC - 64
			} else {
				u.Branch = BranchDirectJump
				u.Target = u.PC + 128
			}
		case i%3 == 0:
			u.Kind = KindLoad
			u.Addr = 0x10000 + uint64(i%97)*64
		default:
			u.Kind = KindALU
		}
	}
	return uops
}

// nextOnly exposes only Next, hiding every batch/skip capability.
type nextOnly struct{ src Source }

func (s nextOnly) Next(u *Uop) bool { return s.src.Next(u) }

// batchOnly exposes only NextBatch, hiding the skip capabilities.
type batchOnly struct{ src BatchSource }

func (s batchOnly) NextBatch(buf []Uop) int { return s.src.NextBatch(buf) }

// drainAll collects every remaining record of src.
func drainAll(src BatchSource) []Uop {
	var out []Uop
	buf := make([]Uop, 64)
	for {
		n := src.NextBatch(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// TestSkipRecordsFallbackEquivalence: SkipRecords through a native
// Skipper and through the batch-drain fallback must leave the stream at
// the same position, report the same count, and clamp identically at
// exhaustion.
func TestSkipRecordsFallbackEquivalence(t *testing.T) {
	const n = 1000
	uops := patternUops(n)
	buf := make([]Uop, 128)
	for _, skip := range []uint64{0, 1, 127, 128, 129, 500, 999, 1000, 1500} {
		native := &SliceSource{Uops: uops}
		fallback := batchOnly{&SliceSource{Uops: uops}}
		gotN := SkipRecords(native, buf, skip)
		gotF := SkipRecords(fallback, buf, skip)
		want := skip
		if want > n {
			want = n
		}
		if gotN != want || gotF != want {
			t.Errorf("skip %d: native %d, fallback %d, want %d", skip, gotN, gotF, want)
		}
		restN, restF := drainAll(native), drainAll(fallback)
		if !reflect.DeepEqual(restN, restF) {
			t.Errorf("skip %d: stream positions diverge (native %d records left, fallback %d)",
				skip, len(restN), len(restF))
		}
	}
}

// TestSkipRecordsWarmFallbackEquivalence: the warming variant must
// observe exactly the branch records of the skipped stretch, in order,
// whether natively or through the drain fallback, and a nil observe
// must behave exactly like SkipRecords.
func TestSkipRecordsWarmFallbackEquivalence(t *testing.T) {
	const n = 1000
	uops := patternUops(n)
	buf := make([]Uop, 128)
	var wantBranches []Uop
	for i := 0; i < 700; i++ {
		if uops[i].Kind == KindBranch {
			wantBranches = append(wantBranches, uops[i])
		}
	}
	collect := func(dst *[]Uop) func(*Uop) {
		return func(u *Uop) { *dst = append(*dst, *u) }
	}
	var native, fallback []Uop
	srcN := &SliceSource{Uops: uops}
	srcF := batchOnly{&SliceSource{Uops: uops}}
	if got := SkipRecordsWarm(srcN, buf, 700, collect(&native)); got != 700 {
		t.Fatalf("native warm skip = %d, want 700", got)
	}
	if got := SkipRecordsWarm(srcF, buf, 700, collect(&fallback)); got != 700 {
		t.Fatalf("fallback warm skip = %d, want 700", got)
	}
	if !reflect.DeepEqual(native, wantBranches) {
		t.Errorf("native observed %d branches, want %d (or wrong records)", len(native), len(wantBranches))
	}
	if !reflect.DeepEqual(fallback, wantBranches) {
		t.Errorf("fallback observed %d branches, want %d (or wrong records)", len(fallback), len(wantBranches))
	}
	if !reflect.DeepEqual(drainAll(srcN), drainAll(srcF)) {
		t.Error("stream positions diverge after warm skip")
	}

	// nil observe degrades to a cold skip.
	srcNil := &SliceSource{Uops: uops}
	if got := SkipRecordsWarm(srcNil, buf, 700, nil); got != 700 {
		t.Fatalf("nil-observe warm skip = %d, want 700", got)
	}
	if rest := drainAll(srcNil); len(rest) != n-700 {
		t.Errorf("nil-observe left %d records, want %d", len(rest), n-700)
	}
}

// TestLimitSkipWarm: Limit clamps skips to the remaining budget, counts
// them against it, and delegates to the wrapped source's capabilities —
// or drains record-by-record when there are none.
func TestLimitSkipWarm(t *testing.T) {
	uops := patternUops(100)
	for _, wrap := range []struct {
		name string
		mk   func() Source
	}{
		{"native", func() Source { return &SliceSource{Uops: uops} }},
		{"drain", func() Source { return nextOnly{&SliceSource{Uops: uops}} }},
	} {
		t.Run(wrap.name, func(t *testing.T) {
			l := &Limit{Src: wrap.mk(), N: 50}
			var branches []Uop
			if got := l.SkipWarm(30, func(u *Uop) { branches = append(branches, *u) }); got != 30 {
				t.Fatalf("SkipWarm(30) = %d", got)
			}
			var wantBr int
			for i := 0; i < 30; i++ {
				if uops[i].Kind == KindBranch {
					wantBr++
				}
			}
			if len(branches) != wantBr {
				t.Errorf("observed %d branches, want %d", len(branches), wantBr)
			}
			var u Uop
			if !l.Next(&u) || u != uops[30] {
				t.Errorf("record after skip = %+v, want %+v", u, uops[30])
			}
			// 31 consumed; the budget has 19 left, so a long skip clamps.
			if got := l.Skip(100); got != 19 {
				t.Errorf("Skip past budget = %d, want 19", got)
			}
			if l.Next(&u) {
				t.Error("Limit produced a record past its budget")
			}
		})
	}
}

// TestSliceSourceSkipWarmBounds: skipping past the end clamps and
// observes only the records that exist.
func TestSliceSourceSkipWarmBounds(t *testing.T) {
	uops := patternUops(10)
	s := &SliceSource{Uops: uops}
	count := 0
	if got := s.SkipWarm(100, func(*Uop) { count++ }); got != 10 {
		t.Errorf("SkipWarm past end = %d, want 10", got)
	}
	var wantBr int
	for i := range uops {
		if uops[i].Kind == KindBranch {
			wantBr++
		}
	}
	if count != wantBr {
		t.Errorf("observed %d branches, want %d", count, wantBr)
	}
	var u Uop
	if s.Next(&u) {
		t.Error("exhausted source produced a record")
	}
}

// endlessSource is an allocation-free unbounded Source for the
// steady-state allocation regression.
type endlessSource struct{ i uint64 }

func (s *endlessSource) Next(u *Uop) bool {
	*u = Uop{PC: 0x1000 + s.i*4, Kind: KindALU}
	if s.i%7 == 3 {
		u.Kind = KindBranch
		u.Branch = BranchConditional
		u.Taken = true
		u.Target = u.PC - 64
	}
	s.i++
	return true
}

// TestSourceBatcherSkipAllocs pins the Source→BatchSource adapter's
// skip fallbacks at zero steady-state allocations: the drain buffer is
// allocated once on first use and reused by every subsequent cold and
// warm skip.
func TestSourceBatcherSkipAllocs(t *testing.T) {
	b := AsBatch(nextOnly{&endlessSource{}})
	skipper, ok := b.(interface {
		Skipper
		WarmSkipper
	})
	if !ok {
		t.Fatal("sourceBatcher lost its skip capabilities")
	}
	warmed := 0
	observe := func(*Uop) { warmed++ }
	skipper.Skip(scratchLen * 4) // first call allocates the scratch buffer
	if allocs := testing.AllocsPerRun(10, func() {
		skipper.Skip(scratchLen * 4)
	}); allocs != 0 {
		t.Errorf("steady-state Skip allocates %.0f objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		skipper.SkipWarm(scratchLen*4, observe)
	}); allocs != 0 {
		t.Errorf("steady-state SkipWarm allocates %.0f objects per call, want 0", allocs)
	}
	if warmed == 0 {
		t.Error("SkipWarm observed no branches")
	}
}
