// Package trace defines the dynamic instruction stream representation
// exchanged between the synthetic workload generators and the
// microarchitecture simulator.
//
// A trace is a sequence of micro-operation records. The simulator consumes
// records one at a time through the Source interface, so traces are never
// materialized in memory; generators produce them lazily.
package trace

import "fmt"

// Kind classifies a micro-operation.
type Kind uint8

const (
	// KindALU is an integer arithmetic/logic operation.
	KindALU Kind = iota
	// KindFP is a floating-point operation.
	KindFP
	// KindLoad is a memory load micro-operation.
	KindLoad
	// KindStore is a memory store micro-operation.
	KindStore
	// KindBranch is a control-transfer instruction; see BranchClass.
	KindBranch
	numKinds
)

// String returns the lowercase mnemonic name of the kind.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindFP:
		return "fp"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NumKinds is the number of distinct micro-operation kinds.
const NumKinds = int(numKinds)

// BranchClass classifies branch instructions the same way the paper's
// Haswell counters do (br_inst_exec.all_conditional, .all_direct_jmp,
// .all_direct_near_call, .all_indirect_jump_non_call_ret,
// .all_indirect_near_return).
type BranchClass uint8

const (
	// BranchNone marks a non-branch record.
	BranchNone BranchClass = iota
	// BranchConditional is a direction-predicted conditional branch.
	BranchConditional
	// BranchDirectJump is an unconditional direct jump.
	BranchDirectJump
	// BranchDirectCall is a direct near call (pushes a return address).
	BranchDirectCall
	// BranchIndirectJump is an indirect jump that is neither call nor
	// return (e.g. a switch table).
	BranchIndirectJump
	// BranchReturn is an indirect near return (pops the return address).
	BranchReturn
	numBranchClasses
)

// NumBranchClasses counts the real branch classes (excluding BranchNone).
const NumBranchClasses = int(numBranchClasses) - 1

// String returns the counter-style name of the class.
func (c BranchClass) String() string {
	switch c {
	case BranchNone:
		return "none"
	case BranchConditional:
		return "conditional"
	case BranchDirectJump:
		return "direct_jmp"
	case BranchDirectCall:
		return "direct_near_call"
	case BranchIndirectJump:
		return "indirect_jump_non_call_ret"
	case BranchReturn:
		return "indirect_near_return"
	default:
		return fmt.Sprintf("BranchClass(%d)", uint8(c))
	}
}

// Uop is one dynamic micro-operation record. The word-sized fields lead
// so the struct packs into 32 bytes — two records per cache line, never
// straddling one; the simulator streams millions of these through batch
// buffers, and both the padding and the line alignment are measurable
// memory bandwidth there.
type Uop struct {
	// PC is the virtual address of the instruction.
	PC uint64
	// Addr is the virtual data address for loads and stores.
	Addr uint64
	// Target is the resolved target address of a taken branch.
	Target uint64
	// Kind classifies the micro-operation.
	Kind Kind
	// Branch is the branch class for KindBranch records, BranchNone
	// otherwise.
	Branch BranchClass
	// Taken reports the resolved direction of a conditional branch; it is
	// true for all unconditional control transfers.
	Taken bool
}

// IsMem reports whether the uop references data memory.
func (u *Uop) IsMem() bool { return u.Kind == KindLoad || u.Kind == KindStore }

// Source produces a dynamic uop stream. Next fills the provided record and
// reports whether a record was produced; it returns false when the stream
// is exhausted. Implementations are not safe for concurrent use.
type Source interface {
	Next(u *Uop) bool
}

// BatchSource produces uop records in batches, the simulator's preferred
// interface: one virtual dispatch amortizes over an entire buffer instead
// of being paid per record.
//
// NextBatch fills a prefix of buf and returns the number of records
// written. It returns 0 only when the stream is exhausted (an empty buf
// also yields 0). A batch producer must emit exactly the same record
// sequence as repeated Next calls, independent of how consumers slice
// their requests — the machine equivalence tests enforce this for every
// implementation in the tree.
type BatchSource interface {
	NextBatch(buf []Uop) int
}

// Skipper is an optional capability on Source/BatchSource
// implementations: fast-forwarding the stream without materializing
// records. Skip advances the stream by up to n records and returns how
// many were actually skipped; fewer than n means the stream is
// exhausted. Skipping must be stream-equivalent: after Skip(n) the next
// record produced is exactly the record that n discarded Next calls
// would have exposed, including every piece of hidden generator state
// (RNG streams, cursors, stacks). The sampled-simulation tests enforce
// this for every implementation in the tree.
type Skipper interface {
	Skip(n uint64) uint64
}

// WarmSkipper is the warming variant of Skipper: SkipWarm fast-forwards
// exactly like Skip while reporting every branch record inside the
// skipped stretch to observe, each reconstructed bit-identically to the
// record Next would have emitted. Non-branch records are not reported
// (and, in native implementations, never materialized) — that asymmetry
// is the point: branch-predictor state is the one piece of simulator
// state that is both large and phase-sensitive, so sampled simulation
// keeps it functionally warm across fast-forward gaps at a small
// surcharge over a cold skip, while cache recency rides on frozen state
// plus the per-window warmup. A nil observe must behave exactly like
// Skip.
type WarmSkipper interface {
	Skipper
	SkipWarm(n uint64, observe func(*Uop)) uint64
}

// SkipRecords fast-forwards src by n records: through its native Skip
// when it implements Skipper, otherwise by draining batches into buf and
// discarding them. Callers own buf (typically their existing per-run
// batch buffer), so the fallback allocates nothing. It returns the
// number of records skipped; fewer than n means exhaustion.
func SkipRecords(src BatchSource, buf []Uop, n uint64) uint64 {
	if s, ok := src.(Skipper); ok {
		return s.Skip(n)
	}
	done := uint64(0)
	for done < n {
		want := n - done
		if want > uint64(len(buf)) {
			want = uint64(len(buf))
		}
		got := src.NextBatch(buf[:want])
		if got == 0 {
			break
		}
		done += uint64(got)
	}
	return done
}

// SkipRecordsWarm is SkipRecords with branch warming: branch records in
// the skipped stretch are reported to observe. Sources implementing
// WarmSkipper do this natively; anything else falls back to draining
// batches into buf and observing the branch records among them — the
// same stream advance and the same observations, at materialization
// cost. A nil observe degrades to SkipRecords.
func SkipRecordsWarm(src BatchSource, buf []Uop, n uint64, observe func(*Uop)) uint64 {
	if observe == nil {
		return SkipRecords(src, buf, n)
	}
	if ws, ok := src.(WarmSkipper); ok {
		return ws.SkipWarm(n, observe)
	}
	done := uint64(0)
	for done < n {
		want := n - done
		if want > uint64(len(buf)) {
			want = uint64(len(buf))
		}
		got := src.NextBatch(buf[:want])
		if got == 0 {
			break
		}
		for i := range buf[:got] {
			if buf[i].Kind == KindBranch {
				observe(&buf[i])
			}
		}
		done += uint64(got)
	}
	return done
}

// AsBatch adapts src to the batch interface. Sources that natively
// implement BatchSource are returned unchanged; others are wrapped in an
// adapter that pulls records one at a time, preserving exact stream
// semantics at per-record cost.
func AsBatch(src Source) BatchSource {
	if b, ok := src.(BatchSource); ok {
		return b
	}
	return &sourceBatcher{src: src}
}

// scratchLen is the sourceBatcher's fallback drain-buffer length: big
// enough to amortize the per-batch loop, small enough (16 KB) to stay
// resident while a skip drains millions of records through it.
const scratchLen = 512

// sourceBatcher lifts a per-record Source into a BatchSource.
type sourceBatcher struct {
	src Source
	// scratch is the Skip fallback's drain buffer, allocated once per
	// adapter on first use and reused for every subsequent call (the
	// allocation-regression test pins this at zero steady-state allocs).
	scratch []Uop
}

// NextBatch implements BatchSource.
func (b *sourceBatcher) NextBatch(buf []Uop) int {
	n := 0
	for n < len(buf) && b.src.Next(&buf[n]) {
		n++
	}
	return n
}

// Skip implements Skipper: natively when the wrapped source can skip,
// otherwise by draining into the adapter's reusable scratch buffer.
func (b *sourceBatcher) Skip(n uint64) uint64 {
	if s, ok := b.src.(Skipper); ok {
		return s.Skip(n)
	}
	if b.scratch == nil {
		b.scratch = make([]Uop, scratchLen)
	}
	done := uint64(0)
	for done < n {
		want := n - done
		if want > scratchLen {
			want = scratchLen
		}
		got := b.NextBatch(b.scratch[:want])
		if got == 0 {
			break
		}
		done += uint64(got)
	}
	return done
}

// SkipWarm implements WarmSkipper: natively when the wrapped source can
// warm-skip, otherwise by draining into the adapter's reusable scratch
// buffer and observing the branch records among the drained stretch.
func (b *sourceBatcher) SkipWarm(n uint64, observe func(*Uop)) uint64 {
	if observe == nil {
		return b.Skip(n)
	}
	if ws, ok := b.src.(WarmSkipper); ok {
		return ws.SkipWarm(n, observe)
	}
	if b.scratch == nil {
		b.scratch = make([]Uop, scratchLen)
	}
	return SkipRecordsWarm(noSkipSource{b}, b.scratch, n, observe)
}

// noSkipSource hides a batcher's skip capabilities so SkipRecordsWarm's
// drain fallback can be reused without recursing into SkipWarm.
type noSkipSource struct{ b *sourceBatcher }

func (s noSkipSource) NextBatch(buf []Uop) int { return s.b.NextBatch(buf) }

// SliceSource adapts a materialized uop slice to the Source interface.
// It is primarily useful in tests.
type SliceSource struct {
	Uops []Uop
	pos  int
}

// Next implements Source.
func (s *SliceSource) Next(u *Uop) bool {
	if s.pos >= len(s.Uops) {
		return false
	}
	*u = s.Uops[s.pos]
	s.pos++
	return true
}

// NextBatch implements BatchSource by copying directly from the slice.
func (s *SliceSource) NextBatch(buf []Uop) int {
	n := copy(buf, s.Uops[s.pos:])
	s.pos += n
	return n
}

// Skip implements Skipper by advancing the cursor.
func (s *SliceSource) Skip(n uint64) uint64 {
	rem := uint64(len(s.Uops) - s.pos)
	if n > rem {
		n = rem
	}
	s.pos += int(n)
	return n
}

// SkipWarm implements WarmSkipper: the records already exist, so the
// skipped stretch is walked in place for its branch records.
func (s *SliceSource) SkipWarm(n uint64, observe func(*Uop)) uint64 {
	if observe == nil {
		return s.Skip(n)
	}
	rem := uint64(len(s.Uops) - s.pos)
	if n > rem {
		n = rem
	}
	skipped := s.Uops[s.pos : s.pos+int(n)]
	for i := range skipped {
		if skipped[i].Kind == KindBranch {
			observe(&skipped[i])
		}
	}
	s.pos += int(n)
	return n
}

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// Limit wraps a Source and stops after n records.
type Limit struct {
	Src Source
	N   uint64

	seen uint64
}

// Next implements Source.
func (l *Limit) Next(u *Uop) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Src.Next(u) {
		return false
	}
	l.seen++
	return true
}

// NextBatch implements BatchSource, clamping the request to the remaining
// budget and delegating to the wrapped source's batch path when it has
// one.
func (l *Limit) NextBatch(buf []Uop) int {
	if l.seen >= l.N {
		return 0
	}
	if rem := l.N - l.seen; uint64(len(buf)) > rem {
		buf = buf[:rem]
	}
	var n int
	if b, ok := l.Src.(BatchSource); ok {
		n = b.NextBatch(buf)
	} else {
		for n < len(buf) && l.Src.Next(&buf[n]) {
			n++
		}
	}
	l.seen += uint64(n)
	return n
}

// Skip implements Skipper, clamping to the remaining budget and using
// the wrapped source's Skip when it has one. Without one the records are
// drained one at a time — Limit wraps arbitrary Sources, so there is no
// buffer to reuse and none is allocated.
func (l *Limit) Skip(n uint64) uint64 {
	if l.seen >= l.N {
		return 0
	}
	if rem := l.N - l.seen; n > rem {
		n = rem
	}
	var done uint64
	if s, ok := l.Src.(Skipper); ok {
		done = s.Skip(n)
	} else {
		var u Uop
		for done < n && l.Src.Next(&u) {
			done++
		}
	}
	l.seen += done
	return done
}

// SkipWarm implements WarmSkipper, clamping to the remaining budget and
// delegating to the wrapped source's warm skip when it has one; without
// one the records are drained one at a time and branch records observed.
func (l *Limit) SkipWarm(n uint64, observe func(*Uop)) uint64 {
	if observe == nil {
		return l.Skip(n)
	}
	if l.seen >= l.N {
		return 0
	}
	if rem := l.N - l.seen; n > rem {
		n = rem
	}
	var done uint64
	if ws, ok := l.Src.(WarmSkipper); ok {
		done = ws.SkipWarm(n, observe)
	} else {
		var u Uop
		for done < n && l.Src.Next(&u) {
			if u.Kind == KindBranch {
				observe(&u)
			}
			done++
		}
	}
	l.seen += done
	return done
}
