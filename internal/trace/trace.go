// Package trace defines the dynamic instruction stream representation
// exchanged between the synthetic workload generators and the
// microarchitecture simulator.
//
// A trace is a sequence of micro-operation records. The simulator consumes
// records one at a time through the Source interface, so traces are never
// materialized in memory; generators produce them lazily.
package trace

import "fmt"

// Kind classifies a micro-operation.
type Kind uint8

const (
	// KindALU is an integer arithmetic/logic operation.
	KindALU Kind = iota
	// KindFP is a floating-point operation.
	KindFP
	// KindLoad is a memory load micro-operation.
	KindLoad
	// KindStore is a memory store micro-operation.
	KindStore
	// KindBranch is a control-transfer instruction; see BranchClass.
	KindBranch
	numKinds
)

// String returns the lowercase mnemonic name of the kind.
func (k Kind) String() string {
	switch k {
	case KindALU:
		return "alu"
	case KindFP:
		return "fp"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NumKinds is the number of distinct micro-operation kinds.
const NumKinds = int(numKinds)

// BranchClass classifies branch instructions the same way the paper's
// Haswell counters do (br_inst_exec.all_conditional, .all_direct_jmp,
// .all_direct_near_call, .all_indirect_jump_non_call_ret,
// .all_indirect_near_return).
type BranchClass uint8

const (
	// BranchNone marks a non-branch record.
	BranchNone BranchClass = iota
	// BranchConditional is a direction-predicted conditional branch.
	BranchConditional
	// BranchDirectJump is an unconditional direct jump.
	BranchDirectJump
	// BranchDirectCall is a direct near call (pushes a return address).
	BranchDirectCall
	// BranchIndirectJump is an indirect jump that is neither call nor
	// return (e.g. a switch table).
	BranchIndirectJump
	// BranchReturn is an indirect near return (pops the return address).
	BranchReturn
	numBranchClasses
)

// NumBranchClasses counts the real branch classes (excluding BranchNone).
const NumBranchClasses = int(numBranchClasses) - 1

// String returns the counter-style name of the class.
func (c BranchClass) String() string {
	switch c {
	case BranchNone:
		return "none"
	case BranchConditional:
		return "conditional"
	case BranchDirectJump:
		return "direct_jmp"
	case BranchDirectCall:
		return "direct_near_call"
	case BranchIndirectJump:
		return "indirect_jump_non_call_ret"
	case BranchReturn:
		return "indirect_near_return"
	default:
		return fmt.Sprintf("BranchClass(%d)", uint8(c))
	}
}

// Uop is one dynamic micro-operation record. The word-sized fields lead
// so the struct packs into 32 bytes — two records per cache line, never
// straddling one; the simulator streams millions of these through batch
// buffers, and both the padding and the line alignment are measurable
// memory bandwidth there.
type Uop struct {
	// PC is the virtual address of the instruction.
	PC uint64
	// Addr is the virtual data address for loads and stores.
	Addr uint64
	// Target is the resolved target address of a taken branch.
	Target uint64
	// Kind classifies the micro-operation.
	Kind Kind
	// Branch is the branch class for KindBranch records, BranchNone
	// otherwise.
	Branch BranchClass
	// Taken reports the resolved direction of a conditional branch; it is
	// true for all unconditional control transfers.
	Taken bool
}

// IsMem reports whether the uop references data memory.
func (u *Uop) IsMem() bool { return u.Kind == KindLoad || u.Kind == KindStore }

// Source produces a dynamic uop stream. Next fills the provided record and
// reports whether a record was produced; it returns false when the stream
// is exhausted. Implementations are not safe for concurrent use.
type Source interface {
	Next(u *Uop) bool
}

// BatchSource produces uop records in batches, the simulator's preferred
// interface: one virtual dispatch amortizes over an entire buffer instead
// of being paid per record.
//
// NextBatch fills a prefix of buf and returns the number of records
// written. It returns 0 only when the stream is exhausted (an empty buf
// also yields 0). A batch producer must emit exactly the same record
// sequence as repeated Next calls, independent of how consumers slice
// their requests — the machine equivalence tests enforce this for every
// implementation in the tree.
type BatchSource interface {
	NextBatch(buf []Uop) int
}

// AsBatch adapts src to the batch interface. Sources that natively
// implement BatchSource are returned unchanged; others are wrapped in an
// adapter that pulls records one at a time, preserving exact stream
// semantics at per-record cost.
func AsBatch(src Source) BatchSource {
	if b, ok := src.(BatchSource); ok {
		return b
	}
	return &sourceBatcher{src: src}
}

// sourceBatcher lifts a per-record Source into a BatchSource.
type sourceBatcher struct {
	src Source
}

// NextBatch implements BatchSource.
func (b *sourceBatcher) NextBatch(buf []Uop) int {
	n := 0
	for n < len(buf) && b.src.Next(&buf[n]) {
		n++
	}
	return n
}

// SliceSource adapts a materialized uop slice to the Source interface.
// It is primarily useful in tests.
type SliceSource struct {
	Uops []Uop
	pos  int
}

// Next implements Source.
func (s *SliceSource) Next(u *Uop) bool {
	if s.pos >= len(s.Uops) {
		return false
	}
	*u = s.Uops[s.pos]
	s.pos++
	return true
}

// NextBatch implements BatchSource by copying directly from the slice.
func (s *SliceSource) NextBatch(buf []Uop) int {
	n := copy(buf, s.Uops[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// Limit wraps a Source and stops after n records.
type Limit struct {
	Src Source
	N   uint64

	seen uint64
}

// Next implements Source.
func (l *Limit) Next(u *Uop) bool {
	if l.seen >= l.N {
		return false
	}
	if !l.Src.Next(u) {
		return false
	}
	l.seen++
	return true
}

// NextBatch implements BatchSource, clamping the request to the remaining
// budget and delegating to the wrapped source's batch path when it has
// one.
func (l *Limit) NextBatch(buf []Uop) int {
	if l.seen >= l.N {
		return 0
	}
	if rem := l.N - l.seen; uint64(len(buf)) > rem {
		buf = buf[:rem]
	}
	var n int
	if b, ok := l.Src.(BatchSource); ok {
		n = b.NextBatch(buf)
	} else {
		for n < len(buf) && l.Src.Next(&buf[n]) {
			n++
		}
	}
	l.seen += uint64(n)
	return n
}
