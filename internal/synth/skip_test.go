package synth

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

// skipTestModels covers the profile families the skip path must handle:
// the synthetic test model plus real SPEC models spanning memory-bound,
// branchy, FP and streaming behaviour (with and without live deep
// pools, with condensed and rich branch mixes).
func skipTestModels(t *testing.T) map[string]profile.Model {
	t.Helper()
	models := map[string]profile.Model{"testModel": testModel()}
	want := map[string]bool{
		"505.mcf_r": true, "525.x264_r": true, "541.leela_r": true,
		"503.bwaves_r": true, "519.lbm_r": true, "508.namd_r": true,
	}
	for _, app := range profile.CPU2017() {
		if want[app.Name] {
			models[app.Name] = app.Expand(profile.Ref)[0].Model
		}
	}
	if len(models) != len(want)+1 {
		t.Fatalf("missing skip test models: have %d", len(models))
	}
	return models
}

// TestSkipEquivalence is the skip-path correctness gate: interleaving
// Skip calls with Next must leave the generator in exactly the state n
// discarded Next calls would — every subsequent record bit-identical,
// including across the prologue/steady-state boundary — and the
// footprint high-water mark must match too.
func TestSkipEquivalence(t *testing.T) {
	for name, m := range skipTestModels(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := New(m, testGeometry())
			if err != nil {
				t.Fatal(err)
			}
			got, err := New(m, testGeometry())
			if err != nil {
				t.Fatal(err)
			}
			// Mixed skip lengths: tiny, batch-sized, prologue-crossing.
			skips := []uint64{1, 3, 64, 1000, ref.Prologue() / 2, ref.Prologue(), 4096, 50000}
			var ur, ug trace.Uop
			for si, n := range skips {
				if n == 0 {
					continue
				}
				for i := uint64(0); i < n; i++ {
					ref.Next(&ur)
				}
				if sk := got.Skip(n); sk != n {
					t.Fatalf("skip %d: Skip(%d) = %d", si, n, sk)
				}
				// A run of records after each skip catches state divergence
				// (RNG stream, pool cursors, burst counters, call stack).
				for i := 0; i < 2000; i++ {
					ref.Next(&ur)
					got.Next(&ug)
					if ur != ug {
						t.Fatalf("skip %d (n=%d): record %d diverged:\nref %+v\ngot %+v",
							si, n, i, ur, ug)
					}
				}
				if ref.Footprint() != got.Footprint() {
					t.Fatalf("skip %d (n=%d): footprint %d != %d",
						si, n, ref.Footprint(), got.Footprint())
				}
			}
		})
	}
}

// TestSkipWarmEquivalence checks the warming skip path on both counts:
// the observer must see exactly the branch records the emitting path
// would have produced over the skipped stretch (bit-identical, in
// order), and the generator must land in exactly the state Skip would
// have left — subsequent records identical.
func TestSkipWarmEquivalence(t *testing.T) {
	for name, m := range skipTestModels(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := New(m, testGeometry())
			if err != nil {
				t.Fatal(err)
			}
			got, err := New(m, testGeometry())
			if err != nil {
				t.Fatal(err)
			}
			skips := []uint64{1, 3, 64, 1000, ref.Prologue() / 2, ref.Prologue(), 4096, 50000}
			var ur, ug trace.Uop
			for si, n := range skips {
				if n == 0 {
					continue
				}
				var want []trace.Uop
				for i := uint64(0); i < n; i++ {
					ref.Next(&ur)
					if ur.Kind == trace.KindBranch {
						want = append(want, ur)
					}
				}
				var seen []trace.Uop
				if sk := got.SkipWarm(n, func(u *trace.Uop) { seen = append(seen, *u) }); sk != n {
					t.Fatalf("skip %d: SkipWarm(%d) = %d", si, n, sk)
				}
				if len(seen) != len(want) {
					t.Fatalf("skip %d (n=%d): observed %d branch records, want %d",
						si, n, len(seen), len(want))
				}
				for i := range want {
					if seen[i] != want[i] {
						t.Fatalf("skip %d (n=%d): branch record %d diverged:\nref %+v\ngot %+v",
							si, n, i, want[i], seen[i])
					}
				}
				for i := 0; i < 2000; i++ {
					ref.Next(&ur)
					got.Next(&ug)
					if ur != ug {
						t.Fatalf("skip %d (n=%d): record %d diverged after warm skip:\nref %+v\ngot %+v",
							si, n, i, ur, ug)
					}
				}
				if ref.Footprint() != got.Footprint() {
					t.Fatalf("skip %d (n=%d): footprint %d != %d",
						si, n, ref.Footprint(), got.Footprint())
				}
			}
		})
	}
}

// TestSkipFromBatchPath checks the other consumption pattern the machine
// uses: NextBatch windows separated by skips must continue the exact
// stream the pure batch consumer sees.
func TestSkipFromBatchPath(t *testing.T) {
	m := testModel()
	ref, _ := New(m, testGeometry())
	got, _ := New(m, testGeometry())
	refBuf := make([]trace.Uop, 1024)
	gotBuf := make([]trace.Uop, 1024)
	pos := 0
	for round := 0; round < 20; round++ {
		skip := uint64(777 * (round + 1) % 5000)
		for left := skip; left > 0; {
			want := left
			if want > uint64(len(refBuf)) {
				want = uint64(len(refBuf))
			}
			ref.NextBatch(refBuf[:want])
			left -= want
		}
		got.Skip(skip)
		ref.NextBatch(refBuf)
		got.NextBatch(gotBuf)
		for i := range refBuf {
			if refBuf[i] != gotBuf[i] {
				t.Fatalf("round %d: record %d (stream pos ~%d) diverged:\nref %+v\ngot %+v",
					round, i, pos+i, refBuf[i], gotBuf[i])
			}
		}
		pos += int(skip) + len(refBuf)
	}
}

// BenchmarkSkip measures the fast-forward rate — the quantity that
// bounds the sampled kernel's speedup ceiling.
func BenchmarkSkip(b *testing.B) {
	g, err := New(testModel(), testGeometry())
	if err != nil {
		b.Fatal(err)
	}
	g.Skip(g.Prologue())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Skip(1 << 16)
	}
	b.ReportMetric(float64(b.N)*float64(1<<16)/b.Elapsed().Seconds(), "uops/s")
}
