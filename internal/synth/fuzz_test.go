package synth

import (
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

// FuzzSynthProfile drives New with arbitrary — including malformed —
// model parameters. The contract under fuzz: New either returns an error
// or returns a generator that produces a well-formed stream without
// panicking, and whose per-uop and batched paths are bit-identical.
func FuzzSynthProfile(f *testing.F) {
	// Seeds: a realistic integer profile, a tiny-footprint edge case, a
	// huge-parameter case near the validation bounds, and a malformed one.
	f.Add(25.0, 9.0, 16.0, 0.76, 0.07, 3.0, 5.0, 40.0, 15.0, 512.0, 2.0, 400.0, 3000, uint64(42))
	f.Add(1.0, 1.0, 1.0, 0.9, 0.0, 0.0, 0.0, 0.0, 0.0, 0.001, 1.0, 0.1, 1, uint64(1))
	f.Add(40.0, 20.0, 40.0, 0.5, 0.2, 50.0, 99.0, 99.0, 99.0, 1e6, 10.0, 1e6, 1<<20, uint64(7))
	f.Add(-5.0, 200.0, 1e308, 2.0, -1.0, -3.0, 101.0, 40.0, 15.0, 0.0, 2.0, -400.0, -1, uint64(9))

	f.Fuzz(func(t *testing.T, loadPct, storePct, branchPct, cond, jump, misp, l1, l2, l3, rss, mlp, codeKiB float64, sites int, seed uint64) {
		m := profile.Model{
			InstrBillions: 1,
			TargetIPC:     1,
			LoadPct:       loadPct,
			StorePct:      storePct,
			BranchPct:     branchPct,
			Mix: profile.BranchMix{
				Cond: cond, Jump: jump,
				Call: 0.05, IndirectJump: 0.02, Return: 0.05,
			},
			MispredictPct: misp,
			L1MissPct:     l1,
			L2MissPct:     l2,
			L3MissPct:     l3,
			RSSMiB:        rss,
			VSZMiB:        rss * 1.2,
			MLP:           mlp,
			CodeKiB:       codeKiB,
			BranchSites:   sites,
			Threads:       1,
			Seed:          seed,
		}
		geo := Geometry{L1Lines: 512, L2Lines: 4096, L3Lines: 32768}
		gen, err := New(m, geo)
		if err != nil {
			return // rejected cleanly, which is the point
		}
		twin, err := New(m, geo)
		if err != nil {
			t.Fatalf("New succeeded then failed for the same model: %v", err)
		}

		const n = 512
		var u trace.Uop
		single := make([]trace.Uop, n)
		for i := 0; i < n; i++ {
			if !gen.Next(&u) {
				t.Fatalf("generator ended at uop %d", i)
			}
			single[i] = u
			if u.Kind > trace.KindBranch {
				t.Fatalf("uop %d: invalid kind %d", i, u.Kind)
			}
			if u.Kind == trace.KindBranch {
				if u.Branch == trace.BranchNone || int(u.Branch) > trace.NumBranchClasses {
					t.Fatalf("uop %d: branch uop with class %d", i, u.Branch)
				}
			} else if u.Branch != trace.BranchNone {
				t.Fatalf("uop %d: non-branch uop with class %d", i, u.Branch)
			}
		}

		// The batched path must replay the identical stream, whatever the
		// request slicing.
		batched := make([]trace.Uop, 0, n)
		buf := make([]trace.Uop, 113) // prime, misaligned with everything
		for len(batched) < n {
			want := n - len(batched)
			if want > len(buf) {
				want = len(buf)
			}
			got := twin.NextBatch(buf[:want])
			if got == 0 {
				t.Fatalf("batched generator ended at uop %d", len(batched))
			}
			batched = append(batched, buf[:got]...)
		}
		for i := range single {
			if single[i] != batched[i] {
				t.Fatalf("uop %d: per-uop %+v != batched %+v", i, single[i], batched[i])
			}
		}
	})
}
