package synth

import (
	"math"
	"testing"

	"repro/internal/profile"
	"repro/internal/trace"
)

func testGeometry() Geometry {
	return Geometry{L1Lines: 512, L2Lines: 4096, L3Lines: 32768}
}

func testModel() profile.Model {
	return profile.Model{
		InstrBillions: 1000, TargetIPC: 1.5,
		LoadPct: 25, StorePct: 9, BranchPct: 16,
		Mix:           profile.DefaultIntBranchMix(),
		MispredictPct: 3, L1MissPct: 5, L2MissPct: 40, L3MissPct: 15,
		RSSMiB: 512, VSZMiB: 600, MLP: 2, CodeKiB: 400, BranchSites: 3000,
		Threads: 1, Seed: 7,
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := testGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Geometry{
		{},
		{L1Lines: 512, L2Lines: 512, L3Lines: 1024},
		{L1Lines: 512, L2Lines: 4096, L3Lines: 4096},
	}
	for _, g := range bad {
		if g.Validate() == nil {
			t.Errorf("geometry %+v accepted", g)
		}
	}
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(testModel(), Geometry{}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, _ := New(testModel(), testGeometry())
	b, _ := New(testModel(), testGeometry())
	var ua, ub trace.Uop
	for i := 0; i < 50000; i++ {
		if !a.Next(&ua) || !b.Next(&ub) {
			t.Fatal("stream ended unexpectedly")
		}
		if ua != ub {
			t.Fatalf("streams diverged at uop %d: %+v vs %+v", i, ua, ub)
		}
	}
}

func TestPrologueIsAllLoads(t *testing.T) {
	g, _ := New(testModel(), testGeometry())
	n := g.Prologue()
	if n == 0 {
		t.Fatal("no prologue for a model with deep reuse bands")
	}
	var u trace.Uop
	for i := uint64(0); i < n; i++ {
		if !g.Next(&u) {
			t.Fatal("stream ended in prologue")
		}
		if u.Kind != trace.KindLoad {
			t.Fatalf("prologue uop %d is %v, want load", i, u.Kind)
		}
	}
}

// drain runs n steady-state uops (after the prologue) and returns counts.
func drain(t *testing.T, g *Generator, n int) (counts [trace.NumKinds]int, branches map[trace.BranchClass]int) {
	t.Helper()
	branches = map[trace.BranchClass]int{}
	var u trace.Uop
	for i, n := uint64(0), g.Prologue(); i < n; i++ {
		g.Next(&u)
	}
	for i := 0; i < n; i++ {
		if !g.Next(&u) {
			t.Fatal("stream ended")
		}
		counts[u.Kind]++
		if u.Kind == trace.KindBranch {
			branches[u.Branch]++
		}
	}
	return counts, branches
}

func TestMixProportions(t *testing.T) {
	m := testModel()
	g, _ := New(m, testGeometry())
	const n = 200000
	counts, _ := drain(t, g, n)
	check := func(name string, got int, wantPct float64) {
		gotPct := 100 * float64(got) / n
		if math.Abs(gotPct-wantPct) > 0.7 {
			t.Errorf("%s = %.2f%%, want %.2f%%", name, gotPct, wantPct)
		}
	}
	check("loads", counts[trace.KindLoad], m.LoadPct)
	check("stores", counts[trace.KindStore], m.StorePct)
	check("branches", counts[trace.KindBranch], m.BranchPct)
}

func TestBranchClassProportions(t *testing.T) {
	m := testModel()
	g, _ := New(m, testGeometry())
	_, branches := drain(t, g, 300000)
	total := 0
	for _, c := range branches {
		total += c
	}
	if got := float64(branches[trace.BranchConditional]) / float64(total); math.Abs(got-m.Mix.Cond) > 0.03 {
		t.Errorf("conditional share = %.3f, want %.3f", got, m.Mix.Cond)
	}
	// Calls and returns must stay balanced for the RAS.
	c, r := branches[trace.BranchDirectCall], branches[trace.BranchReturn]
	if c == 0 || r == 0 {
		t.Fatal("no calls or returns")
	}
	if ratio := float64(c) / float64(r); ratio < 0.85 || ratio > 1.2 {
		t.Errorf("call/return ratio = %.2f", ratio)
	}
}

func TestFPShareForFPMix(t *testing.T) {
	m := testModel()
	m.Mix = profile.DefaultFPBranchMix()
	g, _ := New(m, testGeometry())
	counts, _ := drain(t, g, 100000)
	fp := counts[trace.KindFP]
	alu := counts[trace.KindALU]
	if fp < alu {
		t.Errorf("fp=%d alu=%d; FP workloads should be FP-heavy", fp, alu)
	}
}

func TestUopInvariants(t *testing.T) {
	g, _ := New(testModel(), testGeometry())
	var u trace.Uop
	for i := 0; i < 100000; i++ {
		if !g.Next(&u) {
			t.Fatal("stream ended")
		}
		if u.PC == 0 {
			t.Fatal("uop with zero PC")
		}
		switch u.Kind {
		case trace.KindLoad, trace.KindStore:
			if u.Addr == 0 {
				t.Fatal("memory uop with zero address")
			}
			if u.Branch != trace.BranchNone {
				t.Fatal("memory uop with branch class")
			}
		case trace.KindBranch:
			if u.Branch == trace.BranchNone {
				t.Fatal("branch uop without class")
			}
			if u.Branch != trace.BranchConditional && !u.Taken {
				t.Fatal("unconditional branch not taken")
			}
			if u.Taken && u.Target == 0 {
				t.Fatal("taken branch without target")
			}
		default:
			if u.Addr != 0 || u.Branch != trace.BranchNone {
				t.Fatal("ALU/FP uop with memory or branch payload")
			}
		}
	}
}

// TestPoolSeparation: the four pools occupy disjoint line ranges.
func TestPoolSeparation(t *testing.T) {
	g, _ := New(testModel(), testGeometry())
	pools := []poolRegion{g.pool1, g.pool2, g.pool3, g.pool4}
	for i := 0; i < len(pools); i++ {
		for j := i + 1; j < len(pools); j++ {
			a, b := pools[i], pools[j]
			if a.size == 0 || b.size == 0 {
				continue
			}
			aEnd := a.baseLine + uint64(a.size)
			bEnd := b.baseLine + uint64(b.size)
			if a.baseLine < bEnd && b.baseLine < aEnd {
				t.Errorf("pools %d and %d overlap", i, j)
			}
		}
	}
}

// TestPoolSizesRespectCapacities: pool 2 fits L2, pool 3 fits L3.
func TestPoolSizesRespectCapacities(t *testing.T) {
	geo := testGeometry()
	for _, m2 := range []float64{5, 20, 40, 70, 95} {
		m := testModel()
		m.L2MissPct = m2
		g, _ := New(m, geo)
		if g.pool2.size >= geo.L2Lines {
			t.Errorf("m2=%v: pool2 size %d >= L2 capacity", m2, g.pool2.size)
		}
		if g.pool3.size >= geo.L3Lines*6/10 {
			t.Errorf("m2=%v: pool3 size %d too large for L3", m2, g.pool3.size)
		}
	}
}

func TestDegenerateMissProfiles(t *testing.T) {
	// Zero miss rates collapse the deep pools; stream still works.
	m := testModel()
	m.L1MissPct, m.L2MissPct, m.L3MissPct = 0, 0, 0
	g, err := New(m, testGeometry())
	if err != nil {
		t.Fatal(err)
	}
	if g.pool2.size != 0 || g.pool3.size != 0 || g.pool4.size != 0 {
		t.Errorf("deep pools not collapsed: %d/%d/%d", g.pool2.size, g.pool3.size, g.pool4.size)
	}
	var u trace.Uop
	for i := 0; i < 10000; i++ {
		if !g.Next(&u) {
			t.Fatal("stream ended")
		}
	}
	// Perfect-hit profiles: all addresses fall in pool 1.
	if g.Footprint() > uint64(g.pool1.size) {
		t.Errorf("footprint %d exceeds hot pool %d", g.Footprint(), g.pool1.size)
	}
}

func TestFullMissProfile(t *testing.T) {
	// 100% miss rates: everything streams.
	m := testModel()
	m.L1MissPct, m.L2MissPct, m.L3MissPct = 100, 100, 100
	g, err := New(m, testGeometry())
	if err != nil {
		t.Fatal(err)
	}
	var u trace.Uop
	seen := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		g.Next(&u)
		if u.Kind == trace.KindLoad || u.Kind == trace.KindStore {
			seen[u.Addr/64] = true
		}
	}
	if len(seen) < 1000 {
		t.Errorf("streaming profile touched only %d distinct lines", len(seen))
	}
}

func TestSmallFootprintCapsPools(t *testing.T) {
	m := testModel()
	m.RSSMiB = 1.2 // ~20k lines
	g, err := New(m, testGeometry())
	if err != nil {
		t.Fatal(err)
	}
	total := g.pool1.size + g.pool2.size + g.pool3.size + g.pool4.size
	if total > int(m.RSSMiB*1024*1024/64)+g.pool1.size+g.pool2.size+g.pool3.size {
		t.Errorf("pools exceed footprint budget: %d lines", total)
	}
}

func TestDistinctSeedsDistinctHeaps(t *testing.T) {
	m1 := testModel()
	m2 := testModel()
	m2.Seed = 8
	a, _ := New(m1, testGeometry())
	b, _ := New(m2, testGeometry())
	if a.heap == b.heap {
		t.Error("different seeds share a heap base")
	}
}

func TestAllCPU2017ModelsGenerate(t *testing.T) {
	geo := testGeometry()
	for _, p := range profile.CPU2017() {
		for _, pair := range p.Expand(profile.Ref) {
			g, err := New(pair.Model, geo)
			if err != nil {
				t.Errorf("%s: %v", pair.Name(), err)
				continue
			}
			var u trace.Uop
			for i := 0; i < 2000; i++ {
				if !g.Next(&u) {
					t.Errorf("%s: stream ended", pair.Name())
					break
				}
			}
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g, _ := New(testModel(), testGeometry())
	var u trace.Uop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(&u)
	}
}
