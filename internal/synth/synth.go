// Package synth generates synthetic dynamic instruction streams that
// realize a profile.Model: the statistical stand-in for executing a SPEC
// binary (see DESIGN.md, "Substitutions").
//
// The generator controls four coupled populations:
//
//   - Instruction mix: micro-op kinds are drawn from an alias table built
//     from the model's load/store/branch percentages.
//   - Data reuse: memory addresses come from an exact LRU stack (an
//     order-statistic treap); reuse distances are sampled from bands
//     positioned between the simulated cache capacities so the model's
//     per-level miss rates emerge from the real cache simulation.
//   - Branch behaviour: a Zipf-weighted static site population emits
//     biased outcomes with a calibrated noise rate, plus direct jumps,
//     call/return pairs and (sometimes polymorphic) indirect jumps.
//   - Code footprint: a function walker moves the PC through CodeKiB of
//     code, driving L1I behaviour.
package synth

import (
	"fmt"
	"math"

	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Geometry tells the generator where the simulated cache capacity
// boundaries lie, in 64-byte lines. Reuse-distance bands are placed
// between these capacities.
type Geometry struct {
	L1Lines, L2Lines, L3Lines int
}

// Validate reports geometry errors.
func (g Geometry) Validate() error {
	if g.L1Lines <= 0 || g.L2Lines <= g.L1Lines || g.L3Lines <= g.L2Lines {
		return errGeometry
	}
	return nil
}

var errGeometry = geometryError{}

type geometryError struct{}

func (geometryError) Error() string { return "synth: geometry must satisfy 0 < L1 < L2 < L3" }

const (
	lineBytes = 64
	// heapBase is where synthetic data addresses start.
	heapBase = uint64(0x10000000)
	// codeBase is where synthetic code addresses start.
	codeBase = uint64(0x400000)
	// fnBytes is the synthetic function size for the PC walker.
	fnBytes = 512
	// maxCallDepth bounds the generator's shadow call stack.
	maxCallDepth = 1024
)

// uop kind indices for the mix alias table.
const (
	mixALU = iota
	mixFP
	mixLoad
	mixStore
	mixBranch
)

// mixKinds maps mix outcomes to uop kinds, letting NextBatch assign the
// kind with one indexed load instead of a switch. The order above is
// deliberate: the two kinds needing extra work (memory address, branch
// fill) sort last, so one >= compare separates them from the plain ALU/FP
// records.
var mixKinds = [...]trace.Kind{trace.KindALU, trace.KindFP, trace.KindLoad, trace.KindStore, trace.KindBranch}

// branch class indices for the class alias table.
const (
	clsCond = iota
	clsJump
	clsCall
	clsReturn
	clsIndirect
)

type condSite struct {
	pc       uint64
	taken    bool    // bias direction
	flipProb float64 // probability of deviating from the bias
}

type indirectSite struct {
	pc      uint64
	targets []uint64
	next    int
}

// Generator produces the uop stream for one application-input pair.
// It implements trace.Source. Create one per simulation; it is not safe
// for concurrent use.
type Generator struct {
	model profile.Model
	geo   Geometry
	rng   *xrand.PCG32

	mix   *xrand.Categorical
	class *xrand.Categorical

	// Data reuse state: one pool of lines per target level. Pool sizes
	// and re-reference rates are chosen so that pool-k lines are resident
	// in exactly cache level k at steady state (see buildMemory).
	bandProb *xrand.Categorical
	pool1    poolRegion // hits L1
	pool2    poolRegion // misses L1, hits L2
	pool3    poolRegion // misses L2, hits L3
	pool4    poolRegion // misses L3 (streaming)
	touched  uint64     // high-water mark of distinct lines referenced
	heap     uint64     // base of this stream's data segment
	// Prologue filler geometry (see prologueAddr).
	fillerBase    uint64
	fill1, fill2  int
	prologueTotal uint64

	// Branch state.
	condSites     []condSite
	condZipf      *xrand.Zipf
	jumpPCs       []uint64
	callPCs       []uint64
	otherZipf     *xrand.Zipf
	indirectSites []indirectSite
	callStack     []uint64
	// Conditional sites execute in bursts (loop iterations) so the
	// global-history predictors see realistic correlation.
	curSite   int
	burstLeft int

	// Prologue state: the first Prologue() uops scan the pre-populated
	// working set bottom-to-top so the cache recency order matches the
	// LRU stack before measurement begins.
	prologueLeft uint64
	prologuePos  uint64

	// Code walker state.
	numFuncs int
	curFn    int
	off      uint64
	fnZipf   *xrand.Zipf

	// Skip draw buffer: raw RNG values interpreted by the fast-forward
	// path (see Skip). Allocated once on first use, reused for the
	// generator's lifetime.
	skipBuf []uint32
	// warmScratch is the branch record SkipWarm reconstructs for its
	// observer; a field rather than a loop local so the unknown observer
	// callee doesn't force a per-skip heap allocation.
	warmScratch trace.Uop
}

// Model sanity bounds: far beyond anything a real profile carries, tight
// enough that malformed inputs cannot drive allocations or modulo bases
// to degenerate values.
const (
	maxRSSMiB      = 1 << 20 // 1 TiB
	maxCodeKiB     = 1 << 20 // 1 GiB of code
	maxBranchSites = 1 << 20
)

// checkModel rejects models the generator cannot realize: NaN/Inf or
// out-of-range percentages would poison the sampling tables (and every
// downstream counter), and unbounded footprint/site counts would turn
// into multi-gigabyte allocations or zero modulo bases. Callers get a
// descriptive error instead of a panic deep inside table construction.
func checkModel(m *profile.Model) error {
	pcts := []struct {
		name string
		v    float64
	}{
		{"LoadPct", m.LoadPct}, {"StorePct", m.StorePct},
		{"BranchPct", m.BranchPct}, {"MispredictPct", m.MispredictPct},
		{"L1MissPct", m.L1MissPct}, {"L2MissPct", m.L2MissPct},
		{"L3MissPct", m.L3MissPct},
	}
	for _, p := range pcts {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 100 {
			return fmt.Errorf("synth: %s %v outside [0,100]", p.name, p.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Mix.Cond", m.Mix.Cond}, {"Mix.Jump", m.Mix.Jump},
		{"Mix.Call", m.Mix.Call}, {"Mix.IndirectJump", m.Mix.IndirectJump},
		{"Mix.Return", m.Mix.Return},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("synth: %s %v negative or non-finite", f.name, f.v)
		}
	}
	if s := m.Mix.Sum(); !(s > 0) || math.IsInf(s, 0) {
		return fmt.Errorf("synth: branch mix sum %v not positive and finite", s)
	}
	if !(m.RSSMiB > 0) || m.RSSMiB > maxRSSMiB {
		return fmt.Errorf("synth: RSSMiB %v outside (0,%d]", m.RSSMiB, maxRSSMiB)
	}
	if !(m.CodeKiB > 0) || m.CodeKiB > maxCodeKiB || uint64(m.CodeKiB*1024) < 1 {
		return fmt.Errorf("synth: CodeKiB %v outside [1/1024,%d]", m.CodeKiB, maxCodeKiB)
	}
	if m.BranchSites < 0 || m.BranchSites > maxBranchSites {
		return fmt.Errorf("synth: BranchSites %d outside [0,%d]", m.BranchSites, maxBranchSites)
	}
	return nil
}

// New builds a generator for the model over the given cache geometry.
// The stream is fully determined by model.Seed.
func New(model profile.Model, geo Geometry) (*Generator, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := checkModel(&model); err != nil {
		return nil, err
	}
	g := &Generator{
		model: model,
		geo:   geo,
		rng:   xrand.NewPCG32(model.Seed),
		// Distinct streams occupy distinct address spaces so co-running
		// generators contend in shared caches instead of aliasing.
		heap: heapBase + (model.Seed%1024)<<33,
	}
	g.buildMix()
	g.buildMemory()
	g.buildBranches()
	g.buildCode()
	return g, nil
}

func (g *Generator) buildMix() {
	m := g.model
	rest := 100 - m.LoadPct - m.StorePct - m.BranchPct
	if rest < 0 {
		rest = 0
	}
	// FP share of the non-memory non-branch work: high for FP codes.
	fpShare := 0.05
	if m.Mix.Cond > 0.8 { // FP-style branch mix marks FP applications
		fpShare = 0.55
	}
	g.mix = xrand.NewCategorical([]float64{
		rest * (1 - fpShare), // alu
		rest * fpShare,       // fp
		m.LoadPct,
		m.StorePct,
		m.BranchPct,
	})
	g.class = xrand.NewCategorical([]float64{
		m.Mix.Cond, m.Mix.Jump, m.Mix.Call, m.Mix.Return, m.Mix.IndirectJump,
	})
}

// poolRegion is a contiguous range of cache lines re-referenced either
// randomly (hot pool) or round-robin (guaranteed-gap pools). Random pools
// draw their line offset with a single 32-bit Lemire draw (pool sizes are
// validated far below 2^32 lines), so there is no per-draw setup for the
// batch path to hoist — addr and addrFast are the same code.
type poolRegion struct {
	baseLine uint64
	size     int
	pos      int
	random   bool
}

func (p *poolRegion) addr(heap uint64, rng *xrand.PCG32) uint64 {
	if p.size <= 0 {
		return heap
	}
	var i uint64
	if p.random {
		i = uint64(rng.Uint32n(uint32(p.size)))
	} else {
		i = uint64(p.pos)
		p.pos++
		if p.pos >= p.size {
			p.pos = 0
		}
	}
	return heap + (p.baseLine+i)*lineBytes
}

// addrFast is kept as an explicit alias so the batched fill paths read
// symmetrically with the legacy ones.
func (p *poolRegion) addrFast(heap uint64, rng *xrand.PCG32) uint64 {
	return p.addr(heap, rng)
}

func (g *Generator) buildMemory() {
	m := g.model
	m1 := m.L1MissPct / 100
	m2 := m.L2MissPct / 100
	m3 := m.L3MissPct / 100
	// Per-memory-reference probabilities of targeting each level.
	r1 := (1 - m1) + 1e-12
	r2 := m1 * (1 - m2)
	r3 := m1 * m2 * (1 - m3)
	r4 := m1 * m2 * m3
	g.bandProb = xrand.NewCategorical([]float64{r1, r2, r3, r4})

	c1 := float64(g.geo.L1Lines)
	c2 := float64(g.geo.L2Lines)
	c3 := float64(g.geo.L3Lines)

	// Pool sizing works in "deep-insertion age": the number of L1-missing
	// data references between consecutive touches of a pool line. All
	// residency conditions are expressed in that clock, which makes the
	// sizes closed-form:
	//
	//   pool2: age A2 must evict from L1 (A2 > 2*C1) yet stay in L2
	//          (A2 < 0.6*C2); the geometric mean splits the margin.
	//   pool3: A3 must evict from L2 (A3 > 2*C2) and stay in L3
	//          (A3*m2 < 0.6*C3) - L3 only ingests the m2 fraction.
	//   pool4: a full wrap of the stream must overflow L3.
	//
	// A round-robin pool touched with probability rho per memory
	// reference has age A = size/rho * m1 insertions, so size = (rho/m1)*A.
	a2 := sqrt(2 * c1 * 0.6 * c2)
	s2 := int((1 - m2) * a2)

	a3 := sqrt(2 * c2 * 0.6 * c3 / maxf(m2, 1e-3))
	s3 := int((1 - m3) * m2 * a3)

	maxLines := int(m.RSSMiB * 1024 * 1024 / lineBytes)
	s4 := int(2 * c3 * maxf(m3, 0.05) * 1.5)
	if lo := int(2 * c3); s4 < lo {
		s4 = lo
	}

	// Pool 1: hot set, comfortably inside L1.
	s1 := int(c1 / 2)

	// Degenerate miss profiles collapse unused pools.
	if r2 < 1e-7 {
		s2 = 0
	}
	if r3 < 1e-7 {
		s3 = 0
	}
	if r4 < 1e-7 {
		s4 = 0
	}
	if rest := maxLines - s1 - s2 - s3; s4 > rest {
		s4 = maxi(rest, 0)
	}

	base := uint64(0)
	place := func(size int, random bool) poolRegion {
		r := poolRegion{baseLine: base, size: size, random: random}
		base += uint64(maxi(size, 0))
		return r
	}
	g.pool1 = place(s1, true)
	g.pool2 = place(s2, false)
	g.pool3 = place(s3, false)
	g.pool4 = place(s4, false)
	// Filler region used by the prologue to age pools 2 and 3 to their
	// steady-state cache levels before measurement starts.
	g.fillerBase = base
	g.fill1 = int(1.2 * c2)
	g.fill2 = int(2 * c1)
	g.touched = uint64(s1 + s2 + s3)
	g.prologueLeft = uint64(s3 + g.fill1 + s2 + g.fill2 + s1)
	g.prologueTotal = g.prologueLeft
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Prologue returns the total number of leading warmup uops the generator
// emits before steady-state behaviour begins. Simulations must discard at
// least this many instructions (machine.Options.WarmupInstructions). The
// value is stable; it does not shrink as the stream is consumed.
func (g *Generator) Prologue() uint64 { return g.prologueTotal }

// prologueAddr returns the i-th warmup address. The sweep order is:
// pool 3, filler (ages pool 3 out of L1 and L2), pool 2, filler (ages
// pool 2 out of L1 only), pool 1 - leaving every pool resident at exactly
// its steady-state level when measurement begins.
func (g *Generator) prologueAddr(i uint64) uint64 {
	line := func(base uint64, off uint64) uint64 {
		return g.heap + (base+off)*lineBytes
	}
	if n := uint64(g.pool3.size); i < n {
		return line(g.pool3.baseLine, i)
	} else {
		i -= n
	}
	if n := uint64(g.fill1); i < n {
		return line(g.fillerBase, i)
	} else {
		i -= n
	}
	if n := uint64(g.pool2.size); i < n {
		return line(g.pool2.baseLine, i)
	} else {
		i -= n
	}
	if n := uint64(g.fill2); i < n {
		return line(g.fillerBase+uint64(g.fill1), i)
	} else {
		i -= n
	}
	return line(g.pool1.baseLine, i%uint64(maxi(g.pool1.size, 1)))
}

// memRef samples the next data address from the per-level pools.
func (g *Generator) memRef() uint64 {
	switch g.bandProb.Pick(g.rng.Uint32()) {
	case 0:
		return g.pool1.addr(g.heap, g.rng)
	case 1:
		if g.pool2.size > 0 {
			return g.pool2.addr(g.heap, g.rng)
		}
		return g.pool1.addr(g.heap, g.rng)
	case 2:
		if g.pool3.size > 0 {
			return g.pool3.addr(g.heap, g.rng)
		}
		return g.pool1.addr(g.heap, g.rng)
	default:
		if g.pool4.size > 0 {
			a := g.pool4.addr(g.heap, g.rng)
			if t := (a-g.heap)/lineBytes + 1; t > g.touched {
				g.touched = t
			}
			return a
		}
		if g.pool3.size > 0 {
			return g.pool3.addr(g.heap, g.rng)
		}
		return g.pool1.addr(g.heap, g.rng)
	}
}

// memRefFast is memRef with the band and pool rejection bounds hoisted
// into precomputed fields. It consumes the RNG identically to memRef and
// returns the same addresses; the batch path uses it so the two kernels
// differ only in dispatch overhead, never in behaviour.
func (g *Generator) memRefFast(rng *xrand.PCG32) uint64 {
	switch g.bandProb.Pick(rng.Uint32()) {
	case 0:
		return g.pool1.addrFast(g.heap, rng)
	case 1:
		if g.pool2.size > 0 {
			return g.pool2.addrFast(g.heap, rng)
		}
		return g.pool1.addrFast(g.heap, rng)
	case 2:
		if g.pool3.size > 0 {
			return g.pool3.addrFast(g.heap, rng)
		}
		return g.pool1.addrFast(g.heap, rng)
	default:
		if g.pool4.size > 0 {
			a := g.pool4.addrFast(g.heap, rng)
			if t := (a-g.heap)/lineBytes + 1; t > g.touched {
				g.touched = t
			}
			return a
		}
		if g.pool3.size > 0 {
			return g.pool3.addrFast(g.heap, rng)
		}
		return g.pool1.addrFast(g.heap, rng)
	}
}

func (g *Generator) buildBranches() {
	m := g.model
	condFrac := m.Mix.Cond
	if condFrac <= 0 {
		condFrac = 1
	}
	// The target mispredict rate is carried almost entirely by the
	// conditional sites' outcome noise. The affine correction inverts the
	// measured transfer curve of the default (tournament) predictor:
	// residual mispredicts from history pollution, burst transitions and
	// polymorphic indirect targets contribute ~0.6 % plus a 1.26x gain on
	// the injected noise (see machine's TestMispredictRateEmerges).
	effective := (m.MispredictPct - 0.6) / 1.26
	if effective < 0.03 {
		effective = 0.03
	}
	flip := effective / 100 / condFrac * 0.9
	if flip > 0.5 {
		flip = 0.5
	}
	n := m.BranchSites
	// Applications with few dynamic branches exercise proportionally
	// fewer static sites; keeping the full static population would leave
	// the Zipf tail permanently cold (untrained) and inflate the
	// mispredict rate beyond the model's target.
	if m.BranchPct < 16 {
		n = int(float64(n) * m.BranchPct / 16)
	}
	if n < 16 {
		n = 16
	}
	codeBytes := uint64(m.CodeKiB * 1024)
	g.condSites = make([]condSite, n)
	for i := range g.condSites {
		g.condSites[i] = condSite{
			pc:       codeBase + (uint64(i)*412)%codeBytes,
			taken:    g.rng.Bool(0.6),
			flipProb: flip,
		}
	}
	g.condZipf = xrand.NewZipf(n, 1.3)
	nOther := max(8, n/8)
	g.jumpPCs = make([]uint64, nOther)
	g.callPCs = make([]uint64, nOther)
	for i := 0; i < nOther; i++ {
		g.jumpPCs[i] = codeBase + (uint64(i)*1736+64)%codeBytes
		g.callPCs[i] = codeBase + (uint64(i)*2412+128)%codeBytes
	}
	g.otherZipf = xrand.NewZipf(nOther, 1.3)
	nInd := max(4, n/32)
	g.indirectSites = make([]indirectSite, nInd)
	for i := range g.indirectSites {
		site := indirectSite{pc: codeBase + (uint64(i)*3168+192)%codeBytes}
		nt := 1
		// Polymorphic sites are budgeted against the mispredict target so
		// indirect jumps contribute proportionally, not a fixed floor.
		polyFrac := m.MispredictPct / 100 * 3
		if polyFrac > 0.4 {
			polyFrac = 0.4
		}
		if g.rng.Bool(polyFrac) {
			nt = 2 + g.rng.Intn(3)
		}
		for t := 0; t < nt; t++ {
			site.targets = append(site.targets, codeBase+(uint64(i*7+t)*fnBytes)%codeBytes)
		}
		g.indirectSites[i] = site
	}
}

func (g *Generator) buildCode() {
	g.numFuncs = max(1, int(g.model.CodeKiB*1024/fnBytes))
	g.fnZipf = xrand.NewZipf(g.numFuncs, 1.2)
	g.curFn = 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// pc returns the walker's current instruction address.
func (g *Generator) pc() uint64 {
	return codeBase + uint64(g.curFn)*fnBytes + g.off
}

func (g *Generator) advancePC() {
	g.off += 4
	if g.off >= fnBytes {
		g.off = 0
	}
}

// Next implements trace.Source. The stream is unbounded; wrap the
// generator in a trace.Limit to bound it.
func (g *Generator) Next(u *trace.Uop) bool {
	*u = trace.Uop{}
	if g.prologueLeft > 0 {
		g.prologueLeft--
		u.PC = g.pc()
		u.Kind = trace.KindLoad
		u.Addr = g.prologueAddr(g.prologuePos)
		g.prologuePos++
		g.advancePC()
		return true
	}
	switch g.mix.Pick(g.rng.Uint32()) {
	case mixALU:
		u.PC = g.pc()
		u.Kind = trace.KindALU
	case mixFP:
		u.PC = g.pc()
		u.Kind = trace.KindFP
	case mixLoad:
		u.PC = g.pc()
		u.Kind = trace.KindLoad
		u.Addr = g.memRef()
	case mixStore:
		u.PC = g.pc()
		u.Kind = trace.KindStore
		u.Addr = g.memRef()
	case mixBranch:
		g.fillBranch(u)
	}
	g.advancePC()
	return true
}

// NextBatch implements trace.BatchSource natively: it emits exactly the
// record sequence repeated Next calls would (same RNG consumption, same
// field values — the machine equivalence tests enforce this), but hoists
// the per-uop costs of the legacy path out of the inner loop: the
// interface dispatch, the RNG pointer reload, and the rejection-bound
// divisions inside the mix, reuse-band and hot-pool samplers.
func (g *Generator) NextBatch(buf []trace.Uop) int {
	rng := g.rng
	i := 0
	// Prologue prefix: the deterministic working-set sweep.
	for i < len(buf) && g.prologueLeft > 0 {
		g.prologueLeft--
		buf[i] = trace.Uop{
			PC:   g.pc(),
			Kind: trace.KindLoad,
			Addr: g.prologueAddr(g.prologuePos),
		}
		g.prologuePos++
		g.advancePC()
		i++
	}
	// Zero the steady-state suffix in one bulk clear (a vectorized memclr)
	// instead of a per-uop struct store; the fill paths below only write
	// the fields that are non-zero for their kind, exactly as Next does
	// after its per-uop zeroing.
	clear(buf[i:])
	// Hoist the PC walker (curFn, off) into registers: the non-branch
	// kinds never touch generator state beyond the walker, so pc() and
	// advancePC() reduce to an add and a wrap test on locals. Branch
	// fills can redirect the walker (calls and returns change curFn,
	// calls reset off), so the locals are written back before and
	// reloaded after fillBranchFast.
	pcBase := codeBase + uint64(g.curFn)*fnBytes
	off := g.off
	for ; i < len(buf); i++ {
		u := &buf[i]
		m := g.mix.Pick(rng.Uint32())
		// Every kind gets the walker PC and a table-driven Kind up front
		// instead of a five-way switch: the mix draw is near-uniform
		// noise, so a computed jump mispredicts on almost every record,
		// while this form needs only one poorly-predicted test (memory
		// reference or not, below) and the branch fill overwrites PC and
		// Kind with its own values just as Next's switch arm would.
		u.PC = pcBase + off
		u.Kind = mixKinds[m]
		if m >= mixLoad {
			if m != mixBranch {
				u.Addr = g.memRefFast(rng)
			} else {
				g.off = off
				g.fillBranchFast(u)
				pcBase = codeBase + uint64(g.curFn)*fnBytes
				off = g.off
			}
		}
		off += 4
		if off >= fnBytes {
			off = 0
		}
	}
	g.off = off
	return len(buf)
}

func (g *Generator) fillBranch(u *trace.Uop) {
	g.fillBranchClass(u, g.class.Pick(g.rng.Uint32()))
}

// fillBranchFast is fillBranch with the class draw performed by the
// division-free sampler; the emitted uop and RNG consumption are
// identical. The batched path uses it.
func (g *Generator) fillBranchFast(u *trace.Uop) {
	g.fillBranchClass(u, g.class.Pick(g.rng.Uint32()))
}

func (g *Generator) fillBranchClass(u *trace.Uop, cls int) {
	u.Kind = trace.KindBranch
	switch cls {
	case clsCond:
		if g.burstLeft <= 0 {
			g.curSite = g.condZipf.Sample(g.rng)
			g.burstLeft = 6 + g.rng.Geometric(1.0/18)
		}
		g.burstLeft--
		site := &g.condSites[g.curSite]
		taken := site.taken
		if g.rng.Bool(site.flipProb) {
			taken = !taken
		}
		u.PC = site.pc
		u.Branch = trace.BranchConditional
		u.Taken = taken
		if taken {
			u.Target = site.pc - 64 // short backward loop branch
		}
	case clsJump:
		pc := g.jumpPCs[g.otherZipf.Sample(g.rng)]
		u.PC = pc
		u.Branch = trace.BranchDirectJump
		u.Taken = true
		u.Target = pc + 128
	case clsCall:
		if len(g.callStack) >= 12 {
			// Keep the shadow stack shallower than the 16-entry RAS:
			// real call graphs are depth-bounded too.
			g.doReturn(u)
			return
		}
		g.doCall(u)
	case clsReturn:
		if len(g.callStack) == 0 {
			g.doCall(u) // nothing to return to; emit a call instead
			return
		}
		g.doReturn(u)
		return
	case clsIndirect:
		g.doIndirect(u)
	}
}

func (g *Generator) doReturn(u *trace.Uop) {
	u.Kind = trace.KindBranch
	ret := g.callStack[len(g.callStack)-1]
	g.callStack = g.callStack[:len(g.callStack)-1]
	u.PC = ret + 60 // a PC inside the called function
	u.Branch = trace.BranchReturn
	u.Taken = true
	u.Target = ret
	// Walk back to the caller's function.
	g.curFn = int((ret - codeBase) / fnBytes % uint64(g.numFuncs))
}

func (g *Generator) doIndirect(u *trace.Uop) {
	u.Kind = trace.KindBranch
	site := &g.indirectSites[g.rng.Intn(len(g.indirectSites))]
	u.PC = site.pc
	u.Branch = trace.BranchIndirectJump
	u.Taken = true
	if len(site.targets) == 1 {
		u.Target = site.targets[0]
	} else {
		u.Target = site.targets[site.next]
		// Polymorphic sites switch targets unpredictably.
		if g.rng.Bool(0.3) {
			site.next = (site.next + 1) % len(site.targets)
		}
	}
}

func (g *Generator) doCall(u *trace.Uop) {
	pc := g.callPCs[g.otherZipf.Sample(g.rng)]
	u.PC = pc
	u.Branch = trace.BranchDirectCall
	u.Taken = true
	// The callee is a Zipf-hot function: hot code stays in L1I.
	callee := g.fnZipf.Sample(g.rng)
	u.Target = codeBase + uint64(callee)*fnBytes
	if len(g.callStack) >= maxCallDepth {
		// Deep recursion: drop the oldest half, like a real stack the
		// RAS long lost track of.
		g.callStack = append(g.callStack[:0], g.callStack[maxCallDepth/2:]...)
	}
	g.callStack = append(g.callStack, pc+4)
	g.curFn = callee
	g.off = 0
}

// Skip implements trace.Skipper: it advances the generator past n
// records without materializing them. Every piece of state evolves
// exactly as n Next calls would evolve it — the PC walker, the RNG
// streams (same draws in the same order, including Lemire rejection
// retries), the pool cursors and footprint high-water mark, the
// conditional-site burst sequence and the shadow call stack — so the
// record emitted after Skip(n) is bit-identical to the record n
// discarded Next calls would have exposed (the skip-equivalence tests
// enforce this against every profile family). The stream is unbounded,
// so Skip always skips the full n.
//
// The saving is twofold. The record itself disappears: no address
// formation results, no field stores, no batch-buffer traffic. And the
// RNG is consumed through a buffer of precomputed raw draws
// (PCG32.Fill) instead of one serial call per draw, which breaks the
// latency chain that bounds the emitting paths — the LCG recurrence
// runs four-wide ahead of the interpreting loop, whose data-dependent
// branches then replay cheap L1 loads on mispredict instead of the
// whole multiply chain. Unconsumed draws are returned to the stream
// with an O(log n) rewind (PCG32.Advance) when the skip ends.
func (g *Generator) Skip(n uint64) uint64 { return g.skip(n, nil) }

// SkipWarm implements trace.WarmSkipper: it fast-forwards exactly like
// Skip, and additionally reconstructs every branch record the skipped
// stretch contains — bit-identical to the record Next would have
// emitted — and reports it to observe. Non-branch records are never
// materialized, which is what keeps a warm skip far cheaper than
// draining: the caller gets the branch stream (the state a sampled
// simulation must keep functionally warm, since predictor state is both
// large and phase-sensitive) at a small surcharge over a cold skip.
func (g *Generator) SkipWarm(n uint64, observe func(*trace.Uop)) uint64 {
	return g.skip(n, observe)
}

func (g *Generator) skip(n uint64, observe func(*trace.Uop)) uint64 {
	left := n
	// Prologue prefix: a deterministic working-set sweep whose only
	// per-record state is the sweep position and the PC walker, so it
	// fast-forwards in O(1). No branches occur before the prologue ends,
	// so curFn is untouched and the PC offset is pure arithmetic.
	if g.prologueLeft > 0 {
		p := g.prologueLeft
		if p > left {
			p = left
		}
		g.prologueLeft -= p
		g.prologuePos += p
		g.off = (g.off + 4*p) % fnBytes
		left -= p
	}
	if left == 0 {
		return n
	}
	// Short skips don't amortize a buffer fill; run them on a
	// stack-local RNG copy instead (or, when warming, through the
	// emitting path — at these lengths Next's cost is acceptable).
	if left < skipBufLen {
		if observe == nil {
			g.skipScalar(left)
		} else {
			g.skipNextWarm(left, observe)
		}
		return n
	}
	if g.skipBuf == nil {
		g.skipBuf = make([]uint32, skipBufLen)
	}
	buf := g.skipBuf
	g.rng.Fill(buf)
	idx := 0
	off := g.off
	mix, band := g.mix, g.bandProb
	// Pool 1 is the only random pool (2-4 are placed round-robin), so the
	// memory path below needs just its size for the hand-inlined draw.
	var p1n uint32
	if g.pool1.size > 0 {
		p1n = uint32(g.pool1.size)
	}
	// bandActs bakes memRef's empty-pool fall-throughs into a packed
	// band → action map (0 none, 1 pool-1 draw, 2-4 round-robin cursor
	// k), so the loop resolves a memory reference with one shift-and-mask
	// instead of re-walking the pool cascade. The mix/band branches
	// themselves stay real branches: a fully branchless (cmov/setcc)
	// interpretation was tried and lost ~25% — it trades predictable-ish
	// mispredicts for a longer serial dependency chain and register
	// spills, and the buffered draws already make a mispredict replay
	// cheap (L1 reloads, not the RNG multiply chain).
	var bandActs uint32
	if p1n != 0 {
		bandActs = 0x01010101 // every band falls through to pool 1
	}
	if g.pool2.size > 0 {
		bandActs = bandActs&^(0xff<<8) | 2<<8
	}
	if g.pool3.size > 0 {
		// memRef's band-3 fall-through is pool4 → pool3 → pool1.
		bandActs = bandActs&^(0xff<<16|0xff<<24) | 3<<16 | 3<<24
	}
	if g.pool4.size > 0 {
		bandActs = bandActs&^(0xff<<24) | 4<<24
	}
	for ; left > 0; left-- {
		// One refill check per record covers every draw below except the
		// rejection loops, which check for themselves; skipHeadroom
		// bounds the non-rejecting per-record consumption.
		if idx > skipBufLen-skipHeadroom {
			idx = g.skipRefill(idx)
		}
		m := mix.Pick(buf[idx])
		idx++
		if m == mixBranch {
			g.off = off
			cls := g.class.Pick(buf[idx])
			idx++
			if observe == nil {
				idx = g.skipBranchClass(cls, idx)
			} else {
				idx = g.warmBranchClass(cls, idx, &g.warmScratch)
				observe(&g.warmScratch)
			}
			off = g.off + 4
			if off >= fnBytes {
				off = 0
			}
			continue
		}
		if m >= mixLoad {
			b := band.Pick(buf[idx])
			idx++
			act := int(bandActs>>uint(b*8)) & 0xff
			if act == 1 {
				m64 := uint64(buf[idx]) * uint64(p1n)
				idx++
				if l := uint32(m64); l < p1n {
					t := -p1n % p1n
					for l < t {
						if idx == skipBufLen {
							idx = g.skipRefill(idx)
						}
						m64 = uint64(buf[idx]) * uint64(p1n)
						idx++
						l = uint32(m64)
					}
				}
			} else if act != 0 {
				g.skipCursor(act)
			}
		}
		off += 4
		if off >= fnBytes {
			off = 0
		}
	}
	g.off = off
	// Return the buffered draws that were never consumed: Fill advanced
	// the RNG to the buffer's end, the stream position is idx.
	g.rng.Advance(uint64(idx) - uint64(skipBufLen))
	return n
}

// skipCursor advances the round-robin cursor of pool act (2-4), the
// deep-reuse arm of the skip loop's memory path; pool 4 also feeds the
// footprint high-water mark exactly as memRef's pool-4 arm does.
func (g *Generator) skipCursor(act int) {
	var p *poolRegion
	switch act {
	case 2:
		p = &g.pool2
	case 3:
		p = &g.pool3
	default:
		p = &g.pool4
		if t := p.baseLine + uint64(p.pos) + 1; t > g.touched {
			g.touched = t
		}
	}
	p.pos++
	if p.pos >= p.size {
		p.pos = 0
	}
}

const (
	// skipBufLen is the skip draw buffer size: big enough to amortize
	// refills (a leftover slide plus a Fill per ~skipBufLen/1.5 records),
	// small enough to stay L1-resident.
	skipBufLen = 512
	// skipHeadroom is the most draws one record can consume outside the
	// self-checking rejection loops: the mix pick, plus the larger of a
	// memory reference (band + pool draw) and a branch (class pick plus a
	// conditional's burst refresh: site, two geometric halves, flip).
	skipHeadroom = 8
)

// logBurstRemain is Geometric(1.0/18)'s denominator, precomputed with
// the identical expression so skipBranchClass's inverse transform is
// bit-equal to the Geometric call in fillBranchClass.
var logBurstRemain = math.Log(1 - 1.0/18)

// skipRefill slides the unconsumed tail of the skip buffer to the front
// and fills the freed space with fresh draws; idx is the first
// unconsumed position. Returns the new read index, 0.
func (g *Generator) skipRefill(idx int) int {
	rem := copy(g.skipBuf, g.skipBuf[idx:])
	g.rng.Fill(g.skipBuf[rem:])
	return 0
}

// skipBranchClass evolves exactly the generator state one
// fillBranchClass call would — burst counters, shadow call stack,
// walker redirections, polymorphic target rotation — while consuming
// the same draws from the skip buffer instead of the RNG. Draws whose
// values influence only the emitted record (outcome flips, jump-site
// picks) are consumed and discarded. Returns the new buffer index.
func (g *Generator) skipBranchClass(cls, idx int) int {
	buf := g.skipBuf
	switch cls {
	case clsCond:
		if g.burstLeft <= 0 {
			g.curSite = g.condZipf.Pick(buf[idx])
			// Geometric(1/18) by inverse transform on the two-draw
			// Float64, exactly as xrand.PCG32.Geometric computes it.
			u := float64((uint64(buf[idx+1])<<32|uint64(buf[idx+2]))>>11) / (1 << 53)
			g.burstLeft = 6 + int(math.Log(1-u)/logBurstRemain)
			idx += 3
		}
		g.burstLeft--
		idx++ // the outcome-flip Bool; taken-ness is record-only
	case clsJump:
		idx++ // the site pick; jump PCs are record-only
	case clsCall:
		if len(g.callStack) >= 12 {
			g.skipReturn()
			return idx
		}
		return g.skipCall(buf, idx)
	case clsReturn:
		if len(g.callStack) == 0 {
			return g.skipCall(buf, idx)
		}
		g.skipReturn()
	case clsIndirect:
		// Intn(len(indirectSites)) = Uint64n: two draws per attempt,
		// top-of-range rejections resampled.
		sites := uint64(len(g.indirectSites))
		bound := ^uint64(0) - (^uint64(0) % sites)
		var v uint64
		for {
			if idx+2 > skipBufLen {
				idx = g.skipRefill(idx)
			}
			v = uint64(buf[idx])<<32 | uint64(buf[idx+1])
			idx += 2
			if v < bound {
				break
			}
		}
		site := &g.indirectSites[v%sites]
		if len(site.targets) > 1 {
			// Bool(0.3) gates the polymorphic target rotation.
			if float64(buf[idx]) < 0.3*(1<<32) {
				site.next = (site.next + 1) % len(site.targets)
			}
			idx++
		}
	}
	return idx
}

// skipReturn is doReturn's state evolution (no draws).
func (g *Generator) skipReturn() {
	ret := g.callStack[len(g.callStack)-1]
	g.callStack = g.callStack[:len(g.callStack)-1]
	g.curFn = int((ret - codeBase) / fnBytes % uint64(g.numFuncs))
}

// skipCall is doCall's state evolution: two draws (call site, callee),
// a stack push with the same deep-recursion trim, and the walker
// redirect into the callee.
func (g *Generator) skipCall(buf []uint32, idx int) int {
	pc := g.callPCs[g.otherZipf.Pick(buf[idx])]
	callee := g.fnZipf.Pick(buf[idx+1])
	idx += 2
	if len(g.callStack) >= maxCallDepth {
		g.callStack = append(g.callStack[:0], g.callStack[maxCallDepth/2:]...)
	}
	g.callStack = append(g.callStack, pc+4)
	g.curFn = callee
	g.off = 0
	return idx
}

// warmBranchClass is skipBranchClass plus record reconstruction: same
// draws consumed, same state transitions, and u is filled with exactly
// the branch record fillBranchClass would have emitted — the warm-skip
// equivalence test holds it bit-identical against the emitting path.
func (g *Generator) warmBranchClass(cls, idx int, u *trace.Uop) int {
	buf := g.skipBuf
	u.Kind = trace.KindBranch
	u.Addr = 0
	switch cls {
	case clsCond:
		if g.burstLeft <= 0 {
			g.curSite = g.condZipf.Pick(buf[idx])
			uf := float64((uint64(buf[idx+1])<<32|uint64(buf[idx+2]))>>11) / (1 << 53)
			g.burstLeft = 6 + int(math.Log(1-uf)/logBurstRemain)
			idx += 3
		}
		g.burstLeft--
		site := &g.condSites[g.curSite]
		taken := site.taken
		// xrand.PCG32.Bool's comparison, on the buffered draw.
		if site.flipProb >= 1 || float64(buf[idx]) < site.flipProb*(1<<32) {
			taken = !taken
		}
		idx++
		u.PC = site.pc
		u.Branch = trace.BranchConditional
		u.Taken = taken
		u.Target = 0
		if taken {
			u.Target = site.pc - 64
		}
	case clsJump:
		pc := g.jumpPCs[g.otherZipf.Pick(buf[idx])]
		idx++
		u.PC = pc
		u.Branch = trace.BranchDirectJump
		u.Taken = true
		u.Target = pc + 128
	case clsCall:
		if len(g.callStack) >= 12 {
			g.warmReturn(u)
			return idx
		}
		return g.warmCall(buf, idx, u)
	case clsReturn:
		if len(g.callStack) == 0 {
			return g.warmCall(buf, idx, u)
		}
		g.warmReturn(u)
	case clsIndirect:
		sites := uint64(len(g.indirectSites))
		bound := ^uint64(0) - (^uint64(0) % sites)
		var v uint64
		for {
			if idx+2 > skipBufLen {
				idx = g.skipRefill(idx)
			}
			v = uint64(buf[idx])<<32 | uint64(buf[idx+1])
			idx += 2
			if v < bound {
				break
			}
		}
		site := &g.indirectSites[v%sites]
		u.PC = site.pc
		u.Branch = trace.BranchIndirectJump
		u.Taken = true
		if len(site.targets) == 1 {
			u.Target = site.targets[0]
		} else {
			u.Target = site.targets[site.next]
			if float64(buf[idx]) < 0.3*(1<<32) {
				site.next = (site.next + 1) % len(site.targets)
			}
			idx++
		}
	}
	return idx
}

// warmReturn is doReturn with the record kept.
func (g *Generator) warmReturn(u *trace.Uop) {
	ret := g.callStack[len(g.callStack)-1]
	g.callStack = g.callStack[:len(g.callStack)-1]
	u.PC = ret + 60
	u.Branch = trace.BranchReturn
	u.Taken = true
	u.Target = ret
	g.curFn = int((ret - codeBase) / fnBytes % uint64(g.numFuncs))
}

// warmCall is doCall with the record kept, drawing from the skip buffer.
func (g *Generator) warmCall(buf []uint32, idx int, u *trace.Uop) int {
	pc := g.callPCs[g.otherZipf.Pick(buf[idx])]
	callee := g.fnZipf.Pick(buf[idx+1])
	idx += 2
	u.PC = pc
	u.Branch = trace.BranchDirectCall
	u.Taken = true
	u.Target = codeBase + uint64(callee)*fnBytes
	if len(g.callStack) >= maxCallDepth {
		g.callStack = append(g.callStack[:0], g.callStack[maxCallDepth/2:]...)
	}
	g.callStack = append(g.callStack, pc+4)
	g.curFn = callee
	g.off = 0
	return idx
}

// skipNextWarm handles short warm skips through the emitting path: the
// draw buffer doesn't amortize under skipBufLen records, and at these
// lengths Next's cost is acceptable.
func (g *Generator) skipNextWarm(left uint64, observe func(*trace.Uop)) {
	u := &g.warmScratch
	for ; left > 0; left-- {
		g.Next(u)
		if u.Kind == trace.KindBranch {
			observe(u)
		}
	}
}

// skipScalar fast-forwards left steady-state records on a stack-local
// RNG copy — the short-skip path, where a buffer fill would cost more
// than it saves. Branch records (the only kind whose fill mutates state
// beyond the RNG and pool cursors) sync the local copy back and run the
// full fill into a scratch record.
func (g *Generator) skipScalar(left uint64) {
	var scratch trace.Uop
	off := g.off
	mix, band := g.mix, g.bandProb
	var p1n uint32
	if g.pool1.size > 0 {
		p1n = uint32(g.pool1.size)
	}
	lr := *g.rng
	for ; left > 0; left-- {
		m := mix.Pick(lr.Uint32())
		if m >= mixLoad {
			if m != mixBranch {
				pool1 := false
				switch band.Pick(lr.Uint32()) {
				case 0:
					pool1 = true
				case 1:
					if p := &g.pool2; p.size > 0 {
						p.pos++
						if p.pos >= p.size {
							p.pos = 0
						}
					} else {
						pool1 = true
					}
				case 2:
					if p := &g.pool3; p.size > 0 {
						p.pos++
						if p.pos >= p.size {
							p.pos = 0
						}
					} else {
						pool1 = true
					}
				default:
					if p := &g.pool4; p.size > 0 {
						i := uint64(p.pos)
						p.pos++
						if p.pos >= p.size {
							p.pos = 0
						}
						if t := p.baseLine + i + 1; t > g.touched {
							g.touched = t
						}
					} else if p := &g.pool3; p.size > 0 {
						p.pos++
						if p.pos >= p.size {
							p.pos = 0
						}
					} else {
						pool1 = true
					}
				}
				if pool1 && p1n != 0 {
					x := lr.Uint32()
					m64 := uint64(x) * uint64(p1n)
					if l := uint32(m64); l < p1n {
						t := -p1n % p1n
						for l < t {
							x = lr.Uint32()
							m64 = uint64(x) * uint64(p1n)
							l = uint32(m64)
						}
					}
				}
			} else {
				g.off = off
				*g.rng = lr
				g.fillBranchClass(&scratch, g.class.Pick(g.rng.Uint32()))
				lr = *g.rng
				off = g.off
			}
		}
		off += 4
		if off >= fnBytes {
			off = 0
		}
	}
	*g.rng = lr
	g.off = off
}

// Footprint returns the number of distinct lines the generator has
// touched so far (the simulated, pre-extrapolation working set).
func (g *Generator) Footprint() uint64 { return g.touched }
