// Sweep API: /v1/sweeps exposes the internal/sweep design-space
// exploration subsystem over the same job plumbing campaigns use — the
// shared bounded queue and worker pool, per-job cancellation, SSE
// progress, a run manifest per sweep, and tier-split cell accounting in
// /metrics. On a coordinator (Config.Fleet set) each grid point's
// campaign is scattered through the same consistent-hash dispatch as
// ordinary campaigns, with the point's machine configuration forwarded
// in the chunk specs, so a sharded sweep produces exactly the cells —
// and exactly the store records — a single-node sweep would.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sweep"
)

// SweepSpec is the client's description of one design-space sweep.
type SweepSpec struct {
	// Suite, Mini, Size and Pairs select the workloads exactly as the
	// corresponding CampaignSpec fields do.
	Suite string   `json:"suite"`
	Mini  string   `json:"mini,omitempty"`
	Size  string   `json:"size"`
	Pairs []string `json:"pairs,omitempty"`
	// Instructions and MultiplexSlots override the server's per-pair
	// window and multiplexing when positive, as in CampaignSpec.
	Instructions   uint64 `json:"instructions,omitempty"`
	MultiplexSlots int    `json:"multiplex_slots,omitempty"`
	// Machine overrides the base configuration the axes are applied to
	// (default: the server's base machine). Decoding validates it.
	Machine *machine.Config `json:"machine,omitempty"`
	// Axes are the swept dimensions (machine.AxisParams names the
	// parameters); the grid is their cartesian product.
	Axes []sweep.Axis `json:"axes"`
	// Screen is the fidelity tier every cell is first run at: "exact",
	// "sampled" or "analytic" (the default).
	Screen string `json:"screen,omitempty"`
	// Escalate is the tier Pareto-frontier points are re-run at:
	// "exact", "sampled" (the default), "analytic", or "off" to disable
	// escalation.
	Escalate string `json:"escalate,omitempty"`
	// Sampling sets the sampling knob used by whichever phase runs at
	// the sampled tier ("default" or "PERIOD/DETAIL/WARMUP"); empty
	// inherits the server's base options.
	Sampling string `json:"sampling,omitempty"`
	// Metrics are the swept metrics (sweep.MetricNames); empty means
	// ipc and l3_miss_pct.
	Metrics []string `json:"metrics,omitempty"`
	// SSEWeight biases the knee pick toward metric quality over
	// configuration cost (default 5, as in internal/subset).
	SSEWeight float64 `json:"sse_weight,omitempty"`
}

// SweepStatus is the JSON form of one sweep's state.
type SweepStatus struct {
	ID     string    `json:"id"`
	Spec   SweepSpec `json:"spec"`
	Status string    `json:"status"`
	// Pairs and Points size the grid: Pairs x Points is the screen-phase
	// cell count.
	Pairs    int            `json:"pairs"`
	Points   int            `json:"points"`
	Created  time.Time      `json:"created"`
	Started  *time.Time     `json:"started,omitempty"`
	Finished *time.Time     `json:"finished,omitempty"`
	Progress sweep.Progress `json:"progress"`
	Error    string         `json:"error,omitempty"`
	// Result is the grid, frontier and knee reports, present once done.
	Result *sweep.Result `json:"result,omitempty"`
	// ManifestDigest ties the sweep to its JSONL run manifest
	// (GET /v1/sweeps/{id}/manifest), set once the sweep ran.
	ManifestDigest string `json:"manifest_digest,omitempty"`
}

// sweepJob is the server-side state of one submitted sweep.
type sweepJob struct {
	id     string
	spec   SweepSpec
	sspec  sweep.Spec // resolved engine spec
	points int

	ctx    context.Context
	cancel context.CancelFunc

	mu             sync.Mutex
	status         string
	created        time.Time
	started        time.Time
	finished       time.Time
	progress       sweep.Progress
	result         *sweep.Result
	errMsg         string
	cancelReason   string
	subs           map[chan sseEvent]struct{}
	manifest       []byte
	manifestDigest string

	done chan struct{}
}

// --- job interface (shared queue/worker plumbing) ---------------------

func (j *sweepJob) jobCtx() context.Context { return j.ctx }
func (j *sweepJob) abort(reason string)     { j.finish(StatusCancelled, nil, reason) }
func (j *sweepJob) execute(s *Server)       { s.runSweep(j) }

func (j *sweepJob) cancelReasonOr(fallback string) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelReason != "" {
		return j.cancelReason
	}
	return fallback
}

func (j *sweepJob) snapshot(includeResult bool) SweepStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := SweepStatus{
		ID: j.id, Spec: j.spec, Status: j.status,
		Pairs: len(j.sspec.Pairs), Points: j.points,
		Created: j.created, Progress: j.progress, Error: j.errMsg,
	}
	if st.Progress.CellsTotal == 0 {
		st.Progress.CellsTotal = j.points * len(j.sspec.Pairs)
	}
	if st.Progress.PointsTotal == 0 {
		st.Progress.PointsTotal = j.points
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if includeResult && j.status == StatusDone {
		st.Result = j.result
	}
	st.ManifestDigest = j.manifestDigest
	return st
}

func (j *sweepJob) terminal() bool {
	switch j.status {
	case StatusDone, StatusFailed, StatusCancelled:
		return true
	}
	return false
}

func (j *sweepJob) finish(status string, result *sweep.Result, errMsg string) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return
	}
	j.status = status
	j.result = result
	j.errMsg = errMsg
	j.finished = time.Now()
	close(j.done)
	j.mu.Unlock()
	j.cancel()
}

func (j *sweepJob) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *sweepJob) setProgress(p sweep.Progress) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
	data, _ := json.Marshal(p)
	j.broadcast(sseEvent{name: "progress", data: data})
}

func (j *sweepJob) requestCancel(reason string) {
	j.mu.Lock()
	if j.terminal() {
		j.mu.Unlock()
		return
	}
	if j.cancelReason == "" {
		j.cancelReason = reason
	}
	queued := j.status == StatusQueued
	j.mu.Unlock()
	j.cancel()
	if queued {
		j.finish(StatusCancelled, nil, reason)
	}
}

func (j *sweepJob) subscribe() chan sseEvent {
	ch := make(chan sseEvent, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

func (j *sweepJob) unsubscribe(ch chan sseEvent) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

func (j *sweepJob) broadcast(ev sseEvent) {
	j.mu.Lock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// --- Submission -------------------------------------------------------

// resolveSweep turns the wire spec into the engine spec, rejecting
// anything the sweep cannot honor (the submit-time 400 path).
func (s *Server) resolveSweep(spec *SweepSpec) (sweep.Spec, int, error) {
	cspec := CampaignSpec{Suite: spec.Suite, Mini: spec.Mini, Size: spec.Size, Pairs: spec.Pairs}
	pairs, err := cspec.resolve()
	if err != nil {
		return sweep.Spec{}, 0, err
	}

	screen := machine.FidelityAnalytic
	if spec.Screen != "" {
		if screen, err = machine.ParseFidelity(spec.Screen); err != nil {
			return sweep.Spec{}, 0, err
		}
	}
	escalate, escalateOff := machine.FidelitySampled, false
	switch strings.ToLower(spec.Escalate) {
	case "":
	case "off", "none":
		escalateOff = true
	default:
		if escalate, err = machine.ParseFidelity(spec.Escalate); err != nil {
			return sweep.Spec{}, 0, err
		}
	}
	if _, err := machine.ParseSampling(spec.Sampling); err != nil {
		return sweep.Spec{}, 0, err
	}

	base := s.cfg.Characterize.Machine
	if spec.Machine != nil {
		base = *spec.Machine
	}
	if base.ClockHz == 0 {
		base = machine.HaswellScaled()
	}
	// Expand once now: a bad axis parameter, an invalid grid point or an
	// oversized grid rejects the submission instead of failing the job.
	points, err := sweep.Expand(base, spec.Axes)
	if err != nil {
		return sweep.Spec{}, 0, err
	}

	sspec := sweep.Spec{
		Base: base, Axes: spec.Axes, Pairs: pairs,
		Screen: screen, Escalate: escalate, EscalateOff: escalateOff,
		Metrics: spec.Metrics, SSEWeight: spec.SSEWeight,
	}
	if err := sspec.Validate(); err != nil {
		return sweep.Spec{}, 0, err
	}
	return sspec, len(points), nil
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}
	sspec, points, err := s.resolveSweep(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep spec: %v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &sweepJob{
		spec: spec, sspec: sspec, points: points,
		ctx: ctx, cancel: cancel,
		status: StatusQueued, created: time.Now(),
		subs: make(map[chan sseEvent]struct{}),
		done: make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.nextSweepID++
	j.id = fmt.Sprintf("s%06d", s.nextSweepID)
	select {
	case s.queue <- j:
		s.sweeps[j.id] = j
		s.sweepOrder = append(s.sweepOrder, j.id)
	default:
		s.nextSweepID--
		s.mu.Unlock()
		cancel()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"campaign queue is full (%d queued); retry later", s.cfg.QueueDepth)
		return
	}
	s.mu.Unlock()

	if wait := r.URL.Query().Get("wait"); wait == "1" || strings.EqualFold(wait, "true") {
		select {
		case <-j.done:
			writeJSON(w, http.StatusOK, j.snapshot(true))
		case <-r.Context().Done():
			j.requestCancel("client disconnected")
		}
		return
	}
	w.Header().Set("Location", "/v1/sweeps/"+j.id)
	writeJSON(w, http.StatusAccepted, j.snapshot(false))
}

// --- Execution --------------------------------------------------------

func (s *Server) runSweep(j *sweepJob) {
	j.setRunning()
	opt := s.cfg.Characterize
	if j.spec.Instructions > 0 {
		opt.Instructions = j.spec.Instructions
	}
	if j.spec.MultiplexSlots > 0 {
		opt.MultiplexSlots = j.spec.MultiplexSlots
	}
	if j.spec.Sampling != "" {
		// Parse errors were rejected at submit time.
		opt.Sampling, _ = machine.ParseSampling(j.spec.Sampling)
	}
	tr := obs.NewTrace()
	opt.Trace = tr

	// On a coordinator every grid point scatters through the fleet
	// dispatch; each point's sub-campaigns get their own id namespace so
	// chunk names stay unique across the sweep.
	var runner sweep.Runner
	if len(s.cfg.Fleet) > 0 {
		var n atomic.Int64
		suite, size := j.spec.Suite, j.spec.Size
		runner = func(ctx context.Context, pairs []profile.Pair, o core.Options) ([]core.Characteristics, error) {
			id := fmt.Sprintf("%s/g%d", j.id, n.Add(1))
			return s.runFleet(ctx, id, CampaignSpec{Suite: suite, Size: size}, pairs, o)
		}
	}

	res, err := sweep.Run(j.ctx, j.sspec, sweep.Options{
		Base:     opt,
		Run:      runner,
		Progress: j.setProgress,
	})

	if manifest, merr := tr.Manifest(); merr == nil {
		j.mu.Lock()
		j.manifest = manifest
		j.manifestDigest = obs.ManifestDigest(manifest)
		j.mu.Unlock()
	}

	// Account cells by phase and satisfying source — from the final
	// progress snapshot, so partially-run (failed/cancelled) sweeps
	// still report the cells they completed.
	j.mu.Lock()
	p := j.progress
	j.mu.Unlock()
	s.sweepScreenCells.add(p.Screen)
	s.sweepEscalateCells.add(p.Escalate)
	addMetSweepCells("screen", p.Screen)
	addMetSweepCells("escalate", p.Escalate)

	switch {
	case err == nil:
		j.finish(StatusDone, res, "")
	case j.ctx.Err() != nil || errors.Is(err, context.Canceled):
		j.finish(StatusCancelled, nil, j.cancelReasonOr("cancelled"))
	default:
		j.finish(StatusFailed, nil, err.Error())
	}
}

// --- Read handlers ----------------------------------------------------

func (s *Server) lookupSweep(r *http.Request) (*sweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.sweeps[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupSweep(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	includeResult := r.URL.Query().Get("results") != "0"
	writeJSON(w, http.StatusOK, j.snapshot(includeResult))
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*sweepJob, 0, len(s.sweepOrder))
	for _, id := range s.sweepOrder {
		jobs = append(jobs, s.sweeps[id])
	}
	s.mu.Unlock()
	out := make([]SweepStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot(false)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSweepDelete(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupSweep(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	j.requestCancel("cancelled by client")
	writeJSON(w, http.StatusAccepted, j.snapshot(false))
}

func (s *Server) handleSweepManifest(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupSweep(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	manifest, digest := j.manifest, j.manifestDigest
	j.mu.Unlock()
	if len(manifest) == 0 {
		writeError(w, http.StatusConflict, "sweep %s has not run yet", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Manifest-Digest", digest)
	w.Write(manifest)
}

func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupSweep(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	serveSSE(w, r, j.subscribe, j.unsubscribe, j.done,
		func() []byte { return mustJSON(j.snapshot(false)) })
}

// --- Metrics ----------------------------------------------------------

// cellCounters is a sweep-cell counter quartet (per phase).
type cellCounters struct {
	simulated, memory, store, remote atomic.Uint64
}

func (c *cellCounters) add(n sweep.CellCounts) {
	c.simulated.Add(uint64(n.Simulated))
	c.memory.Add(uint64(n.Memory))
	c.store.Add(uint64(n.Store))
	c.remote.Add(uint64(n.Remote))
}

// metSweepCells counts sweep cells by phase (screen vs escalate) and
// satisfying source — the Prometheus twin of the per-server quartets in
// the expvar map. A warmed-up deployment shows the differential win
// directly: source="simulated" stays flat while store/memory grow.
var metSweepCells = func() map[string]*obs.Counter {
	m := make(map[string]*obs.Counter)
	help := "Sweep cells by phase and satisfying source."
	for _, phase := range []string{"screen", "escalate"} {
		for _, src := range []string{"simulated", "memory", "store", "remote"} {
			m[phase+"/"+src] = obs.Default().Counter("speckit_sweep_cells_total", help,
				"phase", phase, "source", src)
			help = ""
		}
	}
	return m
}()

func addMetSweepCells(phase string, n sweep.CellCounts) {
	metSweepCells[phase+"/simulated"].Add(uint64(n.Simulated))
	metSweepCells[phase+"/memory"].Add(uint64(n.Memory))
	metSweepCells[phase+"/store"].Add(uint64(n.Store))
	metSweepCells[phase+"/remote"].Add(uint64(n.Remote))
}

// sweepSnapshot is the "sweeps" block of the expvar metrics map.
func (s *Server) sweepSnapshot() map[string]any {
	s.mu.Lock()
	states := map[string]int{}
	for _, j := range s.sweeps {
		j.mu.Lock()
		states[j.status]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return map[string]any{
		"states": states,
		"cells": map[string]uint64{
			"screen_simulated":   s.sweepScreenCells.simulated.Load(),
			"screen_memory":      s.sweepScreenCells.memory.Load(),
			"screen_store":       s.sweepScreenCells.store.Load(),
			"screen_remote":      s.sweepScreenCells.remote.Load(),
			"escalate_simulated": s.sweepEscalateCells.simulated.Load(),
			"escalate_memory":    s.sweepEscalateCells.memory.Load(),
			"escalate_store":     s.sweepEscalateCells.store.Load(),
			"escalate_remote":    s.sweepEscalateCells.remote.Load(),
		},
	}
}
