package server

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: two rings over the same fleet agree on every
// key — owners are a pure function of (fleet size, key).
func TestRingDeterministic(t *testing.T) {
	a, b := newHashRing(5), newHashRing(5)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.pick(key, nil) != b.pick(key, nil) {
			t.Fatalf("rings disagree on %q", key)
		}
	}
}

// TestRingDistribution: with 64 vnodes per worker, no worker's share of
// a large key population collapses to (near) nothing.
func TestRingDistribution(t *testing.T) {
	const workers, keys = 4, 2000
	r := newHashRing(workers)
	counts := make([]int, workers)
	for i := 0; i < keys; i++ {
		w := r.pick(fmt.Sprintf("pairkey-%d", i), nil)
		if w < 0 || w >= workers {
			t.Fatalf("pick returned %d", w)
		}
		counts[w]++
	}
	for w, n := range counts {
		// Uniform would be 500 each; require at least 10% of fair share.
		if n < keys/workers/10 {
			t.Errorf("worker %d owns only %d/%d keys", w, n, keys)
		}
	}
}

// TestRingMinimalChurn: marking one worker dead reassigns only that
// worker's keys — every key owned by a survivor keeps its owner.
func TestRingMinimalChurn(t *testing.T) {
	const workers, keys = 4, 1000
	const dead = 2
	r := newHashRing(workers)
	alive := func(w int) bool { return w != dead }
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("pairkey-%d", i)
		before := r.pick(key, nil)
		after := r.pick(key, alive)
		if after == dead {
			t.Fatalf("key %q assigned to the dead worker", key)
		}
		if before != dead && after != before {
			t.Errorf("key %q moved %d -> %d though its owner survived", key, before, after)
		}
		if before == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dead worker owned no keys; distribution test should have caught this")
	}
}

// TestRingNoAlive: a fully dead fleet yields -1, not a spin.
func TestRingNoAlive(t *testing.T) {
	r := newHashRing(3)
	if w := r.pick("anything", func(int) bool { return false }); w != -1 {
		t.Fatalf("pick over a dead fleet = %d, want -1", w)
	}
}

// TestResolvePairsFilter: the Pairs filter selects exactly the named
// pairs in request order and rejects unknowns and duplicates.
func TestResolvePairsFilter(t *testing.T) {
	full, err := (&CampaignSpec{Suite: "cpu2017", Size: "test"}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	names := []string{full[3].Name(), full[0].Name(), full[7].Name()}
	got, err := (&CampaignSpec{Suite: "cpu2017", Size: "test", Pairs: names}).resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("filtered to %d pairs, want 3", len(got))
	}
	for i, p := range got {
		if p.Name() != names[i] {
			t.Errorf("pair %d = %s, want %s (request order must be preserved)", i, p.Name(), names[i])
		}
	}
	if _, err := (&CampaignSpec{Suite: "cpu2017", Size: "test", Pairs: []string{"no-such-pair"}}).resolve(); err == nil {
		t.Error("unknown pair name accepted")
	}
	dup := []string{full[0].Name(), full[0].Name()}
	if _, err := (&CampaignSpec{Suite: "cpu2017", Size: "test", Pairs: dup}).resolve(); err == nil {
		t.Error("duplicate pair name accepted")
	}
}
