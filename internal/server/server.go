// Package server implements specserved's HTTP characterization service:
// a bounded campaign queue in front of the internal/sched engine, with
// per-job cancellation, SSE progress streaming, expvar metrics and a
// graceful drain for SIGTERM.
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/campaigns             submit a campaign; 202 + status,
//	                                 429 when the queue is full,
//	                                 503 while draining.
//	                                 ?wait=1 blocks until the campaign
//	                                 finishes and returns the full
//	                                 result; a client disconnect while
//	                                 waiting cancels the job.
//	GET    /v1/campaigns             list campaign statuses.
//	GET    /v1/campaigns/{id}        status; results included once done.
//	DELETE /v1/campaigns/{id}        cancel a queued or running campaign.
//	GET    /v1/campaigns/{id}/events SSE progress stream
//	                                 (progress events, then one done).
//	GET    /v1/campaigns/{id}/manifest JSONL run manifest (the span tree
//	                                 recorded while the campaign ran);
//	                                 available once terminal.
//	POST   /v1/sweeps                submit a design-space sweep
//	                                 (internal/sweep): same queue,
//	                                 backpressure and ?wait=1 semantics
//	                                 as campaigns.
//	GET    /v1/sweeps                list sweep statuses.
//	GET    /v1/sweeps/{id}           status; grid + knee reports once
//	                                 done.
//	DELETE /v1/sweeps/{id}           cancel a queued or running sweep.
//	GET    /v1/sweeps/{id}/events    SSE progress stream.
//	GET    /v1/sweeps/{id}/manifest  JSONL run manifest.
//	GET    /healthz                  200 ok / 503 draining.
//	GET    /metrics                  Prometheus text format: the
//	                                 process-wide obs registry (pair
//	                                 counters split by cache tier, stage
//	                                 and store latency histograms, HTTP
//	                                 request metrics, queue gauges).
//	GET    /metrics/expvar           expvar JSON, including the
//	                                 "specserved" map (queue, jobs,
//	                                 per-tier cache stats, store stats).
//
// Every campaign runs under an obs.Trace; its manifest digest is
// reported in the campaign status, so any served result is traceable to
// exactly one recorded run.
//
// Results served twice are bit-identical: campaigns run through the same
// memoizing cache (and optional persistent store tier) as the CLI tools,
// keyed by content hashes of pair model + machine + options.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/store"
)

// Config configures a Server.
type Config struct {
	// Workers is the number of campaigns run concurrently (default 2).
	// Each campaign additionally fans out over
	// Characterize.Parallelism pair workers.
	Workers int
	// QueueDepth bounds the submission queue (default 16); submissions
	// beyond running + queued capacity are rejected with 429.
	QueueDepth int
	// DrainGrace bounds how long Drain waits for in-flight campaigns
	// before cancelling them (0 = wait until they complete).
	DrainGrace time.Duration
	// Characterize is the base options every campaign starts from —
	// machine, instruction window, parallelism, cache and persistent
	// store. Per-request spec fields override Instructions,
	// MultiplexSlots and Sampling.
	Characterize core.Options
	// Fleet, when non-empty, turns this server into a coordinator:
	// instead of simulating locally, each campaign's pairs are scattered
	// across these workers by consistent hash of the pair's result-cache
	// content key and the gathered results are written through the
	// coordinator's own cache tiers. The fleet must be homogeneous —
	// every worker running the same machine model and base flags — or
	// worker-side keys (and bits) would diverge from the coordinator's.
	Fleet []RemoteWorker
	// FleetChunk bounds how many pairs one scattered sub-campaign
	// carries (default 4). Smaller chunks give the dispatcher more
	// stealing and resubmission granularity; larger ones amortize
	// per-request overhead.
	FleetChunk int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.FleetChunk <= 0 {
		c.FleetChunk = 4
	}
	return c
}

// CampaignSpec is the client's description of one campaign.
type CampaignSpec struct {
	// Suite is "cpu2017" or "cpu2006".
	Suite string `json:"suite"`
	// Mini filters to one mini-suite: "all" (or empty), "rate-int",
	// "rate-fp", "speed-int", "speed-fp".
	Mini string `json:"mini,omitempty"`
	// Size is the input size: "test", "train" or "ref".
	Size string `json:"size"`
	// Instructions overrides the server's per-pair instruction window
	// when positive.
	Instructions uint64 `json:"instructions,omitempty"`
	// MultiplexSlots overrides the server's counter-multiplexing
	// emulation when positive.
	MultiplexSlots int `json:"multiplex_slots,omitempty"`
	// Sampling sets the systematic-sampling fidelity knob for this
	// campaign: "off", "default", or "PERIOD/DETAIL/WARMUP" instruction
	// counts (e.g. "262144/8192/8192"). Empty inherits the server's base
	// options. Sampled results are bounded-error estimates keyed
	// separately from exact runs in every cache tier, and their pairs
	// are reported under the sampled_* counters in /metrics.
	Sampling string `json:"sampling,omitempty"`
	// Machine, when non-nil, overrides the server's base machine
	// configuration for this campaign (the declarative JSON form;
	// decoding validates it). This is how sweep coordinators forward a
	// grid point's configuration to fleet workers: the JSON round-trip
	// is fingerprint-stable, so worker-side content keys match the
	// coordinator's exactly.
	Machine *machine.Config `json:"machine,omitempty"`
	// Fidelity selects this campaign's simulation tier: "exact",
	// "sampled" (shorthand for the default sampling knob), or "analytic"
	// (miss-curve prediction — the fastest tier, with per-metric error
	// floors). Empty inherits the server's base options. "analytic" does
	// not compose with a sampling knob and overrides any server-side
	// sampling default; analytic pairs are reported under the analytic_*
	// counters in /metrics and keyed separately from both simulation
	// tiers in every cache tier.
	Fidelity string `json:"fidelity,omitempty"`
	// WorkersPerPair, when >1, splits each pair's measured stream into
	// that many windows simulated concurrently and stitched with
	// frozen-cache warm state (intra-pair parallelism). Exact tier
	// only — the sampled and analytic tiers normalize the knob away.
	// Results are tolerance-gated estimates of the sequential run,
	// bit-reproducible for a fixed count and keyed separately in every
	// cache tier; the coordinator forwards the knob to fleet workers
	// verbatim so a sharded campaign derives the same keys a
	// single-node run would.
	WorkersPerPair int `json:"workers_per_pair,omitempty"`
	// RateCopies, when >1, characterizes each pair as a rate-mode run:
	// that many co-running copies with private L1/L2 contending on one
	// shared inclusive L3, reported with per-copy and aggregate
	// throughput plus contention stats (Characteristics.Rate). Exact
	// tier only; rate pairs are reported under the rate_* counters in
	// /metrics and keyed separately in every cache tier.
	RateCopies int `json:"rate_copies,omitempty"`
	// Topology, when non-empty, runs each pair on a heterogeneous
	// P-core/E-core machine under an OS-placement policy, e.g.
	// "4P4E-random" (machine.ParseTopology syntax). Random placement
	// yields a runtime distribution (Characteristics.Runtime). Exact
	// tier only; keyed separately in every cache tier.
	Topology string `json:"topology,omitempty"`
	// Scenario, when non-nil, is the structured form of the measurement
	// scenario. It replaces the flat sampling, fidelity,
	// workers_per_pair, rate_copies and topology fields, which must then
	// stay unset — a spec naming a knob in both forms is rejected with a
	// field-tagged 400. Flat-only specs keep working unchanged: they are
	// normalized into the same internal view.
	Scenario *ScenarioSpec `json:"scenario,omitempty"`
	// Pairs, when non-empty, filters the expanded suite to exactly the
	// named pairs (profile.Pair.Name, e.g. "502.gcc_r-in3"), in the
	// order given. Unknown or duplicate names reject the spec. This is
	// how the coordinator scatters a campaign: each worker receives the
	// same suite/size spec narrowed to its chunk of pairs.
	Pairs []string `json:"pairs,omitempty"`
}

// ScenarioSpec is the wire form of a campaign's measurement scenario
// (core.Scenario): which tier simulates the pairs and under what
// contention/topology model. Field semantics match the equally named
// flat CampaignSpec fields; empty fields inherit the server's base
// options.
type ScenarioSpec struct {
	Fidelity       string `json:"fidelity,omitempty"`
	Sampling       string `json:"sampling,omitempty"`
	WorkersPerPair int    `json:"workers_per_pair,omitempty"`
	RateCopies     int    `json:"rate_copies,omitempty"`
	Topology       string `json:"topology,omitempty"`
}

// scenarioView returns the spec's scenario knobs in structured form
// regardless of which form carried them, rejecting specs that use both
// forms for any knob.
func (spec *CampaignSpec) scenarioView() (ScenarioSpec, error) {
	if spec.Scenario == nil {
		return ScenarioSpec{
			Fidelity:       spec.Fidelity,
			Sampling:       spec.Sampling,
			WorkersPerPair: spec.WorkersPerPair,
			RateCopies:     spec.RateCopies,
			Topology:       spec.Topology,
		}, nil
	}
	conflict := ""
	switch {
	case spec.Sampling != "":
		conflict = "sampling"
	case spec.Fidelity != "":
		conflict = "fidelity"
	case spec.WorkersPerPair != 0:
		conflict = "workers_per_pair"
	case spec.RateCopies != 0:
		conflict = "rate_copies"
	case spec.Topology != "":
		conflict = "topology"
	}
	if conflict != "" {
		return ScenarioSpec{}, badField(conflict,
			"%q conflicts with the scenario object; set scenario.%s instead", conflict, conflict)
	}
	return *spec.Scenario, nil
}

// specError ties a campaign-spec validation failure to the JSON field
// that caused it, so a 400 response carries a machine-readable "field"
// alongside the human-readable "error".
type specError struct {
	field string
	msg   string
}

func (e *specError) Error() string { return e.msg }

func badField(field, format string, args ...any) *specError {
	return &specError{field: field, msg: fmt.Sprintf(format, args...)}
}

// resolve expands the spec into the campaign's pair list.
func (spec *CampaignSpec) resolve() ([]profile.Pair, error) {
	var apps []*profile.Profile
	switch strings.ToLower(spec.Suite) {
	case "cpu2017", "cpu17", "":
		apps = profile.CPU2017()
	case "cpu2006", "cpu06":
		apps = profile.CPU2006()
	default:
		return nil, badField("suite", "unknown suite %q", spec.Suite)
	}
	switch strings.ToLower(spec.Mini) {
	case "all", "":
	case "rate-int", "rate-fp", "speed-int", "speed-fp":
		want := map[string]profile.Suite{
			"rate-int": profile.RateInt, "rate-fp": profile.RateFP,
			"speed-int": profile.SpeedInt, "speed-fp": profile.SpeedFP,
		}[strings.ToLower(spec.Mini)]
		var kept []*profile.Profile
		for _, app := range apps {
			if app.Suite == want {
				kept = append(kept, app)
			}
		}
		apps = kept
	default:
		return nil, badField("mini", "unknown mini-suite %q", spec.Mini)
	}
	var size profile.InputSize
	switch strings.ToLower(spec.Size) {
	case "test":
		size = profile.Test
	case "train":
		size = profile.Train
	case "ref", "":
		size = profile.Ref
	default:
		return nil, badField("size", "unknown input size %q", spec.Size)
	}
	pairs := profile.ExpandSuite(apps, size)
	if len(pairs) > 0 && len(spec.Pairs) > 0 {
		byName := make(map[string]int, len(pairs))
		for i := range pairs {
			byName[pairs[i].Name()] = i
		}
		picked := make([]profile.Pair, 0, len(spec.Pairs))
		seen := make(map[string]bool, len(spec.Pairs))
		for _, name := range spec.Pairs {
			i, ok := byName[name]
			if !ok {
				return nil, badField("pairs", "pair %q is not in the selected suite", name)
			}
			if seen[name] {
				return nil, badField("pairs", "pair %q named twice", name)
			}
			seen[name] = true
			picked = append(picked, pairs[i])
		}
		pairs = picked
	}
	if len(pairs) == 0 {
		return nil, errors.New("spec selects no application-input pairs")
	}
	return pairs, nil
}

// Campaign statuses.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// ProgressStatus is the JSON form of a campaign progress snapshot.
type ProgressStatus struct {
	Done      int `json:"done"`
	Total     int `json:"total"`
	CacheHits int `json:"cache_hits"`
	StoreHits int `json:"store_hits"`
	// Remote counts pairs completed on fleet workers; always zero on a
	// non-coordinator server.
	Remote    int   `json:"remote,omitempty"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// CampaignStatus is the JSON form of one campaign's state.
type CampaignStatus struct {
	ID       string                 `json:"id"`
	Spec     CampaignSpec           `json:"spec"`
	Status   string                 `json:"status"`
	Pairs    int                    `json:"pairs"`
	Created  time.Time              `json:"created"`
	Started  *time.Time             `json:"started,omitempty"`
	Finished *time.Time             `json:"finished,omitempty"`
	Progress ProgressStatus         `json:"progress"`
	Error    string                 `json:"error,omitempty"`
	Results  []core.Characteristics `json:"results,omitempty"`
	// ManifestDigest is the sha256 of the campaign's JSONL run manifest
	// (GET /v1/campaigns/{id}/manifest), set once the campaign ran:
	// the handle that ties any reported number to exactly one recorded
	// run.
	ManifestDigest string `json:"manifest_digest,omitempty"`
}

// sseEvent is one server-sent event.
type sseEvent struct {
	name string
	data []byte
}

// campaign is the server-side state of one submitted job.
type campaign struct {
	id    string
	spec  CampaignSpec
	pairs []profile.Pair
	// view is the spec's scenario knobs in structured form (whichever
	// spec form carried them); sampling, fidelity and topology are their
	// parsed values, resolved at submit time (validation happens before
	// the campaign is admitted). Empty view fields inherit the server's
	// base options.
	view     ScenarioSpec
	sampling machine.Sampling
	fidelity machine.Fidelity
	topology machine.Topology

	// ctx is cancelled by DELETE, a waiting client's disconnect, or the
	// drain timeout; the sched engine aborts queued and in-flight pairs
	// through it (the PR 1 cancellation path).
	ctx    context.Context
	cancel context.CancelFunc

	mu           sync.Mutex
	status       string
	created      time.Time
	started      time.Time
	finished     time.Time
	progress     sched.Progress
	results      []core.Characteristics
	errMsg       string
	cancelReason string
	subs         map[chan sseEvent]struct{}
	// manifest and manifestDigest hold the rendered JSONL run manifest
	// once the campaign has run (empty for jobs cancelled before start).
	manifest       []byte
	manifestDigest string

	// done is closed exactly once when the campaign reaches a terminal
	// status; SSE streams and ?wait=1 submitters block on it.
	done chan struct{}
}

func (c *campaign) snapshot(includeResults bool) CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{
		ID: c.id, Spec: c.spec, Status: c.status, Pairs: len(c.pairs),
		Created: c.created, Error: c.errMsg,
		Progress: ProgressStatus{
			Done: c.progress.Done, Total: c.progress.Total,
			CacheHits: c.progress.CacheHits, StoreHits: c.progress.StoreHits,
			Remote:    c.progress.Remote,
			ElapsedMS: c.progress.Elapsed.Milliseconds(),
		},
	}
	if st.Progress.Total == 0 {
		st.Progress.Total = len(c.pairs)
	}
	if !c.started.IsZero() {
		t := c.started
		st.Started = &t
	}
	if !c.finished.IsZero() {
		t := c.finished
		st.Finished = &t
	}
	if includeResults && c.status == StatusDone {
		st.Results = c.results
	}
	st.ManifestDigest = c.manifestDigest
	return st
}

func (c *campaign) terminal() bool {
	switch c.status {
	case StatusDone, StatusFailed, StatusCancelled:
		return true
	}
	return false
}

// finish moves the campaign to a terminal status once; later calls are
// no-ops (e.g. a DELETE racing the worker's own completion).
func (c *campaign) finish(status string, results []core.Characteristics, errMsg string) {
	c.mu.Lock()
	if c.terminal() {
		c.mu.Unlock()
		return
	}
	c.status = status
	c.results = results
	c.errMsg = errMsg
	c.finished = time.Now()
	close(c.done)
	c.mu.Unlock()
	c.cancel() // release the context regardless of how we finished
}

func (c *campaign) setRunning() {
	c.mu.Lock()
	c.status = StatusRunning
	c.started = time.Now()
	c.mu.Unlock()
}

func (c *campaign) setProgress(p sched.Progress) {
	c.mu.Lock()
	c.progress = p
	c.mu.Unlock()
	data, _ := json.Marshal(ProgressStatus{
		Done: p.Done, Total: p.Total,
		CacheHits: p.CacheHits, StoreHits: p.StoreHits,
		Remote:    p.Remote,
		ElapsedMS: p.Elapsed.Milliseconds(),
	})
	c.broadcast(sseEvent{name: "progress", data: data})
}

// requestCancel records why the job is being cancelled and cancels its
// context. A queued job is finished immediately; a running one aborts
// through the scheduler and is finished by its worker.
func (c *campaign) requestCancel(reason string) {
	c.mu.Lock()
	if c.terminal() {
		c.mu.Unlock()
		return
	}
	if c.cancelReason == "" {
		c.cancelReason = reason
	}
	queued := c.status == StatusQueued
	c.mu.Unlock()
	c.cancel()
	if queued {
		c.finish(StatusCancelled, nil, reason)
	}
}

func (c *campaign) subscribe() chan sseEvent {
	ch := make(chan sseEvent, 64)
	c.mu.Lock()
	c.subs[ch] = struct{}{}
	c.mu.Unlock()
	return ch
}

func (c *campaign) unsubscribe(ch chan sseEvent) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// broadcast fans an event out to subscribers, dropping it for any
// subscriber whose buffer is full — terminal state is delivered via the
// done channel, so slow consumers only lose intermediate snapshots.
func (c *campaign) broadcast(ev sseEvent) {
	c.mu.Lock()
	for ch := range c.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	c.mu.Unlock()
}

// job is what the shared worker pool pulls off the bounded queue:
// campaigns and sweeps ride the same queue, so QueueDepth bounds (and
// 429 backpressure covers) the server's total admitted work.
type job interface {
	jobCtx() context.Context
	// abort finishes the job as cancelled without running it (drain, or
	// cancellation while still queued).
	abort(reason string)
	cancelReasonOr(fallback string) string
	execute(s *Server)
}

func (c *campaign) jobCtx() context.Context { return c.ctx }
func (c *campaign) abort(reason string)     { c.finish(StatusCancelled, nil, reason) }
func (c *campaign) execute(s *Server)       { s.run(c) }
func (c *campaign) cancelReasonOr(fallback string) string {
	return c.reason(fallback)
}

// Server is the characterization service.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan job

	mu          sync.Mutex
	jobs        map[string]*campaign
	order       []string // submission order, for listing
	nextID      int
	sweeps      map[string]*sweepJob
	sweepOrder  []string
	nextSweepID int
	draining    bool

	wg      sync.WaitGroup
	started time.Time

	rejected        atomic.Uint64
	pairsSimulated  atomic.Uint64
	pairsFromCache  atomic.Uint64
	pairsFromStore  atomic.Uint64
	pairsFromRemote atomic.Uint64

	// Sampled campaigns account their pairs separately: sampled results
	// are estimates, so mixing them into the exact counters would make
	// the tier split lie about how much exact simulation the server did.
	sampledSimulated  atomic.Uint64
	sampledFromCache  atomic.Uint64
	sampledFromStore  atomic.Uint64
	sampledFromRemote atomic.Uint64

	// Analytic campaigns likewise: predictions, not simulations, with
	// their own error profile.
	analyticComputed   atomic.Uint64
	analyticFromCache  atomic.Uint64
	analyticFromStore  atomic.Uint64
	analyticFromRemote atomic.Uint64

	// Rate-mode and topology campaigns likewise: exact simulations of a
	// different experiment (shared-L3 contention, placement
	// distributions), never conflated with plain exact pairs.
	rateSimulated  atomic.Uint64
	rateFromCache  atomic.Uint64
	rateFromStore  atomic.Uint64
	rateFromRemote atomic.Uint64

	// Sweep cells account separately from campaign pairs, split by
	// phase: the screen/escalate ratio is the fidelity-escalation
	// scoreboard, and the simulated/store split is the differential-
	// scheduling one.
	sweepScreenCells   cellCounters
	sweepEscalateCells cellCounters

	// fleetUp tracks each configured fleet worker's last observed health
	// (pre-scatter probes and dispatch evictions write it); 1:1 with
	// cfg.Fleet, nil on a non-coordinator server.
	fleetUp []atomic.Bool
}

// runCampaign is the worker's campaign entry point; tests swap it to
// observe queueing and cancellation without paying for simulations.
var runCampaign = core.Characterize

// New builds the server and starts its worker pool. Call Drain to stop.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   make(chan job, cfg.QueueDepth),
		jobs:    make(map[string]*campaign),
		sweeps:  make(map[string]*sweepJob),
		started: time.Now(),
	}
	if n := len(cfg.Fleet); n > 0 {
		s.fleetUp = make([]atomic.Bool, n)
		for i := range s.fleetUp {
			s.fleetUp[i].Store(true) // optimistic until the first probe
		}
	}
	s.mux = http.NewServeMux()
	s.handle("POST /v1/campaigns", "submit", s.handleSubmit)
	s.handle("GET /v1/campaigns", "list", s.handleList)
	s.handle("GET /v1/campaigns/{id}", "get", s.handleGet)
	s.handle("DELETE /v1/campaigns/{id}", "delete", s.handleDelete)
	s.handle("GET /v1/campaigns/{id}/events", "events", s.handleEvents)
	s.handle("GET /v1/campaigns/{id}/manifest", "manifest", s.handleManifest)
	s.handle("POST /v1/sweeps", "sweep-submit", s.handleSweepSubmit)
	s.handle("GET /v1/sweeps", "sweep-list", s.handleSweepList)
	s.handle("GET /v1/sweeps/{id}", "sweep-get", s.handleSweepGet)
	s.handle("DELETE /v1/sweeps/{id}", "sweep-delete", s.handleSweepDelete)
	s.handle("GET /v1/sweeps/{id}/events", "sweep-events", s.handleSweepEvents)
	s.handle("GET /v1/sweeps/{id}/manifest", "sweep-manifest", s.handleSweepManifest)
	s.handle("GET /healthz", "health", s.handleHealth)
	s.handle("GET /metrics", "metrics", handlePrometheus)
	s.handle("GET /metrics/expvar", "expvar", expvar.Handler().ServeHTTP)
	s.publishMetrics()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// handle registers an instrumented route: requests are counted by
// (route, status code) and timed into a per-route latency histogram.
// Routes carry an explicit label because the mux pattern is not
// recoverable from the request under this module's Go version.
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	hist := obs.Default().Histogram("speckit_http_request_seconds",
		"HTTP request latency by route.", obs.LatencyBuckets, "route", route)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		hist.ObserveDuration(time.Since(start))
		obs.Default().Counter("speckit_http_requests_total",
			"HTTP requests by route and status code.",
			"route", route, "code", strconv.Itoa(sw.code)).Inc()
	})
}

// statusWriter captures the response code for the request metrics and
// forwards Flush so SSE streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handlePrometheus renders the process-wide obs registry in the
// Prometheus text exposition format.
func handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

// Drain stops admission (submits return 503, healthz flips to 503),
// cancels still-queued campaigns, and waits for in-flight campaigns to
// finish — or cancels them after Config.DrainGrace. Safe to call more
// than once; every call returns only when the pool has stopped.
func (s *Server) Drain() {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	if first {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	if s.cfg.DrainGrace > 0 {
		select {
		case <-done:
			return
		case <-time.After(s.cfg.DrainGrace):
			s.cancelAll("server shutting down")
		}
	}
	<-done
}

func (s *Server) cancelAll(reason string) {
	s.mu.Lock()
	jobs := make([]*campaign, 0, len(s.jobs))
	for _, c := range s.jobs {
		jobs = append(jobs, c)
	}
	sweeps := make([]*sweepJob, 0, len(s.sweeps))
	for _, j := range s.sweeps {
		sweeps = append(sweeps, j)
	}
	s.mu.Unlock()
	for _, c := range jobs {
		c.requestCancel(reason)
	}
	for _, j := range sweeps {
		j.requestCancel(reason)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker pulls jobs (campaigns and sweeps) off the bounded queue until
// Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.isDraining() {
			j.abort("server draining")
			continue
		}
		if j.jobCtx().Err() != nil {
			j.abort(j.cancelReasonOr("cancelled before start"))
			continue
		}
		j.execute(s)
	}
}

func (c *campaign) reason(fallback string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelReason != "" {
		return c.cancelReason
	}
	return fallback
}

func (s *Server) run(c *campaign) {
	c.setRunning()
	opt := s.cfg.Characterize
	if c.spec.Instructions > 0 {
		opt.Instructions = c.spec.Instructions
	}
	if c.spec.MultiplexSlots > 0 {
		opt.MultiplexSlots = c.spec.MultiplexSlots
	}
	if c.spec.Machine != nil {
		opt.Machine = *c.spec.Machine
	}
	if c.view.Sampling != "" {
		opt.Sampling = c.sampling
	}
	if c.view.WorkersPerPair > 0 {
		opt.IntraPairWorkers = c.view.WorkersPerPair
	}
	if c.view.Fidelity != "" {
		opt.Fidelity = c.fidelity
		if c.fidelity == machine.FidelityAnalytic {
			// An explicit analytic request overrides any server-side
			// sampling default: the submit-time validation already
			// rejected specs that name both knobs themselves.
			opt.Sampling = machine.Sampling{}
		}
	}
	if c.view.RateCopies > 0 {
		opt.RateCopies = c.view.RateCopies
	}
	if c.view.Topology != "" {
		opt.Topology = c.topology
	}
	if (opt.RateCopies > 1 || opt.Topology.Enabled()) &&
		c.view.Fidelity == "" && c.view.Sampling == "" {
		// Like an explicit analytic request, an explicit rate/topology
		// request overrides any server-side sampling default: the
		// scenario is exact-tier only, and submit-time validation
		// already rejected specs that name both knobs themselves.
		opt.Fidelity = machine.FidelityExact
		opt.Sampling = machine.Sampling{}
	}
	opt.Context = c.ctx
	opt.Progress = c.setProgress
	tr := obs.NewTrace()
	opt.Trace = tr

	var results []core.Characteristics
	var err error
	if len(s.cfg.Fleet) > 0 {
		results, err = s.runFleet(c.ctx, c.id, c.spec, c.pairs, opt)
	} else {
		results, err = runCampaign(c.pairs, opt)
	}

	// Render the run manifest before flipping the terminal status, so a
	// client that observes "done" can always fetch the manifest whose
	// digest the status reports.
	if manifest, merr := tr.Manifest(); merr == nil {
		c.mu.Lock()
		c.manifest = manifest
		c.manifestDigest = obs.ManifestDigest(manifest)
		c.mu.Unlock()
	}

	// Account completed pairs by where they came from before flipping
	// the terminal status; each non-exact tier feeds its own counter
	// quartet so /metrics never conflates estimates with exact results —
	// or the two estimate tiers with each other.
	c.mu.Lock()
	p := c.progress
	c.mu.Unlock()
	fromStore, fromCache, fromRemote, simulated := &s.pairsFromStore, &s.pairsFromCache, &s.pairsFromRemote, &s.pairsSimulated
	mode := "exact"
	switch {
	case opt.RateCopies > 1 || opt.Topology.Enabled():
		// Rate/topology pairs are exact-tier simulations, but of a
		// different experiment (contention, placement distributions), so
		// their tier split reports separately from plain exact pairs.
		fromStore, fromCache, fromRemote, simulated = &s.rateFromStore, &s.rateFromCache, &s.rateFromRemote, &s.rateSimulated
		mode = "rate"
	case opt.Fidelity == machine.FidelityAnalytic:
		fromStore, fromCache, fromRemote, simulated = &s.analyticFromStore, &s.analyticFromCache, &s.analyticFromRemote, &s.analyticComputed
		mode = "analytic"
	case opt.Sampling.Enabled():
		fromStore, fromCache, fromRemote, simulated = &s.sampledFromStore, &s.sampledFromCache, &s.sampledFromRemote, &s.sampledSimulated
		mode = "sampled"
	}
	fromStore.Add(uint64(p.StoreHits))
	fromCache.Add(uint64(p.CacheHits - p.StoreHits))
	fromRemote.Add(uint64(p.Remote))
	simulated.Add(uint64(p.Done - p.CacheHits - p.Remote))
	metServedPairs[mode+"/store"].Add(uint64(p.StoreHits))
	metServedPairs[mode+"/memory"].Add(uint64(p.CacheHits - p.StoreHits))
	metServedPairs[mode+"/remote"].Add(uint64(p.Remote))
	metServedPairs[mode+"/simulated"].Add(uint64(p.Done - p.CacheHits - p.Remote))

	switch {
	case err == nil:
		c.finish(StatusDone, results, "")
	case c.ctx.Err() != nil || errors.Is(err, context.Canceled):
		c.finish(StatusCancelled, nil, c.reason("cancelled"))
	default:
		c.finish(StatusFailed, nil, err.Error())
	}
}

// --- HTTP handlers ----------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeSpecError renders a 400 for a spec validation failure; when the
// error is field-tagged (specError) the envelope carries the offending
// JSON field so typed clients can point at it.
func writeSpecError(w http.ResponseWriter, err error) {
	var se *specError
	if errors.As(err, &se) {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": "bad campaign spec: " + se.msg,
			"field": se.field,
		})
		return
	}
	writeError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeSpecError(w, err)
		return
	}
	pairs, err := spec.resolve()
	if err != nil {
		writeSpecError(w, err)
		return
	}
	view, err := spec.scenarioView()
	if err != nil {
		writeSpecError(w, err)
		return
	}
	sampling, err := machine.ParseSampling(view.Sampling)
	if err != nil {
		writeSpecError(w, badField("sampling", "%v", err))
		return
	}
	fidelity, err := machine.ParseFidelity(view.Fidelity)
	if err != nil {
		writeSpecError(w, badField("fidelity", "%v", err))
		return
	}
	topology, err := machine.ParseTopology(view.Topology)
	if err != nil {
		writeSpecError(w, badField("topology", "%v", err))
		return
	}
	if fidelity == machine.FidelityAnalytic && sampling.Enabled() {
		writeSpecError(w, badField("fidelity",
			"the analytic fidelity tier does not compose with sampling"))
		return
	}
	if view.WorkersPerPair < 0 {
		writeSpecError(w, badField("workers_per_pair",
			"workers_per_pair must be non-negative"))
		return
	}
	if view.RateCopies < 0 {
		writeSpecError(w, badField("rate_copies",
			"rate_copies must be non-negative"))
		return
	}
	if view.RateCopies > 1 || topology.Enabled() {
		// Contention and topology scenarios are exact-tier only (see
		// core.Options); an explicitly non-exact tier in the same spec
		// cannot be honored.
		switch {
		case fidelity != machine.FidelityExact:
			writeSpecError(w, badField("fidelity",
				"rate and topology scenarios run at exact fidelity only (got %s)", fidelity))
			return
		case sampling.Enabled():
			writeSpecError(w, badField("sampling",
				"rate and topology scenarios run at exact fidelity only"))
			return
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &campaign{
		spec: spec, pairs: pairs,
		view: view, sampling: sampling, fidelity: fidelity, topology: topology,
		ctx: ctx, cancel: cancel,
		status: StatusQueued, created: time.Now(),
		subs: make(map[chan sseEvent]struct{}),
		done: make(chan struct{}),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.nextID++
	c.id = fmt.Sprintf("c%06d", s.nextID)
	select {
	case s.queue <- c:
		s.jobs[c.id] = c
		s.order = append(s.order, c.id)
	default:
		s.nextID--
		s.mu.Unlock()
		cancel()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"campaign queue is full (%d queued); retry later", s.cfg.QueueDepth)
		return
	}
	s.mu.Unlock()

	if wait := r.URL.Query().Get("wait"); wait == "1" || strings.EqualFold(wait, "true") {
		select {
		case <-c.done:
			writeJSON(w, http.StatusOK, c.snapshot(true))
		case <-r.Context().Done():
			// The client that asked to wait is gone: cancel its job
			// through the scheduler's context path.
			c.requestCancel("client disconnected")
		}
		return
	}
	w.Header().Set("Location", "/v1/campaigns/"+c.id)
	writeJSON(w, http.StatusAccepted, c.snapshot(false))
}

func (s *Server) lookup(r *http.Request) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.jobs[r.PathValue("id")]
	return c, ok
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	includeResults := r.URL.Query().Get("results") != "0"
	writeJSON(w, http.StatusOK, c.snapshot(includeResults))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*campaign, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]CampaignStatus, len(jobs))
	for i, c := range jobs {
		out[i] = c.snapshot(false)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	c.requestCancel("cancelled by client")
	writeJSON(w, http.StatusAccepted, c.snapshot(false))
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	c.mu.Lock()
	manifest, digest := c.manifest, c.manifestDigest
	c.mu.Unlock()
	if len(manifest) == 0 {
		writeError(w, http.StatusConflict, "campaign %s has not run yet", c.id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Manifest-Digest", digest)
	w.Write(manifest)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", r.PathValue("id"))
		return
	}
	serveSSE(w, r, c.subscribe, c.unsubscribe, c.done,
		func() []byte { return mustJSON(c.snapshot(false)) })
}

// serveSSE streams one job's event feed: an initial status event, live
// progress events, then a final done event once the job is terminal.
// Campaigns and sweeps share it.
func serveSSE(w http.ResponseWriter, r *http.Request,
	subscribe func() chan sseEvent, unsubscribe func(chan sseEvent),
	done <-chan struct{}, snapshot func() []byte) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ch := subscribe()
	defer unsubscribe(ch)

	writeSSE(w, sseEvent{name: "status", data: snapshot()})
	flusher.Flush()
	for {
		select {
		case ev := <-ch:
			writeSSE(w, ev)
			flusher.Flush()
		case <-done:
			// Flush any progress still buffered, then the terminal event.
			for {
				select {
				case ev := <-ch:
					writeSSE(w, ev)
				default:
					writeSSE(w, sseEvent{name: "done", data: snapshot()})
					flusher.Flush()
					return
				}
			}
		case <-r.Context().Done():
			// An SSE watcher leaving does not cancel the job — other
			// watchers (or none) may still want the result.
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, ev sseEvent) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	return data
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// --- Metrics ----------------------------------------------------------

// expvar.Publish panics on duplicate names, so the "specserved" map is
// published once per process and routed to whichever Server was built
// most recently (tests build several; real processes build one). The
// obs gauge funcs follow the same active-server indirection — GaugeFunc
// is replace-on-reregister, so repeated New calls just repoint them.
var (
	metricsOnce  sync.Once
	activeServer atomic.Pointer[Server]
)

// metServedPairs counts pairs in completed campaigns, split by fidelity
// tier (exact vs sampled vs analytic estimates) and satisfying source — the
// Prometheus twin of the per-server atomics behind the expvar map.
// "remote" pairs were computed on fleet workers by a coordinator.
var metServedPairs = func() map[string]*obs.Counter {
	m := make(map[string]*obs.Counter)
	help := "Pairs in completed campaigns by fidelity tier and satisfying source."
	for _, mode := range []string{"exact", "sampled", "analytic", "rate"} {
		for _, src := range []string{"simulated", "memory", "store", "remote"} {
			m[mode+"/"+src] = obs.Default().Counter("speckit_served_pairs_total", help,
				"mode", mode, "source", src)
			help = ""
		}
	}
	return m
}()

// Window-level simulation metrics, mirrored into the expvar snapshot.
// The machine kernels feed these series (the obs registry get-or-create
// contract hands back the same instances here): "sampled" counts a
// sampled run's periodic detail windows, "parallel" the concurrently
// simulated sub-windows of intra-pair parallel runs, and "rate" the
// round-robin interleaving rounds of shared-L3 rate runs.
var (
	metWinCount = map[string]*obs.Counter{
		"sampled":  obs.Default().Counter("speckit_pair_windows_total", "", "source", "sampled"),
		"parallel": obs.Default().Counter("speckit_pair_windows_total", "", "source", "parallel"),
		"rate":     obs.Default().Counter("speckit_pair_windows_total", "", "source", "rate"),
	}
	metWinSeconds = map[string]*obs.Histogram{
		"sampled":  obs.Default().Histogram("speckit_pair_window_seconds", "", obs.LatencyBuckets, "source", "sampled"),
		"parallel": obs.Default().Histogram("speckit_pair_window_seconds", "", obs.LatencyBuckets, "source", "parallel"),
		"rate":     obs.Default().Histogram("speckit_pair_window_seconds", "", obs.LatencyBuckets, "source", "rate"),
	}
)

// pairWindowsSnapshot summarizes the window-level series for the expvar
// map: total windows plus wall-time count/sum and latency quantiles per
// windowing source.
func pairWindowsSnapshot() map[string]any {
	out := make(map[string]any, len(metWinCount))
	for src, c := range metWinCount {
		h := metWinSeconds[src].Snapshot()
		out[src] = map[string]any{
			"windows":     c.Value(),
			"seconds_sum": h.Sum,
			"p50_seconds": h.Quantile(0.5),
			"p99_seconds": h.Quantile(0.99),
		}
	}
	return out
}

func (s *Server) publishMetrics() {
	activeServer.Store(s)
	reg := obs.Default()
	reg.GaugeFunc("speckit_server_queue_depth",
		"Campaigns waiting in the submission queue.", func() float64 {
			if srv := activeServer.Load(); srv != nil {
				return float64(len(srv.queue))
			}
			return 0
		})
	help := "Campaigns known to the server by state."
	for _, state := range []string{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled} {
		state := state
		reg.GaugeFunc("speckit_server_jobs", help, func() float64 {
			srv := activeServer.Load()
			if srv == nil {
				return 0
			}
			return float64(srv.countJobs(state))
		}, "state", state)
		help = ""
	}
	help = "Configured fleet workers by last observed health."
	for _, state := range []string{"healthy", "unhealthy"} {
		state := state
		reg.GaugeFunc("speckit_fleet_workers", help, func() float64 {
			srv := activeServer.Load()
			if srv == nil {
				return 0
			}
			up := 0
			for i := range srv.fleetUp {
				if srv.fleetUp[i].Load() {
					up++
				}
			}
			if state == "healthy" {
				return float64(up)
			}
			return float64(len(srv.fleetUp) - up)
		}, "state", state)
		help = ""
	}
	metricsOnce.Do(func() {
		expvar.Publish("specserved", expvar.Func(func() any {
			srv := activeServer.Load()
			if srv == nil {
				return nil
			}
			return srv.MetricsSnapshot()
		}))
	})
}

func (s *Server) countJobs(state string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.jobs {
		c.mu.Lock()
		if c.status == state {
			n++
		}
		c.mu.Unlock()
	}
	return n
}

// MetricsSnapshot returns the live metrics served under /metrics as the
// "specserved" expvar: queue occupancy, job states, where completed
// pairs came from (simulated vs. memory vs. store tier), and the
// campaign cache / persistent store counters.
func (s *Server) MetricsSnapshot() map[string]any {
	s.mu.Lock()
	states := map[string]int{}
	for _, c := range s.jobs {
		c.mu.Lock()
		states[c.status]++
		c.mu.Unlock()
	}
	queueLen := len(s.queue)
	draining := s.draining
	s.mu.Unlock()

	m := map[string]any{
		"uptime_seconds": time.Since(s.started).Seconds(),
		"draining":       draining,
		"queue": map[string]int{
			"depth":    queueLen,
			"capacity": s.cfg.QueueDepth,
			"workers":  s.cfg.Workers,
		},
		"jobs": map[string]any{
			"states":   states,
			"rejected": s.rejected.Load(),
		},
		"pairs": map[string]uint64{
			"simulated":            s.pairsSimulated.Load(),
			"from_memory":          s.pairsFromCache.Load(),
			"from_store":           s.pairsFromStore.Load(),
			"from_remote":          s.pairsFromRemote.Load(),
			"sampled_simulated":    s.sampledSimulated.Load(),
			"sampled_from_memory":  s.sampledFromCache.Load(),
			"sampled_from_store":   s.sampledFromStore.Load(),
			"sampled_from_remote":  s.sampledFromRemote.Load(),
			"analytic_computed":    s.analyticComputed.Load(),
			"analytic_from_memory": s.analyticFromCache.Load(),
			"analytic_from_store":  s.analyticFromStore.Load(),
			"analytic_from_remote": s.analyticFromRemote.Load(),
			"rate_simulated":       s.rateSimulated.Load(),
			"rate_from_memory":     s.rateFromCache.Load(),
			"rate_from_store":      s.rateFromStore.Load(),
			"rate_from_remote":     s.rateFromRemote.Load(),
		},
	}
	m["pair_windows"] = pairWindowsSnapshot()
	m["sweeps"] = s.sweepSnapshot()
	if n := len(s.cfg.Fleet); n > 0 {
		workers := make([]map[string]any, n)
		for i, w := range s.cfg.Fleet {
			workers[i] = map[string]any{
				"name":    w.Name(),
				"healthy": s.fleetUp[i].Load(),
			}
		}
		m["fleet"] = map[string]any{
			"chunk":   s.cfg.FleetChunk,
			"workers": workers,
		}
	}
	if cache := s.cfg.Characterize.Cache; cache != nil {
		st := cache.Stats()
		m["cache"] = map[string]any{
			"hits":        st.Hits,
			"memory_hits": st.MemoryHits,
			"store_hits":  st.StoreHits,
			"misses":      st.Misses,
			"hit_rate":    st.HitRate(),
			"entries":     cache.Len(),
		}
	}
	if fs, ok := s.cfg.Characterize.Store.(*store.Store); ok && fs != nil {
		st := fs.Stats()
		m["store"] = map[string]any{
			"dir":          fs.Dir(),
			"hits":         st.Hits,
			"misses":       st.Misses,
			"corrupt":      st.Corrupt,
			"writes":       st.Writes,
			"write_errors": st.WriteErrors,
		}
	}
	return m
}
