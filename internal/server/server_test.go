package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/store"
)

// stubCampaigns swaps the worker's campaign runner for the test.
func stubCampaigns(t *testing.T, fn func([]profile.Pair, core.Options) ([]core.Characteristics, error)) {
	t.Helper()
	old := runCampaign
	runCampaign = fn
	t.Cleanup(func() { runCampaign = old })
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec CampaignSpec, query string) (*http.Response, CampaignStatus) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/campaigns"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st CampaignStatus
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") &&
		(resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK) {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) CampaignStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.Status {
		case StatusDone, StatusFailed, StatusCancelled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached a terminal status", id)
	return CampaignStatus{}
}

// TestEndToEnd: submit → SSE progress → fetched result equals a direct
// core.Characterize run, and a resubmission is served entirely from the
// cache.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Options{Instructions: 20000, Cache: sched.NewCache(), Store: st}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Characterize: base})

	spec := CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train", Instructions: 20000}
	resp, status := submit(t, ts, spec, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if status.ID == "" || status.Pairs == 0 {
		t.Fatalf("submit status = %+v", status)
	}

	// Follow the SSE stream until the campaign completes.
	sseCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(sseCtx, "GET", ts.URL+"/v1/campaigns/"+status.ID+"/events", nil)
	sse, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	var progressEvents, doneEvents int
	var lastProgress ProgressStatus
	scanner := bufio.NewScanner(sse.Body)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		if after, ok := strings.CutPrefix(line, "event: "); ok {
			event = after
		}
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			switch event {
			case "progress":
				progressEvents++
				if err := json.Unmarshal([]byte(after), &lastProgress); err != nil {
					t.Fatalf("bad progress payload %q: %v", after, err)
				}
			case "done":
				doneEvents++
			}
		}
		if event == "done" && line == "" {
			break
		}
	}
	if doneEvents != 1 {
		t.Fatalf("saw %d done events (%d progress)", doneEvents, progressEvents)
	}
	if progressEvents == 0 || lastProgress.Done != status.Pairs {
		t.Errorf("progress events = %d, last = %+v, want %d pairs", progressEvents, lastProgress, status.Pairs)
	}

	final := waitTerminal(t, ts, status.ID)
	if final.Status != StatusDone || len(final.Results) != status.Pairs {
		t.Fatalf("final = %s with %d results, want done with %d", final.Status, len(final.Results), status.Pairs)
	}

	// Parity: the served results are bit-identical to a direct library
	// run with the same options (compare serialized forms: the codec
	// encoding is deterministic).
	pairs, err := spec.resolve()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Characterize(pairs, core.Options{Instructions: 20000})
	if err != nil {
		t.Fatal(err)
	}
	directJSON, _ := json.Marshal(direct)
	servedJSON, _ := json.Marshal(final.Results)
	if !bytes.Equal(directJSON, servedJSON) {
		t.Error("served results differ from direct library results")
	}

	// Resubmission: every pair must come from the cache, none simulated.
	before := s.pairsSimulated.Load()
	_, again := submit(t, ts, spec, "?wait=1")
	if again.Status != StatusDone {
		t.Fatalf("resubmit status = %s (%s)", again.Status, again.Error)
	}
	if again.Progress.CacheHits != status.Pairs {
		t.Errorf("resubmit cache hits = %d, want all %d", again.Progress.CacheHits, status.Pairs)
	}
	if got := s.pairsSimulated.Load(); got != before {
		t.Errorf("resubmit simulated %d pairs, want 0", got-before)
	}
	resubJSON, _ := json.Marshal(again.Results)
	if !bytes.Equal(directJSON, resubJSON) {
		t.Error("resubmitted results are not bit-identical")
	}

	// The store received the write-through records.
	if st.Stats().Writes == 0 {
		t.Error("no records written through to the persistent store")
	}

	// Metrics surface the tiered stats.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		Specserved struct {
			Pairs map[string]uint64 `json:"pairs"`
			Cache map[string]any    `json:"cache"`
			Store map[string]any    `json:"store"`
		} `json:"specserved"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	m := metrics.Specserved
	if m.Pairs["simulated"] != uint64(status.Pairs) || m.Pairs["from_memory"] != uint64(status.Pairs) {
		t.Errorf("metrics pairs = %v, want %d simulated + %d from_memory", m.Pairs, status.Pairs, status.Pairs)
	}
	if m.Cache == nil || m.Store == nil {
		t.Errorf("metrics missing cache/store sections: %+v", m)
	}
}

// TestQueueFull429: with one worker wedged and a single queue slot
// filled, the next submission is rejected with 429 + Retry-After.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		select {
		case <-release:
			return make([]core.Characteristics, len(pairs)), nil
		case <-opt.Context.Done():
			return nil, opt.Context.Err()
		}
	})
	defer close(release)

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	spec := CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}

	resp1, _ := submit(t, ts, spec, "") // taken by the worker
	<-started
	resp2, _ := submit(t, ts, spec, "") // fills the single queue slot
	resp3, _ := submit(t, ts, spec, "") // over capacity
	if resp1.StatusCode != http.StatusAccepted || resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("first submits = %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestDeleteCancelsInFlight: DELETE aborts a running campaign through
// the scheduler's context and the job reports cancelled.
func TestDeleteCancelsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-opt.Context.Done() // a real campaign aborts via this context
		return nil, opt.Context.Err()
	})

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, st := submit(t, ts, CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}, "")
	<-started

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.Status != StatusCancelled {
		t.Fatalf("status after DELETE = %s, want cancelled", final.Status)
	}
	if final.Error == "" {
		t.Error("cancelled campaign carries no reason")
	}
}

// TestDeleteQueuedCampaign: cancelling a job that never started is
// immediate and the worker skips it.
func TestDeleteQueuedCampaign(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-release
		return make([]core.Characteristics, len(pairs)), nil
	})

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	spec := CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	submit(t, ts, spec, "")
	<-started // worker busy
	_, queued := submit(t, ts, spec, "")

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/campaigns/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := waitTerminal(t, ts, queued.ID); st.Status != StatusCancelled {
		t.Fatalf("queued campaign after DELETE = %s", st.Status)
	}
	close(release)
	// The worker must not "run" the cancelled job: only the first
	// campaign ever started.
	select {
	case <-started:
		t.Error("worker started a cancelled queued campaign")
	case <-time.After(100 * time.Millisecond):
	}
}

// TestDrain: draining completes the in-flight campaign, cancels the
// queued one, and flips admission + health to 503.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		select {
		case <-release:
			return make([]core.Characteristics, len(pairs)), nil
		case <-opt.Context.Done():
			return nil, opt.Context.Err()
		}
	})

	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	spec := CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	_, inflight := submit(t, ts, spec, "")
	<-started
	_, queued := submit(t, ts, spec, "")

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()

	// Drain blocks on the in-flight job; meanwhile admission is closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 while draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := submit(t, ts, spec, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}

	close(release) // let the in-flight campaign finish
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	if st := getStatus(t, ts, inflight.ID); st.Status != StatusDone {
		t.Errorf("in-flight campaign after drain = %s, want done", st.Status)
	}
	if st := getStatus(t, ts, queued.ID); st.Status != StatusCancelled {
		t.Errorf("queued campaign after drain = %s, want cancelled", st.Status)
	}
}

// TestDrainGraceCancelsStragglers: a campaign that outlives the grace
// period is cancelled, not waited on forever.
func TestDrainGraceCancelsStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-opt.Context.Done() // never finishes on its own
		return nil, opt.Context.Err()
	})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, DrainGrace: 50 * time.Millisecond})
	_, st := submit(t, ts, CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}, "")
	<-started

	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain with grace period hung")
	}
	if got := getStatus(t, ts, st.ID); got.Status != StatusCancelled {
		t.Errorf("straggler after grace = %s, want cancelled", got.Status)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	for _, body := range []string{
		`{"suite":"cpu2099","size":"ref"}`,
		`{"suite":"cpu2017","size":"gigantic"}`,
		`{"suite":"cpu2017","mini":"rate-bf16","size":"ref"}`,
		`{"suite":`,
		`{"unknown_field":1}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/cunknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown campaign = %d, want 404", resp.StatusCode)
	}
}

func TestListCampaigns(t *testing.T) {
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		return make([]core.Characteristics, len(pairs)), nil
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	spec := CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	_, first := submit(t, ts, spec, "?wait=1")
	_, second := submit(t, ts, spec, "?wait=1")

	resp, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != first.ID || list[1].ID != second.ID {
		t.Fatalf("list = %+v, want [%s %s] in order", list, first.ID, second.ID)
	}
	if len(list[0].Results) != 0 {
		t.Error("list includes result payloads")
	}
}

// TestWaitModeReturnsResults: ?wait=1 blocks and returns the finished
// campaign in one round trip.
func TestWaitModeReturnsResults(t *testing.T) {
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		out := make([]core.Characteristics, len(pairs))
		for i := range out {
			out[i].Pair = pairs[i]
		}
		return out, nil
	})
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	resp, st := submit(t, ts, CampaignSpec{Suite: "cpu2017", Mini: "rate-fp", Size: "test"}, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit = %d", resp.StatusCode)
	}
	if st.Status != StatusDone || len(st.Results) != st.Pairs {
		t.Fatalf("wait result = %s with %d/%d results", st.Status, len(st.Results), st.Pairs)
	}
}

// TestWaitClientDisconnectCancels: dropping a waiting submission cancels
// its campaign through the job context.
func TestWaitClientDisconnectCancels(t *testing.T) {
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-opt.Context.Done()
		return nil, opt.Context.Err()
	})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"})
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/campaigns?wait=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel() // client gives up
	<-errc

	// The lone job must transition to cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		var job *campaign
		for _, c := range s.jobs {
			job = c
		}
		s.mu.Unlock()
		if job != nil {
			job.mu.Lock()
			status := job.status
			job.mu.Unlock()
			if status == StatusCancelled {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign not cancelled after waiting client disconnected")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsForFinishedCampaign: subscribing after completion yields the
// terminal event immediately.
func TestEventsForFinishedCampaign(t *testing.T) {
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		return make([]core.Characteristics, len(pairs)), nil
	})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, st := submit(t, ts, CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}, "?wait=1")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/campaigns/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := func() (string, error) {
		var b strings.Builder
		scanner := bufio.NewScanner(resp.Body)
		for scanner.Scan() {
			b.WriteString(scanner.Text())
			b.WriteByte('\n')
			if strings.Contains(b.String(), "event: done") && strings.HasSuffix(b.String(), "\n\n") {
				break
			}
		}
		return b.String(), scanner.Err()
	}()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "event: done") {
		t.Fatalf("no done event for finished campaign: %q", data)
	}
}

func TestSpecResolve(t *testing.T) {
	for _, tc := range []struct {
		spec CampaignSpec
		ok   bool
	}{
		{CampaignSpec{Suite: "cpu2017", Size: "ref"}, true},
		{CampaignSpec{Suite: "cpu2006", Mini: "all", Size: "test"}, true},
		{CampaignSpec{Suite: "", Size: ""}, true}, // defaults: cpu2017 ref
		{CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}, true},
		{CampaignSpec{Suite: "spec95", Size: "ref"}, false},
		{CampaignSpec{Suite: "cpu2017", Mini: "nope", Size: "ref"}, false},
		{CampaignSpec{Suite: "cpu2017", Size: "huge"}, false},
	} {
		pairs, err := tc.spec.resolve()
		if tc.ok && (err != nil || len(pairs) == 0) {
			t.Errorf("resolve(%+v) = %d pairs, %v", tc.spec, len(pairs), err)
		}
		if !tc.ok && err == nil {
			t.Errorf("resolve(%+v) succeeded, want error", tc.spec)
		}
	}
}

// TestSamplingCampaigns: the per-campaign sampling knob reaches the
// characterization options, invalid knobs are rejected at submit time,
// and sampled campaigns' pairs land in the sampled_* metric counters —
// never in the exact tier split.
func TestSamplingCampaigns(t *testing.T) {
	var mu sync.Mutex
	var seen []machine.Sampling
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		mu.Lock()
		seen = append(seen, opt.Sampling)
		mu.Unlock()
		if opt.Progress != nil {
			opt.Progress(sched.Progress{Done: len(pairs), Total: len(pairs)})
		}
		return make([]core.Characteristics, len(pairs)), nil
	})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Invalid knob: rejected before the campaign is admitted.
	resp, _ := submit(t, ts, CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train", Sampling: "not-a-knob"}, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sampling spec = %d, want 400", resp.StatusCode)
	}

	exact := CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	sampled := exact
	sampled.Sampling = "default"
	custom := exact
	custom.Sampling = "262144/8192/8192"
	var pairsPer int
	for _, spec := range []CampaignSpec{exact, sampled, custom} {
		resp, st := submit(t, ts, spec, "?wait=1")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %+v = %d", spec, resp.StatusCode)
		}
		pairsPer = st.Pairs
	}

	mu.Lock()
	got := append([]machine.Sampling(nil), seen...)
	mu.Unlock()
	want := []machine.Sampling{{}, machine.DefaultSampling(), {Period: 262144, DetailLen: 8192, WarmupLen: 8192}}
	if len(got) != len(want) {
		t.Fatalf("ran %d campaigns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("campaign %d sampling = %+v, want %+v", i, got[i], want[i])
		}
	}

	m := s.MetricsSnapshot()
	pairs := m["pairs"].(map[string]uint64)
	if pairs["simulated"] != uint64(pairsPer) {
		t.Errorf("exact simulated = %d, want %d", pairs["simulated"], pairsPer)
	}
	if pairs["sampled_simulated"] != uint64(2*pairsPer) {
		t.Errorf("sampled simulated = %d, want %d", pairs["sampled_simulated"], 2*pairsPer)
	}
	if pairs["sampled_from_memory"] != 0 || pairs["sampled_from_store"] != 0 {
		t.Errorf("sampled cache tiers = %v, want zero", pairs)
	}
}
