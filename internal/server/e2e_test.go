// The e2e suite lives in an external test package and drives the
// server exclusively through internal/client, so every endpoint and
// error path is exercised via the typed client surface (raw HTTP is
// used only where the client cannot express the request, e.g.
// malformed JSON bodies).
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
)

// stubCampaigns swaps the worker's campaign runner for the test.
func stubCampaigns(t *testing.T, fn func([]profile.Pair, core.Options) ([]core.Characteristics, error)) {
	t.Helper()
	t.Cleanup(server.SetRunCampaign(fn))
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, client.New(ts.URL), ts
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// promSeries extracts one sample value from a Prometheus text payload;
// series is the full "name{labels}" prefix of the sample line.
func promSeries(text, series string) float64 {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
			return v
		}
	}
	return 0
}

// TestEndToEnd: submit → SSE progress → fetched result equals a direct
// core.Characterize run, a resubmission is served entirely from the
// cache, the run manifest is retrievable under the advertised digest,
// and /metrics accounts the campaign's pairs by tier.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Options{Instructions: 20000, Cache: sched.NewCache(), Store: st}
	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8, Characterize: base})
	ctx := ctxT(t)

	metricsBefore, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train", Instructions: 20000}
	status, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if status.ID == "" || status.Pairs == 0 {
		t.Fatalf("submit status = %+v", status)
	}

	// Follow the SSE stream until the campaign completes; the server
	// closes the stream after the terminal event.
	var progressEvents, doneEvents int
	var lastProgress server.ProgressStatus
	err = c.Events(ctx, status.ID, func(ev client.Event) error {
		switch ev.Name {
		case "progress":
			progressEvents++
			p, perr := ev.Progress()
			if perr != nil {
				return perr
			}
			lastProgress = p
		case "done":
			doneEvents++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if doneEvents != 1 {
		t.Fatalf("saw %d done events (%d progress)", doneEvents, progressEvents)
	}
	if progressEvents == 0 || lastProgress.Done != status.Pairs {
		t.Errorf("progress events = %d, last = %+v, want %d pairs", progressEvents, lastProgress, status.Pairs)
	}

	final, err := c.Wait(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != server.StatusDone || len(final.Results) != status.Pairs {
		t.Fatalf("final = %s with %d results, want done with %d", final.Status, len(final.Results), status.Pairs)
	}
	if final.ManifestDigest == "" {
		t.Error("done campaign reports no manifest digest")
	}

	// The manifest endpoint serves the recorded span tree whose digest
	// the status advertises.
	manifest, headerDigest, err := c.Manifest(ctx, status.ID)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if got := obs.ManifestDigest(manifest); got != final.ManifestDigest || got != headerDigest {
		t.Errorf("manifest digest = %s, status %s, header %s", got, final.ManifestDigest, headerDigest)
	}
	if _, spans, merr := obs.ReadManifest(bytes.NewReader(manifest)); merr != nil || len(spans) < status.Pairs+1 {
		t.Errorf("manifest = %d spans, err %v; want >= campaign + %d pairs", len(spans), merr, status.Pairs)
	}

	// Parity: the served results are bit-identical to a direct library
	// run with the same options (compare serialized forms: the codec
	// encoding is deterministic).
	pairs, err := server.ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Characterize(pairs, core.Options{Instructions: 20000})
	if err != nil {
		t.Fatal(err)
	}
	directJSON, _ := json.Marshal(direct)
	servedJSON, _ := json.Marshal(final.Results)
	if !bytes.Equal(directJSON, servedJSON) {
		t.Error("served results differ from direct library results")
	}

	// Resubmission: every pair must come from the cache, none simulated.
	before := s.MetricsSnapshot()["pairs"].(map[string]uint64)["simulated"]
	again, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if again.Status != server.StatusDone {
		t.Fatalf("resubmit status = %s (%s)", again.Status, again.Error)
	}
	if again.Progress.CacheHits != status.Pairs {
		t.Errorf("resubmit cache hits = %d, want all %d", again.Progress.CacheHits, status.Pairs)
	}
	if got := s.MetricsSnapshot()["pairs"].(map[string]uint64)["simulated"]; got != before {
		t.Errorf("resubmit simulated %d pairs, want 0", got-before)
	}
	resubJSON, _ := json.Marshal(again.Results)
	if !bytes.Equal(directJSON, resubJSON) {
		t.Error("resubmitted results are not bit-identical")
	}

	// The store received the write-through records.
	if st.Stats().Writes == 0 {
		t.Error("no records written through to the persistent store")
	}

	// /metrics accounts this test's pairs in the exact-mode tier split
	// (the registry is process-global, so compare against the scrape
	// taken before the first submission).
	metricsAfter, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	simSeries := `speckit_served_pairs_total{mode="exact",source="simulated"}`
	memSeries := `speckit_served_pairs_total{mode="exact",source="memory"}`
	if d := promSeries(metricsAfter, simSeries) - promSeries(metricsBefore, simSeries); d != float64(status.Pairs) {
		t.Errorf("%s grew by %v, want %d", simSeries, d, status.Pairs)
	}
	if d := promSeries(metricsAfter, memSeries) - promSeries(metricsBefore, memSeries); d != float64(status.Pairs) {
		t.Errorf("%s grew by %v, want %d", memSeries, d, status.Pairs)
	}
	for _, series := range []string{
		"speckit_stage_seconds_bucket",
		"speckit_store_ops_total",
		"speckit_http_requests_total",
		"speckit_http_request_seconds_bucket",
		"speckit_server_queue_depth",
		"speckit_server_jobs",
	} {
		if !strings.Contains(metricsAfter, series) {
			t.Errorf("/metrics is missing the %s series", series)
		}
	}
}

// TestPairWindowMetrics: a campaign with workers_per_pair counts its
// concurrently simulated sub-windows under the parallel source in both
// /metrics (speckit_pair_windows_total and the per-window latency
// histogram) and the expvar snapshot's pair_windows block.
func TestPairWindowMetrics(t *testing.T) {
	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)

	winBefore := s.MetricsSnapshot()["pair_windows"].(map[string]any)["parallel"].(map[string]any)
	metricsBefore, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Long enough that the geometric split keeps both windows above the
	// kernel's minimum window: every pair really simulates 2 windows.
	spec := server.CampaignSpec{
		Suite: "cpu2017", Mini: "rate-int", Size: "test",
		Instructions: 120000, WorkersPerPair: 2,
	}
	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("status %s: %s", st.Status, st.Error)
	}
	wantWindows := uint64(2 * len(st.Results))

	winAfter := s.MetricsSnapshot()["pair_windows"].(map[string]any)["parallel"].(map[string]any)
	if d := winAfter["windows"].(uint64) - winBefore["windows"].(uint64); d != wantWindows {
		t.Errorf("expvar parallel windows grew by %d, want %d", d, wantWindows)
	}
	if winAfter["seconds_sum"].(float64) <= winBefore["seconds_sum"].(float64) {
		t.Error("expvar parallel window seconds_sum did not grow")
	}

	metricsAfter, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	series := `speckit_pair_windows_total{source="parallel"}`
	if d := promSeries(metricsAfter, series) - promSeries(metricsBefore, series); d != float64(wantWindows) {
		t.Errorf("%s grew by %v, want %d", series, d, wantWindows)
	}
	countSeries := `speckit_pair_window_seconds_count{source="parallel"}`
	if d := promSeries(metricsAfter, countSeries) - promSeries(metricsBefore, countSeries); d != float64(wantWindows) {
		t.Errorf("%s grew by %v, want %d", countSeries, d, wantWindows)
	}
	if !strings.Contains(metricsAfter, `speckit_pair_window_seconds_bucket{source="parallel"`) {
		t.Error("/metrics is missing the parallel pair-window latency histogram")
	}
}

// TestQueueFull429: with one worker wedged and a single queue slot
// filled, the next submission is rejected with 429 + Retry-After.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		select {
		case <-release:
			return make([]core.Characteristics, len(pairs)), nil
		case <-opt.Context.Done():
			return nil, opt.Context.Err()
		}
	})
	defer close(release)

	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})
	ctx := ctxT(t)
	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}

	if _, err := c.Submit(ctx, spec); err != nil { // taken by the worker
		t.Fatalf("first submit: %v", err)
	}
	<-started
	if _, err := c.Submit(ctx, spec); err != nil { // fills the single queue slot
		t.Fatalf("second submit: %v", err)
	}
	_, err := c.Submit(ctx, spec) // over capacity
	if !client.IsQueueFull(err) {
		t.Fatalf("over-capacity submit err = %v, want queue-full", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
		t.Errorf("429 without a Retry-After hint: %v", err)
	}
}

// TestDeleteCancelsInFlight: Cancel aborts a running campaign through
// the scheduler's context and the job reports cancelled.
func TestDeleteCancelsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-opt.Context.Done() // a real campaign aborts via this context
		return nil, opt.Context.Err()
	})

	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)
	st, err := c.Submit(ctx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	final, err := c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != server.StatusCancelled {
		t.Fatalf("status after cancel = %s, want cancelled", final.Status)
	}
	if final.Error == "" {
		t.Error("cancelled campaign carries no reason")
	}
}

// TestDeleteQueuedCampaign: cancelling a job that never started is
// immediate and the worker skips it.
func TestDeleteQueuedCampaign(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-release
		return make([]core.Characteristics, len(pairs)), nil
	})

	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)
	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	if _, err := c.Submit(ctx, spec); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy
	queued, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if st, err := c.Wait(ctx, queued.ID); err != nil || st.Status != server.StatusCancelled {
		t.Fatalf("queued campaign after cancel = %s, %v", st.Status, err)
	}
	close(release)
	// The worker must not "run" the cancelled job: only the first
	// campaign ever started.
	select {
	case <-started:
		t.Error("worker started a cancelled queued campaign")
	case <-time.After(100 * time.Millisecond):
	}
}

// TestDrain: draining completes the in-flight campaign, cancels the
// queued one, and flips admission + health to 503.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		select {
		case <-release:
			return make([]core.Characteristics, len(pairs)), nil
		case <-opt.Context.Done():
			return nil, opt.Context.Err()
		}
	})

	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)
	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	inflight, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()

	// Drain blocks on the in-flight job; meanwhile admission is closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 while draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, err = c.Submit(ctx, spec)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %v, want 503", err)
	}

	close(release) // let the in-flight campaign finish
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	if st, err := c.Campaign(ctx, inflight.ID, false); err != nil || st.Status != server.StatusDone {
		t.Errorf("in-flight campaign after drain = %s, %v, want done", st.Status, err)
	}
	if st, err := c.Campaign(ctx, queued.ID, false); err != nil || st.Status != server.StatusCancelled {
		t.Errorf("queued campaign after drain = %s, %v, want cancelled", st.Status, err)
	}
}

// TestDrainGraceCancelsStragglers: a campaign that outlives the grace
// period is cancelled, not waited on forever.
func TestDrainGraceCancelsStragglers(t *testing.T) {
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-opt.Context.Done() // never finishes on its own
		return nil, opt.Context.Err()
	})
	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4, DrainGrace: 50 * time.Millisecond})
	ctx := ctxT(t)
	st, err := c.Submit(ctx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan struct{})
	go func() { s.Drain(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain with grace period hung")
	}
	if got, err := c.Campaign(ctx, st.ID, false); err != nil || got.Status != server.StatusCancelled {
		t.Errorf("straggler after grace = %s, %v, want cancelled", got.Status, err)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})
	ctx := ctxT(t)
	// Malformed bodies cannot be expressed through the typed client; post
	// them raw.
	for _, body := range []string{
		`{"suite":"cpu2099","size":"ref"}`,
		`{"suite":"cpu2017","size":"gigantic"}`,
		`{"suite":"cpu2017","mini":"rate-bf16","size":"ref"}`,
		`{"suite":`,
		`{"unknown_field":1}`,
		`{"suite":"cpu2017","size":"ref","workers_per_pair":-2}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q = %d, want 400", body, resp.StatusCode)
		}
	}
	// The same rejection surfaces through the client as a typed APIError.
	_, err := c.Submit(ctx, server.CampaignSpec{Suite: "cpu2099", Size: "ref"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusBadRequest || ae.Message == "" {
		t.Errorf("bad-suite submit err = %v, want APIError 400 with message", err)
	}
	if _, err := c.Campaign(ctx, "cunknown", true); !client.IsNotFound(err) {
		t.Errorf("GET unknown campaign err = %v, want not-found", err)
	}
}

func TestListCampaigns(t *testing.T) {
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		return make([]core.Characteristics, len(pairs)), nil
	})
	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8})
	ctx := ctxT(t)
	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	first, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != first.ID || list[1].ID != second.ID {
		t.Fatalf("list = %+v, want [%s %s] in order", list, first.ID, second.ID)
	}
	if len(list[0].Results) != 0 {
		t.Error("list includes result payloads")
	}
}

// TestWaitModeReturnsResults: SubmitWait blocks and returns the
// finished campaign — results and manifest digest — in one round trip.
func TestWaitModeReturnsResults(t *testing.T) {
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		out := make([]core.Characteristics, len(pairs))
		for i := range out {
			out[i].Pair = pairs[i]
		}
		return out, nil
	})
	_, c, _ := newTestServer(t, server.Config{Workers: 2, QueueDepth: 8})
	ctx := ctxT(t)
	st, err := c.SubmitWait(ctx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-fp", Size: "test"})
	if err != nil {
		t.Fatalf("wait submit: %v", err)
	}
	if st.Status != server.StatusDone || len(st.Results) != st.Pairs {
		t.Fatalf("wait result = %s with %d/%d results", st.Status, len(st.Results), st.Pairs)
	}
	if st.ManifestDigest == "" {
		t.Error("wait result has no manifest digest")
	}
	manifest, digest, err := c.Manifest(ctx, st.ID)
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if digest != st.ManifestDigest || obs.ManifestDigest(manifest) != digest {
		t.Errorf("manifest digest mismatch: header %s, status %s", digest, st.ManifestDigest)
	}
}

// TestManifestBeforeRun: the manifest endpoint refuses with 409 until
// the campaign has actually run.
func TestManifestBeforeRun(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-release
		return make([]core.Characteristics, len(pairs)), nil
	})
	defer close(release)

	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)
	st, err := c.Submit(ctx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, _, err = c.Manifest(ctx, st.ID)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusConflict {
		t.Fatalf("manifest before run err = %v, want 409", err)
	}
	if _, _, err := c.Manifest(ctx, "cunknown"); !client.IsNotFound(err) {
		t.Errorf("manifest for unknown campaign err = %v, want not-found", err)
	}
}

// TestWaitClientDisconnectCancels: dropping a waiting submission cancels
// its campaign through the job context.
func TestWaitClientDisconnectCancels(t *testing.T) {
	started := make(chan struct{}, 1)
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		started <- struct{}{}
		<-opt.Context.Done()
		return nil, opt.Context.Err()
	})
	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})

	waitCtx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.SubmitWait(waitCtx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"})
		errc <- err
	}()
	<-started
	cancel() // client gives up
	if err := <-errc; err == nil {
		t.Fatal("abandoned SubmitWait returned no error")
	}

	// The lone job must transition to cancelled.
	ctx := ctxT(t)
	deadline := time.Now().Add(5 * time.Second)
	for {
		list, err := c.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(list) == 1 && list[0].Status == server.StatusCancelled {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign not cancelled after waiting client disconnected: %+v", list)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEventsForFinishedCampaign: subscribing after completion yields the
// terminal event immediately.
func TestEventsForFinishedCampaign(t *testing.T) {
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		return make([]core.Characteristics, len(pairs)), nil
	})
	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)
	st, err := c.SubmitWait(ctx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"})
	if err != nil {
		t.Fatal(err)
	}

	var names []string
	if err := c.Events(ctx, st.ID, func(ev client.Event) error {
		names = append(names, ev.Name)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	done := 0
	for _, n := range names {
		if n == "done" {
			done++
		}
	}
	if done != 1 {
		t.Fatalf("events for finished campaign = %v, want one done", names)
	}
}

// TestSamplingCampaigns: the per-campaign sampling knob reaches the
// characterization options, invalid knobs are rejected at submit time,
// and sampled campaigns' pairs land in the sampled_* metric counters —
// never in the exact tier split.
func TestSamplingCampaigns(t *testing.T) {
	var mu sync.Mutex
	var seen []machine.Sampling
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		mu.Lock()
		seen = append(seen, opt.Sampling)
		mu.Unlock()
		if opt.Progress != nil {
			opt.Progress(sched.Progress{Done: len(pairs), Total: len(pairs)})
		}
		return make([]core.Characteristics, len(pairs)), nil
	})
	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8})
	ctx := ctxT(t)

	// Invalid knob: rejected before the campaign is admitted.
	_, err := c.Submit(ctx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train", Sampling: "not-a-knob"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
		t.Fatalf("bad sampling spec err = %v, want 400", err)
	}

	exact := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	sampled := exact
	sampled.Sampling = "default"
	custom := exact
	custom.Sampling = "262144/8192/8192"
	var pairsPer int
	for _, spec := range []server.CampaignSpec{exact, sampled, custom} {
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		pairsPer = st.Pairs
	}

	mu.Lock()
	got := append([]machine.Sampling(nil), seen...)
	mu.Unlock()
	want := []machine.Sampling{{}, machine.DefaultSampling(), {Period: 262144, DetailLen: 8192, WarmupLen: 8192}}
	if len(got) != len(want) {
		t.Fatalf("ran %d campaigns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("campaign %d sampling = %+v, want %+v", i, got[i], want[i])
		}
	}

	m := s.MetricsSnapshot()
	pairs := m["pairs"].(map[string]uint64)
	if pairs["simulated"] != uint64(pairsPer) {
		t.Errorf("exact simulated = %d, want %d", pairs["simulated"], pairsPer)
	}
	if pairs["sampled_simulated"] != uint64(2*pairsPer) {
		t.Errorf("sampled simulated = %d, want %d", pairs["sampled_simulated"], 2*pairsPer)
	}
	if pairs["sampled_from_memory"] != 0 || pairs["sampled_from_store"] != 0 {
		t.Errorf("sampled cache tiers = %v, want zero", pairs)
	}
}

// TestFidelityCampaigns: the spec's fidelity field reaches the campaign
// options, invalid tiers and the analytic+sampling combination are
// rejected at submit time, and analytic pairs land in their own metrics
// quartet.
func TestFidelityCampaigns(t *testing.T) {
	var mu sync.Mutex
	type seenOpt struct {
		fidelity machine.Fidelity
		sampling machine.Sampling
	}
	var seen []seenOpt
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		mu.Lock()
		seen = append(seen, seenOpt{opt.Fidelity, opt.Sampling})
		mu.Unlock()
		if opt.Progress != nil {
			opt.Progress(sched.Progress{Done: len(pairs), Total: len(pairs)})
		}
		return make([]core.Characteristics, len(pairs)), nil
	})
	// The server's base options carry a sampling default, which an
	// explicit analytic request must override.
	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8,
		Characterize: core.Options{Sampling: machine.DefaultSampling()}})
	ctx := ctxT(t)

	base := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}
	bad := base
	bad.Fidelity = "turbo"
	var ae *client.APIError
	if _, err := c.Submit(ctx, bad); !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
		t.Fatalf("bad fidelity spec err = %v, want 400", err)
	}
	conflicted := base
	conflicted.Fidelity = "analytic"
	conflicted.Sampling = "default"
	if _, err := c.Submit(ctx, conflicted); !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
		t.Fatalf("analytic+sampling spec err = %v, want 400", err)
	}

	analytic := base
	analytic.Fidelity = "analytic"
	exact := base
	exact.Fidelity = "exact"
	var pairsPer int
	for _, spec := range []server.CampaignSpec{analytic, exact, base} {
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		pairsPer = st.Pairs
	}

	mu.Lock()
	got := append([]seenOpt(nil), seen...)
	mu.Unlock()
	want := []seenOpt{
		// Analytic clears the server's sampling default.
		{machine.FidelityAnalytic, machine.Sampling{}},
		// Explicit exact keeps the base knob (core normalizes it to the
		// sampled tier).
		{machine.FidelityExact, machine.DefaultSampling()},
		// No fidelity field inherits the base options untouched.
		{machine.FidelityExact, machine.DefaultSampling()},
	}
	if len(got) != len(want) {
		t.Fatalf("ran %d campaigns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("campaign %d options = %+v, want %+v", i, got[i], want[i])
		}
	}

	pairs := s.MetricsSnapshot()["pairs"].(map[string]uint64)
	if pairs["analytic_computed"] != uint64(pairsPer) {
		t.Errorf("analytic computed = %d, want %d", pairs["analytic_computed"], pairsPer)
	}
	if pairs["sampled_simulated"] != uint64(2*pairsPer) {
		t.Errorf("sampled simulated = %d, want %d", pairs["sampled_simulated"], 2*pairsPer)
	}
	if pairs["simulated"] != 0 {
		t.Errorf("exact simulated = %d, want 0", pairs["simulated"])
	}
}

// TestScenarioCampaigns: the structured scenario object and the flat
// spec fields resolve to the same campaign options, mixing both is a
// typed 400 naming the conflicting field, and rate-mode pairs land in
// their own metrics quartet.
func TestScenarioCampaigns(t *testing.T) {
	var mu sync.Mutex
	type seenOpt struct {
		rate int
		topo string
	}
	var seen []seenOpt
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		mu.Lock()
		seen = append(seen, seenOpt{opt.RateCopies, opt.Topology.String()})
		mu.Unlock()
		if opt.Progress != nil {
			opt.Progress(sched.Progress{Done: len(pairs), Total: len(pairs)})
		}
		return make([]core.Characteristics, len(pairs)), nil
	})
	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8})
	ctx := ctxT(t)

	base := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}

	// Validation errors carry the offending field through the typed
	// client error.
	badCases := []struct {
		mut   func(*server.CampaignSpec)
		field string
	}{
		{func(s *server.CampaignSpec) { s.Topology = "4X4E-random" }, "topology"},
		{func(s *server.CampaignSpec) { s.RateCopies = -2 }, "rate_copies"},
		{func(s *server.CampaignSpec) { s.RateCopies = 4; s.Fidelity = "analytic" }, "fidelity"},
		{func(s *server.CampaignSpec) { s.RateCopies = 4; s.Sampling = "default" }, "sampling"},
		{func(s *server.CampaignSpec) { // flat field conflicting with the scenario object
			s.Scenario = &server.ScenarioSpec{RateCopies: 4}
			s.RateCopies = 8
		}, "rate_copies"},
		{func(s *server.CampaignSpec) {
			s.Scenario = &server.ScenarioSpec{Fidelity: "sampled"}
			s.Sampling = "default"
		}, "sampling"},
	}
	for _, tc := range badCases {
		spec := base
		tc.mut(&spec)
		_, err := c.Submit(ctx, spec)
		var ae *client.APIError
		if !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
			t.Fatalf("spec %+v: err = %v, want 400", spec, err)
		}
		if field, _, ok := client.FieldError(err); !ok || field != tc.field {
			t.Errorf("spec %+v: error field = %q (ok=%v), want %q", spec, field, ok, tc.field)
		}
	}

	// Flat fields and the scenario object express the same campaign.
	flat := base
	flat.RateCopies = 4
	flat.Topology = "4P4E-random"
	structured := base
	structured.Scenario = &server.ScenarioSpec{RateCopies: 4, Topology: "4P4E-random"}
	var pairsPer int
	for _, spec := range []server.CampaignSpec{flat, structured} {
		st, err := c.SubmitWait(ctx, spec)
		if err != nil {
			t.Fatalf("submit %+v: %v", spec, err)
		}
		pairsPer = st.Pairs
	}

	mu.Lock()
	got := append([]seenOpt(nil), seen...)
	mu.Unlock()
	want := seenOpt{rate: 4, topo: "4P4E-random"}
	if len(got) != 2 {
		t.Fatalf("ran %d campaigns, want 2", len(got))
	}
	for i, g := range got {
		if g != want {
			t.Errorf("campaign %d options = %+v, want %+v", i, g, want)
		}
	}

	// Rate pairs are accounted in their own quartet, not the exact one.
	pairs := s.MetricsSnapshot()["pairs"].(map[string]uint64)
	if pairs["rate_simulated"] != uint64(2*pairsPer) {
		t.Errorf("rate simulated = %d, want %d", pairs["rate_simulated"], 2*pairsPer)
	}
	if pairs["simulated"] != 0 {
		t.Errorf("exact simulated = %d, want 0", pairs["simulated"])
	}
	if pairs["rate_from_memory"] != 0 || pairs["rate_from_store"] != 0 {
		t.Errorf("rate cache tiers = %v, want zero", pairs)
	}
}
