// Coordinator mode: with Config.Fleet set, this server stops simulating
// locally and instead scatters each campaign's pairs across a fleet of
// worker specserved instances, gathering the partial results back into
// its own cache tiers.
//
// The scatter is by consistent hash of each pair's result-cache content
// key (core.CampaignKeys): a pair's preferred worker is stable across
// campaigns and across fleet-size changes except for the ranges a
// joining or leaving worker takes over, so repeated campaigns keep
// hitting warm worker caches. Pairs the coordinator's own memory or
// store tier already holds are served locally and never leave the
// process — only the misses travel.
//
// Everything downstream of the scatter leans on the store's idempotency
// invariant: equal content keys imply bit-identical results, so the
// dispatcher (sched.RunRemote) is free to resubmit a dead worker's
// chunks elsewhere and to speculatively duplicate stragglers. A sharded
// campaign therefore produces exactly the results — and exactly the
// store records — a single-node run of the same spec would.

package server

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sched"
)

// RemoteWorker is the coordinator's handle to one worker specserved
// instance. The canonical implementation (internal/fleet) wraps the
// typed internal/client; the indirection exists because client imports
// this package for its wire types, so the server cannot import it back.
type RemoteWorker interface {
	// Name identifies the worker in metrics and errors (e.g. its URL).
	Name() string
	// Run executes one sub-campaign to completion and returns its
	// terminal status, results included. Run must be safe to call
	// concurrently and more than once per spec: results are idempotent
	// by content key, so duplicate executions return identical bits.
	Run(ctx context.Context, spec CampaignSpec) (CampaignStatus, error)
	// Healthy probes the worker's admission health (GET /healthz).
	Healthy(ctx context.Context) bool
}

// fleetProbeTimeout bounds each pre-scatter health probe.
const fleetProbeTimeout = 2 * time.Second

// ringVnodes is the number of virtual nodes each worker projects onto
// the hash ring. 64 points per worker keeps the per-worker share of key
// space within a few percent of uniform for small fleets.
const ringVnodes = 64

// hashRing is a consistent-hash ring over worker indices. It is built
// once over the full configured fleet; lookups skip workers the caller
// marks dead, which reassigns exactly the dead workers' ranges (the
// minimal-churn property that keeps worker caches warm across
// evictions and re-admissions).
type hashRing struct {
	hashes []uint64 // sorted vnode positions
	owner  []int    // owner[i] is the worker owning hashes[i]
}

func newHashRing(workers int) *hashRing {
	r := &hashRing{
		hashes: make([]uint64, 0, workers*ringVnodes),
		owner:  make([]int, 0, workers*ringVnodes),
	}
	type point struct {
		h uint64
		w int
	}
	points := make([]point, 0, workers*ringVnodes)
	for w := 0; w < workers; w++ {
		for v := 0; v < ringVnodes; v++ {
			points = append(points, point{ringHash(fmt.Sprintf("w%d/v%d", w, v)), w})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		return points[i].w < points[j].w // deterministic on (vanishingly rare) collisions
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.w)
	}
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// pick returns the ring owner for key among workers where alive(w)
// reports true (nil means all alive), walking clockwise from the key's
// position. Returns -1 when no worker qualifies.
func (r *hashRing) pick(key string, alive func(int) bool) int {
	n := len(r.hashes)
	if n == 0 {
		return -1
	}
	h := ringHash(key)
	i := sort.Search(n, func(i int) bool { return r.hashes[i] >= h })
	for k := 0; k < n; k++ {
		w := r.owner[(i+k)%n]
		if alive == nil || alive(w) {
			return w
		}
	}
	return -1
}

// Fleet dispatch metrics: sub-campaign outcomes per worker, and pairs
// gathered per worker.
func metFleetChunks(worker, outcome string) *obs.Counter {
	return obs.Default().Counter("speckit_fleet_chunks_total",
		"Scattered sub-campaigns by worker and outcome.",
		"worker", worker, "outcome", outcome)
}

func metFleetPairs(worker string) *obs.Counter {
	return obs.Default().Counter("speckit_fleet_pairs_total",
		"Pairs gathered from fleet workers.", "worker", worker)
}

// probeFleet health-checks every configured worker concurrently and
// returns the sorted indices of the responsive ones. Probing per
// campaign is also the re-admission path: a worker evicted during an
// earlier dispatch rejoins as soon as it answers a probe again.
func (s *Server) probeFleet(ctx context.Context) []int {
	var (
		mu    sync.Mutex
		alive []int
		wg    sync.WaitGroup
	)
	for i, w := range s.cfg.Fleet {
		wg.Add(1)
		go func(i int, w RemoteWorker) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, fleetProbeTimeout)
			defer cancel()
			ok := w.Healthy(pctx)
			s.fleetUp[i].Store(ok)
			if ok {
				mu.Lock()
				alive = append(alive, i)
				mu.Unlock()
			}
		}(i, w)
	}
	wg.Wait()
	sort.Ints(alive)
	return alive
}

// runFleet is the coordinator's campaign engine: serve what the local
// tiers hold, scatter the rest across the fleet by consistent hash of
// each pair's content key, gather and write through. opt carries the
// merged per-campaign options (the caller applied the spec overrides);
// base provides the suite/size identity the chunk specs inherit. The id
// namespaces chunk names and trace spans — campaigns pass their job id,
// sweeps a per-grid-point sub-id.
func (s *Server) runFleet(ctx context.Context, id string, base CampaignSpec, pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
	// Normalize so the machine, instruction window and sampling knob
	// forwarded in chunk specs are the exact values the content keys
	// encode.
	opt = opt.Normalized()
	keys := core.CampaignKeys(pairs, opt)

	// Mirror Characterize's cache wiring so local lookups see the store
	// tier and gathered results write through to it.
	if opt.Cache == nil {
		opt.Cache = sched.NewCache()
	}
	if opt.Store != nil {
		opt.Cache.SetBackend(opt.Store, core.CharacteristicsCodec{})
	}

	span := opt.Trace.Start("fleet-campaign").
		SetAttr("pairs", len(pairs)).SetAttr("workers", len(s.cfg.Fleet))
	defer span.Finish()

	start := time.Now()
	results := make([]core.Characteristics, len(pairs))
	var (
		pmu  sync.Mutex
		prog = sched.Progress{Total: len(pairs)}
	)
	report := func() {
		pmu.Lock()
		p := prog
		p.Elapsed = time.Since(start)
		pmu.Unlock()
		if opt.Progress != nil {
			opt.Progress(p)
		}
	}

	// Differential serving: anything already in the coordinator's own
	// tiers never leaves the process; only the misses are scattered.
	var miss []int
	for i, k := range keys {
		if v, tier := opt.Cache.GetTier(k); tier != sched.TierMiss {
			results[i] = v.(core.Characteristics)
			pmu.Lock()
			prog.Done++
			prog.CacheHits++
			if tier == sched.TierStore {
				prog.StoreHits++
			}
			pmu.Unlock()
		} else {
			miss = append(miss, i)
		}
	}
	report()
	span.SetAttr("served_locally", len(pairs)-len(miss))
	if len(miss) == 0 {
		return results, nil
	}

	// Probe the fleet: dead workers lose their ring ranges for this
	// campaign, recovered ones re-admit themselves.
	alive := s.probeFleet(ctx)
	if len(alive) == 0 {
		return nil, fmt.Errorf("no healthy fleet worker among %d configured", len(s.cfg.Fleet))
	}
	aliveSet := make(map[int]bool, len(alive))
	dispatchOf := make(map[int]int, len(alive)) // fleet index -> dispatch index
	for d, f := range alive {
		aliveSet[f] = true
		dispatchOf[f] = d
	}

	// Group misses by ring owner (pair order preserved within an owner),
	// then cut each owner's run into chunks of at most FleetChunk pairs.
	ring := newHashRing(len(s.cfg.Fleet))
	owned := make(map[int][]int)
	for _, i := range miss {
		o := ring.pick(keys[i], func(w int) bool { return aliveSet[w] })
		owned[o] = append(owned[o], i)
	}
	owners := make([]int, 0, len(owned))
	for o := range owned {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	type chunk struct {
		idx   []int // indices into pairs/keys/results
		owner int   // fleet index
	}
	var chunks []chunk
	for _, o := range owners {
		list := owned[o]
		for lo := 0; lo < len(list); lo += s.cfg.FleetChunk {
			hi := min(lo+s.cfg.FleetChunk, len(list))
			chunks = append(chunks, chunk{idx: list[lo:hi], owner: o})
		}
	}

	// The chunk specs carry the merged machine, window, multiplexing,
	// sampling and fidelity values explicitly so worker-side content
	// keys match the coordinator's regardless of each worker's base
	// flags. The machine travels in its fingerprint-stable JSON form —
	// this is what lets a sweep scatter per-grid-point configurations.
	chunkMachine := opt.Machine
	tasks := make([]sched.RemoteTask[[]core.Characteristics], len(chunks))
	for t, ch := range chunks {
		names := make([]string, len(ch.idx))
		for j, i := range ch.idx {
			names[j] = pairs[i].Name()
		}
		spec := CampaignSpec{
			Suite:          base.Suite,
			Size:           base.Size,
			Pairs:          names,
			Instructions:   opt.Instructions,
			MultiplexSlots: opt.MultiplexSlots,
			Machine:        &chunkMachine,
			Sampling:       opt.Sampling.String(),
			Fidelity:       opt.Fidelity.String(),
			WorkersPerPair: opt.IntraPairWorkers,
			// Rate/topology travel in their normalized form (RateCopies
			// 0 or >1; the canonical topology string, "" when disabled)
			// so worker-side keys — and therefore store records — match
			// the coordinator's bit for bit.
			RateCopies: opt.RateCopies,
			Topology:   opt.Topology.String(),
		}
		name := fmt.Sprintf("%s/chunk%d", id, t)
		tasks[t] = sched.RemoteTask[[]core.Characteristics]{
			Name:     name,
			Affinity: dispatchOf[ch.owner],
			Run: func(ctx context.Context, d int) ([]core.Characteristics, error) {
				w := s.cfg.Fleet[alive[d]]
				cs := span.Child(name).SetAttr("worker", w.Name()).SetAttr("pairs", len(names))
				defer cs.Finish()
				st, err := w.Run(ctx, spec)
				if err != nil {
					metFleetChunks(w.Name(), "error").Inc()
					cs.SetAttr("error", err.Error())
					return nil, fmt.Errorf("worker %s: %w", w.Name(), err)
				}
				if st.Status != StatusDone {
					metFleetChunks(w.Name(), "error").Inc()
					cs.SetAttr("error", st.Status)
					return nil, fmt.Errorf("worker %s: sub-campaign %s ended %s: %s",
						w.Name(), st.ID, st.Status, st.Error)
				}
				if len(st.Results) != len(names) {
					metFleetChunks(w.Name(), "error").Inc()
					return nil, fmt.Errorf("worker %s: sub-campaign %s returned %d results for %d pairs",
						w.Name(), st.ID, len(st.Results), len(names))
				}
				metFleetChunks(w.Name(), "ok").Inc()
				metFleetPairs(w.Name()).Add(uint64(len(names)))
				return st.Results, nil
			},
		}
	}

	_, err := sched.RunRemote(ctx, len(alive), tasks, sched.RemoteOptions[[]core.Characteristics]{
		MaxAttempts: 3,
		EvictAfter:  2,
		Speculate:   true,
		TaskDone: func(t int, res []core.Characteristics) {
			// First completed attempt per chunk: record, write through to
			// the coordinator's tiers (so the store ends up with exactly
			// the records a single-node run would have written), account.
			for j, i := range chunks[t].idx {
				results[i] = res[j]
				opt.Cache.Put(keys[i], res[j])
			}
			pmu.Lock()
			prog.Done += len(chunks[t].idx)
			prog.Remote += len(chunks[t].idx)
			pmu.Unlock()
			report()
		},
		OnRetry: func(task string, d int, err error) {
			metFleetChunks(s.cfg.Fleet[alive[d]].Name(), "retry").Inc()
		},
		OnEvict: func(d int, err error) {
			f := alive[d]
			s.fleetUp[f].Store(false)
			metFleetChunks(s.cfg.Fleet[f].Name(), "evict").Inc()
		},
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
