package server

import "testing"

func TestSpecResolve(t *testing.T) {
	for _, tc := range []struct {
		spec CampaignSpec
		ok   bool
	}{
		{CampaignSpec{Suite: "cpu2017", Size: "ref"}, true},
		{CampaignSpec{Suite: "cpu2006", Mini: "all", Size: "test"}, true},
		{CampaignSpec{Suite: "", Size: ""}, true}, // defaults: cpu2017 ref
		{CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "train"}, true},
		{CampaignSpec{Suite: "spec95", Size: "ref"}, false},
		{CampaignSpec{Suite: "cpu2017", Mini: "nope", Size: "ref"}, false},
		{CampaignSpec{Suite: "cpu2017", Size: "huge"}, false},
	} {
		pairs, err := tc.spec.resolve()
		if tc.ok && (err != nil || len(pairs) == 0) {
			t.Errorf("resolve(%+v) = %d pairs, %v", tc.spec, len(pairs), err)
		}
		if !tc.ok && err == nil {
			t.Errorf("resolve(%+v) succeeded, want error", tc.spec)
		}
	}
}
