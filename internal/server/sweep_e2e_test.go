// Sweep e2e: /v1/sweeps driven exclusively through the typed client —
// submit/wait, SSE, manifest, cancellation, backpressure, differential
// repeat behaviour, typed 404s, and fleet-sharded bit-identity.
package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/sweep"
)

// sweepSpecT returns a small 2x2-grid sweep over two rate-int pairs.
func sweepSpecT(t *testing.T) server.SweepSpec {
	t.Helper()
	pairs, err := server.ResolveSpec(server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return server.SweepSpec{
		Suite: "cpu2017", Mini: "rate-int", Size: "test",
		Pairs:        []string{pairs[0].Name(), pairs[1].Name()},
		Instructions: 20000,
		Axes: []sweep.Axis{
			{Param: "l3.size", Values: []int64{1 << 20, 2 << 20}},
			{Param: "l2.size", Values: []int64{128 << 10, 256 << 10}},
		},
	}
}

// TestSweepEndToEnd: submit → SSE progress across both phases → result
// with knee reports and manifest; an identical second sweep is served
// without simulating a single cell and reproduces the knee report
// byte-identically; the server accounts cells by phase and source.
func TestSweepEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := core.Options{Instructions: 20000, Parallelism: 2, Cache: sched.NewCache(), Store: st}
	s, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 8, Characterize: base})
	ctx := ctxT(t)
	spec := sweepSpecT(t)

	status, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		t.Fatalf("submit sweep: %v", err)
	}
	if status.ID == "" || !strings.HasPrefix(status.ID, "s") {
		t.Fatalf("sweep id = %q", status.ID)
	}
	if status.Pairs != 2 || status.Points != 4 {
		t.Fatalf("accepted status = %+v, want 2 pairs x 4 points", status)
	}

	// Follow SSE until done; both phases must stream progress.
	phases := map[string]int{}
	var doneStatus server.SweepStatus
	err = c.SweepEvents(ctx, status.ID, func(ev client.Event) error {
		switch ev.Name {
		case "progress":
			p, perr := ev.SweepProgress()
			if perr != nil {
				return perr
			}
			phases[p.Phase]++
		case "done":
			st, serr := ev.SweepStatus()
			if serr != nil {
				return serr
			}
			doneStatus = st
		}
		return nil
	})
	if err != nil {
		t.Fatalf("sweep events: %v", err)
	}
	if phases["screen"] == 0 || phases["escalate"] == 0 {
		t.Errorf("SSE phases = %v, want progress from both", phases)
	}
	if doneStatus.Status != server.StatusDone {
		t.Fatalf("done event status = %+v", doneStatus)
	}

	st1, err := c.Sweep(ctx, status.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	res1 := st1.Result
	if res1 == nil {
		t.Fatal("done sweep has no result")
	}
	if res1.Screen.Simulated != 8 || res1.Screen.Store != 0 {
		t.Errorf("cold screen cells = %+v, want 8 simulated", res1.Screen)
	}
	if res1.EscalateTier != "sampled" || res1.Escalate.Total() == 0 {
		t.Errorf("escalation did not run: tier=%q cells=%+v", res1.EscalateTier, res1.Escalate)
	}
	if len(res1.Knees) != 2 {
		t.Fatalf("knee reports = %d, want 2 (default metrics)", len(res1.Knees))
	}
	for _, k := range res1.Knees {
		if k.Knee == "" || len(k.Points) == 0 {
			t.Errorf("metric %s: empty knee report %+v", k.Metric, k)
		}
	}

	// Manifest is retrievable under the advertised digest.
	if st1.ManifestDigest == "" {
		t.Error("no manifest digest on a done sweep")
	}
	manifest, digest, err := c.SweepManifest(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if digest != st1.ManifestDigest || len(manifest) == 0 {
		t.Errorf("manifest digest %q (status %q), %d bytes", digest, st1.ManifestDigest, len(manifest))
	}

	// The repeated sweep simulates nothing and reproduces the knee
	// report byte for byte.
	st2, err := c.SubmitSweepWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	res2 := st2.Result
	if res2 == nil || st2.Status != server.StatusDone {
		t.Fatalf("repeat sweep = %+v", st2)
	}
	if res2.Screen.Simulated != 0 || res2.Escalate.Simulated != 0 {
		t.Errorf("repeat simulated %d+%d cells, want 0", res2.Screen.Simulated, res2.Escalate.Simulated)
	}
	if got := res2.Screen.Memory + res2.Screen.Store; got != 8 {
		t.Errorf("repeat screen cache cells = %d, want 8", got)
	}
	if !bytes.Equal(asJSON(t, res1.Knees), asJSON(t, res2.Knees)) {
		t.Errorf("repeated sweep knee report differs:\n%s\n%s", asJSON(t, res1.Knees), asJSON(t, res2.Knees))
	}
	if !bytes.Equal(asJSON(t, res1.Points), asJSON(t, res2.Points)) {
		t.Error("repeated sweep grid differs")
	}

	// Cell accounting: expvar "sweeps" block sums both runs.
	snap := s.MetricsSnapshot()
	cells := snap["sweeps"].(map[string]any)["cells"].(map[string]uint64)
	if cells["screen_simulated"] != 8 {
		t.Errorf("screen_simulated = %d, want 8", cells["screen_simulated"])
	}
	if cells["screen_memory"]+cells["screen_store"] != 8 {
		t.Errorf("screen cache cells = %d, want 8", cells["screen_memory"]+cells["screen_store"])
	}
	if cells["escalate_simulated"] == 0 {
		t.Error("escalate_simulated = 0, want > 0")
	}
	// And the listing shows both sweeps done.
	list, err := c.Sweeps(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Status != server.StatusDone || list[1].Status != server.StatusDone {
		t.Errorf("sweep list = %+v", list)
	}
	// Prometheus twin of the cell counters is exposed.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `speckit_sweep_cells_total{phase="screen",source="simulated"}`) {
		t.Error("speckit_sweep_cells_total missing from /metrics")
	}
}

// TestSweepSpecValidation: structurally bad sweeps are rejected with
// 400 at submit time, before anything is queued.
func TestSweepSpecValidation(t *testing.T) {
	_, c, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)

	reject := func(name string, mutate func(*server.SweepSpec)) {
		t.Helper()
		spec := sweepSpecT(t)
		mutate(&spec)
		_, err := c.SubmitSweep(ctx, spec)
		var ae *client.APIError
		if err == nil || !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want 400", name, err)
		}
	}
	reject("bad-axis", func(s *server.SweepSpec) { s.Axes[0].Param = "l9.size" })
	reject("dup-axis", func(s *server.SweepSpec) { s.Axes[1] = s.Axes[0] })
	reject("bad-metric", func(s *server.SweepSpec) { s.Metrics = []string{"cpi"} })
	reject("bad-screen", func(s *server.SweepSpec) { s.Screen = "quantum" })
	reject("bad-escalate", func(s *server.SweepSpec) { s.Escalate = "quantum" })
	reject("bad-pair", func(s *server.SweepSpec) { s.Pairs = []string{"no-such-pair"} })
	reject("bad-point", func(s *server.SweepSpec) {
		s.Axes[0] = sweep.Axis{Param: "line", Values: []int64{48}}
	})

	// An invalid machine override fails JSON-decode validation (raw HTTP:
	// the typed client cannot construct an unserializable config).
	body := `{"suite":"cpu2017","size":"test","axes":[{"param":"l3.size","values":[1048576]}],` +
		`"machine":{"name":"x","l1i":{},"l1d":{},"l2":{},"l3":{},"pipeline":{},"clock_hz":0}}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid machine: status %d, want 400", resp.StatusCode)
	}
}

// TestUnknownIDsAreTypedNotFound is the satellite-6 regression test:
// every ID-taking client path — campaign and sweep alike — surfaces an
// unknown ID as a typed *APIError 404 (client.IsNotFound), never as a
// raw decode error.
func TestUnknownIDsAreTypedNotFound(t *testing.T) {
	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 4})
	ctx := ctxT(t)

	calls := map[string]func() error{
		"campaign": func() error { _, err := c.Campaign(ctx, "c999999", true); return err },
		"wait":     func() error { _, err := c.Wait(ctx, "c999999"); return err },
		"cancel":   func() error { _, err := c.Cancel(ctx, "c999999"); return err },
		"events": func() error {
			return c.Events(ctx, "c999999", func(client.Event) error { return nil })
		},
		"manifest": func() error { _, _, err := c.Manifest(ctx, "c999999"); return err },
		"sweep":    func() error { _, err := c.Sweep(ctx, "s999999", true); return err },
		"wait-sweep": func() error {
			_, err := c.WaitSweep(ctx, "s999999")
			return err
		},
		"cancel-sweep": func() error { _, err := c.CancelSweep(ctx, "s999999"); return err },
		"sweep-events": func() error {
			return c.SweepEvents(ctx, "s999999", func(client.Event) error { return nil })
		},
		"sweep-manifest": func() error { _, _, err := c.SweepManifest(ctx, "s999999"); return err },
	}
	for name, call := range calls {
		err := call()
		if err == nil || !client.IsNotFound(err) {
			t.Errorf("%s: err = %v, want typed 404 (IsNotFound)", name, err)
		}
	}
}

// TestSweepQueueAndCancel: sweeps share the campaigns' bounded queue
// (429 with Retry-After when full) and cancel cleanly while queued.
func TestSweepQueueAndCancel(t *testing.T) {
	release := make(chan struct{})
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		select {
		case <-release:
		case <-opt.Context.Done():
			return nil, opt.Context.Err()
		}
		return make([]core.Characteristics, len(pairs)), nil
	})
	_, c, _ := newTestServer(t, server.Config{Workers: 1, QueueDepth: 1})
	ctx := ctxT(t)

	// Occupy the single worker with a stubbed campaign, then fill the
	// one queue slot with a sweep.
	if _, err := c.Submit(ctx, server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "test"}); err != nil {
		t.Fatal(err)
	}
	spec := sweepSpecT(t)
	var queued server.SweepStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.SubmitSweep(ctx, spec)
		if err == nil {
			queued = st
			break
		}
		if !client.IsQueueFull(err) || time.Now().After(deadline) {
			t.Fatalf("submit sweep: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if queued.Status != server.StatusQueued {
		t.Fatalf("sweep status = %q, want queued", queued.Status)
	}

	// Queue slot now taken: the next sweep bounces with 429 + hint.
	_, err := c.SubmitSweep(ctx, spec)
	var ae *client.APIError
	if !client.IsQueueFull(err) || !errors.As(err, &ae) || ae.RetryAfter <= 0 {
		t.Fatalf("overflow submit: %v", err)
	}

	// Cancel the queued sweep; it finishes cancelled without running.
	if _, err := c.CancelSweep(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := c.WaitSweep(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Status != server.StatusCancelled || st.Result != nil {
		t.Errorf("cancelled sweep = %+v", st)
	}
	close(release)
}

// TestFleetShardedSweepBitIdentical is the acceptance gate for
// coordinator-aware sweeps: a sweep scattered over workers (whose base
// flags deliberately disagree with the sweep's) must produce exactly
// the result — and exactly the store key set — a single-node sweep
// does, with every cold cell computed remotely.
func TestFleetShardedSweepBitIdentical(t *testing.T) {
	spec := sweepSpecT(t)
	ctx := ctxT(t)

	// Single-node reference.
	soloDir := t.TempDir()
	soloStore, err := store.Open(soloDir)
	if err != nil {
		t.Fatal(err)
	}
	_, solo, _ := newTestServer(t, server.Config{
		Workers: 1, QueueDepth: 8,
		Characterize: core.Options{Parallelism: 2, Cache: sched.NewCache(), Store: soloStore},
	})
	want, err := solo.SubmitSweepWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if want.Status != server.StatusDone {
		t.Fatalf("single-node sweep = %+v", want)
	}

	// Sharded run: worker base options differ (Instructions 11111) to
	// prove the chunk specs forward the merged window and machine.
	workers, _ := startWorkers(t, 3, core.Options{Instructions: 11111, Parallelism: 2})
	_, coordClient, coordDir := newCoordinator(t, workers, 2, core.Options{Parallelism: 2})
	got, err := coordClient.SubmitSweepWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != server.StatusDone {
		t.Fatalf("sharded sweep = %+v", got)
	}

	if !bytes.Equal(asJSON(t, want.Result.Points), asJSON(t, got.Result.Points)) {
		t.Error("sharded sweep grid differs from single-node")
	}
	if !bytes.Equal(asJSON(t, want.Result.Knees), asJSON(t, got.Result.Knees)) {
		t.Errorf("sharded sweep knee report differs from single-node:\n%s\n%s",
			asJSON(t, want.Result.Knees), asJSON(t, got.Result.Knees))
	}

	// Cold cells were computed remotely, not locally simulated.
	if got.Result.Screen.Simulated != 0 || got.Result.Screen.Remote != 8 {
		t.Errorf("sharded screen cells = %+v, want 8 remote", got.Result.Screen)
	}
	if got.Result.Escalate.Simulated != 0 || got.Result.Escalate.Remote == 0 {
		t.Errorf("sharded escalate cells = %+v, want remote only", got.Result.Escalate)
	}

	// The coordinator's store holds exactly the single-node key set.
	wantKeys, gotKeys := storeKeys(t, soloDir), storeKeys(t, coordDir)
	if len(wantKeys) == 0 {
		t.Fatal("single-node sweep wrote no store records")
	}
	if len(wantKeys) != len(gotKeys) {
		t.Fatalf("store keys: single-node %d, sharded %d", len(wantKeys), len(gotKeys))
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("sharded store is missing record %s", k)
		}
	}

	var progress sweep.Progress
	_ = json.Unmarshal(asJSON(t, got.Progress), &progress) // status progress decodes as engine progress
	if progress.CellsDone != got.Result.Cells {
		t.Errorf("final progress %+v disagrees with result cells %d", progress, got.Result.Cells)
	}
}
