// Fleet e2e: a coordinator in front of in-process worker specserveds
// (httptest) must serve sharded campaigns bit-identical to a single-node
// run — same results, same store records — and must survive a worker
// dying mid-campaign with zero lost pairs.
package server_test

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
)

// startWorkers boots n real worker servers (each with its own cache and
// store) and returns their RemoteWorkers plus a kill func per worker.
func startWorkers(t *testing.T, n int, base core.Options) ([]server.RemoteWorker, []func()) {
	t.Helper()
	workers := make([]server.RemoteWorker, n)
	kill := make([]func(), n)
	for i := 0; i < n; i++ {
		opt := base
		opt.Cache = sched.NewCache()
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		opt.Store = st
		s := server.New(server.Config{Workers: 2, QueueDepth: 32, Characterize: opt})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(s.Drain)
		workers[i] = fleet.Worker(ts.URL)
		kill[i] = func() {
			// Sever live connections first so in-flight sub-campaigns on
			// this worker observe a client disconnect (and are cancelled)
			// instead of Close blocking on them.
			ts.CloseClientConnections()
			ts.Close()
		}
	}
	return workers, kill
}

func newCoordinator(t *testing.T, workers []server.RemoteWorker, chunk int, base core.Options) (*server.Server, *client.Client, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base.Cache = sched.NewCache()
	base.Store = st
	s := server.New(server.Config{
		Workers: 1, QueueDepth: 8, FleetChunk: chunk,
		Fleet: workers, Characterize: base,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, client.New(ts.URL), dir
}

// storeKeys returns the set of record keys a store directory holds.
func storeKeys(t *testing.T, dir string) map[string]bool {
	t.Helper()
	keys := map[string]bool{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".json") {
			keys[strings.TrimSuffix(d.Name(), ".json")] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// baseline runs the same campaign in-process through core.Characterize
// with its own store, returning the results and the store's record keys.
func baseline(t *testing.T, spec server.CampaignSpec, instructions uint64) ([]core.Characteristics, map[string]bool) {
	t.Helper()
	pairs, err := server.ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Characterize(pairs, core.Options{
		Instructions: instructions, Cache: sched.NewCache(), Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	return want, storeKeys(t, dir)
}

func asJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetShardedBitIdentical: a campaign scattered over 3 workers
// returns results bit-identical to a single-node run of the same spec
// and populates the coordinator's store with exactly the same records.
// Worker base options deliberately differ from the campaign's, proving
// the coordinator forwards the merged window explicitly instead of
// relying on fleet-wide flag agreement for spec-overridable knobs.
func TestFleetShardedBitIdentical(t *testing.T) {
	const instructions = 20000
	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "test", Instructions: instructions}

	workers, _ := startWorkers(t, 3, core.Options{Instructions: 11111, Parallelism: 2})
	coord, c, coordStore := newCoordinator(t, workers, 2, core.Options{Instructions: 77777, Parallelism: 2})
	ctx := ctxT(t)

	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("sharded campaign: %v", err)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("status %s: %s", st.Status, st.Error)
	}
	want, wantKeys := baseline(t, spec, instructions)
	if len(st.Results) != len(want) {
		t.Fatalf("sharded campaign returned %d results, single-node %d", len(st.Results), len(want))
	}
	if !bytes.Equal(asJSON(t, st.Results), asJSON(t, want)) {
		t.Error("sharded results differ from the single-node run")
	}
	if st.Progress.Remote != len(want) || st.Progress.Done != len(want) {
		t.Errorf("progress = %+v, want all %d pairs done remotely", st.Progress, len(want))
	}
	if st.ManifestDigest == "" {
		t.Error("fleet campaign published no manifest digest")
	}

	gotKeys := storeKeys(t, coordStore)
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("coordinator store holds %d records, single-node %d", len(gotKeys), len(wantKeys))
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("store record %s missing from the coordinator store", k)
		}
	}

	// The coordinator's expvar accounting must attribute the pairs to
	// the remote source, not to local simulation.
	pairsBySource := coord.MetricsSnapshot()["pairs"].(map[string]uint64)
	if got := pairsBySource["from_remote"]; got != uint64(len(want)) {
		t.Errorf("from_remote = %d, want %d", got, len(want))
	}
	if got := pairsBySource["simulated"]; got != 0 {
		t.Errorf("simulated = %d, want 0 on a coordinator", got)
	}

	// A resubmission is served entirely from the coordinator's own
	// tiers: no pair goes back to the fleet.
	st2, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("resubmission: %v", err)
	}
	if st2.Progress.CacheHits != len(want) || st2.Progress.Remote != 0 {
		t.Errorf("resubmission progress = %+v, want %d local cache hits and 0 remote", st2.Progress, len(want))
	}
	if !bytes.Equal(asJSON(t, st2.Results), asJSON(t, want)) {
		t.Error("locally re-served results differ from the single-node run")
	}
}

// TestFleetAnalyticBitIdentical: an analytic-tier campaign scattered
// over the fleet is bit-identical to a single-node analytic run. The
// workers' base options carry neither the fidelity nor the analytic
// window, so a match proves the coordinator forwards the tier in every
// chunk spec rather than relying on fleet-wide flag agreement.
func TestFleetAnalyticBitIdentical(t *testing.T) {
	const instructions = 20000
	spec := server.CampaignSpec{
		Suite: "cpu2017", Mini: "rate-int", Size: "test",
		Instructions: instructions, Fidelity: "analytic",
	}

	workers, _ := startWorkers(t, 3, core.Options{Instructions: 11111, Parallelism: 2})
	coord, c, coordStore := newCoordinator(t, workers, 2, core.Options{Instructions: 77777, Parallelism: 2})
	ctx := ctxT(t)

	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("sharded analytic campaign: %v", err)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("status %s: %s", st.Status, st.Error)
	}

	// Single-node baseline with the same tier and window.
	pairs, err := server.ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseDir := t.TempDir()
	baseSt, err := store.Open(baseDir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Characterize(pairs, core.Options{
		Instructions: instructions, Fidelity: machine.FidelityAnalytic,
		Cache: sched.NewCache(), Store: baseSt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != len(want) {
		t.Fatalf("sharded campaign returned %d results, single-node %d", len(st.Results), len(want))
	}
	if !bytes.Equal(asJSON(t, st.Results), asJSON(t, want)) {
		t.Error("sharded analytic results differ from the single-node run")
	}
	if st.Progress.Remote != len(want) {
		t.Errorf("progress = %+v, want all %d pairs done remotely", st.Progress, len(want))
	}

	// Store records carry the analytic key suffix on both sides, so key
	// sets matching proves the tier survived the scatter.
	wantKeys := storeKeys(t, baseDir)
	gotKeys := storeKeys(t, coordStore)
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("coordinator store holds %d records, single-node %d", len(gotKeys), len(wantKeys))
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("store record %s missing from the coordinator store", k)
		}
	}

	pairsBySource := coord.MetricsSnapshot()["pairs"].(map[string]uint64)
	if got := pairsBySource["analytic_from_remote"]; got != uint64(len(want)) {
		t.Errorf("analytic_from_remote = %d, want %d", got, len(want))
	}
	if got := pairsBySource["analytic_computed"]; got != 0 {
		t.Errorf("analytic_computed = %d, want 0 on a coordinator", got)
	}

	// A resubmission never goes back to the fleet and stays identical.
	st2, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("resubmission: %v", err)
	}
	if st2.Progress.CacheHits != len(want) || st2.Progress.Remote != 0 {
		t.Errorf("resubmission progress = %+v, want %d local cache hits and 0 remote", st2.Progress, len(want))
	}
	if !bytes.Equal(asJSON(t, st2.Results), asJSON(t, want)) {
		t.Error("locally re-served analytic results differ from the single-node run")
	}
}

// TestFleetParallelBitIdentical: a campaign carrying workers_per_pair
// scattered over the fleet is bit-identical to a single-node run at the
// same knob. The stream is long enough that the knob really windows
// (not the short-stream fallback), so a match proves both that the
// coordinator forwards the knob in every chunk spec — the workers' base
// options don't carry it, and an unforwarded knob would produce
// sequential results under different store keys — and that the stitched
// estimate is reproducible across process boundaries.
func TestFleetParallelBitIdentical(t *testing.T) {
	// Long enough that the geometric split keeps both windows above the
	// kernel's minimum window — genuinely parallel, not the fallback.
	const instructions = 120000
	spec := server.CampaignSpec{
		Suite: "cpu2017", Mini: "rate-int", Size: "test",
		Instructions: instructions, WorkersPerPair: 2,
	}

	workers, _ := startWorkers(t, 3, core.Options{Instructions: 11111, Parallelism: 2})
	_, c, coordStore := newCoordinator(t, workers, 2, core.Options{Instructions: 77777, Parallelism: 2})
	ctx := ctxT(t)

	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("sharded parallel campaign: %v", err)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("status %s: %s", st.Status, st.Error)
	}

	// Single-node baseline with the same knob and window.
	pairs, err := server.ResolveSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	baseDir := t.TempDir()
	baseSt, err := store.Open(baseDir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Characterize(pairs, core.Options{
		Instructions: instructions, IntraPairWorkers: 2,
		Cache: sched.NewCache(), Store: baseSt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(asJSON(t, st.Results), asJSON(t, want)) {
		t.Error("sharded parallel results differ from the single-node run")
	}

	// Store records carry the pairwindows key suffix on both sides, so
	// key sets matching proves the knob survived the scatter.
	wantKeys := storeKeys(t, baseDir)
	gotKeys := storeKeys(t, coordStore)
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("coordinator store holds %d records, single-node %d", len(gotKeys), len(wantKeys))
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("store record %s missing from the coordinator store", k)
		}
	}

	// A resubmission is served from the coordinator's own tiers.
	st2, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("resubmission: %v", err)
	}
	if st2.Progress.CacheHits != len(want) || st2.Progress.Remote != 0 {
		t.Errorf("resubmission progress = %+v, want %d local cache hits and 0 remote", st2.Progress, len(want))
	}
	if !bytes.Equal(asJSON(t, st2.Results), asJSON(t, want)) {
		t.Error("locally re-served parallel results differ from the single-node run")
	}
}

// TestFleetWorkerKilledMidCampaign: killing a worker while its chunks
// are in flight loses zero pairs — the dispatcher resubmits them to the
// survivors — and the final results (and a store-served resubmission)
// stay bit-identical to a single-node run.
func TestFleetWorkerKilledMidCampaign(t *testing.T) {
	const instructions = 20000
	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "test", Instructions: instructions}

	// Slow every worker sub-campaign slightly so the kill below lands
	// while chunks are still in flight (the stub runs the real engine,
	// so results stay bit-identical).
	stubCampaigns(t, func(pairs []profile.Pair, opt core.Options) ([]core.Characteristics, error) {
		time.Sleep(30 * time.Millisecond)
		return core.Characterize(pairs, opt)
	})

	workers, kill := startWorkers(t, 3, core.Options{Parallelism: 2})
	_, c, _ := newCoordinator(t, workers, 1, core.Options{Parallelism: 2})
	ctx := ctxT(t)

	submitted, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Watch the SSE stream; the first remote completion is the signal
	// that the scatter is under way, and the moment worker 0 dies.
	killed := false
	err = c.Events(ctx, submitted.ID, func(ev client.Event) error {
		if ev.Name != "progress" || killed {
			return nil
		}
		p, perr := ev.Progress()
		if perr != nil {
			return perr
		}
		if p.Remote > 0 && p.Done < p.Total {
			kill[0]()
			killed = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if !killed {
		t.Skip("campaign finished before a mid-flight kill was possible; nothing to assert")
	}

	final, err := c.Campaign(ctx, submitted.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != server.StatusDone {
		t.Fatalf("campaign ended %s after worker death: %s", final.Status, final.Error)
	}
	want, _ := baseline(t, spec, instructions)
	if final.Progress.Done != len(want) || len(final.Results) != len(want) {
		t.Fatalf("%d/%d pairs done, %d results: pairs were lost",
			final.Progress.Done, len(want), len(final.Results))
	}
	if !bytes.Equal(asJSON(t, final.Results), asJSON(t, want)) {
		t.Error("results after worker death differ from the single-node run")
	}

	// Everything the campaign gathered must now be store-served locally,
	// still bit-identical — the killed worker took no records with it.
	st2, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Progress.CacheHits != len(want) {
		t.Errorf("resubmission progress = %+v, want %d local hits", st2.Progress, len(want))
	}
	if !bytes.Equal(asJSON(t, st2.Results), asJSON(t, want)) {
		t.Error("store-served results after worker death differ from the single-node run")
	}
}

// TestFleetUnhealthyWorkerSkipped: a worker that is down before the
// scatter begins is excluded by the health probe; the campaign
// completes on the survivors and the fleet gauges report the death.
func TestFleetUnhealthyWorkerSkipped(t *testing.T) {
	const instructions = 20000
	spec := server.CampaignSpec{Suite: "cpu2017", Mini: "rate-fp", Size: "test", Instructions: instructions}

	workers, kill := startWorkers(t, 3, core.Options{Parallelism: 2})
	kill[1]() // dead before the campaign is ever submitted
	coord, c, _ := newCoordinator(t, workers, 2, core.Options{Parallelism: 2})
	ctx := ctxT(t)

	st, err := c.SubmitWait(ctx, spec)
	if err != nil {
		t.Fatalf("campaign with a pre-dead worker: %v", err)
	}
	if st.Status != server.StatusDone {
		t.Fatalf("status %s: %s", st.Status, st.Error)
	}
	want, _ := baseline(t, spec, instructions)
	if st.Progress.Done != len(want) || !bytes.Equal(asJSON(t, st.Results), asJSON(t, want)) {
		t.Error("campaign over the degraded fleet lost pairs or changed bits")
	}

	fleetInfo := coord.MetricsSnapshot()["fleet"].(map[string]any)
	healthy := 0
	for _, w := range fleetInfo["workers"].([]map[string]any) {
		if w["healthy"].(bool) {
			healthy++
		}
	}
	if healthy != 2 {
		t.Errorf("fleet snapshot reports %d healthy workers, want 2", healthy)
	}
}

// TestFleetNoHealthyWorkers: with the whole fleet down, the campaign
// fails with a clear error instead of hanging or silently running
// locally.
func TestFleetNoHealthyWorkers(t *testing.T) {
	workers, kill := startWorkers(t, 2, core.Options{})
	kill[0]()
	kill[1]()
	_, c, _ := newCoordinator(t, workers, 2, core.Options{})

	st, err := c.SubmitWait(ctxT(t), server.CampaignSpec{Suite: "cpu2017", Mini: "rate-int", Size: "test", Instructions: 20000})
	if err != nil {
		t.Fatalf("SubmitWait transport error: %v", err)
	}
	if st.Status != server.StatusFailed || !strings.Contains(st.Error, "no healthy fleet worker") {
		t.Fatalf("status %s (%q), want failed with a no-healthy-workers error", st.Status, st.Error)
	}
}
