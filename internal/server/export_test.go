package server

import (
	"repro/internal/core"
	"repro/internal/profile"
)

// SetRunCampaign swaps the worker's campaign entry point and returns a
// restore func. The e2e suite (package server_test) uses it to observe
// queueing and cancellation without paying for simulations.
func SetRunCampaign(fn func([]profile.Pair, core.Options) ([]core.Characteristics, error)) (restore func()) {
	old := runCampaign
	runCampaign = fn
	return func() { runCampaign = old }
}

// ResolveSpec exposes spec resolution so the e2e suite can compare
// served results against a direct library run over the same pairs.
func ResolveSpec(spec CampaignSpec) ([]profile.Pair, error) { return spec.resolve() }
