package profile

// This file tabulates workload models for the 29 SPEC CPU2006 applications
// used in the paper's CPU17-vs-CPU06 comparison tables (III–VII). Only
// suite-level aggregates appear in the paper, so the per-application
// values are interpolations constrained to reproduce those aggregates
// (IPC int 1.762 / fp 1.815; loads 26.2/23.7 %; stores 10.3/7.2 %;
// branches 19.1/10.8 %; mispredicts 2.39/1.97 %; L1 4.13/2.53 %;
// L2 40.9/31.9 %; L3 12.2/14.0 %; RSS ~0.39/0.37 GiB).

// CPU2006 returns the profiles of all 29 CPU2006 applications.
func CPU2006() []*Profile {
	var apps []*Profile
	apps = append(apps, cpu06Int()...)
	apps = append(apps, cpu06FP()...)
	return apps
}

func cpu06Int() []*Profile {
	mix := DefaultIntBranchMix()
	row := func(name string, instr, ipc, ld, st, br, misp, l1, l2, l3, rss, vsz, mlp, code float64, sites int) *Profile {
		return &Profile{
			Name: name, Suite: CPU06Int,
			InstrBillions: instr, TargetIPC: ipc,
			LoadPct: ld, StorePct: st, BranchPct: br, Mix: mix,
			MispredictPct: misp, L1MissPct: l1, L2MissPct: l2, L3MissPct: l3,
			RSSMiB: rss, VSZMiB: vsz, MLP: mlp, CodeKiB: code, BranchSites: sites, Threads: 1,
		}
	}
	return []*Profile{
		row("400.perlbench", 1550, 2.10, 27.5, 12.5, 22.0, 2.9, 1.4, 24, 6, 250, 270, 2.2, 900, 7000),
		row("401.bzip2", 1200, 1.95, 26.0, 9.5, 17.5, 3.0, 2.8, 34, 9, 340, 360, 2.0, 90, 900),
		row("403.gcc", 800, 1.40, 27.0, 13.0, 22.5, 3.2, 4.8, 42, 13, 450, 490, 2.6, 1900, 15000),
		row("429.mcf", 700, 0.70, 31.0, 9.0, 24.5, 4.5, 13.5, 72, 32, 860, 880, 5.5, 30, 500),
		row("445.gobmk", 1050, 1.70, 24.5, 11.5, 21.0, 3.8, 1.9, 28, 7, 110, 140, 1.5, 700, 6000),
		row("456.hmmer", 1875, 2.90, 27.5, 12.0, 14.0, 1.2, 1.1, 18, 5, 25, 60, 2.0, 120, 1200),
		row("458.sjeng", 1400, 1.75, 22.0, 9.0, 19.5, 4.4, 1.6, 26, 8, 170, 190, 1.6, 140, 1700),
		row("462.libquantum", 2350, 1.25, 24.0, 6.5, 25.5, 0.9, 8.5, 75, 30, 96, 120, 6.0, 30, 300),
		row("464.h264ref", 2050, 2.85, 28.5, 11.0, 12.0, 1.7, 1.0, 16, 4, 65, 100, 3.5, 500, 3800),
		row("471.omnetpp", 775, 1.10, 27.5, 12.5, 20.5, 2.8, 5.2, 62, 20, 160, 190, 2.6, 850, 6500),
		row("473.astar", 975, 1.35, 26.5, 9.5, 17.0, 3.2, 4.6, 48, 9, 320, 340, 1.9, 50, 600),
		row("483.xalancbmk", 1200, 2.05, 28.0, 7.5, 27.5, 1.7, 3.2, 45, 3, 420, 450, 3.2, 1500, 11000),
	}
}

func cpu06FP() []*Profile {
	mix := DefaultFPBranchMix()
	row := func(name string, instr, ipc, ld, st, br, misp, l1, l2, l3, rss, vsz, mlp, code float64, sites int) *Profile {
		return &Profile{
			Name: name, Suite: CPU06FP,
			InstrBillions: instr, TargetIPC: ipc,
			LoadPct: ld, StorePct: st, BranchPct: br, Mix: mix,
			MispredictPct: misp, L1MissPct: l1, L2MissPct: l2, L3MissPct: l3,
			RSSMiB: rss, VSZMiB: vsz, MLP: mlp, CodeKiB: code, BranchSites: sites, Threads: 1,
		}
	}
	return []*Profile{
		row("410.bwaves", 2125, 1.90, 26.5, 5.5, 12.5, 0.7, 2.6, 32, 21, 880, 900, 4.5, 60, 600),
		row("416.gamess", 2750, 2.55, 26.0, 7.0, 10.0, 2.8, 0.8, 10, 3, 65, 680, 1.6, 2300, 7000),
		row("433.milc", 1350, 1.15, 23.5, 7.5, 9.5, 0.6, 4.5, 52, 28, 680, 700, 4.0, 140, 900),
		row("434.zeusmp", 1800, 1.70, 21.5, 6.5, 8.5, 1.1, 3.0, 33, 15, 510, 530, 3.0, 420, 1600),
		row("435.gromacs", 2200, 2.05, 24.5, 8.5, 9.0, 2.0, 1.5, 17, 6, 28, 60, 2.0, 720, 2200),
		row("436.cactusADM", 1575, 1.35, 36.5, 8.0, 3.5, 0.3, 5.2, 35, 22, 670, 690, 4.2, 1300, 2000),
		row("437.leslie3d", 1900, 1.55, 25.5, 7.5, 7.0, 0.8, 4.4, 42, 20, 130, 150, 3.6, 180, 900),
		row("444.namd", 2625, 2.35, 28.5, 7.5, 6.0, 1.0, 1.3, 14, 5, 47, 80, 2.4, 360, 1200),
		row("447.dealII", 2550, 2.45, 29.5, 8.0, 16.0, 2.2, 1.9, 22, 7, 800, 820, 3.0, 1900, 7500),
		row("450.soplex", 1125, 1.20, 27.0, 6.0, 16.5, 3.2, 5.8, 55, 24, 430, 450, 2.6, 420, 2600),
		row("453.povray", 2450, 2.30, 28.0, 9.5, 14.5, 3.6, 0.9, 11, 4, 4, 40, 1.5, 680, 3600),
		row("454.calculix", 2875, 2.50, 25.5, 6.5, 9.0, 2.3, 1.2, 13, 5, 160, 180, 2.1, 1500, 4200),
		row("459.GemsFDTD", 1750, 1.25, 27.0, 7.5, 8.0, 0.6, 5.5, 50, 26, 830, 850, 4.4, 390, 1400),
		row("465.tonto", 2525, 2.20, 26.0, 8.5, 12.0, 2.6, 1.4, 15, 5, 40, 80, 1.8, 3200, 8800),
		row("470.lbm", 1550, 1.30, 20.5, 11.0, 1.5, 0.3, 6.2, 48, 27, 410, 430, 5.5, 22, 160),
		row("481.wrf", 2375, 1.75, 24.5, 7.5, 11.0, 1.8, 3.1, 30, 13, 680, 700, 2.8, 3900, 8500),
		row("482.sphinx3", 2225, 1.30, 27.0, 4.5, 12.5, 2.4, 4.1, 57, 26, 45, 80, 3.0, 140, 900),
	}
}
