package profile

import (
	"math"
	"strings"
	"testing"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range append(CPU2017(), CPU2006()...) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCPU2017Counts(t *testing.T) {
	apps := CPU2017()
	if len(apps) != 43 {
		t.Fatalf("CPU2017 app count = %d, want 43", len(apps))
	}
	counts := map[Suite]int{}
	for _, a := range apps {
		counts[a.Suite]++
	}
	want := map[Suite]int{RateInt: 10, RateFP: 13, SpeedInt: 10, SpeedFP: 10}
	for s, w := range want {
		if counts[s] != w {
			t.Errorf("%v count = %d, want %d", s, counts[s], w)
		}
	}
}

func TestCPU2006Counts(t *testing.T) {
	apps := CPU2006()
	if len(apps) != 29 {
		t.Fatalf("CPU2006 app count = %d, want 29", len(apps))
	}
	counts := map[Suite]int{}
	for _, a := range apps {
		counts[a.Suite]++
	}
	if counts[CPU06Int] != 12 || counts[CPU06FP] != 17 {
		t.Errorf("CPU06 split = %d int / %d fp, want 12/29", counts[CPU06Int], counts[CPU06FP])
	}
}

// TestPairTotals asserts the paper's Section II pair counts: 69 test, 61
// train, 64 ref — 194 in total.
func TestPairTotals(t *testing.T) {
	apps := CPU2017()
	want := map[InputSize]int{Test: 69, Train: 61, Ref: 64}
	total := 0
	for size, w := range want {
		pairs := ExpandSuite(apps, size)
		if len(pairs) != w {
			t.Errorf("%v pairs = %d, want %d", size, len(pairs), w)
		}
		total += len(pairs)
	}
	if total != 194 {
		t.Errorf("total pairs = %d, want 194", total)
	}
}

func TestUniquePairNames(t *testing.T) {
	for _, size := range []InputSize{Test, Train, Ref} {
		seen := map[string]bool{}
		for _, p := range ExpandSuite(CPU2017(), size) {
			if seen[p.Name()] {
				t.Errorf("duplicate pair name %q at %v", p.Name(), size)
			}
			seen[p.Name()] = true
		}
	}
}

func TestPairNameFormat(t *testing.T) {
	apps := CPU2017()
	for _, p := range ExpandSuite(apps, Ref) {
		if p.Input == "" {
			if strings.Contains(p.Name(), "-") {
				t.Errorf("single-input pair name %q contains dash", p.Name())
			}
		} else if !strings.HasSuffix(p.Name(), "-"+p.Input) {
			t.Errorf("pair name %q missing input suffix %q", p.Name(), p.Input)
		}
	}
}

func TestExpandDeterministic(t *testing.T) {
	a := ExpandSuite(CPU2017(), Ref)
	b := ExpandSuite(CPU2017(), Ref)
	for i := range a {
		if a[i].Model != b[i].Model {
			t.Fatalf("pair %s model differs across expansions", a[i].Name())
		}
	}
}

func TestPerturbationBounded(t *testing.T) {
	for _, p := range CPU2017() {
		for _, pair := range p.Expand(Ref) {
			m := pair.Model
			// Rates stay in range and within a plausible band of the base.
			if m.L1MissPct < 0 || m.L1MissPct > 100 {
				t.Errorf("%s: L1 miss %v out of range", pair.Name(), m.L1MissPct)
			}
			if p.L1MissPct > 0 {
				ratio := m.L1MissPct / p.L1MissPct
				if ratio < 0.7 || ratio > 1.3 {
					t.Errorf("%s: L1 perturbation ratio %v too large", pair.Name(), ratio)
				}
			}
			if m.VSZMiB < m.RSSMiB {
				t.Errorf("%s: VSZ %v < RSS %v", pair.Name(), m.VSZMiB, m.RSSMiB)
			}
		}
	}
}

func TestMultiInputAppsDiffer(t *testing.T) {
	for _, p := range CPU2017() {
		pairs := p.Expand(Ref)
		if len(pairs) < 2 {
			continue
		}
		if pairs[0].Model == pairs[1].Model {
			t.Errorf("%s: first two ref inputs have identical models", p.Name)
		}
	}
}

func TestSizeScalingMonotone(t *testing.T) {
	for _, p := range CPU2017() {
		test := p.Expand(Test)[0].Model
		train := p.Expand(Train)[0].Model
		ref := p.Expand(Ref)[0].Model
		if !(test.InstrBillions < train.InstrBillions && train.InstrBillions < ref.InstrBillions) {
			t.Errorf("%s: instruction counts not monotone: %v %v %v",
				p.Name, test.InstrBillions, train.InstrBillions, ref.InstrBillions)
		}
		if test.RSSMiB > ref.RSSMiB {
			t.Errorf("%s: test RSS %v exceeds ref %v", p.Name, test.RSSMiB, ref.RSSMiB)
		}
	}
}

func TestFilterSuite(t *testing.T) {
	pairs := ExpandSuite(CPU2017(), Ref)
	rate := FilterSuite(pairs, RateInt)
	for _, p := range rate {
		if p.App.Suite != RateInt {
			t.Errorf("FilterSuite leaked %v pair %s", p.App.Suite, p.Name())
		}
	}
	// 10 apps: perlbench 3 + gcc 5 + x264 3 + xz 3 + 6 singles = 20 pairs.
	if len(rate) != 20 {
		t.Errorf("rate int ref pairs = %d, want 20", len(rate))
	}
}

func mean(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// perAppRefMeans averages each app's ref-input models (the paper averages
// counters across inputs before aggregating per suite).
func perAppRefMeans(apps []*Profile, pick func(Model) float64) map[Suite][]float64 {
	out := map[Suite][]float64{}
	for _, a := range apps {
		var vals []float64
		for _, p := range a.Expand(Ref) {
			vals = append(vals, pick(p.Model))
		}
		out[a.Suite] = append(out[a.Suite], mean(vals))
	}
	return out
}

func checkNear(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %.3f, want %.3f (±%.0f%%)", name, got, want, relTol*100)
	}
}

// TestTableIICalibration asserts the suite-average nominal instruction
// counts and target IPCs track the paper's Table II (ref row).
func TestTableIICalibration(t *testing.T) {
	apps := CPU2017()
	instr := perAppRefMeans(apps, func(m Model) float64 { return m.InstrBillions })
	ipc := perAppRefMeans(apps, func(m Model) float64 { return m.TargetIPC })
	checkNear(t, "rate int instr", mean(instr[RateInt]), 1751.516, 0.10)
	checkNear(t, "rate fp instr", mean(instr[RateFP]), 2291.092, 0.10)
	checkNear(t, "speed int instr", mean(instr[SpeedInt]), 2265.182, 0.10)
	checkNear(t, "speed fp instr", mean(instr[SpeedFP]), 21880.115, 0.10)
	checkNear(t, "rate int IPC", mean(ipc[RateInt]), 1.724, 0.08)
	checkNear(t, "rate fp IPC", mean(ipc[RateFP]), 1.635, 0.08)
	checkNear(t, "speed int IPC", mean(ipc[SpeedInt]), 1.635, 0.08)
	checkNear(t, "speed fp IPC", mean(ipc[SpeedFP]), 0.706, 0.15)
}

// TestTableIVCalibration asserts the CPU17 int/fp instruction-mix targets.
func TestTableIVCalibration(t *testing.T) {
	apps := CPU2017()
	loads := perAppRefMeans(apps, func(m Model) float64 { return m.LoadPct })
	stores := perAppRefMeans(apps, func(m Model) float64 { return m.StorePct })
	branches := perAppRefMeans(apps, func(m Model) float64 { return m.BranchPct })
	intLoads := mean(append(append([]float64{}, loads[RateInt]...), loads[SpeedInt]...))
	fpLoads := mean(append(append([]float64{}, loads[RateFP]...), loads[SpeedFP]...))
	intStores := mean(append(append([]float64{}, stores[RateInt]...), stores[SpeedInt]...))
	fpStores := mean(append(append([]float64{}, stores[RateFP]...), stores[SpeedFP]...))
	intBr := mean(append(append([]float64{}, branches[RateInt]...), branches[SpeedInt]...))
	fpBr := mean(append(append([]float64{}, branches[RateFP]...), branches[SpeedFP]...))
	checkNear(t, "int loads", intLoads, 24.390, 0.10)
	checkNear(t, "fp loads", fpLoads, 26.187, 0.10)
	checkNear(t, "int stores", intStores, 10.341, 0.10)
	checkNear(t, "fp stores", fpStores, 7.136, 0.15)
	checkNear(t, "int branches", intBr, 18.735, 0.10)
	checkNear(t, "fp branches", fpBr, 11.114, 0.20)
}

// TestTableVIICalibration asserts the mispredict-rate targets.
func TestTableVIICalibration(t *testing.T) {
	apps := CPU2017()
	misp := perAppRefMeans(apps, func(m Model) float64 { return m.MispredictPct })
	intM := mean(append(append([]float64{}, misp[RateInt]...), misp[SpeedInt]...))
	fpM := mean(append(append([]float64{}, misp[RateFP]...), misp[SpeedFP]...))
	checkNear(t, "int mispredict", intM, 3.310, 0.15)
	checkNear(t, "fp mispredict", fpM, 1.188, 0.20)
}

// TestCPU2006Calibration asserts the CPU06 aggregates of Tables III–VII.
func TestCPU2006Calibration(t *testing.T) {
	apps := CPU2006()
	ipc := perAppRefMeans(apps, func(m Model) float64 { return m.TargetIPC })
	loads := perAppRefMeans(apps, func(m Model) float64 { return m.LoadPct })
	stores := perAppRefMeans(apps, func(m Model) float64 { return m.StorePct })
	branches := perAppRefMeans(apps, func(m Model) float64 { return m.BranchPct })
	misp := perAppRefMeans(apps, func(m Model) float64 { return m.MispredictPct })
	l2 := perAppRefMeans(apps, func(m Model) float64 { return m.L2MissPct })
	checkNear(t, "cpu06 int IPC", mean(ipc[CPU06Int]), 1.762, 0.08)
	checkNear(t, "cpu06 fp IPC", mean(ipc[CPU06FP]), 1.815, 0.08)
	checkNear(t, "cpu06 int loads", mean(loads[CPU06Int]), 26.234, 0.10)
	checkNear(t, "cpu06 fp loads", mean(loads[CPU06FP]), 23.683, 0.15)
	checkNear(t, "cpu06 int stores", mean(stores[CPU06Int]), 10.311, 0.10)
	checkNear(t, "cpu06 fp stores", mean(stores[CPU06FP]), 7.176, 0.15)
	checkNear(t, "cpu06 int branches", mean(branches[CPU06Int]), 19.055, 0.15)
	checkNear(t, "cpu06 fp branches", mean(branches[CPU06FP]), 10.805, 0.15)
	checkNear(t, "cpu06 int mispredict", mean(misp[CPU06Int]), 2.393, 0.30)
	checkNear(t, "cpu06 fp mispredict", mean(misp[CPU06FP]), 1.971, 0.30)
	checkNear(t, "cpu06 int L2", mean(l2[CPU06Int]), 40.854, 0.15)
	checkNear(t, "cpu06 fp L2", mean(l2[CPU06FP]), 31.914, 0.20)
}

// TestNamedExtremes asserts the values the paper states verbatim for
// specific applications.
func TestNamedExtremes(t *testing.T) {
	byName := map[string]*Profile{}
	for _, p := range CPU2017() {
		byName[p.Name] = p
	}
	cases := []struct {
		app   string
		field string
		get   func(*Profile) float64
		want  float64
	}{
		{"525.x264_r", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 3.024},
		{"625.x264_s", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 3.038},
		{"505.mcf_r", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 0.886},
		{"657.xz_s", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 0.903},
		{"508.namd_r", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 2.265},
		{"628.pop2_s", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 1.642},
		{"549.fotonik3d_r", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 1.117},
		{"619.lbm_s", "IPC", func(p *Profile) float64 { return p.TargetIPC }, 0.062},
		{"505.mcf_r", "branch%", func(p *Profile) float64 { return p.BranchPct }, 31.277},
		{"605.mcf_s", "branch%", func(p *Profile) float64 { return p.BranchPct }, 32.939},
		{"519.lbm_r", "branch%", func(p *Profile) float64 { return p.BranchPct }, 1.198},
		{"619.lbm_s", "branch%", func(p *Profile) float64 { return p.BranchPct }, 3.646},
		{"523.xalancbmk_r", "load%", func(p *Profile) float64 { return p.LoadPct }, 29.151},
		{"605.mcf_s", "load%", func(p *Profile) float64 { return p.LoadPct }, 29.581},
		{"548.exchange2_r", "store%", func(p *Profile) float64 { return p.StorePct }, 15.911},
		{"519.lbm_r", "store%", func(p *Profile) float64 { return p.StorePct }, 13.076},
		{"619.lbm_s", "store%", func(p *Profile) float64 { return p.StorePct }, 13.480},
		{"541.leela_r", "mispredict%", func(p *Profile) float64 { return p.MispredictPct }, 8.656},
		{"641.leela_s", "mispredict%", func(p *Profile) float64 { return p.MispredictPct }, 8.636},
		{"523.xalancbmk_r", "L1 miss%", func(p *Profile) float64 { return p.L1MissPct }, 12.174},
		{"605.mcf_s", "L1 miss%", func(p *Profile) float64 { return p.L1MissPct }, 14.138},
		{"507.cactuBSSN_r", "L1 miss%", func(p *Profile) float64 { return p.L1MissPct }, 19.485},
		{"505.mcf_r", "L2 miss%", func(p *Profile) float64 { return p.L2MissPct }, 65.721},
		{"605.mcf_s", "L2 miss%", func(p *Profile) float64 { return p.L2MissPct }, 77.824},
		{"531.deepsjeng_r", "L3 miss%", func(p *Profile) float64 { return p.L3MissPct }, 67.516},
		{"631.deepsjeng_s", "L3 miss%", func(p *Profile) float64 { return p.L3MissPct }, 68.579},
		{"549.fotonik3d_r", "L2 miss%", func(p *Profile) float64 { return p.L2MissPct }, 71.609},
		{"549.fotonik3d_r", "L3 miss%", func(p *Profile) float64 { return p.L3MissPct }, 66.291},
		{"654.roms_s", "load%", func(p *Profile) float64 { return p.LoadPct }, 11.504},
		{"654.roms_s", "store%", func(p *Profile) float64 { return p.StorePct }, 0.895},
		{"548.exchange2_r", "RSS MiB", func(p *Profile) float64 { return p.RSSMiB }, 1.148},
	}
	for _, c := range cases {
		p, ok := byName[c.app]
		if !ok {
			t.Errorf("app %s missing", c.app)
			continue
		}
		if got := c.get(p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%s %s = %v, want %v (paper)", c.app, c.field, got, c.want)
		}
	}
	// 657.xz_s has the largest footprint: ~12.385 GiB RSS, 15.422 GiB VSZ.
	xz := byName["657.xz_s"]
	if xz.RSSMiB < 12000 || xz.RSSMiB > 13000 {
		t.Errorf("657.xz_s RSS %v MiB, want ~12682", xz.RSSMiB)
	}
}

// TestSpeedVsRateFootprint checks the paper's claim that speed suites have
// roughly 8x the RSS of the rate suites.
func TestSpeedVsRateFootprint(t *testing.T) {
	apps := CPU2017()
	rss := perAppRefMeans(apps, func(m Model) float64 { return m.RSSMiB })
	rate := mean(append(append([]float64{}, rss[RateInt]...), rss[RateFP]...))
	speed := mean(append(append([]float64{}, rss[SpeedInt]...), rss[SpeedFP]...))
	ratio := speed / rate
	if ratio < 5 || ratio > 12 {
		t.Errorf("speed/rate RSS ratio = %.2f, want ~8.3", ratio)
	}
}

func TestInputsHelper(t *testing.T) {
	if got := inputs(1); got != nil {
		t.Errorf("inputs(1) = %v, want nil", got)
	}
	got := inputs(3)
	want := []string{"in1", "in2", "in3"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("inputs(3)[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	base := CPU2017()[0]
	mutations := []func(p *Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.InstrBillions = 0 },
		func(p *Profile) { p.TargetIPC = -1 },
		func(p *Profile) { p.LoadPct = 80; p.StorePct = 30 },
		func(p *Profile) { p.BranchPct = 70 },
		func(p *Profile) { p.Mix.Cond = 0 },
		func(p *Profile) { p.MispredictPct = 120 },
		func(p *Profile) { p.RSSMiB = 0 },
		func(p *Profile) { p.VSZMiB = p.RSSMiB / 2 },
		func(p *Profile) { p.MLP = 0.5 },
		func(p *Profile) { p.CodeKiB = 0 },
		func(p *Profile) { p.Threads = 0 },
	}
	for i, mut := range mutations {
		p := *base // copy
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSuiteString(t *testing.T) {
	for s := RateInt; s < numSuites; s++ {
		if s.String() == "" || strings.HasPrefix(s.String(), "Suite(") {
			t.Errorf("suite %d has no name", int(s))
		}
	}
	for sz := Test; sz < numInputSizes; sz++ {
		if sz.String() == "" || strings.HasPrefix(sz.String(), "InputSize(") {
			t.Errorf("size %d has no name", int(sz))
		}
	}
}
