package profile

// This file tabulates the workload models for the 43 SPEC CPU2017
// applications. Values the paper prints per application (Section IV and
// Table IX) are used verbatim; the rest are interpolated so the per-suite
// aggregates match Tables II–VII. See DESIGN.md "Known approximations".
//
// Input multiplicities: the paper reports 69 test, 61 train and 64 ref
// distinct application-input pairs. The ref multiplicities follow the SPEC
// documentation (perlbench 3, gcc 5, bwaves 4, x264 3, xz 3 on the rate
// side; 3/3/2/3/2 on the speed side); test/train splits are chosen to
// match the published totals.

func inputs(n int) []string {
	if n <= 1 {
		return nil
	}
	names := make([]string, n)
	for i := range names {
		names[i] = "in" + string(rune('1'+i))
	}
	return names
}

// CPU2017 returns the profiles of all 43 CPU2017 applications.
func CPU2017() []*Profile {
	var apps []*Profile
	apps = append(apps, rateInt()...)
	apps = append(apps, rateFP()...)
	apps = append(apps, speedInt()...)
	apps = append(apps, speedFP()...)
	return apps
}

func rateInt() []*Profile {
	intMix := DefaultIntBranchMix()
	return []*Profile{
		{
			Name: "500.perlbench_r", Suite: RateInt,
			InstrBillions: 2500, TargetIPC: 1.90,
			LoadPct: 24.5, StorePct: 11.2, BranchPct: 20.8, Mix: intMix,
			MispredictPct: 2.6, L1MissPct: 1.5, L2MissPct: 25, L3MissPct: 8,
			RSSMiB: 210, VSZMiB: 250, MLP: 2.0, CodeKiB: 1200, BranchSites: 9000, Threads: 1,
			RefInputs: inputs(3), TestInputs: inputs(4), TrainInputs: inputs(3), InputSpread: 0.8,
		},
		{
			Name: "502.gcc_r", Suite: RateInt,
			InstrBillions: 1250, TargetIPC: 1.25,
			LoadPct: 26.0, StorePct: 12.0, BranchPct: 21.0, Mix: intMix,
			MispredictPct: 3.5, L1MissPct: 4.5, L2MissPct: 38, L3MissPct: 12,
			RSSMiB: 1230, VSZMiB: 1500, MLP: 1.9, CodeKiB: 2100, BranchSites: 16000, Threads: 1,
			RefInputs: inputs(5), TestInputs: inputs(5), TrainInputs: inputs(5), InputSpread: 1.4,
		},
		{
			Name: "505.mcf_r", Suite: RateInt,
			InstrBillions: 1000, TargetIPC: 0.886,
			LoadPct: 27.0, StorePct: 9.0, BranchPct: 31.277, Mix: intMix,
			MispredictPct: 6.5, L1MissPct: 10.5, L2MissPct: 65.721, L3MissPct: 20,
			RSSMiB: 630, VSZMiB: 790, MLP: 3.8, CodeKiB: 40, BranchSites: 700, Threads: 1,
		},
		{
			Name: "520.omnetpp_r", Suite: RateInt,
			InstrBillions: 1100, TargetIPC: 1.05,
			LoadPct: 28.0, StorePct: 13.0, BranchPct: 20.0, Mix: intMix,
			MispredictPct: 2.5, L1MissPct: 5.0, L2MissPct: 58, L3MissPct: 30,
			RSSMiB: 250, VSZMiB: 410, MLP: 2.6, CodeKiB: 900, BranchSites: 7000, Threads: 1,
		},
		{
			Name: "523.xalancbmk_r", Suite: RateInt,
			InstrBillions: 1300, TargetIPC: 1.55,
			LoadPct: 29.151, StorePct: 8.0, BranchPct: 25.0, Mix: intMix,
			MispredictPct: 2.0, L1MissPct: 12.174, L2MissPct: 40, L3MissPct: 5,
			RSSMiB: 490, VSZMiB: 660, MLP: 3.2, CodeKiB: 1600, BranchSites: 12000, Threads: 1,
		},
		{
			Name: "525.x264_r", Suite: RateInt,
			InstrBillions: 2500, TargetIPC: 3.024,
			LoadPct: 25.0, StorePct: 7.0, BranchPct: 8.0, Mix: intMix,
			MispredictPct: 1.5, L1MissPct: 1.2, L2MissPct: 20, L3MissPct: 6,
			RSSMiB: 160, VSZMiB: 350, MLP: 4.5, CodeKiB: 250, BranchSites: 2500, Threads: 1,
			RefInputs: inputs(3), TestInputs: inputs(3), TrainInputs: inputs(3), InputSpread: 1.2,
		},
		{
			Name: "531.deepsjeng_r", Suite: RateInt,
			InstrBillions: 1800, TargetIPC: 1.85,
			LoadPct: 21.0, StorePct: 10.0, BranchPct: 16.0, Mix: intMix,
			MispredictPct: 4.0, L1MissPct: 2.5, L2MissPct: 30, L3MissPct: 67.516,
			RSSMiB: 700, VSZMiB: 880, MLP: 4.0, CodeKiB: 180, BranchSites: 2200, Threads: 1,
		},
		{
			Name: "541.leela_r", Suite: RateInt,
			InstrBillions: 1850, TargetIPC: 1.55,
			LoadPct: 20.0, StorePct: 9.0, BranchPct: 15.0, Mix: intMix,
			MispredictPct: 8.656, L1MissPct: 1.8, L2MissPct: 28, L3MissPct: 10,
			RSSMiB: 25, VSZMiB: 190, MLP: 1.4, CodeKiB: 160, BranchSites: 2000, Threads: 1,
		},
		{
			Name: "548.exchange2_r", Suite: RateInt,
			InstrBillions: 2900, TargetIPC: 2.70,
			LoadPct: 22.0, StorePct: 15.911, BranchPct: 14.0, Mix: intMix,
			MispredictPct: 1.2, L1MissPct: 0.3, L2MissPct: 10, L3MissPct: 3,
			RSSMiB: 1.148, VSZMiB: 15.16, MLP: 1.2, CodeKiB: 120, BranchSites: 1500, Threads: 1,
		},
		{
			Name: "557.xz_r", Suite: RateInt,
			InstrBillions: 1400, TargetIPC: 1.741,
			LoadPct: 21.0, StorePct: 8.0, BranchPct: 16.0, Mix: intMix,
			MispredictPct: 3.2, L1MissPct: 4.0, L2MissPct: 40, L3MissPct: 25,
			RSSMiB: 1150, VSZMiB: 1290, MLP: 3.2, CodeKiB: 150, BranchSites: 1800, Threads: 1,
			RefInputs: inputs(3), TestInputs: inputs(4), TrainInputs: inputs(2), InputSpread: 1.3,
		},
	}
}

func rateFP() []*Profile {
	fpMix := DefaultFPBranchMix()
	return []*Profile{
		{
			Name: "503.bwaves_r", Suite: RateFP,
			InstrBillions: 2600, TargetIPC: 2.10,
			LoadPct: 27.5, StorePct: 5.0, BranchPct: 13.4, Mix: fpMix,
			MispredictPct: 0.6, L1MissPct: 2.5, L2MissPct: 30, L3MissPct: 20,
			RSSMiB: 720, VSZMiB: 780, MLP: 4.5, CodeKiB: 60, BranchSites: 600, Threads: 1,
			RefInputs: inputs(4), TestInputs: inputs(4), TrainInputs: inputs(4), InputSpread: 0.5,
		},
		{
			Name: "507.cactuBSSN_r", Suite: RateFP,
			InstrBillions: 1300, TargetIPC: 1.30,
			LoadPct: 39.786, StorePct: 8.589, BranchPct: 3.7, Mix: fpMix,
			MispredictPct: 0.4, L1MissPct: 19.485, L2MissPct: 20, L3MissPct: 15,
			RSSMiB: 770, VSZMiB: 880, MLP: 5.0, CodeKiB: 1600, BranchSites: 2400, Threads: 1,
		},
		{
			Name: "508.namd_r", Suite: RateFP,
			InstrBillions: 2400, TargetIPC: 2.265,
			LoadPct: 29.0, StorePct: 7.0, BranchPct: 5.0, Mix: fpMix,
			MispredictPct: 0.9, L1MissPct: 1.5, L2MissPct: 15, L3MissPct: 5,
			RSSMiB: 48, VSZMiB: 170, MLP: 2.5, CodeKiB: 380, BranchSites: 1200, Threads: 1,
		},
		{
			Name: "510.parest_r", Suite: RateFP,
			InstrBillions: 2900, TargetIPC: 1.80,
			LoadPct: 30.0, StorePct: 6.0, BranchPct: 11.0, Mix: fpMix,
			MispredictPct: 1.1, L1MissPct: 2.8, L2MissPct: 25, L3MissPct: 10,
			RSSMiB: 420, VSZMiB: 510, MLP: 2.4, CodeKiB: 1400, BranchSites: 5200, Threads: 1,
		},
		{
			Name: "511.povray_r", Suite: RateFP,
			InstrBillions: 3000, TargetIPC: 2.20,
			LoadPct: 28.0, StorePct: 9.0, BranchPct: 14.0, Mix: fpMix,
			MispredictPct: 2.2, L1MissPct: 1.0, L2MissPct: 12, L3MissPct: 4,
			RSSMiB: 6, VSZMiB: 80, MLP: 1.5, CodeKiB: 700, BranchSites: 3800, Threads: 1,
		},
		{
			Name: "519.lbm_r", Suite: RateFP,
			InstrBillions: 1300, TargetIPC: 1.20,
			LoadPct: 23.0, StorePct: 13.076, BranchPct: 1.198, Mix: fpMix,
			MispredictPct: 0.3, L1MissPct: 6.5, L2MissPct: 45, L3MissPct: 25,
			RSSMiB: 410, VSZMiB: 450, MLP: 5.5, CodeKiB: 22, BranchSites: 160, Threads: 1,
		},
		{
			Name: "521.wrf_r", Suite: RateFP,
			InstrBillions: 2600, TargetIPC: 1.55,
			LoadPct: 26.0, StorePct: 7.0, BranchPct: 10.0, Mix: fpMix,
			MispredictPct: 1.3, L1MissPct: 3.0, L2MissPct: 28, L3MissPct: 12,
			RSSMiB: 210, VSZMiB: 340, MLP: 2.8, CodeKiB: 4200, BranchSites: 9000, Threads: 1,
		},
		{
			Name: "526.blender_r", Suite: RateFP,
			InstrBillions: 1700, TargetIPC: 1.50,
			LoadPct: 26.0, StorePct: 8.0, BranchPct: 11.0, Mix: fpMix,
			MispredictPct: 2.1, L1MissPct: 2.2, L2MissPct: 22, L3MissPct: 9,
			RSSMiB: 500, VSZMiB: 680, MLP: 2.0, CodeKiB: 3200, BranchSites: 12000, Threads: 1,
		},
		{
			Name: "527.cam4_r", Suite: RateFP,
			InstrBillions: 1500, TargetIPC: 1.40,
			LoadPct: 25.0, StorePct: 7.0, BranchPct: 12.0, Mix: fpMix,
			MispredictPct: 1.6, L1MissPct: 3.2, L2MissPct: 26, L3MissPct: 11,
			RSSMiB: 920, VSZMiB: 1050, MLP: 2.6, CodeKiB: 3600, BranchSites: 8000, Threads: 1,
		},
		{
			Name: "538.imagick_r", Suite: RateFP,
			InstrBillions: 3800, TargetIPC: 2.10,
			LoadPct: 27.0, StorePct: 5.0, BranchPct: 10.0, Mix: fpMix,
			MispredictPct: 0.8, L1MissPct: 1.1, L2MissPct: 18, L3MissPct: 8,
			RSSMiB: 260, VSZMiB: 330, MLP: 2.2, CodeKiB: 900, BranchSites: 3000, Threads: 1,
		},
		{
			Name: "544.nab_r", Suite: RateFP,
			InstrBillions: 2200, TargetIPC: 1.70,
			LoadPct: 28.0, StorePct: 6.0, BranchPct: 12.0, Mix: fpMix,
			MispredictPct: 1.4, L1MissPct: 2.0, L2MissPct: 20, L3MissPct: 9,
			RSSMiB: 150, VSZMiB: 230, MLP: 2.3, CodeKiB: 240, BranchSites: 1400, Threads: 1,
		},
		{
			Name: "549.fotonik3d_r", Suite: RateFP,
			InstrBillions: 1400, TargetIPC: 1.117,
			LoadPct: 29.0, StorePct: 8.0, BranchPct: 6.0, Mix: fpMix,
			MispredictPct: 0.5, L1MissPct: 7.5, L2MissPct: 71.609, L3MissPct: 66.291,
			RSSMiB: 850, VSZMiB: 940, MLP: 6.0, CodeKiB: 140, BranchSites: 700, Threads: 1,
		},
		{
			Name: "554.roms_r", Suite: RateFP,
			InstrBillions: 2400, TargetIPC: 1.55,
			LoadPct: 25.0, StorePct: 6.0, BranchPct: 9.0, Mix: fpMix,
			MispredictPct: 0.7, L1MissPct: 3.5, L2MissPct: 33, L3MissPct: 15,
			RSSMiB: 830, VSZMiB: 930, MLP: 3.2, CodeKiB: 680, BranchSites: 2600, Threads: 1,
		},
	}
}

func speedInt() []*Profile {
	intMix := DefaultIntBranchMix()
	return []*Profile{
		{
			Name: "600.perlbench_s", Suite: SpeedInt,
			InstrBillions: 2700, TargetIPC: 1.90,
			LoadPct: 24.5, StorePct: 11.2, BranchPct: 20.8, Mix: intMix,
			MispredictPct: 2.6, L1MissPct: 1.6, L2MissPct: 26, L3MissPct: 9,
			RSSMiB: 250, VSZMiB: 300, MLP: 2.0, CodeKiB: 1200, BranchSites: 9000, Threads: 1,
			RefInputs: inputs(3), TestInputs: inputs(4), TrainInputs: inputs(3), InputSpread: 0.8,
		},
		{
			Name: "602.gcc_s", Suite: SpeedInt,
			InstrBillions: 2000, TargetIPC: 1.30,
			LoadPct: 26.0, StorePct: 12.0, BranchPct: 21.0, Mix: intMix,
			MispredictPct: 3.4, L1MissPct: 5.0, L2MissPct: 42, L3MissPct: 14,
			RSSMiB: 4600, VSZMiB: 5200, MLP: 2.6, CodeKiB: 2100, BranchSites: 16000, Threads: 1,
			RefInputs: inputs(3), TestInputs: inputs(3), TrainInputs: inputs(2), InputSpread: 0.6,
		},
		{
			Name: "605.mcf_s", Suite: SpeedInt,
			InstrBillions: 1800, TargetIPC: 0.93,
			LoadPct: 29.581, StorePct: 9.0, BranchPct: 32.939, Mix: intMix,
			MispredictPct: 7.0, L1MissPct: 14.138, L2MissPct: 77.824, L3MissPct: 22,
			RSSMiB: 3700, VSZMiB: 4100, MLP: 6.5, CodeKiB: 40, BranchSites: 700, Threads: 1,
		},
		{
			Name: "620.omnetpp_s", Suite: SpeedInt,
			InstrBillions: 1100, TargetIPC: 1.05,
			LoadPct: 28.0, StorePct: 13.0, BranchPct: 20.0, Mix: intMix,
			MispredictPct: 2.5, L1MissPct: 5.2, L2MissPct: 60, L3MissPct: 32,
			RSSMiB: 4000, VSZMiB: 4400, MLP: 2.6, CodeKiB: 900, BranchSites: 7000, Threads: 1,
		},
		{
			Name: "623.xalancbmk_s", Suite: SpeedInt,
			InstrBillions: 1400, TargetIPC: 1.55,
			LoadPct: 29.0, StorePct: 8.0, BranchPct: 25.0, Mix: intMix,
			MispredictPct: 2.0, L1MissPct: 11.5, L2MissPct: 42, L3MissPct: 6,
			RSSMiB: 510, VSZMiB: 690, MLP: 3.2, CodeKiB: 1600, BranchSites: 12000, Threads: 1,
		},
		{
			Name: "625.x264_s", Suite: SpeedInt,
			InstrBillions: 2600, TargetIPC: 3.038,
			LoadPct: 25.0, StorePct: 7.0, BranchPct: 8.0, Mix: intMix,
			MispredictPct: 1.5, L1MissPct: 1.3, L2MissPct: 21, L3MissPct: 7,
			RSSMiB: 250, VSZMiB: 440, MLP: 4.5, CodeKiB: 250, BranchSites: 2500, Threads: 1,
			RefInputs: inputs(3), TestInputs: inputs(3), TrainInputs: inputs(3), InputSpread: 1.2,
		},
		{
			Name: "631.deepsjeng_s", Suite: SpeedInt,
			InstrBillions: 2100, TargetIPC: 1.85,
			LoadPct: 21.0, StorePct: 10.0, BranchPct: 16.0, Mix: intMix,
			MispredictPct: 4.0, L1MissPct: 2.7, L2MissPct: 32, L3MissPct: 68.579,
			RSSMiB: 7000, VSZMiB: 7400, MLP: 4.0, CodeKiB: 180, BranchSites: 2200, Threads: 1,
		},
		{
			Name: "641.leela_s", Suite: SpeedInt,
			InstrBillions: 2200, TargetIPC: 1.55,
			LoadPct: 20.0, StorePct: 9.0, BranchPct: 15.0, Mix: intMix,
			MispredictPct: 8.636, L1MissPct: 1.8, L2MissPct: 28, L3MissPct: 10,
			RSSMiB: 25, VSZMiB: 190, MLP: 1.4, CodeKiB: 160, BranchSites: 2000, Threads: 1,
		},
		{
			Name: "648.exchange2_s", Suite: SpeedInt,
			InstrBillions: 3200, TargetIPC: 2.70,
			LoadPct: 22.0, StorePct: 15.910, BranchPct: 14.0, Mix: intMix,
			MispredictPct: 1.2, L1MissPct: 0.3, L2MissPct: 10, L3MissPct: 3,
			RSSMiB: 1.2, VSZMiB: 15.2, MLP: 1.2, CodeKiB: 120, BranchSites: 1500, Threads: 1,
		},
		{
			Name: "657.xz_s", Suite: SpeedInt,
			InstrBillions: 3500, TargetIPC: 0.903,
			LoadPct: 21.0, StorePct: 8.0, BranchPct: 16.0, Mix: intMix,
			MispredictPct: 3.5, L1MissPct: 5.5, L2MissPct: 60, L3MissPct: 45,
			RSSMiB: 12682, VSZMiB: 15792, MLP: 2.6, CodeKiB: 150, BranchSites: 1800, Threads: 4,
			RefInputs: inputs(2), TestInputs: inputs(4), TrainInputs: inputs(1), InputSpread: 1.0,
		},
	}
}

func speedFP() []*Profile {
	fpMix := DefaultFPBranchMix()
	return []*Profile{
		{
			Name: "603.bwaves_s", Suite: SpeedFP,
			InstrBillions: 49452, TargetIPC: 0.95,
			LoadPct: 27.4, StorePct: 5.0, BranchPct: 13.45, Mix: fpMix,
			MispredictPct: 0.6, L1MissPct: 3.5, L2MissPct: 45, L3MissPct: 35,
			RSSMiB: 11989, VSZMiB: 12368, MLP: 6.0, CodeKiB: 60, BranchSites: 600, Threads: 4,
			RefInputs: inputs(2), TestInputs: inputs(2), TrainInputs: inputs(2), InputSpread: 0.25,
		},
		{
			Name: "607.cactuBSSN_s", Suite: SpeedFP,
			InstrBillions: 10617, TargetIPC: 0.90,
			LoadPct: 33.536, StorePct: 7.610, BranchPct: 3.734, Mix: fpMix,
			MispredictPct: 0.4, L1MissPct: 14.584, L2MissPct: 35, L3MissPct: 25,
			RSSMiB: 7050, VSZMiB: 7462, MLP: 4.0, CodeKiB: 1600, BranchSites: 2400, Threads: 4,
		},
		{
			Name: "619.lbm_s", Suite: SpeedFP,
			InstrBillions: 13100, TargetIPC: 0.062,
			LoadPct: 22.0, StorePct: 13.480, BranchPct: 3.646, Mix: fpMix,
			MispredictPct: 0.3, L1MissPct: 9.0, L2MissPct: 60, L3MissPct: 55,
			RSSMiB: 3240, VSZMiB: 3430, MLP: 3.0, CodeKiB: 22, BranchSites: 160, Threads: 4,
		},
		{
			Name: "621.wrf_s", Suite: SpeedFP,
			InstrBillions: 20000, TargetIPC: 0.60,
			LoadPct: 25.0, StorePct: 7.0, BranchPct: 10.0, Mix: fpMix,
			MispredictPct: 1.3, L1MissPct: 4.5, L2MissPct: 38, L3MissPct: 20,
			RSSMiB: 720, VSZMiB: 980, MLP: 2.8, CodeKiB: 4200, BranchSites: 9000, Threads: 4,
		},
		{
			Name: "627.cam4_s", Suite: SpeedFP,
			InstrBillions: 15000, TargetIPC: 0.70,
			LoadPct: 25.0, StorePct: 7.0, BranchPct: 12.0, Mix: fpMix,
			MispredictPct: 1.6, L1MissPct: 4.2, L2MissPct: 35, L3MissPct: 18,
			RSSMiB: 1230, VSZMiB: 1460, MLP: 2.6, CodeKiB: 3600, BranchSites: 8000, Threads: 4,
		},
		{
			Name: "628.pop2_s", Suite: SpeedFP,
			InstrBillions: 25000, TargetIPC: 1.642,
			LoadPct: 26.0, StorePct: 6.0, BranchPct: 11.0, Mix: fpMix,
			MispredictPct: 1.2, L1MissPct: 2.8, L2MissPct: 25, L3MissPct: 12,
			RSSMiB: 1440, VSZMiB: 1660, MLP: 3.0, CodeKiB: 2900, BranchSites: 7000, Threads: 4,
		},
		{
			Name: "638.imagick_s", Suite: SpeedFP,
			InstrBillions: 40000, TargetIPC: 1.00,
			LoadPct: 27.0, StorePct: 5.0, BranchPct: 10.0, Mix: fpMix,
			MispredictPct: 0.8, L1MissPct: 2.0, L2MissPct: 22, L3MissPct: 10,
			RSSMiB: 2560, VSZMiB: 2830, MLP: 2.2, CodeKiB: 900, BranchSites: 3000, Threads: 4,
		},
		{
			Name: "644.nab_s", Suite: SpeedFP,
			InstrBillions: 18000, TargetIPC: 0.95,
			LoadPct: 28.0, StorePct: 6.0, BranchPct: 12.0, Mix: fpMix,
			MispredictPct: 1.4, L1MissPct: 2.5, L2MissPct: 24, L3MissPct: 11,
			RSSMiB: 610, VSZMiB: 780, MLP: 2.3, CodeKiB: 240, BranchSites: 1400, Threads: 4,
		},
		{
			Name: "649.fotonik3d_s", Suite: SpeedFP,
			InstrBillions: 12000, TargetIPC: 0.35,
			LoadPct: 29.0, StorePct: 8.0, BranchPct: 6.0, Mix: fpMix,
			MispredictPct: 0.5, L1MissPct: 8.5, L2MissPct: 54.730, L3MissPct: 41.369,
			RSSMiB: 8190, VSZMiB: 8570, MLP: 5.0, CodeKiB: 140, BranchSites: 700, Threads: 4,
		},
		{
			Name: "654.roms_s", Suite: SpeedFP,
			InstrBillions: 16000, TargetIPC: 0.50,
			LoadPct: 11.504, StorePct: 0.895, BranchPct: 9.0, Mix: fpMix,
			MispredictPct: 0.7, L1MissPct: 5.0, L2MissPct: 40, L3MissPct: 25,
			RSSMiB: 9220, VSZMiB: 9630, MLP: 3.5, CodeKiB: 680, BranchSites: 2600, Threads: 4,
		},
	}
}
