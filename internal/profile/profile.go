// Package profile defines the statistical workload model that stands in
// for the proprietary SPEC CPU2017 and CPU2006 binaries (see DESIGN.md,
// "Substitutions").
//
// A Profile captures, per application, the microarchitecture-independent
// characteristics the paper reports (instruction mix, branch population,
// memory reuse profile, footprint) plus the published performance targets
// used to calibrate the pipeline model (IPC, miss rates, mispredict rate).
// The synth package turns a Profile into a dynamic uop stream; the machine
// package measures that stream on the simulated hardware.
//
// Values for characteristics the paper prints per-application are taken
// from the paper; the remainder are interpolated so that the per-suite
// aggregates match the paper's tables (II–VII). The calibration tests in
// this package assert those aggregates.
package profile

import (
	"fmt"
	"sort"
)

// Suite identifies one of the four CPU2017 mini-suites (or the two CPU2006
// groupings used for comparison).
type Suite int

const (
	// RateInt is SPECrate 2017 Integer.
	RateInt Suite = iota
	// RateFP is SPECrate 2017 Floating Point.
	RateFP
	// SpeedInt is SPECspeed 2017 Integer.
	SpeedInt
	// SpeedFP is SPECspeed 2017 Floating Point.
	SpeedFP
	// CPU06Int groups the CPU2006 integer applications.
	CPU06Int
	// CPU06FP groups the CPU2006 floating-point applications.
	CPU06FP
	numSuites
)

// String returns the mini-suite name used in the paper.
func (s Suite) String() string {
	switch s {
	case RateInt:
		return "rate int"
	case RateFP:
		return "rate fp"
	case SpeedInt:
		return "speed int"
	case SpeedFP:
		return "speed fp"
	case CPU06Int:
		return "cpu06 int"
	case CPU06FP:
		return "cpu06 fp"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// IsInt reports whether the suite contains integer applications.
func (s Suite) IsInt() bool { return s == RateInt || s == SpeedInt || s == CPU06Int }

// IsCPU17 reports whether the suite belongs to CPU2017.
func (s Suite) IsCPU17() bool { return s <= SpeedFP }

// InputSize is one of the three SPEC input data sizes.
type InputSize int

const (
	// Test is the smallest input set.
	Test InputSize = iota
	// Train is the intermediate (feedback-training) input set.
	Train
	// Ref is the full reference input set the paper's Section IV uses.
	Ref
	numInputSizes
)

// NumInputSizes is the number of input sizes.
const NumInputSizes = int(numInputSizes)

// String returns "test", "train" or "ref".
func (s InputSize) String() string {
	switch s {
	case Test:
		return "test"
	case Train:
		return "train"
	case Ref:
		return "ref"
	default:
		return fmt.Sprintf("InputSize(%d)", int(s))
	}
}

// BranchMix describes the static branch-site population as fractions of
// all branch instructions. Fractions must sum to 1; Calls and Returns
// should match so the return-address stack stays balanced.
type BranchMix struct {
	Cond, Jump, Call, IndirectJump, Return float64
}

// Sum returns the total of all fractions.
func (b BranchMix) Sum() float64 {
	return b.Cond + b.Jump + b.Call + b.IndirectJump + b.Return
}

// DefaultIntBranchMix is a call-heavy mix typical of the integer codes.
func DefaultIntBranchMix() BranchMix {
	return BranchMix{Cond: 0.76, Jump: 0.07, Call: 0.07, IndirectJump: 0.03, Return: 0.07}
}

// DefaultFPBranchMix is the loop-dominated mix typical of the FP codes.
func DefaultFPBranchMix() BranchMix {
	return BranchMix{Cond: 0.88, Jump: 0.04, Call: 0.035, IndirectJump: 0.01, Return: 0.035}
}

// Profile is the statistical model of one application at the ref input
// size. Percentages follow the paper's conventions: LoadPct/StorePct are
// percentages of retired uops, BranchPct is a percentage of retired
// instructions, cache miss percentages are per-level local load miss
// rates, MispredictPct is mispredicts per executed branch.
type Profile struct {
	// Name is the SPEC application name, e.g. "505.mcf_r".
	Name string
	// Suite is the mini-suite the application belongs to.
	Suite Suite

	// InstrBillions is the nominal retired instruction count of one ref
	// run, in billions (Table II scale).
	InstrBillions float64
	// TargetIPC is the published (or interpolated) IPC used to calibrate
	// the pipeline model's ILP parameter.
	TargetIPC float64

	// LoadPct and StorePct are memory uops as a percentage of all uops.
	LoadPct, StorePct float64
	// BranchPct is branch instructions as a percentage of instructions.
	BranchPct float64
	// Mix is the branch-class breakdown.
	Mix BranchMix
	// MispredictPct is the target branch mispredict rate in percent.
	MispredictPct float64

	// L1MissPct, L2MissPct, L3MissPct are per-level local load miss
	// rates in percent (L2MissPct = L2 misses / L2 accesses).
	L1MissPct, L2MissPct, L3MissPct float64

	// RSSMiB and VSZMiB are the peak resident and virtual set sizes of a
	// ref run, in MiB.
	RSSMiB, VSZMiB float64

	// MLP is the workload's memory-level parallelism (overlapping DRAM
	// misses); it divides exposed DRAM latency in the pipeline model.
	MLP float64
	// CodeKiB is the instruction footprint driving L1I behaviour.
	CodeKiB float64
	// BranchSites is the static conditional-branch site population.
	BranchSites int
	// Threads is the OpenMP thread count (1 for all rate and most speed
	// applications; 4 for speed-fp and 657.xz_s as configured in the
	// paper).
	Threads int

	// RefInputs names the distinct ref workloads ("in1", "in2", ...);
	// empty means a single unnamed input. TestInputs and TrainInputs
	// likewise (the paper reports 69/61/64 distinct pairs for
	// test/train/ref).
	RefInputs, TestInputs, TrainInputs []string
	// InputSpread scales the deterministic per-input perturbation of the
	// model parameters (0 = identical inputs, 1 = default ±8 %).
	InputSpread float64
}

// Validate reports structural problems with the profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile: empty name")
	}
	if p.InstrBillions <= 0 {
		return fmt.Errorf("profile %s: non-positive instruction count", p.Name)
	}
	if p.TargetIPC <= 0 {
		return fmt.Errorf("profile %s: non-positive target IPC", p.Name)
	}
	if p.LoadPct < 0 || p.StorePct < 0 || p.LoadPct+p.StorePct > 100 {
		return fmt.Errorf("profile %s: bad memory mix %.1f/%.1f", p.Name, p.LoadPct, p.StorePct)
	}
	if p.BranchPct < 0 || p.BranchPct > 60 {
		return fmt.Errorf("profile %s: implausible branch pct %.1f", p.Name, p.BranchPct)
	}
	if s := p.Mix.Sum(); s < 0.999 || s > 1.001 {
		return fmt.Errorf("profile %s: branch mix sums to %.4f", p.Name, s)
	}
	for _, m := range []float64{p.MispredictPct, p.L1MissPct, p.L2MissPct, p.L3MissPct} {
		if m < 0 || m > 100 {
			return fmt.Errorf("profile %s: rate out of [0,100]: %.2f", p.Name, m)
		}
	}
	if p.RSSMiB <= 0 || p.VSZMiB < p.RSSMiB {
		return fmt.Errorf("profile %s: bad footprint rss=%.2f vsz=%.2f", p.Name, p.RSSMiB, p.VSZMiB)
	}
	if p.MLP < 1 {
		return fmt.Errorf("profile %s: MLP %.2f < 1", p.Name, p.MLP)
	}
	if p.CodeKiB <= 0 || p.BranchSites <= 0 {
		return fmt.Errorf("profile %s: missing code model", p.Name)
	}
	if p.Threads < 1 {
		return fmt.Errorf("profile %s: threads %d", p.Name, p.Threads)
	}
	return nil
}

// Inputs returns the input names for the given size, defaulting to a
// single unnamed input.
func (p *Profile) Inputs(size InputSize) []string {
	var in []string
	switch size {
	case Test:
		in = p.TestInputs
	case Train:
		in = p.TrainInputs
	case Ref:
		in = p.RefInputs
	}
	if len(in) == 0 {
		return []string{""}
	}
	return in
}

// sizeScale holds the per-size scaling of nominal totals relative to ref.
// The instruction scale is derived from the paper's Table II per-suite
// averages; footprint scales are approximations (the paper reports
// footprints for ref only).
type sizeScale struct {
	instr, footprint float64
}

var sizeScales = map[Suite]map[InputSize]sizeScale{
	RateInt: {
		Test:  {instr: 76.922 / 1751.516, footprint: 0.12},
		Train: {instr: 230.553 / 1751.516, footprint: 0.35},
		Ref:   {instr: 1, footprint: 1},
	},
	RateFP: {
		Test:  {instr: 47.431 / 2291.092, footprint: 0.12},
		Train: {instr: 357.233 / 2291.092, footprint: 0.35},
		Ref:   {instr: 1, footprint: 1},
	},
	SpeedInt: {
		Test:  {instr: 77.078 / 2265.182, footprint: 0.12},
		Train: {instr: 232.961 / 2265.182, footprint: 0.35},
		Ref:   {instr: 1, footprint: 1},
	},
	SpeedFP: {
		Test:  {instr: 58.825 / 21880.115, footprint: 0.10},
		Train: {instr: 477.316 / 21880.115, footprint: 0.30},
		Ref:   {instr: 1, footprint: 1},
	},
	CPU06Int: {
		Test:  {instr: 0.04, footprint: 0.12},
		Train: {instr: 0.15, footprint: 0.35},
		Ref:   {instr: 1, footprint: 1},
	},
	CPU06FP: {
		Test:  {instr: 0.04, footprint: 0.12},
		Train: {instr: 0.15, footprint: 0.35},
		Ref:   {instr: 1, footprint: 1},
	},
}

// Pair is one concrete application-input pair at one input size: the unit
// of the paper's characterization (194 of them for CPU2017).
type Pair struct {
	// App is the underlying application profile.
	App *Profile
	// Size is the input data size.
	Size InputSize
	// Input is the input name ("" when the app has a single input).
	Input string

	// Model is the per-pair effective model: the application profile
	// perturbed deterministically for this input and scaled for this
	// size.
	Model Model
}

// Name returns the pair's display name, e.g. "502.gcc_r-in3" or
// "505.mcf_r".
func (p *Pair) Name() string {
	if p.Input == "" {
		return p.App.Name
	}
	return p.App.Name + "-" + p.Input
}

// Model is the fully resolved per-pair workload model handed to the
// generator and the reporting layer.
type Model struct {
	InstrBillions                   float64
	TargetIPC                       float64
	LoadPct, StorePct               float64
	BranchPct                       float64
	Mix                             BranchMix
	MispredictPct                   float64
	L1MissPct, L2MissPct, L3MissPct float64
	RSSMiB, VSZMiB                  float64
	MLP                             float64
	CodeKiB                         float64
	BranchSites                     int
	Threads                         int
	// Seed is the deterministic per-pair generator seed.
	Seed uint64
}

// fnv1a hashes a string for deterministic per-pair seeds.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// perturb returns v scaled by a deterministic factor in
// [1-spread*0.08, 1+spread*0.08] derived from the seed and salt.
func perturb(v float64, seed uint64, salt uint64, spread float64) float64 {
	if spread == 0 {
		return v
	}
	h := (seed ^ salt) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	u := float64(h%10000)/10000 - 0.5 // [-0.5, 0.5)
	return v * (1 + u*0.16*spread)
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

// Expand resolves the profile into its concrete pairs for one input size.
func (p *Profile) Expand(size InputSize) []Pair {
	scale := sizeScales[p.Suite][size]
	inputs := p.Inputs(size)
	pairs := make([]Pair, 0, len(inputs))
	for _, in := range inputs {
		seed := fnv1a(p.Name + "/" + size.String() + "/" + in)
		spread := p.InputSpread
		if in == "" {
			spread = 0
		}
		m := Model{
			InstrBillions: perturb(p.InstrBillions*scale.instr, seed, 1, spread*2),
			TargetIPC:     perturb(p.TargetIPC, seed, 2, spread*0.5),
			LoadPct:       clampPct(perturb(p.LoadPct, seed, 3, spread)),
			StorePct:      clampPct(perturb(p.StorePct, seed, 4, spread)),
			BranchPct:     clampPct(perturb(p.BranchPct, seed, 5, spread)),
			Mix:           p.Mix,
			MispredictPct: clampPct(perturb(p.MispredictPct, seed, 6, spread)),
			L1MissPct:     clampPct(perturb(p.L1MissPct, seed, 7, spread)),
			L2MissPct:     clampPct(perturb(p.L2MissPct, seed, 8, spread)),
			L3MissPct:     clampPct(perturb(p.L3MissPct, seed, 9, spread)),
			RSSMiB:        perturb(p.RSSMiB*scale.footprint, seed, 10, spread),
			VSZMiB:        perturb(p.VSZMiB*scale.footprint, seed, 11, spread),
			MLP:           p.MLP,
			CodeKiB:       p.CodeKiB,
			BranchSites:   p.BranchSites,
			Threads:       p.Threads,
			Seed:          seed,
		}
		// Smaller inputs touch less memory, so miss rates soften a
		// little below ref, mirroring the IPC trends in Table II.
		if size != Ref {
			soft := 0.85
			if size == Test {
				soft = 0.7
			}
			m.L2MissPct *= soft
			m.L3MissPct *= soft
		}
		if m.VSZMiB < m.RSSMiB {
			m.VSZMiB = m.RSSMiB
		}
		pairs = append(pairs, Pair{App: p, Size: size, Input: in, Model: m})
	}
	return pairs
}

// ExpandSuite resolves every profile in apps into pairs for one size,
// sorted by application name.
func ExpandSuite(apps []*Profile, size InputSize) []Pair {
	var pairs []Pair
	for _, a := range apps {
		pairs = append(pairs, a.Expand(size)...)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name() < pairs[j].Name() })
	return pairs
}

// FilterSuite returns the pairs belonging to the given mini-suite.
func FilterSuite(pairs []Pair, s Suite) []Pair {
	var out []Pair
	for _, p := range pairs {
		if p.App.Suite == s {
			out = append(out, p)
		}
	}
	return out
}
