// Package obs is the project's observability layer: an allocation-free
// metrics core (atomic counters, gauges, fixed-bucket histograms with
// quantile snapshots) behind a Prometheus-text registry, plus
// lightweight tracing (span trees emitted as JSONL run manifests).
//
// The package sits at the bottom of the dependency graph — it imports
// only the standard library — so every layer (sched, machine, store,
// server, the CLIs) can instrument itself without cycles. Two design
// rules keep it out of the hot path:
//
//   - Metric update operations (Counter.Add, Gauge.Set,
//     Histogram.Observe) never allocate and never take a lock; they are
//     single atomic operations (plus a CAS loop for float sums).
//   - Tracing is opt-in per call site through nil receivers: every
//     Trace/Span method is a no-op on nil, so instrumented code calls
//     span.Child(...)/span.Stage(...) unconditionally and pays only a
//     nil check when tracing is off. The simulation kernel's inner loop
//     is never instrumented at all — stages are timed at window
//     boundaries (see internal/machine).
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; updates are lock- and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 value that can go up and down. The zero
// value is ready to use and reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative deltas subtract).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// LatencyBuckets are the default histogram bounds for operation
// latencies in seconds: 10µs doubling up to ~84s (24 bounds plus the
// implicit +Inf bucket). The range covers everything the pipeline
// times, from a sub-millisecond store read to a multi-minute exact
// campaign pair. Treat as read-only.
var LatencyBuckets = func() []float64 {
	b := make([]float64, 24)
	v := 1e-5
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket histogram with atomic bucket counters.
// Bounds are upper bucket edges (a value v lands in the first bucket
// with v <= bound, Prometheus "le" semantics); values above the last
// bound land in the implicit +Inf bucket. Observations are lock- and
// allocation-free. Snapshots taken under concurrent writers are
// per-bucket consistent but not globally atomic — a snapshot may catch
// some in-flight observations in the count and not yet in a bucket or
// vice versa; with monotone writers the skew is bounded by the writes
// in flight at snapshot time.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// NewHistogram returns a histogram with the given upper bucket bounds,
// which must be non-empty and strictly increasing. Most callers want a
// registry-owned histogram via Registry.Histogram instead.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (the default is 24) and the
	// common latencies land in the first few buckets, so a scan beats a
	// branchy binary search and keeps the path trivially allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Count and Sum aggregate every observation.
	Count uint64
	Sum   float64
	// Bounds are the upper bucket edges; Counts[i] is the number of
	// observations in bucket i (non-cumulative), with the final extra
	// entry counting observations above the last bound.
	Bounds []float64
	Counts []uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	s.Count = h.count.Load()
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket, the standard
// fixed-bucket estimator. The overflow bucket reports the last bound
// (the estimate saturates there). Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
