package obs

import (
	"bufio"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
}

// TestHistogramBucketBoundaries pins the le (<=) bucket semantics:
// a value exactly on a bound lands in that bound's bucket, just above
// goes to the next, above the last bound goes to +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // le=1
		{1.0000001, 1}, {2, 1}, // le=2
		{3, 2}, {4, 2}, // le=4
		{4.0000001, 3}, {1e9, 3}, // +Inf
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	want := make([]uint64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	s := h.Snapshot()
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 uniform observations over (0, 40]: quantiles should sit near
	// the uniform ideal, exactly on bounds at bucket edges.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	s := h.Snapshot()
	for _, c := range []struct{ q, want float64 }{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
	} {
		if got := s.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q%.2f = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation inside a bucket: p60 is 40% into the (20,30] bucket.
	if got, want := s.Quantile(0.6), 24.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("q0.60 = %v, want %v", got, want)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	h.Observe(100) // overflow bucket only
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want saturation at last bound 2", got)
	}
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Fatalf("q<0 not clamped")
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Fatalf("q>1 not clamped")
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many
// goroutines and checks the final snapshot is exact (no lost updates)
// and its quantiles are ordered.
func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Deterministic spread across several decades.
				h.Observe(1e-5 * float64(1+(w*perWriter+i)%10000))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d (lost updates)", s.Count, writers*perWriter)
	}
	var inBuckets uint64
	for _, c := range s.Counts {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum = %d, count = %d", inBuckets, s.Count)
	}
	p50, p95, p99 := s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if p50 <= 0 {
		t.Fatalf("p50 = %v, want > 0", p50)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram([]float64{0.5, 1.5})
	h.ObserveDuration(time.Second)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("1s landed in %v, want bucket le=1.5", s.Counts)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "k", "v")
	b := r.Counter("x_total", "", "k", "v")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", "", "k", "other")
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	// Label order must not matter.
	h1 := r.Histogram("h_seconds", "", []float64{1}, "a", "1", "b", "2")
	h2 := r.Histogram("h_seconds", "", []float64{1}, "b", "2", "a", "1")
	if h1 != h2 {
		t.Fatal("label order created distinct histograms")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryGaugeFuncReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("q_depth", "", func() float64 { return 1 })
	r.GaugeFunc("q_depth", "", func() float64 { return 7 }) // must not panic
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "q_depth 7\n") {
		t.Fatalf("gauge func not replaced:\n%s", b.String())
	}
}

// TestWritePrometheusFormat renders a populated registry and validates
// every line against the text exposition grammar, plus the histogram
// invariants (cumulative buckets, +Inf == count).
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("speckit_pairs_total", "Pairs by source.", "source", "simulated").Add(3)
	r.Counter("speckit_pairs_total", "", "source", "memory").Add(2)
	r.Gauge("speckit_workers_active", "Active workers.").Set(4)
	r.GaugeFunc("speckit_queue_depth", "Queue depth.", func() float64 { return 9 })
	h := r.Histogram("speckit_pair_seconds", "Pair latency.", []float64{0.1, 1, 10}, "source", "simulated")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)
	// A label value that needs escaping.
	r.Counter("speckit_errors_total", "Errors.", "msg", "a\"b\\c\nd").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	assertPromText(t, out)

	for _, want := range []string{
		`speckit_pairs_total{source="simulated"} 3`,
		`speckit_pairs_total{source="memory"} 2`,
		`speckit_workers_active 4`,
		`speckit_queue_depth 9`,
		`speckit_pair_seconds_bucket{source="simulated",le="0.1"} 1`,
		`speckit_pair_seconds_bucket{source="simulated",le="1"} 2`,
		`speckit_pair_seconds_bucket{source="simulated",le="10"} 2`,
		`speckit_pair_seconds_bucket{source="simulated",le="+Inf"} 3`,
		`speckit_pair_seconds_count{source="simulated"} 3`,
		"# TYPE speckit_pair_seconds histogram",
		"# TYPE speckit_pairs_total counter",
		"# TYPE speckit_queue_depth gauge",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// assertPromText is a minimal Prometheus text-format (0.0.4) validator:
// comments are HELP/TYPE with known types; sample lines are
// name{labels} value with a parseable float value and balanced quotes.
func assertPromText(t *testing.T, out string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out))
	typed := map[string]string{}
	for n := 1; sc.Scan(); n++ {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", n, line)
			}
			if parts[1] == "TYPE" {
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown TYPE %q", n, parts[3])
				}
				typed[parts[2]] = parts[3]
			}
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validMetricName(name) {
			t.Fatalf("line %d: invalid metric name %q", n, name)
		}
		if strings.HasPrefix(rest, "{") {
			close := strings.LastIndex(rest, "}")
			if close < 0 {
				t.Fatalf("line %d: unterminated label set %q", n, line)
			}
			if !balancedQuotes(rest[:close]) {
				t.Fatalf("line %d: unbalanced quotes %q", n, line)
			}
			rest = rest[close+1:]
		}
		val := strings.TrimSpace(rest)
		if val == "" {
			t.Fatalf("line %d: no value in %q", n, line)
		}
		if _, err := parsePromValue(val); err != nil {
			t.Fatalf("line %d: bad value %q: %v", n, val, err)
		}
	}
	if len(typed) == 0 {
		t.Fatal("no TYPE lines in output")
	}
}

// balancedQuotes reports whether every label value's opening quote is
// closed, honouring backslash escapes inside values.
func balancedQuotes(s string) bool {
	in := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if in {
				i++ // skip the escaped character
			}
		case '"':
			in = !in
		}
	}
	return !in
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

func TestRegistryInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("", "") },
		func() { r.Counter("9starts_with_digit", "") },
		func() { r.Counter("has space", "") },
		func() { r.Counter("ok_total", "", "only_key") },
		func() { r.Counter("ok_total", "", "le", "1") },
		func() { r.Counter("ok_total", "", "bad-label", "1") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad registration did not panic")
				}
			}()
			fn()
		}()
	}
}
