package obs

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace collects a tree of spans for one run (one campaign, typically)
// and renders it as a JSONL run manifest. A nil *Trace is a valid
// no-op tracer: every method on a nil Trace or nil Span does nothing
// and returns nil children, so instrumented code never guards call
// sites — pass nil to turn tracing off and pay only nil checks.
type Trace struct {
	mu     sync.Mutex
	epoch  time.Time
	nextID int
	spans  []*Span
}

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace {
	return &Trace{epoch: time.Now()}
}

// Start opens a root span (no parent). Returns nil on a nil trace.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, "", 0, time.Now())
}

func (t *Trace) newSpan(name, kind string, parent int, start time.Time) *Span {
	s := &Span{t: t, name: name, kind: kind, parent: parent, start: start, dur: -1}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed node in a trace's span tree. The zero value is not
// useful; spans come from Trace.Start, Span.Child, or Span.Stage. A
// nil *Span is a valid no-op. Spans are safe for concurrent use, but a
// single span's Finish is expected to be called once, by its opener.
type Span struct {
	t      *Trace
	id     int
	parent int // 0 for roots
	name   string
	kind   string
	start  time.Time

	mu    sync.Mutex
	dur   time.Duration // -1 while unfinished
	attrs []spanAttr
}

type spanAttr struct {
	key string
	val any
}

// Child opens a sub-span. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, "", s.id, time.Now())
}

// Stage records an already-measured phase as a finished child span of
// kind "stage", back-dated so it ends now. This is how window-loop
// code reports accumulated stage time without opening a span per
// window. No-op on a nil span.
func (s *Span) Stage(name string, d time.Duration) {
	if s == nil {
		return
	}
	st := s.t.newSpan(name, "stage", s.id, time.Now().Add(-d))
	st.dur = d
}

// SetAttr attaches a key/value attribute, overwriting an existing key.
// Returns s for chaining; no-op on nil.
func (s *Span) SetAttr(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = val
			s.mu.Unlock()
			return s
		}
	}
	s.attrs = append(s.attrs, spanAttr{key, val})
	s.mu.Unlock()
	return s
}

// Finish closes the span, fixing its duration. Double-finish keeps the
// first duration. No-op on nil.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.dur < 0 {
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Duration returns the span's duration: its final duration once
// finished, the running elapsed time before that, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	d := s.dur
	s.mu.Unlock()
	if d < 0 {
		return time.Since(s.start)
	}
	return d
}

// ManifestHeader is the first line of a JSONL run manifest.
type ManifestHeader struct {
	Manifest string `json:"manifest"`
	Version  int    `json:"version"`
	Spans    int    `json:"spans"`
}

// manifestName and manifestVersion identify the JSONL format.
const (
	manifestName    = "speckit-run"
	manifestVersion = 1
)

// ManifestSpan is one span line of a JSONL run manifest. Times are
// microseconds; StartUS is relative to the trace epoch so manifests
// for identical runs differ only where the runs did.
type ManifestSpan struct {
	ID      int            `json:"span"`
	Parent  int            `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Kind    string         `json:"kind,omitempty"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WriteManifest renders the trace as a JSONL run manifest: a header
// line followed by one line per span in span-ID (creation) order.
// Unfinished spans are written with their elapsed-so-far duration.
// No-op on a nil trace.
func (t *Trace) WriteManifest(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	epoch := t.epoch
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool { return spans[i].id < spans[j].id })

	enc := json.NewEncoder(w)
	if err := enc.Encode(ManifestHeader{Manifest: manifestName, Version: manifestVersion, Spans: len(spans)}); err != nil {
		return err
	}
	for _, s := range spans {
		s.mu.Lock()
		var attrs map[string]any
		if len(s.attrs) > 0 {
			attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				attrs[a.key] = a.val
			}
		}
		d := s.dur
		s.mu.Unlock()
		if d < 0 {
			d = time.Since(s.start)
		}
		m := ManifestSpan{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			Kind:    s.kind,
			StartUS: s.start.Sub(epoch).Microseconds(),
			DurUS:   d.Microseconds(),
			Attrs:   attrs,
		}
		if err := enc.Encode(m); err != nil {
			return err
		}
	}
	return nil
}

// Manifest renders the trace to a byte slice.
func (t *Trace) Manifest() ([]byte, error) {
	if t == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := t.WriteManifest(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Digest returns the sha256 hex digest of the rendered manifest — the
// handle campaign results carry so a reported number is traceable to
// exactly one recorded run. Empty on a nil trace.
func (t *Trace) Digest() (string, error) {
	if t == nil {
		return "", nil
	}
	b, err := t.Manifest()
	if err != nil {
		return "", err
	}
	return ManifestDigest(b), nil
}

// ManifestDigest returns the sha256 hex digest of rendered manifest
// bytes.
func ManifestDigest(manifest []byte) string {
	sum := sha256.Sum256(manifest)
	return hex.EncodeToString(sum[:])
}

// ReadManifest parses a JSONL run manifest produced by WriteManifest.
func ReadManifest(r io.Reader) (ManifestHeader, []ManifestSpan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr ManifestHeader
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, fmt.Errorf("obs: empty manifest")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("obs: manifest header: %w", err)
	}
	if hdr.Manifest != manifestName {
		return hdr, nil, fmt.Errorf("obs: not a %s manifest (got %q)", manifestName, hdr.Manifest)
	}
	if hdr.Version != manifestVersion {
		return hdr, nil, fmt.Errorf("obs: unsupported manifest version %d", hdr.Version)
	}
	var spans []ManifestSpan
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var s ManifestSpan
		if err := json.Unmarshal(line, &s); err != nil {
			return hdr, spans, fmt.Errorf("obs: manifest span %d: %w", len(spans)+1, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return hdr, spans, err
	}
	if len(spans) != hdr.Spans {
		return hdr, spans, fmt.Errorf("obs: manifest truncated: header says %d spans, read %d", hdr.Spans, len(spans))
	}
	return hdr, spans, nil
}

// spanKey is the context key for the active span.
type spanKey struct{}

// ContextWithSpan returns a context carrying the span, for layers that
// cross an API boundary (the scheduler hands each task its pair span
// this way). A nil span is carried as a true nil.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil (a valid no-op span)
// when the context carries none.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
