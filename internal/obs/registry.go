package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates what a series holds.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// series is one (name, labels) time series.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
	byLabels   map[string]*series
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Accessors are get-or-create: asking twice for the
// same (name, labels) returns the same metric, so package-level metric
// variables in different packages can share one process-wide registry
// without coordination. Safe for concurrent use; the registry lock is
// taken only on registration and rendering, never on metric updates.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// defaultRegistry is the process-wide registry behind Default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, the one specserved's
// /metrics endpoint renders. Instrumented packages register their
// metrics here as package variables.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name and the given
// label pairs (key, value, key, value, ...), creating it on first use.
// Panics if name is already registered as a different kind, or on a
// malformed name or odd label list — metric registration is programmer
// intent, not input.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, counterKind, labels)
	r.mu.Lock()
	if s.c == nil {
		s.c = &Counter{}
	}
	c := s.c
	r.mu.Unlock()
	return c
}

// Gauge returns the gauge registered under name and labels, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, gaugeKind, labels)
	r.mu.Lock()
	if s.g == nil {
		s.g = &Gauge{}
	}
	g := s.g
	r.mu.Unlock()
	return g
}

// GaugeFunc registers (or replaces) a gauge whose value is read from
// fn at render time, for values owned elsewhere — queue depths, pool
// sizes, feature flags. Re-registering the same series replaces the
// function, so a rebuilt subsystem (tests construct several servers
// per process) can repoint the series at its live instance.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.lookup(name, help, gaugeFuncKind, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket bounds on first use (later calls
// ignore bounds and return the existing histogram).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.lookup(name, help, histogramKind, labels)
	r.mu.Lock()
	if s.h == nil {
		s.h = NewHistogram(bounds)
	}
	h := s.h
	r.mu.Unlock()
	return h
}

// lookup finds or creates the series for (name, labels).
func (r *Registry) lookup(name, help string, kind metricKind, labels []string) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabels: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	s, ok := f.byLabels[rendered]
	if !ok {
		s = &series{labels: rendered}
		f.byLabels[rendered] = s
		f.series = append(f.series, s)
	}
	return s
}

// validMetricName checks the Prometheus metric-name grammar.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// renderLabels renders (key, value, ...) pairs as `{k="v",...}`,
// sorted by key so equal label sets given in different orders name the
// same series.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, escapeLabelValue(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

func validLabelName(name string) bool {
	if name == "" || name == "le" { // le is reserved for histogram buckets
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabelValue applies the exposition-format escapes; %q in
// renderLabels then adds the quotes (its escaping is a superset of
// Prometheus's and stays parseable).
func escapeLabelValue(v string) string {
	return v // %q handles \, " and \n; Prometheus parsers accept Go escapes for these
}

// withLabel splices an extra label into an already-rendered label set
// (for the histogram "le" bucket label).
func withLabel(rendered, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): HELP and TYPE headers per
// family, one line per series, histograms expanded into cumulative
// _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot the structure under the lock, render outside it: metric
	// reads are atomic and a render must not block registration. Series
	// structs are copied, not aliased — a concurrent get-or-create may
	// still be filling in a freshly created series' metric pointer.
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		f := r.families[name]
		cp := &family{name: f.name, help: f.help, kind: f.kind}
		cp.series = make([]*series, len(f.series))
		for j, s := range f.series {
			sc := *s
			cp.series[j] = &sc
		}
		fams[i] = cp
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.kind {
			case counterKind:
				var v uint64
				if s.c != nil { // snapshot may have raced the metric's creation
					v = s.c.Value()
				}
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, v)
			case gaugeKind:
				var v float64
				if s.g != nil {
					v = s.g.Value()
				}
				_, err = fmt.Fprintf(w, "%s%s %v\n", f.name, s.labels, v)
			case gaugeFuncKind:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				_, err = fmt.Fprintf(w, "%s%s %v\n", f.name, s.labels, v)
			case histogramKind:
				if s.h == nil {
					continue
				}
				err = writeHistogram(w, f.name, s.labels, s.h.Snapshot())
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name, labels string, s HistogramSnapshot) error {
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %v\n", name, labels, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
	return err
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
