package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestNilTraceIsNoOp exercises every Trace/Span method through nil
// receivers — the contract instrumented code relies on to skip guards.
func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	root := tr.Start("campaign")
	if root != nil {
		t.Fatal("nil trace returned a non-nil span")
	}
	child := root.Child("pair")
	if child != nil {
		t.Fatal("nil span returned a non-nil child")
	}
	root.SetAttr("k", 1).SetAttr("k2", "v")
	root.Stage("detail", time.Second)
	root.Finish()
	if d := root.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if err := tr.WriteManifest(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if b, err := tr.Manifest(); err != nil || b != nil {
		t.Fatalf("nil manifest = (%v, %v), want (nil, nil)", b, err)
	}
	if d, err := tr.Digest(); err != nil || d != "" {
		t.Fatalf("nil digest = (%q, %v)", d, err)
	}
}

// TestManifestNestingRoundTrip builds a realistic span tree (campaign →
// pairs → stages), renders it, parses it back, and checks the tree
// structure and attributes survive.
func TestManifestNestingRoundTrip(t *testing.T) {
	tr := NewTrace()
	camp := tr.Start("campaign").SetAttr("pairs", 2)
	p1 := camp.Child("600.perlbench_s/test").SetAttr("tier", "miss")
	p1.Stage("fast-forward", 3*time.Millisecond)
	p1.Stage("detail", 5*time.Millisecond)
	p1.Finish()
	p2 := camp.Child("602.gcc_s/test").SetAttr("tier", "memory")
	p2.Finish()
	camp.Finish()

	var buf bytes.Buffer
	if err := tr.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	hdr, spans, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Spans != 5 || len(spans) != 5 {
		t.Fatalf("spans = %d/%d, want 5", hdr.Spans, len(spans))
	}

	byName := map[string]ManifestSpan{}
	byID := map[int]ManifestSpan{}
	for _, s := range spans {
		byName[s.Name] = s
		byID[s.ID] = s
	}
	root := byName["campaign"]
	if root.Parent != 0 {
		t.Fatalf("campaign parent = %d, want 0", root.Parent)
	}
	if got := root.Attrs["pairs"]; got != float64(2) { // JSON numbers decode to float64
		t.Fatalf("campaign attrs = %v", root.Attrs)
	}
	for _, name := range []string{"600.perlbench_s/test", "602.gcc_s/test"} {
		p := byName[name]
		if p.Parent != root.ID {
			t.Fatalf("%s parent = %d, want campaign %d", name, p.Parent, root.ID)
		}
	}
	ff := byName["fast-forward"]
	if ff.Parent != byName["600.perlbench_s/test"].ID {
		t.Fatalf("stage parent = %d, want pair", ff.Parent)
	}
	if ff.Kind != "stage" {
		t.Fatalf("stage kind = %q", ff.Kind)
	}
	if ff.DurUS != 3000 {
		t.Fatalf("fast-forward dur = %dus, want 3000", ff.DurUS)
	}
	// Every parent reference resolves and no span starts before the epoch.
	for _, s := range spans {
		if s.Parent != 0 {
			if _, ok := byID[s.Parent]; !ok {
				t.Fatalf("span %d has dangling parent %d", s.ID, s.Parent)
			}
		}
		// Stage spans are back-dated by their accumulated duration and
		// may legitimately start before their parent; others must not
		// start before the epoch.
		if s.Kind != "stage" && s.StartUS < -1000 {
			t.Fatalf("span %d starts %dus before epoch", s.ID, s.StartUS)
		}
	}
}

func TestSpanDurations(t *testing.T) {
	tr := NewTrace()
	s := tr.Start("work")
	time.Sleep(5 * time.Millisecond)
	s.Finish()
	d := s.Duration()
	if d < 5*time.Millisecond || d > 5*time.Second {
		t.Fatalf("duration = %v", d)
	}
	s.Finish() // double finish keeps the first duration
	if s.Duration() != d {
		t.Fatal("double Finish changed the duration")
	}
	// Unfinished spans report running elapsed time.
	u := tr.Start("running")
	if u.Duration() < 0 {
		t.Fatal("unfinished duration negative")
	}
}

func TestManifestDigestStable(t *testing.T) {
	tr := NewTrace()
	s := tr.Start("campaign")
	s.Child("pair").Finish()
	s.Finish()
	d1, err := tr.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tr.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest unstable: %s vs %s", d1, d2)
	}
	if len(d1) != 64 {
		t.Fatalf("digest %q is not sha256 hex", d1)
	}
	b, _ := tr.Manifest()
	if ManifestDigest(b) != d1 {
		t.Fatal("ManifestDigest(bytes) != Trace.Digest()")
	}
}

func TestReadManifestErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not json":    "hello\n",
		"wrong kind":  `{"manifest":"other","version":1,"spans":0}` + "\n",
		"bad version": `{"manifest":"speckit-run","version":99,"spans":0}` + "\n",
		"truncated":   `{"manifest":"speckit-run","version":1,"spans":2}` + "\n" + `{"span":1,"name":"a","start_us":0,"dur_us":1}` + "\n",
	}
	for name, in := range cases {
		if _, _, err := ReadManifest(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestContextSpan(t *testing.T) {
	ctx := context.Background()
	if s := SpanFromContext(ctx); s != nil {
		t.Fatal("empty context returned a span")
	}
	tr := NewTrace()
	s := tr.Start("pair")
	ctx2 := ContextWithSpan(ctx, s)
	if got := SpanFromContext(ctx2); got != s {
		t.Fatal("span did not round-trip through context")
	}
	// nil span attaches nothing.
	if ctx3 := ContextWithSpan(ctx, nil); SpanFromContext(ctx3) != nil {
		t.Fatal("nil span produced a non-nil context span")
	}
}

func TestSetAttrOverwrites(t *testing.T) {
	tr := NewTrace()
	s := tr.Start("x").SetAttr("tier", "miss").SetAttr("tier", "store")
	s.Finish()
	b, err := tr.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	_, spans, err := ReadManifest(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if got := spans[0].Attrs["tier"]; got != "store" {
		t.Fatalf("tier = %v, want store", got)
	}
	if len(spans[0].Attrs) != 1 {
		t.Fatalf("attrs = %v, want single key", spans[0].Attrs)
	}
}
