package machine

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
)

// configVariants is a matrix of configurations covering every component
// spec the JSON form supports.
func configVariants() map[string]Config {
	variants := map[string]Config{
		"haswell":        Haswell(),
		"haswell-scaled": HaswellScaled(),
	}
	srrip := HaswellScaled()
	srrip.Name = "scaled-srrip-l3"
	srrip.Hierarchy.L3.Policy = cache.SRRIP{}
	variants["srrip-l3"] = srrip

	plru := HaswellScaled()
	plru.Name = "scaled-plru-l2"
	plru.Hierarchy.L2.Policy = cache.TreePLRU{}
	variants["plru-l2"] = plru

	random := HaswellScaled()
	random.Name = "scaled-random-l3"
	random.Hierarchy.L3.Policy = cache.Random{Seed: 42}
	variants["random-l3"] = random

	pf := HaswellScaled()
	pf.Name = "scaled-stride-pf"
	pf.Hierarchy.Prefetcher = &cache.StridePrefetcher{LineBytes: 64, Degree: 2}
	variants["stride-pf"] = pf

	nl := HaswellScaled()
	nl.Name = "scaled-nextline-pf"
	nl.Hierarchy.Prefetcher = &cache.NextLinePrefetcher{LineBytes: 64, Degree: 1}
	variants["nextline-pf"] = nl

	for name, newPred := range map[string]func() branch.Predictor{
		"static":          func() branch.Predictor { return branch.Static{} },
		"bimodal":         func() branch.Predictor { return branch.NewBimodal(12) },
		"gshare":          func() branch.Predictor { return branch.NewGshare(14, 12) },
		"two-level-local": func() branch.Predictor { return branch.NewTwoLevelLocal(10, 10) },
		"tournament":      func() branch.Predictor { return branch.NewTournament(13) },
		"perceptron":      func() branch.Predictor { return branch.NewPerceptron(10, 24) },
	} {
		c := HaswellScaled()
		c.Name = "scaled-" + name
		c.NewPredictor = newPred
		variants["pred-"+name] = c
	}
	return variants
}

// TestConfigJSONFingerprintStable is the satellite's acceptance gate: a
// configuration that round-trips through JSON keeps its exact
// fingerprint — and therefore derives the same result-cache content
// keys — and re-encodes to identical bytes.
func TestConfigJSONFingerprintStable(t *testing.T) {
	for name, cfg := range configVariants() {
		t.Run(name, func(t *testing.T) {
			data, err := json.Marshal(cfg)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var got Config
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatalf("unmarshal: %v\n%s", err, data)
			}
			if got.Fingerprint() != cfg.Fingerprint() {
				t.Errorf("fingerprint drifted across the JSON round-trip:\n got %s\nwant %s",
					got.Fingerprint(), cfg.Fingerprint())
			}
			again, err := json.Marshal(got)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if string(again) != string(data) {
				t.Errorf("re-encoded bytes differ:\n got %s\nwant %s", again, data)
			}
		})
	}
}

// TestConfigJSONValidatesOnDecode: a structurally well-formed document
// describing an invalid machine is rejected at decode time.
func TestConfigJSONValidatesOnDecode(t *testing.T) {
	base, err := json.Marshal(HaswellScaled())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(m map[string]json.RawMessage){
		"zero-clock": func(m map[string]json.RawMessage) {
			m["clock_hz"] = json.RawMessage("0")
		},
		"bad-line": func(m map[string]json.RawMessage) {
			var l map[string]any
			json.Unmarshal(m["l3"], &l)
			l["line_bytes"] = 48 // not a power of two
			raw, _ := json.Marshal(l)
			m["l3"] = raw
		},
		"unknown-field": func(m map[string]json.RawMessage) {
			m["l4"] = json.RawMessage(`{}`)
		},
		"unknown-policy": func(m map[string]json.RawMessage) {
			var l map[string]any
			json.Unmarshal(m["l3"], &l)
			l["policy"] = "mru"
			raw, _ := json.Marshal(l)
			m["l3"] = raw
		},
		"unknown-predictor": func(m map[string]json.RawMessage) {
			m["predictor"] = json.RawMessage(`"neural:9000"`)
		},
		"bad-prefetcher": func(m map[string]json.RawMessage) {
			m["prefetcher"] = json.RawMessage(`"markov:1:2"`)
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			var m map[string]json.RawMessage
			if err := json.Unmarshal(base, &m); err != nil {
				t.Fatal(err)
			}
			mutate(m)
			raw, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			var cfg Config
			if err := json.Unmarshal(raw, &cfg); err == nil {
				t.Fatalf("decode accepted an invalid config: %s", raw)
			}
		})
	}
}

func TestApplyAxis(t *testing.T) {
	base := HaswellScaled()
	got, err := ApplyAxis(base, "l3.size", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hierarchy.L3.SizeBytes != 4<<20 {
		t.Errorf("l3.size = %d, want %d", got.Hierarchy.L3.SizeBytes, 4<<20)
	}
	if base.Hierarchy.L3.SizeBytes != 2<<20 {
		t.Error("ApplyAxis mutated the base config")
	}
	if err := got.Validate(); err != nil {
		t.Errorf("swept config does not validate: %v", err)
	}

	got, err = ApplyAxis(base, "line", 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []cache.Config{
		got.Hierarchy.L1I, got.Hierarchy.L1D, got.Hierarchy.L2, got.Hierarchy.L3,
	} {
		if l.LineBytes != 128 {
			t.Errorf("level %s line = %d, want 128", l.Name, l.LineBytes)
		}
	}

	if _, err := ApplyAxis(base, "l5.size", 1024); err == nil ||
		!strings.Contains(err.Error(), "unknown axis parameter") {
		t.Errorf("unknown param error = %v", err)
	}
	if _, err := ApplyAxis(base, "l3.ways", 0); err == nil {
		t.Error("non-positive axis value accepted")
	}

	// Distinct axis values must yield distinct fingerprints (distinct
	// result-cache keyspaces), or a sweep would alias its cells.
	a, _ := ApplyAxis(base, "l3.ways", 8)
	b, _ := ApplyAxis(base, "l3.ways", 16)
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different axis values share a fingerprint")
	}
}
