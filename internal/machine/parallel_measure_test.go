package machine

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/profile"
)

// TestParallelMeasure is a measurement harness, not a gate: it prints
// the boundary-stitching error table and speedup-vs-K curve recorded in
// DESIGN.md section 15 (EXPERIMENTS.md has the recipe). Opt-in because
// it costs ~20s:
//
//	SPECKIT_MEASURE=1 go test ./internal/machine/ -run TestParallelMeasure -v
func TestParallelMeasure(t *testing.T) {
	if os.Getenv("SPECKIT_MEASURE") == "" {
		t.Skip("measurement harness; set SPECKIT_MEASURE=1 to run")
	}
	const n = 8 << 20
	cfg := HaswellScaled()
	models := map[string]profile.Model{"testModel": testModel()}
	for _, app := range profile.CPU2017() {
		switch app.Name {
		case "505.mcf_r", "525.x264_r", "519.lbm_r":
			models[app.Name] = app.Expand(profile.Ref)[0].Model
		}
	}
	for name, m := range models {
		opt, newSource := parallelOptions(t, cfg, m, n)
		src, err := newSource()
		if err != nil {
			t.Fatal(err)
		}
		seqStart := time.Now()
		seq, err := Run(cfg, src, opt)
		if err != nil {
			t.Fatal(err)
		}
		seqS := time.Since(seqStart).Seconds()
		fmt.Printf("%s seq: %.2fs IPC=%.4f L1=%.4f L2=%.4f L3=%.4f misp=%.4f\n",
			name, seqS, seq.IPC, seq.Counters.CacheMissPct(1), seq.Counters.CacheMissPct(2),
			seq.Counters.CacheMissPct(3), seq.Counters.MispredictPct())
		for _, k := range []int{2, 4, 8, 16} {
			par, err := RunParallel(cfg, newSource, opt, k)
			if err != nil {
				t.Fatal(err)
			}
			cp := par.Parallel.CriticalPathSeconds()
			fmt.Printf("%s K=%-2d speedup=%.2fx crit=%.2fs dIPC=%+.2f%% dL1=%+.3fpp dL2=%+.3fpp dL3=%+.3fpp dmisp=%+.3fpp\n",
				name, k, seqS/cp, cp,
				(par.IPC-seq.IPC)/seq.IPC*100,
				par.Counters.CacheMissPct(1)-seq.Counters.CacheMissPct(1),
				par.Counters.CacheMissPct(2)-seq.Counters.CacheMissPct(2),
				par.Counters.CacheMissPct(3)-seq.Counters.CacheMissPct(3),
				par.Counters.MispredictPct()-seq.Counters.MispredictPct())
		}
	}
}
