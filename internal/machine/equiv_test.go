package machine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/xrand"
)

// equivBatchSizes are the batch sizes every equivalence test sweeps:
// degenerate (1), prime and misaligned with every internal stride (7),
// small power of two (64), and the production default (4096).
var equivBatchSizes = []int{1, 7, 64, 4096}

// randomModel draws a structurally valid but otherwise arbitrary workload
// model. Ranges are deliberately wider than any real SPEC profile so the
// equivalence property is exercised beyond the shipped workloads.
func randomModel(rng *xrand.PCG32) profile.Model {
	loadPct := 2 + rng.Float64()*38
	storePct := 1 + rng.Float64()*(60-loadPct-2)
	mix := profile.BranchMix{
		Cond:         0.4 + rng.Float64()*0.5,
		Jump:         rng.Float64() * 0.2,
		IndirectJump: rng.Float64() * 0.1,
	}
	callRet := rng.Float64() * 0.2
	mix.Call, mix.Return = callRet/2, callRet/2
	sum := mix.Sum()
	mix.Cond /= sum
	mix.Jump /= sum
	mix.Call /= sum
	mix.IndirectJump /= sum
	mix.Return /= sum
	rss := 1 + rng.Float64()*256
	return profile.Model{
		InstrBillions: 1 + rng.Float64()*1000,
		TargetIPC:     0.3 + rng.Float64()*2.5,
		LoadPct:       loadPct,
		StorePct:      storePct,
		BranchPct:     1 + rng.Float64()*25,
		Mix:           mix,
		MispredictPct: rng.Float64() * 15,
		L1MissPct:     rng.Float64() * 40,
		L2MissPct:     rng.Float64() * 80,
		L3MissPct:     rng.Float64() * 90,
		RSSMiB:        rss,
		VSZMiB:        rss * (1 + rng.Float64()),
		MLP:           1 + rng.Float64()*9,
		CodeKiB:       2 + rng.Float64()*2000,
		BranchSites:   1 + rng.Intn(20000),
		Threads:       1,
		Seed:          rng.Uint64(),
	}
}

// runKernel simulates m on cfg with the given batch size; batch 0 runs
// the per-uop reference kernel. A fresh generator is built each call, so
// repeated calls see identical streams.
func runKernel(t *testing.T, cfg Config, m profile.Model, instr uint64, batch int) *Result {
	t.Helper()
	gen, err := synth.New(m, cfg.Geometry())
	if err != nil {
		t.Fatalf("synth.New: %v", err)
	}
	opt := Options{
		Instructions:       instr,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		CalibrateIPC:       m.TargetIPC,
		BatchSize:          batch,
	}
	var res *Result
	if batch == 0 {
		res, err = RunReference(cfg, gen, opt)
	} else {
		res, err = Run(cfg, gen, opt)
	}
	if err != nil {
		t.Fatalf("run (batch=%d): %v", batch, err)
	}
	return res
}

// diffResults returns a field-by-field description of how two Results
// differ, or "" when they are deeply equal.
func diffResults(ref, got *Result) string {
	if reflect.DeepEqual(ref, got) {
		return ""
	}
	var out string
	rv, gv := reflect.ValueOf(*ref), reflect.ValueOf(*got)
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Type().Field(i)
		a, b := rv.Field(i).Interface(), gv.Field(i).Interface()
		if !reflect.DeepEqual(a, b) {
			out += fmt.Sprintf("  %s: reference %+v != batched %+v\n", f.Name, a, b)
		}
	}
	if out == "" {
		out = "  (difference inside unexported state)\n"
	}
	return out
}

// TestBatchedKernelMatchesReference is the central equivalence property:
// for randomized workload models and seeds, the batched kernel produces a
// Result bit-identical to the per-uop reference kernel at every batch
// size, on both the scaled characterization machine and the full-size
// unified-code-path machine.
func TestBatchedKernelMatchesReference(t *testing.T) {
	const instr = 20000
	rng := xrand.NewPCG32(0xba7c4ed) // any fixed seed works
	configs := []Config{HaswellScaled(), Haswell()}
	for trial := 0; trial < 6; trial++ {
		m := randomModel(rng)
		cfg := configs[trial%len(configs)]
		ref := runKernel(t, cfg, m, instr, 0)
		for _, bs := range equivBatchSizes {
			got := runKernel(t, cfg, m, instr, bs)
			if d := diffResults(ref, got); d != "" {
				t.Errorf("trial %d (%s, seed %#x) batch=%d diverges from reference:\n%s",
					trial, cfg.Name, m.Seed, bs, d)
			}
		}
	}
}

// TestBatchedKernelBatchSizeIndependent checks batched-vs-batched: every
// batch size yields the same Result as the default, including sizes that
// do not divide the warmup or measurement windows.
func TestBatchedKernelBatchSizeIndependent(t *testing.T) {
	const instr = 30011 // prime, so no batch size divides it
	cfg := HaswellScaled()
	m := testModel()
	base := runKernel(t, cfg, m, instr, DefaultBatchSize)
	for _, bs := range []int{1, 7, 64, 100, 4096, 1 << 16} {
		got := runKernel(t, cfg, m, instr, bs)
		if d := diffResults(base, got); d != "" {
			t.Errorf("batch=%d diverges from batch=%d:\n%s", bs, DefaultBatchSize, d)
		}
	}
}

// nonIdempotentLFU is an LFU-ish policy whose Touch is NOT idempotent
// (it counts touches), so the batched kernel must disable fetch
// deduplication for it and still match the reference bit for bit.
type nonIdempotentLFU struct{}

func (nonIdempotentLFU) Name() string { return "lfu-test" }

type lfuState struct {
	ways   int
	counts []uint64
}

func (nonIdempotentLFU) New(sets, ways int) cache.Replacement {
	return &lfuState{ways: ways, counts: make([]uint64, sets*ways)}
}

func (s *lfuState) Touch(set, w int) { s.counts[set*s.ways+w]++ }
func (s *lfuState) Fill(set, w int)  { s.counts[set*s.ways+w] = 1 }
func (s *lfuState) Victim(set int) int {
	base := set * s.ways
	victim, least := 0, s.counts[base]
	for w := 1; w < s.ways; w++ {
		if s.counts[base+w] < least {
			victim, least = w, s.counts[base+w]
		}
	}
	return victim
}

// TestBatchedKernelPolicyVariants runs the equivalence property across
// every built-in L1I replacement policy plus a custom non-idempotent one
// (which exercises the dedup-disabled conservative path).
func TestBatchedKernelPolicyVariants(t *testing.T) {
	const instr = 15000
	m := testModel()
	policies := append(cache.Policies(), nonIdempotentLFU{})
	for _, pol := range policies {
		cfg := HaswellScaled()
		cfg.Hierarchy.L1I.Policy = pol
		if !cache.TouchIdempotent(pol) && pol.Name() != "lfu-test" {
			t.Errorf("built-in policy %s unexpectedly reported non-idempotent", pol.Name())
		}
		ref := runKernel(t, cfg, m, instr, 0)
		for _, bs := range equivBatchSizes {
			got := runKernel(t, cfg, m, instr, bs)
			if d := diffResults(ref, got); d != "" {
				t.Errorf("policy %s batch=%d diverges from reference:\n%s", pol.Name(), bs, d)
			}
		}
	}
}

// TestBatchedKernelRealProfiles spot-checks equivalence on real CPU2017
// models, which exercise the production parameter space (including large
// footprints and branch-site populations).
func TestBatchedKernelRealProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("real-profile sweep is slow")
	}
	const instr = 20000
	cfg := HaswellScaled()
	apps := profile.CPU2017()
	for _, i := range []int{0, len(apps) / 3, 2 * len(apps) / 3, len(apps) - 1} {
		pair := apps[i].Expand(profile.Ref)[0]
		ref := runKernel(t, cfg, pair.Model, instr, 0)
		for _, bs := range equivBatchSizes {
			got := runKernel(t, cfg, pair.Model, instr, bs)
			if d := diffResults(ref, got); d != "" {
				t.Errorf("%s batch=%d diverges from reference:\n%s", pair.Name(), bs, d)
			}
		}
	}
}
