package machine

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/trace"
)

// This file implements intra-pair parallel simulation: one uop stream's
// measured window is split into contiguous sub-windows simulated
// concurrently on independent cores, each stitched onto warm state with
// the frozen-cache technique the sampled run loop uses for its gaps.
// Every worker first simulates a warm-state pass — the caller's warmup
// head (the generator prologue, a working-set sweep that primes every
// cache level) plus a settle window, the same foundation the sampled
// loop runs on — redundantly, but concurrently, so it costs one pass of
// wall clock instead of K. The stretch from there to the worker's
// window (the fractional warmup tail plus all preceding windows) is
// then treated as one long sampling gap: the caches are frozen (skipped
// over), aged by the gap's estimated content turnover (the alpha model
// from the sampled loop, driven by fill rates measured during the
// settle window), the branch predictor is kept functionally warm across
// the gap's tail (trace.SkipRecordsWarm), and a re-warm window — sized
// from the same fill rates to rebuild what aging evicted — settles the
// hierarchy before the counted detail region. Per-window counters merge
// in window order. Campaign-level parallelism maxes out at the number
// of pairs; this is the knob that makes a single large pair scale.
//
// Parallel windowing is an estimate of the sequential run, not a
// bit-identical reordering of it: a window's cache image is the aged
// warm-pass image plus a re-warm, not the exact cumulative state the
// sequential kernel would carry across the boundary. The tolerance
// tests bound the error the same way the sampling tests do, and K>1
// results are keyed separately from exact sequential ones in every
// cache tier (core's campaign key appends the knob). K<=1 delegates to
// the sequential kernel and stays bit-identical.

const (
	// minParallelWindow is the smallest counted window worth giving a
	// worker: below it the warm prefix dominates the window and the
	// split costs accuracy without buying wall-clock. Requests whose
	// windows would shrink under it fall back to fewer workers, down to
	// the exact sequential kernel.
	minParallelWindow = 32768
	// minParallelWarmup floors each window's uncounted simulated warm
	// prefix at the sampling default's re-warm window.
	minParallelWarmup = 8192
	// parallelSettle is the settle window each worker simulates after
	// the warmup head, mirroring the sampled loop's settle: it realigns
	// small-horizon state (L1, predictor hot entries) with real stream
	// behaviour after the prologue's branch-free sweep, and seeds the
	// fill-rate estimates the gap aging and re-warm sizing run on.
	parallelSettle = 2 * minParallelWarmup
	// parallelSkipRatio is the assumed cost of fast-forwarding one
	// record relative to simulating one, used to balance the window
	// split: a later window pays to skip everything before it, so
	// windows shrink geometrically by (1 - ratio) per worker, keeping
	// skip(start_i) + simulate(window_i) constant across workers and the
	// critical path flat. A fixed model constant — not measured at run
	// time — so the split stays a pure function of (Instructions,
	// Workers) and results stay bit-reproducible; a mismatch with the
	// real ratio on a given host costs balance, never correctness.
	parallelSkipRatio = 0.3
)

// ParallelStats records how a parallel run was decomposed and how long
// each window took, attached as Result.Parallel.
type ParallelStats struct {
	// Requested is the worker count the caller asked for; Workers is the
	// count actually used after the minimum-window fallback. Workers==1
	// means the run fell back to the exact sequential kernel.
	Requested, Workers int
	// Executors is how many windows ran concurrently: min(Workers,
	// GOMAXPROCS). The window split — and therefore every result bit —
	// depends only on Workers; executors are pure scheduling.
	Executors int
	// WarmupLen is the warm-state pass every worker simulates before its
	// gap: the caller's warmup head (Options.WarmupInstructions,
	// normally the generator prologue) plus the settle window, clamped
	// to the caller's total warmup. Every window additionally simulates
	// a re-warm after its aged gap.
	WarmupLen uint64
	// WindowSeconds is each window's wall time (skip + warm + counted
	// detail), in window order.
	WindowSeconds []float64
}

// CriticalPathSeconds returns the slowest window's wall time — the
// run's wall clock on a machine with at least Workers idle cores, and
// the quantity BenchmarkKernelParallel gates. (On fewer cores windows
// queue on the executor pool and total wall clock approaches the sum
// instead.)
func (st *ParallelStats) CriticalPathSeconds() float64 {
	worst := 0.0
	for _, s := range st.WindowSeconds {
		if s > worst {
			worst = s
		}
	}
	return worst
}

// parallelWindowLens splits total instructions into k contiguous
// windows of geometrically decreasing length: window i is (1 -
// parallelSkipRatio) times window i-1, which equalizes each worker's
// skip(start_i) + simulate(window_i) cost and flattens the critical
// path. Window 0 absorbs the integer rounding remainder (it is the
// largest, so the relative distortion is smallest). Pure function of
// (total, k) — the split never depends on anything measured.
func parallelWindowLens(total uint64, k int) []uint64 {
	lens := make([]uint64, k)
	decay := 1 - parallelSkipRatio
	norm := parallelSkipRatio / (1 - math.Pow(decay, float64(k)))
	rest := total
	for i := k - 1; i >= 1; i-- {
		lens[i] = uint64(float64(total) * norm * math.Pow(decay, float64(i)))
		rest -= lens[i]
	}
	lens[0] = rest
	return lens
}

// parallelWindow is one worker's assignment: the shared warm-state pass
// (warmup head then settle window, identical for every window), the gap
// to the window's start, and the counted window. The worker itself
// partitions the gap into cold skip, warm-skip tail and simulated
// re-warm, because the re-warm is sized from fill rates it measures
// during its settle window (deterministic — the pass is the same stream
// prefix every time, so the partition is too).
type parallelWindow struct {
	warmPro, warmSettle, gap, counted uint64
}

// parallelResult is one finished window: its counter diff, footprint
// high-water marks, stage timings, and the first error if any.
type parallelResult struct {
	snap             counterSnap
	rss, vsz         uint64
	err              error
	seconds          float64
	ff, warm, detail time.Duration
}

// RunParallel simulates opt.Instructions of a uop stream with the
// measured window split across `workers` concurrently simulated
// contiguous sub-windows. Because every window needs an independently
// positioned stream, the caller supplies a source factory instead of a
// source; each invocation must yield a fresh source producing the
// identical record sequence (same generator seed), which is what makes
// the merged result bit-reproducible for fixed (seed, workers).
//
// Every worker simulates the caller's warmup head (WarmupInstructions,
// normally the generator prologue) plus a settle window — redundantly,
// but concurrently, so it costs one pass of wall clock rather than K —
// and bridges from that warm-state image to its own window with the
// sampled loop's frozen-cache gap procedure; the fractional warmup tail
// (WarmupFraction) is part of the first gap, not simulated. Sampling
// itself does not compose — both knobs re-tile the measured stream —
// and is rejected.
func RunParallel(cfg Config, newSource func() (trace.Source, error), opt Options, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("machine: zero-length run")
	}
	if opt.Sampling.Enabled() {
		return nil, fmt.Errorf("machine: sampling does not compose with parallel windowed simulation (both re-tile the measured stream)")
	}
	if newSource == nil {
		return nil, fmt.Errorf("machine: RunParallel needs a source factory")
	}

	total := opt.Instructions
	k := workers
	if maxK := int(total / minParallelWindow); k > maxK {
		// K > windows available: fall back to as many workers as
		// minimum-length windows fit, which for short streams is the
		// exact sequential kernel.
		k = maxK
	}
	// The geometric split makes the last window the shortest; shed
	// workers until it clears the minimum-window floor.
	for k > 1 && parallelWindowLens(total, k)[k-1] < minParallelWindow {
		k--
	}
	if k <= 1 {
		src, err := newSource()
		if err != nil {
			return nil, err
		}
		res, err := Run(cfg, src, opt)
		if err != nil {
			return nil, err
		}
		res.Parallel = &ParallelStats{Requested: workers, Workers: 1, Executors: 1}
		return res, nil
	}

	// Contiguous geometric split of the measured region [W, W+total):
	// the windows tile the region exactly and the split depends only on
	// (total, k). The warm-state pass is the warmup head plus settle,
	// clamped to the caller's total warmup so it never overlaps the
	// measured region; whatever warmup remains after it (the fractional
	// tail) is the head of every window's gap.
	warmLen := warmupLength(opt)
	pro := min64(opt.WarmupInstructions, warmLen)
	settle := min64(parallelSettle, warmLen-pro)
	lens := parallelWindowLens(total, k)
	jobs := make([]parallelWindow, k)
	start := uint64(0)
	for i := range jobs {
		// Each window's gap — the stream between the end of the
		// warm-state pass and the window's start — is bridged exactly
		// the way the sampled loop bridges a period gap: the caches are
		// frozen and aged (runParallelWindow), only the tail keeps the
		// branch predictor functionally warm, the head is a cold skip,
		// and a re-warm window rebuilds aged-out content before counting
		// starts.
		jobs[i] = parallelWindow{
			warmPro:    pro,
			warmSettle: settle,
			gap:        warmLen - pro - settle + start,
			counted:    lens[i],
		}
		start += lens[i]
	}

	bs := opt.BatchSize
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	// Executor pool: window jobs are independent, so running them on
	// min(k, GOMAXPROCS) executors changes scheduling only, never a
	// result bit. Each executor owns one batch buffer reused across all
	// the windows it runs (the per-worker arena; the alloc-regression
	// test pins the steady-state window loop at zero allocations).
	execs := runtime.GOMAXPROCS(0)
	if execs > k {
		execs = k
	}
	results := make([]parallelResult, k)
	var next atomic.Int64
	var wg sync.WaitGroup
	for e := 0; e < execs; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]trace.Uop, bs)
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				results[i] = runParallelWindow(cfg, newSource, opt, jobs[i], buf)
			}
		}()
	}
	wg.Wait()

	// Deterministic merge in window order; footprint high-water marks
	// merge as the maximum (windows of a cyclic synthetic stream touch
	// near-identical working sets, and RSS is a high-water mark, not a
	// rate).
	var agg counterSnap
	var rss, vsz uint64
	var ffDur, warmDur, detailDur time.Duration
	st := &ParallelStats{
		Requested:     workers,
		Workers:       k,
		Executors:     execs,
		WarmupLen:     pro + settle,
		WindowSeconds: make([]float64, k),
	}
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return nil, fmt.Errorf("machine: parallel window %d/%d: %w", i, k, r.err)
		}
		agg.add(r.snap)
		if r.rss > rss {
			rss = r.rss
		}
		if r.vsz > vsz {
			vsz = r.vsz
		}
		ffDur += r.ff
		warmDur += r.warm
		detailDur += r.detail
		st.WindowSeconds[i] = r.seconds
		metWindowSeconds["parallel"].Observe(r.seconds)
	}
	metPairWindows["parallel"].Add(uint64(k))
	recordStage(opt.Span, "fast-forward", ffDur)
	recordStage(opt.Span, "warmup", warmDur)
	recordStage(opt.Span, "detail", detailDur)
	opt.Span.SetAttr("windows", k)

	res, err := DeriveResult(cfg, opt, Counts{
		Kinds:       agg.kinds,
		LoadLevel:   agg.loadLevel,
		DataLevel:   agg.dataLevel,
		FetchMisses: agg.fetchMisses,
		Walks:       agg.walks,
		Branch:      agg.branch,
		RSSBytes:    rss,
		VSZBytes:    vsz,
	})
	if err != nil {
		return nil, err
	}
	res.Parallel = st
	return res, nil
}

// runParallelWindow simulates one window on a fresh core and source.
// The worker first simulates the warm-state pass — warmup head then
// settle window, identical for every window, measuring per-cache fill
// rates as it goes — then bridges its gap with the sampled loop's
// frozen-cache procedure: age each cache by the gap's estimated content
// turnover, cold-skip the gap head, warm-skip the branch tail
// (trace.SkipRecordsWarm keeps the predictor functionally warm), and
// simulate a re-warm window sized to rebuild what aging evicted.
// Counters reset, then the detail window is counted.
func runParallelWindow(cfg Config, newSource func() (trace.Source, error), opt Options, job parallelWindow, buf []trace.Uop) parallelResult {
	startT := time.Now()
	var r parallelResult
	src, err := newSource()
	if err != nil {
		r.err = err
		return r
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	c := newCore(cfg, hier)
	if cache.TouchIdempotent(cfg.Hierarchy.L1I.Policy) {
		hier.L1I().EnableFetchMemo()
	}
	if cache.TouchIdempotent(cfg.Hierarchy.L1D.Policy) {
		hier.Cache(cache.L1).EnableFetchMemo()
	}
	bsrc := trace.AsBatch(src)

	// Warm-state pass: the warmup head (the generator prologue, a
	// branch-free working-set sweep that primes every cache level), then
	// a stats reset so the settle window's fill and miss rates — the
	// inputs to gap aging and re-warm sizing — reflect real stream
	// behaviour rather than the sweep's 100%-fill transient, mirroring
	// how the sampled loop seeds its estimates from its settle window.
	warmStart := time.Now()
	ageCaches := [4]*cache.Cache{hier.L1I(), hier.Cache(cache.L1), hier.Cache(cache.L2), hier.Cache(cache.L3)}
	if job.warmPro > 0 {
		if err := c.mustRun(bsrc, buf, job.warmPro, opt); err != nil {
			r.err = err
			return r
		}
	}
	c.resetStats()
	var fillAcc [4]uint64
	for i, ch := range ageCaches {
		fillAcc[i] = ch.Fills()
	}
	if job.warmSettle > 0 {
		if err := c.mustRun(bsrc, buf, job.warmSettle, opt); err != nil {
			r.err = err
			return r
		}
		for i, ch := range ageCaches {
			fillAcc[i] = ch.Fills() - fillAcc[i]
		}
	}
	r.warm = time.Since(warmStart)

	// Partition the gap. The re-warm must be long enough to rebuild the
	// cache content aging is about to evict — a fixed 8Ki window (the
	// sampled default) suffices there only because a sampling gap turns
	// over a few percent of L2/L3; a parallel window's gap can span most
	// of the stream and turn over whole caches, and counting on top of a
	// drained L2 biases its miss rate far high. Sizing: per cache, the
	// instructions needed to replace the evicted lines at the fill rate
	// observed during the settle window; the re-warm covers the
	// hungriest cache, floored at the sampled default and capped by the
	// gap. The measurement is a pure function of the stream prefix, so
	// the partition — and every result bit — stays deterministic.
	rewarm := min64(minParallelWarmup, job.gap)
	var age [4]int
	if job.warmSettle > 0 && job.gap > 0 {
		for i, ch := range ageCaches {
			f := float64(fillAcc[i]) / float64(job.warmSettle)
			if f <= 0 {
				continue
			}
			alpha := 1.0
			if i >= 2 {
				mr := ch.Stats().MissRate()
				alpha = ageCoeff * math.Pow(mr, agePow)
			}
			evict := alpha * f * float64(job.gap)
			if lines := float64(ch.Lines()); evict > lines {
				evict = lines
			}
			age[i] = int(evict)
			if need := uint64(evict / f); need > rewarm {
				rewarm = need
			}
		}
		rewarm = min64(rewarm, job.gap)
	}
	tail := min64(minParallelWarmup*warmTailFactor, job.gap-rewarm)
	cold := job.gap - rewarm - tail

	ffStart := time.Now()
	if job.gap > 0 && job.warmSettle > 0 {
		// Frozen-cache aging across the whole gap, exactly the sampled
		// loop's model: invalidate as many replacement victims as the
		// gap would have filled (the re-warm then rebuilds them with the
		// window's own neighbourhood). With no settle window (warmup
		// disabled) there is no estimate and nothing frozen worth aging
		// — the hierarchy is still cold.
		for i, ch := range ageCaches {
			ch.Age(age[i])
		}
	}
	if cold > 0 {
		done, err := skipChunked(bsrc, buf, cold, opt)
		if err != nil {
			r.err = err
			return r
		}
		if done < cold {
			r.err = fmt.Errorf("source exhausted after %d skipped instructions", done)
			return r
		}
	}
	if tail > 0 {
		if done := trace.SkipRecordsWarm(bsrc, buf, tail, c.unit.Warm); done < tail {
			r.err = fmt.Errorf("source exhausted after %d skipped instructions", cold+done)
			return r
		}
	}
	r.ff = time.Since(ffStart)

	if rewarm > 0 {
		rewarmStart := time.Now()
		if err := c.mustRun(bsrc, buf, rewarm, opt); err != nil {
			r.err = err
			return r
		}
		r.warm += time.Since(rewarmStart)
	}
	c.resetStats()

	detailStart := time.Now()
	if err := c.mustRun(bsrc, buf, job.counted, opt); err != nil {
		r.err = err
		return r
	}
	r.detail = time.Since(detailStart)

	r.snap = c.snap()
	r.rss = c.foot.PeakRSS()
	r.vsz = c.foot.VSZ()
	r.seconds = time.Since(startT).Seconds()
	return r
}

// skipChunkLen bounds one uninterrupted skip so a cancelled context is
// noticed within a bounded amount of fast-forward work.
const skipChunkLen = 1 << 20

// skipChunked cold-skips n records, polling opt.Context between chunks
// (SkipRecords itself never polls; native skips can cover millions of
// records per call).
func skipChunked(src trace.BatchSource, buf []trace.Uop, n uint64, opt Options) (uint64, error) {
	done := uint64(0)
	for done < n {
		if opt.Context != nil {
			if err := opt.Context.Err(); err != nil {
				return done, err
			}
		}
		step := min64(n-done, skipChunkLen)
		got := trace.SkipRecords(src, buf, step)
		done += got
		if got < step {
			return done, nil
		}
	}
	return done, nil
}
