package machine

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
)

// Scratch experiment: accuracy + wall-clock for candidate sampling knobs.
// Not part of the suite (the tolerance bounds live in sampling_test.go);
// run with SPECKIT_EXP=1 go test -run TestExpKnobs -v to re-tune the
// package-level aging/warm-tail shape after a model or kernel change.
func TestExpKnobs(t *testing.T) {
	if os.Getenv("SPECKIT_EXP") == "" {
		t.Skip("tuning scratch; set SPECKIT_EXP=1 to run")
	}
	cfg := HaswellScaled()
	models := map[string]profile.Model{"testModel": testModel()}
	want := map[string]bool{
		"505.mcf_r": true, "525.x264_r": true, "541.leela_r": true,
		"503.bwaves_r": true, "519.lbm_r": true, "508.namd_r": true,
	}
	for _, app := range profile.CPU2017() {
		if want[app.Name] {
			models[app.Name] = app.Expand(profile.Ref)[0].Model
		}
	}
	const N = 16777216
	type knobCase struct {
		sp       Sampling
		age, pow float64
		tail     uint64
	}
	base := Sampling{Period: 262144, DetailLen: 8192, WarmupLen: 8192}
	knobs := []knobCase{
		{base, 0.4, 1.5, 8},
	}
	seeds := []uint64{0x9E3779B97F4A7C15, 1, 0xDEADBEEF12345678}
	run := func(m profile.Model, sp Sampling) (*Result, time.Duration) {
		gen, err := synth.New(m, cfg.Geometry())
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{
			Instructions:       N,
			WarmupInstructions: gen.Prologue(),
			Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
			CalibrateIPC:       m.TargetIPC,
			Sampling:           sp,
		}
		if sp.Enabled() {
			opt.WarmupFraction = -1
		}
		start := time.Now()
		res, err := Run(cfg, gen, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res, time.Since(start)
	}
	rel := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return (a - b) / b * 100
	}
	for name, m := range models {
		exact, te := run(m, Sampling{})
		fmt.Printf("%-14s exact  %8.2fms IPC %.3f L1 %.2f%% L2 %.2f%% L3 %.2f%% MISP %.3f%%\n",
			name, float64(te.Microseconds())/1000, exact.IPC,
			exact.Counters.CacheMissPct(1), exact.Counters.CacheMissPct(2), exact.Counters.CacheMissPct(3), exact.Counters.MispredictPct())
		for _, kc := range knobs {
			for _, seed := range seeds {
				sp := kc.sp
				warmTailFactor = kc.tail
				ageCoeff, agePow = kc.age, kc.pow
				jitterSeed = seed
				res, ts := run(m, sp)
				fmt.Printf("  %-12s a=%.2f p=%.1f t=%d s=%08x %8.2fms %5.2fx | dIPC %+6.2f%% dL1 %+6.2f%% dL2 %+6.2f%% dL3 %+6.2f%% dMISP %+6.2f%% | w=%d f=%.3f\n",
					sp, kc.age, kc.pow, kc.tail, seed&0xffffffff, float64(ts.Microseconds())/1000, float64(te)/float64(ts),
					rel(res.IPC, exact.IPC), rel(res.Counters.CacheMissPct(1), exact.Counters.CacheMissPct(1)),
					rel(res.Counters.CacheMissPct(2), exact.Counters.CacheMissPct(2)), rel(res.Counters.CacheMissPct(3), exact.Counters.CacheMissPct(3)),
					rel(res.Counters.MispredictPct(), exact.Counters.MispredictPct()),
					res.Sampling.Windows, res.Sampling.SampledFraction)
			}
		}
	}
}

// BenchmarkExpSampled profiles the sampled path composition.
func BenchmarkExpSampled(b *testing.B) {
	cfg := HaswellScaled()
	m := testModel()
	const N = 8000000
	sp := Sampling{Period: 262144, DetailLen: 8192, WarmupLen: 8192}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := synth.New(m, cfg.Geometry())
		if err != nil {
			b.Fatal(err)
		}
		opt := Options{
			Instructions:       N,
			WarmupInstructions: gen.Prologue(),
			Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
			CalibrateIPC:       m.TargetIPC,
			Sampling:           sp,
			WarmupFraction:     -1,
		}
		if _, err := Run(cfg, gen, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(N), "ns/instr")
}
