package machine

import (
	"math"
	"testing"

	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

const testInstr = 150000

// testModel returns a mid-of-the-road workload model.
func testModel() profile.Model {
	return profile.Model{
		InstrBillions: 1000, TargetIPC: 1.5,
		LoadPct: 25, StorePct: 9, BranchPct: 16,
		Mix:           profile.DefaultIntBranchMix(),
		MispredictPct: 3, L1MissPct: 5, L2MissPct: 40, L3MissPct: 15,
		RSSMiB: 512, VSZMiB: 600, MLP: 2, CodeKiB: 400, BranchSites: 3000,
		Threads: 1, Seed: 42,
	}
}

func runModel(t *testing.T, m profile.Model) *Result {
	t.Helper()
	cfg := HaswellScaled()
	gen, err := synth.New(m, cfg.Geometry())
	if err != nil {
		t.Fatalf("synth.New: %v", err)
	}
	res, err := Run(cfg, gen, Options{
		Instructions:       testInstr,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		CalibrateIPC:       m.TargetIPC,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestConfigsValid(t *testing.T) {
	for _, cfg := range []Config{Haswell(), HaswellScaled()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestGeometry(t *testing.T) {
	g := HaswellScaled().Geometry()
	if g.L1Lines != 512 || g.L2Lines != 4096 || g.L3Lines != 32768 {
		t.Errorf("geometry = %+v, want 512/4096/32768", g)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunProducesAllCounters(t *testing.T) {
	res := runModel(t, testModel())
	for _, name := range []string{
		perf.InstRetired, perf.RefCycles, perf.UopsRetired,
		perf.AllLoads, perf.AllStores, perf.AllBranches, perf.MispBranches,
		perf.CondBranches, perf.DirectJumps, perf.DirectCalls,
		perf.IndirectJumps, perf.Returns,
		perf.L1Hit, perf.L1Miss, perf.L2Hit, perf.L2Miss, perf.L3Hit, perf.L3Miss,
		perf.ICacheMisses, perf.DTLBWalks,
	} {
		if _, ok := res.Counters.Value(name); !ok {
			t.Errorf("counter %s missing", name)
		}
	}
	if got := res.Counters.MustValue(perf.InstRetired); got != testInstr {
		t.Errorf("inst_retired = %d, want %d", got, testInstr)
	}
}

// TestInstructionMixEmerges: the measured mix tracks the model within
// sampling noise.
func TestInstructionMixEmerges(t *testing.T) {
	m := testModel()
	res := runModel(t, m)
	c := res.Counters
	if got := c.LoadPct(); math.Abs(got-m.LoadPct) > 1.0 {
		t.Errorf("load pct = %.2f, want %.2f", got, m.LoadPct)
	}
	if got := c.StorePct(); math.Abs(got-m.StorePct) > 1.0 {
		t.Errorf("store pct = %.2f, want %.2f", got, m.StorePct)
	}
	if got := c.BranchPct(); math.Abs(got-m.BranchPct) > 1.0 {
		t.Errorf("branch pct = %.2f, want %.2f", got, m.BranchPct)
	}
}

// TestBranchClassMixEmerges: the class breakdown follows the configured
// mix (conditional-dominated).
func TestBranchClassMixEmerges(t *testing.T) {
	m := testModel()
	res := runModel(t, m)
	c := res.Counters
	branches := float64(c.MustValue(perf.AllBranches))
	cond := float64(c.MustValue(perf.CondBranches))
	gotCond := cond / branches
	if math.Abs(gotCond-m.Mix.Cond) > 0.04 {
		t.Errorf("conditional fraction = %.3f, want %.3f", gotCond, m.Mix.Cond)
	}
	calls := c.MustValue(perf.DirectCalls)
	rets := c.MustValue(perf.Returns)
	if calls == 0 || rets == 0 {
		t.Fatal("no calls or returns generated")
	}
	ratio := float64(calls) / float64(rets)
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("call/return ratio = %.2f, want ~1", ratio)
	}
}

// TestCacheMissRatesEmerge: per-level load miss rates land near the model
// targets through the real cache simulation.
func TestCacheMissRatesEmerge(t *testing.T) {
	m := testModel()
	res := runModel(t, m)
	c := res.Counters
	if got := c.CacheMissPct(1); math.Abs(got-m.L1MissPct) > 1.5 {
		t.Errorf("L1 miss = %.2f%%, want %.2f%%", got, m.L1MissPct)
	}
	if got := c.CacheMissPct(2); math.Abs(got-m.L2MissPct) > 8 {
		t.Errorf("L2 miss = %.2f%%, want %.2f%%", got, m.L2MissPct)
	}
	if got := c.CacheMissPct(3); math.Abs(got-m.L3MissPct) > 8 {
		t.Errorf("L3 miss = %.2f%%, want %.2f%%", got, m.L3MissPct)
	}
}

// TestMispredictRateEmerges: the gshare unit's mispredict rate tracks the
// model target.
func TestMispredictRateEmerges(t *testing.T) {
	for _, target := range []float64{0.6, 3, 8.6} {
		m := testModel()
		m.MispredictPct = target
		res := runModel(t, m)
		got := res.Counters.MispredictPct()
		if math.Abs(got-target) > 0.20*target+0.4 {
			t.Errorf("mispredict = %.2f%%, want ~%.2f%%", got, target)
		}
	}
}

// TestIPCCalibration: with a reachable target, the calibrated IPC lands on
// it; reported counters agree.
func TestIPCCalibration(t *testing.T) {
	m := testModel()
	res := runModel(t, m)
	if !res.Calibrated {
		t.Fatalf("IPC target %.2f unreachable (ILP %.2f)", m.TargetIPC, res.ILP)
	}
	if math.Abs(res.IPC-m.TargetIPC) > 0.02 {
		t.Errorf("IPC = %.3f, want %.3f", res.IPC, m.TargetIPC)
	}
	if got := res.Counters.IPC(); math.Abs(got-res.IPC) > 0.02 {
		t.Errorf("counter IPC %.3f != result IPC %.3f", got, res.IPC)
	}
}

// TestLowIPCWorkload: extreme memory-bound model (like 619.lbm_s) still
// calibrates to its tiny IPC.
func TestLowIPCWorkload(t *testing.T) {
	m := testModel()
	m.TargetIPC = 0.07
	m.L1MissPct, m.L2MissPct, m.L3MissPct = 9, 60, 55
	res := runModel(t, m)
	if math.Abs(res.IPC-0.07) > 0.01 {
		t.Errorf("IPC = %.3f, want 0.07", res.IPC)
	}
}

// TestHighIPCWorkload: a cache-friendly, predictable model reaches ~3 IPC.
func TestHighIPCWorkload(t *testing.T) {
	m := testModel()
	m.TargetIPC = 3.0
	m.L1MissPct, m.L2MissPct, m.L3MissPct = 1.2, 20, 6
	m.MispredictPct = 1.5
	m.BranchPct = 8
	m.CodeKiB = 100
	m.BranchSites = 800
	res := runModel(t, m)
	if !res.Calibrated {
		t.Skipf("IPC 3.0 unreachable with these stalls (ILP %.2f)", res.ILP)
	}
	if math.Abs(res.IPC-3.0) > 0.05 {
		t.Errorf("IPC = %.3f, want 3.0", res.IPC)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runModel(t, testModel())
	b := runModel(t, testModel())
	if a.IPC != b.IPC || a.Events != b.Events {
		t.Error("identical models produced different results")
	}
	for _, name := range a.Counters.Names() {
		av, _ := a.Counters.Value(name)
		bv, _ := b.Counters.Value(name)
		if av != bv {
			t.Errorf("counter %s differs: %d vs %d", name, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	m1 := testModel()
	m2 := testModel()
	m2.Seed = 43
	a := runModel(t, m1)
	b := runModel(t, m2)
	if a.Counters.MustValue(perf.AllLoads) == b.Counters.MustValue(perf.AllLoads) {
		t.Error("different seeds produced identical load counts")
	}
}

// TestCodeFootprintDrivesICache: a large code footprint must produce more
// L1I misses than a small one.
func TestCodeFootprintDrivesICache(t *testing.T) {
	small := testModel()
	small.CodeKiB = 16
	small.BranchSites = 200
	big := testModel()
	big.CodeKiB = 4096
	big.BranchSites = 16000
	rs := runModel(t, small)
	rb := runModel(t, big)
	sMiss := rs.Counters.MustValue(perf.ICacheMisses)
	bMiss := rb.Counters.MustValue(perf.ICacheMisses)
	if bMiss <= sMiss*2 {
		t.Errorf("icache misses small=%d big=%d; want big >> small", sMiss, bMiss)
	}
}

// TestFootprintGrowsWithRSS: larger model RSS touches more simulated
// memory (until the treap cap).
func TestFootprintGrowsWithRSS(t *testing.T) {
	smallM := testModel()
	smallM.RSSMiB = 2
	bigM := testModel()
	bigM.RSSMiB = 64
	small := runModel(t, smallM)
	big := runModel(t, bigM)
	if big.SimRSSBytes <= small.SimRSSBytes {
		t.Errorf("sim RSS small=%d big=%d; want growth", small.SimRSSBytes, big.SimRSSBytes)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := HaswellScaled()
	if _, err := Run(cfg, &trace.SliceSource{}, Options{Instructions: 0}); err == nil {
		t.Error("zero-length run accepted")
	}
	// Source shorter than requested window.
	src := &trace.SliceSource{Uops: []trace.Uop{{Kind: trace.KindALU}}}
	if _, err := Run(cfg, src, Options{Instructions: 100}); err == nil {
		t.Error("exhausted source not reported")
	}
	bad := cfg
	bad.ClockHz = 0
	gen, _ := synth.New(testModel(), cfg.Geometry())
	if _, err := Run(bad, gen, Options{Instructions: 10}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunSharedContention(t *testing.T) {
	cfg := HaswellScaled()
	var prologue uint64
	mkSrc := func(seed uint64) trace.Source {
		m := testModel()
		// A heavier reuse profile so four cores' L3-resident pools
		// overflow the shared 2 MB L3.
		m.L1MissPct, m.L2MissPct, m.L3MissPct = 10, 60, 20
		m.Seed = seed
		gen, err := synth.New(m, cfg.Geometry())
		if err != nil {
			t.Fatalf("synth.New: %v", err)
		}
		prologue = gen.Prologue()
		return gen
	}
	solo, err := RunShared(cfg, []trace.Source{mkSrc(1)}, Options{
		Instructions: 60000, WarmupInstructions: prologue,
		Workload: pipeline.Workload{ILP: 2, MLP: 2}})
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	quad, err := RunShared(cfg, []trace.Source{mkSrc(1), mkSrc(2), mkSrc(3), mkSrc(4)}, Options{
		Instructions: 60000, WarmupInstructions: prologue,
		Workload: pipeline.Workload{ILP: 2, MLP: 2}})
	if err != nil {
		t.Fatalf("quad: %v", err)
	}
	// Sharing the L3 must not reduce per-core L3 hit rates to zero, but
	// the co-runners should increase this core's L3 miss count.
	soloMiss := solo.PerCore[0].Counters.MustValue(perf.L3Miss)
	quadMiss := quad.PerCore[0].Counters.MustValue(perf.L3Miss)
	if quadMiss <= soloMiss {
		t.Errorf("L3 misses solo=%d quad=%d; want contention to increase misses", soloMiss, quadMiss)
	}
	if quad.AggregateIPC <= 0 {
		t.Error("aggregate IPC not computed")
	}
}

func TestRunSharedErrors(t *testing.T) {
	cfg := HaswellScaled()
	if _, err := RunShared(cfg, nil, Options{Instructions: 10}); err == nil {
		t.Error("empty stream list accepted")
	}
}

func TestWorkloadFromModel(t *testing.T) {
	w := WorkloadFromModel(3.5)
	if w.MLP != 3.5 || w.ILP <= 0 {
		t.Errorf("WorkloadFromModel = %+v", w)
	}
}

func BenchmarkRunCharacterization(b *testing.B) {
	cfg := HaswellScaled()
	m := testModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := synth.New(m, cfg.Geometry())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(cfg, gen, Options{
			Instructions: 50000,
			Workload:     pipeline.Workload{ILP: 2, MLP: 2},
			CalibrateIPC: m.TargetIPC,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWarmupLength(t *testing.T) {
	cases := []struct {
		opt  Options
		want uint64
	}{
		{Options{Instructions: 1000}, 250},                                          // default 25%
		{Options{Instructions: 1000, WarmupFraction: 0.5}, 500},                     // explicit fraction
		{Options{Instructions: 1000, WarmupFraction: -1}, 0},                        // disabled
		{Options{Instructions: 1000, WarmupInstructions: 300}, 550},                 // absolute + fraction
		{Options{Instructions: 1000, WarmupFraction: -1, WarmupInstructions: 7}, 7}, // absolute only
	}
	for i, c := range cases {
		if got := warmupLength(c.opt); got != c.want {
			t.Errorf("case %d: warmup = %d, want %d", i, got, c.want)
		}
	}
}

// TestUnifiedCodePathPollutesL2: with the unified path, instruction
// fetches insert code lines into L2, raising the data-side L2 miss rate
// for a code-heavy workload.
func TestUnifiedCodePathPollutesL2(t *testing.T) {
	m := testModel()
	m.CodeKiB = 2000
	m.BranchSites = 12000
	run := func(unified bool) float64 {
		cfg := HaswellScaled()
		cfg.UnifiedCodePath = unified
		gen, err := synth.New(m, cfg.Geometry())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, gen, Options{
			Instructions:       100000,
			WarmupInstructions: gen.Prologue(),
			Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.CacheMissPct(2)
	}
	split := run(false)
	unified := run(true)
	if unified <= split {
		t.Errorf("unified code path L2 miss %.2f%% not above split %.2f%%", unified, split)
	}
}
