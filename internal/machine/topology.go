package machine

import (
	"fmt"
	"strconv"
	"strings"
)

// Placement selects how the OS scheduler places a workload's copies on
// a heterogeneous topology's core classes. The zero value pins to
// P-cores, which is the homogeneous baseline semantics.
type Placement int

const (
	// PlacePinnedP pins every copy to the performance cores.
	PlacePinnedP Placement = iota
	// PlacePinnedE pins every copy to the efficiency cores.
	PlacePinnedE
	// PlaceRandom models an unaware scheduler: a copy lands on either
	// class with probability proportional to the class's core count, so
	// the runtime becomes a multimodal distribution (one mode per
	// class, weighted by placement probability).
	PlaceRandom
	// PlaceBest models a topology-aware scheduler: the class with the
	// best (lowest) runtime wins.
	PlaceBest
	// PlaceWorst is the adversarial bound: the slowest class wins.
	PlaceWorst
)

// String returns the canonical spelling accepted by ParsePlacement.
func (p Placement) String() string {
	switch p {
	case PlacePinnedP:
		return "pinned-p"
	case PlacePinnedE:
		return "pinned-e"
	case PlaceRandom:
		return "random"
	case PlaceBest:
		return "best"
	case PlaceWorst:
		return "worst"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParsePlacement parses a placement policy name as spelled in flags and
// campaign specs. The empty string means pinned-p, matching the zero
// value; "pinned" alone pins to P-cores.
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "pinned", "pinned-p", "pinned:p":
		return PlacePinnedP, nil
	case "pinned-e", "pinned:e":
		return PlacePinnedE, nil
	case "random":
		return PlaceRandom, nil
	case "best":
		return PlaceBest, nil
	case "worst":
		return PlaceWorst, nil
	}
	return 0, fmt.Errorf("machine: unknown placement %q (want pinned-p, pinned-e, random, best or worst)", s)
}

// Topology describes a heterogeneous machine as two core classes: the
// base Config's performance cores and efficiency cores derived from it
// (ECoreConfig). The zero value means a homogeneous machine (topology
// modelling disabled).
type Topology struct {
	// PCores and ECores are the class sizes.
	PCores, ECores int
	// Placement is the OS scheduling policy mapping copies to classes.
	Placement Placement
}

// Enabled reports whether the topology participates in a run; the zero
// value does not.
func (t Topology) Enabled() bool { return t.PCores > 0 || t.ECores > 0 }

// String returns the canonical "4P4E-random" spelling accepted by
// ParseTopology; the zero value renders as "". The string is folded
// into result-cache keys, so it must stay bijective with the value.
func (t Topology) String() string {
	if !t.Enabled() {
		return ""
	}
	return fmt.Sprintf("%dP%dE-%s", t.PCores, t.ECores, t.Placement)
}

// ParseTopology parses "4P4E-random" (also accepted: "4P+4E/random",
// lower case, missing placement meaning pinned-p). The empty string
// returns the disabled zero value.
func ParseTopology(s string) (Topology, error) {
	raw := strings.TrimSpace(s)
	if raw == "" || strings.EqualFold(raw, "off") || strings.EqualFold(raw, "none") {
		return Topology{}, nil
	}
	var t Topology
	rest := strings.ToUpper(raw)
	core := rest
	place := ""
	// The placement suffix starts at the first separator after the E
	// count ("4P4E-random", "4P+4E/random"); "+" only joins the classes.
	if i := strings.IndexAny(rest, "-/"); i >= 0 {
		core, place = rest[:i], raw[i+1:]
	}
	core = strings.ReplaceAll(core, "+", "")
	p := strings.IndexByte(core, 'P')
	e := strings.IndexByte(core, 'E')
	if p < 0 || e < 0 || e < p || e != len(core)-1 {
		return Topology{}, fmt.Errorf("machine: bad topology %q (want e.g. 4P4E-random)", s)
	}
	var err error
	if t.PCores, err = strconv.Atoi(core[:p]); err != nil {
		return Topology{}, fmt.Errorf("machine: bad topology %q: P-core count: %v", s, err)
	}
	if t.ECores, err = strconv.Atoi(core[p+1 : e]); err != nil {
		return Topology{}, fmt.Errorf("machine: bad topology %q: E-core count: %v", s, err)
	}
	if t.Placement, err = ParsePlacement(place); err != nil {
		return Topology{}, fmt.Errorf("machine: bad topology %q: %v", s, err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// Validate rejects topologies no run can honor.
func (t Topology) Validate() error {
	if !t.Enabled() {
		return nil
	}
	if t.PCores < 0 || t.ECores < 0 {
		return fmt.Errorf("machine: topology %q: negative core count", t)
	}
	switch t.Placement {
	case PlacePinnedP:
		if t.PCores < 1 {
			return fmt.Errorf("machine: topology %q pins to P-cores but has none", t)
		}
	case PlacePinnedE:
		if t.ECores < 1 {
			return fmt.Errorf("machine: topology %q pins to E-cores but has none", t)
		}
	case PlaceRandom, PlaceBest, PlaceWorst:
		if t.PCores < 1 || t.ECores < 1 {
			return fmt.Errorf("machine: topology %q needs both core classes for %s placement", t, t.Placement)
		}
	default:
		return fmt.Errorf("machine: topology %q: unknown placement %d", t, int(t.Placement))
	}
	return nil
}

// ECoreConfig derives the efficiency-core class from the performance
// base: half the dispatch width, 60% of the clock, and half the private
// L2 — the canonical little-core tradeoff (narrow, slower, less private
// cache; the shared L3 is a property of the package, not the class).
// The derivation is deterministic, so a topology never needs its own
// machine fingerprint: the topology string keys the whole scenario.
func ECoreConfig(base Config) Config {
	e := base
	e.Name = base.Name + "+ecore"
	e.Pipeline.Width = base.Pipeline.Width / 2
	if e.Pipeline.Width < 1 {
		e.Pipeline.Width = 1
	}
	e.ClockHz = base.ClockHz * 0.6
	e.Hierarchy.L2.SizeBytes = base.Hierarchy.L2.SizeBytes / 2
	return e
}

// ClassConfig resolves a class name ("P" or "E") to its configuration.
func (t Topology) ClassConfig(base Config, class string) Config {
	if class == "E" {
		return ECoreConfig(base)
	}
	return base
}

// Mode is one branch of a placement distribution: a core class and the
// probability that the scheduler lands the workload there.
type Mode struct {
	// Class is "P" or "E".
	Class string
	// Weight is the mode's probability; weights over a distribution sum
	// to 1.
	Weight float64
}

// Modes returns the placement distribution's branches in deterministic
// (P before E) order. Pinned policies yield one mode; random yields one
// per class weighted by core count; best/worst also yield both classes
// (both must be simulated — which one wins is decided on measured
// runtime, so the caller selects after running and renormalizes the
// survivor's weight to 1).
func (t Topology) Modes() []Mode {
	switch t.Placement {
	case PlacePinnedP:
		return []Mode{{Class: "P", Weight: 1}}
	case PlacePinnedE:
		return []Mode{{Class: "E", Weight: 1}}
	}
	total := float64(t.PCores + t.ECores)
	return []Mode{
		{Class: "P", Weight: float64(t.PCores) / total},
		{Class: "E", Weight: float64(t.ECores) / total},
	}
}
