package machine

import "testing"

func TestParseFidelity(t *testing.T) {
	good := []struct {
		in   string
		want Fidelity
	}{
		{"", FidelityExact},
		{"exact", FidelityExact},
		{"EXACT", FidelityExact},
		{" exact ", FidelityExact},
		{"sampled", FidelitySampled},
		{"analytic", FidelityAnalytic},
		{"Analytic", FidelityAnalytic},
	}
	for _, tc := range good {
		got, err := ParseFidelity(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFidelity(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, in := range []string{"fast", "analytical", "sample", "0"} {
		if got, err := ParseFidelity(in); err == nil {
			t.Errorf("ParseFidelity(%q) = %v, want error", in, got)
		}
	}
}

func TestFidelityStringRoundTrip(t *testing.T) {
	for _, f := range []Fidelity{FidelityExact, FidelitySampled, FidelityAnalytic} {
		got, err := ParseFidelity(f.String())
		if err != nil || got != f {
			t.Errorf("round trip %v -> %q -> %v, %v", f, f.String(), got, err)
		}
	}
	if FidelityExact != 0 {
		t.Error("FidelityExact must be the zero value for spec back-compat")
	}
}
