package machine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

// parallelOptions mirrors how the core package drives a pair run at the
// exact tier (default fractional warmup plus the generator prologue).
func parallelOptions(t *testing.T, cfg Config, m profile.Model, n uint64) (Options, func() (trace.Source, error)) {
	t.Helper()
	gen, err := synth.New(m, cfg.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Instructions:       n,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		CalibrateIPC:       m.TargetIPC,
	}
	newSource := func() (trace.Source, error) { return synth.New(m, cfg.Geometry()) }
	return opt, newSource
}

// stripParallel clears the decomposition stats so fallback results can
// be compared bit-for-bit against plain sequential runs.
func stripParallel(r *Result) *Result {
	c := *r
	c.Parallel = nil
	return &c
}

// TestParallelSequentialFallbacks pins the exact-fallback edges: K<=1
// delegates to the sequential kernel bit-identically, and a stream too
// short to hold even two minimum windows does the same no matter how
// many workers were requested (K > windows available collapses all the
// way to one).
func TestParallelSequentialFallbacks(t *testing.T) {
	cfg := HaswellScaled()
	m := testModel()
	for _, tc := range []struct {
		name    string
		n       uint64
		workers int
	}{
		{"k0", 200000, 0},
		{"k1", 200000, 1},
		{"short-stream-k8", minParallelWindow*2 - 1, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt, newSource := parallelOptions(t, cfg, m, tc.n)
			par, err := RunParallel(cfg, newSource, opt, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			st := par.Parallel
			if st == nil || st.Workers != 1 || st.Requested != tc.workers {
				t.Fatalf("fallback stats = %+v, want Workers=1 Requested=%d", st, tc.workers)
			}
			src, err := newSource()
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Run(cfg, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			if d := diffResults(seq, stripParallel(par)); d != "" {
				t.Errorf("fallback diverges from sequential run:\n%s", d)
			}
		})
	}
}

// TestParallelWorkerClamp: a worker request larger than the number of
// windows the stream can hold falls back to fewer workers (but more
// than one when the stream allows it). With the geometric split the
// last window is the shortest, so a 96Ki stream holds two windows
// (39.5Ki + 56.5Ki), not three uniform 32Ki ones.
func TestParallelWorkerClamp(t *testing.T) {
	cfg := HaswellScaled()
	m := testModel()
	n := uint64(3 * minParallelWindow)
	opt, newSource := parallelOptions(t, cfg, m, n)
	res, err := RunParallel(cfg, newSource, opt, 64)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Parallel
	if st == nil || st.Workers != 2 || st.Requested != 64 {
		t.Fatalf("stats = %+v, want Workers=2 Requested=64", st)
	}
	if len(st.WindowSeconds) != 2 {
		t.Fatalf("WindowSeconds has %d entries, want 2", len(st.WindowSeconds))
	}
}

// TestParallelRejectsSampling: the two stream-tiling knobs do not
// compose; the combination is an explicit error, and the core package
// mirrors this by normalizing IntraPairWorkers away on non-exact tiers.
func TestParallelRejectsSampling(t *testing.T) {
	cfg := HaswellScaled()
	opt, newSource := parallelOptions(t, cfg, testModel(), 1<<20)
	opt.Sampling = DefaultSampling()
	opt.WarmupFraction = -1
	if _, err := RunParallel(cfg, newSource, opt, 4); err == nil || !strings.Contains(err.Error(), "sampling") {
		t.Fatalf("err = %v, want sampling rejection", err)
	}
}

// TestParallelDeterminism: the window split is a pure function of
// (Instructions, workers) and the merge is ordered, so two parallel
// runs of the same pair at the same K produce bit-identical results —
// only the wall-time stats may differ.
func TestParallelDeterminism(t *testing.T) {
	cfg := HaswellScaled()
	m := testModel()
	run := func() *Result {
		opt, newSource := parallelOptions(t, cfg, m, 1<<20)
		res, err := RunParallel(cfg, newSource, opt, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.IPC != b.IPC || !reflect.DeepEqual(a.Counters, b.Counters) || !reflect.DeepEqual(a.Breakdown, b.Breakdown) {
		t.Error("two parallel runs of the same pair at the same K differ")
	}
	if a.Parallel.Workers != b.Parallel.Workers || a.Parallel.Executors != b.Parallel.Executors {
		t.Errorf("decomposition differs: %+v vs %+v", a.Parallel, b.Parallel)
	}
}

// TestParallelStatsShape checks the attached decomposition stats: the
// requested K is honoured when the stream has room, every window
// reports a positive wall time, and the critical path is their max.
func TestParallelStatsShape(t *testing.T) {
	cfg := HaswellScaled()
	m := testModel()
	opt, newSource := parallelOptions(t, cfg, m, 1<<20)
	res, err := RunParallel(cfg, newSource, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Parallel
	if st == nil {
		t.Fatal("parallel run missing ParallelStats")
	}
	if st.Workers != 4 || st.Requested != 4 || len(st.WindowSeconds) != 4 {
		t.Fatalf("decomposition = %+v, want 4 windows", st)
	}
	if st.Executors < 1 || st.Executors > 4 {
		t.Fatalf("Executors = %d, want in [1, 4]", st.Executors)
	}
	if st.WarmupLen < minParallelWarmup {
		t.Fatalf("WarmupLen = %d, want >= %d", st.WarmupLen, minParallelWarmup)
	}
	worst := 0.0
	for i, s := range st.WindowSeconds {
		if s <= 0 {
			t.Errorf("window %d reported non-positive wall time %v", i, s)
		}
		if s > worst {
			worst = s
		}
	}
	if got := st.CriticalPathSeconds(); got != worst {
		t.Errorf("CriticalPathSeconds = %v, want max window %v", got, worst)
	}
}

// TestParallelEquivalenceK pins the windowed kernel against the
// sequential one at K in {2, 8} on a mid-size stream with loose rails —
// the tight per-family bounds live in TestParallelTolerance. This is
// the test race-kernel runs under -race: it exercises the executor
// pool, the concurrent sources and the merge at both a trivial and a
// saturated worker count while staying fast enough for the race
// detector.
func TestParallelEquivalenceK(t *testing.T) {
	const n = 2 << 20
	cfg := HaswellScaled()
	m := testModel()
	opt, newSource := parallelOptions(t, cfg, m, n)
	src, err := newSource()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(cfg, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 8} {
		par, err := RunParallel(cfg, newSource, opt, k)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if par.Parallel == nil || par.Parallel.Workers != k {
			t.Fatalf("K=%d: stats = %+v", k, par.Parallel)
		}
		var g stats.Gate
		tol := stats.Tolerance{Rel: 0.05, Abs: 1.5}
		g.Check("IPC", par.IPC, seq.IPC, stats.Tolerance{Rel: 0.05})
		g.Check("L1 miss%", par.Counters.CacheMissPct(1), seq.Counters.CacheMissPct(1), tol)
		g.Check("L2 miss%", par.Counters.CacheMissPct(2), seq.Counters.CacheMissPct(2), stats.Tolerance{Rel: 0.05, Abs: 8})
		g.Check("L3 miss%", par.Counters.CacheMissPct(3), seq.Counters.CacheMissPct(3), stats.Tolerance{Rel: 0.05, Abs: 8})
		g.Check("mispredict%", par.Counters.MispredictPct(), seq.Counters.MispredictPct(), tol)
		if !g.OK() {
			t.Errorf("K=%d:\n%s", k, g.Report())
		}
	}
}

// TestParallelTolerance is the accuracy gate for intra-pair
// parallelism, the parallel twin of TestSampledTolerance: on
// 8Mi-instruction streams every headline metric of a K=8 windowed run
// must land within 2% relative of the sequential exact run, or within
// a per-family absolute floor (percentage points) where a metric's
// event population is too rare for a relative bound to be meaningful.
// The floors are sized from the measured boundary-stitching errors
// recorded in DESIGN.md section 15 with headroom — note they are far
// tighter than the sampled tier's: parallel windows cover the whole
// stream, so there is no extrapolation variance, only boundary-
// stitching bias.
func TestParallelTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second tolerance sweep")
	}
	const n = 8 << 20
	cfg := HaswellScaled()
	cases := []struct {
		name               string
		model              profile.Model
		l1, l2, l3, mispFl float64 // absolute floors, percentage points
	}{
		{"testModel", testModel(), 0.3, 1, 1, 0.75},
		{"505.mcf_r", profile.Model{}, 0.3, 1, 1, 0.5},
		{"525.x264_r", profile.Model{}, 0.3, 1, 1, 0.75},
		{"519.lbm_r", profile.Model{}, 0.3, 1, 1, 0.4},
	}
	for _, app := range profile.CPU2017() {
		for i := range cases {
			if cases[i].name == app.Name {
				cases[i].model = app.Expand(profile.Ref)[0].Model
			}
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.model.TargetIPC == 0 {
				t.Fatalf("model %s not found", tc.name)
			}
			opt, newSource := parallelOptions(t, cfg, tc.model, n)
			src, err := newSource()
			if err != nil {
				t.Fatal(err)
			}
			seq, err := Run(cfg, src, opt)
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunParallel(cfg, newSource, opt, 8)
			if err != nil {
				t.Fatal(err)
			}
			if par.Parallel == nil || par.Parallel.Workers != 8 {
				t.Fatalf("decomposition = %+v, want 8 windows", par.Parallel)
			}
			var g stats.Gate
			tol := func(floor float64) stats.Tolerance {
				return stats.Tolerance{Rel: 0.02, Abs: floor}
			}
			g.Check("IPC", par.IPC, seq.IPC, tol(0))
			g.Check("L1 miss%", par.Counters.CacheMissPct(1), seq.Counters.CacheMissPct(1), tol(tc.l1))
			g.Check("L2 miss%", par.Counters.CacheMissPct(2), seq.Counters.CacheMissPct(2), tol(tc.l2))
			g.Check("L3 miss%", par.Counters.CacheMissPct(3), seq.Counters.CacheMissPct(3), tol(tc.l3))
			g.Check("mispredict%", par.Counters.MispredictPct(), seq.Counters.MispredictPct(), tol(tc.mispFl))
			if !g.OK() {
				t.Error(g.Report())
			}
		})
	}
}

// TestParallelWindowAllocs pins the per-worker arena reuse: once a
// core's batch scratch (the packed-address and branch-index arenas) has
// been sized by its first batch, running further windows through it
// allocates nothing.
func TestParallelWindowAllocs(t *testing.T) {
	cfg := HaswellScaled()
	m := testModel()
	gen, err := synth.New(m, cfg.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	c := newCore(cfg, hier)
	if cache.TouchIdempotent(cfg.Hierarchy.L1I.Policy) {
		hier.L1I().EnableFetchMemo()
	}
	if cache.TouchIdempotent(cfg.Hierarchy.L1D.Policy) {
		hier.Cache(cache.L1).EnableFetchMemo()
	}
	bsrc := trace.AsBatch(gen)
	buf := make([]trace.Uop, DefaultBatchSize)
	const window = 64 << 10
	if _, err := c.runWindow(bsrc, buf, window, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(8, func() {
		if _, err := c.runWindow(bsrc, buf, window, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state window loop allocates %.1f objects per window, want 0", allocs)
	}
}
