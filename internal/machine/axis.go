package machine

import (
	"fmt"
	"sort"
)

// This file implements machine-config axis application for the
// design-space sweep subsystem (internal/sweep): an axis names one
// numeric configuration parameter ("l3.size", "l2.ways", "line", ...)
// and a value, and ApplyAxis returns a copy of the configuration with
// that parameter replaced. Axes compose: a sweep applies one axis per
// swept dimension to the same base configuration, then validates the
// resulting point once with Config.Validate.

// axisSetter mutates one configuration parameter in place.
type axisSetter func(*Config, int64) error

// axisParams maps axis parameter names to their setters. Cache levels
// expose size (bytes) and ways; "line" sets the line size of every
// level at once — per-level line sizes are deliberately not exposed
// because the hierarchy models a single line size end to end (mixed
// line sizes would make the inter-level insertion rates physically
// meaningless).
var axisParams = map[string]axisSetter{
	"l1i.size": func(c *Config, v int64) error { c.Hierarchy.L1I.SizeBytes = int(v); return nil },
	"l1d.size": func(c *Config, v int64) error { c.Hierarchy.L1D.SizeBytes = int(v); return nil },
	"l2.size":  func(c *Config, v int64) error { c.Hierarchy.L2.SizeBytes = int(v); return nil },
	"l3.size":  func(c *Config, v int64) error { c.Hierarchy.L3.SizeBytes = int(v); return nil },
	"l1i.ways": func(c *Config, v int64) error { c.Hierarchy.L1I.Ways = int(v); return nil },
	"l1d.ways": func(c *Config, v int64) error { c.Hierarchy.L1D.Ways = int(v); return nil },
	"l2.ways":  func(c *Config, v int64) error { c.Hierarchy.L2.Ways = int(v); return nil },
	"l3.ways":  func(c *Config, v int64) error { c.Hierarchy.L3.Ways = int(v); return nil },
	"line": func(c *Config, v int64) error {
		c.Hierarchy.L1I.LineBytes = int(v)
		c.Hierarchy.L1D.LineBytes = int(v)
		c.Hierarchy.L2.LineBytes = int(v)
		c.Hierarchy.L3.LineBytes = int(v)
		return nil
	},
	"btb.bits":  func(c *Config, v int64) error { c.BTBBits = int(v); return nil },
	"ras.depth": func(c *Config, v int64) error { c.RASDepth = int(v); return nil },
}

// AxisParams returns the supported axis parameter names, sorted.
func AxisParams() []string {
	names := make([]string, 0, len(axisParams))
	for n := range axisParams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ApplyAxis returns cfg with the named parameter set to value. The
// returned configuration is a copy — cfg is never mutated — but is not
// yet validated: a sweep applies every axis of a grid point first and
// validates the point once. Unknown parameters and non-positive values
// are rejected here so the error names the axis, not a derived
// geometry constraint.
func ApplyAxis(cfg Config, param string, value int64) (Config, error) {
	set, ok := axisParams[param]
	if !ok {
		return Config{}, fmt.Errorf("machine: unknown axis parameter %q (supported: %v)", param, AxisParams())
	}
	if value <= 0 {
		return Config{}, fmt.Errorf("machine: axis %s: non-positive value %d", param, value)
	}
	if err := set(&cfg, value); err != nil {
		return Config{}, fmt.Errorf("machine: axis %s: %w", param, err)
	}
	return cfg, nil
}
