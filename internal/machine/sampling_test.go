package machine

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

func TestParseSampling(t *testing.T) {
	def := DefaultSampling()
	good := []struct {
		in   string
		want Sampling
	}{
		{"", Sampling{}},
		{"off", Sampling{}},
		{"OFF", Sampling{}},
		{"none", Sampling{}},
		{"0", Sampling{}},
		{"on", def},
		{"default", Sampling{Period: 262144, DetailLen: 8192, WarmupLen: 8192}},
		{"262144/8192/8192", def},
		{" 1024 / 256 / 128 ", Sampling{Period: 1024, DetailLen: 256, WarmupLen: 128}},
		{"1024/1024/0", Sampling{Period: 1024, DetailLen: 1024}},
	}
	for _, tc := range good {
		got, err := ParseSampling(tc.in)
		if err != nil {
			t.Errorf("ParseSampling(%q): unexpected error %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSampling(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"1024/256",        // two fields
		"1024/256/128/64", // four fields
		"a/b/c",           // not numbers
		"-1/2/3",          // negative
		"0/8192/8192",     // zero period with windows
		"1024/0/0",        // zero detail window
		"8192/8192/4096",  // windows exceed period
		"fastest",         // unknown keyword
	}
	for _, in := range bad {
		if got, err := ParseSampling(in); err == nil {
			t.Errorf("ParseSampling(%q) = %+v, want error", in, got)
		}
	}
}

func TestSamplingValidateAndString(t *testing.T) {
	if err := (Sampling{}).Validate(); err != nil {
		t.Errorf("zero Sampling should validate: %v", err)
	}
	if err := (Sampling{DetailLen: 1}).Validate(); err == nil {
		t.Error("windows without a period should not validate")
	}
	if err := (Sampling{Period: 100, WarmupLen: 10}).Validate(); err == nil {
		t.Error("zero detail window should not validate")
	}
	if err := (Sampling{Period: 100, DetailLen: 60, WarmupLen: 50}).Validate(); err == nil {
		t.Error("windows exceeding the period should not validate")
	}
	if s := (Sampling{}).String(); s != "off" {
		t.Errorf("String() of disabled knob = %q, want off", s)
	}
	if s := DefaultSampling().String(); s != "262144/8192/8192" {
		t.Errorf("String() of default knob = %q", s)
	}
	if got, err := ParseSampling(DefaultSampling().String()); err != nil || got != DefaultSampling() {
		t.Errorf("String/Parse round-trip = %+v, %v", got, err)
	}
}

// samplingRun simulates one model, exact or sampled, mirroring how the
// core package drives sampled characterization (absolute prologue
// warmup, no fractional warmup under sampling).
func samplingRun(t *testing.T, cfg Config, m profile.Model, n uint64, sp Sampling, reference bool) *Result {
	t.Helper()
	gen, err := synth.New(m, cfg.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Instructions:       n,
		WarmupInstructions: gen.Prologue(),
		Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
		CalibrateIPC:       m.TargetIPC,
		Sampling:           sp,
	}
	if sp.Enabled() {
		opt.WarmupFraction = -1
	}
	var res *Result
	if reference {
		res, err = RunReference(cfg, gen, opt)
	} else {
		res, err = Run(cfg, gen, opt)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSampledTolerance is the fidelity gate for the default sampling
// knob: on a 16Mi-instruction stream every headline metric of a sampled
// run must land within 2% relative of the exact run, or — where a
// metric's event population is too thin or too placement-sensitive for
// a relative bound to be meaningful at a ~3% sampled fraction — within
// a per-family absolute floor (percentage points) sized from the
// measured errors in EXPERIMENTS.md with ~1.5-2.5x headroom. IPC gets
// no floor: the 2% relative bound is the headline claim.
//
// The exact side for testModel is the per-uop RunReference kernel; the
// CPU2017 families compare against the batched exact Run, which the
// equivalence suite pins bit-identical to RunReference.
func TestSampledTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second tolerance sweep")
	}
	const n = 16 << 20
	cfg := HaswellScaled()
	cases := []struct {
		name               string
		model              profile.Model
		reference          bool
		l1, l2, l3, mispFl float64 // absolute floors, percentage points
	}{
		{"testModel", testModel(), true, 0.3, 8, 3, 0.75},
		{"505.mcf_r", profile.Model{}, false, 0.3, 2, 2.5, 0.5},
		{"525.x264_r", profile.Model{}, false, 0.3, 4, 2, 0.75},
		{"541.leela_r", profile.Model{}, false, 0.3, 2, 1, 1.0},
		{"519.lbm_r", profile.Model{}, false, 0.3, 14, 11, 0.4},
	}
	for _, app := range profile.CPU2017() {
		for i := range cases {
			if cases[i].name == app.Name {
				cases[i].model = app.Expand(profile.Ref)[0].Model
			}
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.model.TargetIPC == 0 {
				t.Fatalf("model %s not found", tc.name)
			}
			exact := samplingRun(t, cfg, tc.model, n, Sampling{}, tc.reference)
			sampled := samplingRun(t, cfg, tc.model, n, DefaultSampling(), false)
			if sampled.Sampling == nil || sampled.Sampling.Windows == 0 {
				t.Fatal("sampled run reported no windows")
			}
			var g stats.Gate
			tol := func(floor float64) stats.Tolerance {
				return stats.Tolerance{Rel: 0.02, Abs: floor}
			}
			g.Check("IPC", sampled.IPC, exact.IPC, tol(0))
			g.Check("L1 miss%", sampled.Counters.CacheMissPct(1), exact.Counters.CacheMissPct(1), tol(tc.l1))
			g.Check("L2 miss%", sampled.Counters.CacheMissPct(2), exact.Counters.CacheMissPct(2), tol(tc.l2))
			g.Check("L3 miss%", sampled.Counters.CacheMissPct(3), exact.Counters.CacheMissPct(3), tol(tc.l3))
			g.Check("mispredict%", sampled.Counters.MispredictPct(), exact.Counters.MispredictPct(), tol(tc.mispFl))
			if !g.OK() {
				t.Error(g.Report())
			}
		})
	}
}

// TestSampledStats checks the shape of the attached extrapolation-error
// estimate on a branchy, cache-active model: the knob is echoed, the
// window count and sampled fraction match the knob arithmetic, and the
// metrics with dense event populations carry a positive standard-error
// estimate.
func TestSampledStats(t *testing.T) {
	const n = 4 << 20
	cfg := HaswellScaled()
	res := samplingRun(t, cfg, testModel(), n, DefaultSampling(), false)
	st := res.Sampling
	if st == nil {
		t.Fatal("sampled run missing SamplingStats")
	}
	def := DefaultSampling()
	if st.Period != def.Period || st.DetailLen != def.DetailLen || st.WarmupLen != def.WarmupLen {
		t.Errorf("stats echo %d/%d/%d, want %s", st.Period, st.DetailLen, st.WarmupLen, def)
	}
	// 4Mi instructions at one 8Ki window per 256Ki period, minus the
	// settle window's period: at least 10 windows whatever the jitter.
	if st.Windows < 10 || st.Windows > int(n/def.Period) {
		t.Errorf("Windows = %d, want in [10, %d]", st.Windows, n/def.Period)
	}
	if st.SampledFraction <= 0.01 || st.SampledFraction >= 0.1 {
		t.Errorf("SampledFraction = %f, want ~DetailLen/Period", st.SampledFraction)
	}
	if st.IPCRelErr < 0 || st.L1RelErr <= 0 || st.L2RelErr <= 0 || st.L3RelErr <= 0 || st.MispredictRelErr <= 0 {
		t.Errorf("expected positive error estimates on dense metrics, got %+v", st)
	}
	// The estimator must not claim absurd precision or absurd spread on
	// a well-behaved model: these are sanity rails, not tolerances.
	for name, v := range map[string]float64{
		"L1": st.L1RelErr, "Mispredict": st.MispredictRelErr,
	} {
		if v > 0.5 {
			t.Errorf("%sRelErr = %f, implausibly large", name, v)
		}
	}
}

// nextOnly hides every capability beyond Next, forcing the
// sourceBatcher adapter and its drain-based skip fallbacks.
type nextOnly struct{ src trace.Source }

func (s nextOnly) Next(u *trace.Uop) bool { return s.src.Next(u) }

// TestSampledSkipFallbackEquivalence pins the drain fallback to the
// native skip path at the machine level: a sampled run over a source
// that can only emit records bit-matches a sampled run over the native
// skipping generator, because Skip/SkipWarm advance the generator
// exactly as draining it would.
func TestSampledSkipFallbackEquivalence(t *testing.T) {
	const n = 2 << 20
	cfg := HaswellScaled()
	m := testModel()
	run := func(wrap bool) *Result {
		gen, err := synth.New(m, cfg.Geometry())
		if err != nil {
			t.Fatal(err)
		}
		var src trace.Source = gen
		if wrap {
			src = nextOnly{gen}
		}
		res, err := Run(cfg, src, Options{
			Instructions:       n,
			WarmupInstructions: gen.Prologue(),
			WarmupFraction:     -1,
			Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
			CalibrateIPC:       m.TargetIPC,
			Sampling:           DefaultSampling(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	native, drained := run(false), run(true)
	if native.IPC != drained.IPC {
		t.Errorf("IPC differs: native %v, drained %v", native.IPC, drained.IPC)
	}
	if !reflect.DeepEqual(native.Counters, drained.Counters) {
		t.Errorf("counters differ between native skip and drain fallback:\nnative:  %+v\ndrained: %+v",
			native.Counters, drained.Counters)
	}
	if !reflect.DeepEqual(native.Sampling, drained.Sampling) {
		t.Errorf("sampling stats differ: %+v vs %+v", native.Sampling, drained.Sampling)
	}
}

// TestSampledDeterminism: the jittered window placement comes from a
// fixed-seed stream, so two sampled runs of the same pair are
// bit-identical.
func TestSampledDeterminism(t *testing.T) {
	const n = 2 << 20
	cfg := HaswellScaled()
	a := samplingRun(t, cfg, testModel(), n, DefaultSampling(), false)
	b := samplingRun(t, cfg, testModel(), n, DefaultSampling(), false)
	if a.IPC != b.IPC || !reflect.DeepEqual(a.Counters, b.Counters) || !reflect.DeepEqual(a.Sampling, b.Sampling) {
		t.Error("two sampled runs of the same pair differ")
	}
}

// TestSampledShortStreamExact: a stream under two periods falls back to
// exact simulation — bit-identical counters to a plain exact run — and
// says so in the stats.
func TestSampledShortStreamExact(t *testing.T) {
	const n = 300_000 // < 2 * DefaultSampling().Period
	cfg := HaswellScaled()
	m := testModel()
	run := func(sp Sampling) *Result {
		gen, err := synth.New(m, cfg.Geometry())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, gen, Options{
			Instructions:       n,
			WarmupInstructions: gen.Prologue(),
			WarmupFraction:     -1, // identical warmup on both sides
			Workload:           pipeline.Workload{ILP: 2, MLP: m.MLP},
			CalibrateIPC:       m.TargetIPC,
			Sampling:           sp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exact, sampled := run(Sampling{}), run(DefaultSampling())
	st := sampled.Sampling
	if st == nil || st.Windows != 0 || st.SampledFraction != 1 {
		t.Fatalf("short stream should report exact fallback, got %+v", st)
	}
	if sampled.IPC != exact.IPC || !reflect.DeepEqual(sampled.Counters, exact.Counters) {
		t.Error("short-stream sampled run is not bit-identical to the exact run")
	}
}

// TestSamplingRejected: the reference and shared-L3 kernels refuse the
// knob, and Run refuses malformed knobs.
func TestSamplingRejected(t *testing.T) {
	cfg := HaswellScaled()
	m := testModel()
	gen, err := synth.New(m, cfg.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Instructions: 1000, Sampling: DefaultSampling()}
	if _, err := RunReference(cfg, gen, opt); err == nil || !strings.Contains(err.Error(), "sampling") {
		t.Errorf("RunReference with sampling: err = %v, want sampling rejection", err)
	}
	if _, err := RunShared(cfg, []trace.Source{gen}, opt); err == nil || !strings.Contains(err.Error(), "sampling") {
		t.Errorf("RunShared with sampling: err = %v, want sampling rejection", err)
	}
	bad := opt
	bad.Sampling = Sampling{Period: 100, DetailLen: 200}
	if _, err := Run(cfg, gen, bad); err == nil {
		t.Error("Run accepted an invalid sampling knob")
	}
}
