package machine

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// sharedQuantum is the round-robin scheduling quantum of a shared-L3
// run, in instructions: each core advances this far through the batched
// kernel before the next core runs. It approximates fine-grained
// co-execution while keeping whole batches on one core's state; like
// BatchSize it is a fixed model constant, but unlike BatchSize it IS
// observable in the results (it sets the shared-level interleaving), so
// changing it requires bumping the rate key version in core.
const sharedQuantum = 1024

// SharedResult is the outcome of a multi-core shared-L3 run.
type SharedResult struct {
	// PerCore holds each stream's individual result.
	PerCore []*Result
	// AggregateIPC is total instructions over the slowest core's cycles —
	// the throughput view of a SPECrate-style run.
	AggregateIPC float64
	// SharedL3Misses and SharedL3MPKI describe the shared level itself:
	// demand misses summed over all cores, and the same per thousand
	// simulated instructions (the contention scaling-curve metric).
	SharedL3Misses uint64
	SharedL3MPKI   float64
	// BackInvalidations counts private-cache lines invalidated because a
	// shared-L3 eviction displaced their line (inclusive back-
	// invalidation accounting), over the measured window.
	BackInvalidations uint64
}

// RunShared simulates several uop streams on identical cores that share a
// single L3 cache, interleaving round-robin at sharedQuantum granularity
// through the batched kernel. The L3 is inclusive: evicting a shared
// line back-invalidates every core's private copy, and the accounting is
// reported on the result. It models the paper's multi-threaded SPECspeed
// runs and the rate-mode contention scenarios.
func RunShared(cfg Config, srcs []trace.Source, opt Options) (*SharedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("machine: no streams")
	}
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("machine: zero-length run")
	}
	if opt.Sampling.Enabled() {
		// Skipping one stream would still age the shared L3 through the
		// others; per-stream systematic sampling is not meaningful here.
		return nil, fmt.Errorf("machine: sampling is not supported for shared-L3 runs")
	}
	l3 := cache.New(cfg.Hierarchy.L3)
	n := len(srcs)
	cores := make([]*core, n)
	hiers := make([]*cache.Hierarchy, n)
	bsrcs := make([]trace.BatchSource, n)
	for i := range cores {
		h := cache.NewShared(cfg.Hierarchy, l3)
		c := newCore(cfg, h)
		// A shared-L3 eviction can back-invalidate a privately cached
		// line between any two accesses, so the hit-armed soundness
		// argument behind the register dedups and set memos does not
		// hold here: a deduplicated "guaranteed hit" could have been
		// invalidated since it was armed. Run with both dedups off and
		// the memos never enabled; the batched sweeps still carry the
		// run.
		c.fetchDedup, c.dataDedup = false, false
		cores[i] = c
		hiers[i] = h
		bsrcs[i] = trace.AsBatch(srcs[i])
	}
	var backInv uint64
	l3.OnEvict = func(addr uint64) {
		for _, h := range hiers {
			if h.Cache(cache.L1).Invalidate(addr) {
				backInv++
			}
			if h.Cache(cache.L2).Invalidate(addr) {
				backInv++
			}
			if cfg.UnifiedCodePath && h.L1I().Invalidate(addr) {
				backInv++
			}
		}
	}
	bs := opt.BatchSize
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	buf := make([]trace.Uop, bs)

	// roundRobin advances every core through `total` instructions, one
	// quantum per core per round. In the measured phase each round feeds
	// the rate window metrics (one observation per round, never per uop).
	roundRobin := func(total uint64, stage string, measured bool) error {
		done := uint64(0)
		for done < total {
			q := min64(sharedQuantum, total-done)
			roundStart := time.Now()
			for ci, c := range cores {
				got, err := c.runWindow(bsrcs[ci], buf, q, opt.Context)
				if err != nil {
					return err
				}
				if got < q {
					return fmt.Errorf("machine: stream %d exhausted during %s after %d instructions", ci, stage, done+got)
				}
			}
			if measured {
				metWindowSeconds["rate"].Observe(time.Since(roundStart).Seconds())
				metPairWindows["rate"].Add(uint64(n))
			}
			done += q
		}
		return nil
	}

	if warm := warmupLength(opt); warm > 0 {
		warmStart := time.Now()
		if err := roundRobin(warm, "warmup", false); err != nil {
			return nil, err
		}
		for _, c := range cores {
			c.resetStats()
		}
		backInv = 0
		recordStage(opt.Span, "warmup", time.Since(warmStart))
	}
	simStart := time.Now()
	if err := roundRobin(opt.Instructions, "measurement", true); err != nil {
		return nil, err
	}
	recordStage(opt.Span, "simulate", time.Since(simStart))
	opt.Span.SetAttr("rate_copies", n)

	out := &SharedResult{
		PerCore:           make([]*Result, n),
		SharedL3Misses:    l3.Stats().Misses,
		BackInvalidations: backInv,
	}
	maxCycles := 0.0
	totalInstr := uint64(0)
	for i, c := range cores {
		r, err := c.finish(cfg, opt, c.snap())
		if err != nil {
			return nil, err
		}
		out.PerCore[i] = r
		if t := r.Breakdown.Total(); t > maxCycles {
			maxCycles = t
		}
		totalInstr += r.Events.Instructions
	}
	if maxCycles > 0 {
		out.AggregateIPC = float64(totalInstr) / maxCycles
	}
	if totalInstr > 0 {
		out.SharedL3MPKI = 1000 * float64(out.SharedL3Misses) / float64(totalInstr)
	}
	return out, nil
}

// WorkloadFromModel maps the profile-level ILP/MLP knobs into the pipeline
// model's Workload. The ILP field is only a starting point when the run
// calibrates to a target IPC.
func WorkloadFromModel(mlp float64) pipeline.Workload {
	return pipeline.Workload{ILP: 2, MLP: mlp}
}
