package machine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// SharedResult is the outcome of a multi-core shared-L3 run.
type SharedResult struct {
	// PerCore holds each stream's individual result.
	PerCore []*Result
	// AggregateIPC is total instructions over the slowest core's cycles —
	// the throughput view of a SPECspeed OpenMP run.
	AggregateIPC float64
}

// RunShared simulates several uop streams on identical cores that share a
// single L3 cache, interleaving round-robin at instruction granularity.
// It models the paper's multi-threaded SPECspeed runs and the shared-L3
// contention ablation.
func RunShared(cfg Config, srcs []trace.Source, opt Options) (*SharedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("machine: no streams")
	}
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("machine: zero-length run")
	}
	if opt.Sampling.Enabled() {
		// Skipping one stream would still age the shared L3 through the
		// others; per-stream systematic sampling is not meaningful here.
		return nil, fmt.Errorf("machine: sampling is not supported for shared-L3 runs")
	}
	l3 := cache.New(cfg.Hierarchy.L3)
	cores := make([]*core, len(srcs))
	for i := range cores {
		cores[i] = newCore(cfg, cache.NewShared(cfg.Hierarchy, l3))
	}
	var u trace.Uop
	if warm := warmupLength(opt); warm > 0 {
		for i := uint64(0); i < warm; i++ {
			for ci, c := range cores {
				if !c.step(srcs[ci], &u) {
					return nil, fmt.Errorf("machine: stream %d exhausted during warmup", ci)
				}
			}
		}
		for _, c := range cores {
			c.resetStats()
		}
	}
	for i := uint64(0); i < opt.Instructions; i++ {
		for ci, c := range cores {
			if !c.step(srcs[ci], &u) {
				return nil, fmt.Errorf("machine: stream %d exhausted after %d instructions", ci, i)
			}
		}
	}
	out := &SharedResult{PerCore: make([]*Result, len(cores))}
	maxCycles := 0.0
	totalInstr := uint64(0)
	for i, c := range cores {
		r, err := c.finish(cfg, opt, c.snap())
		if err != nil {
			return nil, err
		}
		out.PerCore[i] = r
		if t := r.Breakdown.Total(); t > maxCycles {
			maxCycles = t
		}
		totalInstr += r.Events.Instructions
	}
	if maxCycles > 0 {
		out.AggregateIPC = float64(totalInstr) / maxCycles
	}
	return out, nil
}

// WorkloadFromModel maps the profile-level ILP/MLP knobs into the pipeline
// model's Workload. The ILP field is only a starting point when the run
// calibrates to a target IPC.
func WorkloadFromModel(mlp float64) pipeline.Workload {
	return pipeline.Workload{ILP: 2, MLP: mlp}
}
