package machine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Sampling configures SMARTS-style systematic sampling of a run. When
// enabled (Period > 0), the measured stream is processed as repeating
// periods of Period instructions: the stream is fast-forwarded through
// the source's trace.Skipper capability (or drained, for sources that
// cannot skip), then WarmupLen instructions are simulated to re-warm the
// caches, TLB and branch predictor with their counters discarded, then
// DetailLen instructions are simulated in full detail and counted. The
// counted windows are scaled back up to the full stream length, and the
// inter-window variance yields a per-metric extrapolation-error estimate
// (Result.Sampling).
//
// Sampling is a fidelity knob, not a free lunch: results are an
// estimate of the exact run, not bit-identical to it. The tolerance
// tests bound the error at the default knob to <=2% relative on the
// headline rates (with a small absolute floor where a rate's event
// population is too rare for a relative bound to be meaningful), and
// sampled results are keyed separately from exact ones in every cache
// tier. Workflows that require exact results — golden-table
// regeneration, equivalence testing — must not enable it.
type Sampling struct {
	// Period is the sampling period in instructions; 0 disables sampling.
	Period uint64
	// DetailLen is the counted detailed-simulation window per period.
	DetailLen uint64
	// WarmupLen is the uncounted microarchitectural re-warm window
	// simulated immediately before each detailed window.
	WarmupLen uint64
}

// DefaultSampling returns the default fidelity knob: an 8Ki-instruction
// detailed window preceded by an 8Ki re-warm window every 256Ki
// instructions (~3% counted), tuned (EXPERIMENTS.md) so the headline
// metrics stay within the tolerance-test bounds while the skipped ~94%
// of the stream buys a >=3x wall-clock speedup on multi-million
// instruction runs. Streams shorter than two periods (512Ki) fall back
// to exact simulation — sampling is a long-run knob.
func DefaultSampling() Sampling {
	return Sampling{Period: 262144, DetailLen: 8192, WarmupLen: 8192}
}

// ParseSampling parses the sampling-knob syntax shared by the cmd tools
// and the server API: "off" (or "", "none", "0") disables sampling, "on"
// or "default" selects DefaultSampling, and "PERIOD/DETAIL/WARMUP"
// (instruction counts, e.g. "262144/8192/8192") sets the knob
// explicitly.
func ParseSampling(s string) (Sampling, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off", "none", "0":
		return Sampling{}, nil
	case "on", "default":
		return DefaultSampling(), nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return Sampling{}, fmt.Errorf("bad sampling %q: want off, default, or PERIOD/DETAIL/WARMUP", s)
	}
	vals := make([]uint64, 3)
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return Sampling{}, fmt.Errorf("bad sampling %q: %v", s, err)
		}
		vals[i] = v
	}
	knob := Sampling{Period: vals[0], DetailLen: vals[1], WarmupLen: vals[2]}
	if err := knob.Validate(); err != nil {
		return Sampling{}, err
	}
	if !knob.Enabled() {
		return Sampling{}, fmt.Errorf("bad sampling %q: zero period (use \"off\" to disable)", s)
	}
	return knob, nil
}

// warmTailFactor scales the functionally-warmed tail of each sampling
// gap, in units of WarmupLen. Warming the whole gap keeps the predictor
// exact but costs ~30-40% extra on the fast-forward path; the tables'
// hot entries retrain within a few thousand branches, so a bounded tail
// recovers nearly all of the accuracy at a fraction of the cost (see
// EXPERIMENTS.md for the sweep). A variable only so the tuning
// experiment can sweep it; not part of the public knob.
var warmTailFactor = uint64(8)

// ageCoeff and agePow scale the gap-turnover aging of the big caches
// (L2, L3; see runSampled) as alpha = ageCoeff * missRate^agePow of the
// cache's observed fill rate. One gap fill displaces one victim only
// when the victim would not have been re-touched during the gap; the
// thrashier the cache, the larger the share of its content that is dead
// on arrival, and the power law is the simplest shape that matched the
// per-family bias sweep (EXPERIMENTS.md). The L1s age at the full fill
// rate — their reuse horizon is far shorter than any practical gap, so
// their turnover really is complete. Variables only so the tuning
// experiment can sweep them; not part of the public knob.
var (
	ageCoeff = 0.4
	agePow   = 1.5
)

// jitterSeed seeds the fixed splitmix64 stream that jitters each
// period's window offset (see runSampled). A package variable only so
// the tuning experiment can re-draw the placement and separate
// window-placement variance from model bias; sampled runs are
// bit-reproducible because it is never varied at runtime.
var jitterSeed = uint64(0x9E3779B97F4A7C15)

// Enabled reports whether the knob turns sampling on.
func (s Sampling) Enabled() bool { return s.Period > 0 }

// Validate reports knob errors. The zero value (disabled) is valid.
func (s Sampling) Validate() error {
	if s.Period == 0 {
		if s.DetailLen != 0 || s.WarmupLen != 0 {
			return fmt.Errorf("machine: sampling windows set but period is zero")
		}
		return nil
	}
	if s.DetailLen == 0 {
		return fmt.Errorf("machine: sampling needs a positive detail window")
	}
	if s.DetailLen+s.WarmupLen > s.Period {
		return fmt.Errorf("machine: sampling windows (%d detail + %d warmup) exceed period %d",
			s.DetailLen, s.WarmupLen, s.Period)
	}
	return nil
}

// String renders the knob in the "period/detail/warmup" form the
// -sampling CLI flags accept.
func (s Sampling) String() string {
	if !s.Enabled() {
		return "off"
	}
	return fmt.Sprintf("%d/%d/%d", s.Period, s.DetailLen, s.WarmupLen)
}

// SamplingStats records how a sampled run was measured and how far its
// extrapolated metrics are expected to stray from an exact run. The
// error fields are relative standard errors estimated from the
// variance of the per-window metric values — 0 means "not estimable"
// (fewer than two windows carried the metric's events), not certainty.
type SamplingStats struct {
	// Period, DetailLen, WarmupLen echo the knob the run used.
	Period, DetailLen, WarmupLen uint64
	// Windows is the number of counted detailed windows. Zero means the
	// run was too short to sample (under two periods) and ran exact.
	Windows int
	// SampledFraction is the counted fraction of the measured stream.
	SampledFraction float64
	// Relative standard errors of the headline metrics.
	IPCRelErr, L1RelErr, L2RelErr, L3RelErr, MispredictRelErr float64
}

// counterSnap is a cumulative snapshot of every statistic finish derives
// counters from. The sampled run loop snapshots around each detailed
// window and aggregates the diffs; the exact paths snapshot once at the
// end.
type counterSnap struct {
	kinds       [trace.NumKinds]uint64
	loadLevel   [4]uint64
	dataLevel   [4]uint64
	fetchMisses uint64
	walks       uint64
	branch      branch.Stats
}

// snap captures the core's current cumulative statistics.
func (c *core) snap() counterSnap {
	return counterSnap{
		kinds:       c.kinds,
		loadLevel:   c.loadLevel,
		dataLevel:   c.dataLevel,
		fetchMisses: c.hier.L1I().Stats().Misses,
		walks:       c.tlb.Walks(),
		branch:      c.unit.Stats(),
	}
}

// sub returns the statistics accumulated between prev and s.
func (s counterSnap) sub(prev counterSnap) counterSnap {
	d := s
	for i := range d.kinds {
		d.kinds[i] -= prev.kinds[i]
	}
	for i := range d.loadLevel {
		d.loadLevel[i] -= prev.loadLevel[i]
		d.dataLevel[i] -= prev.dataLevel[i]
	}
	d.fetchMisses -= prev.fetchMisses
	d.walks -= prev.walks
	for i := range d.branch.Executed {
		d.branch.Executed[i] -= prev.branch.Executed[i]
		d.branch.Mispredicted[i] -= prev.branch.Mispredicted[i]
	}
	return d
}

// add accumulates w into s.
func (s *counterSnap) add(w counterSnap) {
	for i := range s.kinds {
		s.kinds[i] += w.kinds[i]
	}
	for i := range s.loadLevel {
		s.loadLevel[i] += w.loadLevel[i]
		s.dataLevel[i] += w.dataLevel[i]
	}
	s.fetchMisses += w.fetchMisses
	s.walks += w.walks
	for i := range s.branch.Executed {
		s.branch.Executed[i] += w.branch.Executed[i]
		s.branch.Mispredicted[i] += w.branch.Mispredicted[i]
	}
}

// instructions returns the snapshot's total instruction count.
func (s counterSnap) instructions() uint64 {
	n := uint64(0)
	for _, k := range s.kinds {
		n += k
	}
	return n
}

// scaled extrapolates every count by ratio (rounding to nearest), the
// step that stretches the sampled windows back over the full stream.
func (s counterSnap) scaled(ratio float64) counterSnap {
	up := func(v uint64) uint64 { return uint64(float64(v)*ratio + 0.5) }
	d := s
	for i := range d.kinds {
		d.kinds[i] = up(d.kinds[i])
	}
	for i := range d.loadLevel {
		d.loadLevel[i] = up(d.loadLevel[i])
		d.dataLevel[i] = up(d.dataLevel[i])
	}
	d.fetchMisses = up(d.fetchMisses)
	d.walks = up(d.walks)
	for i := range d.branch.Executed {
		d.branch.Executed[i] = up(d.branch.Executed[i])
		d.branch.Mispredicted[i] = up(d.branch.Mispredicted[i])
	}
	return d
}

// runSampled is the systematic-sampling run loop. The core arrives
// post-warmup; a settle window is then simulated in full with its
// counters discarded (the global warmup under sampling is typically
// just the generator prologue, a branch-free load sweep, so recency
// and predictor state still need real stream behaviour before the
// first counted window). Every subsequent period is skip -> warm ->
// detail. During a skip caches and TLB are frozen — nothing ages or
// evicts, which stays near-correct because a gap turns over only a few
// percent of L2/L3 content — while branch state is kept functionally
// warm (trace.SkipRecordsWarm feeding Unit.Warm): predictor state is
// phase-sensitive, and freezing it would bias every counted window's
// mispredict rate upward. The warm window then re-aligns the
// small-horizon state (L1, TLB recency), and the dominant residual
// error is statistical, which the inter-window variance estimate
// captures.
func (c *core) runSampled(cfg Config, src trace.BatchSource, buf []trace.Uop, opt Options) (*Result, error) {
	sp := opt.Sampling
	total := opt.Instructions
	stats := &SamplingStats{Period: sp.Period, DetailLen: sp.DetailLen, WarmupLen: sp.WarmupLen}

	// A stream under two periods has no room for a settle window plus a
	// counted window; simulate it exactly.
	if total < 2*sp.Period {
		simStart := time.Now()
		if err := c.mustRun(src, buf, total, opt); err != nil {
			return nil, err
		}
		recordStage(opt.Span, "simulate", time.Since(simStart))
		stats.SampledFraction = 1
		res, err := c.finish(cfg, opt, c.snap())
		if err != nil {
			return nil, err
		}
		res.Sampling = stats
		return res, nil
	}

	// The settle window needs to cover the small-horizon state (L1 and
	// the predictor's hot entries); the big structures fill cumulatively
	// across the whole run — detailed windows insert, skips freeze — so
	// stretching the settle to a full period would buy accuracy nothing
	// and cost wall-clock on large-period knobs.
	settle := max64(2*sp.WarmupLen, 8192)
	if settle > sp.Period {
		settle = sp.Period
	}
	// Cache aging across gaps: a frozen cache keeps the lines the skipped
	// stream would have displaced, and a cyclic reference stream re-hits
	// them in the next counted window, biasing its miss rate low (most
	// visibly at L2/L3 on large-footprint profiles, where a gap can turn
	// over most of the cache). Before each gap's warm tail we therefore
	// invalidate as many replacement victims as the gap would have filled,
	// estimated from the fill rate observed while simulating. The settle
	// window seeds the estimate; afterwards only detailed windows feed it
	// — post-gap warmup windows refill the small caches at far above the
	// steady-state rate and would inflate it.
	ageCaches := [4]*cache.Cache{c.hier.L1I(), c.hier.Cache(cache.L1), c.hier.Cache(cache.L2), c.hier.Cache(cache.L3)}
	var fillAcc [4]uint64
	for i, ch := range ageCaches {
		fillAcc[i] = ch.Fills()
	}
	// Stage accounting: the settle window and per-period re-warm windows
	// accumulate into warmDur, skip work into ffDur, counted windows
	// into detailDur. Timing happens a handful of times per period — at
	// window boundaries, never per uop — so the kernel loop is unchanged.
	var ffDur, warmDur, detailDur time.Duration
	settleStart := time.Now()
	if err := c.mustRun(src, buf, settle, opt); err != nil {
		return nil, err
	}
	warmDur += time.Since(settleStart)
	for i, ch := range ageCaches {
		fillAcc[i] = ch.Fills() - fillAcc[i]
	}
	fillInstr := settle
	done := settle
	skipLen := sp.Period - sp.DetailLen - sp.WarmupLen
	warm := c.unit.Warm
	warmTail := sp.WarmupLen * warmTailFactor

	// The warm+detail block lands at a jittered offset within each
	// period rather than a fixed phase. The synthetic streams have their
	// own periodicities (the round-robin reuse pools cycle at working-set
	// rates commensurate with practical sampling periods), and strict
	// systematic placement aliases with them — the counted windows then
	// observe one phase of the cycle and the extrapolation is biased no
	// matter how long the warmup is. The offset sequence is a fixed-seed
	// splitmix64 stream, so sampled runs stay bit-reproducible.
	jitter := jitterSeed
	var windows []counterSnap
	var agg counterSnap
	detailed := uint64(0)
	carry := uint64(0)
	for done < total {
		jitter += 0x9E3779B97F4A7C15
		z := jitter
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		pre := uint64(0)
		if skipLen > 0 {
			// Multiply-shift draw of the pre-block skip in [0, skipLen].
			if skipLen < 1<<32 {
				pre = (z >> 32) * (skipLen + 1) >> 32
			} else {
				pre = z % (skipLen + 1)
			}
		}
		// The gap before this period's warm+detail block is the tail of
		// the previous period plus this period's jittered offset. Only its
		// last warmTail instructions keep the predictor functionally warm;
		// the head is a plain skip — predictor state written further back
		// than that horizon is either refreshed by the tail anyway (hot
		// sites) or too cold-tail to surface in a detailed window.
		gap := carry + pre
		carry = skipLen - pre
		rem := total - done
		if s := min64(gap, rem); s > 0 {
			ffStart := time.Now()
			for i, ch := range ageCaches {
				alpha := 1.0
				if i >= 2 {
					mr := ch.Stats().MissRate()
					alpha = ageCoeff * math.Pow(mr, agePow)
				}
				ch.Age(int(alpha * float64(fillAcc[i]) / float64(fillInstr) * float64(s)))
			}
			skipped := uint64(0)
			if tail := min64(warmTail, s); tail < s {
				skipped = trace.SkipRecords(src, buf, s-tail)
				if skipped == s-tail {
					skipped += trace.SkipRecordsWarm(src, buf, tail, warm)
				}
			} else {
				skipped = trace.SkipRecordsWarm(src, buf, s, warm)
			}
			if skipped < s {
				return nil, fmt.Errorf("machine: source exhausted after %d instructions", done+skipped)
			}
			ffDur += time.Since(ffStart)
			done += s
			rem -= s
		}
		if w := min64(sp.WarmupLen, rem); w > 0 {
			warmStart := time.Now()
			if err := c.mustRun(src, buf, w, opt); err != nil {
				return nil, err
			}
			warmDur += time.Since(warmStart)
			done += w
			rem -= w
		}
		d := min64(sp.DetailLen, rem)
		if d > 0 {
			detailStart := time.Now()
			var f0 [4]uint64
			for i, ch := range ageCaches {
				f0[i] = ch.Fills()
			}
			before := c.snap()
			if err := c.mustRun(src, buf, d, opt); err != nil {
				return nil, err
			}
			done += d
			rem -= d
			win := c.snap().sub(before)
			windows = append(windows, win)
			agg.add(win)
			detailed += d
			winDur := time.Since(detailStart)
			detailDur += winDur
			metWindowSeconds["sampled"].ObserveDuration(winDur)
			for i, ch := range ageCaches {
				fillAcc[i] += ch.Fills() - f0[i]
			}
			fillInstr += d
		}
	}
	recordStage(opt.Span, "fast-forward", ffDur)
	recordStage(opt.Span, "warmup", warmDur)
	recordStage(opt.Span, "detail", detailDur)
	metPairWindows["sampled"].Add(uint64(len(windows)))
	opt.Span.SetAttr("windows", len(windows))
	if detailed == 0 {
		// Unreachable once total >= 2*Period and DetailLen > 0, but a
		// zero division would be silent garbage; fail loudly instead.
		return nil, fmt.Errorf("machine: sampling produced no detailed windows")
	}

	scaled := agg.scaled(float64(total) / float64(detailed))
	res, err := c.finish(cfg, opt, scaled)
	if err != nil {
		return nil, err
	}
	stats.Windows = len(windows)
	stats.SampledFraction = float64(detailed) / float64(total)
	w := opt.Workload
	w.ILP = res.ILP
	estimateErrors(stats, cfg, w, windows)
	res.Sampling = stats
	return res, nil
}

// mustRun simulates exactly n instructions, converting a short read into
// the same exhaustion error the exact path reports.
func (c *core) mustRun(src trace.BatchSource, buf []trace.Uop, n uint64, opt Options) error {
	done, err := c.runWindow(src, buf, n, opt.Context)
	if err != nil {
		return err
	}
	if done < n {
		return fmt.Errorf("machine: source exhausted after %d instructions", done)
	}
	return nil
}

// estimateErrors fills the per-metric relative standard errors from the
// spread of the per-window metric values: for k windows the scaled
// estimate is (up to rounding) the mean of the window values, so its
// standard error is std/sqrt(k), reported relative to the mean. Windows
// without the metric's events are excluded; a metric carried by fewer
// than two windows reports 0 (not estimable).
func estimateErrors(stats *SamplingStats, cfg Config, w pipeline.Workload, windows []counterSnap) {
	var ipc, l1, l2, l3, misp []float64
	for i := range windows {
		win := &windows[i]
		n := win.instructions()
		if n > 0 {
			ev := windowEvents(win)
			if cyc := pipeline.Cycles(cfg.Pipeline, w, ev).Total(); cyc > 0 {
				ipc = append(ipc, float64(n)/cyc)
			}
		}
		hitL2, hitL3, hitMem := win.loadLevel[cache.HitL2], win.loadLevel[cache.HitL3], win.loadLevel[cache.HitMemory]
		l1Miss := hitL2 + hitL3 + hitMem
		l1 = appendRate(l1, l1Miss, win.loadLevel[cache.HitL1]+l1Miss)
		l2 = appendRate(l2, hitL3+hitMem, l1Miss)
		l3 = appendRate(l3, hitMem, hitL3+hitMem)
		exec, mp := win.branch.Total()
		misp = appendRate(misp, mp, exec)
	}
	stats.IPCRelErr = relStdErr(ipc)
	stats.L1RelErr = relStdErr(l1)
	stats.L2RelErr = relStdErr(l2)
	stats.L3RelErr = relStdErr(l3)
	stats.MispredictRelErr = relStdErr(misp)
}

// windowEvents converts one window snapshot into pipeline-model inputs.
func windowEvents(s *counterSnap) pipeline.Events {
	return pipeline.Events{
		Instructions: s.instructions(),
		L2Hits:       s.dataLevel[cache.HitL2],
		L3Hits:       s.dataLevel[cache.HitL3],
		MemAccesses:  s.dataLevel[cache.HitMemory],
		FetchMisses:  s.fetchMisses,
		Walks:        s.walks,
		Mispredicts: func() uint64 {
			_, m := s.branch.Total()
			return m
		}(),
	}
}

func appendRate(dst []float64, num, den uint64) []float64 {
	if den == 0 {
		return dst
	}
	return append(dst, float64(num)/float64(den))
}

// relStdErr returns std(vals)/sqrt(len)/mean(vals), or 0 when that is
// not estimable (fewer than two values, or a zero mean).
func relStdErr(vals []float64) float64 {
	k := len(vals)
	if k < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(k)
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(k-1))
	return std / math.Sqrt(float64(k)) / mean
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
