// Package machine assembles the cache, branch, TLB, footprint and pipeline
// models into a simulated core and runs uop streams through it, producing
// perf-style counter snapshots.
//
// Two machine configurations matter in this project:
//
//   - Haswell() mirrors the paper's Xeon E5-2650L v3 exactly (30 MB L3),
//     for component-level studies and ablations.
//   - HaswellScaled() is the characterization workhorse: identical L1/L2
//     but a 2 MB L3 slice, so that a few hundred thousand simulated
//     instructions can exercise the full reuse-distance range that a
//     multi-billion-instruction SPEC run exercises on the real 30 MB part
//     (a 1:15 capacity scale model; see DESIGN.md).
package machine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// Per-stage wall-time histograms, one observation per run and stage.
// The timing happens at window boundaries only (a window is thousands
// of instructions), so the kernel's inner loop is untouched: zero
// added allocations and no per-uop work. "simulate" is the exact
// path's measured window; sampled runs split into fast-forward (skip
// work between windows), warmup (settle plus per-period re-warm) and
// detail (the counted windows).
var metStageSeconds = map[string]*obs.Histogram{
	"simulate":     obs.Default().Histogram("speckit_stage_seconds", "Wall time per simulation stage, accumulated over one run.", obs.LatencyBuckets, "stage", "simulate"),
	"fast-forward": obs.Default().Histogram("speckit_stage_seconds", "", obs.LatencyBuckets, "stage", "fast-forward"),
	"warmup":       obs.Default().Histogram("speckit_stage_seconds", "", obs.LatencyBuckets, "stage", "warmup"),
	"detail":       obs.Default().Histogram("speckit_stage_seconds", "", obs.LatencyBuckets, "stage", "detail"),
}

// Window-level instrumentation, shared by the two stream-tiling run
// modes: "sampled" counts the periodic detail windows of a sampled run,
// "parallel" the concurrently simulated sub-windows of a RunParallel
// run. Observations happen once per window (thousands of instructions),
// never per uop, and are mirrored into specserved's expvar snapshot.
var metPairWindows = map[string]*obs.Counter{
	"sampled":  obs.Default().Counter("speckit_pair_windows_total", "Detailed windows simulated, by windowing source (sampled periods vs parallel workers).", "source", "sampled"),
	"parallel": obs.Default().Counter("speckit_pair_windows_total", "", "source", "parallel"),
	"rate":     obs.Default().Counter("speckit_pair_windows_total", "", "source", "rate"),
}
var metWindowSeconds = map[string]*obs.Histogram{
	"sampled":  obs.Default().Histogram("speckit_pair_window_seconds", "Wall time per detailed window, by windowing source.", obs.LatencyBuckets, "source", "sampled"),
	"parallel": obs.Default().Histogram("speckit_pair_window_seconds", "", obs.LatencyBuckets, "source", "parallel"),
	"rate":     obs.Default().Histogram("speckit_pair_window_seconds", "", obs.LatencyBuckets, "source", "rate"),
}

// Config describes a simulated machine.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// Hierarchy is the cache stack configuration.
	Hierarchy cache.HierarchyConfig
	// NewPredictor constructs the branch direction predictor; nil means
	// gshare(14,12).
	NewPredictor func() branch.Predictor
	// BTBBits and RASDepth size the branch target structures.
	BTBBits, RASDepth int
	// Pipeline holds the interval-model timing parameters.
	Pipeline pipeline.Params
	// ClockHz is the core frequency (execution-time conversion).
	ClockHz float64
	// UnifiedCodePath routes L1I misses into L2/L3 (as real Haswell
	// does). The scaled characterization machine disables it so that the
	// data-side insertion rates seen by L2/L3 are exactly the generator's
	// (the paper's L2/L3 miss rates are load-specific counters anyway).
	UnifiedCodePath bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Hierarchy.Validate(); err != nil {
		return err
	}
	if err := c.Pipeline.Validate(); err != nil {
		return err
	}
	if c.BTBBits <= 0 || c.BTBBits > 24 || c.RASDepth <= 0 {
		return fmt.Errorf("machine %q: bad branch structure sizes", c.Name)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("machine %q: non-positive clock", c.Name)
	}
	return nil
}

// kernelDigest versions the simulation kernel itself inside the
// configuration fingerprint. Bump it whenever a kernel change could alter
// any Result bit for some configuration, so the campaign scheduler's
// memoizing cache can never return results computed by an older kernel
// variant. Options.BatchSize is deliberately NOT part of any cache key:
// the equivalence tests prove results are batch-size independent.
// Options.Sampling, by contrast, IS part of every cache key (core's
// campaign key appends the knob when enabled) because sampled results
// are estimates, never bit-identical to exact ones; v4 marks the kernel
// generation that grew the sampling surface.
const kernelDigest = "kernel=batched-v4"

// Fingerprint returns a deterministic content key for the configuration,
// used by the campaign scheduler's memoizing result cache. Component
// factories (predictor, replacement policy, prefetcher) that implement
// their package's Fingerprinter interface are identified by their full
// parameterized fingerprint; others fall back to name and static
// parameters. Custom components that carry behaviour-affecting parameters
// their Name does not should implement Fingerprinter, otherwise two
// instances sharing a name would alias to the same cached result.
func (c Config) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine|%s|%s|", kernelDigest, c.Name)
	for _, l := range []cache.Config{c.Hierarchy.L1I, c.Hierarchy.L1D, c.Hierarchy.L2, c.Hierarchy.L3} {
		policy := "lru"
		if l.Policy != nil {
			if f, ok := l.Policy.(cache.Fingerprinter); ok {
				policy = f.Fingerprint()
			} else {
				policy = l.Policy.Name()
			}
		}
		fmt.Fprintf(&b, "%s:%d:%d:%d:%s|", l.Name, l.SizeBytes, l.Ways, l.LineBytes, policy)
	}
	switch pf := c.Hierarchy.Prefetcher.(type) {
	case nil:
		b.WriteString("pf=none|")
	case *cache.NextLinePrefetcher:
		fmt.Fprintf(&b, "pf=nextline:%d:%d|", pf.LineBytes, pf.Degree)
	case *cache.StridePrefetcher:
		fmt.Fprintf(&b, "pf=stride:%d:%d|", pf.LineBytes, pf.Degree)
	default:
		if f, ok := pf.(cache.Fingerprinter); ok {
			fmt.Fprintf(&b, "pf=%s|", f.Fingerprint())
		} else {
			fmt.Fprintf(&b, "pf=%T|", pf)
		}
	}
	newPred := c.NewPredictor
	if newPred == nil {
		newPred = func() branch.Predictor { return branch.NewTournament(14) }
	}
	pred := newPred()
	predictor := pred.Name()
	if f, ok := pred.(branch.Fingerprinter); ok {
		predictor = f.Fingerprint()
	}
	fmt.Fprintf(&b, "bp=%s:%d:%d|", predictor, c.BTBBits, c.RASDepth)
	p := c.Pipeline
	fmt.Fprintf(&b, "pipe=%v:%v:%v:%v:%v:%v:%v:%v|clock=%v|unified=%v",
		p.Width, p.MispredictPenalty, p.L2HitLatency, p.L3HitLatency,
		p.MemLatency, p.FetchMissPenalty, p.WalkPenalty, p.ShortMLP,
		c.ClockHz, c.UnifiedCodePath)
	return b.String()
}

// Geometry returns the cache capacities in lines, for the trace generator.
func (c Config) Geometry() synth.Geometry {
	return synth.Geometry{
		L1Lines: c.Hierarchy.L1D.SizeBytes / c.Hierarchy.L1D.LineBytes,
		L2Lines: c.Hierarchy.L2.SizeBytes / c.Hierarchy.L2.LineBytes,
		L3Lines: c.Hierarchy.L3.SizeBytes / c.Hierarchy.L3.LineBytes,
	}
}

func haswellBase(l3Bytes, l3Ways int) Config {
	return Config{
		Hierarchy: cache.HierarchyConfig{
			L1I: cache.Config{Name: "l1i", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
			L1D: cache.Config{Name: "l1d", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
			L2:  cache.Config{Name: "l2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
			L3:  cache.Config{Name: "l3", SizeBytes: l3Bytes, Ways: l3Ways, LineBytes: 64},
		},
		NewPredictor: func() branch.Predictor { return branch.NewTournament(14) },
		BTBBits:      12,
		RASDepth:     16,
		Pipeline:     pipeline.Haswell(),
		ClockHz:      1.8e9,
	}
}

// Haswell returns the full-size paper machine: Xeon E5-2650L v3, 30 MB
// 20-way shared L3, 1.8 GHz.
func Haswell() Config {
	c := haswellBase(30<<20, 20)
	c.Name = "haswell-e5-2650lv3"
	c.UnifiedCodePath = true
	return c
}

// HaswellScaled returns the characterization scale model: identical
// private levels, 2 MB 16-way L3.
func HaswellScaled() Config {
	c := haswellBase(2<<20, 16)
	c.Name = "haswell-scaled-l3"
	return c
}

// Options control one simulation run.
type Options struct {
	// Instructions is the measured window length. It must be positive.
	Instructions uint64
	// WarmupFraction adds Instructions*WarmupFraction uncounted warmup
	// instructions before measurement (default 0.25; negative disables).
	WarmupFraction float64
	// WarmupInstructions adds an absolute number of uncounted warmup
	// instructions on top of the fractional warmup. Callers running a
	// synth.Generator must cover its Prologue() here.
	WarmupInstructions uint64
	// Workload supplies the pipeline model's ILP/MLP. When CalibrateIPC
	// is set, ILP is solved instead and only MLP is used.
	Workload pipeline.Workload
	// CalibrateIPC, when positive, solves the workload ILP so the
	// interval model lands on this IPC (the published per-application
	// value). See DESIGN.md: miss rates and mix are measured from the
	// simulation; IPC is anchored to the paper's measurement.
	CalibrateIPC float64
	// Context, when non-nil, aborts an in-flight simulation: the batched
	// run loop polls it between batches (RunReference polls every
	// cancelCheckStride instructions) and returns the context's error.
	// Nil disables cancellation checks.
	Context context.Context
	// BatchSize is the uop buffer length of the batched kernel; 0 means
	// DefaultBatchSize. It is a performance knob only: results are
	// bit-identical for every batch size (the machine equivalence tests
	// enforce this), so it is excluded from all result-cache keys.
	BatchSize int
	// Sampling, when enabled, simulates only periodic detailed windows of
	// the measured stream and extrapolates the counters to the full
	// length (see the Sampling type). Unlike BatchSize it changes result
	// bits, so it participates in every result-cache key. Only the
	// batched Run supports it; RunReference and RunShared reject it.
	Sampling Sampling
	// Span, when non-nil, receives per-stage child spans
	// (fast-forward/warmup/detail for sampled runs, warmup/simulate for
	// exact ones) plus a windows attribute on sampled runs. Stage wall
	// times additionally feed the speckit_stage_seconds histograms
	// whether or not a span is attached. Like BatchSize it never enters
	// a cache key: observability must not change what is computed.
	Span *obs.Span
}

// cancelCheckStride is how often (in instructions) RunReference polls
// Options.Context; a power of two so the check is a mask, not a divide.
// The batched loop polls between batches instead, which for the default
// batch size is at least as often.
const cancelCheckStride = 8192

// DefaultBatchSize is the uop buffer length used when Options.BatchSize
// is zero. 4096 uops (192 KB) amortize per-batch overheads to noise while
// keeping the buffer well inside L2.
const DefaultBatchSize = 4096

// Result is the outcome of one run.
type Result struct {
	// Counters is the perf-style named counter snapshot.
	Counters *perf.Counters
	// Events are the pipeline-model inputs measured during the window.
	Events pipeline.Events
	// Breakdown is the CPI stack in cycles.
	Breakdown pipeline.Breakdown
	// IPC is instructions per cycle over the measured window.
	IPC float64
	// ILP is the workload ILP used (solved when calibrating).
	ILP float64
	// Calibrated reports whether ILP was solved to hit CalibrateIPC
	// exactly; false means the target was unreachable and the machine ran
	// width-limited.
	Calibrated bool
	// SimRSSBytes is the resident footprint the sampled stream actually
	// touched (pre-extrapolation; see DESIGN.md on footprint scaling).
	SimRSSBytes uint64
	// Sampling describes how the run was sampled and the estimated
	// extrapolation error per headline metric; nil for exact runs.
	Sampling *SamplingStats
	// Parallel describes how a RunParallel run was split into concurrent
	// windows and how long each took; nil for sequential runs.
	Parallel *ParallelStats
}

// Run simulates one uop stream on the machine. The source must produce at
// least the requested number of instructions.
func Run(cfg Config, src trace.Source, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("machine: zero-length run")
	}
	if err := opt.Sampling.Validate(); err != nil {
		return nil, err
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	return run(cfg, hier, src, opt)
}

// core holds the per-stream simulation state.
type core struct {
	hier    *cache.Hierarchy
	unified bool
	unit    *branch.Unit
	tlb     *tlb.TLB
	foot    *mem.Footprint
	kinds   [trace.NumKinds]uint64
	// Load-specific per-level outcome counts
	// (mem_load_uops_retired.lN_hit/miss semantics).
	loadLevel [4]uint64
	// All-access per-level outcomes feeding the pipeline model.
	dataLevel [4]uint64

	// Batched-kernel data-side deduplication: consecutive memory uops to
	// one 4 KB page re-hit the just-promoted DTLB entry and re-set an
	// already-set footprint bit, so translation and footprint tracking
	// are skipped and the TLB hit credited directly. The cache access
	// itself always runs — distinct lines within a page matter. (Fetch
	// deduplication lives in the cache itself: see Cache.FetchHot.)
	dataPage uint64 // last translated page, ^0 = none yet

	// Register-level dedup configuration for the batched sweeps. The
	// sweeps keep the last fetched / last accessed line number in a local
	// and skip the cache entirely on a repeat, crediting the guaranteed
	// hit instead. This is sound only under an idempotent-touch policy at
	// the corresponding level (see TouchIdempotent), so each side carries
	// its own gate; the shifts are the precomputed line-offset widths.
	fetchDedup, dataDedup bool
	fetchShift, dataShift uint

	// Structure-of-arrays scratch for the split sweeps: fetchSweep, which
	// touches every record anyway, classifies kinds with branch-free
	// table lookups, and dataSweep then walks only the memory and branch
	// records — no data-dependent kind tests, which on a mixed stream
	// mispredict almost every record. The memory side is packed densely:
	// memAddr carries each memory uop's data address with the store flag
	// in bit 63 (virtual addresses never occupy the top bit on any real
	// ISA or any generator in the tree), so the data sweep streams an
	// 8-byte array instead of chasing 4-byte indices back into 32-byte
	// records. Branches keep an index list — Resolve needs the whole
	// record. Both arrays are per-core arenas, allocated on first use and
	// reused for every subsequent batch and window.
	memAddr   []uint64
	brIdx     []uint32
	nMem, nBr int
}

// Branch-free kind classification tables for fetchSweep's index-list
// building: an unconditional store plus a table-driven increment replaces
// a compare-and-branch per record.
var (
	kindIsMem    = [trace.NumKinds]uint32{trace.KindLoad: 1, trace.KindStore: 1}
	kindIsBranch = [trace.NumKinds]uint32{trace.KindBranch: 1}
	kindStoreBit = [trace.NumKinds]uint64{trace.KindStore: 1 << 63}
	accessBySBit = [2]cache.AccessKind{cache.AccessLoad, cache.AccessStore}
)

// storeBit flags a store in a packed memAddr entry; the low 63 bits are
// the data address.
const storeBit = uint64(1) << 63

func newCore(cfg Config, hier *cache.Hierarchy) *core {
	pred := cfg.NewPredictor
	if pred == nil {
		pred = func() branch.Predictor { return branch.NewTournament(14) }
	}
	return &core{
		hier:       hier,
		unified:    cfg.UnifiedCodePath,
		unit:       branch.NewUnit(pred(), cfg.BTBBits, cfg.RASDepth),
		tlb:        tlb.NewHaswell(),
		foot:       mem.NewFootprint(0, 1<<30, 0),
		dataPage:   ^uint64(0),
		fetchDedup: cache.TouchIdempotent(cfg.Hierarchy.L1I.Policy),
		dataDedup:  cache.TouchIdempotent(cfg.Hierarchy.L1D.Policy),
		fetchShift: lineShift(cfg.Hierarchy.L1I.LineBytes),
		dataShift:  lineShift(cfg.Hierarchy.L1D.LineBytes),
	}
}

// lineShift returns log2 of the (validated, power-of-two) line size.
func lineShift(lineBytes int) uint {
	s := uint(0)
	for 1<<s < lineBytes {
		s++
	}
	return s
}

// step consumes one uop. It returns false when the source is exhausted.
// It is the reference per-uop kernel, kept verbatim for RunReference and
// the shared-L3 interleaved runner.
func (c *core) step(src trace.Source, u *trace.Uop) bool {
	if !src.Next(u) {
		return false
	}
	c.process(u)
	return true
}

// process simulates one uop through every component model.
func (c *core) process(u *trace.Uop) {
	c.kinds[u.Kind]++
	if c.unified {
		c.hier.Fetch(u.PC)
	} else if !c.hier.L1I().Access(u.PC, cache.AccessFetch) {
		// Sequential next-line instruction prefetch, as every modern
		// front-end performs; hides straight-line code misses.
		c.hier.L1I().Access(u.PC+64, cache.AccessPrefetch)
	}
	switch u.Kind {
	case trace.KindLoad, trace.KindStore:
		kind := cache.AccessLoad
		if u.Kind == trace.KindStore {
			kind = cache.AccessStore
		}
		level := c.hier.Data(u.Addr, kind)
		c.dataLevel[level]++
		if u.Kind == trace.KindLoad {
			c.loadLevel[level]++
		}
		c.tlb.Translate(u.Addr)
		c.foot.Touch(u.Addr)
	case trace.KindBranch:
		c.unit.Resolve(u)
	}
}

// processBatch simulates a buffer of uops through the batched kernel. It
// produces bit-identical statistics to calling process on each uop in
// order (the equivalence tests enforce this); the speedup comes from the
// cache fast paths (AccessHot/FetchHot with per-set fetch dedup), the
// DTLB page dedup, and — on non-unified machines — sweeping the batch
// once per component instead of once per uop.
func (c *core) processBatch(buf []trace.Uop) {
	if c.unified {
		c.processBatchUnified(buf)
		return
	}
	// Non-unified machines keep the L1I, the data path (L1D/L2/L3, DTLB,
	// footprint) and the branch unit fully disjoint: no component's state
	// is read or written by another's sweep, so processing the batch
	// component-by-component is a pure reordering of commuting updates —
	// bit-identical to the interleaved order, and much kinder to the
	// simulator's own caches and branch predictor. fetchSweep classifies
	// every record into the kind-index lists as it passes, so dataSweep
	// streams only the memory and branch records instead of re-scanning
	// (and re-mispredicting) the whole buffer.
	if cap(c.memAddr) < len(buf) {
		c.memAddr = make([]uint64, len(buf))
		c.brIdx = make([]uint32, len(buf))
	}
	c.fetchSweep(buf)
	c.dataSweep(buf)
}

// fetchSweep runs the instruction-fetch side of a batch on a non-unified
// machine. Under an idempotent-touch L1I policy it deduplicates
// consecutive same-line fetches in a register: within the sweep nothing
// else touches the L1I between two fetches, so after a fetch of line L
// that HIT (leaving L resident with its touch state freshly set), an
// immediately following fetch of L is a guaranteed hit whose repeated
// touch is a no-op — it is answered by a hit credit without probing.
// A miss does not arm the dedup: policies like SRRIP fill at a distant
// re-reference interval, so the follow-up hit's touch genuinely promotes
// the line and must execute.
func (c *core) fetchSweep(buf []trace.Uop) {
	l1i := c.hier.L1I()
	memAddr, brIdx := c.memAddr, c.brIdx
	nm, nb := uint32(0), uint32(0)
	if !c.fetchDedup {
		for i := range buf {
			u := &buf[i]
			k := u.Kind
			c.kinds[k]++
			memAddr[nm] = u.Addr | kindStoreBit[k]
			nm += kindIsMem[k]
			brIdx[nb] = uint32(i)
			nb += kindIsBranch[k]
			if !l1i.FetchHot(u.PC) {
				// Sequential next-line instruction prefetch, as in process.
				l1i.AccessHot(u.PC+64, cache.AccessPrefetch)
			}
		}
		c.nMem, c.nBr = int(nm), int(nb)
		return
	}
	shift := c.fetchShift
	lastLine := ^uint64(0)
	lastOK := false
	credit := uint64(0)
	for i := range buf {
		u := &buf[i]
		k := u.Kind
		c.kinds[k]++
		memAddr[nm] = u.Addr | kindStoreBit[k]
		nm += kindIsMem[k]
		brIdx[nb] = uint32(i)
		nb += kindIsBranch[k]
		line := u.PC >> shift
		if lastOK && line == lastLine {
			credit++
			continue
		}
		// Inlined FetchHot: the set-memo test runs call-free and its
		// hit is credited through the same deferred counter as the
		// register dedup; only memo misses pay the AccessHot call.
		hit := true
		if l1i.MemoHit(u.PC) {
			credit++
		} else if hit = l1i.AccessHot(u.PC, cache.AccessFetch); !hit {
			// Sequential next-line instruction prefetch, as in process.
			l1i.AccessHot(u.PC+64, cache.AccessPrefetch)
		}
		lastLine = line
		lastOK = hit
	}
	c.nMem, c.nBr = int(nm), int(nb)
	l1i.RecordHits(cache.AccessFetch, credit)
}

// dataSweep runs the branch and data sides of a batch on a non-unified
// machine, walking the structure-of-arrays scratch fetchSweep built
// instead of re-scanning the buffer: the memory loop streams the dense
// packed-address array (one 8-byte load per record, no pointer chase
// back into the 32-byte uop buffer). Under an idempotent-touch L1D
// policy consecutive memory uops to one line are deduplicated in a
// register once the line has HIT in the L1D: the hit's touch left the
// line resident with its touch state freshly set, so a same-line
// follow-up is a guaranteed L1 hit whose repeated touch is a no-op,
// and — lines being smaller than pages — a guaranteed repeat of the
// just-translated page. It is answered by crediting the L1 hit, the
// per-level counters and the DTLB hit. A miss does not arm the dedup
// (an SRRIP-style fill inserts cold; the follow-up hit's touch
// genuinely promotes the line and must execute).
func (c *core) dataSweep(buf []trace.Uop) {
	// Branch state is disjoint from the data path's, so draining the
	// branch list first is the same commuting reordering as the sweep
	// split itself.
	for _, i := range c.brIdx[:c.nBr] {
		c.unit.Resolve(&buf[i])
	}
	if !c.dataDedup {
		for _, p := range c.memAddr[:c.nMem] {
			c.processDataAddr(p&^storeBit, p>>63)
		}
		return
	}
	l1d := c.hier.Cache(cache.L1)
	shift := c.dataShift
	lastLine := ^uint64(0)
	// credit[0] accumulates deferred load hits, credit[1] store hits; the
	// store bit from the packed address selects arithmetically so the
	// load-vs-store distinction never costs a branch.
	var credit [2]uint64
	for _, p := range c.memAddr[:c.nMem] {
		s := p >> 63
		addr := p &^ storeBit
		line := addr >> shift
		if line == lastLine {
			c.dataLevel[cache.HitL1]++
			c.loadLevel[cache.HitL1] += 1 - s
			credit[s]++
			c.tlb.RecordL1Hits(1)
			continue
		}
		// The L1-hit common cases stay call-free (set memo, inlined) or
		// a single call (AccessHot); only a real L1D miss takes the
		// hierarchy walk (L2/L3 plus the prefetcher). Memo hits are
		// credited through the same deferred RecordHits counters as the
		// register dedup, which is the statistics update DemandHot
		// would have made.
		kind := accessBySBit[s]
		level := cache.HitL1
		if l1d.MemoHit(addr) {
			credit[s]++
			lastLine = line
		} else if l1d.AccessHot(addr, kind) {
			lastLine = line
		} else {
			level = c.hier.DataHotMiss(addr, kind)
			lastLine = ^uint64(0)
		}
		c.dataLevel[level]++
		c.loadLevel[level] += 1 - s
		if page := addr >> tlb.PageBits; page == c.dataPage {
			c.tlb.RecordL1Hits(1)
		} else {
			c.tlb.Translate(addr)
			c.foot.Touch(addr)
			c.dataPage = page
		}
	}
	l1d.RecordHits(cache.AccessLoad, credit[0])
	l1d.RecordHits(cache.AccessStore, credit[1])
}

// processBatchUnified is the batched kernel for machines whose L1I misses
// share L2/L3 with the data path; fetch and data work stay interleaved in
// uop order, with the same register-level hit-armed dedups as the split
// sweeps. The interleaving is harmless to them: data accesses touch
// L1D/L2/L3 only, never an L1I set, and fetches never touch the L1D.
func (c *core) processBatchUnified(buf []trace.Uop) {
	l1i := c.hier.L1I()
	l1d := c.hier.Cache(cache.L1)
	fLine, dLine := ^uint64(0), ^uint64(0)
	var fetchCredit, creditLoad, creditStore uint64
	for i := range buf {
		u := &buf[i]
		c.kinds[u.Kind]++
		if line := u.PC >> c.fetchShift; c.fetchDedup && line == fLine {
			fetchCredit++
		} else if c.hier.FetchHot(u.PC) == cache.HitL1 {
			fLine = line
		} else {
			fLine = ^uint64(0)
		}
		switch u.Kind {
		case trace.KindLoad, trace.KindStore:
			if line := u.Addr >> c.dataShift; c.dataDedup && line == dLine {
				c.dataLevel[cache.HitL1]++
				if u.Kind == trace.KindLoad {
					c.loadLevel[cache.HitL1]++
					creditLoad++
				} else {
					creditStore++
				}
				c.tlb.RecordL1Hits(1)
			} else if c.processData(u) == cache.HitL1 {
				dLine = line
			} else {
				dLine = ^uint64(0)
			}
		case trace.KindBranch:
			c.unit.Resolve(u)
		}
	}
	l1i.RecordHits(cache.AccessFetch, fetchCredit)
	l1d.RecordHits(cache.AccessLoad, creditLoad)
	l1d.RecordHits(cache.AccessStore, creditStore)
}

// processData runs one memory uop's data-side accesses in the batched
// kernel: hierarchy access, per-level counters, and the page-deduplicated
// DTLB translation and footprint touch. It reports where the access hit
// so callers can arm the same-line register dedup on L1 hits.
func (c *core) processData(u *trace.Uop) cache.HitLevel {
	sbit := kindStoreBit[u.Kind] >> 63
	return c.processDataAddr(u.Addr, sbit)
}

// processDataAddr is processData on an unpacked (address, store-bit)
// pair, the form dataSweep's dense packed-address walk produces; sbit
// is 1 for stores, 0 for loads, and selects counters arithmetically.
func (c *core) processDataAddr(addr, sbit uint64) cache.HitLevel {
	level := c.hier.DataHot(addr, accessBySBit[sbit])
	c.dataLevel[level]++
	c.loadLevel[level] += 1 - sbit
	if page := addr >> tlb.PageBits; page == c.dataPage {
		c.tlb.RecordL1Hits(1)
	} else {
		c.tlb.Translate(addr)
		c.foot.Touch(addr)
		c.dataPage = page
	}
	return level
}

func (c *core) resetStats() {
	c.hier.ResetStats()
	c.unit.ResetStats()
	c.tlb.ResetStats()
	for i := range c.kinds {
		c.kinds[i] = 0
	}
	c.loadLevel = [4]uint64{}
	c.dataLevel = [4]uint64{}
}

// runWindow simulates exactly n instructions through the batched kernel,
// polling ctx between batches. It returns the number completed; done < n
// with a nil error means the source was exhausted.
func (c *core) runWindow(src trace.BatchSource, buf []trace.Uop, n uint64, ctx context.Context) (uint64, error) {
	done := uint64(0)
	for done < n {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return done, err
			}
		}
		want := n - done
		if want > uint64(len(buf)) {
			want = uint64(len(buf))
		}
		got := src.NextBatch(buf[:want])
		if got == 0 {
			return done, nil
		}
		c.processBatch(buf[:got])
		done += uint64(got)
	}
	return done, nil
}

func run(cfg Config, hier *cache.Hierarchy, src trace.Source, opt Options) (*Result, error) {
	c := newCore(cfg, hier)
	if cache.TouchIdempotent(cfg.Hierarchy.L1I.Policy) {
		hier.L1I().EnableFetchMemo()
	}
	if cache.TouchIdempotent(cfg.Hierarchy.L1D.Policy) {
		hier.Cache(cache.L1).EnableFetchMemo()
	}
	bs := opt.BatchSize
	if bs <= 0 {
		bs = DefaultBatchSize
	}
	bsrc := trace.AsBatch(src)
	buf := make([]trace.Uop, bs)
	if warm := warmupLength(opt); warm > 0 {
		warmStart := time.Now()
		done, err := c.runWindow(bsrc, buf, warm, opt.Context)
		if err != nil {
			return nil, err
		}
		if done < warm {
			return nil, fmt.Errorf("machine: source exhausted during warmup")
		}
		c.resetStats()
		recordStage(opt.Span, "warmup", time.Since(warmStart))
	}
	if opt.Sampling.Enabled() {
		return c.runSampled(cfg, bsrc, buf, opt)
	}
	simStart := time.Now()
	done, err := c.runWindow(bsrc, buf, opt.Instructions, opt.Context)
	if err != nil {
		return nil, err
	}
	if done < opt.Instructions {
		return nil, fmt.Errorf("machine: source exhausted after %d instructions", done)
	}
	recordStage(opt.Span, "simulate", time.Since(simStart))
	return c.finish(cfg, opt, c.snap())
}

// recordStage feeds one stage's wall time into its histogram and, when
// a span is attached, records it as a finished stage child span.
func recordStage(span *obs.Span, stage string, d time.Duration) {
	metStageSeconds[stage].ObserveDuration(d)
	span.Stage(stage, d)
}

// RunReference simulates one uop stream with the legacy per-uop kernel.
// It is the executable specification the batched Run is tested against:
// both must produce bit-identical Results for the same configuration,
// source and options. It is exported for the equivalence tests and the
// kernel benchmarks; production callers should use Run.
func RunReference(cfg Config, src trace.Source, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("machine: zero-length run")
	}
	if opt.Sampling.Enabled() {
		// The reference kernel is the exact-run executable specification;
		// a sampled reference would have nothing to be a reference for.
		return nil, fmt.Errorf("machine: sampling requires the batched kernel (use Run)")
	}
	c := newCore(cfg, cache.NewHierarchy(cfg.Hierarchy))
	checkCancel := opt.Context != nil
	if warm := warmupLength(opt); warm > 0 {
		var u trace.Uop
		for i := uint64(0); i < warm; i++ {
			if checkCancel && i&(cancelCheckStride-1) == 0 {
				if err := opt.Context.Err(); err != nil {
					return nil, err
				}
			}
			if !c.step(src, &u) {
				return nil, fmt.Errorf("machine: source exhausted during warmup")
			}
		}
		c.resetStats()
	}
	var u trace.Uop
	for i := uint64(0); i < opt.Instructions; i++ {
		if checkCancel && i&(cancelCheckStride-1) == 0 {
			if err := opt.Context.Err(); err != nil {
				return nil, err
			}
		}
		if !c.step(src, &u) {
			return nil, fmt.Errorf("machine: source exhausted after %d instructions", i)
		}
	}
	return c.finish(cfg, opt, c.snap())
}

// finish derives the Result from a counter snapshot — the core's own
// cumulative statistics for exact runs, or the scaled aggregate of the
// detailed windows for sampled runs. Only the footprint is read from
// the core directly (it is a high-water mark, not a rate, and is
// reported pre-extrapolation either way). The heavy lifting lives in
// DeriveResult, shared with the analytic tier.
func (c *core) finish(cfg Config, opt Options, s counterSnap) (*Result, error) {
	return DeriveResult(cfg, opt, Counts{
		Kinds:       s.kinds,
		LoadLevel:   s.loadLevel,
		DataLevel:   s.dataLevel,
		FetchMisses: s.fetchMisses,
		Walks:       s.walks,
		Branch:      s.branch,
		RSSBytes:    c.foot.PeakRSS(),
		VSZBytes:    c.foot.VSZ(),
	})
}

// warmupLength resolves the warmup policy from the options.
func warmupLength(opt Options) uint64 {
	warmF := opt.WarmupFraction
	if warmF == 0 {
		warmF = 0.25
	}
	if warmF < 0 {
		warmF = 0
	}
	return opt.WarmupInstructions + uint64(float64(opt.Instructions)*warmF)
}
