// Package machine assembles the cache, branch, TLB, footprint and pipeline
// models into a simulated core and runs uop streams through it, producing
// perf-style counter snapshots.
//
// Two machine configurations matter in this project:
//
//   - Haswell() mirrors the paper's Xeon E5-2650L v3 exactly (30 MB L3),
//     for component-level studies and ablations.
//   - HaswellScaled() is the characterization workhorse: identical L1/L2
//     but a 2 MB L3 slice, so that a few hundred thousand simulated
//     instructions can exercise the full reuse-distance range that a
//     multi-billion-instruction SPEC run exercises on the real 30 MB part
//     (a 1:15 capacity scale model; see DESIGN.md).
package machine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// Config describes a simulated machine.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// Hierarchy is the cache stack configuration.
	Hierarchy cache.HierarchyConfig
	// NewPredictor constructs the branch direction predictor; nil means
	// gshare(14,12).
	NewPredictor func() branch.Predictor
	// BTBBits and RASDepth size the branch target structures.
	BTBBits, RASDepth int
	// Pipeline holds the interval-model timing parameters.
	Pipeline pipeline.Params
	// ClockHz is the core frequency (execution-time conversion).
	ClockHz float64
	// UnifiedCodePath routes L1I misses into L2/L3 (as real Haswell
	// does). The scaled characterization machine disables it so that the
	// data-side insertion rates seen by L2/L3 are exactly the generator's
	// (the paper's L2/L3 miss rates are load-specific counters anyway).
	UnifiedCodePath bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Hierarchy.Validate(); err != nil {
		return err
	}
	if err := c.Pipeline.Validate(); err != nil {
		return err
	}
	if c.BTBBits <= 0 || c.BTBBits > 24 || c.RASDepth <= 0 {
		return fmt.Errorf("machine %q: bad branch structure sizes", c.Name)
	}
	if c.ClockHz <= 0 {
		return fmt.Errorf("machine %q: non-positive clock", c.Name)
	}
	return nil
}

// Fingerprint returns a deterministic content key for the configuration,
// used by the campaign scheduler's memoizing result cache. Component
// factories (predictor, replacement policy, prefetcher) are identified by
// name and static parameters; two configs whose factories share a name
// but differ in parameters the name does not carry would alias, so custom
// factories should use distinct names.
func (c Config) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine|%s|", c.Name)
	for _, l := range []cache.Config{c.Hierarchy.L1I, c.Hierarchy.L1D, c.Hierarchy.L2, c.Hierarchy.L3} {
		policy := "lru"
		if l.Policy != nil {
			policy = l.Policy.Name()
		}
		fmt.Fprintf(&b, "%s:%d:%d:%d:%s|", l.Name, l.SizeBytes, l.Ways, l.LineBytes, policy)
	}
	switch pf := c.Hierarchy.Prefetcher.(type) {
	case nil:
		b.WriteString("pf=none|")
	case *cache.NextLinePrefetcher:
		fmt.Fprintf(&b, "pf=nextline:%d:%d|", pf.LineBytes, pf.Degree)
	case *cache.StridePrefetcher:
		fmt.Fprintf(&b, "pf=stride:%d:%d|", pf.LineBytes, pf.Degree)
	default:
		fmt.Fprintf(&b, "pf=%T|", pf)
	}
	predictor := "tournament"
	if c.NewPredictor != nil {
		predictor = c.NewPredictor().Name()
	}
	fmt.Fprintf(&b, "bp=%s:%d:%d|", predictor, c.BTBBits, c.RASDepth)
	p := c.Pipeline
	fmt.Fprintf(&b, "pipe=%v:%v:%v:%v:%v:%v:%v:%v|clock=%v|unified=%v",
		p.Width, p.MispredictPenalty, p.L2HitLatency, p.L3HitLatency,
		p.MemLatency, p.FetchMissPenalty, p.WalkPenalty, p.ShortMLP,
		c.ClockHz, c.UnifiedCodePath)
	return b.String()
}

// Geometry returns the cache capacities in lines, for the trace generator.
func (c Config) Geometry() synth.Geometry {
	return synth.Geometry{
		L1Lines: c.Hierarchy.L1D.SizeBytes / c.Hierarchy.L1D.LineBytes,
		L2Lines: c.Hierarchy.L2.SizeBytes / c.Hierarchy.L2.LineBytes,
		L3Lines: c.Hierarchy.L3.SizeBytes / c.Hierarchy.L3.LineBytes,
	}
}

func haswellBase(l3Bytes, l3Ways int) Config {
	return Config{
		Hierarchy: cache.HierarchyConfig{
			L1I: cache.Config{Name: "l1i", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
			L1D: cache.Config{Name: "l1d", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
			L2:  cache.Config{Name: "l2", SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
			L3:  cache.Config{Name: "l3", SizeBytes: l3Bytes, Ways: l3Ways, LineBytes: 64},
		},
		NewPredictor: func() branch.Predictor { return branch.NewTournament(14) },
		BTBBits:      12,
		RASDepth:     16,
		Pipeline:     pipeline.Haswell(),
		ClockHz:      1.8e9,
	}
}

// Haswell returns the full-size paper machine: Xeon E5-2650L v3, 30 MB
// 20-way shared L3, 1.8 GHz.
func Haswell() Config {
	c := haswellBase(30<<20, 20)
	c.Name = "haswell-e5-2650lv3"
	c.UnifiedCodePath = true
	return c
}

// HaswellScaled returns the characterization scale model: identical
// private levels, 2 MB 16-way L3.
func HaswellScaled() Config {
	c := haswellBase(2<<20, 16)
	c.Name = "haswell-scaled-l3"
	return c
}

// Options control one simulation run.
type Options struct {
	// Instructions is the measured window length. It must be positive.
	Instructions uint64
	// WarmupFraction adds Instructions*WarmupFraction uncounted warmup
	// instructions before measurement (default 0.25; negative disables).
	WarmupFraction float64
	// WarmupInstructions adds an absolute number of uncounted warmup
	// instructions on top of the fractional warmup. Callers running a
	// synth.Generator must cover its Prologue() here.
	WarmupInstructions uint64
	// Workload supplies the pipeline model's ILP/MLP. When CalibrateIPC
	// is set, ILP is solved instead and only MLP is used.
	Workload pipeline.Workload
	// CalibrateIPC, when positive, solves the workload ILP so the
	// interval model lands on this IPC (the published per-application
	// value). See DESIGN.md: miss rates and mix are measured from the
	// simulation; IPC is anchored to the paper's measurement.
	CalibrateIPC float64
	// Context, when non-nil, aborts an in-flight simulation: the run
	// loop polls it every cancelCheckStride instructions and returns the
	// context's error. Nil disables cancellation checks.
	Context context.Context
}

// cancelCheckStride is how often (in instructions) the run loop polls
// Options.Context; a power of two so the check is a mask, not a divide.
const cancelCheckStride = 8192

// Result is the outcome of one run.
type Result struct {
	// Counters is the perf-style named counter snapshot.
	Counters *perf.Counters
	// Events are the pipeline-model inputs measured during the window.
	Events pipeline.Events
	// Breakdown is the CPI stack in cycles.
	Breakdown pipeline.Breakdown
	// IPC is instructions per cycle over the measured window.
	IPC float64
	// ILP is the workload ILP used (solved when calibrating).
	ILP float64
	// Calibrated reports whether ILP was solved to hit CalibrateIPC
	// exactly; false means the target was unreachable and the machine ran
	// width-limited.
	Calibrated bool
	// SimRSSBytes is the resident footprint the sampled stream actually
	// touched (pre-extrapolation; see DESIGN.md on footprint scaling).
	SimRSSBytes uint64
}

// Run simulates one uop stream on the machine. The source must produce at
// least the requested number of instructions.
func Run(cfg Config, src trace.Source, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Instructions == 0 {
		return nil, fmt.Errorf("machine: zero-length run")
	}
	hier := cache.NewHierarchy(cfg.Hierarchy)
	return run(cfg, hier, src, opt)
}

// core holds the per-stream simulation state.
type core struct {
	hier    *cache.Hierarchy
	unified bool
	unit    *branch.Unit
	tlb     *tlb.TLB
	foot    *mem.Footprint
	kinds   [trace.NumKinds]uint64
	// Load-specific per-level outcome counts
	// (mem_load_uops_retired.lN_hit/miss semantics).
	loadLevel [4]uint64
	// All-access per-level outcomes feeding the pipeline model.
	dataLevel [4]uint64
}

func newCore(cfg Config, hier *cache.Hierarchy) *core {
	pred := cfg.NewPredictor
	if pred == nil {
		pred = func() branch.Predictor { return branch.NewTournament(14) }
	}
	return &core{
		hier:    hier,
		unified: cfg.UnifiedCodePath,
		unit:    branch.NewUnit(pred(), cfg.BTBBits, cfg.RASDepth),
		tlb:     tlb.NewHaswell(),
		foot:    mem.NewFootprint(0, 1<<30, 0),
	}
}

// step consumes one uop. It returns false when the source is exhausted.
func (c *core) step(src trace.Source, u *trace.Uop) bool {
	if !src.Next(u) {
		return false
	}
	c.kinds[u.Kind]++
	if c.unified {
		c.hier.Fetch(u.PC)
	} else if !c.hier.L1I().Access(u.PC, cache.AccessFetch) {
		// Sequential next-line instruction prefetch, as every modern
		// front-end performs; hides straight-line code misses.
		c.hier.L1I().Access(u.PC+64, cache.AccessPrefetch)
	}
	switch u.Kind {
	case trace.KindLoad, trace.KindStore:
		kind := cache.AccessLoad
		if u.Kind == trace.KindStore {
			kind = cache.AccessStore
		}
		level := c.hier.Data(u.Addr, kind)
		c.dataLevel[level]++
		if u.Kind == trace.KindLoad {
			c.loadLevel[level]++
		}
		c.tlb.Translate(u.Addr)
		c.foot.Touch(u.Addr)
	case trace.KindBranch:
		c.unit.Resolve(u)
	}
	return true
}

func (c *core) resetStats() {
	c.hier.ResetStats()
	c.unit.ResetStats()
	c.tlb.ResetStats()
	for i := range c.kinds {
		c.kinds[i] = 0
	}
	c.loadLevel = [4]uint64{}
	c.dataLevel = [4]uint64{}
}

func run(cfg Config, hier *cache.Hierarchy, src trace.Source, opt Options) (*Result, error) {
	c := newCore(cfg, hier)
	checkCancel := opt.Context != nil
	warm := warmupLength(opt)
	if warm > 0 {
		var u trace.Uop
		for i := uint64(0); i < warm; i++ {
			if checkCancel && i&(cancelCheckStride-1) == 0 {
				if err := opt.Context.Err(); err != nil {
					return nil, err
				}
			}
			if !c.step(src, &u) {
				return nil, fmt.Errorf("machine: source exhausted during warmup")
			}
		}
		c.resetStats()
	}
	var u trace.Uop
	for i := uint64(0); i < opt.Instructions; i++ {
		if checkCancel && i&(cancelCheckStride-1) == 0 {
			if err := opt.Context.Err(); err != nil {
				return nil, err
			}
		}
		if !c.step(src, &u) {
			return nil, fmt.Errorf("machine: source exhausted after %d instructions", i)
		}
	}
	return c.finish(cfg, opt)
}

func (c *core) finish(cfg Config, opt Options) (*Result, error) {
	n := uint64(0)
	for _, k := range c.kinds {
		n += k
	}
	ev := pipeline.Events{
		Instructions: n,
		L2Hits:       c.dataLevel[cache.HitL2],
		L3Hits:       c.dataLevel[cache.HitL3],
		MemAccesses:  c.dataLevel[cache.HitMemory],
		FetchMisses:  c.hier.L1I().Stats().Misses,
		Walks:        c.tlb.Walks(),
	}
	_, misp := func() (uint64, uint64) { s := c.unit.Stats(); return s.Total() }()
	ev.Mispredicts = misp

	w := opt.Workload
	res := &Result{Events: ev, ILP: w.ILP, Calibrated: false}
	if opt.CalibrateIPC > 0 {
		stalls := ev
		stalls.Instructions = 0
		stallPer := pipeline.Cycles(cfg.Pipeline, w, stalls).Total() / float64(n)
		res.ILP, res.Calibrated = pipeline.SolveILP(cfg.Pipeline, opt.CalibrateIPC, stallPer)
		w.ILP = res.ILP
	}
	res.Breakdown = pipeline.Cycles(cfg.Pipeline, w, ev)
	cycles := res.Breakdown.Total()
	if cycles <= 0 {
		return nil, fmt.Errorf("machine: non-positive cycle count")
	}
	res.IPC = float64(n) / cycles

	bs := c.unit.Stats()
	values := map[string]uint64{
		perf.InstRetired:   n,
		perf.RefCycles:     uint64(cycles),
		perf.UopsRetired:   n,
		perf.AllLoads:      c.kinds[trace.KindLoad],
		perf.AllStores:     c.kinds[trace.KindStore],
		perf.AllBranches:   c.kinds[trace.KindBranch],
		perf.MispBranches:  misp,
		perf.CondBranches:  bs.Executed[trace.BranchConditional],
		perf.DirectJumps:   bs.Executed[trace.BranchDirectJump],
		perf.DirectCalls:   bs.Executed[trace.BranchDirectCall],
		perf.IndirectJumps: bs.Executed[trace.BranchIndirectJump],
		perf.Returns:       bs.Executed[trace.BranchReturn],
		perf.L1Hit:         c.loadLevel[cache.HitL1],
		perf.L1Miss:        c.loadLevel[cache.HitL2] + c.loadLevel[cache.HitL3] + c.loadLevel[cache.HitMemory],
		perf.L2Hit:         c.loadLevel[cache.HitL2],
		perf.L2Miss:        c.loadLevel[cache.HitL3] + c.loadLevel[cache.HitMemory],
		perf.L3Hit:         c.loadLevel[cache.HitL3],
		perf.L3Miss:        c.loadLevel[cache.HitMemory],
		perf.ICacheMisses:  ev.FetchMisses,
		perf.DTLBWalks:     ev.Walks,
	}
	seconds := cycles / cfg.ClockHz
	res.Counters = perf.NewCounters(values, c.foot.PeakRSS(), c.foot.VSZ(), seconds)
	res.SimRSSBytes = c.foot.PeakRSS()
	return res, nil
}

// warmupLength resolves the warmup policy from the options.
func warmupLength(opt Options) uint64 {
	warmF := opt.WarmupFraction
	if warmF == 0 {
		warmF = 0.25
	}
	if warmF < 0 {
		warmF = 0
	}
	return opt.WarmupInstructions + uint64(float64(opt.Instructions)*warmF)
}
