package machine

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/perf"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// Counts is the complete event-count input to DeriveResult: everything
// the performance model needs to turn a simulated (or predicted) stream
// into a Result. The simulation kernels fill it from their counter
// snapshots; the analytic tier fills it from miss-curve predictions
// scaled to the full stream.
type Counts struct {
	// Kinds counts retired uops by kind.
	Kinds [trace.NumKinds]uint64
	// LoadLevel counts loads by the cache level that serviced them,
	// indexed by cache.HitLevel; DataLevel counts loads and stores.
	LoadLevel [4]uint64
	DataLevel [4]uint64
	// FetchMisses counts L1I misses, Walks counts DTLB page walks.
	FetchMisses uint64
	Walks       uint64
	// Branch is the per-class executed/mispredicted breakdown.
	Branch branch.Stats
	// RSSBytes and VSZBytes are the footprint high-water marks; they are
	// reported as-is, never extrapolated.
	RSSBytes uint64
	VSZBytes uint64
}

// DeriveResult runs the analytical back half of a characterization: the
// first-order interval model (stall events -> cycle breakdown -> IPC,
// with optional ILP calibration against a target IPC) plus the derived
// perf-counter view. It is shared by every fidelity tier — the exact
// and sampled kernels hand it measured counts, the analytic tier hands
// it predicted ones — so the tiers can never drift apart in how counts
// become a Result.
func DeriveResult(cfg Config, opt Options, ct Counts) (*Result, error) {
	n := uint64(0)
	for _, k := range ct.Kinds {
		n += k
	}
	ev := pipeline.Events{
		Instructions: n,
		L2Hits:       ct.DataLevel[cache.HitL2],
		L3Hits:       ct.DataLevel[cache.HitL3],
		MemAccesses:  ct.DataLevel[cache.HitMemory],
		FetchMisses:  ct.FetchMisses,
		Walks:        ct.Walks,
	}
	_, misp := ct.Branch.Total()
	ev.Mispredicts = misp

	w := opt.Workload
	res := &Result{Events: ev, ILP: w.ILP, Calibrated: false}
	if opt.CalibrateIPC > 0 {
		stalls := ev
		stalls.Instructions = 0
		stallPer := pipeline.Cycles(cfg.Pipeline, w, stalls).Total() / float64(n)
		res.ILP, res.Calibrated = pipeline.SolveILP(cfg.Pipeline, opt.CalibrateIPC, stallPer)
		w.ILP = res.ILP
	}
	res.Breakdown = pipeline.Cycles(cfg.Pipeline, w, ev)
	cycles := res.Breakdown.Total()
	if cycles <= 0 {
		return nil, fmt.Errorf("machine: non-positive cycle count")
	}
	res.IPC = float64(n) / cycles

	bs := ct.Branch
	values := map[string]uint64{
		perf.InstRetired:   n,
		perf.RefCycles:     uint64(cycles),
		perf.UopsRetired:   n,
		perf.AllLoads:      ct.Kinds[trace.KindLoad],
		perf.AllStores:     ct.Kinds[trace.KindStore],
		perf.AllBranches:   ct.Kinds[trace.KindBranch],
		perf.MispBranches:  misp,
		perf.CondBranches:  bs.Executed[trace.BranchConditional],
		perf.DirectJumps:   bs.Executed[trace.BranchDirectJump],
		perf.DirectCalls:   bs.Executed[trace.BranchDirectCall],
		perf.IndirectJumps: bs.Executed[trace.BranchIndirectJump],
		perf.Returns:       bs.Executed[trace.BranchReturn],
		perf.L1Hit:         ct.LoadLevel[cache.HitL1],
		perf.L1Miss:        ct.LoadLevel[cache.HitL2] + ct.LoadLevel[cache.HitL3] + ct.LoadLevel[cache.HitMemory],
		perf.L2Hit:         ct.LoadLevel[cache.HitL2],
		perf.L2Miss:        ct.LoadLevel[cache.HitL3] + ct.LoadLevel[cache.HitMemory],
		perf.L3Hit:         ct.LoadLevel[cache.HitL3],
		perf.L3Miss:        ct.LoadLevel[cache.HitMemory],
		perf.ICacheMisses:  ev.FetchMisses,
		perf.DTLBWalks:     ev.Walks,
	}
	seconds := cycles / cfg.ClockHz
	res.Counters = perf.NewCounters(values, ct.RSSBytes, ct.VSZBytes, seconds)
	res.SimRSSBytes = ct.RSSBytes
	return res, nil
}
