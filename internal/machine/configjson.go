package machine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/pipeline"
)

// This file gives Config a declarative JSON form so sweep specs and
// campaign submissions can name machine overrides instead of being
// limited to the built-in Haswell presets. The representation is
// component specs, not Go values: replacement policies, prefetchers and
// branch predictors travel as the same parameterized spec strings their
// Fingerprint methods emit ("srrip", "nextline:64:1", "gshare:14:12"),
// and UnmarshalJSON reconstructs the components and validates the
// result. The invariant the round-trip test pins: decode(encode(c))
// has exactly c's Fingerprint, so a configuration that crossed the wire
// derives the same result-cache content keys as the original — sweeps
// and fleet-forwarded campaigns stay bit-identical.

// levelJSON is one cache level's wire form.
type levelJSON struct {
	Name      string `json:"name,omitempty"`
	SizeBytes int    `json:"size_bytes"`
	Ways      int    `json:"ways"`
	LineBytes int    `json:"line_bytes"`
	// Policy is the replacement policy spec: "lru" (the default),
	// "plru", "srrip", or "random:seed=N".
	Policy string `json:"policy,omitempty"`
}

// configJSON is Config's wire form.
type configJSON struct {
	Name string    `json:"name"`
	L1I  levelJSON `json:"l1i"`
	L1D  levelJSON `json:"l1d"`
	L2   levelJSON `json:"l2"`
	L3   levelJSON `json:"l3"`
	// Prefetcher is "none" (or empty), "nextline:LINE:DEGREE" or
	// "stride:LINE:DEGREE".
	Prefetcher string `json:"prefetcher,omitempty"`
	// Predictor is the branch direction predictor spec in Fingerprint
	// syntax: "static-taken", "bimodal:BITS", "gshare:BITS:HIST",
	// "two-level-local:BITS:HIST", "tournament:BITS[...]" (the bracketed
	// suffix is informative and ignored on decode) or
	// "perceptron:BITS:HIST". Empty means the default tournament:14.
	Predictor       string          `json:"predictor,omitempty"`
	BTBBits         int             `json:"btb_bits"`
	RASDepth        int             `json:"ras_depth"`
	Pipeline        pipeline.Params `json:"pipeline"`
	ClockHz         float64         `json:"clock_hz"`
	UnifiedCodePath bool            `json:"unified_code_path,omitempty"`
}

func levelToJSON(l cache.Config) (levelJSON, error) {
	policy := ""
	switch p := l.Policy.(type) {
	case nil, cache.LRU:
		// omit: lru is the default
	case cache.TreePLRU, cache.SRRIP:
		policy = p.Name()
	case cache.Random:
		policy = p.Fingerprint()
	default:
		return levelJSON{}, fmt.Errorf("machine: cache policy %T has no JSON spec", l.Policy)
	}
	return levelJSON{
		Name: l.Name, SizeBytes: l.SizeBytes, Ways: l.Ways,
		LineBytes: l.LineBytes, Policy: policy,
	}, nil
}

func levelFromJSON(l levelJSON, fallbackName string) (cache.Config, error) {
	c := cache.Config{
		Name: l.Name, SizeBytes: l.SizeBytes, Ways: l.Ways, LineBytes: l.LineBytes,
	}
	if c.Name == "" {
		c.Name = fallbackName
	}
	switch {
	case l.Policy == "" || l.Policy == "lru":
		c.Policy = nil // Fingerprint renders nil as "lru" already
	case l.Policy == "plru":
		c.Policy = cache.TreePLRU{}
	case l.Policy == "srrip":
		c.Policy = cache.SRRIP{}
	case strings.HasPrefix(l.Policy, "random"):
		var p cache.Random
		if rest, ok := strings.CutPrefix(l.Policy, "random:seed="); ok {
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return cache.Config{}, fmt.Errorf("machine: bad random policy seed in %q", l.Policy)
			}
			p.Seed = seed
		} else if l.Policy != "random" {
			return cache.Config{}, fmt.Errorf("machine: unknown cache policy spec %q", l.Policy)
		}
		c.Policy = p
	default:
		return cache.Config{}, fmt.Errorf("machine: unknown cache policy spec %q", l.Policy)
	}
	return c, nil
}

func prefetcherToJSON(pf cache.Prefetcher) (string, error) {
	switch p := pf.(type) {
	case nil:
		return "", nil
	case *cache.NextLinePrefetcher:
		return fmt.Sprintf("nextline:%d:%d", p.LineBytes, p.Degree), nil
	case *cache.StridePrefetcher:
		return fmt.Sprintf("stride:%d:%d", p.LineBytes, p.Degree), nil
	default:
		return "", fmt.Errorf("machine: prefetcher %T has no JSON spec", pf)
	}
}

func prefetcherFromJSON(spec string) (cache.Prefetcher, error) {
	if spec == "" || spec == "none" {
		return nil, nil
	}
	kind, a, b, err := splitSpec2(spec)
	if err != nil {
		return nil, fmt.Errorf("machine: bad prefetcher spec %q (want KIND:LINE:DEGREE)", spec)
	}
	switch kind {
	case "nextline":
		return &cache.NextLinePrefetcher{LineBytes: a, Degree: b}, nil
	case "stride":
		return &cache.StridePrefetcher{LineBytes: a, Degree: b}, nil
	default:
		return nil, fmt.Errorf("machine: unknown prefetcher kind %q", kind)
	}
}

// predictorToJSON renders the configured predictor's spec by
// constructing one and taking its fingerprint — the same identification
// Config.Fingerprint uses, so the wire spec and the cache key can never
// disagree about which predictor a configuration runs.
func predictorToJSON(newPred func() branch.Predictor) (string, error) {
	if newPred == nil {
		return "", nil
	}
	pred := newPred()
	f, ok := pred.(branch.Fingerprinter)
	if !ok {
		return "", fmt.Errorf("machine: predictor %q has no JSON spec (no Fingerprint)", pred.Name())
	}
	return f.Fingerprint(), nil
}

func predictorFromJSON(spec string) (func() branch.Predictor, error) {
	if spec == "" {
		return nil, nil // machine default (tournament:14)
	}
	// "tournament:14[gshare:...,bimodal:...]" — the bracketed component
	// detail is derived from BITS and ignored on decode.
	if i := strings.IndexByte(spec, '['); i >= 0 {
		spec = spec[:i]
	}
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "static", "static-taken":
		return func() branch.Predictor { return branch.Static{} }, nil
	case "bimodal":
		bits, err := strconv.Atoi(rest)
		if err != nil || bits <= 0 || bits > 24 {
			return nil, fmt.Errorf("machine: bad bimodal predictor spec %q", spec)
		}
		return func() branch.Predictor { return branch.NewBimodal(bits) }, nil
	case "tournament":
		bits, err := strconv.Atoi(rest)
		if err != nil || bits <= 0 || bits > 24 {
			return nil, fmt.Errorf("machine: bad tournament predictor spec %q", spec)
		}
		return func() branch.Predictor { return branch.NewTournament(bits) }, nil
	case "gshare", "two-level-local", "perceptron":
		f1, f2, ok := strings.Cut(rest, ":")
		a, err1 := strconv.Atoi(f1)
		b, err2 := strconv.Atoi(f2)
		if !ok || err1 != nil || err2 != nil || a <= 0 || a > 24 || b <= 0 || b > 64 {
			return nil, fmt.Errorf("machine: bad %s predictor spec %q (want %s:BITS:HIST)", kind, spec, kind)
		}
		switch kind {
		case "gshare":
			return func() branch.Predictor { return branch.NewGshare(a, b) }, nil
		case "two-level-local":
			return func() branch.Predictor { return branch.NewTwoLevelLocal(a, b) }, nil
		default:
			return func() branch.Predictor { return branch.NewPerceptron(a, b) }, nil
		}
	default:
		return nil, fmt.Errorf("machine: unknown predictor kind %q in spec %q", kind, spec)
	}
}

// splitSpec2 parses "kind:INT:INT".
func splitSpec2(spec string) (kind string, a, b int, err error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	a, err = strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, 0, err
	}
	b, err = strconv.Atoi(parts[2])
	if err != nil {
		return "", 0, 0, err
	}
	return parts[0], a, b, nil
}

// MarshalJSON renders the configuration in its declarative wire form.
// Configurations carrying custom components without a spec form
// (arbitrary Policy/Prefetcher/Predictor implementations) fail loudly
// rather than serializing something that would not round-trip.
func (c Config) MarshalJSON() ([]byte, error) {
	var (
		cj  configJSON
		err error
	)
	cj.Name = c.Name
	if cj.L1I, err = levelToJSON(c.Hierarchy.L1I); err != nil {
		return nil, err
	}
	if cj.L1D, err = levelToJSON(c.Hierarchy.L1D); err != nil {
		return nil, err
	}
	if cj.L2, err = levelToJSON(c.Hierarchy.L2); err != nil {
		return nil, err
	}
	if cj.L3, err = levelToJSON(c.Hierarchy.L3); err != nil {
		return nil, err
	}
	if cj.Prefetcher, err = prefetcherToJSON(c.Hierarchy.Prefetcher); err != nil {
		return nil, err
	}
	if cj.Predictor, err = predictorToJSON(c.NewPredictor); err != nil {
		return nil, err
	}
	cj.BTBBits = c.BTBBits
	cj.RASDepth = c.RASDepth
	cj.Pipeline = c.Pipeline
	cj.ClockHz = c.ClockHz
	cj.UnifiedCodePath = c.UnifiedCodePath
	return json.Marshal(cj)
}

// UnmarshalJSON decodes the declarative wire form, reconstructs the
// component models from their specs, and validates the result — a
// successfully decoded Config is always runnable. Unknown fields are
// rejected so a typoed sweep axis or spec key fails the submission
// instead of silently sweeping the base machine.
func (c *Config) UnmarshalJSON(data []byte) error {
	var cj configJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cj); err != nil {
		return fmt.Errorf("machine: bad config JSON: %w", err)
	}
	var (
		out Config
		err error
	)
	out.Name = cj.Name
	if out.Hierarchy.L1I, err = levelFromJSON(cj.L1I, "l1i"); err != nil {
		return err
	}
	if out.Hierarchy.L1D, err = levelFromJSON(cj.L1D, "l1d"); err != nil {
		return err
	}
	if out.Hierarchy.L2, err = levelFromJSON(cj.L2, "l2"); err != nil {
		return err
	}
	if out.Hierarchy.L3, err = levelFromJSON(cj.L3, "l3"); err != nil {
		return err
	}
	if out.Hierarchy.Prefetcher, err = prefetcherFromJSON(cj.Prefetcher); err != nil {
		return err
	}
	if out.NewPredictor, err = predictorFromJSON(cj.Predictor); err != nil {
		return err
	}
	out.BTBBits = cj.BTBBits
	out.RASDepth = cj.RASDepth
	out.Pipeline = cj.Pipeline
	out.ClockHz = cj.ClockHz
	out.UnifiedCodePath = cj.UnifiedCodePath
	if err := out.Validate(); err != nil {
		return fmt.Errorf("machine: decoded config is invalid: %w", err)
	}
	*c = out
	return nil
}
