package machine

import (
	"fmt"
	"strings"
)

// Fidelity selects the simulation tier a pair is characterized with.
// The tiers trade accuracy for speed:
//
//   - FidelityExact simulates every instruction of the measured window
//     (the batched kernel, bit-identical to the reference kernel).
//   - FidelitySampled simulates periodic detailed windows and
//     extrapolates (SMARTS-style systematic sampling, ~20x).
//   - FidelityAnalytic simulates almost nothing: it measures a short
//     reuse-distance profile and predicts the cache miss rates from the
//     miss curve (StatStack-style), feeding a first-order interval
//     model (~100x+).
//
// Results from different tiers are never bit-identical, so the tier is
// folded into every result-cache key; the zero value is FidelityExact
// so pre-fidelity callers and serialized specs keep exact semantics.
type Fidelity int

const (
	FidelityExact Fidelity = iota
	FidelitySampled
	FidelityAnalytic
)

// String returns the canonical spelling accepted by ParseFidelity.
func (f Fidelity) String() string {
	switch f {
	case FidelityExact:
		return "exact"
	case FidelitySampled:
		return "sampled"
	case FidelityAnalytic:
		return "analytic"
	}
	return fmt.Sprintf("fidelity(%d)", int(f))
}

// ParseFidelity parses a tier name as spelled in flags and campaign
// specs. The empty string means exact, matching the zero value.
func ParseFidelity(s string) (Fidelity, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "exact":
		return FidelityExact, nil
	case "sampled":
		return FidelitySampled, nil
	case "analytic":
		return FidelityAnalytic, nil
	}
	return 0, fmt.Errorf("machine: unknown fidelity %q (want exact, sampled or analytic)", s)
}
