package machine

import (
	"strings"
	"testing"
)

// TestTopologyParseRoundTrip: the canonical "4P4E-random" spelling must
// round-trip through ParseTopology bijectively — the string is folded
// into result-cache keys, so two spellings of one topology must
// normalize to one canonical form and one key.
func TestTopologyParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Topology
	}{
		{"", Topology{}},
		{"off", Topology{}},
		{"none", Topology{}},
		{"4P4E-random", Topology{PCores: 4, ECores: 4, Placement: PlaceRandom}},
		{"4p4e-random", Topology{PCores: 4, ECores: 4, Placement: PlaceRandom}},
		{"4P+4E/random", Topology{PCores: 4, ECores: 4, Placement: PlaceRandom}},
		{"8P0E-pinned-p", Topology{PCores: 8, Placement: PlacePinnedP}},
		{"0P8E-pinned-e", Topology{ECores: 8, Placement: PlacePinnedE}},
		{"2P6E-best", Topology{PCores: 2, ECores: 6, Placement: PlaceBest}},
		{"2P6E-worst", Topology{PCores: 2, ECores: 6, Placement: PlaceWorst}},
		{"6P2E", Topology{PCores: 6, ECores: 2, Placement: PlacePinnedP}},
	}
	for _, tc := range cases {
		got, err := ParseTopology(tc.in)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTopology(%q) = %+v, want %+v", tc.in, got, tc.want)
			continue
		}
		if !got.Enabled() {
			continue
		}
		back, err := ParseTopology(got.String())
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", tc.in, got.String(), back, err)
		}
	}
}

// TestTopologyParseRejects: malformed strings and un-runnable
// placements fail at parse time, not deep inside a campaign.
func TestTopologyParseRejects(t *testing.T) {
	for _, in := range []string{
		"4X4E-random", "4P4-random", "PE-random", "4P4E-sideways",
		"4E4P-random",    // class order is fixed
		"0P4E-random",    // random needs both classes
		"4P0E-best",      // best compares both classes
		"0P4E-pinned-p",  // pinning to a class that has no cores
		"4P0E-pinned-e",  //
		"-1P4E-random",   // negative counts never parse
		"4P4E-random-x9", // trailing junk in the placement
	} {
		if tp, err := ParseTopology(in); err == nil {
			t.Errorf("ParseTopology(%q) = %+v, want error", in, tp)
		}
	}
}

// TestECoreConfig: the efficiency class derives deterministically from
// the base — narrower, slower, half the private L2 — and never mutates
// the base. Determinism is what lets the topology string alone key the
// scenario.
func TestECoreConfig(t *testing.T) {
	base := HaswellScaled()
	e := ECoreConfig(base)
	if e2 := ECoreConfig(base); e2.Name != e.Name || e2.ClockHz != e.ClockHz ||
		e2.Pipeline.Width != e.Pipeline.Width ||
		e2.Hierarchy.L2.SizeBytes != e.Hierarchy.L2.SizeBytes {
		t.Error("ECoreConfig is not deterministic")
	}
	if !strings.HasSuffix(e.Name, "+ecore") {
		t.Errorf("E-core name %q lacks the +ecore suffix", e.Name)
	}
	if e.Pipeline.Width != base.Pipeline.Width/2 {
		t.Errorf("E-core width %v, want %v", e.Pipeline.Width, base.Pipeline.Width/2)
	}
	if e.ClockHz >= base.ClockHz {
		t.Errorf("E-core clock %v not below base %v", e.ClockHz, base.ClockHz)
	}
	if e.Hierarchy.L2.SizeBytes != base.Hierarchy.L2.SizeBytes/2 {
		t.Errorf("E-core L2 %d, want half of %d", e.Hierarchy.L2.SizeBytes, base.Hierarchy.L2.SizeBytes)
	}
	if e.Hierarchy.L3.SizeBytes != base.Hierarchy.L3.SizeBytes {
		t.Error("E-core L3 differs: the shared level is a package property, not a class one")
	}
	if err := e.Validate(); err != nil {
		t.Errorf("derived E-core config invalid: %v", err)
	}
	// A minimum-width base still derives a runnable class.
	narrow := base
	narrow.Pipeline.Width = 1
	if w := ECoreConfig(narrow).Pipeline.Width; w != 1 {
		t.Errorf("E-core width floor: got %v, want 1", w)
	}
}

// TestTopologyModes: the placement distribution is deterministic, P
// before E, with weights proportional to core counts and summing to 1.
func TestTopologyModes(t *testing.T) {
	cases := []struct {
		topo Topology
		want []Mode
	}{
		{Topology{PCores: 4, ECores: 4, Placement: PlacePinnedP},
			[]Mode{{Class: "P", Weight: 1}}},
		{Topology{PCores: 4, ECores: 4, Placement: PlacePinnedE},
			[]Mode{{Class: "E", Weight: 1}}},
		{Topology{PCores: 2, ECores: 6, Placement: PlaceRandom},
			[]Mode{{Class: "P", Weight: 0.25}, {Class: "E", Weight: 0.75}}},
		{Topology{PCores: 1, ECores: 1, Placement: PlaceBest},
			[]Mode{{Class: "P", Weight: 0.5}, {Class: "E", Weight: 0.5}}},
	}
	for _, tc := range cases {
		got := tc.topo.Modes()
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d modes, want %d", tc.topo, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s mode %d = %+v, want %+v", tc.topo, i, got[i], tc.want[i])
			}
		}
	}
}
