package perf

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// Multiplex emulates Linux perf's counter multiplexing: the paper
// programs 15 events onto a PMU with far fewer hardware slots, so perf
// time-slices the events and scales each count by observed/enabled time.
// Scaling is unbiased but noisy; this function applies the corresponding
// deterministic relative error to every event so analyses can be tested
// for robustness to the paper's measurement methodology.
//
// slots is the number of simultaneously programmable counters (4 general
// purpose counters on Haswell per thread with hyperthreading enabled);
// seed fixes the noise realization. Counts, footprints and time are
// returned in a new snapshot; the input is unmodified.
func Multiplex(c *Counters, slots int, seed uint64) *Counters {
	if slots <= 0 {
		slots = 4
	}
	names := c.Names()
	groups := (len(names) + slots - 1) / slots
	if groups <= 1 {
		// Everything fits; no multiplexing, no error.
		return NewCounters(snapshotMap(c, names), c.RSSBytes, c.VSZBytes, c.Seconds)
	}
	// Each event is live for 1/groups of the run; the relative sampling
	// error of the scaled estimate shrinks with the live fraction.
	// Empirically perf's multiplexing error on steady workloads is a few
	// percent; model sigma = 2% x sqrt(groups-1).
	sigma := 0.02 * math.Sqrt(float64(groups-1))
	rng := xrand.NewPCG32(seed ^ 0x9e1f)
	sort.Strings(names)
	out := make(map[string]uint64, len(names))
	for _, name := range names {
		v, _ := c.Value(name)
		scale := 1 + sigma*rng.NormFloat64()
		if scale < 0 {
			scale = 0
		}
		out[name] = uint64(float64(v) * scale)
	}
	return NewCounters(out, c.RSSBytes, c.VSZBytes, c.Seconds)
}

func snapshotMap(c *Counters, names []string) map[string]uint64 {
	m := make(map[string]uint64, len(names))
	for _, n := range names {
		v, _ := c.Value(n)
		m[n] = v
	}
	return m
}
