package perf

import (
	"math"

	"repro/internal/xrand"
)

// Multiplex emulates Linux perf's counter multiplexing: the paper
// programs 15 events onto a PMU with far fewer hardware slots, so perf
// time-slices the events and scales each count by observed/enabled time.
// Scaling is unbiased but noisy; this function applies the corresponding
// deterministic relative error so analyses can be tested for robustness
// to the paper's measurement methodology.
//
// Events are scheduled into PMU groups of `slots` events (in sorted name
// order, the way perf fills its counter rotation), and every event in a
// group shares one scaling factor — grouped events are enabled and
// disabled together, so their observed/enabled ratios are identical.
// Because related events can still land in different groups, the branch
// subtype counts are renormalized afterwards against the scaled
// all-branches total (see renormalizeBranches); without that, the class
// shares derived in core.CharacterizePair could sum past 100%.
//
// slots is the number of simultaneously programmable counters (4 general
// purpose counters on Haswell per thread with hyperthreading enabled);
// seed fixes the noise realization. Counts, footprints and time are
// returned in a new snapshot; the input is unmodified.
func Multiplex(c *Counters, slots int, seed uint64) *Counters {
	if slots <= 0 {
		slots = 4
	}
	names := c.Names() // sorted
	groups := (len(names) + slots - 1) / slots
	if groups <= 1 {
		// Everything fits; no multiplexing, no error.
		return NewCounters(snapshotMap(c, names), c.RSSBytes, c.VSZBytes, c.Seconds)
	}
	// Each group is live for 1/groups of the run; the relative sampling
	// error of the scaled estimate shrinks with the live fraction.
	// Empirically perf's multiplexing error on steady workloads is a few
	// percent; model sigma = 2% x sqrt(groups-1).
	sigma := 0.02 * math.Sqrt(float64(groups-1))
	rng := xrand.NewPCG32(seed ^ 0x9e1f)
	scaled := make(map[string]float64, len(names))
	for start := 0; start < len(names); start += slots {
		scale := 1 + sigma*rng.NormFloat64()
		if scale < 0 {
			scale = 0
		}
		end := start + slots
		if end > len(names) {
			end = len(names)
		}
		for _, name := range names[start:end] {
			v, _ := c.Value(name)
			scaled[name] = float64(v) * scale
		}
	}
	renormalizeBranches(c, scaled)
	out := make(map[string]uint64, len(scaled))
	for name, v := range scaled {
		// Round to nearest: flooring would turn a small count scaled by
		// a factor just under 1 into 0, a 100% relative error.
		out[name] = uint64(math.Round(v))
	}
	clampBranchInts(out)
	return NewCounters(out, c.RSSBytes, c.VSZBytes, c.Seconds)
}

// branchSubtypes are the branch-class events whose shares of AllBranches
// must remain consistent after scaling.
var branchSubtypes = []string{
	CondBranches, DirectJumps, DirectCalls, IndirectJumps, Returns,
}

// renormalizeBranches rescales the branch subtype counts so that they
// keep their original coverage of AllBranches after multiplex scaling:
// independent group factors could otherwise push
// Cond+Jump+Call+Indirect+Return past 100% of the scaled total. The
// subtype vector is scaled uniformly (preserving the measured class mix)
// to match scaledAll * (origSubtypeSum / origAll). The mispredict count
// is likewise clamped to the scaled total so mispredicts per branch stay
// <= 100%.
func renormalizeBranches(orig *Counters, scaled map[string]float64) {
	allScaled, ok := scaled[AllBranches]
	if !ok {
		return
	}
	allOrig, _ := orig.Value(AllBranches)
	var subOrig, subScaled float64
	for _, name := range branchSubtypes {
		if v, present := orig.Value(name); present {
			subOrig += float64(v)
		}
		subScaled += scaled[name]
	}
	if allOrig > 0 && subOrig > 0 && subScaled > 0 {
		factor := allScaled * (subOrig / float64(allOrig)) / subScaled
		for _, name := range branchSubtypes {
			if _, present := scaled[name]; present {
				scaled[name] *= factor
			}
		}
	}
	if m, present := scaled[MispBranches]; present && m > allScaled {
		scaled[MispBranches] = allScaled
	}
}

// clampBranchInts restores the integer-domain invariants that rounding
// can nudge by a count or two: the branch subtype sum never exceeds
// AllBranches (excess comes off the largest subtype) and mispredicts
// never exceed AllBranches.
func clampBranchInts(out map[string]uint64) {
	all, ok := out[AllBranches]
	if !ok {
		return
	}
	var sum uint64
	largest := ""
	for _, n := range branchSubtypes {
		v, present := out[n]
		if !present {
			continue
		}
		sum += v
		if largest == "" || v > out[largest] {
			largest = n
		}
	}
	if excess := sum - all; sum > all && largest != "" && out[largest] >= excess {
		out[largest] -= excess
	}
	if m, present := out[MispBranches]; present && m > all {
		out[MispBranches] = all
	}
}

func snapshotMap(c *Counters, names []string) map[string]uint64 {
	m := make(map[string]uint64, len(names))
	for _, n := range names {
		v, _ := c.Value(n)
		m[n] = v
	}
	return m
}
