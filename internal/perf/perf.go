// Package perf exposes simulation results through a Linux-perf-style named
// counter interface. The event names are exactly the Haswell counter flags
// the paper lists for each characteristic (Section III), so analysis code
// reads simulated runs the same way the authors' scripts read
// `perf stat` output.
package perf

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Event names used by the paper (Table VIII and Section IV).
const (
	// InstRetired counts retired instructions (inst_retired.any).
	InstRetired = "inst_retired.any"
	// RefCycles counts unhalted reference cycles
	// (cpu_clk_unhalted.ref_tsc).
	RefCycles = "cpu_clk_unhalted.ref_tsc"
	// UopsRetired counts all retired micro-operations
	// (uops_retired.all).
	UopsRetired = "uops_retired.all"
	// AllLoads counts retired load micro-operations
	// (mem_uops_retired.all_loads).
	AllLoads = "mem_uops_retired.all_loads"
	// AllStores counts retired store micro-operations
	// (mem_uops_retired.all_stores).
	AllStores = "mem_uops_retired.all_stores"
	// AllBranches counts executed branch instructions
	// (br_inst_exec.all_branches).
	AllBranches = "br_inst_exec.all_branches"
	// MispBranches counts mispredicted executed branches
	// (br_misp_exec.all_branches).
	MispBranches = "br_misp_exec.all_branches"
	// CondBranches counts conditional branches
	// (br_inst_exec.all_conditional).
	CondBranches = "br_inst_exec.all_conditional"
	// DirectJumps counts unconditional direct jumps
	// (br_inst_exec.all_direct_jmp).
	DirectJumps = "br_inst_exec.all_direct_jmp"
	// DirectCalls counts direct near calls
	// (br_inst_exec.all_direct_near_call).
	DirectCalls = "br_inst_exec.all_direct_near_call"
	// IndirectJumps counts indirect non-call/return jumps
	// (br_inst_exec.all_indirect_jump_non_call_ret).
	IndirectJumps = "br_inst_exec.all_indirect_jump_non_call_ret"
	// Returns counts indirect near returns
	// (br_inst_exec.all_indirect_near_return).
	Returns = "br_inst_exec.all_indirect_near_return"
	// L1Hit / L1Miss count load uops by L1 outcome
	// (mem_load_uops_retired.l1_hit / .l1_miss).
	L1Hit  = "mem_load_uops_retired.l1_hit"
	L1Miss = "mem_load_uops_retired.l1_miss"
	// L2Hit / L2Miss count load uops by L2 outcome.
	L2Hit  = "mem_load_uops_retired.l2_hit"
	L2Miss = "mem_load_uops_retired.l2_miss"
	// L3Hit / L3Miss count load uops by L3 outcome.
	L3Hit  = "mem_load_uops_retired.l3_hit"
	L3Miss = "mem_load_uops_retired.l3_miss"
	// ICacheMisses counts L1I misses (icache.misses).
	ICacheMisses = "icache.misses"
	// DTLBWalks counts completed page walks
	// (dtlb_load_misses.walk_completed).
	DTLBWalks = "dtlb_load_misses.walk_completed"
)

// Counters is an immutable snapshot of named event counts from one run,
// plus the footprint metrics the paper samples with `ps`.
type Counters struct {
	values map[string]uint64
	// RSSBytes is the peak resident set size.
	RSSBytes uint64
	// VSZBytes is the peak virtual set size.
	VSZBytes uint64
	// Seconds is the modeled wall-clock execution time.
	Seconds float64
}

// NewCounters builds a snapshot from a value map; the map is copied.
func NewCounters(values map[string]uint64, rss, vsz uint64, seconds float64) *Counters {
	m := make(map[string]uint64, len(values))
	for k, v := range values {
		m[k] = v
	}
	return &Counters{values: m, RSSBytes: rss, VSZBytes: vsz, Seconds: seconds}
}

// countersJSON is the serialized form of Counters. Event counts are
// uint64 and the footprint/time fields are plain numbers, so a
// marshal→unmarshal round trip reproduces the snapshot bit-identically
// (Go's JSON encoder emits the shortest float representation that parses
// back to the same float64). The persistent result store depends on this.
type countersJSON struct {
	Values   map[string]uint64 `json:"values"`
	RSSBytes uint64            `json:"rss_bytes"`
	VSZBytes uint64            `json:"vsz_bytes"`
	Seconds  float64           `json:"seconds"`
}

// MarshalJSON implements json.Marshaler, exposing the private event map
// so snapshots can be persisted (map keys are emitted sorted, making the
// encoding deterministic).
func (c *Counters) MarshalJSON() ([]byte, error) {
	return json.Marshal(countersJSON{
		Values: c.values, RSSBytes: c.RSSBytes,
		VSZBytes: c.VSZBytes, Seconds: c.Seconds,
	})
}

// UnmarshalJSON implements json.Unmarshaler, rebuilding the snapshot
// produced by MarshalJSON.
func (c *Counters) UnmarshalJSON(data []byte) error {
	var j countersJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Values == nil {
		j.Values = map[string]uint64{}
	}
	c.values = j.Values
	c.RSSBytes = j.RSSBytes
	c.VSZBytes = j.VSZBytes
	c.Seconds = j.Seconds
	return nil
}

// Value returns the count for the named event, and whether it is present.
func (c *Counters) Value(name string) (uint64, bool) {
	v, ok := c.values[name]
	return v, ok
}

// MustValue returns the count for the named event and panics if absent —
// for events the simulator always produces.
func (c *Counters) MustValue(name string) uint64 {
	v, ok := c.values[name]
	if !ok {
		panic(fmt.Sprintf("perf: event %q not recorded", name))
	}
	return v
}

// Names returns the recorded event names in sorted order (like
// `perf list` output).
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.values))
	for k := range c.values {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Ratio returns Value(num)/Value(den), or 0 when the denominator is zero
// or either event is missing.
func (c *Counters) Ratio(num, den string) float64 {
	n, okN := c.values[num]
	d, okD := c.values[den]
	if !okN || !okD || d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// IPC returns instructions per cycle.
func (c *Counters) IPC() float64 { return c.Ratio(InstRetired, RefCycles) }

// LoadPct returns load uops as a percentage of all uops.
func (c *Counters) LoadPct() float64 { return 100 * c.Ratio(AllLoads, UopsRetired) }

// StorePct returns store uops as a percentage of all uops.
func (c *Counters) StorePct() float64 { return 100 * c.Ratio(AllStores, UopsRetired) }

// MemPct returns load+store uops as a percentage of all uops.
func (c *Counters) MemPct() float64 { return c.LoadPct() + c.StorePct() }

// BranchPct returns branches as a percentage of retired instructions.
func (c *Counters) BranchPct() float64 { return 100 * c.Ratio(AllBranches, InstRetired) }

// MispredictPct returns the branch mispredict rate in percent.
func (c *Counters) MispredictPct() float64 { return 100 * c.Ratio(MispBranches, AllBranches) }

// CacheMissPct returns the load miss rate in percent at the given level
// (1, 2 or 3), computed the way the paper does from
// mem_load_uops_retired.lN_hit / .lN_miss.
func (c *Counters) CacheMissPct(level int) float64 {
	var hit, miss string
	switch level {
	case 1:
		hit, miss = L1Hit, L1Miss
	case 2:
		hit, miss = L2Hit, L2Miss
	case 3:
		hit, miss = L3Hit, L3Miss
	default:
		panic(fmt.Sprintf("perf: invalid cache level %d", level))
	}
	h := c.values[hit]
	m := c.values[miss]
	if h+m == 0 {
		return 0
	}
	return 100 * float64(m) / float64(h+m)
}
