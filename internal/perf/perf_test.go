package perf

import (
	"fmt"
	"math"
	"testing"
)

func sample() *Counters {
	return NewCounters(map[string]uint64{
		InstRetired:  1000,
		RefCycles:    500,
		UopsRetired:  1000,
		AllLoads:     250,
		AllStores:    90,
		AllBranches:  160,
		MispBranches: 8,
		CondBranches: 120,
		L1Hit:        237,
		L1Miss:       13,
		L2Hit:        8,
		L2Miss:       5,
		L3Hit:        4,
		L3Miss:       1,
	}, 4096*10, 4096*20, 1.5)
}

func TestValueAndMustValue(t *testing.T) {
	c := sample()
	if v, ok := c.Value(InstRetired); !ok || v != 1000 {
		t.Errorf("Value = %d,%v", v, ok)
	}
	if _, ok := c.Value("nonexistent.event"); ok {
		t.Error("missing event reported present")
	}
	if got := c.MustValue(AllLoads); got != 250 {
		t.Errorf("MustValue = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustValue on missing event did not panic")
		}
	}()
	c.MustValue("nope")
}

func TestNamesSorted(t *testing.T) {
	names := sample().Names()
	if len(names) == 0 {
		t.Fatal("no names")
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names unsorted at %d: %s < %s", i, names[i], names[i-1])
		}
	}
}

func TestDerivedMetrics(t *testing.T) {
	c := sample()
	if got := c.IPC(); got != 2 {
		t.Errorf("IPC = %v, want 2", got)
	}
	if got := c.LoadPct(); got != 25 {
		t.Errorf("LoadPct = %v, want 25", got)
	}
	if got := c.StorePct(); got != 9 {
		t.Errorf("StorePct = %v, want 9", got)
	}
	if got := c.MemPct(); got != 34 {
		t.Errorf("MemPct = %v, want 34", got)
	}
	if got := c.BranchPct(); got != 16 {
		t.Errorf("BranchPct = %v, want 16", got)
	}
	if got := c.MispredictPct(); got != 5 {
		t.Errorf("MispredictPct = %v, want 5", got)
	}
}

func TestCacheMissPct(t *testing.T) {
	c := sample()
	if got := c.CacheMissPct(1); got != 5.2 {
		t.Errorf("L1 = %v, want 5.2", got)
	}
	if got := c.CacheMissPct(2); math.Abs(got-38.4615) > 0.001 {
		t.Errorf("L2 = %v, want ~38.46", got)
	}
	if got := c.CacheMissPct(3); got != 20 {
		t.Errorf("L3 = %v, want 20", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid level did not panic")
		}
	}()
	c.CacheMissPct(4)
}

func TestRatioEdgeCases(t *testing.T) {
	c := NewCounters(map[string]uint64{"a": 5, "b": 0}, 0, 0, 0)
	if got := c.Ratio("a", "b"); got != 0 {
		t.Errorf("zero denominator ratio = %v", got)
	}
	if got := c.Ratio("a", "missing"); got != 0 {
		t.Errorf("missing event ratio = %v", got)
	}
	empty := NewCounters(nil, 0, 0, 0)
	if empty.CacheMissPct(1) != 0 {
		t.Error("empty counters miss pct != 0")
	}
}

func TestCountersCopied(t *testing.T) {
	src := map[string]uint64{"x": 1}
	c := NewCounters(src, 0, 0, 0)
	src["x"] = 99
	if v, _ := c.Value("x"); v != 1 {
		t.Error("NewCounters did not copy the map")
	}
}

func TestFootprintFields(t *testing.T) {
	c := sample()
	if c.RSSBytes != 40960 || c.VSZBytes != 81920 || c.Seconds != 1.5 {
		t.Errorf("footprint fields = %d/%d/%v", c.RSSBytes, c.VSZBytes, c.Seconds)
	}
}

func TestMultiplexNoErrorWhenFits(t *testing.T) {
	c := sample()
	m := Multiplex(c, 64, 1)
	for _, name := range c.Names() {
		a, _ := c.Value(name)
		b, _ := m.Value(name)
		if a != b {
			t.Errorf("event %s changed %d -> %d with ample slots", name, a, b)
		}
	}
}

func TestMultiplexBoundedError(t *testing.T) {
	c := sample()
	m := Multiplex(c, 4, 7)
	for _, name := range c.Names() {
		a, _ := c.Value(name)
		b, _ := m.Value(name)
		if a == 0 {
			continue
		}
		rel := math.Abs(float64(b)-float64(a)) / float64(a)
		if rel > 0.25 {
			t.Errorf("event %s error %.2f too large", name, rel)
		}
	}
	// Footprint and time pass through unscaled.
	if m.RSSBytes != c.RSSBytes || m.Seconds != c.Seconds {
		t.Error("non-counter fields modified")
	}
}

func TestMultiplexDeterministic(t *testing.T) {
	c := sample()
	a := Multiplex(c, 4, 9)
	b := Multiplex(c, 4, 9)
	for _, name := range c.Names() {
		va, _ := a.Value(name)
		vb, _ := b.Value(name)
		if va != vb {
			t.Fatal("same seed, different multiplexing noise")
		}
	}
	d := Multiplex(c, 4, 10)
	same := true
	for _, name := range c.Names() {
		va, _ := a.Value(name)
		vd, _ := d.Value(name)
		if va != vd {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestMultiplexPreservesRatiosApproximately(t *testing.T) {
	c := sample()
	m := Multiplex(c, 4, 3)
	if got, want := m.IPC(), c.IPC(); math.Abs(got-want)/want > 0.2 {
		t.Errorf("multiplexed IPC %v too far from %v", got, want)
	}
}

// fullBranchSample mirrors a real run: all five branch subtype events
// present and summing exactly to AllBranches, plus enough other events to
// force several multiplex groups.
func fullBranchSample() *Counters {
	return NewCounters(map[string]uint64{
		InstRetired:   1000000,
		RefCycles:     500000,
		UopsRetired:   1000000,
		AllLoads:      250000,
		AllStores:     90000,
		AllBranches:   160000,
		MispBranches:  8000,
		CondBranches:  120000,
		DirectJumps:   14000,
		DirectCalls:   11000,
		IndirectJumps: 4000,
		Returns:       11000,
		L1Hit:         237000,
		L1Miss:        13000,
		L2Hit:         8000,
		L2Miss:        5000,
		L3Hit:         4000,
		L3Miss:        1000,
		ICacheMisses:  900,
		DTLBWalks:     120,
	}, 4096*10, 4096*20, 1.5)
}

// TestMultiplexBranchSharesStayConsistent: under multiplexing, the five
// branch-class shares never sum past 100% of AllBranches and stay close
// to full coverage — the bug this renormalization fixes let independent
// per-event noise push the sum above 100%.
func TestMultiplexBranchSharesStayConsistent(t *testing.T) {
	c := fullBranchSample()
	for seed := uint64(0); seed < 200; seed++ {
		m := Multiplex(c, 4, seed)
		all := float64(m.MustValue(AllBranches))
		if all == 0 {
			continue
		}
		var sub float64
		for _, name := range []string{CondBranches, DirectJumps, DirectCalls, IndirectJumps, Returns} {
			sub += float64(m.MustValue(name))
		}
		if share := 100 * sub / all; share > 100.0001 || share < 99.9 {
			t.Fatalf("seed %d: branch class shares sum to %.4f%%", seed, share)
		}
		if mp := m.MispredictPct(); mp > 100 {
			t.Fatalf("seed %d: mispredict rate %.2f%% > 100%%", seed, mp)
		}
	}
}

// TestMultiplexGroupSharesScale: events scheduled into the same PMU
// group carry the same scaling factor.
func TestMultiplexGroupSharesScale(t *testing.T) {
	// Ten like-named events; sorted order puts e00..e03 in group 0.
	vals := map[string]uint64{}
	for i := 0; i < 10; i++ {
		vals[fmt.Sprintf("e%02d", i)] = 1000000
	}
	c := NewCounters(vals, 0, 0, 0)
	m := Multiplex(c, 4, 5)
	g0 := m.MustValue("e00")
	for _, name := range []string{"e01", "e02", "e03"} {
		if v := m.MustValue(name); v != g0 {
			t.Errorf("same-group event %s scaled to %d, group leader %d", name, v, g0)
		}
	}
	// Across seeds, some group boundary must show a different factor
	// (otherwise grouping is vacuous).
	differs := false
	for seed := uint64(0); seed < 20 && !differs; seed++ {
		m := Multiplex(c, 4, seed)
		if m.MustValue("e00") != m.MustValue("e04") {
			differs = true
		}
	}
	if !differs {
		t.Error("groups never scaled independently across 20 seeds")
	}
}
