package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the splitmix64 reference
	// implementation.
	s := NewSplitMix64(1234567)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d: got %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestPCG32Deterministic(t *testing.T) {
	a := NewPCG32(7)
	b := NewPCG32(7)
	for i := 0; i < 1000; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestPCG32SeedsDiffer(t *testing.T) {
	a := NewPCG32(1)
	b := NewPCG32(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	p := NewPCG32(99)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := NewPCG32(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	p := NewPCG32(11)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[p.Intn(buckets)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewPCG32(1).Intn(0)
}

func TestUint64nBounds(t *testing.T) {
	p := NewPCG32(3)
	quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := p.Uint64n(n)
		return v < n
	}, &quick.Config{MaxCount: 2000})
}

func TestNormFloat64Moments(t *testing.T) {
	p := NewPCG32(21)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := p.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	p := NewPCG32(13)
	const prob = 0.25
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += p.Geometric(prob)
	}
	mean := float64(sum) / n
	want := (1 - prob) / prob // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	p := NewPCG32(13)
	for i := 0; i < 100; i++ {
		if v := p.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	NewPCG32(1).Geometric(0)
}

func TestCategoricalFrequencies(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	c := NewCategorical(weights)
	p := NewPCG32(17)
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[c.Sample(p)]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalSingle(t *testing.T) {
	c := NewCategorical([]float64{5})
	p := NewPCG32(1)
	for i := 0; i < 100; i++ {
		if c.Sample(p) != 0 {
			t.Fatal("single-category sampler returned nonzero index")
		}
	}
}

func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	c := NewCategorical([]float64{1, 0, 1})
	p := NewPCG32(23)
	for i := 0; i < 50000; i++ {
		if c.Sample(p) == 1 {
			t.Fatal("zero-weight category was sampled")
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {-1, 2}, {0, 0}, {math.NaN()}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCategorical(%v) did not panic", w)
				}
			}()
			NewCategorical(w)
		}()
	}
}

func TestCategoricalPropertyValidIndex(t *testing.T) {
	p := NewPCG32(31)
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		any := false
		for i, b := range raw {
			weights[i] = float64(b)
			if b > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		c := NewCategorical(weights)
		for i := 0; i < 20; i++ {
			idx := c.Sample(p)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	p := NewPCG32(41)
	const n = 100000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Sample(p)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Errorf("zipf counts not monotonically skewed: c0=%d c10=%d c50=%d",
			counts[0], counts[10], counts[50])
	}
}

func TestZipfUniformWhenZeroExponent(t *testing.T) {
	z := NewZipf(10, 0)
	p := NewPCG32(43)
	const n = 100000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[z.Sample(p)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0, 1) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func BenchmarkPCG32Uint32(b *testing.B) {
	p := NewPCG32(1)
	for i := 0; i < b.N; i++ {
		p.Uint32()
	}
}

func BenchmarkCategoricalSample(b *testing.B) {
	c := NewCategorical([]float64{10, 20, 5, 40, 25})
	p := NewPCG32(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sample(p)
	}
}

// TestDivisorExact sweeps divisors and operands — small values, powers of
// two, off-by-one neighbours, huge n, and random pairs — checking Div and
// Mod against the hardware operators bit for bit.
func TestDivisorExact(t *testing.T) {
	ns := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 100, 113,
		255, 256, 257, 641, 1 << 20, 1<<20 + 1, 1<<32 - 1, 1 << 32, 1<<32 + 1,
		1<<63 - 1, 1 << 63, 1<<63 + 1, ^uint64(0) - 1, ^uint64(0)}
	vs := []uint64{0, 1, 2, 3, 63, 64, 65, 1<<32 - 1, 1 << 32,
		1<<63 - 1, 1 << 63, ^uint64(0) - 1, ^uint64(0)}
	for _, n := range ns {
		d := NewDivisor(n)
		if d.N() != n {
			t.Fatalf("N() = %d, want %d", d.N(), n)
		}
		for _, v := range vs {
			if got, want := d.Div(v), v/n; got != want {
				t.Fatalf("Divisor(%d).Div(%d) = %d, want %d", n, v, got, want)
			}
			if got, want := d.Mod(v), v%n; got != want {
				t.Fatalf("Divisor(%d).Mod(%d) = %d, want %d", n, v, got, want)
			}
		}
	}
	rng := NewPCG32(0xd1715)
	for i := 0; i < 2_000_000; i++ {
		n := rng.Uint64()>>uint(rng.Intn(64)) | 1
		v := rng.Uint64() >> uint(rng.Intn(64))
		d := NewDivisor(n)
		if got, want := d.Div(v), v/n; got != want {
			t.Fatalf("Divisor(%d).Div(%d) = %d, want %d", n, v, got, want)
		}
		if got, want := d.Mod(v), v%n; got != want {
			t.Fatalf("Divisor(%d).Mod(%d) = %d, want %d", n, v, got, want)
		}
	}
}

func TestDivisorPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDivisor(0) did not panic")
		}
	}()
	NewDivisor(0)
}

func TestFillMatchesUint32(t *testing.T) {
	// Fill must be bit-identical to successive Uint32 calls — including
	// the sub-8 scalar path, non-multiple-of-4 tails, and the generator
	// state left behind — for any split of the stream between the two.
	for _, n := range []int{0, 1, 3, 7, 8, 9, 12, 15, 64, 257, 1000} {
		ref := NewPCG32(42)
		got := NewPCG32(42)
		// Offset the split point so Fill starts mid-stream too.
		ref.Uint32()
		got.Uint32()
		buf := make([]uint32, n)
		got.Fill(buf)
		for i := 0; i < n; i++ {
			if want := ref.Uint32(); buf[i] != want {
				t.Fatalf("Fill(%d): value %d = %#x, want %#x", n, i, buf[i], want)
			}
		}
		if got.Uint32() != ref.Uint32() {
			t.Fatalf("Fill(%d): generator state diverged after fill", n)
		}
	}
}

func TestAdvanceMatchesSteps(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 3, 17, 255, 1 << 12, 999999} {
		ref := NewPCG32(7)
		got := NewPCG32(7)
		for i := uint64(0); i < n; i++ {
			ref.Uint32()
		}
		got.Advance(n)
		if ref.Uint32() != got.Uint32() {
			t.Fatalf("Advance(%d) diverged from %d Uint32 steps", n, n)
		}
	}
}

func TestAdvanceRewinds(t *testing.T) {
	// A wrapped "negative" delta must undo a forward advance exactly;
	// buffered consumers rely on this to return unconsumed draws.
	for _, n := range []uint64{1, 5, 512, 100000} {
		ref := NewPCG32(99)
		got := NewPCG32(99)
		got.Advance(n)
		got.Advance(0 - n)
		if ref.Uint32() != got.Uint32() {
			t.Fatalf("Advance(%d) then Advance(-%d) is not the identity", n, n)
		}
	}
}

func TestZipfPickMatchesSample(t *testing.T) {
	z := NewZipf(100, 1.3)
	a := NewPCG32(5)
	b := NewPCG32(5)
	for i := 0; i < 1000; i++ {
		if z.Sample(a) != z.Pick(b.Uint32()) {
			t.Fatalf("Zipf Pick diverged from Sample at draw %d", i)
		}
	}
}
