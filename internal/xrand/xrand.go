// Package xrand provides deterministic, seedable pseudo-random number
// generators and sampling distributions used by the synthetic workload
// generators.
//
// Everything in this package is reproducible: the same seed always yields
// the same stream, independent of Go version or platform. No global state
// is used, so concurrent simulations of different application-input pairs
// never interfere with each other.
package xrand

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both as a standalone generator and to seed PCG32 state from a single
// 64-bit seed. The zero value is a valid generator (seeded with 0).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PCG32 is the PCG-XSH-RR 64/32 generator of O'Neill. It has a 2^64 period,
// excellent statistical quality for simulation workloads, and is cheap
// enough to sit on the hot path of trace generation.
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 returns a PCG32 seeded from a single 64-bit seed. The stream
// increment is derived from the seed via SplitMix64 so that different seeds
// produce uncorrelated streams.
func NewPCG32(seed uint64) *PCG32 {
	sm := NewSplitMix64(seed)
	p := &PCG32{}
	p.state = sm.Uint64()
	p.inc = sm.Uint64() | 1 // must be odd
	p.Uint32()
	return p
}

// Uint32 returns the next 32-bit value in the stream.
func (p *PCG32) Uint32() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64-bit value, composed of two 32-bit outputs.
func (p *PCG32) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's nearly-divisionless method is used to avoid modulo bias.
func (p *PCG32) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(p.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if
// n == 0.
func (p *PCG32) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Rejection sampling on the top of the range removes modulo bias.
	max := ^uint64(0) - (^uint64(0) % n)
	for {
		v := p.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (p *PCG32) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability prob.
func (p *PCG32) Bool(prob float64) bool {
	return p.Float64() < prob
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (p *PCG32) NormFloat64() float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Geometric returns a geometric variate with success probability prob,
// i.e. the number of failures before the first success (support {0,1,...}).
// It panics if prob is not in (0, 1].
func (p *PCG32) Geometric(prob float64) int {
	if prob <= 0 || prob > 1 {
		panic("xrand: Geometric probability out of (0,1]")
	}
	if prob == 1 {
		return 0
	}
	u := p.Float64()
	// Inverse transform: floor(log(1-u) / log(1-prob)).
	return int(math.Log(1-u) / math.Log(1-prob))
}

// Categorical samples from a discrete distribution in O(1) using Walker's
// alias method. Build once with NewCategorical, then call Sample per draw.
type Categorical struct {
	prob  []float64
	alias []int
}

// NewCategorical builds an alias table for the given non-negative weights.
// Weights need not sum to one. It panics if weights is empty, any weight is
// negative or NaN, or all weights are zero.
func NewCategorical(weights []float64) *Categorical {
	n := len(weights)
	if n == 0 {
		panic("xrand: NewCategorical with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: NewCategorical with negative or NaN weight")
		}
		total += w
	}
	if total == 0 {
		panic("xrand: NewCategorical with all-zero weights")
	}
	c := &Categorical{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		c.prob[i] = 1
		c.alias[i] = i
	}
	for _, i := range small {
		c.prob[i] = 1
		c.alias[i] = i
	}
	return c
}

// N returns the number of categories.
func (c *Categorical) N() int { return len(c.prob) }

// Sample draws a category index using rng.
func (c *Categorical) Sample(rng *PCG32) int {
	i := rng.Intn(len(c.prob))
	if rng.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It precomputes the CDF and samples by binary search, which is
// fast enough for the moderate n used in branch-site selection.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s. It panics if
// n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Sample draws an index using rng.
func (z *Zipf) Sample(rng *PCG32) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
