// Package xrand provides deterministic, seedable pseudo-random number
// generators and sampling distributions used by the synthetic workload
// generators.
//
// Everything in this package is reproducible: the same seed always yields
// the same stream, independent of Go version or platform. No global state
// is used, so concurrent simulations of different application-input pairs
// never interfere with each other.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both as a standalone generator and to seed PCG32 state from a single
// 64-bit seed. The zero value is a valid generator (seeded with 0).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PCG32 is the PCG-XSH-RR 64/32 generator of O'Neill. It has a 2^64 period,
// excellent statistical quality for simulation workloads, and is cheap
// enough to sit on the hot path of trace generation.
type PCG32 struct {
	state uint64
	inc   uint64
}

// NewPCG32 returns a PCG32 seeded from a single 64-bit seed. The stream
// increment is derived from the seed via SplitMix64 so that different seeds
// produce uncorrelated streams.
func NewPCG32(seed uint64) *PCG32 {
	sm := NewSplitMix64(seed)
	p := &PCG32{}
	p.state = sm.Uint64()
	p.inc = sm.Uint64() | 1 // must be odd
	p.Uint32()
	return p
}

// pcgMult is the PCG 64-bit LCG multiplier.
const pcgMult = 6364136223846793005

// Uint32 returns the next 32-bit value in the stream.
func (p *PCG32) Uint32() uint32 {
	old := p.state
	p.state = old*pcgMult + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// pcgOut is the XSH-RR output permutation Uint32 applies to the
// pre-advance state, split out for the block generator.
func pcgOut(old uint64) uint32 {
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Fill writes the next len(buf) values of the stream into buf and
// advances the generator past them — bit-identical to len(buf)
// successive Uint32 calls. The values are produced four stream
// positions at a time on independent leapfrogged LCG lanes
// (s[k+4] = s[k]*m^4 + c*(m^3+m^2+m+1)), so the serial multiply
// recurrence that bounds Uint32's latency splits into four chains the
// CPU overlaps. Bulk consumers that buffer draws (the synthetic
// generator's fast-forward) get values at multiply throughput instead
// of recurrence latency.
func (p *PCG32) Fill(buf []uint32) {
	if len(buf) < 8 {
		for i := range buf {
			buf[i] = p.Uint32()
		}
		return
	}
	inc := p.inc
	m1 := uint64(pcgMult) // force wrapping (non-constant) arithmetic below
	m2 := m1 * m1
	c2 := (m1 + 1) * inc
	m4 := m2 * m2
	c4 := (m2 + 1) * c2
	s0 := p.state
	s1 := s0*pcgMult + inc
	s2 := s1*pcgMult + inc
	s3 := s2*pcgMult + inc
	i := 0
	for ; i+4 <= len(buf); i += 4 {
		buf[i] = pcgOut(s0)
		buf[i+1] = pcgOut(s1)
		buf[i+2] = pcgOut(s2)
		buf[i+3] = pcgOut(s3)
		s0 = s0*m4 + c4
		s1 = s1*m4 + c4
		s2 = s2*m4 + c4
		s3 = s3*m4 + c4
	}
	// Lane 0 has advanced exactly i positions; finish any tail serially.
	for ; i < len(buf); i++ {
		buf[i] = pcgOut(s0)
		s0 = s0*pcgMult + inc
	}
	p.state = s0
}

// Advance moves the stream delta steps in O(log delta) time, leaving
// the generator exactly where delta Uint32 calls would. delta is
// interpreted modulo 2^64 and the LCG multiplier is odd (invertible),
// so a "negative" delta — Advance(k - n) with k < n — rewinds the
// stream; buffered consumers use that to return unconsumed draws.
// (Brown's arbitrary-stride jump: square-and-multiply on the affine
// state map.)
func (p *PCG32) Advance(delta uint64) {
	accMul, accAdd := uint64(1), uint64(0)
	curMul, curAdd := uint64(pcgMult), p.inc
	for delta > 0 {
		if delta&1 != 0 {
			accMul *= curMul
			accAdd = accAdd*curMul + curAdd
		}
		curAdd = (curMul + 1) * curAdd
		curMul *= curMul
		delta >>= 1
	}
	p.state = accMul*p.state + accAdd
}

// Uint64 returns the next 64-bit value, composed of two 32-bit outputs.
func (p *PCG32) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. Lemire's nearly-divisionless method is used to avoid modulo bias.
func (p *PCG32) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(p.Uint64n(uint64(n)))
}

// Uint32n returns a uniformly distributed value in [0, n) using Lemire's
// nearly-divisionless multiply-shift method: the common path is a single
// 32-bit draw and one widening multiply, with the debiasing division
// deferred to the (probability n/2^32) rejection path. It panics if
// n == 0. This is the workhorse of the trace samplers: one generator
// step per draw instead of the two a 64-bit draw costs.
func (p *PCG32) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("xrand: Uint32n with zero n")
	}
	x := p.Uint32()
	m := uint64(x) * uint64(n)
	if l := uint32(m); l < n {
		t := -n % n
		for l < t {
			x = p.Uint32()
			m = uint64(x) * uint64(n)
			l = uint32(m)
		}
	}
	return uint32(m >> 32)
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if
// n == 0.
func (p *PCG32) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Rejection sampling on the top of the range removes modulo bias.
	max := ^uint64(0) - (^uint64(0) % n)
	for {
		v := p.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Uint64nBound returns the rejection bound Uint64n uses internally for a
// given n. Callers that draw many values for the same n can compute it
// once and pass it to Uint64nFast, saving one 64-bit division per draw.
// It panics if n == 0.
func Uint64nBound(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64nBound with zero n")
	}
	return ^uint64(0) - (^uint64(0) % n)
}

// Uint64nFast is Uint64n with the rejection bound precomputed by
// Uint64nBound(n). For equal n it consumes the generator identically to
// Uint64n and returns the same values; it exists purely so batch
// generators can hoist the bound computation out of their inner loops.
func (p *PCG32) Uint64nFast(n, bound uint64) uint64 {
	for {
		v := p.Uint64()
		if v < bound {
			return v % n
		}
	}
}

// Uint64nDiv is Uint64nFast with the final modulo performed by a
// precomputed Divisor, removing the hardware divide from the accepted
// path as well. d must be NewDivisor(n) and bound Uint64nBound(n); the
// values and generator consumption are then identical to Uint64n(n).
func (p *PCG32) Uint64nDiv(d Divisor, bound uint64) uint64 {
	for {
		v := p.Uint64()
		if v < bound {
			return d.Mod(v)
		}
	}
}

// Divisor performs exact unsigned division and modulo by a fixed n using
// the Granlund–Montgomery multiply-shift technique, replacing the ~30-90
// cycle hardware divide in `v % n` with two multiplies. Div and Mod
// return bit-identical results to v/n and v%n for every v; the batched
// samplers rely on this to keep their streams equal to the legacy paths'.
type Divisor struct {
	n    uint64
	m    uint64 // low 64 bits of the 65-bit magic floor(2^(64+l)/n)+1
	sh   uint   // post-shift: l-1 (generic) or log2(n) (power of two)
	pow2 bool
}

// NewDivisor prepares a divisor for n. It panics if n == 0.
func NewDivisor(n uint64) Divisor {
	if n == 0 {
		panic("xrand: NewDivisor with zero n")
	}
	if n&(n-1) == 0 {
		return Divisor{n: n, pow2: true, sh: uint(bits.TrailingZeros64(n))}
	}
	// l = ceil(log2 n), so 2^(l-1) < n < 2^l. The 65-bit magic is
	// M = floor(2^(64+l)/n) + 1 = 2^64 + m with m below: 2^(64+l)/n
	// splits as (2^l/n)<<64 + ((2^l mod n)<<64)/n = 2^64 + q0.
	l := uint(bits.Len64(n - 1))
	q0, _ := bits.Div64((uint64(1)<<l)-n, 0, n)
	return Divisor{n: n, m: q0 + 1, sh: l - 1}
}

// N returns the divisor's modulus.
func (d Divisor) N() uint64 { return d.n }

// Div returns v / d.n exactly.
func (d Divisor) Div(v uint64) uint64 {
	if d.pow2 {
		return v >> d.sh
	}
	// q = floor(M*v / 2^(64+l)) with M = 2^64 + m: the 2^64 term
	// contributes v, recombined overflow-free as t + (v-t)/2 (v >= t).
	t, _ := bits.Mul64(d.m, v)
	return (t + (v-t)>>1) >> d.sh
}

// Mod returns v % d.n exactly.
func (d Divisor) Mod(v uint64) uint64 {
	if d.pow2 {
		return v & (d.n - 1)
	}
	return v - d.Div(v)*d.n
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (p *PCG32) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability prob. It always consumes exactly one
// 32-bit draw (probability resolution 2^-32), so a stream stays aligned
// regardless of the probabilities asked of it.
func (p *PCG32) Bool(prob float64) bool {
	r := p.Uint32()
	if prob >= 1 {
		return true
	}
	// Comparing in float64 avoids the out-of-range edge of converting
	// prob*2^32 to an integer; float64(r) and the product are both exact
	// enough at 2^-32 granularity, and prob <= 0 can never be greater
	// than a non-negative draw.
	return float64(r) < prob*(1<<32)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (p *PCG32) NormFloat64() float64 {
	for {
		u := 2*p.Float64() - 1
		v := 2*p.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Geometric returns a geometric variate with success probability prob,
// i.e. the number of failures before the first success (support {0,1,...}).
// It panics if prob is not in (0, 1].
func (p *PCG32) Geometric(prob float64) int {
	if prob <= 0 || prob > 1 {
		panic("xrand: Geometric probability out of (0,1]")
	}
	if prob == 1 {
		return 0
	}
	u := p.Float64()
	// Inverse transform: floor(log(1-u) / log(1-prob)).
	return int(math.Log(1-u) / math.Log(1-prob))
}

// Categorical samples from a discrete distribution in O(1) using Walker's
// alias method. Build once with NewCategorical, then call Sample per draw.
// A draw costs a single 32-bit generator step: the low 16 bits select the
// alias slot and the independent high 16 bits flip the biased coin, so
// category probabilities are realized at 2^-16 resolution — far below the
// percent-scale tolerances of the workload models this feeds.
type Categorical struct {
	// Threshold and alias are interleaved so a draw costs one bounds
	// check and one 8-byte load — that keeps Sample within the
	// compiler's inlining budget, which matters because the synthesis
	// hot loops draw from it once per uop.
	ta []catEntry
	n  uint32
}

type catEntry struct {
	// threshold is prob[i] scaled to [0, 1<<16]; the coin keeps slot i
	// when the high half of the draw is below it.
	threshold uint32
	alias     int32
}

// NewCategorical builds an alias table for the given non-negative weights.
// Weights need not sum to one. It panics if weights is empty, any weight is
// negative or NaN, or all weights are zero.
func NewCategorical(weights []float64) *Categorical {
	n := len(weights)
	if n == 0 {
		panic("xrand: NewCategorical with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: NewCategorical with negative or NaN weight")
		}
		total += w
	}
	if total == 0 {
		panic("xrand: NewCategorical with all-zero weights")
	}
	c := &Categorical{
		ta: make([]catEntry, n),
		n:  uint32(n),
	}
	prob := make([]float64, n)
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		c.ta[s].alias = int32(l)
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		c.ta[i].alias = int32(i)
	}
	for _, i := range small {
		prob[i] = 1
		c.ta[i].alias = int32(i)
	}
	for i, p := range prob {
		c.ta[i].threshold = uint32(math.Round(p * (1 << 16)))
	}
	return c
}

// N returns the number of categories.
func (c *Categorical) N() int { return len(c.ta) }

// Sample draws a category index using rng. One 32-bit draw: the low half
// picks the slot (a fixed-point multiply, never a divide), the disjoint —
// hence independent — high half flips the alias coin.
func (c *Categorical) Sample(rng *PCG32) int {
	return c.Pick(rng.Uint32())
}

// Pick maps one full 32-bit draw to a category. It is split from Sample
// so that both it and PCG32.Uint32 fit the compiler's inlining budget
// individually: a hot loop writing c.Pick(rng.Uint32()) compiles with no
// call at all, where c.Sample(rng) — whose body costs the sum of the
// two — does not.
func (c *Categorical) Pick(r uint32) int {
	i := (r & 0xffff) * c.n >> 16
	e := c.ta[i]
	// Conditional-move form: the coin is independent noise, so a branch
	// here would mispredict at the flip rate; a select never does.
	v := e.alias
	if r>>16 < e.threshold {
		v = int32(i)
	}
	return int(v)
}

// SampleFast is an alias for Sample, kept so call sites on the batched
// hot path read explicitly; the single-draw sampler no longer has any
// per-call setup worth hoisting.
func (c *Categorical) SampleFast(rng *PCG32) int { return c.Sample(rng) }

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. The CDF is precomputed in 32-bit fixed point and sampled
// with one 32-bit draw and an integer binary search; a 256-entry guide
// table narrows the search to a couple of probes even for thousands of
// branch sites.
type Zipf struct {
	// cdf[i] is the inclusive cumulative probability of items 0..i scaled
	// to 2^32, with the final entry saturated so every draw lands.
	cdf []uint32
	// guide[b] is the first index whose cdf can cover a draw with high
	// byte b, so Sample searches only [guide[b], guide[b+1]].
	guide [257]int32
}

// NewZipf builds a Zipf sampler over n items with exponent s. It panics if
// n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	fcdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		fcdf[i] = sum
	}
	z := &Zipf{cdf: make([]uint32, n)}
	for i := range fcdf {
		v := math.Round(fcdf[i] / sum * (1 << 32))
		if v >= (1 << 32) {
			v = (1 << 32) - 1
		}
		z.cdf[i] = uint32(v)
	}
	z.cdf[n-1] = ^uint32(0)
	// guide[b] = first i with cdf[i] >= b<<24, i.e. the lowest index any
	// draw whose high byte is b could select.
	i := int32(0)
	for b := 0; b <= 256; b++ {
		lo := uint64(b) << 24
		for int(i) < n-1 && uint64(z.cdf[i]) < lo {
			i++
		}
		z.guide[b] = i
	}
	return z
}

// Sample draws an index using rng: one 32-bit draw, then an integer
// binary search over the guide-table bucket the draw's high byte selects.
// An item i is drawn when cdf[i-1] <= u < cdf[i] (in 2^32 fixed point),
// realizing each item's probability at 2^-32 resolution.
func (z *Zipf) Sample(rng *PCG32) int {
	return z.Pick(rng.Uint32())
}

// Pick maps one full 32-bit draw to an item — Sample with the draw
// supplied by the caller, so consumers that buffer their draws (see
// PCG32.Fill) sample without touching the generator.
func (z *Zipf) Pick(u uint32) int {
	b := u >> 24
	lo, hi := int(z.guide[b]), int(z.guide[b+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
