// Package store implements the persistent, content-addressed result
// store that sits under the in-memory campaign cache (internal/sched) as
// its second tier. One record holds one cached campaign result, keyed by
// the same content hashes the memory tier uses
// (machine Config.Fingerprint + pair model + run options), so a record
// is immutable by construction: equal keys imply bit-identical payloads,
// which is why overwrites, concurrent writers and cross-process sharing
// need no coordination beyond atomic file replacement.
//
// Durability model. Records are JSON envelopes carrying the key, a
// SHA-256 checksum of the payload, and the payload itself. Writes go to
// a temp file in the destination directory and are published with
// os.Rename, so readers only ever observe complete envelopes. Loads
// verify the envelope's key and checksum; any unreadable, truncated,
// corrupt or mismatched record is reported as a miss — never an error —
// so a crash mid-write (or a stray editor) costs at most one
// recomputation.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Process-wide store metrics: operation outcomes plus read/write
// latency histograms. These aggregate across every Store handle in the
// process (handles already keep per-handle Stats).
var (
	metOps = map[string]*obs.Counter{
		"hit":         obs.Default().Counter("speckit_store_ops_total", "Store operations by outcome.", "op", "hit"),
		"miss":        obs.Default().Counter("speckit_store_ops_total", "", "op", "miss"),
		"corrupt":     obs.Default().Counter("speckit_store_ops_total", "", "op", "corrupt"),
		"write":       obs.Default().Counter("speckit_store_ops_total", "", "op", "write"),
		"write_error": obs.Default().Counter("speckit_store_ops_total", "", "op", "write_error"),
	}
	metReadSeconds = obs.Default().Histogram("speckit_store_read_seconds",
		"Record load latency (any outcome).", obs.LatencyBuckets)
	metWriteSeconds = obs.Default().Histogram("speckit_store_write_seconds",
		"Record persist latency (any outcome).", obs.LatencyBuckets)
)

// Store is a directory of content-addressed result records. It
// implements sched.Backend. Safe for concurrent use by any number of
// goroutines and processes sharing the directory.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// Stats are cumulative operation counters for one Store handle.
type Stats struct {
	// Hits counts Loads that returned an intact record; Misses counts
	// Loads that found nothing usable.
	Hits, Misses uint64
	// Corrupt is the subset of Misses caused by a record that existed
	// but failed envelope, key or checksum validation.
	Corrupt uint64
	// Writes counts successful Stores; WriteErrors counts Stores that
	// failed to land (best-effort, so they surface only here).
	Writes, WriteErrors uint64
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// envelope is the on-disk record format.
type envelope struct {
	// Key echoes the content key the record was stored under; Load
	// rejects a record whose Key does not match the requested key
	// (e.g. a file copied to the wrong name).
	Key string `json:"key"`
	// SHA256 is the hex checksum of the raw Payload bytes.
	SHA256 string `json:"sha256"`
	// Payload is the codec-encoded result, kept verbatim.
	Payload json.RawMessage `json:"payload"`
}

// path maps a key to its record file. Keys produced by the campaign
// cache are hex SHA-256 digests and are used directly, sharded by their
// first byte so a 194-pair sweep doesn't pile every record into one
// directory; any other key is first hashed so arbitrary strings can
// never escape the store root or collide with shard names.
func (s *Store) path(key string) string {
	if !isHexKey(key) {
		sum := sha256.Sum256([]byte(key))
		key = hex.EncodeToString(sum[:])
	}
	return filepath.Join(s.dir, key[:2], key+".json")
}

func isHexKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Load returns the payload stored under key. Implements sched.Backend:
// every failure mode — absent file, unreadable file, truncated or
// garbage JSON, key mismatch, checksum mismatch — is a miss, never an
// error.
func (s *Store) Load(key string) ([]byte, bool) {
	start := time.Now()
	defer func() { metReadSeconds.ObserveDuration(time.Since(start)) }()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.count(func(st *Stats) { st.Misses++ })
		metOps["miss"].Inc()
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		metOps["corrupt"].Inc()
		return nil, false
	}
	sum := sha256.Sum256(env.Payload)
	if env.Key != key || env.SHA256 != hex.EncodeToString(sum[:]) || len(env.Payload) == 0 {
		s.count(func(st *Stats) { st.Misses++; st.Corrupt++ })
		metOps["corrupt"].Inc()
		return nil, false
	}
	s.count(func(st *Stats) { st.Hits++ })
	metOps["hit"].Inc()
	return env.Payload, true
}

// Store persists data under key, replacing any existing record
// atomically. Implements sched.Backend: failures are swallowed (they
// only cost a future recomputation) and surface in Stats.WriteErrors.
func (s *Store) Store(key string, data []byte) {
	start := time.Now()
	defer func() { metWriteSeconds.ObserveDuration(time.Since(start)) }()
	if err := s.write(key, data); err != nil {
		s.count(func(st *Stats) { st.WriteErrors++ })
		metOps["write_error"].Inc()
		return
	}
	s.count(func(st *Stats) { st.Writes++ })
	metOps["write"].Inc()
}

func (s *Store) write(key string, data []byte) error {
	sum := sha256.Sum256(data)
	env, err := json.Marshal(envelope{
		Key:     key,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: json.RawMessage(data),
	})
	if err != nil {
		return err
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	// Write-then-rename in the destination directory: a reader sees the
	// old record or the new one, never a partial file, and a crash
	// leaves at worst an orphaned temp file that Load never looks at.
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// Len walks the store and returns the number of record files — a test
// and metrics helper, not a hot path.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}

// Stats returns the handle's cumulative counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
