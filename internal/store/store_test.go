package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// hexKey builds a realistic content key (the campaign cache uses hex
// SHA-256 digests).
func hexKey(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := hexKey("pair-1")
	payload := []byte(`{"ipc":1.25,"pair":"505.mcf_r"}`)
	s.Store(key, payload)

	got, ok := s.Load(key)
	if !ok {
		t.Fatal("freshly stored record is a miss")
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round trip: got %s want %s", got, payload)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 0 || st.WriteErrors != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLoadAbsentIsMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	if _, ok := s.Load(hexKey("never-stored")); ok {
		t.Fatal("absent key reported as hit")
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("stats = %+v, want clean miss", st)
	}
}

func TestReopenSurvivesProcess(t *testing.T) {
	dir := t.TempDir()
	key := hexKey("durable")
	s1, _ := Open(dir)
	s1.Store(key, []byte(`{"v":42}`))

	s2, err := Open(dir) // fresh handle, as a new process would make
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Load(key)
	if !ok || string(got) != `{"v":42}` {
		t.Fatalf("reopened store: ok=%v payload=%s", ok, got)
	}
}

// corruptions enumerates the on-disk failure modes Load must absorb as
// misses: each mutator damages a valid record file in a different way.
var corruptions = []struct {
	name   string
	mutate func(t *testing.T, path string)
}{
	{"truncated", func(t *testing.T, path string) {
		data, _ := os.ReadFile(path)
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"garbage", func(t *testing.T, path string) {
		if err := os.WriteFile(path, []byte("not json at all\x00\xff"), 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"empty", func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}},
	{"tampered-payload", func(t *testing.T, path string) {
		data, _ := os.ReadFile(path)
		// Flip the stored IPC without updating the checksum.
		out := strings.Replace(string(data), `\"ipc\":1`, `\"ipc\":9`, 1)
		if out == string(data) {
			out = strings.Replace(string(data), `1.25`, `9.25`, 1)
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}},
}

func TestCorruptRecordIsMissNeverError(t *testing.T) {
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := Open(t.TempDir())
			key := hexKey("victim-" + tc.name)
			s.Store(key, []byte(`{"ipc":1.25}`))
			tc.mutate(t, s.path(key))

			if _, ok := s.Load(key); ok {
				t.Fatal("corrupt record reported as hit")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Errorf("stats = %+v, want Corrupt=1", st)
			}
			// The store self-heals by overwrite: a recomputation's
			// write-through replaces the bad record.
			s.Store(key, []byte(`{"ipc":1.25}`))
			if _, ok := s.Load(key); !ok {
				t.Fatal("rewrite after corruption did not recover")
			}
		})
	}
}

func TestRecordCopiedToWrongKeyIsMiss(t *testing.T) {
	s, _ := Open(t.TempDir())
	k1, k2 := hexKey("a"), hexKey("b")
	s.Store(k1, []byte(`{"v":1}`))
	// Simulate an operator copying a record file onto another key's
	// path: the envelope's embedded key no longer matches.
	if err := os.MkdirAll(filepath.Dir(s.path(k2)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(s.path(k1))
	if err := os.WriteFile(s.path(k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(k2); ok {
		t.Fatal("record with mismatched embedded key reported as hit")
	}
}

func TestNonHexKeysAreSandboxed(t *testing.T) {
	s, _ := Open(t.TempDir())
	for _, key := range []string{"../../etc/passwd", "short", "UPPER" + hexKey("x")[5:], ""} {
		s.Store(key, []byte(`{"v":1}`))
		got, ok := s.Load(key)
		if !ok || string(got) != `{"v":1}` {
			t.Fatalf("key %q: ok=%v payload=%s", key, ok, got)
		}
		rel, err := filepath.Rel(s.Dir(), s.path(key))
		if err != nil || strings.HasPrefix(rel, "..") {
			t.Fatalf("key %q escapes store root: %s", key, s.path(key))
		}
	}
}

func TestOverwriteIsAtomicReplace(t *testing.T) {
	s, _ := Open(t.TempDir())
	key := hexKey("rewrite")
	s.Store(key, []byte(`{"v":1}`))
	s.Store(key, []byte(`{"v":1}`)) // immutable records: same payload
	got, ok := s.Load(key)
	if !ok || string(got) != `{"v":1}` {
		t.Fatalf("after overwrite: ok=%v payload=%s", ok, got)
	}
	if n := s.Len(); n != 1 {
		t.Errorf("Len = %d after overwriting one key", n)
	}
	// No temp files left behind.
	filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := Open(t.TempDir())
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := hexKey(fmt.Sprintf("k%d", i%8))
			payload := []byte(fmt.Sprintf(`{"v":%d}`, i%8))
			s.Store(key, payload)
			if got, ok := s.Load(key); !ok || string(got) != string(payload) {
				t.Errorf("concurrent load %d: ok=%v payload=%s", i, ok, got)
			}
		}(i)
	}
	wg.Wait()
	if n := s.Len(); n != 8 {
		t.Errorf("Len = %d, want 8 distinct records", n)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}
