// Package phase implements the paper's stated future work (Section VI):
// analyzing applications' phase behaviour to identify simulation phases.
//
// The method follows SimPoint (Sherwood et al., ASPLOS 2002) adapted to
// the synthetic workload substrate: the dynamic uop stream is sliced into
// fixed-length intervals, each interval is summarized by a
// microarchitecture-independent signature (instruction mix, branch
// behaviour, working-set motion), the signatures are clustered with
// k-means (k chosen by BIC), and the interval closest to each centroid
// becomes that phase's simulation point. Simulating only the phase
// representatives, weighted by phase size, approximates whole-program
// behaviour at a fraction of the cost — the same time-saving goal as the
// paper's suite subsetting, one level down.
package phase

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/trace"
)

// SignatureDim is the dimensionality of an interval signature.
const SignatureDim = 10

// Signature summarizes one interval's execution behaviour. All entries
// are rates in [0, 1] except the working-set terms, which are normalized
// by interval length.
type Signature [SignatureDim]float64

// Signature component indices.
const (
	SigLoad = iota
	SigStore
	SigBranch
	SigFP
	SigCond
	SigTaken
	SigCall
	SigNewLines // first-touch lines per instruction
	SigLineSpan // distinct lines touched per instruction
	SigMispBias // mean conditional outcome (direction bias)
)

// Names returns human-readable component names in index order.
func Names() []string {
	return []string{
		"loads", "stores", "branches", "fp", "conditional", "taken",
		"calls", "new-lines", "line-span", "taken-bias",
	}
}

// Interval is one slice of the stream with its signature.
type Interval struct {
	// Index is the interval's position in the stream.
	Index int
	// Sig is its behaviour signature.
	Sig Signature
}

// sliceBatchSize is the uop buffer length Slice pulls through the batch
// interface; modest because intervals are often only a few thousand uops.
const sliceBatchSize = 1024

// Slice consumes n*intervalLen uops from the source and returns the n
// interval signatures. It returns an error if the source ends early.
// Records are pulled through the source's batch path when it has one;
// fills are clamped to the current interval so exactly n*intervalLen
// records are consumed either way.
func Slice(src trace.Source, intervalLen uint64, n int) ([]Interval, error) {
	return SliceSampled(src, intervalLen, intervalLen, n)
}

// SliceSampled is Slice with systematic sampling: intervals are still
// intervalLen uops long but their starts are spaced stride apart, and
// the gap between consecutive intervals is fast-forwarded through the
// source's trace.Skipper capability (or drained, for sources that
// cannot skip). Interval signatures are microarchitecture-independent
// stream statistics, so skipping costs no fidelity within the sampled
// intervals — it trades interval coverage for slicing a stride/
// intervalLen-times-longer stretch of the stream at the same cost.
// stride == intervalLen degenerates to plain back-to-back slicing.
func SliceSampled(src trace.Source, intervalLen, stride uint64, n int) ([]Interval, error) {
	if intervalLen == 0 || n <= 0 {
		return nil, fmt.Errorf("phase: invalid slicing %d x %d", intervalLen, n)
	}
	if stride < intervalLen {
		return nil, fmt.Errorf("phase: stride %d shorter than interval %d", stride, intervalLen)
	}
	bsrc := trace.AsBatch(src)
	buf := make([]trace.Uop, sliceBatchSize)
	out := make([]Interval, 0, n)
	for i := 0; i < n; i++ {
		if gap := stride - intervalLen; i > 0 && gap > 0 {
			if skipped := trace.SkipRecords(bsrc, buf, gap); skipped < gap {
				return nil, fmt.Errorf("phase: stream ended before interval %d", i)
			}
		}
		var counts [trace.NumKinds]uint64
		var cond, taken, calls, branches uint64
		lines := map[uint64]struct{}{}
		seen := map[uint64]struct{}{}
		newLines := 0
		for done := uint64(0); done < intervalLen; {
			want := intervalLen - done
			if want > uint64(len(buf)) {
				want = uint64(len(buf))
			}
			got := bsrc.NextBatch(buf[:want])
			if got == 0 {
				return nil, fmt.Errorf("phase: stream ended in interval %d", i)
			}
			done += uint64(got)
			for k := 0; k < got; k++ {
				u := &buf[k]
				counts[u.Kind]++
				switch u.Kind {
				case trace.KindLoad, trace.KindStore:
					line := u.Addr / 64
					if _, ok := seen[line]; !ok {
						seen[line] = struct{}{}
						newLines++
					}
					lines[line] = struct{}{}
				case trace.KindBranch:
					branches++
					if u.Branch == trace.BranchConditional {
						cond++
						if u.Taken {
							taken++
						}
					}
					if u.Branch == trace.BranchDirectCall {
						calls++
					}
				}
			}
		}
		inv := 1 / float64(intervalLen)
		var sig Signature
		sig[SigLoad] = float64(counts[trace.KindLoad]) * inv
		sig[SigStore] = float64(counts[trace.KindStore]) * inv
		sig[SigBranch] = float64(counts[trace.KindBranch]) * inv
		sig[SigFP] = float64(counts[trace.KindFP]) * inv
		if branches > 0 {
			sig[SigCond] = float64(cond) / float64(branches)
			sig[SigCall] = float64(calls) / float64(branches)
		}
		if cond > 0 {
			sig[SigTaken] = float64(taken) / float64(cond)
			sig[SigMispBias] = math.Abs(float64(taken)/float64(cond) - 0.5)
		}
		sig[SigNewLines] = float64(newLines) * inv
		sig[SigLineSpan] = float64(len(lines)) * inv
		out = append(out, Interval{Index: i, Sig: sig})
	}
	return out, nil
}

// Phase is one detected execution phase.
type Phase struct {
	// Representative is the index of the interval chosen as this phase's
	// simulation point (closest to the centroid).
	Representative int
	// Weight is the fraction of intervals belonging to the phase.
	Weight float64
	// Centroid is the phase's mean signature.
	Centroid Signature
	// Intervals lists the member interval indices in order.
	Intervals []int
}

// Result is the outcome of phase detection.
type Result struct {
	// Phases are ordered by descending weight.
	Phases []Phase
	// Assign maps each interval to its phase index (post-ordering).
	Assign []int
	// K is the chosen phase count.
	K int
	// BIC is the winning model score.
	BIC float64
	// CoverageError is the L1 distance between the full-stream mean
	// signature and the weighted representative reconstruction — the
	// fidelity of simulating only the phase representatives.
	CoverageError float64
}

// Options configure phase detection.
type Options struct {
	// MaxPhases bounds the BIC search (default 8).
	MaxPhases int
	// K fixes the phase count, skipping the BIC search.
	K int
	// Seed drives the k-means initialization (default 1).
	Seed uint64
}

// Detect clusters interval signatures into phases.
func Detect(intervals []Interval, opt Options) (*Result, error) {
	if len(intervals) < 2 {
		return nil, fmt.Errorf("phase: need at least 2 intervals, got %d", len(intervals))
	}
	if opt.MaxPhases <= 0 {
		opt.MaxPhases = 8
	}
	if opt.MaxPhases > len(intervals) {
		opt.MaxPhases = len(intervals)
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	points := make([][]float64, len(intervals))
	for i, iv := range intervals {
		points[i] = normalize(iv.Sig)
	}
	if opt.K > 0 {
		res := cluster.KMeans(points, opt.K, opt.Seed)
		return buildResult(intervals, points, res, opt.K, cluster.BIC(points, res)), nil
	}
	// Ratio elbow criterion: a k-th cluster is structural if it removes
	// at least 65% of the remaining within-cluster variance; the chosen k
	// is the LARGEST structural split. k-means on pure sampling noise
	// removes ~40% per split at these interval counts, so no noise split
	// qualifies and homogeneous streams yield k=1. Searching for the
	// largest qualifying k (rather than stopping at the first failure)
	// matters for 3+ equal phases, where the 1->2 cut is necessarily
	// weak but the (k-1)->k cut is sharp. (BIC is unreliable with a few
	// dozen intervals; it is still reported for diagnostics.)
	const splitRatio = 0.35
	results := make([]*cluster.KMeansResult, opt.MaxPhases+1)
	results[1] = cluster.KMeans(points, 1, opt.Seed)
	chosen := 1
	for k := 2; k <= opt.MaxPhases; k++ {
		results[k] = cluster.KMeans(points, k, opt.Seed)
		prev := results[k-1].SSE
		if prev > 1e-12 && results[k].SSE <= splitRatio*prev {
			chosen = k
		}
	}
	res := results[chosen]
	return buildResult(intervals, points, res, chosen, cluster.BIC(points, res)), nil
}

// normalize scales the signature's unbounded working-set terms so no
// single component dominates the Euclidean metric.
func normalize(s Signature) []float64 {
	out := make([]float64, SignatureDim)
	for i, v := range s {
		out[i] = v
	}
	// Working-set motion terms are per-instruction rates (typically
	// <0.05); amplify into the same range as the mix fractions.
	out[SigNewLines] *= 10
	out[SigLineSpan] *= 3
	// Direction terms are high-variance at interval granularity (a few
	// dozen loop bursts per interval); damp them so sampling noise does
	// not masquerade as phase structure.
	out[SigTaken] *= 0.25
	out[SigMispBias] *= 0.25
	return out
}

func buildResult(intervals []Interval, points [][]float64, km *cluster.KMeansResult, k int, bic float64) *Result {
	res := &Result{K: k, BIC: bic, Assign: make([]int, len(intervals))}
	type agg struct {
		members  []int
		centroid []float64
	}
	groups := make([]agg, k)
	for c := range groups {
		groups[c].centroid = km.Centroids[c]
	}
	for i, c := range km.Assign {
		groups[c].members = append(groups[c].members, i)
	}
	var phases []Phase
	for c := range groups {
		g := groups[c]
		if len(g.members) == 0 {
			continue
		}
		// Representative: member closest to the centroid.
		best, bestD := g.members[0], math.Inf(1)
		for _, m := range g.members {
			d := 0.0
			for j := range points[m] {
				diff := points[m][j] - g.centroid[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = m, d
			}
		}
		var centroid Signature
		for _, m := range g.members {
			for j := 0; j < SignatureDim; j++ {
				centroid[j] += intervals[m].Sig[j]
			}
		}
		for j := 0; j < SignatureDim; j++ {
			centroid[j] /= float64(len(g.members))
		}
		phases = append(phases, Phase{
			Representative: best,
			Weight:         float64(len(g.members)) / float64(len(intervals)),
			Centroid:       centroid,
			Intervals:      g.members,
		})
	}
	// Order by descending weight (stable by representative index).
	for i := 0; i < len(phases); i++ {
		for j := i + 1; j < len(phases); j++ {
			if phases[j].Weight > phases[i].Weight ||
				(phases[j].Weight == phases[i].Weight && phases[j].Representative < phases[i].Representative) {
				phases[i], phases[j] = phases[j], phases[i]
			}
		}
	}
	res.Phases = phases
	for p, ph := range phases {
		for _, m := range ph.Intervals {
			res.Assign[m] = p
		}
	}
	res.CoverageError = coverageError(intervals, phases)
	return res
}

// coverageError compares the stream's true mean signature against the
// weighted reconstruction from phase representatives.
func coverageError(intervals []Interval, phases []Phase) float64 {
	var mean, recon Signature
	for _, iv := range intervals {
		for j := 0; j < SignatureDim; j++ {
			mean[j] += iv.Sig[j]
		}
	}
	for j := 0; j < SignatureDim; j++ {
		mean[j] /= float64(len(intervals))
	}
	for _, p := range phases {
		rep := intervals[p.Representative].Sig
		for j := 0; j < SignatureDim; j++ {
			recon[j] += p.Weight * rep[j]
		}
	}
	err := 0.0
	for j := 0; j < SignatureDim; j++ {
		err += math.Abs(mean[j] - recon[j])
	}
	return err
}

// SpeedupFactor returns how much simulation the phase representatives
// save: total intervals over representative count.
func (r *Result) SpeedupFactor() float64 {
	if len(r.Phases) == 0 {
		return 1
	}
	return float64(len(r.Assign)) / float64(len(r.Phases))
}
