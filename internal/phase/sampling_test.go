package phase

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// nextOnlySrc hides every capability of the wrapped source except Next,
// forcing the record-by-record drain fallbacks.
type nextOnlySrc struct{ src trace.Source }

func (s nextOnlySrc) Next(u *trace.Uop) bool { return s.src.Next(u) }

// TestSpeedupFactor: the phase-simulation speedup is the interval count
// over the phase count (simulate one representative per phase instead
// of every interval), and degrades to 1 when nothing was detected.
func TestSpeedupFactor(t *testing.T) {
	var empty Result
	if got := empty.SpeedupFactor(); got != 1 {
		t.Errorf("empty result speedup = %v, want 1", got)
	}
	synthetic := Result{
		Phases: make([]Phase, 3),
		Assign: make([]int, 24),
	}
	if got := synthetic.SpeedupFactor(); got != 8 {
		t.Errorf("24 intervals / 3 phases speedup = %v, want 8", got)
	}

	// And through the real pipeline: a two-phase stream sliced into 16
	// intervals should report len(Assign)/len(Phases) exactly.
	src := phasedSource(t, 4000)
	ivs, err := Slice(src, 4000, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(ivs, Options{MaxPhases: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(res.Assign)) / float64(len(res.Phases))
	if got := res.SpeedupFactor(); got != want {
		t.Errorf("speedup = %v, want %v (%d intervals, %d phases)",
			got, want, len(res.Assign), len(res.Phases))
	}
	if res.SpeedupFactor() <= 1 {
		t.Errorf("multi-interval detection yields speedup %v, want > 1", res.SpeedupFactor())
	}
}

// TestPhasedSourceSkipEquivalence: skipping a PhasedSource must land on
// exactly the record (and segment) that draining the same count through
// Next would, including skips that cross segment boundaries and wrap
// the repeating schedule.
func TestPhasedSourceSkipEquivalence(t *testing.T) {
	const perSegment = 1000
	for _, skip := range []uint64{0, 1, 999, 1000, 1001, 2500, 4000} {
		drained := phasedSource(t, perSegment)
		skipped := phasedSource(t, perSegment)

		var u trace.Uop
		for i := uint64(0); i < skip; i++ {
			if !drained.Next(&u) {
				t.Fatalf("skip %d: drained source ended at %d", skip, i)
			}
		}
		if got := skipped.Skip(skip); got != skip {
			t.Fatalf("Skip(%d) = %d; the schedule repeats, so skips never clamp", skip, got)
		}
		if d, s := drained.CurrentSegment(), skipped.CurrentSegment(); d != s {
			t.Errorf("skip %d: segment cursor %d after Skip, %d after draining", skip, s, d)
		}
		for i := 0; i < 32; i++ {
			var du, su trace.Uop
			drained.Next(&du)
			skipped.Next(&su)
			if du != su {
				t.Fatalf("skip %d: record %d after skip diverges: %+v vs %+v", skip, i, su, du)
			}
		}
	}
}

// TestPhasedSourceSkipWarmEquivalence: the warming skip must observe
// exactly the branch records that Next would have emitted over the
// skipped stretch — across a segment boundary — and leave the stream at
// the same position. A nil observer degrades to the cold skip.
func TestPhasedSourceSkipWarmEquivalence(t *testing.T) {
	const perSegment, skip = 1000, 2500
	drained := phasedSource(t, perSegment)
	warmed := phasedSource(t, perSegment)

	var want []trace.Uop
	var u trace.Uop
	for i := 0; i < skip; i++ {
		drained.Next(&u)
		if u.Kind == trace.KindBranch {
			want = append(want, u)
		}
	}
	var got []trace.Uop
	if n := warmed.SkipWarm(skip, func(u *trace.Uop) { got = append(got, *u) }); n != skip {
		t.Fatalf("SkipWarm = %d, want %d", n, skip)
	}
	if len(want) == 0 {
		t.Fatal("no branches in the skipped stretch; test is vacuous")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("warm skip observed %d branch records, drain saw %d (or contents differ)",
			len(got), len(want))
	}
	if d, w := drained.CurrentSegment(), warmed.CurrentSegment(); d != w {
		t.Errorf("segment cursor %d after SkipWarm, %d after draining", w, d)
	}
	for i := 0; i < 32; i++ {
		var du, wu trace.Uop
		drained.Next(&du)
		warmed.Next(&wu)
		if du != wu {
			t.Fatalf("record %d after warm skip diverges: %+v vs %+v", i, wu, du)
		}
	}

	// nil observer = cold skip, same landing position.
	cold := phasedSource(t, perSegment)
	cold.SkipWarm(skip, nil)
	var cu trace.Uop
	drained2 := phasedSource(t, perSegment)
	drained2.Skip(skip)
	cold.Next(&cu)
	drained2.Next(&u)
	if cu != u {
		t.Errorf("nil-observe SkipWarm landed on %+v, Skip on %+v", cu, u)
	}
}

// TestSliceSampledEquivalence: stride == intervalLen degenerates to
// plain Slice, and the skipped gaps produce identical interval
// signatures whether the source can skip natively or must be drained.
func TestSliceSampledEquivalence(t *testing.T) {
	plain, err := Slice(phasedSource(t, 5000), 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	degenerate, err := SliceSampled(phasedSource(t, 5000), 1000, 1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, degenerate) {
		t.Error("stride == intervalLen does not degenerate to Slice")
	}

	native, err := SliceSampled(phasedSource(t, 5000), 1000, 2500, 8)
	if err != nil {
		t.Fatal(err)
	}
	drained, err := SliceSampled(nextOnlySrc{phasedSource(t, 5000)}, 1000, 2500, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(native, drained) {
		t.Error("sampled intervals differ between native skip and drain fallback")
	}
	if reflect.DeepEqual(native, plain) {
		t.Error("stride > intervalLen produced the same intervals as back-to-back slicing")
	}
}

// TestSliceSampledErrors: invalid stride and exhausted gaps are
// reported, not silently truncated.
func TestSliceSampledErrors(t *testing.T) {
	if _, err := SliceSampled(phasedSource(t, 1000), 100, 50, 4); err == nil {
		t.Error("stride shorter than interval accepted")
	}
	// 3 intervals at stride 100 need 250 records; only 180 exist.
	short := &trace.SliceSource{Uops: make([]trace.Uop, 180)}
	if _, err := SliceSampled(short, 50, 100, 3); err == nil {
		t.Error("stream ending inside a gap not reported")
	}
}
