package phase

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Segment is one leg of a phased workload: run the model for Instr uops.
type Segment struct {
	Model profile.Model
	Instr uint64
}

// PhasedSource replays a repeating schedule of workload models,
// emulating the phase behaviour of real applications (e.g. gcc
// alternating between parsing and register allocation). It implements
// trace.Source and loops over the schedule indefinitely.
type PhasedSource struct {
	gens    []*synth.Generator
	lens    []uint64
	seg     int
	left    uint64
	started bool
}

// NewPhasedSource builds generators for each segment over the given
// geometry. Segment seeds should differ so the phases occupy distinct
// address regions.
func NewPhasedSource(segments []Segment, geo synth.Geometry) (*PhasedSource, error) {
	if len(segments) == 0 {
		return nil, fmt.Errorf("phase: empty schedule")
	}
	p := &PhasedSource{}
	for i, seg := range segments {
		if seg.Instr == 0 {
			return nil, fmt.Errorf("phase: segment %d has zero length", i)
		}
		g, err := synth.New(seg.Model, geo)
		if err != nil {
			return nil, fmt.Errorf("phase: segment %d: %w", i, err)
		}
		// Fast-forward past each generator's prologue up front so phase
		// boundaries show steady-state behaviour, not warmup sweeps.
		g.Skip(g.Prologue())
		p.gens = append(p.gens, g)
		p.lens = append(p.lens, seg.Instr)
	}
	p.left = p.lens[0]
	return p, nil
}

// Next implements trace.Source; the schedule repeats forever.
func (p *PhasedSource) Next(u *trace.Uop) bool {
	if p.left == 0 {
		p.seg = (p.seg + 1) % len(p.gens)
		p.left = p.lens[p.seg]
	}
	p.left--
	return p.gens[p.seg].Next(u)
}

// Skip implements trace.Skipper segment-correctly: the schedule cursor
// advances through segment boundaries exactly as n Next calls would,
// and each segment's share of the skip is fast-forwarded on that
// segment's own generator, so per-generator state stays aligned with
// the stream position. The schedule repeats forever, so Skip always
// skips the full n.
func (p *PhasedSource) Skip(n uint64) uint64 {
	for left := n; left > 0; {
		if p.left == 0 {
			p.seg = (p.seg + 1) % len(p.gens)
			p.left = p.lens[p.seg]
		}
		take := p.left
		if take > left {
			take = left
		}
		p.gens[p.seg].Skip(take)
		p.left -= take
		left -= take
	}
	return n
}

// SkipWarm implements trace.WarmSkipper with the same segment-correct
// cursor walk as Skip, delegating each segment's share to that
// generator's warming skip so the observer sees every branch record the
// skipped stretch would have emitted, across phase boundaries.
func (p *PhasedSource) SkipWarm(n uint64, observe func(*trace.Uop)) uint64 {
	if observe == nil {
		return p.Skip(n)
	}
	for left := n; left > 0; {
		if p.left == 0 {
			p.seg = (p.seg + 1) % len(p.gens)
			p.left = p.lens[p.seg]
		}
		take := p.left
		if take > left {
			take = left
		}
		p.gens[p.seg].SkipWarm(take, observe)
		p.left -= take
		left -= take
	}
	return n
}

// CurrentSegment reports which segment the next uop comes from.
func (p *PhasedSource) CurrentSegment() int { return p.seg }
