package phase

import (
	"math"
	"testing"

	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

func testGeo() synth.Geometry {
	return synth.Geometry{L1Lines: 512, L2Lines: 4096, L3Lines: 32768}
}

// computeModel is ALU-heavy with few branches and tiny footprint.
func computeModel(seed uint64) profile.Model {
	return profile.Model{
		InstrBillions: 100, TargetIPC: 2.5,
		LoadPct: 15, StorePct: 5, BranchPct: 8,
		Mix:           profile.DefaultFPBranchMix(),
		MispredictPct: 1, L1MissPct: 1, L2MissPct: 10, L3MissPct: 5,
		RSSMiB: 8, VSZMiB: 20, MLP: 2, CodeKiB: 64, BranchSites: 400,
		Threads: 1, Seed: seed,
	}
}

// memoryModel is load/store and branch heavy with a big moving footprint.
func memoryModel(seed uint64) profile.Model {
	return profile.Model{
		InstrBillions: 100, TargetIPC: 0.9,
		LoadPct: 30, StorePct: 12, BranchPct: 25,
		Mix:           profile.DefaultIntBranchMix(),
		MispredictPct: 6, L1MissPct: 10, L2MissPct: 60, L3MissPct: 30,
		RSSMiB: 512, VSZMiB: 600, MLP: 3, CodeKiB: 800, BranchSites: 5000,
		Threads: 1, Seed: seed,
	}
}

func phasedSource(t *testing.T, perSegment uint64) *PhasedSource {
	t.Helper()
	src, err := NewPhasedSource([]Segment{
		{Model: computeModel(1), Instr: perSegment},
		{Model: memoryModel(2), Instr: perSegment},
	}, testGeo())
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestSliceShape(t *testing.T) {
	src := phasedSource(t, 5000)
	ivs, err := Slice(src, 1000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 20 {
		t.Fatalf("intervals = %d, want 20", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Index != i {
			t.Errorf("interval %d has index %d", i, iv.Index)
		}
		sum := iv.Sig[SigLoad] + iv.Sig[SigStore] + iv.Sig[SigBranch] + iv.Sig[SigFP]
		if sum <= 0 || sum > 1 {
			t.Errorf("interval %d mix fractions sum %v", i, sum)
		}
	}
}

func TestSliceErrors(t *testing.T) {
	src := phasedSource(t, 1000)
	if _, err := Slice(src, 0, 5); err == nil {
		t.Error("zero interval length accepted")
	}
	if _, err := Slice(src, 100, 0); err == nil {
		t.Error("zero interval count accepted")
	}
	short := &trace.SliceSource{Uops: make([]trace.Uop, 10)}
	if _, err := Slice(short, 100, 1); err == nil {
		t.Error("exhausted source not reported")
	}
}

func TestSignaturesSeparatePhases(t *testing.T) {
	src := phasedSource(t, 4000)
	ivs, err := Slice(src, 4000, 10) // interval == segment length
	if err != nil {
		t.Fatal(err)
	}
	// Even intervals come from the compute model, odd from the memory
	// model: load fractions should separate cleanly.
	for i := 0; i < 10; i += 2 {
		if ivs[i].Sig[SigLoad] >= ivs[i+1].Sig[SigLoad] {
			t.Errorf("interval %d load %.3f not below memory-phase %.3f",
				i, ivs[i].Sig[SigLoad], ivs[i+1].Sig[SigLoad])
		}
	}
}

func TestDetectTwoPhases(t *testing.T) {
	src := phasedSource(t, 4000)
	ivs, err := Slice(src, 4000, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(ivs, Options{MaxPhases: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("detected %d phases, want 2", res.K)
	}
	// Alternating assignment: all even intervals in one phase, odd in the
	// other.
	for i := 2; i < len(ivs); i++ {
		if res.Assign[i] != res.Assign[i%2] {
			t.Errorf("interval %d assigned %d, want %d", i, res.Assign[i], res.Assign[i%2])
		}
	}
	// Both phases have weight 0.5 and a representative of their parity.
	for _, p := range res.Phases {
		if math.Abs(p.Weight-0.5) > 1e-9 {
			t.Errorf("phase weight %v, want 0.5", p.Weight)
		}
	}
	if res.SpeedupFactor() != 8 {
		t.Errorf("speedup = %v, want 8 (16 intervals / 2 reps)", res.SpeedupFactor())
	}
}

func TestDetectHomogeneousStream(t *testing.T) {
	g, err := synth.New(computeModel(5), testGeo())
	if err != nil {
		t.Fatal(err)
	}
	var u trace.Uop
	for i, n := uint64(0), g.Prologue(); i < n; i++ {
		g.Next(&u)
	}
	ivs, err := Slice(g, 3000, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(ivs, Options{MaxPhases: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 2 {
		t.Errorf("homogeneous stream split into %d phases", res.K)
	}
}

func TestDetectFixedK(t *testing.T) {
	src := phasedSource(t, 3000)
	ivs, err := Slice(src, 3000, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(ivs, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 || len(res.Phases) != 3 {
		t.Errorf("fixed k: %d phases", len(res.Phases))
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, Options{}); err == nil {
		t.Error("empty intervals accepted")
	}
	if _, err := Detect([]Interval{{}}, Options{}); err == nil {
		t.Error("single interval accepted")
	}
}

func TestCoverageErrorSmall(t *testing.T) {
	src := phasedSource(t, 4000)
	ivs, err := Slice(src, 4000, 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(ivs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Representatives weighted by phase size must reconstruct the mean
	// signature closely (SimPoint's fidelity claim).
	if res.CoverageError > 0.15 {
		t.Errorf("coverage error = %v, want < 0.15", res.CoverageError)
	}
}

func TestPhaseWeightsSumToOne(t *testing.T) {
	src := phasedSource(t, 2500)
	ivs, err := Slice(src, 2500, 14)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(ivs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	members := 0
	for _, p := range res.Phases {
		sum += p.Weight
		members += len(p.Intervals)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	if members != len(ivs) {
		t.Errorf("phase members = %d, want %d", members, len(ivs))
	}
}

func TestPhasedSourceSchedule(t *testing.T) {
	src := phasedSource(t, 100)
	var u trace.Uop
	// First 100 uops from segment 0, next 100 from segment 1, repeat.
	for i := 0; i < 100; i++ {
		if src.CurrentSegment() != 0 {
			t.Fatalf("uop %d from segment %d", i, src.CurrentSegment())
		}
		src.Next(&u)
	}
	src.Next(&u)
	if src.CurrentSegment() != 1 {
		t.Fatal("segment did not advance")
	}
	for i := 0; i < 99; i++ {
		src.Next(&u)
	}
	src.Next(&u)
	if src.CurrentSegment() != 0 {
		t.Fatal("schedule did not wrap")
	}
}

func TestPhasedSourceErrors(t *testing.T) {
	if _, err := NewPhasedSource(nil, testGeo()); err == nil {
		t.Error("empty schedule accepted")
	}
	if _, err := NewPhasedSource([]Segment{{Model: computeModel(1), Instr: 0}}, testGeo()); err == nil {
		t.Error("zero-length segment accepted")
	}
	if _, err := NewPhasedSource([]Segment{{Model: computeModel(1), Instr: 10}}, synth.Geometry{}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestNames(t *testing.T) {
	if len(Names()) != SignatureDim {
		t.Errorf("Names() has %d entries, want %d", len(Names()), SignatureDim)
	}
}

func BenchmarkSliceAndDetect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src, err := NewPhasedSource([]Segment{
			{Model: computeModel(1), Instr: 3000},
			{Model: memoryModel(2), Instr: 3000},
		}, testGeo())
		if err != nil {
			b.Fatal(err)
		}
		ivs, err := Slice(src, 3000, 12)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Detect(ivs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
