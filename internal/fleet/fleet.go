// Package fleet adapts remote specserved instances into the
// coordinator's server.RemoteWorker interface over the typed
// internal/client. It exists as a separate package because client
// imports server for its wire types, so server itself cannot depend on
// client; cmd/specserved assembles the two sides.
//
// A fleet worker submits sub-campaigns with ?wait=1 through
// client.SubmitWait, so a worker whose queue is momentarily full
// applies backpressure (429 + Retry-After) instead of failing the
// chunk: the client's bounded jittered retries absorb the burst, and
// only a persistently saturated or dead worker surfaces an error to
// the dispatcher — which then resubmits the chunk elsewhere.
package fleet

import (
	"context"
	"time"

	"repro/internal/client"
	"repro/internal/server"
)

// worker is one remote specserved instance.
type worker struct {
	url string
	c   *client.Client
}

// Worker returns a server.RemoteWorker talking to the specserved
// instance at url (e.g. "http://10.0.0.7:8217").
func Worker(url string, opts ...client.Option) server.RemoteWorker {
	// Queue-full rejections retry a little longer than the default
	// interactive policy: a coordinator chunk competing with sibling
	// chunks for one worker's queue is expected to wait its turn.
	base := []client.Option{client.WithRetry(client.RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	})}
	return &worker{url: url, c: client.New(url, append(base, opts...)...)}
}

// Workers maps URLs to RemoteWorkers, preserving order (the coordinator
// hashes worker indices onto its ring, so order is identity).
func Workers(urls []string, opts ...client.Option) []server.RemoteWorker {
	ws := make([]server.RemoteWorker, len(urls))
	for i, u := range urls {
		ws[i] = Worker(u, opts...)
	}
	return ws
}

func (w *worker) Name() string { return w.url }

func (w *worker) Run(ctx context.Context, spec server.CampaignSpec) (server.CampaignStatus, error) {
	return w.c.SubmitWait(ctx, spec)
}

func (w *worker) Healthy(ctx context.Context) bool {
	ok, err := w.c.Health(ctx)
	return err == nil && ok
}
