package cache

import (
	"encoding/binary"
	"testing"
)

// fuzzPolicies rotates through every built-in replacement policy so the
// fuzzer exercises each one's state machine.
var fuzzPolicies = []Policy{nil, LRU{}, TreePLRU{}, Random{Seed: 1}, SRRIP{}}

// FuzzHierarchyAccess feeds an arbitrary access stream — and a
// fuzzer-chosen (but validated) geometry — through a full hierarchy. The
// contract: construction either fails Validate or succeeds, accesses
// never panic for any address pattern, and the per-level statistics stay
// internally consistent.
func FuzzHierarchyAccess(f *testing.F) {
	f.Add([]byte{0, 0, 0}, uint8(0))
	f.Add([]byte("sequential scan of one page\x00\x01\x02\x03\x04\x05\x06\x07"), uint8(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03, 1, 2, 3, 4, 5, 6, 7, 8, 0x42}, uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, geomByte uint8) {
		// Small fuzzer-chosen geometry: L1 1-8 KB, L2 16 KB, L3 64 KB,
		// lines 32 or 64 bytes, associativity 1-8, policy rotated.
		line := 32 << (geomByte & 1)
		ways := 1 << ((geomByte >> 1) & 3)
		l1Size := (1 + int(geomByte>>4)) << 10
		pol := fuzzPolicies[int(geomByte>>2)%len(fuzzPolicies)]
		cfg := HierarchyConfig{
			L1I: Config{Name: "l1i", SizeBytes: l1Size, Ways: ways, LineBytes: line, Policy: pol},
			L1D: Config{Name: "l1d", SizeBytes: l1Size, Ways: ways, LineBytes: line, Policy: pol},
			L2:  Config{Name: "l2", SizeBytes: 16 << 10, Ways: ways, LineBytes: line, Policy: pol},
			L3:  Config{Name: "l3", SizeBytes: 64 << 10, Ways: ways, LineBytes: line, Policy: pol},
		}
		if err := cfg.Validate(); err != nil {
			return // geometry cleanly rejected
		}
		h := NewHierarchy(cfg)

		demand := map[*Cache]uint64{}
		for i := 0; i+9 <= len(data); i += 9 {
			addr := binary.LittleEndian.Uint64(data[i : i+8])
			op := data[i+8]
			switch op % 4 {
			case 0:
				h.Fetch(addr)
				demand[h.L1I()]++
			case 1:
				h.Data(addr, AccessLoad)
				demand[h.Cache(L1)]++
			case 2:
				h.Data(addr, AccessStore)
				demand[h.Cache(L1)]++
			case 3:
				// Lookup must never disturb state; bracket it with
				// identical probes to catch accidental mutation.
				before := h.Cache(L1).Lookup(addr)
				after := h.Cache(L1).Lookup(addr)
				if before != after {
					t.Fatalf("Lookup mutated state for addr %#x", addr)
				}
			}
		}

		for _, c := range []*Cache{h.L1I(), h.Cache(L1), h.Cache(L2), h.Cache(L3)} {
			s := c.Stats()
			if got := s.Accesses(); got < demand[c] {
				t.Fatalf("%s: %d demand accesses issued but stats show %d", c.Config().Name, demand[c], got)
			}
			if r := s.MissRate(); r < 0 || r > 1 {
				t.Fatalf("%s: miss rate %f out of [0,1]", c.Config().Name, r)
			}
			ls, ss := c.LoadStats(), c.StoreStats()
			if ls.Accesses()+ss.Accesses() > s.Accesses() {
				t.Fatalf("%s: load+store stats exceed total: %d+%d > %d",
					c.Config().Name, ls.Accesses(), ss.Accesses(), s.Accesses())
			}
			if s.Evictions > s.Misses {
				t.Fatalf("%s: more evictions (%d) than misses (%d)", c.Config().Name, s.Evictions, s.Misses)
			}
		}
	})
}
