package cache

import (
	"fmt"

	"repro/internal/xrand"
)

// LRU is true least-recently-used replacement. Recency is tracked with an
// age counter per line; Victim picks the oldest.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

type lruState struct {
	ways  int
	ages  []uint64 // sets*ways
	clock uint64
}

// New implements Policy.
func (LRU) New(sets, ways int) Replacement {
	return &lruState{ways: ways, ages: make([]uint64, sets*ways)}
}

func (s *lruState) Touch(set, w int) {
	s.clock++
	s.ages[set*s.ways+w] = s.clock
}

func (s *lruState) Fill(set, w int) { s.Touch(set, w) }

func (s *lruState) Victim(set int) int {
	// Branch-free scan: the minimum's position is data-dependent, so a
	// compare-and-branch form mispredicts on most updates; conditional
	// selects keep the pipeline full.
	ages := s.ages[set*s.ways : set*s.ways+s.ways]
	victim, oldest := 0, ages[0]
	for w := 1; w < len(ages); w++ {
		a := ages[w]
		if a < oldest {
			victim = w
		}
		if a < oldest {
			oldest = a
		}
	}
	return victim
}

// TreePLRU is tree-based pseudo-LRU, the policy real L1/L2 caches commonly
// approximate LRU with. Associativity must be a power of two.
type TreePLRU struct{}

// Name implements Policy.
func (TreePLRU) Name() string { return "plru" }

type plruState struct {
	ways int
	bits [][]bool // per set: ways-1 internal tree nodes
}

// New implements Policy.
func (TreePLRU) New(sets, ways int) Replacement {
	if ways&(ways-1) != 0 {
		panic("cache: TreePLRU requires power-of-two associativity")
	}
	st := &plruState{ways: ways, bits: make([][]bool, sets)}
	for i := range st.bits {
		st.bits[i] = make([]bool, ways-1)
	}
	return st
}

// Touch walks from the root to way w, pointing every traversed node away
// from w.
func (s *plruState) Touch(set, w int) {
	bits := s.bits[set]
	node, lo, hi := 0, 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w < mid {
			bits[node] = true // point away: right half is colder
			node = 2*node + 1
			hi = mid
		} else {
			bits[node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

func (s *plruState) Fill(set, w int) { s.Touch(set, w) }

// Victim follows the cold pointers from the root.
func (s *plruState) Victim(set int) int {
	bits := s.bits[set]
	node, lo, hi := 0, 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits[node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Random replacement picks a uniformly random victim. Deterministic given
// the seed.
type Random struct {
	// Seed initializes the victim PRNG; the zero value is a valid seed.
	Seed uint64
}

// Name implements Policy.
func (Random) Name() string { return "random" }

type randomState struct {
	ways int
	rng  *xrand.PCG32
}

// New implements Policy.
func (r Random) New(sets, ways int) Replacement {
	return &randomState{ways: ways, rng: xrand.NewPCG32(r.Seed ^ 0x9d5c)}
}

func (s *randomState) Touch(set, w int)   {}
func (s *randomState) Fill(set, w int)    {}
func (s *randomState) Victim(set int) int { return s.rng.Intn(s.ways) }

// SRRIP is static re-reference interval prediction (Jaleel et al., ISCA
// 2010) with 2-bit RRPVs: fills insert at distant re-reference (RRPV 2),
// hits promote to 0, victims are lines with RRPV 3 (aging as needed).
// It resists thrashing and scanning better than LRU at L3.
type SRRIP struct{}

// Name implements Policy.
func (SRRIP) Name() string { return "srrip" }

const rrpvMax = 3

type srripState struct {
	ways int
	rrpv []uint8
}

// New implements Policy.
func (SRRIP) New(sets, ways int) Replacement {
	st := &srripState{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range st.rrpv {
		st.rrpv[i] = rrpvMax
	}
	return st
}

func (s *srripState) Touch(set, w int) { s.rrpv[set*s.ways+w] = 0 }

func (s *srripState) Fill(set, w int) { s.rrpv[set*s.ways+w] = rrpvMax - 1 }

func (s *srripState) Victim(set int) int {
	base := set * s.ways
	for {
		for w := 0; w < s.ways; w++ {
			if s.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < s.ways; w++ {
			s.rrpv[base+w]++
		}
	}
}

// Policies returns all built-in replacement policies, for sweeps and
// ablation benchmarks.
func Policies() []Policy {
	return []Policy{LRU{}, TreePLRU{}, Random{}, SRRIP{}}
}

// Fingerprinter is an optional interface for policies (and other machine
// components) whose Name does not carry every parameter that affects
// behaviour. The machine configuration fingerprint — and therefore the
// campaign result cache key — prefers Fingerprint over Name, so two
// custom components sharing a name can never alias to the same cached
// result.
type Fingerprinter interface {
	// Fingerprint returns a string covering the component's name and
	// every behaviour-affecting parameter.
	Fingerprint() string
}

// Fingerprint implements Fingerprinter: Random's victim stream depends on
// its seed, which the bare name does not carry.
func (r Random) Fingerprint() string { return fmt.Sprintf("random:seed=%d", r.Seed) }

// TouchIdempotent reports whether a policy's Touch is observably
// idempotent: as long as no other way of set s has been accessed since
// Touch(s, w), repeating Touch(s, w) cannot change any future Victim
// decision. Victim only ever compares state within one set, so the
// property holds per set: LRU re-stamps the way that already holds the
// set's newest stamp (relative order within every set is unchanged),
// PLRU re-points the tree nodes the same direction, SRRIP re-zeroes an
// already-zero RRPV, and Random ignores touches entirely.
// Frequency-counting policies would not qualify. The batched kernel's
// fetch deduplication (Cache.FetchHot's per-set memo) is only sound when
// this holds, so unknown custom policies conservatively disable the
// optimization rather than risk divergence from the per-uop kernel.
func TouchIdempotent(p Policy) bool {
	switch p.(type) {
	case nil, LRU, TreePLRU, Random, SRRIP:
		return true
	}
	return false
}
