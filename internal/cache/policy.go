package cache

import "repro/internal/xrand"

// LRU is true least-recently-used replacement. Recency is tracked with an
// age counter per line; Victim picks the oldest.
type LRU struct{}

// Name implements Policy.
func (LRU) Name() string { return "lru" }

type lruState struct {
	ways  int
	ages  []uint64 // sets*ways
	clock uint64
}

// New implements Policy.
func (LRU) New(sets, ways int) Replacement {
	return &lruState{ways: ways, ages: make([]uint64, sets*ways)}
}

func (s *lruState) Touch(set, w int) {
	s.clock++
	s.ages[set*s.ways+w] = s.clock
}

func (s *lruState) Fill(set, w int) { s.Touch(set, w) }

func (s *lruState) Victim(set int) int {
	base := set * s.ways
	victim, oldest := 0, s.ages[base]
	for w := 1; w < s.ways; w++ {
		if s.ages[base+w] < oldest {
			victim, oldest = w, s.ages[base+w]
		}
	}
	return victim
}

// TreePLRU is tree-based pseudo-LRU, the policy real L1/L2 caches commonly
// approximate LRU with. Associativity must be a power of two.
type TreePLRU struct{}

// Name implements Policy.
func (TreePLRU) Name() string { return "plru" }

type plruState struct {
	ways int
	bits [][]bool // per set: ways-1 internal tree nodes
}

// New implements Policy.
func (TreePLRU) New(sets, ways int) Replacement {
	if ways&(ways-1) != 0 {
		panic("cache: TreePLRU requires power-of-two associativity")
	}
	st := &plruState{ways: ways, bits: make([][]bool, sets)}
	for i := range st.bits {
		st.bits[i] = make([]bool, ways-1)
	}
	return st
}

// Touch walks from the root to way w, pointing every traversed node away
// from w.
func (s *plruState) Touch(set, w int) {
	bits := s.bits[set]
	node, lo, hi := 0, 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w < mid {
			bits[node] = true // point away: right half is colder
			node = 2*node + 1
			hi = mid
		} else {
			bits[node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

func (s *plruState) Fill(set, w int) { s.Touch(set, w) }

// Victim follows the cold pointers from the root.
func (s *plruState) Victim(set int) int {
	bits := s.bits[set]
	node, lo, hi := 0, 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits[node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}

// Random replacement picks a uniformly random victim. Deterministic given
// the seed.
type Random struct {
	// Seed initializes the victim PRNG; the zero value is a valid seed.
	Seed uint64
}

// Name implements Policy.
func (Random) Name() string { return "random" }

type randomState struct {
	ways int
	rng  *xrand.PCG32
}

// New implements Policy.
func (r Random) New(sets, ways int) Replacement {
	return &randomState{ways: ways, rng: xrand.NewPCG32(r.Seed ^ 0x9d5c)}
}

func (s *randomState) Touch(set, w int)   {}
func (s *randomState) Fill(set, w int)    {}
func (s *randomState) Victim(set int) int { return s.rng.Intn(s.ways) }

// SRRIP is static re-reference interval prediction (Jaleel et al., ISCA
// 2010) with 2-bit RRPVs: fills insert at distant re-reference (RRPV 2),
// hits promote to 0, victims are lines with RRPV 3 (aging as needed).
// It resists thrashing and scanning better than LRU at L3.
type SRRIP struct{}

// Name implements Policy.
func (SRRIP) Name() string { return "srrip" }

const rrpvMax = 3

type srripState struct {
	ways int
	rrpv []uint8
}

// New implements Policy.
func (SRRIP) New(sets, ways int) Replacement {
	st := &srripState{ways: ways, rrpv: make([]uint8, sets*ways)}
	for i := range st.rrpv {
		st.rrpv[i] = rrpvMax
	}
	return st
}

func (s *srripState) Touch(set, w int) { s.rrpv[set*s.ways+w] = 0 }

func (s *srripState) Fill(set, w int) { s.rrpv[set*s.ways+w] = rrpvMax - 1 }

func (s *srripState) Victim(set int) int {
	base := set * s.ways
	for {
		for w := 0; w < s.ways; w++ {
			if s.rrpv[base+w] == rrpvMax {
				return w
			}
		}
		for w := 0; w < s.ways; w++ {
			s.rrpv[base+w]++
		}
	}
}

// Policies returns all built-in replacement policies, for sweeps and
// ablation benchmarks.
func Policies() []Policy {
	return []Policy{LRU{}, TreePLRU{}, Random{}, SRRIP{}}
}
